// Abstract byte transport for the provisioning front end's reactor.
//
// A Transport is one client connection's byte stream as the front end sees
// it: non-blocking on both sides, level-triggered (the reactor simply asks
// "what arrived?" every sweep), with explicit EOF so a half-closed peer is
// distinguishable from a slow one. Two backends:
//
//  * PipeTransport — adapter over the in-memory crypto::DuplexPipe used by
//    tests and benchmarks: the client holds the other end of the pipe and
//    the whole exchange stays deterministic and single-threaded.
//  * TcpTransport (net/tcp.h) — a real non-blocking TCP socket, used by
//    tools/engarde-serve. descriptor() feeds poll(2)-style readiness.
//
// The reactor never hands a Transport to a ProvisioningSession directly:
// each connection owns an internal DuplexPipe, the reactor shuttles bytes
// between the transport and the pipe's wire side, and the session pumps the
// enclave side. That keeps the session code transport-agnostic.
#ifndef ENGARDE_NET_TRANSPORT_H_
#define ENGARDE_NET_TRANSPORT_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/channel.h"

namespace engarde::net {

class Transport {
 public:
  virtual ~Transport() = default;

  // Tenant identity of the peer behind this connection, as the accept path
  // saw it: the remote IP for TCP sockets, whatever tag a test or bench
  // chose for in-memory pipes. Empty = anonymous (the front end lumps such
  // connections into one default tenant). Set once at accept time, before
  // the transport is handed to a reactor — not synchronized.
  const std::string& peer() const noexcept { return peer_; }
  void set_peer(std::string peer) { peer_ = std::move(peer); }

  // File descriptor for poll(2) readiness, or -1 for memory-backed
  // transports (which the reactor treats as always worth sweeping).
  virtual int descriptor() const noexcept { return -1; }

  // Non-blocking read side: appends every byte the peer has sent so far to
  // `out` and returns how many were moved (0 = nothing pending).
  virtual Result<size_t> Drain(Bytes& out) = 0;

  // Non-blocking write side: sends `data` toward the peer, buffering
  // whatever the backend cannot take immediately.
  virtual Status Send(ByteView data) = 0;

  // Pushes buffered outbound bytes. Returns true when nothing remains
  // unsent (safe to close).
  virtual Result<bool> Flush() = 0;

  // The peer half-closed its sending side and Drain has returned everything
  // it ever sent ("peer gone", as opposed to "bytes pending").
  virtual bool AtEof() const = 0;

  virtual void Close() = 0;

 private:
  std::string peer_;
};

// In-memory backend: wraps the front-end-side endpoint of a DuplexPipe whose
// other end the client drives directly.
class PipeTransport final : public Transport {
 public:
  explicit PipeTransport(crypto::DuplexPipe::Endpoint endpoint) noexcept
      : endpoint_(endpoint) {}

  Result<size_t> Drain(Bytes& out) override;
  Status Send(ByteView data) override {
    endpoint_.Write(data);
    return Status::Ok();
  }
  Result<bool> Flush() override { return true; }
  bool AtEof() const override { return endpoint_.AtEof(); }
  void Close() override { endpoint_.CloseWrite(); }

 private:
  crypto::DuplexPipe::Endpoint endpoint_;
};

// ---- Fault injection -------------------------------------------------------

// The pathologies a front end must survive, as a deterministic wrapper: a
// peer that goes silent mid-frame (slow loris), one that disappears
// mid-frame, a congested socket that takes writes a few bytes at a time, and
// syscall layers that fail outright. Tests wrap a healthy inner transport
// (usually a PipeTransport) and the reactor on top sees exactly the byte
// stream a hostile network would produce.
struct FaultPlan {
  // Deliver at most this many inbound bytes, then go silent — no EOF, the
  // bytes simply stop (AtEof stays false). SIZE_MAX = no stall.
  size_t stall_inbound_after = SIZE_MAX;
  // Deliver at most this many inbound bytes, then report EOF — the mid-frame
  // FIN of a vanished peer. SIZE_MAX = no early close.
  size_t close_inbound_after = SIZE_MAX;
  // Outbound bytes forwarded per Flush() call (short writes). Values < 1
  // are treated as 1 so a flush always eventually completes.
  size_t max_flush_bytes = SIZE_MAX;
  // 1-based call index on which Drain()/Flush() fail with INTERNAL
  // (0 = never). Models recv/send returning an unexpected errno.
  size_t fail_drain_on_call = 0;
  size_t fail_flush_on_call = 0;
};

class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultPlan plan)
      : inner_(std::move(inner)), plan_(plan) {
    set_peer(inner_->peer());  // faults do not change who the peer is
  }

  int descriptor() const noexcept override { return inner_->descriptor(); }
  Result<size_t> Drain(Bytes& out) override;
  Status Send(ByteView data) override;
  Result<bool> Flush() override;
  bool AtEof() const override;
  void Close() override { inner_->Close(); }

  // Observability for tests.
  size_t inbound_delivered() const noexcept { return delivered_; }
  size_t drain_calls() const noexcept { return drain_calls_; }
  size_t flush_calls() const noexcept { return flush_calls_; }

 private:
  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;
  Bytes stage_;     // drained from inner but withheld from the reactor
  Bytes outbound_;  // sent by the reactor but not yet forwarded to inner
  size_t delivered_ = 0;
  size_t drain_calls_ = 0;
  size_t flush_calls_ = 0;
};

// ---- Listeners -------------------------------------------------------------

// An accept source the front end's reactors draw connections from. The
// contract is SO_REUSEPORT-shaped: TryAccept is non-blocking, THREAD-SAFE,
// and hands each pending connection to exactly one caller — so N reactor
// threads may race one shared listener and the kernel-style dedup falls out
// of the implementation, not the callers.
class Listener {
 public:
  virtual ~Listener() = default;

  // File descriptor for poll(2) readiness, or -1 for memory-backed
  // listeners (swept unconditionally, like memory transports).
  virtual int descriptor() const noexcept { return -1; }

  // Non-blocking accept: nullptr when no connection is pending.
  virtual Result<std::unique_ptr<Transport>> TryAccept() = 0;
};

// In-memory accept source: tests and benchmarks Push() pre-built transports
// (usually PipeTransports whose peer end a test client drives) and reactors
// TryAccept() them in FIFO order. Mutex-guarded so it doubles as the
// per-shard inbox of a threaded FrontendGroup.
class MemoryListener final : public Listener {
 public:
  void Push(std::unique_ptr<Transport> transport) {
    const std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(std::move(transport));
  }
  size_t pending() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }
  Result<std::unique_ptr<Transport>> TryAccept() override {
    const std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return std::unique_ptr<Transport>{};
    std::unique_ptr<Transport> transport = std::move(pending_.front());
    pending_.pop_front();
    return transport;
  }

 private:
  mutable std::mutex mu_;
  std::deque<std::unique_ptr<Transport>> pending_;
};

// ---- Framing peeks ---------------------------------------------------------
// Completeness checks over queued-but-unconsumed bytes, for drivers that
// bridge the blocking client library onto a non-blocking transport (the TCP
// selftest and the benches pump the socket until the next protocol unit is
// whole, then let the client consume it).

// True when `count` consecutive u32-length-prefixed frames are fully queued.
bool HasCompleteFrames(const crypto::DuplexPipe::Endpoint& endpoint,
                       size_t count);

// True when one complete secure-channel record (12-byte header, ciphertext,
// 32-byte MAC tag) is fully queued.
bool HasCompleteSecureRecord(const crypto::DuplexPipe::Endpoint& endpoint);

// True when `count` consecutive complete secure-channel records are fully
// queued (fleet clients await one verdict record per group member).
bool HasCompleteSecureRecords(const crypto::DuplexPipe::Endpoint& endpoint,
                              size_t count);

}  // namespace engarde::net

#endif  // ENGARDE_NET_TRANSPORT_H_
