#include "net/tcp.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

namespace engarde::net {
namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return InternalError(std::string("fcntl(O_NONBLOCK): ") +
                         std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

TcpTransport::TcpTransport(int fd) : fd_(fd) {
  (void)SetNonBlocking(fd_);
  // Provisioning exchanges are short framed bursts; coalescing hurts.
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpTransport::~TcpTransport() { Close(); }

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, uint16_t port, uint64_t timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("invalid IPv4 address: " + host);
  }
  // Non-blocking connect with a bounded wait: a blackholed or unroutable
  // server must surface DEADLINE_EXCEEDED, never park the client in the
  // kernel's minutes-long default connect timeout.
  const Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  int rc = 0;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && errno != EINPROGRESS) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("connect: " + err);
  }
  if (rc < 0) {  // EINPROGRESS: wait for writability, re-arming after EINTR
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          give_up - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        ::close(fd);
        return DeadlineExceededError("connect to " + host + ":" +
                                     std::to_string(port) + " timed out after " +
                                     std::to_string(timeout_ms) + "ms");
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (ready < 0) {
        if (errno == EINTR) continue;
        const std::string err = std::strerror(errno);
        ::close(fd);
        return InternalError("poll(connect): " + err);
      }
      if (ready > 0) break;
      // ready == 0: poll's own timeout; loop re-checks the deadline.
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return InternalError("getsockopt(SO_ERROR): " + err);
    }
    if (so_error != 0) {
      ::close(fd);
      return InternalError(std::string("connect: ") +
                           std::strerror(so_error));
    }
  }
  return std::make_unique<TcpTransport>(fd);
}

Result<size_t> TcpTransport::Drain(Bytes& out) {
  if (fd_ < 0) return size_t{0};
  size_t moved = 0;
  uint8_t buffer[16384];
  for (;;) {
    const ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (got > 0) {
      AppendBytes(out, ByteView(buffer, static_cast<size_t>(got)));
      moved += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) {
      peer_closed_ = true;
      break;
    }
    // A signal interrupting recv does NOT mean the socket is idle — retry,
    // or a level-triggered reactor would strand delivered bytes until the
    // next unrelated wakeup.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == ECONNRESET) {
      peer_closed_ = true;
      break;
    }
    return InternalError(std::string("recv: ") + std::strerror(errno));
  }
  return moved;
}

Status TcpTransport::Send(ByteView data) {
  if (fd_ < 0) return FailedPreconditionError("transport is closed");
  AppendBytes(backlog_, data);
  return Flush().status();
}

Result<bool> TcpTransport::Flush() {
  if (fd_ < 0) return backlog_.empty();
  size_t offset = 0;
  while (offset < backlog_.size()) {
    const ssize_t sent = ::send(fd_, backlog_.data() + offset,
                                backlog_.size() - offset, MSG_NOSIGNAL);
    if (sent > 0) {
      offset += static_cast<size_t>(sent);
      continue;
    }
    if (sent == 0) break;  // no progress, and errno is stale — do not read it
    if (errno == EINTR) continue;  // interrupted, not full: retry the send
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EPIPE || errno == ECONNRESET) {
      // Peer is gone; drop the backlog, EOF surfaces on the read side.
      peer_closed_ = true;
      backlog_.clear();
      return true;
    }
    return InternalError(std::string("send: ") + std::strerror(errno));
  }
  backlog_.erase(backlog_.begin(),
                 backlog_.begin() + static_cast<long>(offset));
  return backlog_.empty();
}

void TcpTransport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::Bind(uint16_t port) {
  return Bind("127.0.0.1", port);
}

Result<TcpListener> TcpListener::Bind(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("invalid IPv4 bind address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("bind: " + err);
  }
  if (::listen(fd, 128) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("getsockname: " + err);
  }
  const Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  return TcpListener(fd, ntohs(addr.sin_port));
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<std::unique_ptr<Transport>> TcpListener::TryAccept() {
  // fd_ is read-only here and accept(2) is kernel-serialized, so reactor
  // threads of a FrontendGroup may race this without extra locking.
  int fd = -1;
  sockaddr_in peer_addr{};
  socklen_t peer_len = sizeof(peer_addr);
  do {
    // EINTR does not mean the queue is empty — retry, or a pending
    // connection waits a whole reactor sweep for no reason.
    peer_len = sizeof(peer_addr);
    fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&peer_addr), &peer_len);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return std::unique_ptr<Transport>();
    }
    return InternalError(std::string("accept: ") + std::strerror(errno));
  }
  auto transport = std::make_unique<TcpTransport>(fd);
  // Tenant tag = remote IP (no port: every connection from one host shares
  // one fair-admission bucket). An inet_ntop failure leaves the peer
  // anonymous rather than failing the accept.
  char ip[INET_ADDRSTRLEN] = {};
  if (peer_addr.sin_family == AF_INET &&
      ::inet_ntop(AF_INET, &peer_addr.sin_addr, ip, sizeof(ip)) != nullptr) {
    transport->set_peer(ip);
  }
  return std::unique_ptr<Transport>(std::move(transport));
}

}  // namespace engarde::net
