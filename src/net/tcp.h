// Non-blocking TCP backend for the provisioning front end: a listener that
// accepts connections without blocking and a Transport over an accepted (or
// connected) socket. Loopback-friendly: tools/engarde-serve --selftest runs
// real clients over 127.0.0.1 against the reactor in one process.
//
// All sockets are set O_NONBLOCK; partial sends are buffered in the
// transport and flushed on later sweeps, so a slow peer never stalls the
// single-threaded reactor.
#ifndef ENGARDE_NET_TCP_H_
#define ENGARDE_NET_TCP_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.h"

namespace engarde::net {

class TcpTransport final : public Transport {
 public:
  // Takes ownership of `fd` and switches it to non-blocking mode.
  explicit TcpTransport(int fd);
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // Client-side connect (used by the selftest and external tools).
  // Non-blocking under the hood with a bounded wait: an unreachable server
  // returns DEADLINE_EXCEEDED after `timeout_ms` instead of parking the
  // caller in the kernel's default (minutes-long) connect timeout.
  static Result<std::unique_ptr<TcpTransport>> Connect(
      const std::string& host, uint16_t port, uint64_t timeout_ms = 5000);

  int descriptor() const noexcept override { return fd_; }
  Result<size_t> Drain(Bytes& out) override;
  Status Send(ByteView data) override;
  Result<bool> Flush() override;
  bool AtEof() const override { return peer_closed_; }
  void Close() override;

 private:
  int fd_;
  bool peer_closed_ = false;  // recv returned 0 (FIN seen)
  Bytes backlog_;             // outbound bytes the socket would not take yet
};

// Implements net::Listener so a FrontendGroup can share one bound socket
// across reactors: accept(2) on a shared fd is kernel-serialized, so racing
// TryAccept from several threads is safe and each connection goes to exactly
// one caller — the in-process analogue of SO_REUSEPORT sharding.
class TcpListener final : public Listener {
 public:
  // Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and listens.
  static Result<TcpListener> Bind(uint16_t port);
  // Binds an explicit IPv4 address ("0.0.0.0" to serve beyond loopback).
  static Result<TcpListener> Bind(const std::string& host, uint16_t port);
  ~TcpListener() override;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  uint16_t port() const noexcept { return port_; }
  int descriptor() const noexcept override { return fd_; }

  // Non-blocking accept: nullptr when no connection is pending.
  Result<std::unique_ptr<Transport>> TryAccept() override;

 private:
  TcpListener(int fd, uint16_t port) noexcept : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace engarde::net

#endif  // ENGARDE_NET_TCP_H_
