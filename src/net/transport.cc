#include "net/transport.h"

#include <algorithm>

#include "crypto/hmac.h"

namespace engarde::net {

Result<size_t> PipeTransport::Drain(Bytes& out) {
  const size_t available = endpoint_.Available();
  if (available == 0) return size_t{0};
  ASSIGN_OR_RETURN(const Bytes chunk, endpoint_.Read(available));
  AppendBytes(out, ByteView(chunk.data(), chunk.size()));
  return chunk.size();
}

Result<size_t> FaultInjectingTransport::Drain(Bytes& out) {
  ++drain_calls_;
  if (plan_.fail_drain_on_call != 0 &&
      drain_calls_ == plan_.fail_drain_on_call) {
    return InternalError("injected drain fault");
  }
  // Always pull from the inner transport so its buffers never grow while we
  // withhold; the faults act on the staged copy.
  Bytes fresh;
  RETURN_IF_ERROR(inner_->Drain(fresh).status());
  AppendBytes(stage_, ByteView(fresh.data(), fresh.size()));
  const size_t cap =
      std::min(plan_.stall_inbound_after, plan_.close_inbound_after);
  const size_t allowance = cap > delivered_ ? cap - delivered_ : 0;
  const size_t take = std::min(allowance, stage_.size());
  if (take > 0) {
    AppendBytes(out, ByteView(stage_.data(), take));
    stage_.erase(stage_.begin(), stage_.begin() + static_cast<long>(take));
    delivered_ += take;
  }
  return take;
}

Status FaultInjectingTransport::Send(ByteView data) {
  AppendBytes(outbound_, data);
  return Flush().status();
}

Result<bool> FaultInjectingTransport::Flush() {
  ++flush_calls_;
  if (plan_.fail_flush_on_call != 0 &&
      flush_calls_ == plan_.fail_flush_on_call) {
    return InternalError("injected flush fault");
  }
  const size_t cap = std::max<size_t>(1, plan_.max_flush_bytes);
  const size_t take = std::min(cap, outbound_.size());
  if (take > 0) {
    RETURN_IF_ERROR(inner_->Send(ByteView(outbound_.data(), take)));
    outbound_.erase(outbound_.begin(),
                    outbound_.begin() + static_cast<long>(take));
  }
  ASSIGN_OR_RETURN(const bool inner_flushed, inner_->Flush());
  return outbound_.empty() && inner_flushed;
}

bool FaultInjectingTransport::AtEof() const {
  if (delivered_ >= plan_.close_inbound_after) return true;  // injected FIN
  if (delivered_ >= plan_.stall_inbound_after) return false;  // silent, not gone
  return stage_.empty() && inner_->AtEof();
}

bool HasCompleteFrames(const crypto::DuplexPipe::Endpoint& endpoint,
                       size_t count) {
  const Bytes prefix = endpoint.Peek(endpoint.Available());
  size_t offset = 0;
  for (size_t i = 0; i < count; ++i) {
    if (prefix.size() - offset < 4) return false;
    const uint32_t length = LoadLe32(prefix.data() + offset);
    if (prefix.size() - offset - 4 < length) return false;
    offset += 4 + length;
  }
  return true;
}

bool HasCompleteSecureRecord(const crypto::DuplexPipe::Endpoint& endpoint) {
  return HasCompleteSecureRecords(endpoint, 1);
}

bool HasCompleteSecureRecords(const crypto::DuplexPipe::Endpoint& endpoint,
                              size_t count) {
  const size_t available = endpoint.Available();
  size_t offset = 0;
  for (size_t i = 0; i < count; ++i) {
    if (available < offset + 12) return false;
    const Bytes prefix = endpoint.Peek(offset + 12);
    const uint32_t length = LoadLe32(prefix.data() + offset);
    offset += 12 + static_cast<size_t>(length) + crypto::HmacSha256::kTagSize;
    if (available < offset) return false;
  }
  return true;
}

}  // namespace engarde::net
