#include "net/transport.h"

#include "crypto/hmac.h"

namespace engarde::net {

Result<size_t> PipeTransport::Drain(Bytes& out) {
  const size_t available = endpoint_.Available();
  if (available == 0) return size_t{0};
  ASSIGN_OR_RETURN(const Bytes chunk, endpoint_.Read(available));
  AppendBytes(out, ByteView(chunk.data(), chunk.size()));
  return chunk.size();
}

bool HasCompleteFrames(const crypto::DuplexPipe::Endpoint& endpoint,
                       size_t count) {
  const Bytes prefix = endpoint.Peek(endpoint.Available());
  size_t offset = 0;
  for (size_t i = 0; i < count; ++i) {
    if (prefix.size() - offset < 4) return false;
    const uint32_t length = LoadLe32(prefix.data() + offset);
    if (prefix.size() - offset - 4 < length) return false;
    offset += 4 + length;
  }
  return true;
}

bool HasCompleteSecureRecord(const crypto::DuplexPipe::Endpoint& endpoint) {
  const size_t available = endpoint.Available();
  if (available < 12) return false;
  const Bytes header = endpoint.Peek(12);
  const uint32_t length = LoadLe32(header.data());
  return available >= 12 + static_cast<size_t>(length) +
                         crypto::HmacSha256::kTagSize;
}

}  // namespace engarde::net
