// The host-OS side of the SGX stack: enclave construction (ECREATE + EADD +
// EEXTEND + EINIT on behalf of a process), process page tables, and EnGarde's
// in-kernel component (paper Section 3): after in-enclave inspection approves
// the client code, this component "marks these pages as executable, but not
// writable. The remaining pages are given write permissions, but are not
// given execute permissions. The host OS component of EnGarde also prevents
// the enclave from being extended after it has been provisioned."
//
// Lifecycle ownership: the host OS is the single owner of per-enclave kernel
// state. Every enclave built through BuildEnclave gets an EnclaveHostRecord
// (page-table overrides, W^X lock flag) that lives exactly as long as the
// enclave: DestroyEnclave tears down the device side (EREMOVE every page,
// free the SECS) *and* reclaims the host-side record, so a provisioning
// front end that creates and destroys thousands of enclaves holds
// steady-state map sizes (tests/sgx_lifecycle_test pins this).
//
// Thread safety: all HostOs state is guarded by the device's recursive
// hardware mutex (see SgxDevice::hardware_mutex() for why the lock is
// shared), so concurrent front-end reactors can build, fault, restrict and
// destroy enclaves against one HostOs without external serialization.
#ifndef ENGARDE_SGX_HOSTOS_H_
#define ENGARDE_SGX_HOSTOS_H_

#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "sgx/device.h"

namespace engarde::sgx {

// Linear-address layout of an EnGarde enclave. All regions page-aligned.
struct EnclaveLayout {
  uint64_t base = 0x10000000;
  uint64_t bootstrap_pages = 16;  // EnGarde + crypto + policy modules (RX)
  uint64_t heap_pages = 10000;    // staging buffer + instruction buffer (RW)
  uint64_t load_pages = 2048;     // where client segments get mapped (RW)
  uint64_t stack_pages = 16;      // client thread stack (RW)
  uint64_t tls_pages = 1;         // thread area; canary at fs:0x28 (RW)

  uint64_t BootstrapStart() const { return base; }
  uint64_t HeapStart() const {
    return BootstrapStart() + bootstrap_pages * kPageSize;
  }
  uint64_t LoadStart() const { return HeapStart() + heap_pages * kPageSize; }
  uint64_t StackStart() const { return LoadStart() + load_pages * kPageSize; }
  uint64_t TlsStart() const { return StackStart() + stack_pages * kPageSize; }
  uint64_t TotalPages() const {
    return bootstrap_pages + heap_pages + load_pages + stack_pages + tls_pages;
  }
  uint64_t TotalSize() const { return TotalPages() * kPageSize; }
};

// Everything the kernel component tracks for one live enclave. Created by
// BuildEnclave, reclaimed by DestroyEnclave.
struct EnclaveHostRecord {
  // Page-table permission overrides; a page absent here is RWX (permissive
  // default until the EnGarde host component restricts it).
  std::map<uint64_t, PagePerms> page_perms;
  // W^X lock: set after provisioning; EAUG requests are refused.
  bool locked = false;
};

class HostOs : public PageTablePolicy, public EpcFaultHandler {
 public:
  explicit HostOs(SgxDevice* device) : device_(device) {
    device_->SetPageTablePolicy(this);
    device_->SetFaultHandler(this);
  }

  SgxDevice* device() noexcept { return device_; }

  // Builds and initializes an EnGarde enclave: bootstrap pages carry
  // `bootstrap_image` (measured into MRENCLAVE), heap/load/stack/TLS pages
  // are added zeroed and writable. Returns the enclave id and registers the
  // host-side lifecycle record.
  Result<uint64_t> BuildEnclave(const EnclaveLayout& layout,
                                ByteView bootstrap_image);

  // Tears the enclave down end to end: EREMOVEs every page and frees the
  // SECS on the device, then reclaims the host-side record (page-table
  // overrides, lock flag). After this the enclave id is gone from every map
  // on both sides — the front end calls this after each verdict.
  Status DestroyEnclave(uint64_t enclave_id);

  // ---- Page tables ------------------------------------------------------
  // PageTablePolicy: permissions default to RWX (permissive) until the
  // EnGarde host component restricts them.
  PagePerms PageTablePerms(uint64_t enclave_id, uint64_t linear) const override;
  Status SetPageTablePerms(uint64_t enclave_id, uint64_t linear,
                           uint64_t page_count, PagePerms perms);

  // ---- EnGarde in-kernel component -----------------------------------------
  // Applies the W^X decision EnGarde's in-enclave component reports:
  // executable pages become R+X, the other pages the loader touched
  // (`span_pages` from LoadStart) stay R+W. Page-table updates are plain
  // kernel memory writes (no SGX instructions) — this is what the paper's
  // prototype measures under "Loading and Relocation".
  Status ApplyWxPolicy(uint64_t enclave_id, const EnclaveLayout& layout,
                       uint64_t span_pages,
                       const std::vector<uint64_t>& executable_pages);

  // SGX2 EPCM hardening: pushes RX into the EPCM for every executable page
  // (EMODPE to gain X, EMODPR + EACCEPT to drop W) so a later page-table
  // flip by a malicious host is powerless. Faults on SGX1 devices — the
  // hardware gap that makes the paper require SGX2 (Section 4).
  Status HardenWxInEpcm(uint64_t enclave_id,
                        const std::vector<uint64_t>& executable_pages);

  // Prevents any further growth of the enclave (EAUG requests are refused).
  Status LockEnclave(uint64_t enclave_id);
  bool IsLocked(uint64_t enclave_id) const;

  // OS service: grow an enclave with zeroed RW pages (pre-lock only).
  Status AugmentPages(uint64_t enclave_id, uint64_t linear,
                      uint64_t page_count);

  // ---- Demand paging (the SGX driver's EWB/ELDU duty) -----------------------
  // EpcFaultHandler: an access touched an evicted page. Evict a victim if
  // the EPC is full (FIFO over the enclave's resident pages), then ELDU the
  // faulting page back.
  Status OnEpcFault(uint64_t enclave_id, uint64_t linear) override;
  // Explicitly push `count` of the enclave's resident pages out to the
  // encrypted backing store (memory-pressure simulation).
  Status EvictPages(uint64_t enclave_id, uint64_t count);
  uint64_t epc_faults_handled() const { return faults_handled_; }
  uint64_t pages_evicted() const { return pages_evicted_; }

  // ---- Lifecycle introspection ---------------------------------------------
  // Map-size telemetry the lifecycle soak pins: after N create/destroy
  // cycles all three return to their baseline.
  size_t TrackedEnclaveCount() const;
  size_t PageTableEntryCount() const;  // sum of per-enclave override entries
  size_t LockRecordCount() const;      // enclaves currently W^X-locked

 private:
  // Picks an eviction victim among the enclave's resident pages, preferring
  // pages other than `protect_linear`.
  Status EvictOneVictim(uint64_t enclave_id, uint64_t protect_linear);

  // The record for a live enclave; creates it lazily so page-table services
  // keep their historical any-id permissiveness (destroy still reclaims).
  EnclaveHostRecord& RecordFor(uint64_t enclave_id);

  SgxDevice* device_;
  uint64_t faults_handled_ = 0;
  uint64_t pages_evicted_ = 0;
  // enclave id -> host-side lifecycle record. Guarded by the device's
  // hardware mutex, like every other member.
  std::map<uint64_t, EnclaveHostRecord> records_;
};

}  // namespace engarde::sgx

#endif  // ENGARDE_SGX_HOSTOS_H_
