// The host-OS side of the SGX stack: enclave construction (ECREATE + EADD +
// EEXTEND + EINIT on behalf of a process), process page tables, and EnGarde's
// in-kernel component (paper Section 3): after in-enclave inspection approves
// the client code, this component "marks these pages as executable, but not
// writable. The remaining pages are given write permissions, but are not
// given execute permissions. The host OS component of EnGarde also prevents
// the enclave from being extended after it has been provisioned."
//
// Lifecycle ownership: the host OS is the single owner of per-enclave kernel
// state. Every enclave built through BuildEnclave gets an EnclaveHostRecord
// (page-table overrides, W^X lock flag) that lives exactly as long as the
// enclave: DestroyEnclave tears down the device side (EREMOVE every page,
// free the SECS) *and* reclaims the host-side record, so a provisioning
// front end that creates and destroys thousands of enclaves holds
// steady-state map sizes (tests/sgx_lifecycle_test pins this).
//
// Thread safety: all HostOs state is guarded by the device's recursive
// hardware mutex (see SgxDevice::hardware_mutex() for why the lock is
// shared), so concurrent front-end reactors can build, fault, restrict and
// destroy enclaves against one HostOs without external serialization.
#ifndef ENGARDE_SGX_HOSTOS_H_
#define ENGARDE_SGX_HOSTOS_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "sgx/device.h"

namespace engarde::sgx {

// Linear-address layout of an EnGarde enclave. All regions page-aligned.
struct EnclaveLayout {
  uint64_t base = 0x10000000;
  uint64_t bootstrap_pages = 16;  // EnGarde + crypto + policy modules (RX)
  uint64_t heap_pages = 10000;    // staging buffer + instruction buffer (RW)
  uint64_t load_pages = 2048;     // where client segments get mapped (RW)
  uint64_t stack_pages = 16;      // client thread stack (RW)
  uint64_t tls_pages = 1;         // thread area; canary at fs:0x28 (RW)

  uint64_t BootstrapStart() const { return base; }
  uint64_t HeapStart() const {
    return BootstrapStart() + bootstrap_pages * kPageSize;
  }
  uint64_t LoadStart() const { return HeapStart() + heap_pages * kPageSize; }
  uint64_t StackStart() const { return LoadStart() + load_pages * kPageSize; }
  uint64_t TlsStart() const { return StackStart() + stack_pages * kPageSize; }
  uint64_t TotalPages() const {
    return bootstrap_pages + heap_pages + load_pages + stack_pages + tls_pages;
  }
  uint64_t TotalSize() const { return TotalPages() * kPageSize; }
};

// Tuning for the ksgxd-style background reclaimer. The defaults mirror the
// Linux driver's shape: a small scan batch (SGX_NR_TO_SCAN) and a
// low/high watermark pair the daemon reclaims between.
struct ReclaimerOptions {
  // Wake and reclaim when free EPC drops below this many pages.
  uint64_t low_watermark_pages = 128;
  // Reclaim until free EPC reaches this; 0 = twice the low watermark.
  uint64_t high_watermark_pages = 0;
  // EWB writebacks per aging scan (the driver's SGX_NR_TO_SCAN).
  size_t batch_pages = 16;
  // Wait re-arm period. The daemon reclaims only when pressure was signalled
  // (like ksgxd sleeping on its waitqueue until an allocator wakes it); a
  // timeout wake is just a backstop re-check, never a reclaim trigger —
  // under oversubscription free EPC sits below any watermark by design, so a
  // poll-triggered watermark check would degenerate into evicting live
  // working sets on every period.
  uint64_t poll_interval_ms = 5;
};

// Everything the kernel component tracks for one live enclave. Created by
// BuildEnclave, reclaimed by DestroyEnclave.
struct EnclaveHostRecord {
  // Page-table permission overrides; a page absent here is RWX (permissive
  // default until the EnGarde host component restricts it).
  std::map<uint64_t, PagePerms> page_perms;
  // W^X lock: set after provisioning; EAUG requests are refused.
  bool locked = false;
};

class HostOs : public PageTablePolicy, public EpcFaultHandler {
 public:
  explicit HostOs(SgxDevice* device) : device_(device) {
    device_->SetPageTablePolicy(this);
    device_->SetFaultHandler(this);
  }
  ~HostOs() { StopReclaimer(); }

  SgxDevice* device() noexcept { return device_; }

  // Builds and initializes an EnGarde enclave: bootstrap pages carry
  // `bootstrap_image` (measured into MRENCLAVE), heap/load/stack/TLS pages
  // are added zeroed and writable. Returns the enclave id and registers the
  // host-side lifecycle record.
  Result<uint64_t> BuildEnclave(const EnclaveLayout& layout,
                                ByteView bootstrap_image);

  // Tears the enclave down end to end: EREMOVEs every page and frees the
  // SECS on the device, then reclaims the host-side record (page-table
  // overrides, lock flag). After this the enclave id is gone from every map
  // on both sides — the front end calls this after each verdict.
  Status DestroyEnclave(uint64_t enclave_id);

  // ---- Page tables ------------------------------------------------------
  // PageTablePolicy: permissions default to RWX (permissive) until the
  // EnGarde host component restricts them.
  PagePerms PageTablePerms(uint64_t enclave_id, uint64_t linear) const override;
  Status SetPageTablePerms(uint64_t enclave_id, uint64_t linear,
                           uint64_t page_count, PagePerms perms);

  // ---- EnGarde in-kernel component -----------------------------------------
  // Applies the W^X decision EnGarde's in-enclave component reports:
  // executable pages become R+X, the other pages the loader touched
  // (`span_pages` from LoadStart) stay R+W. Page-table updates are plain
  // kernel memory writes (no SGX instructions) — this is what the paper's
  // prototype measures under "Loading and Relocation".
  Status ApplyWxPolicy(uint64_t enclave_id, const EnclaveLayout& layout,
                       uint64_t span_pages,
                       const std::vector<uint64_t>& executable_pages);

  // SGX2 EPCM hardening: pushes RX into the EPCM for every executable page
  // (EMODPE to gain X, EMODPR + EACCEPT to drop W) so a later page-table
  // flip by a malicious host is powerless. Faults on SGX1 devices — the
  // hardware gap that makes the paper require SGX2 (Section 4).
  Status HardenWxInEpcm(uint64_t enclave_id,
                        const std::vector<uint64_t>& executable_pages);

  // Prevents any further growth of the enclave (EAUG requests are refused).
  Status LockEnclave(uint64_t enclave_id);
  bool IsLocked(uint64_t enclave_id) const;

  // OS service: grow an enclave with zeroed RW pages (pre-lock only).
  Status AugmentPages(uint64_t enclave_id, uint64_t linear,
                      uint64_t page_count);

  // ---- Demand paging (the SGX driver's EWB/ELDU duty) -----------------------
  // EpcFaultHandler: an access touched an evicted page. ELDU it back,
  // writing back a batch of globally-cold pages first when the EPC is full
  // (falling back to one of the faulting enclave's own pages when everything
  // else is pinned hot). Every EWB/ELDU here is charged to the device-wide
  // accountant, never the calling session's, so paging traffic can never
  // perturb per-phase session attribution.
  //
  // Backpressure contract: when even reclaim cannot make room (every
  // resident page pinned, or a concurrent allocator races the freed slot
  // away), this returns RESOURCE_EXHAUSTED — a *retryable* status
  // (core::IsRetryableResourceError) that propagates out of the faulting
  // EnclaveRead/Write/fetch. Callers are expected to back off and retry the
  // access; they must not treat it as a hard fault.
  Status OnEpcFault(uint64_t enclave_id, uint64_t linear) override;
  // Explicitly push `count` of the enclave's resident pages out to the
  // encrypted backing store (memory-pressure simulation).
  Status EvictPages(uint64_t enclave_id, uint64_t count);

  // ---- Background reclaimer (ksgxd) ----------------------------------------
  // Spawns the reclaimer thread: it sleeps until NotifyEpcPressure() and,
  // when free EPC is below the low watermark, ages the device LRU and EWBs
  // cold (unreferenced) pages in batches until free EPC reaches the high
  // watermark or the aging scan comes back empty.
  Status StartReclaimer(const ReclaimerOptions& options);
  // Joins the thread. Idempotent; also run by the destructor.
  void StopReclaimer();
  bool reclaimer_running() const;
  // Kicks the reclaimer without blocking: called from the fault path and by
  // the front end when an admission drops free EPC below its watermark.
  void NotifyEpcPressure();
  // Synchronous reclaim step (also the reclaimer thread's worker): one aging
  // scan + writeback of up to `max_pages` victims. Returns pages written
  // back. Exposed so tests and the fault path get deterministic reclaim.
  // `force` = harvest even freshly-aged pages (see
  // SgxDevice::SelectReclaimVictims); the daemon leaves it off.
  size_t ReclaimBatch(size_t max_pages, bool force = false);

  uint64_t epc_faults_handled() const {
    return faults_handled_.load(std::memory_order_relaxed);
  }
  uint64_t pages_evicted() const {
    return pages_evicted_.load(std::memory_order_relaxed);
  }
  uint64_t pages_reclaimed() const {
    return pages_reclaimed_.load(std::memory_order_relaxed);
  }
  uint64_t reclaim_wakeups() const {
    return reclaim_wakeups_.load(std::memory_order_relaxed);
  }
  uint64_t eldu_loads() const {
    return eldu_loads_.load(std::memory_order_relaxed);
  }

  // ---- Lifecycle introspection ---------------------------------------------
  // Map-size telemetry the lifecycle soak pins: after N create/destroy
  // cycles all three return to their baseline.
  size_t TrackedEnclaveCount() const;
  size_t PageTableEntryCount() const;  // sum of per-enclave override entries
  size_t LockRecordCount() const;      // enclaves currently W^X-locked

 private:
  // Picks an eviction victim among the enclave's resident pages, preferring
  // pages other than `protect_linear`. The last-resort path when the global
  // LRU has nothing reclaimable (self-eviction cannot thrash a sibling).
  Status EvictOneVictim(uint64_t enclave_id, uint64_t protect_linear);
  // ReclaimBatch body; caller holds the hardware mutex.
  size_t ReclaimBatchLocked(size_t max_pages, bool force = false);
  // Makes room for one page during a build or fault: global LRU batch
  // first, same-enclave victim as fallback.
  Status MakeRoom(uint64_t enclave_id, uint64_t protect_linear);
  void ReclaimerMain(ReclaimerOptions options);

  // The record for a live enclave; creates it lazily so page-table services
  // keep their historical any-id permissiveness (destroy still reclaims).
  EnclaveHostRecord& RecordFor(uint64_t enclave_id);

  SgxDevice* device_;
  // Paging counters are relaxed atomics: bumped under the hardware mutex by
  // reactor threads and the reclaimer, read lock-free by metrics snapshots.
  std::atomic<uint64_t> faults_handled_{0};
  std::atomic<uint64_t> pages_evicted_{0};
  std::atomic<uint64_t> pages_reclaimed_{0};
  std::atomic<uint64_t> reclaim_wakeups_{0};
  std::atomic<uint64_t> eldu_loads_{0};
  // Batch size the fault path uses; set under the hardware mutex by
  // StartReclaimer, read under it by OnEpcFault/BuildEnclave.
  size_t fault_reclaim_batch_ = 16;
  // enclave id -> host-side lifecycle record. Guarded by the device's
  // hardware mutex, like every other member above.
  std::map<uint64_t, EnclaveHostRecord> records_;
  // Reclaimer thread plumbing. reclaim_mu_ is ordered AFTER the hardware
  // mutex (NotifyEpcPressure may run with it held); the reclaimer thread
  // never holds reclaim_mu_ while taking the hardware mutex.
  mutable std::mutex reclaim_mu_;
  std::condition_variable reclaim_cv_;
  std::thread reclaimer_;
  bool reclaim_stop_ = false;      // guarded by reclaim_mu_
  bool reclaim_pressure_ = false;  // guarded by reclaim_mu_
  bool reclaimer_running_ = false; // guarded by reclaim_mu_
};

}  // namespace engarde::sgx

#endif  // ENGARDE_SGX_HOSTOS_H_
