// The paper's cost model (Section 5): "we adopt the approach suggested in the
// OpenSGX paper and assume that each SGX instruction takes 10K CPU cycles and
// non-SGX instructions run at native speed within the enclave."
//
// CycleAccountant reproduces that accounting: every emulated SGX instruction
// (ECREATE, EADD, EEXTEND, EENTER/EEXIT trampolines, ...) charges 10,000
// cycles; non-SGX work is measured natively with a monotonic clock and
// converted at the paper's 3.5 GHz clock. Costs are attributed to the
// currently active provisioning phase so the benchmark harness can print the
// same per-phase columns as Figures 3-5.
#ifndef ENGARDE_SGX_COST_MODEL_H_
#define ENGARDE_SGX_COST_MODEL_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace engarde::sgx {

enum class Phase : uint8_t {
  kIdle = 0,        // enclave build, attestation, everything out of scope
  kChannel,         // receiving + decrypting client blocks
  kContainer,       // ELF header validation + code/data page separation
  kDisassembly,     // NaCl-style disassembly into the instruction buffer
  kPolicyCheck,     // running policy modules
  kLoading,         // mapping segments, relocating, page-table permissions
                    // (this is the paper's "Loading and Relocation" column —
                    // their SGX1-era prototype flips page-table bits only)
  kWxHardening,     // SGX2 EPCM hardening (EMODPE/EMODPR/EACCEPT per code
                    // page) — not part of the paper's measured prototype
  kCount,
};

std::string_view PhaseName(Phase phase) noexcept;

// Counting (CountSgxInstruction / CountTrampoline) is thread-safe via
// relaxed atomics: the parallel inspection engine may charge SGX
// instructions from several shards at once, and per-shard counts aggregate
// to the same per-phase totals in any interleaving — cycle attribution stays
// deterministic regardless of thread count. Phase transitions
// (Begin/EndPhase, Reset) remain orchestrator-only: they must not race with
// concurrent counting, which EnGarde's strictly sequential phase structure
// guarantees (worker shards only ever run *inside* one phase).
class CycleAccountant {
 public:
  static constexpr uint64_t kSgxInstructionCycles = 10'000;
  static constexpr double kClockGhz = 3.5;

  // Charges one SGX instruction to the current phase.
  void CountSgxInstruction() noexcept;
  // An enclave exit + re-entry (the malloc/syscall trampoline) is two SGX
  // instructions: EEXIT and EENTER.
  void CountTrampoline() noexcept;

  // Phase control. Begin/End must nest trivially (no recursion) — EnGarde's
  // provisioning pipeline is strictly sequential, as in the paper.
  void BeginPhase(Phase phase) noexcept;
  void EndPhase() noexcept;

  struct PhaseCost {
    uint64_t native_ns = 0;
    uint64_t sgx_instructions = 0;

    // Cycles under the paper's model: native time at 3.5 GHz + 10K per SGX
    // instruction.
    uint64_t Cycles() const noexcept {
      return static_cast<uint64_t>(static_cast<double>(native_ns) * kClockGhz) +
             sgx_instructions * kSgxInstructionCycles;
    }
  };

  // Returned by value: the snapshot is assembled from the atomic counters.
  PhaseCost phase_cost(Phase phase) const noexcept {
    const size_t i = static_cast<size_t>(phase);
    return PhaseCost{native_ns_[i],
                     sgx_counts_[i].load(std::memory_order_relaxed)};
  }
  uint64_t total_sgx_instructions() const noexcept {
    return total_sgx_.load(std::memory_order_relaxed);
  }
  uint64_t total_trampolines() const noexcept {
    return trampolines_.load(std::memory_order_relaxed);
  }

  void Reset() noexcept;

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr size_t kPhases = static_cast<size_t>(Phase::kCount);

  std::array<uint64_t, kPhases> native_ns_{};
  std::array<std::atomic<uint64_t>, kPhases> sgx_counts_{};
  std::atomic<Phase> current_{Phase::kIdle};
  Clock::time_point phase_start_ = Clock::now();
  std::atomic<uint64_t> total_sgx_{0};
  std::atomic<uint64_t> trampolines_{0};
};

// Accountant override for the calling thread, if any (see ScopedAccountant).
CycleAccountant* ThreadAccountantOverride() noexcept;

// Redirects SGX-instruction charges made *from the current thread* to a
// session-private accountant for the scope's lifetime. A ProvisioningServer
// drives each session under one of these, so charges from concurrently
// interleaved device calls land on the owning session's accountant and the
// per-phase attribution stays deterministic. Worker-pool shards are
// unaffected: they charge through pointers captured when the stage started.
class ScopedAccountant {
 public:
  explicit ScopedAccountant(CycleAccountant* accountant) noexcept;
  ~ScopedAccountant();
  ScopedAccountant(const ScopedAccountant&) = delete;
  ScopedAccountant& operator=(const ScopedAccountant&) = delete;

 private:
  CycleAccountant* previous_;
};

// RAII phase scope.
class ScopedPhase {
 public:
  ScopedPhase(CycleAccountant* accountant, Phase phase) noexcept
      : accountant_(accountant) {
    if (accountant_) accountant_->BeginPhase(phase);
  }
  ~ScopedPhase() {
    if (accountant_) accountant_->EndPhase();
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  CycleAccountant* accountant_;
};

}  // namespace engarde::sgx

#endif  // ENGARDE_SGX_COST_MODEL_H_
