// The Enclave Page Cache (EPC) and its metadata (EPCM), as described in
// paper Section 2: physical pages whose contents the hardware protects, with
// per-page metadata tracking validity, owning enclave, linear address, page
// type and (on SGX2) permissions and pending state.
//
// The paper's prototype raises OpenSGX's default of 2,000 EPC pages to
// 32,000 (128 MB) so that the client executable plus its decoded instruction
// buffer fit; we use the same default.
#ifndef ENGARDE_SGX_EPC_H_
#define ENGARDE_SGX_EPC_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace engarde::sgx {

inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kDefaultEpcPages = 32000;  // 128 MB, per the paper

struct PagePerms {
  bool r = false;
  bool w = false;
  bool x = false;

  static PagePerms RW() { return {true, true, false}; }
  static PagePerms RX() { return {true, false, true}; }
  static PagePerms R() { return {true, false, false}; }
  static PagePerms RWX() { return {true, true, true}; }

  bool Covers(const PagePerms& other) const {
    return (!other.r || r) && (!other.w || w) && (!other.x || x);
  }
  bool operator==(const PagePerms&) const = default;
};

enum class PageType : uint8_t { kSecs, kTcs, kReg };

struct EpcmEntry {
  bool valid = false;
  uint64_t enclave_id = 0;
  uint64_t linear_addr = 0;
  PageType type = PageType::kReg;
  PagePerms perms;
  bool pending = false;   // SGX2: EAUG'd, awaiting EACCEPT
  bool evicted = false;   // swapped out via EWB
  // Reference bit for the reclaimer's second-chance aging: set on every
  // resolved enclave access, cleared by SgxDevice::SelectReclaimVictims.
  bool accessed = false;
};

class Epc {
 public:
  explicit Epc(size_t num_pages = kDefaultEpcPages) : entries_(num_pages) {
    storage_.resize(num_pages);
  }

  size_t capacity() const noexcept { return entries_.size(); }
  // Occupancy counters are relaxed atomics: mutation happens under the
  // device's hardware mutex, but the background reclaimer's watermark checks
  // and metrics snapshots read them lock-free from other threads.
  size_t pages_in_use() const noexcept {
    return in_use_.load(std::memory_order_relaxed);
  }
  size_t free_pages() const noexcept {
    return entries_.size() - pages_in_use();
  }
  // High-water mark of pages_in_use over the EPC's lifetime: lets admission
  // tests assert the device itself never held more pages than the shared
  // budget allows, regardless of how many reactors were committing.
  size_t peak_pages_in_use() const noexcept {
    return peak_in_use_.load(std::memory_order_relaxed);
  }

  // Finds a free page and marks it valid. Page storage is allocated lazily so
  // a 128 MB EPC does not cost 128 MB of host memory up front.
  Result<size_t> AllocatePage();
  Status FreePage(size_t index);

  EpcmEntry& Entry(size_t index) { return entries_[index]; }
  const EpcmEntry& Entry(size_t index) const { return entries_[index]; }

  // Plaintext page content, as seen from inside the owning enclave. The
  // "hardware encryption" boundary is enforced by SgxDevice, which refuses to
  // hand this view to non-enclave accessors.
  uint8_t* PageData(size_t index);

 private:
  std::vector<EpcmEntry> entries_;
  std::vector<std::unique_ptr<uint8_t[]>> storage_;
  std::atomic<size_t> in_use_{0};
  std::atomic<size_t> peak_in_use_{0};
  size_t next_hint_ = 0;
};

}  // namespace engarde::sgx

#endif  // ENGARDE_SGX_EPC_H_
