#include "sgx/epc.h"

#include <algorithm>
#include <cstring>

namespace engarde::sgx {

Result<size_t> Epc::AllocatePage() {
  if (pages_in_use() == entries_.size()) {
    return ResourceExhaustedError("EPC is full (" +
                                  std::to_string(entries_.size()) + " pages)");
  }
  for (size_t probe = 0; probe < entries_.size(); ++probe) {
    const size_t index = (next_hint_ + probe) % entries_.size();
    if (!entries_[index].valid) {
      entries_[index] = EpcmEntry{};
      entries_[index].valid = true;
      if (!storage_[index]) {
        storage_[index] = std::make_unique<uint8_t[]>(kPageSize);
      }
      std::memset(storage_[index].get(), 0, kPageSize);
      const size_t now_in_use =
          in_use_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (now_in_use > peak_in_use_.load(std::memory_order_relaxed)) {
        peak_in_use_.store(now_in_use, std::memory_order_relaxed);
      }
      next_hint_ = index + 1;
      return index;
    }
  }
  return InternalError("EPC bookkeeping out of sync");
}

Status Epc::FreePage(size_t index) {
  if (index >= entries_.size()) {
    return OutOfRangeError("EPC page index out of range");
  }
  if (!entries_[index].valid) {
    return FailedPreconditionError("freeing an invalid EPC page");
  }
  entries_[index] = EpcmEntry{};
  // Scrub on free: evicted or reused pages must never leak plaintext.
  std::memset(storage_[index].get(), 0, kPageSize);
  in_use_.fetch_sub(1, std::memory_order_relaxed);
  return Status::Ok();
}

uint8_t* Epc::PageData(size_t index) { return storage_[index].get(); }

}  // namespace engarde::sgx
