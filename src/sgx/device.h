// Software model of an SGX-capable CPU: enclave lifecycle instructions
// (SGX1: ECREATE/EADD/EEXTEND/EINIT/EENTER/EEXIT/EREMOVE/EWB/ELDU/EREPORT;
// SGX2: EAUG/EACCEPT/EMODPR/EMODPE), the EPC with per-page EPCM checks, and
// the measurement register (MRENCLAVE).
//
// Why a model and not hardware: the paper itself runs on OpenSGX, a QEMU
// emulator, because (Section 4) SGX1 silicon cannot change EPC page
// permissions — which EnGarde's W^X enforcement requires — while SGX2 was
// not commercially available. The device takes an `sgx_version` knob so the
// benchmarks can demonstrate exactly that gap: EMODPR/EMODPE fault on
// version 1 and succeed on version 2.
//
// Every instruction charges 10K cycles through the CycleAccountant, matching
// the paper's cost model.
#ifndef ENGARDE_SGX_DEVICE_H_
#define ENGARDE_SGX_DEVICE_H_

#include <array>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"
#include "crypto/sha256.h"
#include "sgx/cost_model.h"
#include "sgx/epc.h"
#include "x86/interp.h"

namespace engarde::sgx {

// Hardware report produced by EREPORT: consumed by the quoting enclave.
struct Report {
  crypto::Sha256Digest mr_enclave{};
  uint64_t enclave_id = 0;
  uint64_t attributes = 0;  // bit 0: initialized; bit 1: sgx2 features
  std::array<uint8_t, 64> report_data{};  // user data (binds the RSA key)

  Bytes Serialize() const;
  static Result<Report> Deserialize(ByteView data);
};

// The OS-owned page-table view of an enclave's pages. SGX performs a
// "two-level page protection check ... at the page-table level and at the
// hardware level" (Section 4); HostOs implements this interface.
class PageTablePolicy {
 public:
  virtual ~PageTablePolicy() = default;
  // Permissions the OS page tables grant for the page containing `linear`.
  virtual PagePerms PageTablePerms(uint64_t enclave_id,
                                   uint64_t linear) const = 0;
};

// EPC-fault delegate: when an access touches an evicted page, the device
// raises a fault to the OS, which (like a real SGX driver) ELDUs it back —
// evicting a victim first if the EPC is full. Registered by HostOs.
class EpcFaultHandler {
 public:
  virtual ~EpcFaultHandler() = default;
  // Make the page at `linear` resident again. OK = retry the access.
  virtual Status OnEpcFault(uint64_t enclave_id, uint64_t linear) = 0;
};

class SgxDevice {
 public:
  struct Options {
    size_t epc_pages = kDefaultEpcPages;
    int sgx_version = 2;  // 1 = Skylake-era (no EPC perm changes), 2 = full
    // Root of the device's key hierarchy (fused at manufacturing on real
    // hardware; a seed here so tests are reproducible).
    Bytes device_seed = {0xde, 0x71, 0xce, 0x00};
  };

  explicit SgxDevice(const Options& options,
                     CycleAccountant* accountant = nullptr);

  int sgx_version() const noexcept { return sgx_version_; }
  Epc& epc() noexcept { return epc_; }
  // The accountant device operations charge: the calling thread's session
  // accountant when a ScopedAccountant is active, else the device-wide one.
  CycleAccountant* accountant() const noexcept {
    CycleAccountant* tls = ThreadAccountantOverride();
    return tls != nullptr ? tls : accountant_;
  }
  // Serializes every public device operation so concurrent provisioning
  // sessions can share one device. Recursive, and deliberately shared with
  // HostOs for its own state (page tables, lock set): faults re-enter the
  // device through the registered handler and HostOs services call back into
  // the device, so two locks would deadlock ABBA-style.
  std::recursive_mutex& hardware_mutex() const noexcept { return hw_mu_; }
  void SetPageTablePolicy(const PageTablePolicy* policy) noexcept {
    page_table_ = policy;
  }
  void SetFaultHandler(EpcFaultHandler* handler) noexcept {
    fault_handler_ = handler;
  }

  // ---- SGX1 lifecycle ------------------------------------------------------
  // ECREATE: allocates the SECS page and opens the measurement log.
  Result<uint64_t> ECreate(uint64_t base, uint64_t size);
  // EADD: adds a 4K page at `linear` with `content` (<= 4096 bytes,
  // zero-padded) and initial EPCM permissions. Pre-EINIT only.
  Status EAdd(uint64_t enclave_id, uint64_t linear, ByteView content,
              PagePerms perms, PageType type = PageType::kReg);
  // EEXTEND: measures one 256-byte chunk at `chunk_linear` into MRENCLAVE.
  Status EExtend(uint64_t enclave_id, uint64_t chunk_linear);
  // Convenience: EEXTENDs all 16 chunks of a page (16 SGX instructions).
  Status ExtendPage(uint64_t enclave_id, uint64_t linear);
  // EINIT: finalizes MRENCLAVE; the enclave becomes enterable.
  Status EInit(uint64_t enclave_id);
  Status EEnter(uint64_t enclave_id);
  Status EExit(uint64_t enclave_id);
  // AEX: asynchronous exit. On real hardware an interrupt (or, at teardown,
  // the kernel's IPI sweep in sgx_encl_release) forces every logical
  // processor out of the enclave without a cooperative EEXIT. Host runtimes
  // that abandon an in-enclave session — a peer that vanished mid-exchange —
  // must force this exit before EREMOVE, which refuses while enter_depth > 0.
  // A no-op for unknown ids or enclaves with nobody inside.
  void AexAll(uint64_t enclave_id) noexcept;
  Status ERemove(uint64_t enclave_id, uint64_t linear);
  Status DestroyEnclave(uint64_t enclave_id);

  // ---- SGX2 dynamic memory -------------------------------------------------
  // EAUG: OS adds a pending RW page to an initialized enclave.
  Status EAug(uint64_t enclave_id, uint64_t linear);
  // EACCEPT: enclave accepts a pending page (or a permission restriction).
  Status EAccept(uint64_t enclave_id, uint64_t linear);
  // EMODPR: OS restricts EPCM permissions (new must be a subset).
  Status EModpr(uint64_t enclave_id, uint64_t linear, PagePerms perms);
  // EMODPE: enclave extends EPCM permissions.
  Status EModpe(uint64_t enclave_id, uint64_t linear, PagePerms perms);

  // ---- Attestation -----------------------------------------------------------
  Result<Report> EReport(uint64_t enclave_id,
                         const std::array<uint8_t, 64>& report_data);

  // EGETKEY: derives an enclave-specific sealing key bound to MRENCLAVE and
  // the device secret. Only the same enclave *code* on the same device gets
  // the same key — the foundation of SGX data sealing. `key_id` selects
  // among multiple keys (wear-out / domain separation).
  Result<crypto::Aes256Key> EGetkey(uint64_t enclave_id, uint64_t key_id);

  // ---- Paging (EWB / ELDU) ---------------------------------------------------
  // Evicts a page: encrypts (AES-256-CTR under the device key), MACs, and
  // versions it, then frees the EPC slot.
  Status Ewb(uint64_t enclave_id, uint64_t linear);
  // Loads an evicted page back, verifying MAC and version (anti-rollback).
  Status Eldu(uint64_t enclave_id, uint64_t linear);

  // ---- Reclaimable-page LRU --------------------------------------------------
  // The Linux SGX driver's shape: every resident REG page is recorded on a
  // global LRU at EADD/EAUG/ELDU time (sgx_record_epc_page), gets its
  // reference bit set on every resolved access, and is aged with a
  // second-chance scan when the reclaimer needs victims (sgx_reclaimer_age).
  // The OS-side writeback of the selected victims is HostOs's job
  // (sgx_encl_ewb); the device only picks and ages.
  struct ReclaimVictim {
    uint64_t enclave_id = 0;
    uint64_t linear = 0;
  };
  // Ages the LRU and returns up to `max_victims` cold pages, oldest first.
  // Pinned enclaves are skipped; a page with its reference bit set gets a
  // second chance (bit cleared, rotated to the young end) unless its enclave
  // is marked reclaim-preferred (idle warm-pool enclaves go first).
  // `force` allows a second clock revolution: when every page carries its
  // reference bit the first pass only ages, and demand paths (a build or
  // fault that must free pages now) harvest on the second pass rather than
  // fail. Background aging leaves `force` off so hot pages keep their grace.
  std::vector<ReclaimVictim> SelectReclaimVictims(size_t max_victims,
                                                  bool force = false);
  // Pin depth > 0 makes every page of the enclave non-reclaimable — held by
  // the front end while an inspection stage is actively touching the
  // enclave, so the reclaimer can never page a hot working set out from
  // under a running session.
  Status PinEnclavePages(uint64_t enclave_id);
  Status UnpinEnclavePages(uint64_t enclave_id);
  bool IsPinned(uint64_t enclave_id) const;
  // Reclaim-preferred enclaves (shelved warm-pool entries) skip second
  // chances and have their pages demoted to the old end of the LRU, so they
  // are written back before any session's pages.
  Status SetReclaimPreferred(uint64_t enclave_id, bool preferred);
  // Pages currently on the reclaim LRU; the leak gates pin this to zero
  // after a full drain.
  size_t ReclaimablePageCount() const;
  // Lock-free watermark probe for the background reclaimer.
  size_t FreeEpcPages() const noexcept { return epc_.free_pages(); }

  // ---- Memory access ---------------------------------------------------------
  // Enclave-software view (EnGarde running inside the enclave). Checks both
  // EPCM and page-table permissions; faults on evicted pages are raised to
  // the registered EpcFaultHandler (demand paging), so these are non-const.
  Status EnclaveWrite(uint64_t enclave_id, uint64_t linear, ByteView data);
  Status EnclaveRead(uint64_t enclave_id, uint64_t linear, MutableByteView out);
  // What an adversary outside the enclave observes: the encrypted page image.
  Result<Bytes> ReadAsOutsider(uint64_t enclave_id, uint64_t linear) const;

  // ---- Introspection ----------------------------------------------------------
  // Live enclaves (SECS allocated, not yet destroyed). The lifecycle soak
  // pins this back to zero after create/destroy churn.
  size_t EnclaveCount() const;
  bool IsInitialized(uint64_t enclave_id) const;
  Result<crypto::Sha256Digest> Measurement(uint64_t enclave_id) const;
  Result<PagePerms> EpcmPerms(uint64_t enclave_id, uint64_t linear) const;
  bool HasPage(uint64_t enclave_id, uint64_t linear) const;
  size_t PageCount(uint64_t enclave_id) const;
  // Linear addresses of the enclave's resident (non-evicted) REG pages, in
  // ascending order. The OS paging policy picks eviction victims from this.
  std::vector<uint64_t> ResidentPages(uint64_t enclave_id) const;
  size_t EvictedPageCount(uint64_t enclave_id) const;

  // x86::MemoryIface adapter over one enclave's address space, for running
  // loaded client code in the interpreter.
  std::unique_ptr<x86::MemoryIface> MakeEnclaveView(uint64_t enclave_id);

 private:
  struct EvictedPage {
    Bytes ciphertext;
    crypto::Sha256Digest mac;
    uint64_t version = 0;
    EpcmEntry entry;
  };

  struct Enclave {
    uint64_t id = 0;
    uint64_t base = 0;
    uint64_t size = 0;
    bool initialized = false;
    int enter_depth = 0;
    crypto::Sha256 measurement_stream;
    crypto::Sha256Digest mr_enclave{};
    std::map<uint64_t, size_t> pages;  // linear page addr -> EPC index
    std::map<uint64_t, EvictedPage> evicted;
    uint64_t next_version = 1;
    // Reclaim policy state (see the LRU section above).
    int pin_depth = 0;
    bool reclaim_preferred = false;
  };

  class EnclaveView;

  void Charge() noexcept {
    CycleAccountant* acct = accountant();
    if (acct) acct->CountSgxInstruction();
  }
  Result<Enclave*> FindEnclave(uint64_t enclave_id);
  Result<const Enclave*> FindEnclave(uint64_t enclave_id) const;
  // Resolves linear -> (epc index, offset in page); checks residency.
  Result<size_t> ResolvePage(const Enclave& enclave, uint64_t linear) const;
  // Like ResolvePage, but on an evicted page raises the EPC fault to the
  // registered handler and retries once (demand paging).
  Result<size_t> ResolvePageFaulting(Enclave& enclave, uint64_t linear);
  PagePerms EffectivePerms(const Enclave& enclave, uint64_t linear,
                           const EpcmEntry& entry) const;
  crypto::Aes256Key PageEncryptionKey(uint64_t enclave_id) const;
  // sgx_record_epc_page: puts a resident REG page on the young end of the
  // reclaim LRU (or rejuvenates it if already recorded).
  void RecordReclaimablePage(uint64_t enclave_id, uint64_t linear);
  // Removes a page from the LRU when it stops being resident (EWB, EREMOVE).
  void DropReclaimRecord(uint64_t enclave_id, uint64_t linear);

  mutable std::recursive_mutex hw_mu_;
  Epc epc_;
  int sgx_version_;
  CycleAccountant* accountant_;
  const PageTablePolicy* page_table_ = nullptr;
  EpcFaultHandler* fault_handler_ = nullptr;
  bool in_fault_ = false;  // re-entrancy guard for the fault path
  Bytes device_secret_;
  std::map<uint64_t, Enclave> enclaves_;
  uint64_t next_enclave_id_ = 1;
  // Global reclaim LRU over resident REG pages: front = oldest/coldest,
  // back = youngest. The index map gives O(log n) rejuvenation on access.
  std::list<ReclaimVictim> reclaim_lru_;
  std::map<std::pair<uint64_t, uint64_t>, std::list<ReclaimVictim>::iterator>
      reclaim_pos_;
};

// RAII pin over one enclave's pages for the duration of an inspection stage:
// the front end wraps each session pump in one of these so the reclaimer
// only ever writes back pages of enclaves that are genuinely idle (shelved
// in the warm pool, or parked between pumps — e.g. stalled in Blocks).
class ScopedEpcPin {
 public:
  ScopedEpcPin(SgxDevice* device, uint64_t enclave_id)
      : device_(device), enclave_id_(enclave_id) {
    pinned_ = device_ != nullptr && device_->PinEnclavePages(enclave_id_).ok();
  }
  ~ScopedEpcPin() {
    if (pinned_) (void)device_->UnpinEnclavePages(enclave_id_);
  }
  ScopedEpcPin(const ScopedEpcPin&) = delete;
  ScopedEpcPin& operator=(const ScopedEpcPin&) = delete;

 private:
  SgxDevice* device_;
  uint64_t enclave_id_;
  bool pinned_ = false;
};

}  // namespace engarde::sgx

#endif  // ENGARDE_SGX_DEVICE_H_
