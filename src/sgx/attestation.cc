#include "sgx/attestation.h"

#include <cstring>

namespace engarde::sgx {

Bytes Quote::Serialize() const {
  Bytes out = report.Serialize();
  AppendLe32(out, static_cast<uint32_t>(signature.size()));
  AppendBytes(out, ByteView(signature.data(), signature.size()));
  return out;
}

Result<Quote> Quote::Deserialize(ByteView data) {
  constexpr size_t kReportSize = 32 + 8 + 8 + 64;
  if (data.size() < kReportSize + 4) {
    return InvalidArgumentError("quote too small");
  }
  Quote quote;
  ASSIGN_OR_RETURN(quote.report,
                   Report::Deserialize(data.subspan(0, kReportSize)));
  const uint32_t sig_len = LoadLe32(data.data() + kReportSize);
  if (data.size() != kReportSize + 4 + sig_len) {
    return InvalidArgumentError("quote has trailing or missing bytes");
  }
  quote.signature.assign(data.begin() + kReportSize + 4, data.end());
  return quote;
}

Result<QuotingEnclave> QuotingEnclave::Provision(ByteView seed,
                                                 size_t key_bits) {
  crypto::HmacDrbg drbg(seed);
  ASSIGN_OR_RETURN(crypto::RsaKeyPair pair,
                   crypto::RsaGenerateKey(key_bits, drbg));
  return QuotingEnclave(std::move(pair));
}

Result<Quote> QuotingEnclave::CreateQuote(const Report& report) const {
  Quote quote;
  quote.report = report;
  const Bytes body = report.Serialize();
  ASSIGN_OR_RETURN(quote.signature,
                   crypto::RsaSign(key_pair_.private_key,
                                   ByteView(body.data(), body.size())));
  return quote;
}

Status VerifyQuote(const Quote& quote,
                   const crypto::RsaPublicKey& attestation_key) {
  const Bytes body = quote.report.Serialize();
  return crypto::RsaVerify(attestation_key, ByteView(body.data(), body.size()),
                           ByteView(quote.signature.data(),
                                    quote.signature.size()));
}

Status VerifyQuote(const Quote& quote,
                   const crypto::RsaPublicKey& attestation_key,
                   const crypto::Sha256Digest& expected_mrenclave) {
  RETURN_IF_ERROR(VerifyQuote(quote, attestation_key));
  if (!ConstantTimeEqual(crypto::DigestView(quote.report.mr_enclave),
                         crypto::DigestView(expected_mrenclave))) {
    return IntegrityError(
        "MRENCLAVE mismatch: enclave does not run the expected EnGarde "
        "bootstrap");
  }
  return Status::Ok();
}

std::array<uint8_t, 64> BindPublicKey(const crypto::RsaPublicKey& key) {
  std::array<uint8_t, 64> data{};
  const Bytes wire = key.Serialize();
  const crypto::Sha256Digest digest =
      crypto::Sha256::Hash(ByteView(wire.data(), wire.size()));
  std::memcpy(data.data(), digest.data(), digest.size());
  return data;
}

}  // namespace engarde::sgx
