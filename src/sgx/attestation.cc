#include "sgx/attestation.h"

#include <cstring>

namespace engarde::sgx {

Bytes Quote::Serialize() const {
  Bytes out = report.Serialize();
  AppendLe32(out, static_cast<uint32_t>(signature.size()));
  AppendBytes(out, ByteView(signature.data(), signature.size()));
  return out;
}

Result<Quote> Quote::Deserialize(ByteView data) {
  constexpr size_t kReportSize = 32 + 8 + 8 + 64;
  if (data.size() < kReportSize + 4) {
    return InvalidArgumentError("quote too small");
  }
  Quote quote;
  ASSIGN_OR_RETURN(quote.report,
                   Report::Deserialize(data.subspan(0, kReportSize)));
  const uint32_t sig_len = LoadLe32(data.data() + kReportSize);
  if (data.size() != kReportSize + 4 + sig_len) {
    return InvalidArgumentError("quote has trailing or missing bytes");
  }
  quote.signature.assign(data.begin() + kReportSize + 4, data.end());
  return quote;
}

Result<QuotingEnclave> QuotingEnclave::Provision(ByteView seed,
                                                 size_t key_bits) {
  crypto::HmacDrbg drbg(seed);
  ASSIGN_OR_RETURN(crypto::RsaKeyPair pair,
                   crypto::RsaGenerateKey(key_bits, drbg));
  return QuotingEnclave(std::move(pair));
}

Result<Quote> QuotingEnclave::CreateQuote(const Report& report) const {
  Quote quote;
  quote.report = report;
  const Bytes body = report.Serialize();
  ASSIGN_OR_RETURN(quote.signature,
                   crypto::RsaSign(key_pair_.private_key,
                                   ByteView(body.data(), body.size())));
  return quote;
}

Status VerifyQuote(const Quote& quote,
                   const crypto::RsaPublicKey& attestation_key) {
  const Bytes body = quote.report.Serialize();
  return crypto::RsaVerify(attestation_key, ByteView(body.data(), body.size()),
                           ByteView(quote.signature.data(),
                                    quote.signature.size()));
}

Status VerifyQuote(const Quote& quote,
                   const crypto::RsaPublicKey& attestation_key,
                   const crypto::Sha256Digest& expected_mrenclave) {
  RETURN_IF_ERROR(VerifyQuote(quote, attestation_key));
  if (!ConstantTimeEqual(crypto::DigestView(quote.report.mr_enclave),
                         crypto::DigestView(expected_mrenclave))) {
    return IntegrityError(
        "MRENCLAVE mismatch: enclave does not run the expected EnGarde "
        "bootstrap");
  }
  return Status::Ok();
}

crypto::Sha256Digest GroupMeasurement(
    const std::vector<crypto::Sha256Digest>& member_measurements) {
  crypto::Sha256 hasher;
  for (const crypto::Sha256Digest& digest : member_measurements) {
    hasher.Update(crypto::DigestView(digest));
  }
  return hasher.Finalize();
}

std::array<uint8_t, 64> GroupReportData(
    const std::vector<std::array<uint8_t, 64>>& member_report_data) {
  crypto::Sha256 hasher;
  for (const auto& block : member_report_data) {
    hasher.Update(ByteView(block.data(), block.size()));
  }
  const crypto::Sha256Digest digest = hasher.Finalize();
  std::array<uint8_t, 64> data{};
  std::memcpy(data.data(), digest.data(), digest.size());
  return data;
}

Result<Quote> QuotingEnclave::CreateGroupQuote(
    const std::vector<Report>& members) const {
  if (members.empty()) {
    return InvalidArgumentError("a group quote needs at least one member");
  }
  std::vector<crypto::Sha256Digest> measurements;
  std::vector<std::array<uint8_t, 64>> report_data;
  measurements.reserve(members.size());
  report_data.reserve(members.size());
  for (const Report& member : members) {
    measurements.push_back(member.mr_enclave);
    report_data.push_back(member.report_data);
  }
  Report synthetic;
  synthetic.mr_enclave = GroupMeasurement(measurements);
  synthetic.enclave_id = members.size();
  synthetic.attributes = 0;
  synthetic.report_data = GroupReportData(report_data);
  return CreateQuote(synthetic);
}

Status VerifyGroupQuote(
    const Quote& quote, const crypto::RsaPublicKey& attestation_key,
    const std::vector<std::array<uint8_t, 64>>& member_report_data) {
  RETURN_IF_ERROR(VerifyQuote(quote, attestation_key));
  if (quote.report.enclave_id != member_report_data.size()) {
    return IntegrityError(
        "group quote does not cover the expected member count");
  }
  const std::array<uint8_t, 64> expected =
      GroupReportData(member_report_data);
  if (!ConstantTimeEqual(ByteView(quote.report.report_data.data(),
                                  quote.report.report_data.size()),
                         ByteView(expected.data(), expected.size()))) {
    return IntegrityError(
        "group report data does not bind the presented member keys");
  }
  return Status::Ok();
}

Status VerifyGroupQuote(
    const Quote& quote, const crypto::RsaPublicKey& attestation_key,
    const std::vector<std::array<uint8_t, 64>>& member_report_data,
    const crypto::Sha256Digest& expected_member_measurement) {
  RETURN_IF_ERROR(
      VerifyGroupQuote(quote, attestation_key, member_report_data));
  const std::vector<crypto::Sha256Digest> expected(
      member_report_data.size(), expected_member_measurement);
  if (!ConstantTimeEqual(crypto::DigestView(quote.report.mr_enclave),
                         crypto::DigestView(GroupMeasurement(expected)))) {
    return IntegrityError(
        "group measurement mismatch: a member does not run the expected "
        "EnGarde bootstrap");
  }
  return Status::Ok();
}

std::array<uint8_t, 64> BindPublicKey(const crypto::RsaPublicKey& key) {
  std::array<uint8_t, 64> data{};
  const Bytes wire = key.Serialize();
  const crypto::Sha256Digest digest =
      crypto::Sha256::Hash(ByteView(wire.data(), wire.size()));
  std::memcpy(data.data(), digest.data(), digest.size());
  return data;
}

}  // namespace engarde::sgx
