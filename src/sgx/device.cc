#include "sgx/device.h"

#include <cstring>
#include <iterator>

#include "crypto/hmac.h"

namespace engarde::sgx {
namespace {

uint64_t PageBase(uint64_t linear) { return linear & ~(kPageSize - 1); }

std::string LinearString(uint64_t linear) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(linear));
  return buf;
}

}  // namespace

Bytes Report::Serialize() const {
  Bytes out;
  AppendBytes(out, crypto::DigestView(mr_enclave));
  AppendLe64(out, enclave_id);
  AppendLe64(out, attributes);
  AppendBytes(out, ByteView(report_data.data(), report_data.size()));
  return out;
}

Result<Report> Report::Deserialize(ByteView data) {
  if (data.size() != 32 + 8 + 8 + 64) {
    return InvalidArgumentError("bad report size");
  }
  Report report;
  std::memcpy(report.mr_enclave.data(), data.data(), 32);
  report.enclave_id = LoadLe64(data.data() + 32);
  report.attributes = LoadLe64(data.data() + 40);
  std::memcpy(report.report_data.data(), data.data() + 48, 64);
  return report;
}

SgxDevice::SgxDevice(const Options& options, CycleAccountant* accountant)
    : epc_(options.epc_pages),
      sgx_version_(options.sgx_version),
      accountant_(accountant),
      device_secret_(options.device_seed) {}

Result<SgxDevice::Enclave*> SgxDevice::FindEnclave(uint64_t enclave_id) {
  auto it = enclaves_.find(enclave_id);
  if (it == enclaves_.end()) {
    return NotFoundError("no enclave with id " + std::to_string(enclave_id));
  }
  return &it->second;
}

Result<const SgxDevice::Enclave*> SgxDevice::FindEnclave(
    uint64_t enclave_id) const {
  auto it = enclaves_.find(enclave_id);
  if (it == enclaves_.end()) {
    return NotFoundError("no enclave with id " + std::to_string(enclave_id));
  }
  return &it->second;
}

Result<size_t> SgxDevice::ResolvePage(const Enclave& enclave,
                                      uint64_t linear) const {
  const auto it = enclave.pages.find(PageBase(linear));
  if (it == enclave.pages.end()) {
    if (enclave.evicted.count(PageBase(linear)) != 0) {
      return FailedPreconditionError("page " + LinearString(linear) +
                                     " is evicted (needs ELDU)");
    }
    return NotFoundError("no enclave page at " + LinearString(linear));
  }
  return it->second;
}

Result<size_t> SgxDevice::ResolvePageFaulting(Enclave& enclave,
                                              uint64_t linear) {
  auto resolved = ResolvePage(enclave, linear);
  if (!resolved.ok()) {
    // Only the "page is evicted" precondition is recoverable by the OS.
    if (resolved.status().code() != StatusCode::kFailedPrecondition ||
        fault_handler_ == nullptr || in_fault_) {
      return resolved;
    }
    in_fault_ = true;
    const Status handled = fault_handler_->OnEpcFault(enclave.id, linear);
    in_fault_ = false;
    RETURN_IF_ERROR(handled);
    resolved = ResolvePage(enclave, linear);
    if (!resolved.ok()) return resolved;
  }
  // Age-on-access: the reference bit feeds the reclaimer's second-chance
  // scan, so pages a session is actively touching survive aging rounds.
  epc_.Entry(*resolved).accessed = true;
  return resolved;
}

PagePerms SgxDevice::EffectivePerms(const Enclave& enclave, uint64_t linear,
                                    const EpcmEntry& entry) const {
  PagePerms perms = entry.perms;
  // Two-level check: the OS page tables can only *remove* access.
  if (page_table_ != nullptr) {
    const PagePerms pt = page_table_->PageTablePerms(enclave.id, linear);
    perms.r = perms.r && pt.r;
    perms.w = perms.w && pt.w;
    perms.x = perms.x && pt.x;
  }
  return perms;
}

crypto::Aes256Key SgxDevice::PageEncryptionKey(uint64_t enclave_id) const {
  Bytes info = ToBytes("sgx-page-key");
  AppendLe64(info, enclave_id);
  const crypto::Sha256Digest d = crypto::HmacSha256::Mac(
      ByteView(device_secret_.data(), device_secret_.size()),
      ByteView(info.data(), info.size()));
  crypto::Aes256Key key;
  std::memcpy(key.data(), d.data(), key.size());
  return key;
}

// ---- SGX1 lifecycle ---------------------------------------------------------

Result<uint64_t> SgxDevice::ECreate(uint64_t base, uint64_t size) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  if (base % kPageSize != 0 || size % kPageSize != 0 || size == 0) {
    return InvalidArgumentError("enclave range must be page-aligned");
  }
  // The SECS itself occupies an EPC page. Like EADD, a faulted ECREATE (no
  // free slot) charges nothing: the OS reclaims and retries, and only the
  // attempt that succeeds is accounted — so a build under EPC pressure
  // accounts identically to the same build with ample EPC.
  ASSIGN_OR_RETURN(const size_t secs_page, epc_.AllocatePage());
  Charge();
  EpcmEntry& secs = epc_.Entry(secs_page);
  secs.type = PageType::kSecs;

  Enclave enclave;
  enclave.id = next_enclave_id_++;
  enclave.base = base;
  enclave.size = size;
  secs.enclave_id = enclave.id;

  // Open the measurement log, exactly mirroring the hardware's
  // "SHA-256 digest of a log of all activities during enclave initialization".
  Bytes record = ToBytes("ECREATE");
  AppendLe64(record, size);
  enclave.measurement_stream.Update(ByteView(record.data(), record.size()));

  const uint64_t id = enclave.id;
  enclaves_.emplace(id, std::move(enclave));
  return id;
}

Status SgxDevice::EAdd(uint64_t enclave_id, uint64_t linear, ByteView content,
                       PagePerms perms, PageType type) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  if (enclave->initialized) {
    return FailedPreconditionError(
        "EADD after EINIT (use EAUG on SGX2 for dynamic pages)");
  }
  if (linear % kPageSize != 0) {
    return InvalidArgumentError("EADD linear address must be page-aligned");
  }
  if (linear < enclave->base || linear >= enclave->base + enclave->size) {
    return OutOfRangeError("EADD outside the enclave's linear range");
  }
  if (content.size() > kPageSize) {
    return InvalidArgumentError("EADD content exceeds one page");
  }
  if (enclave->pages.count(linear) != 0) {
    return FailedPreconditionError("EADD over an existing page");
  }

  // No charge on a faulted EADD: when the EPC has no free slot the
  // instruction aborts before doing work, and the OS retries it after
  // paging something out. Charging only the successful attempt keeps a
  // build-under-pressure bit-identical to the same build with ample EPC.
  ASSIGN_OR_RETURN(const size_t epc_index, epc_.AllocatePage());
  Charge();
  EpcmEntry& entry = epc_.Entry(epc_index);
  entry.enclave_id = enclave_id;
  entry.linear_addr = linear;
  entry.type = type;
  entry.perms = perms;
  if (!content.empty()) {
    std::memcpy(epc_.PageData(epc_index), content.data(), content.size());
  }
  enclave->pages.emplace(linear, epc_index);
  if (type == PageType::kReg) RecordReclaimablePage(enclave_id, linear);

  // Measurement log entry: page offset + security attributes (not content;
  // content is covered by EEXTEND, as on real hardware).
  Bytes record = ToBytes("EADD");
  AppendLe64(record, linear - enclave->base);
  record.push_back(static_cast<uint8_t>((perms.r << 2) | (perms.w << 1) |
                                        perms.x));
  record.push_back(static_cast<uint8_t>(type));
  enclave->measurement_stream.Update(ByteView(record.data(), record.size()));
  return Status::Ok();
}

Status SgxDevice::EExtend(uint64_t enclave_id, uint64_t chunk_linear) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  if (enclave->initialized) {
    return FailedPreconditionError("EEXTEND after EINIT");
  }
  if (chunk_linear % 256 != 0) {
    return InvalidArgumentError("EEXTEND chunk must be 256-byte aligned");
  }
  ASSIGN_OR_RETURN(const size_t epc_index, ResolvePage(*enclave, chunk_linear));
  const size_t offset = chunk_linear % kPageSize;

  Bytes record = ToBytes("EEXTEND");
  AppendLe64(record, chunk_linear - enclave->base);
  AppendBytes(record, ByteView(epc_.PageData(epc_index) + offset, 256));
  enclave->measurement_stream.Update(ByteView(record.data(), record.size()));
  return Status::Ok();
}

Status SgxDevice::ExtendPage(uint64_t enclave_id, uint64_t linear) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  for (size_t chunk = 0; chunk < kPageSize; chunk += 256) {
    RETURN_IF_ERROR(EExtend(enclave_id, PageBase(linear) + chunk));
  }
  return Status::Ok();
}

Status SgxDevice::EInit(uint64_t enclave_id) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  if (enclave->initialized) {
    return FailedPreconditionError("enclave already initialized");
  }
  enclave->mr_enclave = enclave->measurement_stream.Finalize();
  enclave->initialized = true;
  return Status::Ok();
}

Status SgxDevice::EEnter(uint64_t enclave_id) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  if (!enclave->initialized) {
    return FailedPreconditionError("EENTER before EINIT");
  }
  ++enclave->enter_depth;
  return Status::Ok();
}

Status SgxDevice::EExit(uint64_t enclave_id) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  if (enclave->enter_depth == 0) {
    return FailedPreconditionError("EEXIT without matching EENTER");
  }
  --enclave->enter_depth;
  return Status::Ok();
}

void SgxDevice::AexAll(uint64_t enclave_id) noexcept {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Result<Enclave*> enclave = FindEnclave(enclave_id);
  if (!enclave.ok()) return;
  // Hardware saves state into the SSA and exits; it does not run enclave
  // code, so nothing is charged per exiting thread beyond the event itself.
  if ((*enclave)->enter_depth > 0) Charge();
  (*enclave)->enter_depth = 0;
}

Status SgxDevice::ERemove(uint64_t enclave_id, uint64_t linear) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  if (enclave->enter_depth > 0) {
    return FailedPreconditionError("EREMOVE while enclave threads are inside");
  }
  ASSIGN_OR_RETURN(const size_t epc_index, ResolvePage(*enclave, linear));
  RETURN_IF_ERROR(epc_.FreePage(epc_index));
  enclave->pages.erase(PageBase(linear));
  DropReclaimRecord(enclave_id, PageBase(linear));
  return Status::Ok();
}

Status SgxDevice::DestroyEnclave(uint64_t enclave_id) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  while (!enclave->pages.empty()) {
    RETURN_IF_ERROR(ERemove(enclave_id, enclave->pages.begin()->first));
  }
  // Free the SECS page.
  for (size_t i = 0; i < epc_.capacity(); ++i) {
    EpcmEntry& entry = epc_.Entry(i);
    if (entry.valid && entry.enclave_id == enclave_id &&
        entry.type == PageType::kSecs) {
      RETURN_IF_ERROR(epc_.FreePage(i));
      break;
    }
  }
  enclaves_.erase(enclave_id);
  return Status::Ok();
}

// ---- SGX2 -----------------------------------------------------------------

Status SgxDevice::EAug(uint64_t enclave_id, uint64_t linear) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  if (sgx_version_ < 2) {
    return UnimplementedError("EAUG requires SGX2 (device is version 1)");
  }
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  if (!enclave->initialized) {
    return FailedPreconditionError("EAUG before EINIT (use EADD)");
  }
  if (linear % kPageSize != 0 || linear < enclave->base ||
      linear >= enclave->base + enclave->size) {
    return OutOfRangeError("EAUG outside the enclave's linear range");
  }
  if (enclave->pages.count(linear) != 0) {
    return FailedPreconditionError("EAUG over an existing page");
  }
  ASSIGN_OR_RETURN(const size_t epc_index, epc_.AllocatePage());
  EpcmEntry& entry = epc_.Entry(epc_index);
  entry.enclave_id = enclave_id;
  entry.linear_addr = linear;
  entry.type = PageType::kReg;
  entry.perms = PagePerms::RW();
  entry.pending = true;
  enclave->pages.emplace(linear, epc_index);
  RecordReclaimablePage(enclave_id, linear);
  return Status::Ok();
}

Status SgxDevice::EAccept(uint64_t enclave_id, uint64_t linear) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  if (sgx_version_ < 2) {
    return UnimplementedError("EACCEPT requires SGX2 (device is version 1)");
  }
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  ASSIGN_OR_RETURN(const size_t epc_index, ResolvePage(*enclave, linear));
  EpcmEntry& entry = epc_.Entry(epc_index);
  if (!entry.pending) {
    return FailedPreconditionError("EACCEPT on a non-pending page");
  }
  entry.pending = false;
  return Status::Ok();
}

Status SgxDevice::EModpr(uint64_t enclave_id, uint64_t linear,
                         PagePerms perms) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  if (sgx_version_ < 2) {
    return UnimplementedError(
        "EMODPR requires SGX2: version-1 hardware cannot change EPC page "
        "permissions (the gap EnGarde needs closed — paper Section 4)");
  }
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  ASSIGN_OR_RETURN(const size_t epc_index, ResolvePage(*enclave, linear));
  EpcmEntry& entry = epc_.Entry(epc_index);
  if (!entry.perms.Covers(perms)) {
    return InvalidArgumentError("EMODPR can only restrict permissions");
  }
  entry.perms = perms;
  entry.pending = true;  // enclave must EACCEPT the restriction
  return Status::Ok();
}

Status SgxDevice::EModpe(uint64_t enclave_id, uint64_t linear,
                         PagePerms perms) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  if (sgx_version_ < 2) {
    return UnimplementedError("EMODPE requires SGX2 (device is version 1)");
  }
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  ASSIGN_OR_RETURN(const size_t epc_index, ResolvePage(*enclave, linear));
  EpcmEntry& entry = epc_.Entry(epc_index);
  if (!perms.Covers(entry.perms)) {
    return InvalidArgumentError("EMODPE can only extend permissions");
  }
  entry.perms = perms;
  return Status::Ok();
}

// ---- Attestation -------------------------------------------------------------

Result<Report> SgxDevice::EReport(uint64_t enclave_id,
                                  const std::array<uint8_t, 64>& report_data) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  ASSIGN_OR_RETURN(const Enclave* const enclave, FindEnclave(enclave_id));
  if (!enclave->initialized) {
    return FailedPreconditionError("EREPORT before EINIT");
  }
  Report report;
  report.mr_enclave = enclave->mr_enclave;
  report.enclave_id = enclave_id;
  report.attributes = 0x1 | (sgx_version_ >= 2 ? 0x2 : 0x0);
  report.report_data = report_data;
  return report;
}

Result<crypto::Aes256Key> SgxDevice::EGetkey(uint64_t enclave_id,
                                             uint64_t key_id) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  ASSIGN_OR_RETURN(const Enclave* const enclave, FindEnclave(enclave_id));
  if (!enclave->initialized) {
    return FailedPreconditionError("EGETKEY before EINIT");
  }
  // KDF over (device secret, MRENCLAVE, key id): the MRENCLAVE policy of
  // real SGX sealing — identical enclave code on the same device derives
  // the identical key; anything else derives garbage.
  Bytes info = ToBytes("sgx-seal-key");
  AppendBytes(info, crypto::DigestView(enclave->mr_enclave));
  AppendLe64(info, key_id);
  const crypto::Sha256Digest d = crypto::HmacSha256::Mac(
      ByteView(device_secret_.data(), device_secret_.size()),
      ByteView(info.data(), info.size()));
  crypto::Aes256Key key;
  std::memcpy(key.data(), d.data(), key.size());
  return key;
}

// ---- Paging --------------------------------------------------------------

Status SgxDevice::Ewb(uint64_t enclave_id, uint64_t linear) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  ASSIGN_OR_RETURN(const size_t epc_index, ResolvePage(*enclave, linear));

  EvictedPage evicted;
  evicted.entry = epc_.Entry(epc_index);
  evicted.version = enclave->next_version++;

  // Encrypt with a per-(enclave, page, version) keystream and MAC the
  // ciphertext together with the metadata (anti-tamper + anti-rollback).
  const crypto::Aes256Key key = PageEncryptionKey(enclave_id);
  std::array<uint8_t, 12> nonce{};
  StoreLe64(nonce.data(), PageBase(linear));
  StoreLe32(nonce.data() + 8, static_cast<uint32_t>(evicted.version));
  crypto::AesCtr ctr(key, nonce);
  evicted.ciphertext =
      ctr.Crypt(0, ByteView(epc_.PageData(epc_index), kPageSize));

  Bytes mac_input = evicted.ciphertext;
  AppendLe64(mac_input, PageBase(linear));
  AppendLe64(mac_input, evicted.version);
  evicted.mac = crypto::HmacSha256::Mac(
      ByteView(device_secret_.data(), device_secret_.size()),
      ByteView(mac_input.data(), mac_input.size()));

  enclave->evicted[PageBase(linear)] = std::move(evicted);
  RETURN_IF_ERROR(epc_.FreePage(epc_index));
  enclave->pages.erase(PageBase(linear));
  DropReclaimRecord(enclave_id, PageBase(linear));
  return Status::Ok();
}

Status SgxDevice::Eldu(uint64_t enclave_id, uint64_t linear) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  Charge();
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  auto it = enclave->evicted.find(PageBase(linear));
  if (it == enclave->evicted.end()) {
    return NotFoundError("no evicted page at " + LinearString(linear));
  }
  EvictedPage& evicted = it->second;

  Bytes mac_input = evicted.ciphertext;
  AppendLe64(mac_input, PageBase(linear));
  AppendLe64(mac_input, evicted.version);
  const crypto::Sha256Digest expected = crypto::HmacSha256::Mac(
      ByteView(device_secret_.data(), device_secret_.size()),
      ByteView(mac_input.data(), mac_input.size()));
  if (!ConstantTimeEqual(crypto::DigestView(expected),
                         crypto::DigestView(evicted.mac))) {
    return IntegrityError("evicted page failed MAC verification");
  }

  ASSIGN_OR_RETURN(const size_t epc_index, epc_.AllocatePage());
  const crypto::Aes256Key key = PageEncryptionKey(enclave_id);
  std::array<uint8_t, 12> nonce{};
  StoreLe64(nonce.data(), PageBase(linear));
  StoreLe32(nonce.data() + 8, static_cast<uint32_t>(evicted.version));
  crypto::AesCtr ctr(key, nonce);
  const Bytes plaintext = ctr.Crypt(
      0, ByteView(evicted.ciphertext.data(), evicted.ciphertext.size()));
  std::memcpy(epc_.PageData(epc_index), plaintext.data(), kPageSize);

  epc_.Entry(epc_index) = evicted.entry;
  epc_.Entry(epc_index).valid = true;
  // A freshly reloaded page is hot by definition: record it on the young
  // end of the LRU with its reference bit set, as the driver does after a
  // fault-in.
  epc_.Entry(epc_index).accessed = true;
  enclave->pages.emplace(PageBase(linear), epc_index);
  enclave->evicted.erase(it);
  if (epc_.Entry(epc_index).type == PageType::kReg) {
    RecordReclaimablePage(enclave_id, PageBase(linear));
  }
  return Status::Ok();
}

// ---- Reclaimable-page LRU ---------------------------------------------------

void SgxDevice::RecordReclaimablePage(uint64_t enclave_id, uint64_t linear) {
  const auto key = std::make_pair(enclave_id, linear);
  const auto pos = reclaim_pos_.find(key);
  if (pos != reclaim_pos_.end()) {
    reclaim_lru_.splice(reclaim_lru_.end(), reclaim_lru_, pos->second);
    return;
  }
  reclaim_lru_.push_back(ReclaimVictim{enclave_id, linear});
  reclaim_pos_.emplace(key, std::prev(reclaim_lru_.end()));
}

void SgxDevice::DropReclaimRecord(uint64_t enclave_id, uint64_t linear) {
  const auto pos = reclaim_pos_.find(std::make_pair(enclave_id, linear));
  if (pos == reclaim_pos_.end()) return;
  reclaim_lru_.erase(pos->second);
  reclaim_pos_.erase(pos);
}

std::vector<SgxDevice::ReclaimVictim> SgxDevice::SelectReclaimVictims(
    size_t max_victims, bool force) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  std::vector<ReclaimVictim> victims;
  // One clock revolution normally — every entry is selected, rotated
  // (second chance / pinned), or skipped, so the scan terminates. Under
  // `force` a second revolution harvests pages the first pass just aged, so
  // a demand caller makes progress even when every page was referenced.
  size_t budget = (force ? 2 : 1) * reclaim_lru_.size();
  auto it = reclaim_lru_.begin();
  while (budget-- > 0 && victims.size() < max_victims &&
         it != reclaim_lru_.end()) {
    const auto cur = it++;
    const auto enclave_it = enclaves_.find(cur->enclave_id);
    if (enclave_it == enclaves_.end()) {
      // Stale record (should not happen — EREMOVE drops records); drop it.
      reclaim_pos_.erase(std::make_pair(cur->enclave_id, cur->linear));
      reclaim_lru_.erase(cur);
      continue;
    }
    Enclave& enclave = enclave_it->second;
    if (enclave.pin_depth > 0) {
      // An inspection stage is actively touching this enclave: rotate the
      // page to the young end and move on.
      reclaim_lru_.splice(reclaim_lru_.end(), reclaim_lru_, cur);
      continue;
    }
    const auto page = enclave.pages.find(cur->linear);
    if (page == enclave.pages.end()) continue;  // defensive; EWB drops records
    EpcmEntry& entry = epc_.Entry(page->second);
    if (entry.accessed && !enclave.reclaim_preferred) {
      // Second chance: clear the reference bit and age the page instead of
      // evicting it. Preferred (idle warm-pool) enclaves get no grace.
      entry.accessed = false;
      reclaim_lru_.splice(reclaim_lru_.end(), reclaim_lru_, cur);
      continue;
    }
    victims.push_back(*cur);
  }
  return victims;
}

Status SgxDevice::PinEnclavePages(uint64_t enclave_id) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  ++enclave->pin_depth;
  return Status::Ok();
}

Status SgxDevice::UnpinEnclavePages(uint64_t enclave_id) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  if (enclave->pin_depth == 0) {
    return FailedPreconditionError("unpin without matching pin");
  }
  --enclave->pin_depth;
  return Status::Ok();
}

bool SgxDevice::IsPinned(uint64_t enclave_id) const {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  auto enclave = FindEnclave(enclave_id);
  return enclave.ok() && (*enclave)->pin_depth > 0;
}

Status SgxDevice::SetReclaimPreferred(uint64_t enclave_id, bool preferred) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  enclave->reclaim_preferred = preferred;
  if (!preferred) return Status::Ok();
  // Demote the enclave's pages to the old end of the LRU so the next aging
  // scan reaches them before any session's pages.
  for (auto it = reclaim_lru_.begin(); it != reclaim_lru_.end();) {
    const auto cur = it++;
    if (cur->enclave_id == enclave_id) {
      reclaim_lru_.splice(reclaim_lru_.begin(), reclaim_lru_, cur);
    }
  }
  return Status::Ok();
}

size_t SgxDevice::ReclaimablePageCount() const {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  return reclaim_lru_.size();
}

// ---- Memory access ----------------------------------------------------------

Status SgxDevice::EnclaveWrite(uint64_t enclave_id, uint64_t linear,
                               ByteView data) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  size_t written = 0;
  while (written < data.size()) {
    const uint64_t addr = linear + written;
    ASSIGN_OR_RETURN(const size_t epc_index,
                     ResolvePageFaulting(*enclave, addr));
    const EpcmEntry& entry = epc_.Entry(epc_index);
    if (entry.pending) {
      return FailedPreconditionError("write to a pending (unaccepted) page");
    }
    if (!EffectivePerms(*enclave, addr, entry).w) {
      return PermissionDeniedError("write to non-writable enclave page at " +
                                   LinearString(addr));
    }
    const size_t offset = addr % kPageSize;
    const size_t take = std::min(kPageSize - offset, data.size() - written);
    std::memcpy(epc_.PageData(epc_index) + offset, data.data() + written, take);
    written += take;
  }
  return Status::Ok();
}

Status SgxDevice::EnclaveRead(uint64_t enclave_id, uint64_t linear,
                              MutableByteView out) {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  ASSIGN_OR_RETURN(Enclave* const enclave, FindEnclave(enclave_id));
  size_t read = 0;
  while (read < out.size()) {
    const uint64_t addr = linear + read;
    ASSIGN_OR_RETURN(const size_t epc_index,
                     ResolvePageFaulting(*enclave, addr));
    const EpcmEntry& entry = epc_.Entry(epc_index);
    if (entry.pending) {
      return FailedPreconditionError("read from a pending (unaccepted) page");
    }
    if (!EffectivePerms(*enclave, addr, entry).r) {
      return PermissionDeniedError("read from non-readable enclave page at " +
                                   LinearString(addr));
    }
    const size_t offset = addr % kPageSize;
    const size_t take = std::min(kPageSize - offset, out.size() - read);
    std::memcpy(out.data() + read, epc_.PageData(epc_index) + offset, take);
    read += take;
  }
  return Status::Ok();
}

Result<Bytes> SgxDevice::ReadAsOutsider(uint64_t enclave_id,
                                        uint64_t linear) const {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  ASSIGN_OR_RETURN(const Enclave* const enclave, FindEnclave(enclave_id));
  ASSIGN_OR_RETURN(const size_t epc_index, ResolvePage(*enclave, linear));
  // Outside the enclave the memory bus carries only ciphertext: encrypt the
  // page image with the device key before handing it out.
  const crypto::Aes256Key key = PageEncryptionKey(enclave_id);
  std::array<uint8_t, 12> nonce{};
  StoreLe64(nonce.data(), PageBase(linear));
  nonce[11] = 0xbb;  // bus-observation context
  crypto::AesCtr ctr(key, nonce);
  return ctr.Crypt(
      0, ByteView(const_cast<Epc&>(epc_).PageData(epc_index), kPageSize));
}

// ---- Introspection --------------------------------------------------------

size_t SgxDevice::EnclaveCount() const {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  return enclaves_.size();
}

bool SgxDevice::IsInitialized(uint64_t enclave_id) const {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  auto enclave = FindEnclave(enclave_id);
  return enclave.ok() && (*enclave)->initialized;
}

Result<crypto::Sha256Digest> SgxDevice::Measurement(
    uint64_t enclave_id) const {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  ASSIGN_OR_RETURN(const Enclave* const enclave, FindEnclave(enclave_id));
  if (!enclave->initialized) {
    return FailedPreconditionError("measurement is final only after EINIT");
  }
  return enclave->mr_enclave;
}

Result<PagePerms> SgxDevice::EpcmPerms(uint64_t enclave_id,
                                       uint64_t linear) const {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  ASSIGN_OR_RETURN(const Enclave* const enclave, FindEnclave(enclave_id));
  ASSIGN_OR_RETURN(const size_t epc_index, ResolvePage(*enclave, linear));
  return epc_.Entry(epc_index).perms;
}

bool SgxDevice::HasPage(uint64_t enclave_id, uint64_t linear) const {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  auto enclave = FindEnclave(enclave_id);
  if (!enclave.ok()) return false;
  return (*enclave)->pages.count(PageBase(linear)) != 0;
}

size_t SgxDevice::PageCount(uint64_t enclave_id) const {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  auto enclave = FindEnclave(enclave_id);
  return enclave.ok() ? (*enclave)->pages.size() : 0;
}

std::vector<uint64_t> SgxDevice::ResidentPages(uint64_t enclave_id) const {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  std::vector<uint64_t> out;
  auto enclave = FindEnclave(enclave_id);
  if (!enclave.ok()) return out;
  out.reserve((*enclave)->pages.size());
  for (const auto& [linear, epc_index] : (*enclave)->pages) {
    if (epc_.Entry(epc_index).type == PageType::kReg) out.push_back(linear);
  }
  return out;
}

size_t SgxDevice::EvictedPageCount(uint64_t enclave_id) const {
  const std::lock_guard<std::recursive_mutex> lock(hw_mu_);
  auto enclave = FindEnclave(enclave_id);
  return enclave.ok() ? (*enclave)->evicted.size() : 0;
}

// ---- Interpreter adapter -----------------------------------------------------

class SgxDevice::EnclaveView : public x86::MemoryIface {
 public:
  EnclaveView(SgxDevice* device, uint64_t enclave_id)
      : device_(device), enclave_id_(enclave_id) {}

  Result<uint64_t> Load(uint64_t addr, uint8_t size) override {
    uint8_t buf[8] = {};
    RETURN_IF_ERROR(
        device_->EnclaveRead(enclave_id_, addr, MutableByteView(buf, size)));
    uint64_t v = 0;
    for (int i = size; i-- > 0;) v = (v << 8) | buf[i];
    return v;
  }

  Status Store(uint64_t addr, uint8_t size, uint64_t value) override {
    uint8_t buf[8];
    for (int i = 0; i < size; ++i) buf[i] = static_cast<uint8_t>(value >> (8 * i));
    return device_->EnclaveWrite(enclave_id_, addr, ByteView(buf, size));
  }

  Status Fetch(uint64_t addr, MutableByteView out) override {
    // Instruction fetch needs read access at the hardware level; the X check
    // happens separately in IsExecutable. Fetch near the end of the mapped
    // region may cross into an unmapped page: shorten rather than fault, the
    // decoder will fail cleanly if the instruction is actually truncated.
    size_t len = out.size();
    while (len > 0) {
      const Status status = device_->EnclaveRead(
          enclave_id_, addr, MutableByteView(out.data(), len));
      if (status.ok()) return Status::Ok();
      if (len > 1 && (addr + len - 1) / kPageSize != addr / kPageSize) {
        // Trim to the end of the current page and retry.
        len = kPageSize - (addr % kPageSize);
        continue;
      }
      return status;
    }
    return OutOfRangeError("empty fetch");
  }

  bool IsExecutable(uint64_t addr) const override {
    const std::lock_guard<std::recursive_mutex> lock(device_->hw_mu_);
    auto enclave = device_->FindEnclave(enclave_id_);
    if (!enclave.ok()) return false;
    // Instruction fetch demand-pages evicted code back in, like a data
    // access would.
    auto epc_index = device_->ResolvePageFaulting(**enclave, addr);
    if (!epc_index.ok()) return false;
    const EpcmEntry& entry = device_->epc_.Entry(*epc_index);
    if (entry.pending) return false;
    return device_->EffectivePerms(**enclave, addr, entry).x;
  }

 private:
  SgxDevice* device_;
  uint64_t enclave_id_;
};

std::unique_ptr<x86::MemoryIface> SgxDevice::MakeEnclaveView(
    uint64_t enclave_id) {
  return std::make_unique<EnclaveView>(this, enclave_id);
}

}  // namespace engarde::sgx
