#include "sgx/cost_model.h"

namespace engarde::sgx {
namespace {

thread_local CycleAccountant* tls_accountant = nullptr;

}  // namespace

CycleAccountant* ThreadAccountantOverride() noexcept { return tls_accountant; }

ScopedAccountant::ScopedAccountant(CycleAccountant* accountant) noexcept
    : previous_(tls_accountant) {
  tls_accountant = accountant;
}

ScopedAccountant::~ScopedAccountant() { tls_accountant = previous_; }

std::string_view PhaseName(Phase phase) noexcept {
  switch (phase) {
    case Phase::kIdle: return "idle";
    case Phase::kChannel: return "channel";
    case Phase::kContainer: return "container-validate";
    case Phase::kDisassembly: return "disassembly";
    case Phase::kPolicyCheck: return "policy-check";
    case Phase::kLoading: return "loading-and-relocation";
    case Phase::kWxHardening: return "wx-epcm-hardening";
    case Phase::kCount: break;
  }
  return "?";
}

void CycleAccountant::CountSgxInstruction() noexcept {
  total_sgx_.fetch_add(1, std::memory_order_relaxed);
  const size_t phase =
      static_cast<size_t>(current_.load(std::memory_order_relaxed));
  sgx_counts_[phase].fetch_add(1, std::memory_order_relaxed);
}

void CycleAccountant::CountTrampoline() noexcept {
  trampolines_.fetch_add(1, std::memory_order_relaxed);
  CountSgxInstruction();  // EEXIT
  CountSgxInstruction();  // EENTER
}

void CycleAccountant::BeginPhase(Phase phase) noexcept {
  const auto now = Clock::now();
  const size_t prev =
      static_cast<size_t>(current_.load(std::memory_order_relaxed));
  native_ns_[prev] +=
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                now - phase_start_)
                                .count());
  current_.store(phase, std::memory_order_relaxed);
  phase_start_ = now;
}

void CycleAccountant::EndPhase() noexcept { BeginPhase(Phase::kIdle); }

void CycleAccountant::Reset() noexcept {
  native_ns_ = {};
  for (auto& count : sgx_counts_) count.store(0, std::memory_order_relaxed);
  current_.store(Phase::kIdle, std::memory_order_relaxed);
  phase_start_ = Clock::now();
  total_sgx_.store(0, std::memory_order_relaxed);
  trampolines_.store(0, std::memory_order_relaxed);
}

}  // namespace engarde::sgx
