#include "sgx/cost_model.h"

namespace engarde::sgx {

std::string_view PhaseName(Phase phase) noexcept {
  switch (phase) {
    case Phase::kIdle: return "idle";
    case Phase::kChannel: return "channel";
    case Phase::kDisassembly: return "disassembly";
    case Phase::kPolicyCheck: return "policy-check";
    case Phase::kLoading: return "loading-and-relocation";
    case Phase::kWxHardening: return "wx-epcm-hardening";
    case Phase::kCount: break;
  }
  return "?";
}

void CycleAccountant::CountSgxInstruction() noexcept {
  ++total_sgx_;
  ++costs_[static_cast<size_t>(current_)].sgx_instructions;
}

void CycleAccountant::CountTrampoline() noexcept {
  ++trampolines_;
  CountSgxInstruction();  // EEXIT
  CountSgxInstruction();  // EENTER
}

void CycleAccountant::BeginPhase(Phase phase) noexcept {
  const auto now = Clock::now();
  costs_[static_cast<size_t>(current_)].native_ns +=
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                now - phase_start_)
                                .count());
  current_ = phase;
  phase_start_ = now;
}

void CycleAccountant::EndPhase() noexcept { BeginPhase(Phase::kIdle); }

void CycleAccountant::Reset() noexcept {
  costs_ = {};
  current_ = Phase::kIdle;
  phase_start_ = Clock::now();
  total_sgx_ = 0;
  trampolines_ = 0;
}

}  // namespace engarde::sgx
