#include "sgx/hostos.h"

#include <algorithm>
#include <chrono>

namespace engarde::sgx {
namespace {

std::string HexLinear(uint64_t linear) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(linear));
  return buf;
}

}  // namespace

Result<uint64_t> HostOs::BuildEnclave(const EnclaveLayout& layout,
                                      ByteView bootstrap_image) {
  // HostOs state shares the device's recursive hardware mutex: the device
  // calls back into this class (page-table checks, EPC faults) while holding
  // it, and these methods call into the device, so a second lock would
  // deadlock. See SgxDevice::hardware_mutex().
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  if (bootstrap_image.size() > layout.bootstrap_pages * kPageSize) {
    return InvalidArgumentError("bootstrap image exceeds bootstrap region");
  }
  // Under oversubscription even the SECS allocation can find the EPC full:
  // reclaim globally-cold pages and retry, like any other build-time fault.
  // Reclaim respects second chance here (no force): when every resident page
  // is referenced the build fails with a retryable status instead — the
  // admission queue holds the session and retries on a later sweep, which
  // self-regulates admitted concurrency to what physical EPC can keep mostly
  // resident rather than thrashing live working sets.
  Result<uint64_t> created = device_->ECreate(layout.base, layout.TotalSize());
  while (!created.ok() &&
         created.status().code() == StatusCode::kResourceExhausted) {
    if (ReclaimBatchLocked(fault_reclaim_batch_) == 0) return created.status();
    created = device_->ECreate(layout.base, layout.TotalSize());
  }
  ASSIGN_OR_RETURN(const uint64_t enclave_id, created);

  // From here on the build can still fail; make sure a partial enclave never
  // leaks device pages or a host record.
  auto build = [&]() -> Status {
    // Bootstrap: EnGarde's code, executable, measured page by page. Both the
    // provider and the client later verify this measurement via attestation.
    for (uint64_t i = 0; i < layout.bootstrap_pages; ++i) {
      const uint64_t linear = layout.BootstrapStart() + i * kPageSize;
      const size_t offset = static_cast<size_t>(i * kPageSize);
      ByteView content;
      if (offset < bootstrap_image.size()) {
        content = bootstrap_image.subspan(
            offset, std::min(kPageSize, bootstrap_image.size() - offset));
      }
      RETURN_IF_ERROR(
          device_->EAdd(enclave_id, linear, content, PagePerms::RX()));
      RETURN_IF_ERROR(device_->ExtendPage(enclave_id, linear));
    }

    // Heap, load region, stack, TLS: zeroed writable pages. SGX1 requires
    // all enclave memory committed at build time (paper Section 4), so
    // everything is EADDed here even though the load region is only used
    // after policy checks pass. Unmeasured, as client content must not
    // influence MRENCLAVE. When the EPC fills up mid-build, the OS pages
    // earlier additions out to the encrypted backing store (EWB) and keeps
    // going — enclaves larger than the EPC are routine on real SGX.
    auto add_rw_region = [&](uint64_t start, uint64_t pages) -> Status {
      for (uint64_t i = 0; i < pages; ++i) {
        const uint64_t linear = start + i * kPageSize;
        for (;;) {
          const Status status =
              device_->EAdd(enclave_id, linear, {}, PagePerms::RW());
          if (status.ok()) break;
          if (status.code() != StatusCode::kResourceExhausted) return status;
          RETURN_IF_ERROR(MakeRoom(enclave_id, linear));
        }
      }
      return Status::Ok();
    };
    RETURN_IF_ERROR(add_rw_region(layout.HeapStart(), layout.heap_pages));
    RETURN_IF_ERROR(add_rw_region(layout.LoadStart(), layout.load_pages));
    RETURN_IF_ERROR(add_rw_region(layout.StackStart(), layout.stack_pages));
    RETURN_IF_ERROR(add_rw_region(layout.TlsStart(), layout.tls_pages));

    return device_->EInit(enclave_id);
  };
  const Status built = build();
  if (!built.ok()) {
    (void)device_->DestroyEnclave(enclave_id);
    return built;
  }
  records_[enclave_id];  // register the lifecycle record
  return enclave_id;
}

Status HostOs::DestroyEnclave(uint64_t enclave_id) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  RETURN_IF_ERROR(device_->DestroyEnclave(enclave_id));
  // Device teardown succeeded: reclaim every host-side map entry. This is
  // the leak the monotonic page_tables_/locked_ side tables used to have.
  records_.erase(enclave_id);
  return Status::Ok();
}

EnclaveHostRecord& HostOs::RecordFor(uint64_t enclave_id) {
  return records_[enclave_id];
}

PagePerms HostOs::PageTablePerms(uint64_t enclave_id, uint64_t linear) const {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  const auto record = records_.find(enclave_id);
  if (record == records_.end()) return PagePerms::RWX();
  const uint64_t page = linear & ~(kPageSize - 1);
  const auto it = record->second.page_perms.find(page);
  if (it == record->second.page_perms.end()) return PagePerms::RWX();
  return it->second;
}

Status HostOs::SetPageTablePerms(uint64_t enclave_id, uint64_t linear,
                                 uint64_t page_count, PagePerms perms) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  if (linear % kPageSize != 0) {
    return InvalidArgumentError("page-table update must be page-aligned");
  }
  EnclaveHostRecord& record = RecordFor(enclave_id);
  for (uint64_t i = 0; i < page_count; ++i) {
    record.page_perms[linear + i * kPageSize] = perms;
  }
  return Status::Ok();
}

Status HostOs::ApplyWxPolicy(uint64_t enclave_id, const EnclaveLayout& layout,
                             uint64_t span_pages,
                             const std::vector<uint64_t>& executable_pages) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  if (span_pages > layout.load_pages) {
    return InvalidArgumentError("loaded span exceeds the load region");
  }
  // Pages the loader populated: writable, not executable...
  RETURN_IF_ERROR(SetPageTablePerms(enclave_id, layout.LoadStart(), span_pages,
                                    PagePerms::RW()));
  // ...except the pages EnGarde identified as code: executable, read-only.
  for (const uint64_t page : executable_pages) {
    if (page < layout.LoadStart() ||
        page >= layout.LoadStart() + layout.load_pages * kPageSize) {
      return InvalidArgumentError(
          "executable page list includes a page outside the load region");
    }
    RETURN_IF_ERROR(SetPageTablePerms(enclave_id, page, 1, PagePerms::RX()));
  }
  return Status::Ok();
}

Status HostOs::HardenWxInEpcm(uint64_t enclave_id,
                              const std::vector<uint64_t>& executable_pages) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  if (device_->sgx_version() < 2) {
    return UnimplementedError(
        "EPCM hardening requires SGX2: on version-1 hardware the W^X split "
        "exists only in host-controlled page tables (paper Section 4)");
  }
  for (const uint64_t page : executable_pages) {
    // Load-region pages start RW: the enclave first *extends* to RWX
    // (EMODPE), then the W bit is *restricted* away (EMODPR + EACCEPT
    // handshake), leaving RX that the host cannot silently revert.
    RETURN_IF_ERROR(device_->EModpe(enclave_id, page, PagePerms::RWX()));
    RETURN_IF_ERROR(device_->EModpr(enclave_id, page, PagePerms::RX()));
    RETURN_IF_ERROR(device_->EAccept(enclave_id, page));
  }
  return Status::Ok();
}

Status HostOs::LockEnclave(uint64_t enclave_id) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  RecordFor(enclave_id).locked = true;
  return Status::Ok();
}

bool HostOs::IsLocked(uint64_t enclave_id) const {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  const auto record = records_.find(enclave_id);
  return record != records_.end() && record->second.locked;
}

Status HostOs::EvictOneVictim(uint64_t enclave_id, uint64_t protect_linear) {
  // Paging is OS work: EWB charges go to the device-wide accountant even
  // when a session's ScopedAccountant is active on this thread.
  ScopedAccountant neutral(nullptr);
  const std::vector<uint64_t> resident = device_->ResidentPages(enclave_id);
  for (const uint64_t victim : resident) {
    if (victim == protect_linear) continue;
    RETURN_IF_ERROR(device_->Ewb(enclave_id, victim));
    pages_evicted_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  return ResourceExhaustedError(
      "EPC full and the enclave has no evictable resident pages");
}

size_t HostOs::ReclaimBatchLocked(size_t max_pages, bool force) {
  // Same accountant neutrality as EvictOneVictim: reclaim traffic must
  // never land on whichever session accountant is active on this thread.
  ScopedAccountant neutral(nullptr);
  size_t reclaimed = 0;
  for (const auto& victim : device_->SelectReclaimVictims(max_pages, force)) {
    if (device_->Ewb(victim.enclave_id, victim.linear).ok()) ++reclaimed;
  }
  if (reclaimed > 0) {
    pages_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
  }
  return reclaimed;
}

size_t HostOs::ReclaimBatch(size_t max_pages, bool force) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  return ReclaimBatchLocked(max_pages, force);
}

Status HostOs::MakeRoom(uint64_t enclave_id, uint64_t protect_linear) {
  // Globally-cold pages first (idle warm-pool enclaves, sessions parked
  // between pumps); fall back to one of this enclave's own pages when the
  // rest of the EPC is pinned hot — self-eviction cannot thrash a sibling.
  // No force: a referenced page keeps its second chance even under demand,
  // because harvesting freshly-aged hot pages here just converts one fault
  // into a refault cascade; the self-eviction fallback guarantees progress.
  if (ReclaimBatchLocked(fault_reclaim_batch_) > 0) return Status::Ok();
  return EvictOneVictim(enclave_id, protect_linear);
}

Status HostOs::OnEpcFault(uint64_t enclave_id, uint64_t linear) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  // Fault service is OS work: the ELDU (and any EWB making room for it)
  // charges the device-wide accountant, never the faulting session's —
  // paging traffic must not perturb per-phase session attribution.
  ScopedAccountant neutral(nullptr);
  faults_handled_.fetch_add(1, std::memory_order_relaxed);
  Status reloaded = device_->Eldu(enclave_id, linear);
  if (reloaded.ok()) {
    eldu_loads_.fetch_add(1, std::memory_order_relaxed);
    return reloaded;
  }
  if (reloaded.code() != StatusCode::kResourceExhausted) return reloaded;
  const Status room = MakeRoom(enclave_id, linear);
  if (!room.ok()) {
    NotifyEpcPressure();
    return ResourceExhaustedError(
        "EPC fault at " + HexLinear(linear) + " (enclave " +
        std::to_string(enclave_id) +
        "): nothing reclaimable (every resident page pinned); retryable — "
        "back off and retry the access");
  }
  reloaded = device_->Eldu(enclave_id, linear);
  if (reloaded.ok()) {
    eldu_loads_.fetch_add(1, std::memory_order_relaxed);
    return reloaded;
  }
  if (reloaded.code() == StatusCode::kResourceExhausted) {
    // Double fault: a concurrent allocator raced away the slot we just
    // freed. Surface typed retryable backpressure instead of spinning under
    // the hardware mutex; the reclaimer is signalled to restore headroom.
    NotifyEpcPressure();
    return ResourceExhaustedError(
        "EPC fault at " + HexLinear(linear) + " (enclave " +
        std::to_string(enclave_id) +
        "): still exhausted after reclaim; retryable backpressure — back "
        "off and retry the access");
  }
  return reloaded;
}

// ---- Background reclaimer (ksgxd) ------------------------------------------

Status HostOs::StartReclaimer(const ReclaimerOptions& options) {
  if (options.low_watermark_pages == 0) {
    return InvalidArgumentError("reclaimer low watermark must be > 0");
  }
  if (options.batch_pages == 0) {
    return InvalidArgumentError("reclaimer batch must be > 0");
  }
  {
    const std::lock_guard<std::mutex> lock(reclaim_mu_);
    if (reclaimer_running_) {
      return FailedPreconditionError("reclaimer already running");
    }
    reclaim_stop_ = false;
    reclaim_pressure_ = false;
    reclaimer_running_ = true;
  }
  {
    // The fault path shares the reclaimer's batch size.
    const std::lock_guard<std::recursive_mutex> hw(device_->hardware_mutex());
    fault_reclaim_batch_ = options.batch_pages;
  }
  reclaimer_ = std::thread([this, options] { ReclaimerMain(options); });
  return Status::Ok();
}

void HostOs::StopReclaimer() {
  {
    const std::lock_guard<std::mutex> lock(reclaim_mu_);
    if (!reclaimer_running_) return;
    reclaim_stop_ = true;
  }
  reclaim_cv_.notify_one();
  if (reclaimer_.joinable()) reclaimer_.join();
  const std::lock_guard<std::mutex> lock(reclaim_mu_);
  reclaimer_running_ = false;
}

bool HostOs::reclaimer_running() const {
  const std::lock_guard<std::mutex> lock(reclaim_mu_);
  return reclaimer_running_;
}

void HostOs::NotifyEpcPressure() {
  {
    const std::lock_guard<std::mutex> lock(reclaim_mu_);
    reclaim_pressure_ = true;
  }
  reclaim_cv_.notify_one();
}

void HostOs::ReclaimerMain(ReclaimerOptions options) {
  const uint64_t high = options.high_watermark_pages > 0
                            ? options.high_watermark_pages
                            : 2 * options.low_watermark_pages;
  std::unique_lock<std::mutex> lk(reclaim_mu_);
  while (!reclaim_stop_) {
    reclaim_cv_.wait_for(
        lk, std::chrono::milliseconds(options.poll_interval_ms),
        [this] { return reclaim_stop_ || reclaim_pressure_; });
    if (reclaim_stop_) break;
    const bool pressured = reclaim_pressure_;
    reclaim_pressure_ = false;
    lk.unlock();
    // Reclaim only when an allocator signalled pressure AND free EPC is
    // genuinely below the low watermark — a timeout wake is a backstop
    // re-arm, not a reclaim trigger (see ReclaimerOptions::poll_interval_ms).
    // Then push free EPC toward the high watermark in cold-page batches,
    // dropping the hardware mutex between batches so faults and admissions
    // interleave with the daemon. The aging scan respects second chance
    // (no force): a referenced page survives the wake, so the daemon sheds
    // idle working sets without stealing hot ones.
    if (pressured &&
        device_->FreeEpcPages() < options.low_watermark_pages) {
      reclaim_wakeups_.fetch_add(1, std::memory_order_relaxed);
      while (device_->FreeEpcPages() < high &&
             ReclaimBatch(options.batch_pages) > 0) {
      }
    }
    lk.lock();
  }
}

Status HostOs::EvictPages(uint64_t enclave_id, uint64_t count) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  for (uint64_t i = 0; i < count; ++i) {
    RETURN_IF_ERROR(EvictOneVictim(enclave_id, /*protect_linear=*/UINT64_MAX));
  }
  return Status::Ok();
}

Status HostOs::AugmentPages(uint64_t enclave_id, uint64_t linear,
                            uint64_t page_count) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  if (IsLocked(enclave_id)) {
    return PermissionDeniedError(
        "enclave is locked: EnGarde forbids extension after provisioning");
  }
  for (uint64_t i = 0; i < page_count; ++i) {
    RETURN_IF_ERROR(device_->EAug(enclave_id, linear + i * kPageSize));
    RETURN_IF_ERROR(device_->EAccept(enclave_id, linear + i * kPageSize));
  }
  return Status::Ok();
}

size_t HostOs::TrackedEnclaveCount() const {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  return records_.size();
}

size_t HostOs::PageTableEntryCount() const {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  size_t entries = 0;
  for (const auto& [id, record] : records_) entries += record.page_perms.size();
  return entries;
}

size_t HostOs::LockRecordCount() const {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  size_t locked = 0;
  for (const auto& [id, record] : records_) locked += record.locked ? 1 : 0;
  return locked;
}

}  // namespace engarde::sgx
