#include "sgx/hostos.h"

#include <algorithm>

namespace engarde::sgx {

Result<uint64_t> HostOs::BuildEnclave(const EnclaveLayout& layout,
                                      ByteView bootstrap_image) {
  // HostOs state shares the device's recursive hardware mutex: the device
  // calls back into this class (page-table checks, EPC faults) while holding
  // it, and these methods call into the device, so a second lock would
  // deadlock. See SgxDevice::hardware_mutex().
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  if (bootstrap_image.size() > layout.bootstrap_pages * kPageSize) {
    return InvalidArgumentError("bootstrap image exceeds bootstrap region");
  }
  ASSIGN_OR_RETURN(const uint64_t enclave_id,
                   device_->ECreate(layout.base, layout.TotalSize()));

  // From here on the build can still fail; make sure a partial enclave never
  // leaks device pages or a host record.
  auto build = [&]() -> Status {
    // Bootstrap: EnGarde's code, executable, measured page by page. Both the
    // provider and the client later verify this measurement via attestation.
    for (uint64_t i = 0; i < layout.bootstrap_pages; ++i) {
      const uint64_t linear = layout.BootstrapStart() + i * kPageSize;
      const size_t offset = static_cast<size_t>(i * kPageSize);
      ByteView content;
      if (offset < bootstrap_image.size()) {
        content = bootstrap_image.subspan(
            offset, std::min(kPageSize, bootstrap_image.size() - offset));
      }
      RETURN_IF_ERROR(
          device_->EAdd(enclave_id, linear, content, PagePerms::RX()));
      RETURN_IF_ERROR(device_->ExtendPage(enclave_id, linear));
    }

    // Heap, load region, stack, TLS: zeroed writable pages. SGX1 requires
    // all enclave memory committed at build time (paper Section 4), so
    // everything is EADDed here even though the load region is only used
    // after policy checks pass. Unmeasured, as client content must not
    // influence MRENCLAVE. When the EPC fills up mid-build, the OS pages
    // earlier additions out to the encrypted backing store (EWB) and keeps
    // going — enclaves larger than the EPC are routine on real SGX.
    auto add_rw_region = [&](uint64_t start, uint64_t pages) -> Status {
      for (uint64_t i = 0; i < pages; ++i) {
        const uint64_t linear = start + i * kPageSize;
        for (;;) {
          const Status status =
              device_->EAdd(enclave_id, linear, {}, PagePerms::RW());
          if (status.ok()) break;
          if (status.code() != StatusCode::kResourceExhausted) return status;
          RETURN_IF_ERROR(EvictOneVictim(enclave_id, linear));
        }
      }
      return Status::Ok();
    };
    RETURN_IF_ERROR(add_rw_region(layout.HeapStart(), layout.heap_pages));
    RETURN_IF_ERROR(add_rw_region(layout.LoadStart(), layout.load_pages));
    RETURN_IF_ERROR(add_rw_region(layout.StackStart(), layout.stack_pages));
    RETURN_IF_ERROR(add_rw_region(layout.TlsStart(), layout.tls_pages));

    return device_->EInit(enclave_id);
  };
  const Status built = build();
  if (!built.ok()) {
    (void)device_->DestroyEnclave(enclave_id);
    return built;
  }
  records_[enclave_id];  // register the lifecycle record
  return enclave_id;
}

Status HostOs::DestroyEnclave(uint64_t enclave_id) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  RETURN_IF_ERROR(device_->DestroyEnclave(enclave_id));
  // Device teardown succeeded: reclaim every host-side map entry. This is
  // the leak the monotonic page_tables_/locked_ side tables used to have.
  records_.erase(enclave_id);
  return Status::Ok();
}

EnclaveHostRecord& HostOs::RecordFor(uint64_t enclave_id) {
  return records_[enclave_id];
}

PagePerms HostOs::PageTablePerms(uint64_t enclave_id, uint64_t linear) const {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  const auto record = records_.find(enclave_id);
  if (record == records_.end()) return PagePerms::RWX();
  const uint64_t page = linear & ~(kPageSize - 1);
  const auto it = record->second.page_perms.find(page);
  if (it == record->second.page_perms.end()) return PagePerms::RWX();
  return it->second;
}

Status HostOs::SetPageTablePerms(uint64_t enclave_id, uint64_t linear,
                                 uint64_t page_count, PagePerms perms) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  if (linear % kPageSize != 0) {
    return InvalidArgumentError("page-table update must be page-aligned");
  }
  EnclaveHostRecord& record = RecordFor(enclave_id);
  for (uint64_t i = 0; i < page_count; ++i) {
    record.page_perms[linear + i * kPageSize] = perms;
  }
  return Status::Ok();
}

Status HostOs::ApplyWxPolicy(uint64_t enclave_id, const EnclaveLayout& layout,
                             uint64_t span_pages,
                             const std::vector<uint64_t>& executable_pages) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  if (span_pages > layout.load_pages) {
    return InvalidArgumentError("loaded span exceeds the load region");
  }
  // Pages the loader populated: writable, not executable...
  RETURN_IF_ERROR(SetPageTablePerms(enclave_id, layout.LoadStart(), span_pages,
                                    PagePerms::RW()));
  // ...except the pages EnGarde identified as code: executable, read-only.
  for (const uint64_t page : executable_pages) {
    if (page < layout.LoadStart() ||
        page >= layout.LoadStart() + layout.load_pages * kPageSize) {
      return InvalidArgumentError(
          "executable page list includes a page outside the load region");
    }
    RETURN_IF_ERROR(SetPageTablePerms(enclave_id, page, 1, PagePerms::RX()));
  }
  return Status::Ok();
}

Status HostOs::HardenWxInEpcm(uint64_t enclave_id,
                              const std::vector<uint64_t>& executable_pages) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  if (device_->sgx_version() < 2) {
    return UnimplementedError(
        "EPCM hardening requires SGX2: on version-1 hardware the W^X split "
        "exists only in host-controlled page tables (paper Section 4)");
  }
  for (const uint64_t page : executable_pages) {
    // Load-region pages start RW: the enclave first *extends* to RWX
    // (EMODPE), then the W bit is *restricted* away (EMODPR + EACCEPT
    // handshake), leaving RX that the host cannot silently revert.
    RETURN_IF_ERROR(device_->EModpe(enclave_id, page, PagePerms::RWX()));
    RETURN_IF_ERROR(device_->EModpr(enclave_id, page, PagePerms::RX()));
    RETURN_IF_ERROR(device_->EAccept(enclave_id, page));
  }
  return Status::Ok();
}

Status HostOs::LockEnclave(uint64_t enclave_id) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  RecordFor(enclave_id).locked = true;
  return Status::Ok();
}

bool HostOs::IsLocked(uint64_t enclave_id) const {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  const auto record = records_.find(enclave_id);
  return record != records_.end() && record->second.locked;
}

Status HostOs::EvictOneVictim(uint64_t enclave_id, uint64_t protect_linear) {
  const std::vector<uint64_t> resident = device_->ResidentPages(enclave_id);
  for (const uint64_t victim : resident) {
    if (victim == protect_linear) continue;
    RETURN_IF_ERROR(device_->Ewb(enclave_id, victim));
    ++pages_evicted_;
    return Status::Ok();
  }
  return ResourceExhaustedError(
      "EPC full and the enclave has no evictable resident pages");
}

Status HostOs::OnEpcFault(uint64_t enclave_id, uint64_t linear) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  ++faults_handled_;
  // Make room if needed, then reload the faulting page.
  Status reloaded = device_->Eldu(enclave_id, linear);
  if (reloaded.code() == StatusCode::kResourceExhausted) {
    RETURN_IF_ERROR(EvictOneVictim(enclave_id, linear));
    reloaded = device_->Eldu(enclave_id, linear);
  }
  return reloaded;
}

Status HostOs::EvictPages(uint64_t enclave_id, uint64_t count) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  for (uint64_t i = 0; i < count; ++i) {
    RETURN_IF_ERROR(EvictOneVictim(enclave_id, /*protect_linear=*/UINT64_MAX));
  }
  return Status::Ok();
}

Status HostOs::AugmentPages(uint64_t enclave_id, uint64_t linear,
                            uint64_t page_count) {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  if (IsLocked(enclave_id)) {
    return PermissionDeniedError(
        "enclave is locked: EnGarde forbids extension after provisioning");
  }
  for (uint64_t i = 0; i < page_count; ++i) {
    RETURN_IF_ERROR(device_->EAug(enclave_id, linear + i * kPageSize));
    RETURN_IF_ERROR(device_->EAccept(enclave_id, linear + i * kPageSize));
  }
  return Status::Ok();
}

size_t HostOs::TrackedEnclaveCount() const {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  return records_.size();
}

size_t HostOs::PageTableEntryCount() const {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  size_t entries = 0;
  for (const auto& [id, record] : records_) entries += record.page_perms.size();
  return entries;
}

size_t HostOs::LockRecordCount() const {
  const std::lock_guard<std::recursive_mutex> lock(device_->hardware_mutex());
  size_t locked = 0;
  for (const auto& [id, record] : records_) locked += record.locked ? 1 : 0;
  return locked;
}

}  // namespace engarde::sgx
