// Remote attestation (paper Section 2): each SGX machine carries an
// Intel-provided quoting enclave whose device-specific private key (the EPID
// key on real hardware; an RSA key here — same trust structure, only the
// quoting enclave holds the private half) signs enclave measurements.
// Clients verify quotes against the vendor's public key and compare
// MRENCLAVE against the expected EnGarde bootstrap measurement.
//
// The 64-byte report_data field binds the enclave's ephemeral RSA public key
// (its SHA-256) into the quote, giving the client a hardware-rooted guarantee
// that the key it encrypts the AES session key to lives inside *that*
// enclave — the channel-bootstrapping trick from Section 2.
#ifndef ENGARDE_SGX_ATTESTATION_H_
#define ENGARDE_SGX_ATTESTATION_H_

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/rsa.h"
#include "sgx/device.h"

namespace engarde::sgx {

struct Quote {
  Report report;
  Bytes signature;  // over Report::Serialize()

  Bytes Serialize() const;
  static Result<Quote> Deserialize(ByteView data);
};

class QuotingEnclave {
 public:
  // Provisioning the quoting enclave generates the device attestation key
  // from the given seed (deterministic for tests). `key_bits` is tunable so
  // unit tests can use small keys.
  static Result<QuotingEnclave> Provision(ByteView seed,
                                          size_t key_bits = 2048);

  // The public half, distributed out of band (Intel Attestation Service).
  const crypto::RsaPublicKey& attestation_public_key() const {
    return key_pair_.public_key;
  }

  // Signs a hardware report into a quote.
  Result<Quote> CreateQuote(const Report& report) const;

 private:
  explicit QuotingEnclave(crypto::RsaKeyPair key_pair)
      : key_pair_(std::move(key_pair)) {}

  crypto::RsaKeyPair key_pair_;
};

// Client-side verification: checks the signature and (optionally) the
// expected measurement. Pure function of public data.
Status VerifyQuote(const Quote& quote,
                   const crypto::RsaPublicKey& attestation_key);
Status VerifyQuote(const Quote& quote,
                   const crypto::RsaPublicKey& attestation_key,
                   const crypto::Sha256Digest& expected_mrenclave);

// Convenience: the report_data binding for an RSA public key.
std::array<uint8_t, 64> BindPublicKey(const crypto::RsaPublicKey& key);

}  // namespace engarde::sgx

#endif  // ENGARDE_SGX_ATTESTATION_H_
