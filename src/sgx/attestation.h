// Remote attestation (paper Section 2): each SGX machine carries an
// Intel-provided quoting enclave whose device-specific private key (the EPID
// key on real hardware; an RSA key here — same trust structure, only the
// quoting enclave holds the private half) signs enclave measurements.
// Clients verify quotes against the vendor's public key and compare
// MRENCLAVE against the expected EnGarde bootstrap measurement.
//
// The 64-byte report_data field binds the enclave's ephemeral RSA public key
// (its SHA-256) into the quote, giving the client a hardware-rooted guarantee
// that the key it encrypts the AES session key to lives inside *that*
// enclave — the channel-bootstrapping trick from Section 2.
#ifndef ENGARDE_SGX_ATTESTATION_H_
#define ENGARDE_SGX_ATTESTATION_H_

#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/rsa.h"
#include "sgx/device.h"

namespace engarde::sgx {

struct Quote {
  Report report;
  Bytes signature;  // over Report::Serialize()

  Bytes Serialize() const;
  static Result<Quote> Deserialize(ByteView data);
};

class QuotingEnclave {
 public:
  // Provisioning the quoting enclave generates the device attestation key
  // from the given seed (deterministic for tests). `key_bits` is tunable so
  // unit tests can use small keys.
  static Result<QuotingEnclave> Provision(ByteView seed,
                                          size_t key_bits = 2048);

  // The public half, distributed out of band (Intel Attestation Service).
  const crypto::RsaPublicKey& attestation_public_key() const {
    return key_pair_.public_key;
  }

  // Signs a hardware report into a quote.
  Result<Quote> CreateQuote(const Report& report) const;

  // Group attestation: ONE quote covering an ordered vector of member
  // reports, so a client provisioning N cooperating enclaves verifies one
  // signature instead of N (the Confidential-Attestation amortization on top
  // of MAGE's mutual pre-measurement). The signed synthetic report has
  //   mr_enclave  = GroupMeasurement(ordered member MRENCLAVEs),
  //   enclave_id  = member count,
  //   attributes  = 0,
  //   report_data = GroupReportData(ordered member report_data blocks),
  // where each member's report_data already binds that member's ephemeral
  // RSA key — so the one signature transitively binds every member key.
  Result<Quote> CreateGroupQuote(const std::vector<Report>& members) const;

 private:
  explicit QuotingEnclave(crypto::RsaKeyPair key_pair)
      : key_pair_(std::move(key_pair)) {}

  crypto::RsaKeyPair key_pair_;
};

// Client-side verification: checks the signature and (optionally) the
// expected measurement. Pure function of public data.
Status VerifyQuote(const Quote& quote,
                   const crypto::RsaPublicKey& attestation_key);
Status VerifyQuote(const Quote& quote,
                   const crypto::RsaPublicKey& attestation_key,
                   const crypto::Sha256Digest& expected_mrenclave);

// Convenience: the report_data binding for an RSA public key.
std::array<uint8_t, 64> BindPublicKey(const crypto::RsaPublicKey& key);

// ---- Group attestation helpers ---------------------------------------------
// SHA-256 over the concatenated, ordered member measurements. Both sides can
// recompute it: the quoting enclave from the live reports, the client from
// the expected EnGarde bootstrap measurement repeated per member.
crypto::Sha256Digest GroupMeasurement(
    const std::vector<crypto::Sha256Digest>& member_measurements);
// SHA-256 over the concatenated, ordered member report_data blocks, placed in
// the first 32 bytes of a 64-byte report_data. The client recomputes it from
// the member public keys it received (BindPublicKey each).
std::array<uint8_t, 64> GroupReportData(
    const std::vector<std::array<uint8_t, 64>>& member_report_data);

// Verifies a group quote: the signature, the member count and the binding of
// every member's report_data (and hence key). Pure function of public data.
Status VerifyGroupQuote(
    const Quote& quote, const crypto::RsaPublicKey& attestation_key,
    const std::vector<std::array<uint8_t, 64>>& member_report_data);
// Additionally pins every member to the expected EnGarde measurement (all
// group members run the same agreed bootstrap, so one digest covers them).
Status VerifyGroupQuote(
    const Quote& quote, const crypto::RsaPublicKey& attestation_key,
    const std::vector<std::array<uint8_t, 64>>& member_report_data,
    const crypto::Sha256Digest& expected_member_measurement);

}  // namespace engarde::sgx

#endif  // ENGARDE_SGX_ATTESTATION_H_
