#include "client/client.h"
#include <algorithm>
#include <array>

#include <set>

#include "elf/reader.h"

namespace engarde::client {

uint64_t RetryBackoffMs(const core::RetryAfter& retry,
                        size_t consecutive_sheds) noexcept {
  const uint64_t base = std::max<uint64_t>(1, retry.retry_after_ms);
  const size_t doublings =
      consecutive_sheds > 0 ? std::min<size_t>(consecutive_sheds - 1, 4) : 0;
  const uint64_t backoff = base << doublings;  // capped at 16× the hint
  return std::min<uint64_t>(backoff, 10000);
}

Result<core::Manifest> BuildManifest(ByteView executable) {
  ASSIGN_OR_RETURN(const elf::ElfFile elf, elf::ElfFile::Parse(executable));
  core::Manifest manifest;
  manifest.file_size = executable.size();
  std::set<uint64_t> code_pages;
  for (const elf::Shdr& section : elf.sections()) {
    if (!(section.flags & elf::kShfAlloc)) continue;
    if (!(section.flags & elf::kShfExecinstr)) continue;
    if (section.type == elf::kShtNobits || section.size == 0) continue;
    const uint64_t first = section.addr / 4096;
    const uint64_t last = (section.addr + section.size - 1) / 4096;
    for (uint64_t page = first; page <= last; ++page) code_pages.insert(page);
  }
  manifest.code_pages.assign(code_pages.begin(), code_pages.end());
  return manifest;
}

namespace {

// Shared admission preamble for solo and group clients: one control frame
// decides admit / back-off / reclaim.
Result<std::optional<core::RetryAfter>> AwaitFrontendAdmission(
    crypto::DuplexPipe::Endpoint endpoint) {
  ASSIGN_OR_RETURN(const core::ControlFrame control,
                   core::ReadControlFrame(endpoint));
  switch (control.type) {
    case core::ControlType::kHelloFollows:
      if (!control.body.empty()) {
        return ProtocolError("hello-follows control frame carries a payload");
      }
      return std::optional<core::RetryAfter>();
    case core::ControlType::kRetryAfter: {
      ASSIGN_OR_RETURN(core::RetryAfter retry,
                       core::RetryAfter::Deserialize(ByteView(
                           control.body.data(), control.body.size())));
      return std::optional<core::RetryAfter>(retry);
    }
    case core::ControlType::kDeadlineExceeded: {
      ASSIGN_OR_RETURN(const core::DeadlineNotice notice,
                       core::DeadlineNotice::Deserialize(ByteView(
                           control.body.data(), control.body.size())));
      return DeadlineExceededError(
          "front end reclaimed the connection after " +
          std::to_string(notice.elapsed_ms) + "ms (deadline " +
          std::to_string(notice.deadline_ms) + "ms)");
    }
  }
  return ProtocolError("unknown control frame type");
}

}  // namespace

Result<std::optional<core::RetryAfter>> Client::AwaitAdmission(
    crypto::DuplexPipe::Endpoint endpoint) {
  return AwaitFrontendAdmission(endpoint);
}

Status Client::SendProgram(crypto::DuplexPipe::Endpoint endpoint) {
  // ---- Hello: quote + enclave public key -----------------------------------
  ASSIGN_OR_RETURN(const Bytes quote_wire, core::ReadFrame(endpoint));
  ASSIGN_OR_RETURN(const sgx::Quote quote,
                   sgx::Quote::Deserialize(ByteView(quote_wire.data(),
                                                    quote_wire.size())));
  ASSIGN_OR_RETURN(const Bytes key_wire, core::ReadFrame(endpoint));
  ASSIGN_OR_RETURN(const crypto::RsaPublicKey enclave_key,
                   crypto::RsaPublicKey::Deserialize(
                       ByteView(key_wire.data(), key_wire.size())));

  // ---- Attestation -----------------------------------------------------------
  if (options_.skip_measurement_check) {
    RETURN_IF_ERROR(sgx::VerifyQuote(quote, options_.attestation_key));
  } else {
    RETURN_IF_ERROR(sgx::VerifyQuote(quote, options_.attestation_key,
                                     options_.expected_measurement));
  }
  // The public key must be the one bound inside the signed quote, or a
  // man-in-the-middle could substitute their own.
  if (quote.report.report_data != sgx::BindPublicKey(enclave_key)) {
    return IntegrityError(
        "enclave public key is not the one bound in the attestation quote");
  }

  // ---- Key exchange -----------------------------------------------------------
  const Bytes master_key = drbg_.Generate(32);
  ASSIGN_OR_RETURN(
      const Bytes wrapped,
      crypto::RsaEncrypt(enclave_key,
                         ByteView(master_key.data(), master_key.size()),
                         drbg_));
  RETURN_IF_ERROR(
      core::WriteFrame(endpoint, ByteView(wrapped.data(), wrapped.size())));

  const crypto::SessionKeys keys = crypto::SessionKeys::Derive(
      ByteView(master_key.data(), master_key.size()));
  channel_.emplace(endpoint, keys, /*is_enclave_side=*/false);

  // ---- Manifest + blocks --------------------------------------------------------
  ASSIGN_OR_RETURN(const core::Manifest manifest,
                   BuildManifest(ByteView(executable_.data(),
                                          executable_.size())));
  const Bytes manifest_wire = manifest.Serialize();
  RETURN_IF_ERROR(core::SendMessage(*channel_, core::MessageType::kManifest,
                                    ByteView(manifest_wire.data(),
                                             manifest_wire.size())));
  const size_t block_size =
      options_.block_size > 0 ? options_.block_size : core::kBlockSize;
  for (size_t offset = 0; offset < executable_.size();
       offset += block_size) {
    const size_t take = std::min(block_size, executable_.size() - offset);
    RETURN_IF_ERROR(core::SendMessage(
        *channel_, core::MessageType::kBlock,
        ByteView(executable_.data() + offset, take)));
  }
  return core::SendMessage(*channel_, core::MessageType::kDone, {});
}

Result<core::Verdict> Client::AwaitVerdict() {
  if (!channel_.has_value()) {
    return FailedPreconditionError("SendProgram has not established a channel");
  }
  ASSIGN_OR_RETURN(const core::Message message,
                   core::ReceiveMessage(*channel_));
  if (message.type != core::MessageType::kVerdict) {
    return ProtocolError("expected a verdict record");
  }
  return core::Verdict::Deserialize(ByteView(message.payload.data(),
                                             message.payload.size()));
}

Result<core::GroupManifest> BuildGroupManifest(
    const std::vector<Bytes>& executables,
    const std::string& policy_fingerprint) {
  if (executables.empty()) {
    return InvalidArgumentError("a group needs at least one executable");
  }
  core::GroupManifest manifest;
  std::vector<crypto::Sha256Digest> digests;
  digests.reserve(executables.size());
  for (const Bytes& executable : executables) {
    digests.push_back(crypto::Sha256::Hash(
        ByteView(executable.data(), executable.size())));
  }
  manifest.members.reserve(executables.size());
  for (size_t i = 0; i < executables.size(); ++i) {
    core::GroupMember member;
    member.binary_digest = digests[i];
    member.binary_size = executables[i].size();
    member.policy_fingerprint = policy_fingerprint;
    // The full sibling matrix: every member vouches for every other.
    for (size_t j = 0; j < executables.size(); ++j) {
      if (j == i) continue;
      member.siblings.emplace_back(static_cast<uint32_t>(j), digests[j]);
    }
    manifest.members.push_back(std::move(member));
  }
  return manifest;
}

Status GroupClient::EnsureManifest() {
  if (manifest_.has_value()) return Status::Ok();
  ASSIGN_OR_RETURN(core::GroupManifest manifest,
                   BuildGroupManifest(executables_, policy_fingerprint_));
  manifest_.emplace(std::move(manifest));
  return Status::Ok();
}

Status GroupClient::SendGroupManifest(crypto::DuplexPipe::Endpoint endpoint) {
  RETURN_IF_ERROR(EnsureManifest());
  const Bytes wire = manifest_->Serialize();
  return core::WriteFrame(endpoint, ByteView(wire.data(), wire.size()));
}

Result<std::optional<core::RetryAfter>> GroupClient::AwaitAdmission(
    crypto::DuplexPipe::Endpoint endpoint) {
  return AwaitFrontendAdmission(endpoint);
}

Status GroupClient::SendPrograms(crypto::DuplexPipe::Endpoint endpoint) {
  RETURN_IF_ERROR(EnsureManifest());
  const size_t count = executables_.size();
  // ---- Group hello: one quote + every member's public key ------------------
  ASSIGN_OR_RETURN(const Bytes quote_wire, core::ReadFrame(endpoint));
  ASSIGN_OR_RETURN(const sgx::Quote quote,
                   sgx::Quote::Deserialize(ByteView(quote_wire.data(),
                                                    quote_wire.size())));
  std::vector<crypto::RsaPublicKey> member_keys;
  std::vector<std::array<uint8_t, 64>> member_report_data;
  member_keys.reserve(count);
  member_report_data.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(const Bytes key_wire, core::ReadFrame(endpoint));
    ASSIGN_OR_RETURN(crypto::RsaPublicKey key,
                     crypto::RsaPublicKey::Deserialize(
                         ByteView(key_wire.data(), key_wire.size())));
    // Re-deriving the report_data block from the presented key is what binds
    // each key into the single signed group quote: substituting any one key
    // breaks the group report-data hash.
    member_report_data.push_back(sgx::BindPublicKey(key));
    member_keys.push_back(std::move(key));
  }

  // ---- Attestation: ONE verification covers the whole fleet ----------------
  if (options_.skip_measurement_check) {
    RETURN_IF_ERROR(sgx::VerifyGroupQuote(quote, options_.attestation_key,
                                          member_report_data));
  } else {
    RETURN_IF_ERROR(sgx::VerifyGroupQuote(quote, options_.attestation_key,
                                          member_report_data,
                                          options_.expected_measurement));
  }

  // ---- Key exchange: ONE master key, wrapped to member 0 -------------------
  const Bytes master_key = drbg_.Generate(32);
  ASSIGN_OR_RETURN(
      const Bytes wrapped,
      crypto::RsaEncrypt(member_keys.front(),
                         ByteView(master_key.data(), master_key.size()),
                         drbg_));
  RETURN_IF_ERROR(
      core::WriteFrame(endpoint, ByteView(wrapped.data(), wrapped.size())));
  const crypto::SessionKeys keys = crypto::SessionKeys::Derive(
      ByteView(master_key.data(), master_key.size()));
  channel_.emplace(endpoint, keys, /*is_enclave_side=*/false);

  // ---- Uploads: each distinct declared binary crosses the wire once --------
  // Classes in first-appearance order over the *declared* digests — the same
  // grouping the group session derives, so both sides agree on the upload
  // order without negotiating it.
  std::vector<size_t> class_primaries;
  {
    std::set<crypto::Sha256Digest> seen;
    for (size_t i = 0; i < count; ++i) {
      if (seen.insert(manifest_->members[i].binary_digest).second) {
        class_primaries.push_back(i);
      }
    }
  }
  const size_t block_size =
      options_.block_size > 0 ? options_.block_size : core::kBlockSize;
  for (const size_t primary : class_primaries) {
    const Bytes& executable = executables_[primary];
    ASSIGN_OR_RETURN(const core::Manifest manifest,
                     BuildManifest(ByteView(executable.data(),
                                            executable.size())));
    const Bytes manifest_wire = manifest.Serialize();
    RETURN_IF_ERROR(core::SendMessage(*channel_, core::MessageType::kManifest,
                                      ByteView(manifest_wire.data(),
                                               manifest_wire.size())));
    for (size_t offset = 0; offset < executable.size(); offset += block_size) {
      const size_t take = std::min(block_size, executable.size() - offset);
      RETURN_IF_ERROR(core::SendMessage(
          *channel_, core::MessageType::kBlock,
          ByteView(executable.data() + offset, take)));
    }
    RETURN_IF_ERROR(
        core::SendMessage(*channel_, core::MessageType::kDone, {}));
  }
  return Status::Ok();
}

Result<std::vector<core::Verdict>> GroupClient::AwaitVerdicts() {
  if (!channel_.has_value()) {
    return FailedPreconditionError(
        "SendPrograms has not established a channel");
  }
  std::vector<core::Verdict> verdicts;
  verdicts.reserve(executables_.size());
  for (size_t i = 0; i < executables_.size(); ++i) {
    ASSIGN_OR_RETURN(const core::Message message,
                     core::ReceiveMessage(*channel_));
    if (message.type != core::MessageType::kVerdict) {
      return ProtocolError("expected a verdict record");
    }
    ASSIGN_OR_RETURN(core::Verdict verdict,
                     core::Verdict::Deserialize(ByteView(
                         message.payload.data(), message.payload.size())));
    verdicts.push_back(std::move(verdict));
  }
  return verdicts;
}

}  // namespace engarde::client
