#include "client/client.h"

#include <set>

#include "elf/reader.h"

namespace engarde::client {

Result<core::Manifest> BuildManifest(ByteView executable) {
  ASSIGN_OR_RETURN(const elf::ElfFile elf, elf::ElfFile::Parse(executable));
  core::Manifest manifest;
  manifest.file_size = executable.size();
  std::set<uint64_t> code_pages;
  for (const elf::Shdr& section : elf.sections()) {
    if (!(section.flags & elf::kShfAlloc)) continue;
    if (!(section.flags & elf::kShfExecinstr)) continue;
    if (section.type == elf::kShtNobits || section.size == 0) continue;
    const uint64_t first = section.addr / 4096;
    const uint64_t last = (section.addr + section.size - 1) / 4096;
    for (uint64_t page = first; page <= last; ++page) code_pages.insert(page);
  }
  manifest.code_pages.assign(code_pages.begin(), code_pages.end());
  return manifest;
}

Result<std::optional<core::RetryAfter>> Client::AwaitAdmission(
    crypto::DuplexPipe::Endpoint endpoint) {
  ASSIGN_OR_RETURN(const core::ControlFrame control,
                   core::ReadControlFrame(endpoint));
  switch (control.type) {
    case core::ControlType::kHelloFollows:
      if (!control.body.empty()) {
        return ProtocolError("hello-follows control frame carries a payload");
      }
      return std::optional<core::RetryAfter>();
    case core::ControlType::kRetryAfter: {
      ASSIGN_OR_RETURN(core::RetryAfter retry,
                       core::RetryAfter::Deserialize(ByteView(
                           control.body.data(), control.body.size())));
      return std::optional<core::RetryAfter>(retry);
    }
    case core::ControlType::kDeadlineExceeded: {
      ASSIGN_OR_RETURN(const core::DeadlineNotice notice,
                       core::DeadlineNotice::Deserialize(ByteView(
                           control.body.data(), control.body.size())));
      return DeadlineExceededError(
          "front end reclaimed the connection after " +
          std::to_string(notice.elapsed_ms) + "ms (deadline " +
          std::to_string(notice.deadline_ms) + "ms)");
    }
  }
  return ProtocolError("unknown control frame type");
}

Status Client::SendProgram(crypto::DuplexPipe::Endpoint endpoint) {
  // ---- Hello: quote + enclave public key -----------------------------------
  ASSIGN_OR_RETURN(const Bytes quote_wire, core::ReadFrame(endpoint));
  ASSIGN_OR_RETURN(const sgx::Quote quote,
                   sgx::Quote::Deserialize(ByteView(quote_wire.data(),
                                                    quote_wire.size())));
  ASSIGN_OR_RETURN(const Bytes key_wire, core::ReadFrame(endpoint));
  ASSIGN_OR_RETURN(const crypto::RsaPublicKey enclave_key,
                   crypto::RsaPublicKey::Deserialize(
                       ByteView(key_wire.data(), key_wire.size())));

  // ---- Attestation -----------------------------------------------------------
  if (options_.skip_measurement_check) {
    RETURN_IF_ERROR(sgx::VerifyQuote(quote, options_.attestation_key));
  } else {
    RETURN_IF_ERROR(sgx::VerifyQuote(quote, options_.attestation_key,
                                     options_.expected_measurement));
  }
  // The public key must be the one bound inside the signed quote, or a
  // man-in-the-middle could substitute their own.
  if (quote.report.report_data != sgx::BindPublicKey(enclave_key)) {
    return IntegrityError(
        "enclave public key is not the one bound in the attestation quote");
  }

  // ---- Key exchange -----------------------------------------------------------
  const Bytes master_key = drbg_.Generate(32);
  ASSIGN_OR_RETURN(
      const Bytes wrapped,
      crypto::RsaEncrypt(enclave_key,
                         ByteView(master_key.data(), master_key.size()),
                         drbg_));
  RETURN_IF_ERROR(
      core::WriteFrame(endpoint, ByteView(wrapped.data(), wrapped.size())));

  const crypto::SessionKeys keys = crypto::SessionKeys::Derive(
      ByteView(master_key.data(), master_key.size()));
  channel_.emplace(endpoint, keys, /*is_enclave_side=*/false);

  // ---- Manifest + blocks --------------------------------------------------------
  ASSIGN_OR_RETURN(const core::Manifest manifest,
                   BuildManifest(ByteView(executable_.data(),
                                          executable_.size())));
  const Bytes manifest_wire = manifest.Serialize();
  RETURN_IF_ERROR(core::SendMessage(*channel_, core::MessageType::kManifest,
                                    ByteView(manifest_wire.data(),
                                             manifest_wire.size())));
  const size_t block_size =
      options_.block_size > 0 ? options_.block_size : core::kBlockSize;
  for (size_t offset = 0; offset < executable_.size();
       offset += block_size) {
    const size_t take = std::min(block_size, executable_.size() - offset);
    RETURN_IF_ERROR(core::SendMessage(
        *channel_, core::MessageType::kBlock,
        ByteView(executable_.data() + offset, take)));
  }
  return core::SendMessage(*channel_, core::MessageType::kDone, {});
}

Result<core::Verdict> Client::AwaitVerdict() {
  if (!channel_.has_value()) {
    return FailedPreconditionError("SendProgram has not established a channel");
  }
  ASSIGN_OR_RETURN(const core::Message message,
                   core::ReceiveMessage(*channel_));
  if (message.type != core::MessageType::kVerdict) {
    return ProtocolError("expected a verdict record");
  }
  return core::Verdict::Deserialize(ByteView(message.payload.data(),
                                             message.payload.size()));
}

}  // namespace engarde::client
