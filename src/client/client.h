// The client-side program (paper Figure 2 lists it as a separate component):
// runs on the client's own machine, far from the cloud. It
//   1. receives the enclave's quote + ephemeral RSA public key,
//   2. verifies the quote against the hardware vendor's attestation key and
//      the *expected EnGarde measurement* (pinning the agreed policy set),
//      and checks that the RSA key is the one bound inside the quote,
//   3. generates a fresh 256-bit AES master key, wraps it with RSA, and
//   4. streams the executable in encrypted page-sized blocks, then reads the
//      verdict.
#ifndef ENGARDE_CLIENT_CLIENT_H_
#define ENGARDE_CLIENT_CLIENT_H_

#include <optional>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "crypto/channel.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "sgx/attestation.h"

namespace engarde::client {

struct ClientOptions {
  // The hardware vendor's attestation verification key (out of band).
  crypto::RsaPublicKey attestation_key;
  // The expected MRENCLAVE of an EnGarde enclave with the agreed policies.
  crypto::Sha256Digest expected_measurement{};
  // Client-side entropy for the AES master key.
  Bytes entropy = {0xc1, 0x1e, 0x47};
  // Skip the measurement pin (used by tests that exercise the mismatch path
  // deliberately; production clients always pin).
  bool skip_measurement_check = false;
  // Bytes of executable per encrypted block record. The default matches the
  // enclave's page-sized staging granularity; tests sweep it (down to 1) to
  // pin that the streaming inspector's results are block-size independent.
  size_t block_size = core::kBlockSize;
};

// Back-off before the next reconnect after `consecutive_sheds` RetryAfter
// records in a row (1-based). Honors the server's adaptive hint as the base
// delay and doubles per consecutive shed — a front end under sustained
// pressure pushes its clients apart exponentially — capped at 16× the hint
// and a 10 s absolute ceiling. A zero hint (old or misconfigured server)
// still backs off from 1 ms.
uint64_t RetryBackoffMs(const core::RetryAfter& retry,
                        size_t consecutive_sheds) noexcept;

class Client {
 public:
  Client(ClientOptions options, Bytes executable)
      : options_(std::move(options)),
        executable_(std::move(executable)),
        drbg_(ByteView(options_.entropy.data(), options_.entropy.size())) {}

  // Front-end admission preamble: when connecting through a provisioning
  // front end, one control frame precedes the hello. Returns the RetryAfter
  // record when the front end turned the connection away (the client should
  // back off and reconnect), or nullopt when admitted — in which case the
  // hello frames follow and SendProgram may proceed. Direct connections
  // (enclave hello straight on the pipe) must NOT call this.
  Result<std::optional<core::RetryAfter>> AwaitAdmission(
      crypto::DuplexPipe::Endpoint endpoint);

  // Protocol steps 1-4: consume the hello, verify, send key + manifest +
  // blocks + done. Returns an error if attestation fails (in which case
  // nothing confidential has been sent).
  Status SendProgram(crypto::DuplexPipe::Endpoint endpoint);

  // Reads the enclave's verdict (after the enclave ran its pipeline).
  Result<core::Verdict> AwaitVerdict();

 private:
  ClientOptions options_;
  Bytes executable_;
  crypto::HmacDrbg drbg_;
  std::optional<crypto::SecureChannel> channel_;
};

// Derives the manifest (file size + code-page list) from the executable the
// honest client is about to send. Exposed so tests can build tampered ones.
Result<core::Manifest> BuildManifest(ByteView executable);

// The honest GroupManifest for a fleet deployment: per member its binary's
// SHA-256 and size, the agreed policy-set fingerprint, and the full sibling
// matrix (every member vouches for every other member's digest — the
// MAGE-style mutual pre-measurement). Exposed so tests can tamper a
// declaration before handing it to a GroupClient.
Result<core::GroupManifest> BuildGroupManifest(
    const std::vector<Bytes>& executables,
    const std::string& policy_fingerprint);

// Fleet client: deploys N cooperating executables as ONE group over ONE
// connection to a group-provisioning front end. The exchange:
//   1. SendGroupManifest — the plaintext GroupManifest frame leads.
//   2. AwaitAdmission    — the front end's control frame (admit / retry).
//   3. SendPrograms      — reads the group hello (one group quote covering
//      the ordered member identities + one public key per member), verifies
//      the single quote in place of N per-member verifications, wraps ONE
//      AES master key to member 0's key, then uploads each distinct binary
//      once (members sharing a digest share the upload).
//   4. AwaitVerdicts     — one verdict per member, in declaration order.
class GroupClient {
 public:
  // `policy_fingerprint` is the agreed PolicySetFingerprint every member
  // declares (the client knows it: the policy set is mutually negotiated).
  GroupClient(ClientOptions options, std::vector<Bytes> executables,
              std::string policy_fingerprint)
      : options_(std::move(options)),
        executables_(std::move(executables)),
        policy_fingerprint_(std::move(policy_fingerprint)),
        drbg_(ByteView(options_.entropy.data(), options_.entropy.size())) {}

  // Replaces the honest manifest with a tampered one (tests: digest lies,
  // sibling-measurement mismatches). Must be called before SendGroupManifest.
  void set_manifest(core::GroupManifest manifest) {
    manifest_.emplace(std::move(manifest));
  }

  Status SendGroupManifest(crypto::DuplexPipe::Endpoint endpoint);
  // Same control-frame semantics as Client::AwaitAdmission.
  Result<std::optional<core::RetryAfter>> AwaitAdmission(
      crypto::DuplexPipe::Endpoint endpoint);
  Status SendPrograms(crypto::DuplexPipe::Endpoint endpoint);
  Result<std::vector<core::Verdict>> AwaitVerdicts();

  size_t member_count() const noexcept { return executables_.size(); }

 private:
  Status EnsureManifest();

  ClientOptions options_;
  std::vector<Bytes> executables_;
  std::string policy_fingerprint_;
  std::optional<core::GroupManifest> manifest_;
  crypto::HmacDrbg drbg_;
  std::optional<crypto::SecureChannel> channel_;
};

}  // namespace engarde::client

#endif  // ENGARDE_CLIENT_CLIENT_H_
