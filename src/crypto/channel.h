// The encrypted, authenticated channel between the client machine and the
// EnGarde enclave (paper Section 3: RSA key exchange bootstraps a 256-bit AES
// session; all client content travels encrypted).
//
// Two layers:
//  * DuplexPipe — an in-memory, bidirectional byte stream standing in for the
//    socket connection the enclave's bootstrap code opens to the client.
//  * SecureChannel — AES-256-CTR encryption + HMAC-SHA256 authentication
//    (encrypt-then-MAC) with per-direction keys and strictly monotonic
//    record sequence numbers (replay/reorder rejection).
#ifndef ENGARDE_CRYPTO_CHANNEL_H_
#define ENGARDE_CRYPTO_CHANNEL_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"

namespace engarde::crypto {

// One direction of an in-memory byte stream. Not thread-safe: the protocol in
// this reproduction is strictly request/response on one thread, mirroring the
// synchronous loader loop in the paper's prototype.
//
// Half-close: the writing side may Close() the queue (TCP FIN / shutdown).
// Bytes written before the close remain readable; once they drain, AtEof()
// turns true. This is what lets a readiness-driven session distinguish "the
// peer is gone" from "a record is still in flight".
class ByteQueue {
 public:
  // Writes after Close() are discarded, like writing past a shutdown socket.
  void Write(ByteView data) {
    if (closed_) return;
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }
  size_t Available() const noexcept { return buffer_.size(); }

  // Half-close: no further bytes will ever arrive (pending ones stay).
  void Close() noexcept { closed_ = true; }
  bool closed() const noexcept { return closed_; }
  // End of stream: closed and fully drained.
  bool AtEof() const noexcept { return closed_ && buffer_.empty(); }

  // Reads exactly n bytes; PROTOCOL_ERROR if fewer are available.
  Result<Bytes> Read(size_t n);

  // Copies up to n bytes without consuming them (non-blocking framing peeks).
  Bytes Peek(size_t n) const;

 private:
  std::deque<uint8_t> buffer_;
  bool closed_ = false;
};

// A bidirectional pipe with two ends. Endpoint A writes into the a-to-b
// queue and reads from b-to-a; endpoint B is the mirror image.
class DuplexPipe {
 public:
  class Endpoint {
   public:
    Endpoint(ByteQueue* out, ByteQueue* in) noexcept : out_(out), in_(in) {}
    void Write(ByteView data) { out_->Write(data); }
    Result<Bytes> Read(size_t n) { return in_->Read(n); }
    size_t Available() const noexcept { return in_->Available(); }
    Bytes Peek(size_t n) const { return in_->Peek(n); }

    // Half-close semantics (see ByteQueue): CloseWrite signals the peer that
    // this side will send nothing more; PeerClosed/AtEof report the mirror
    // signal from the peer, so a pumped session can tell "peer gone" from
    // "bytes pending".
    void CloseWrite() noexcept { out_->Close(); }
    bool PeerClosed() const noexcept { return in_->closed(); }
    bool AtEof() const noexcept { return in_->AtEof(); }

   private:
    ByteQueue* out_;
    ByteQueue* in_;
  };

  Endpoint EndA() noexcept { return Endpoint(&a_to_b_, &b_to_a_); }
  Endpoint EndB() noexcept { return Endpoint(&b_to_a_, &a_to_b_); }

 private:
  ByteQueue a_to_b_;
  ByteQueue b_to_a_;
};

// Session keys derived from the 256-bit master key the client generated.
// Each direction gets its own AES and MAC key via HMAC-based derivation so
// a reflected record can never authenticate.
struct SessionKeys {
  Aes256Key client_to_enclave_aes;
  Aes256Key enclave_to_client_aes;
  Sha256Digest client_to_enclave_mac;
  Sha256Digest enclave_to_client_mac;

  static SessionKeys Derive(ByteView master_key);
};

// Record layer over one pipe endpoint. `is_enclave_side` selects which
// derived keys encrypt outbound vs. authenticate inbound traffic.
class SecureChannel {
 public:
  SecureChannel(DuplexPipe::Endpoint endpoint, const SessionKeys& keys,
                bool is_enclave_side) noexcept;

  // Encrypts, MACs and writes one record: len(4) || seq(8) || ct || tag(32).
  Status Send(ByteView plaintext);

  // Reads, authenticates and decrypts the next record.
  Result<Bytes> Receive();

  // Non-blocking variant: nullopt when the pipe does not yet hold one whole
  // record (header + ciphertext + tag); otherwise behaves exactly like
  // Receive(). Lets a ProvisioningSession pump partial input without ever
  // consuming a truncated record.
  Result<std::optional<Bytes>> TryReceive();

  uint64_t records_sent() const noexcept { return send_seq_; }
  uint64_t records_received() const noexcept { return recv_seq_; }

 private:
  DuplexPipe::Endpoint endpoint_;
  AesCtr send_cipher_;
  AesCtr recv_cipher_;
  Sha256Digest send_mac_key_;
  Sha256Digest recv_mac_key_;
  uint64_t send_seq_ = 0;
  uint64_t recv_seq_ = 0;
  uint64_t send_stream_offset_ = 0;
  uint64_t recv_stream_offset_ = 0;
};

}  // namespace engarde::crypto

#endif  // ENGARDE_CRYPTO_CHANNEL_H_
