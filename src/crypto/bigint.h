// Arbitrary-precision unsigned integers for RSA-2048 (key generation, modular
// exponentiation, modular inverse). 32-bit limbs, little-endian limb order;
// division is Knuth Algorithm D so modular exponentiation at 2048 bits is
// fast enough for tests. No signed support — RSA needs none except inside
// the extended Euclid, which tracks signs explicitly.
#ifndef ENGARDE_CRYPTO_BIGINT_H_
#define ENGARDE_CRYPTO_BIGINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace engarde::crypto {

class BigInt {
 public:
  BigInt() = default;  // zero
  static BigInt FromU64(uint64_t v);
  // Big-endian byte string (leading zeros permitted).
  static BigInt FromBytes(ByteView bytes);
  static Result<BigInt> FromHex(std::string_view hex);

  bool IsZero() const noexcept { return limbs_.empty(); }
  bool IsOdd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1); }
  // Number of significant bits; 0 for zero.
  size_t BitLength() const noexcept;
  bool GetBit(size_t i) const noexcept;
  uint64_t ToU64() const noexcept;  // truncates to low 64 bits

  // Big-endian bytes, zero-padded on the left to at least min_size.
  Bytes ToBytes(size_t min_size = 0) const;
  std::string ToHex() const;

  // Three-way comparison: -1, 0, +1.
  static int Compare(const BigInt& a, const BigInt& b) noexcept;
  bool operator==(const BigInt& other) const noexcept {
    return Compare(*this, other) == 0;
  }
  bool operator<(const BigInt& other) const noexcept {
    return Compare(*this, other) < 0;
  }
  bool operator<=(const BigInt& other) const noexcept {
    return Compare(*this, other) <= 0;
  }

  static BigInt Add(const BigInt& a, const BigInt& b);
  // Requires a >= b (asserted).
  static BigInt Sub(const BigInt& a, const BigInt& b);
  static BigInt Mul(const BigInt& a, const BigInt& b);
  // Requires divisor != 0 (asserted). quotient*divisor + remainder == a.
  static void DivMod(const BigInt& a, const BigInt& divisor, BigInt& quotient,
                     BigInt& remainder);
  static BigInt Mod(const BigInt& a, const BigInt& m);

  BigInt ShiftLeft(size_t bits) const;
  BigInt ShiftRight(size_t bits) const;

  // (base^exp) mod m; m must be nonzero.
  static BigInt ModExp(const BigInt& base, const BigInt& exp, const BigInt& m);
  static BigInt Gcd(BigInt a, BigInt b);
  // Multiplicative inverse of a mod m; error if gcd(a, m) != 1.
  static Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

 private:
  void Trim() noexcept;

  std::vector<uint32_t> limbs_;  // little-endian; empty == zero
};

}  // namespace engarde::crypto

#endif  // ENGARDE_CRYPTO_BIGINT_H_
