#include "crypto/drbg.h"

#include <cstring>

#include "crypto/hmac.h"

namespace engarde::crypto {

HmacDrbg::HmacDrbg(ByteView seed) {
  std::memset(k_, 0x00, sizeof(k_));
  std::memset(v_, 0x01, sizeof(v_));
  UpdateState(seed);
}

void HmacDrbg::Reseed(ByteView seed) { UpdateState(seed); }

void HmacDrbg::UpdateState(ByteView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  {
    HmacSha256 mac(ByteView(k_, sizeof(k_)));
    mac.Update(ByteView(v_, sizeof(v_)));
    const uint8_t zero = 0x00;
    mac.Update(ByteView(&zero, 1));
    mac.Update(provided);
    const Sha256Digest k = mac.Finalize();
    std::memcpy(k_, k.data(), k.size());
  }
  {
    const Sha256Digest v =
        HmacSha256::Mac(ByteView(k_, sizeof(k_)), ByteView(v_, sizeof(v_)));
    std::memcpy(v_, v.data(), v.size());
  }
  if (provided.empty()) return;
  // Second round with 0x01 separator, per SP 800-90A.
  {
    HmacSha256 mac(ByteView(k_, sizeof(k_)));
    mac.Update(ByteView(v_, sizeof(v_)));
    const uint8_t one = 0x01;
    mac.Update(ByteView(&one, 1));
    mac.Update(provided);
    const Sha256Digest k = mac.Finalize();
    std::memcpy(k_, k.data(), k.size());
  }
  {
    const Sha256Digest v =
        HmacSha256::Mac(ByteView(k_, sizeof(k_)), ByteView(v_, sizeof(v_)));
    std::memcpy(v_, v.data(), v.size());
  }
}

void HmacDrbg::Generate(MutableByteView out) {
  size_t produced = 0;
  while (produced < out.size()) {
    const Sha256Digest v =
        HmacSha256::Mac(ByteView(k_, sizeof(k_)), ByteView(v_, sizeof(v_)));
    std::memcpy(v_, v.data(), v.size());
    const size_t take = std::min(out.size() - produced, v.size());
    std::memcpy(out.data() + produced, v_, take);
    produced += take;
  }
  UpdateState({});
}

Bytes HmacDrbg::Generate(size_t n) {
  Bytes out(n);
  Generate(MutableByteView(out.data(), out.size()));
  return out;
}

uint64_t HmacDrbg::NextU64() {
  uint8_t tmp[8];
  Generate(MutableByteView(tmp, sizeof(tmp)));
  return LoadLe64(tmp);
}

}  // namespace engarde::crypto
