// HMAC-DRBG over SHA-256 (NIST SP 800-90A, simplified: no personalization
// string handling beyond seed material, reseed supported). This is the
// cryptographic randomness source for RSA key generation and AES session
// keys. It is deliberately deterministic from its seed so the whole
// reproduction (attestation keys, session keys) is replayable in tests.
#ifndef ENGARDE_CRYPTO_DRBG_H_
#define ENGARDE_CRYPTO_DRBG_H_

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace engarde::crypto {

class HmacDrbg {
 public:
  explicit HmacDrbg(ByteView seed);

  // Mixes additional entropy into the state.
  void Reseed(ByteView seed);

  // Fills out with pseudo-random bytes.
  void Generate(MutableByteView out);
  Bytes Generate(size_t n);

  uint64_t NextU64();

 private:
  void UpdateState(ByteView provided);

  uint8_t k_[Sha256::kDigestSize];
  uint8_t v_[Sha256::kDigestSize];
};

}  // namespace engarde::crypto

#endif  // ENGARDE_CRYPTO_DRBG_H_
