#include "crypto/hmac.h"

#include <cstring>

namespace engarde::crypto {

HmacSha256::HmacSha256(ByteView key) noexcept {
  uint8_t block_key[Sha256::kBlockSize] = {};
  if (key.size() > Sha256::kBlockSize) {
    const Sha256Digest d = Sha256::Hash(key);
    std::memcpy(block_key, d.data(), d.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }

  uint8_t ipad_key[Sha256::kBlockSize];
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad_key[i] = block_key[i] ^ 0x36;
    opad_key_[i] = block_key[i] ^ 0x5c;
  }
  inner_.Update(ByteView(ipad_key, sizeof(ipad_key)));
}

Sha256Digest HmacSha256::Finalize() noexcept {
  const Sha256Digest inner_digest = inner_.Finalize();
  Sha256 outer;
  outer.Update(ByteView(opad_key_, sizeof(opad_key_)));
  outer.Update(DigestView(inner_digest));
  return outer.Finalize();
}

Sha256Digest HmacSha256::Mac(ByteView key, ByteView data) noexcept {
  HmacSha256 mac(key);
  mac.Update(data);
  return mac.Finalize();
}

}  // namespace engarde::crypto
