// HMAC-SHA256 (RFC 2104 / FIPS 198-1). Authenticates the provisioning
// channel's ciphertext (encrypt-then-MAC) and drives the HMAC-DRBG.
#ifndef ENGARDE_CRYPTO_HMAC_H_
#define ENGARDE_CRYPTO_HMAC_H_

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace engarde::crypto {

class HmacSha256 {
 public:
  static constexpr size_t kTagSize = Sha256::kDigestSize;

  explicit HmacSha256(ByteView key) noexcept;

  void Update(ByteView data) noexcept { inner_.Update(data); }
  Sha256Digest Finalize() noexcept;

  static Sha256Digest Mac(ByteView key, ByteView data) noexcept;

 private:
  Sha256 inner_;
  uint8_t opad_key_[Sha256::kBlockSize];
};

}  // namespace engarde::crypto

#endif  // ENGARDE_CRYPTO_HMAC_H_
