// RSA over crypto/bigint. Two uses in EnGarde (Section 3):
//  1. The freshly-created enclave generates a 2048-bit RSA key pair; the
//     client wraps its 256-bit AES session key with the enclave public key.
//  2. The quoting enclave signs attestation quotes with a device key
//     (standing in for the Intel EPID key, which is a group signature in
//     real SGX — the trust structure is the same: only the quoting enclave
//     holds the private half, clients hold the public half).
//
// Padding: PKCS#1 v1.5 type 2 for encryption, type 1 with an embedded
// SHA-256 digest for signatures. Randomness comes from a caller-supplied
// HmacDrbg so key generation is deterministic per seed.
#ifndef ENGARDE_CRYPTO_RSA_H_
#define ENGARDE_CRYPTO_RSA_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/bigint.h"
#include "crypto/drbg.h"
#include "crypto/sha256.h"

namespace engarde::crypto {

struct RsaPublicKey {
  BigInt n;
  BigInt e;

  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }

  // Wire form: len(n) || n || len(e) || e, lengths as 32-bit LE.
  Bytes Serialize() const;
  static Result<RsaPublicKey> Deserialize(ByteView data);
};

struct RsaPrivateKey {
  RsaPublicKey public_key;
  BigInt d;
  BigInt p;
  BigInt q;
};

struct RsaKeyPair {
  RsaPublicKey public_key;
  RsaPrivateKey private_key;
};

// Generates an RSA key with a modulus of `modulus_bits` (e.g. 2048; tests use
// smaller sizes for speed). e = 65537.
Result<RsaKeyPair> RsaGenerateKey(size_t modulus_bits, HmacDrbg& drbg);

// PKCS#1 v1.5 type-2 encryption. Message must fit: len <= k - 11.
Result<Bytes> RsaEncrypt(const RsaPublicKey& key, ByteView message,
                         HmacDrbg& drbg);
Result<Bytes> RsaDecrypt(const RsaPrivateKey& key, ByteView ciphertext);

// PKCS#1 v1.5 type-1 signature over SHA-256(message).
Result<Bytes> RsaSign(const RsaPrivateKey& key, ByteView message);
// OK on valid signature; INTEGRITY_ERROR otherwise.
Status RsaVerify(const RsaPublicKey& key, ByteView message,
                 ByteView signature);

// Miller-Rabin primality test (exposed for tests). `rounds` witnesses drawn
// from drbg; deterministic small-prime trial division happens first.
bool IsProbablePrime(const BigInt& n, HmacDrbg& drbg, int rounds = 20);

}  // namespace engarde::crypto

#endif  // ENGARDE_CRYPTO_RSA_H_
