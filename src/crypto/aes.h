// AES-256 block cipher (FIPS 197) and CTR-mode stream (SP 800-38A),
// implemented from scratch. The provisioning channel encrypts the client's
// code blocks with AES-256-CTR, exactly as EnGarde's crypto library does with
// the client-supplied 256-bit AES key (Section 3, "Overall Design").
#ifndef ENGARDE_CRYPTO_AES_H_
#define ENGARDE_CRYPTO_AES_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace engarde::crypto {

using Aes256Key = std::array<uint8_t, 32>;
using AesBlock = std::array<uint8_t, 16>;

// The raw block cipher. Exposed for tests against the FIPS-197 vectors;
// application code should use AesCtr.
class Aes256 {
 public:
  explicit Aes256(const Aes256Key& key) noexcept;

  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const noexcept;
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const noexcept;

 private:
  static constexpr int kRounds = 14;
  // Round keys, 4 words per round plus the initial AddRoundKey.
  uint32_t enc_round_keys_[4 * (kRounds + 1)];
};

// CTR mode: the 16-byte counter block is nonce(12) || big-endian counter(4).
// Seek-able keystream so blocks can be decrypted out of order if the protocol
// ever retransmits.
class AesCtr {
 public:
  AesCtr(const Aes256Key& key, const std::array<uint8_t, 12>& nonce) noexcept;

  // XORs the keystream starting at `stream_offset` into data (in place).
  // Encrypt and decrypt are the same operation in CTR mode.
  void Crypt(uint64_t stream_offset, MutableByteView data) noexcept;

  // Convenience: allocates the output buffer.
  Bytes Crypt(uint64_t stream_offset, ByteView data);

 private:
  void KeystreamBlock(uint32_t counter, uint8_t out[16]) const noexcept;

  Aes256 cipher_;
  std::array<uint8_t, 12> nonce_;
};

}  // namespace engarde::crypto

#endif  // ENGARDE_CRYPTO_AES_H_
