#include "crypto/bigint.h"

#include <algorithm>
#include <cassert>

#include "common/hex.h"

namespace engarde::crypto {

void BigInt::Trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::FromU64(uint64_t v) {
  BigInt out;
  if (v != 0) out.limbs_.push_back(static_cast<uint32_t>(v));
  if (v >> 32) out.limbs_.push_back(static_cast<uint32_t>(v >> 32));
  return out;
}

BigInt BigInt::FromBytes(ByteView bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    // bytes are big-endian: bytes[size-1] is the least significant.
    const size_t bit_index = bytes.size() - 1 - i;
    out.limbs_[bit_index / 4] |= static_cast<uint32_t>(bytes[i])
                                 << (8 * (bit_index % 4));
  }
  out.Trim();
  return out;
}

Result<BigInt> BigInt::FromHex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  ASSIGN_OR_RETURN(const Bytes bytes, HexDecode(padded));
  return FromBytes(ByteView(bytes.data(), bytes.size()));
}

size_t BigInt::BitLength() const noexcept {
  if (limbs_.empty()) return 0;
  const uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  return bits + (32 - static_cast<size_t>(__builtin_clz(top)));
}

bool BigInt::GetBit(size_t i) const noexcept {
  const size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

uint64_t BigInt::ToU64() const noexcept {
  uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<uint64_t>(limbs_[1]) << 32;
  return v;
}

Bytes BigInt::ToBytes(size_t min_size) const {
  const size_t bit_len = BitLength();
  const size_t byte_len = std::max((bit_len + 7) / 8, min_size);
  Bytes out(byte_len, 0);
  for (size_t i = 0; i < byte_len; ++i) {
    const size_t limb = i / 4;
    if (limb >= limbs_.size()) break;
    out[byte_len - 1 - i] =
        static_cast<uint8_t>(limbs_[limb] >> (8 * (i % 4)));
  }
  return out;
}

std::string BigInt::ToHex() const {
  if (IsZero()) return "0";
  std::string hex = HexEncode(ToBytes());
  // Strip leading zero nibbles for canonical form.
  size_t first = hex.find_first_not_of('0');
  return hex.substr(first);
}

int BigInt::Compare(const BigInt& a, const BigInt& b) noexcept {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& a, const BigInt& b) {
  BigInt out;
  const size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.reserve(n + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_.push_back(static_cast<uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<uint32_t>(carry));
  return out;
}

BigInt BigInt::Sub(const BigInt& a, const BigInt& b) {
  assert(Compare(a, b) >= 0 && "BigInt::Sub requires a >= b");
  BigInt out;
  out.limbs_.reserve(a.limbs_.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<uint32_t>(diff));
  }
  out.Trim();
  return out;
}

BigInt BigInt::Mul(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      const uint64_t cur =
          static_cast<uint64_t>(out.limbs_[i + j]) + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.limbs_.size();
    while (carry) {
      const uint64_t cur = static_cast<uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftRight(size_t bits) const {
  const size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  const size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Trim();
  return out;
}

// Knuth TAOCP Vol. 2, Algorithm D (division of nonnegative integers).
void BigInt::DivMod(const BigInt& a, const BigInt& divisor, BigInt& quotient,
                    BigInt& remainder) {
  assert(!divisor.IsZero() && "division by zero");
  if (Compare(a, divisor) < 0) {
    quotient = BigInt();
    remainder = a;
    return;
  }

  // Single-limb divisor: simple short division.
  if (divisor.limbs_.size() == 1) {
    const uint64_t d = divisor.limbs_[0];
    BigInt q;
    q.limbs_.assign(a.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      const uint64_t cur = (rem << 32) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    q.Trim();
    quotient = std::move(q);
    remainder = FromU64(rem);
    return;
  }

  // D1: normalize so the divisor's top limb has its high bit set.
  const size_t shift =
      static_cast<size_t>(__builtin_clz(divisor.limbs_.back()));
  const BigInt u = a.ShiftLeft(shift);
  const BigInt v = divisor.ShiftLeft(shift);
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() - n;

  std::vector<uint32_t> un(u.limbs_);
  un.push_back(0);  // extra high limb for the algorithm
  const std::vector<uint32_t>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // D3: estimate q̂.
    const uint64_t numerator =
        (static_cast<uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    uint64_t qhat = numerator / vn[n - 1];
    uint64_t rhat = numerator % vn[n - 1];
    while (qhat >= (1ULL << 32) ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= (1ULL << 32)) break;
    }

    // D4: multiply and subtract.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const int64_t t =
          static_cast<int64_t>(un[i + j]) - borrow -
          static_cast<int64_t>(static_cast<uint32_t>(p));
      un[i + j] = static_cast<uint32_t>(t);
      borrow = (t < 0) ? 1 : 0;
    }
    const int64_t t =
        static_cast<int64_t>(un[j + n]) - borrow - static_cast<int64_t>(carry);
    un[j + n] = static_cast<uint32_t>(t);

    // D5/D6: if we subtracted too much, add back.
    if (t < 0) {
      --qhat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t sum =
            static_cast<uint64_t>(un[i + j]) + vn[i] + carry2;
        un[i + j] = static_cast<uint32_t>(sum);
        carry2 = sum >> 32;
      }
      un[j + n] = static_cast<uint32_t>(un[j + n] + carry2);
    }
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }

  q.Trim();
  quotient = std::move(q);

  BigInt r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<long>(n));
  r.Trim();
  remainder = r.ShiftRight(shift);
}

BigInt BigInt::Mod(const BigInt& a, const BigInt& m) {
  BigInt q, r;
  DivMod(a, m, q, r);
  return r;
}

BigInt BigInt::ModExp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  assert(!m.IsZero());
  BigInt result = FromU64(1);
  result = Mod(result, m);
  BigInt b = Mod(base, m);
  const size_t bits = exp.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exp.GetBit(i)) result = Mod(Mul(result, b), m);
    b = Mod(Mul(b, b), m);
  }
  return result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  while (!b.IsZero()) {
    BigInt r = Mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Result<BigInt> BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid with explicit sign tracking for the Bezout coefficient.
  BigInt r0 = m, r1 = Mod(a, m);
  BigInt t0, t1 = FromU64(1);
  bool t0_neg = false, t1_neg = false;

  while (!r1.IsZero()) {
    BigInt q, r2;
    DivMod(r0, r1, q, r2);

    // t2 = t0 - q*t1 (signed)
    const BigInt qt1 = Mul(q, t1);
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (Compare(t0, qt1) >= 0) {
        t2 = Sub(t0, qt1);
        t2_neg = t0_neg;
      } else {
        t2 = Sub(qt1, t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = Add(t0, qt1);
      t2_neg = t0_neg;
    }

    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }

  if (Compare(r0, FromU64(1)) != 0) {
    return InvalidArgumentError("ModInverse: operands are not coprime");
  }
  if (t0_neg) return Sub(m, Mod(t0, m));
  return Mod(t0, m);
}

}  // namespace engarde::crypto
