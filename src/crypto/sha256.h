// SHA-256 (FIPS 180-4), implemented from scratch. Used for:
//  * enclave measurement (MRENCLAVE-style build log digest, Section 2),
//  * the library-linking policy's per-function digests (Section 5),
//  * HMAC / HMAC-DRBG, and attestation quote hashing.
#ifndef ENGARDE_CRYPTO_SHA256_H_
#define ENGARDE_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace engarde::crypto {

using Sha256Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256() noexcept { Reset(); }

  void Reset() noexcept;
  void Update(ByteView data) noexcept;

  // Finalize consumes the state; call Reset() to reuse the object.
  Sha256Digest Finalize() noexcept;

  // One-shot convenience.
  static Sha256Digest Hash(ByteView data) noexcept;

 private:
  void ProcessBlock(const uint8_t* block) noexcept;

  uint32_t state_[8];
  uint64_t total_bytes_;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_;
};

inline ByteView DigestView(const Sha256Digest& d) noexcept {
  return ByteView(d.data(), d.size());
}

}  // namespace engarde::crypto

#endif  // ENGARDE_CRYPTO_SHA256_H_
