#include "crypto/rsa.h"

#include <cassert>

namespace engarde::crypto {
namespace {

// Small primes for trial division before Miller-Rabin.
constexpr uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,
    53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109,
    113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269,
    271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353,
    359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433, 439,
    443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523,
    541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617,
    619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701, 709,
    719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809, 811,
    821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907,
    911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997};

// Uniform random BigInt in [2, n-2] for Miller-Rabin witnesses.
BigInt RandomWitness(const BigInt& n, HmacDrbg& drbg) {
  const size_t bytes = (n.BitLength() + 7) / 8;
  for (;;) {
    const Bytes raw = drbg.Generate(bytes);
    BigInt candidate = BigInt::FromBytes(ByteView(raw.data(), raw.size()));
    candidate = BigInt::Mod(candidate, n);
    if (BigInt::Compare(candidate, BigInt::FromU64(2)) >= 0 &&
        BigInt::Compare(candidate, BigInt::Sub(n, BigInt::FromU64(2))) <= 0) {
      return candidate;
    }
  }
}

BigInt RandomOddWithTopBits(size_t bits, HmacDrbg& drbg) {
  assert(bits % 8 == 0 && bits >= 16);
  Bytes raw = drbg.Generate(bits / 8);
  // Force the top two bits so the product of two such primes has the full
  // 2*bits length, and force oddness.
  raw[0] |= 0xc0;
  raw.back() |= 0x01;
  return BigInt::FromBytes(ByteView(raw.data(), raw.size()));
}

}  // namespace

bool IsProbablePrime(const BigInt& n, HmacDrbg& drbg, int rounds) {
  if (n.IsZero()) return false;
  if (BigInt::Compare(n, BigInt::FromU64(3)) <= 0) {
    const uint64_t v = n.ToU64();
    return v == 2 || v == 3;
  }
  if (!n.IsOdd()) return false;

  for (const uint32_t p : kSmallPrimes) {
    const BigInt bp = BigInt::FromU64(p);
    if (BigInt::Compare(n, bp) == 0) return true;
    if (BigInt::Mod(n, bp).IsZero()) return false;
  }

  // Write n-1 = d * 2^r with d odd.
  const BigInt n_minus_1 = BigInt::Sub(n, BigInt::FromU64(1));
  BigInt d = n_minus_1;
  size_t r = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++r;
  }

  for (int i = 0; i < rounds; ++i) {
    const BigInt a = RandomWitness(n, drbg);
    BigInt x = BigInt::ModExp(a, d, n);
    if (BigInt::Compare(x, BigInt::FromU64(1)) == 0 ||
        BigInt::Compare(x, n_minus_1) == 0) {
      continue;
    }
    bool witness = true;
    for (size_t j = 0; j + 1 < r; ++j) {
      x = BigInt::Mod(BigInt::Mul(x, x), n);
      if (BigInt::Compare(x, n_minus_1) == 0) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

namespace {

BigInt GeneratePrime(size_t bits, HmacDrbg& drbg) {
  for (;;) {
    BigInt candidate = RandomOddWithTopBits(bits, drbg);
    if (IsProbablePrime(candidate, drbg)) return candidate;
  }
}

}  // namespace

Bytes RsaPublicKey::Serialize() const {
  Bytes out;
  const Bytes n_bytes = n.ToBytes();
  const Bytes e_bytes = e.ToBytes();
  AppendLe32(out, static_cast<uint32_t>(n_bytes.size()));
  AppendBytes(out, ByteView(n_bytes.data(), n_bytes.size()));
  AppendLe32(out, static_cast<uint32_t>(e_bytes.size()));
  AppendBytes(out, ByteView(e_bytes.data(), e_bytes.size()));
  return out;
}

Result<RsaPublicKey> RsaPublicKey::Deserialize(ByteView data) {
  ByteReader reader(data);
  uint32_t n_len = 0;
  ByteView n_bytes;
  uint32_t e_len = 0;
  ByteView e_bytes;
  if (!reader.ReadLe32(n_len) || !reader.ReadBytes(n_len, n_bytes) ||
      !reader.ReadLe32(e_len) || !reader.ReadBytes(e_len, e_bytes) ||
      !reader.AtEnd()) {
    return InvalidArgumentError("malformed RSA public key encoding");
  }
  RsaPublicKey key;
  key.n = BigInt::FromBytes(n_bytes);
  key.e = BigInt::FromBytes(e_bytes);
  if (key.n.IsZero() || key.e.IsZero()) {
    return InvalidArgumentError("RSA public key has zero component");
  }
  return key;
}

Result<RsaKeyPair> RsaGenerateKey(size_t modulus_bits, HmacDrbg& drbg) {
  if (modulus_bits < 256 || modulus_bits % 16 != 0) {
    return InvalidArgumentError(
        "RSA modulus must be a multiple of 16 bits, >= 256");
  }
  const BigInt e = BigInt::FromU64(65537);
  const size_t prime_bits = modulus_bits / 2;

  for (int attempt = 0; attempt < 64; ++attempt) {
    const BigInt p = GeneratePrime(prime_bits, drbg);
    const BigInt q = GeneratePrime(prime_bits, drbg);
    if (BigInt::Compare(p, q) == 0) continue;

    const BigInt n = BigInt::Mul(p, q);
    if (n.BitLength() != modulus_bits) continue;

    const BigInt p1 = BigInt::Sub(p, BigInt::FromU64(1));
    const BigInt q1 = BigInt::Sub(q, BigInt::FromU64(1));
    const BigInt phi = BigInt::Mul(p1, q1);
    if (BigInt::Compare(BigInt::Gcd(e, phi), BigInt::FromU64(1)) != 0) {
      continue;
    }
    auto d = BigInt::ModInverse(e, phi);
    if (!d.ok()) continue;

    RsaKeyPair pair;
    pair.public_key = {n, e};
    pair.private_key = {pair.public_key, std::move(d).value(), p, q};
    return pair;
  }
  return InternalError("RSA key generation did not converge");
}

Result<Bytes> RsaEncrypt(const RsaPublicKey& key, ByteView message,
                         HmacDrbg& drbg) {
  const size_t k = key.ModulusBytes();
  if (message.size() + 11 > k) {
    return InvalidArgumentError("RSA plaintext too long for modulus");
  }
  // EM = 0x00 || 0x02 || PS (nonzero random) || 0x00 || M
  Bytes em(k, 0);
  em[1] = 0x02;
  const size_t ps_len = k - message.size() - 3;
  for (size_t i = 0; i < ps_len; ++i) {
    uint8_t b = 0;
    do {
      Bytes one = drbg.Generate(1);
      b = one[0];
    } while (b == 0);
    em[2 + i] = b;
  }
  em[2 + ps_len] = 0x00;
  std::copy(message.begin(), message.end(), em.begin() + 3 + ps_len);

  const BigInt m = BigInt::FromBytes(ByteView(em.data(), em.size()));
  const BigInt c = BigInt::ModExp(m, key.e, key.n);
  return c.ToBytes(k);
}

Result<Bytes> RsaDecrypt(const RsaPrivateKey& key, ByteView ciphertext) {
  const size_t k = key.public_key.ModulusBytes();
  if (ciphertext.size() != k) {
    return InvalidArgumentError("RSA ciphertext has wrong length");
  }
  const BigInt c = BigInt::FromBytes(ciphertext);
  if (BigInt::Compare(c, key.public_key.n) >= 0) {
    return InvalidArgumentError("RSA ciphertext out of range");
  }
  const BigInt m = BigInt::ModExp(c, key.d, key.public_key.n);
  const Bytes em = m.ToBytes(k);

  if (em.size() != k || em[0] != 0x00 || em[1] != 0x02) {
    return IntegrityError("RSA decryption: bad PKCS#1 type-2 header");
  }
  size_t sep = 2;
  while (sep < k && em[sep] != 0x00) ++sep;
  if (sep == k || sep < 10) {  // at least 8 bytes of PS
    return IntegrityError("RSA decryption: malformed padding");
  }
  return Bytes(em.begin() + static_cast<long>(sep) + 1, em.end());
}

namespace {

// DigestInfo-style prefix marking "this is a SHA-256 hash". We use a fixed
// ASCII tag rather than ASN.1 DER; both sides of the protocol are ours.
constexpr char kSigTag[] = "ENGARDE-SHA256:";

Bytes BuildSignaturePayload(ByteView message) {
  const Sha256Digest digest = Sha256::Hash(message);
  Bytes payload = ToBytes(kSigTag);
  AppendBytes(payload, DigestView(digest));
  return payload;
}

}  // namespace

Result<Bytes> RsaSign(const RsaPrivateKey& key, ByteView message) {
  const size_t k = key.public_key.ModulusBytes();
  const Bytes payload = BuildSignaturePayload(message);
  if (payload.size() + 11 > k) {
    return InvalidArgumentError("RSA modulus too small to sign SHA-256");
  }
  // EM = 0x00 || 0x01 || 0xFF..0xFF || 0x00 || payload
  Bytes em(k, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[k - payload.size() - 1] = 0x00;
  std::copy(payload.begin(), payload.end(),
            em.begin() + static_cast<long>(k - payload.size()));

  const BigInt m = BigInt::FromBytes(ByteView(em.data(), em.size()));
  const BigInt s = BigInt::ModExp(m, key.d, key.public_key.n);
  return s.ToBytes(k);
}

Status RsaVerify(const RsaPublicKey& key, ByteView message,
                 ByteView signature) {
  const size_t k = key.ModulusBytes();
  if (signature.size() != k) {
    return IntegrityError("RSA signature has wrong length");
  }
  const BigInt s = BigInt::FromBytes(signature);
  if (BigInt::Compare(s, key.n) >= 0) {
    return IntegrityError("RSA signature out of range");
  }
  const BigInt m = BigInt::ModExp(s, key.e, key.n);
  const Bytes em = m.ToBytes(k);

  const Bytes payload = BuildSignaturePayload(message);
  Bytes expected(k, 0xff);
  expected[0] = 0x00;
  expected[1] = 0x01;
  expected[k - payload.size() - 1] = 0x00;
  std::copy(payload.begin(), payload.end(),
            expected.begin() + static_cast<long>(k - payload.size()));

  if (!ConstantTimeEqual(ByteView(em.data(), em.size()),
                         ByteView(expected.data(), expected.size()))) {
    return IntegrityError("RSA signature verification failed");
  }
  return Status::Ok();
}

}  // namespace engarde::crypto
