#include "crypto/channel.h"

#include <algorithm>
#include <cstring>

namespace engarde::crypto {
namespace {

constexpr std::array<uint8_t, 12> kClientToEnclaveNonce = {
    'C', '2', 'E', 0, 0, 0, 0, 0, 0, 0, 0, 0};
constexpr std::array<uint8_t, 12> kEnclaveToClientNonce = {
    'E', '2', 'C', 0, 0, 0, 0, 0, 0, 0, 0, 0};

Aes256Key DeriveAesKey(ByteView master, std::string_view label) {
  const Sha256Digest d = HmacSha256::Mac(master, ToBytes(std::string(label)));
  Aes256Key key;
  std::memcpy(key.data(), d.data(), key.size());
  return key;
}

Sha256Digest DeriveMacKey(ByteView master, std::string_view label) {
  return HmacSha256::Mac(master, ToBytes(std::string(label)));
}

}  // namespace

Result<Bytes> ByteQueue::Read(size_t n) {
  if (buffer_.size() < n) {
    if (closed_) {
      return ProtocolError("short read: peer closed mid-record (EOF)");
    }
    return ProtocolError("short read: peer closed or sent a truncated record");
  }
  Bytes out(buffer_.begin(), buffer_.begin() + static_cast<long>(n));
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(n));
  return out;
}

Bytes ByteQueue::Peek(size_t n) const {
  const size_t take = std::min(n, buffer_.size());
  return Bytes(buffer_.begin(), buffer_.begin() + static_cast<long>(take));
}

SessionKeys SessionKeys::Derive(ByteView master_key) {
  SessionKeys keys;
  keys.client_to_enclave_aes = DeriveAesKey(master_key, "engarde c2e aes");
  keys.enclave_to_client_aes = DeriveAesKey(master_key, "engarde e2c aes");
  keys.client_to_enclave_mac = DeriveMacKey(master_key, "engarde c2e mac");
  keys.enclave_to_client_mac = DeriveMacKey(master_key, "engarde e2c mac");
  return keys;
}

SecureChannel::SecureChannel(DuplexPipe::Endpoint endpoint,
                             const SessionKeys& keys,
                             bool is_enclave_side) noexcept
    : endpoint_(endpoint),
      send_cipher_(is_enclave_side ? keys.enclave_to_client_aes
                                   : keys.client_to_enclave_aes,
                   is_enclave_side ? kEnclaveToClientNonce
                                   : kClientToEnclaveNonce),
      recv_cipher_(is_enclave_side ? keys.client_to_enclave_aes
                                   : keys.enclave_to_client_aes,
                   is_enclave_side ? kClientToEnclaveNonce
                                   : kEnclaveToClientNonce),
      send_mac_key_(is_enclave_side ? keys.enclave_to_client_mac
                                    : keys.client_to_enclave_mac),
      recv_mac_key_(is_enclave_side ? keys.client_to_enclave_mac
                                    : keys.enclave_to_client_mac) {}

Status SecureChannel::Send(ByteView plaintext) {
  if (plaintext.size() > 0x7fffffff) {
    return InvalidArgumentError("record too large");
  }
  Bytes ciphertext = send_cipher_.Crypt(send_stream_offset_, plaintext);
  send_stream_offset_ += ciphertext.size();

  Bytes header;
  AppendLe32(header, static_cast<uint32_t>(ciphertext.size()));
  AppendLe64(header, send_seq_);

  // Tag covers header (length + sequence) and ciphertext.
  HmacSha256 mac(DigestView(send_mac_key_));
  mac.Update(ByteView(header.data(), header.size()));
  mac.Update(ByteView(ciphertext.data(), ciphertext.size()));
  const Sha256Digest tag = mac.Finalize();

  endpoint_.Write(ByteView(header.data(), header.size()));
  endpoint_.Write(ByteView(ciphertext.data(), ciphertext.size()));
  endpoint_.Write(DigestView(tag));
  ++send_seq_;
  return Status::Ok();
}

Result<Bytes> SecureChannel::Receive() {
  ASSIGN_OR_RETURN(const Bytes header, endpoint_.Read(12));
  const uint32_t len = LoadLe32(header.data());
  const uint64_t seq = LoadLe64(header.data() + 4);
  if (seq != recv_seq_) {
    return ProtocolError("record sequence number mismatch (replay/reorder?)");
  }
  ASSIGN_OR_RETURN(Bytes ciphertext, endpoint_.Read(len));
  ASSIGN_OR_RETURN(const Bytes wire_tag, endpoint_.Read(HmacSha256::kTagSize));

  HmacSha256 mac(DigestView(recv_mac_key_));
  mac.Update(ByteView(header.data(), header.size()));
  mac.Update(ByteView(ciphertext.data(), ciphertext.size()));
  const Sha256Digest expected = mac.Finalize();
  if (!ConstantTimeEqual(DigestView(expected),
                         ByteView(wire_tag.data(), wire_tag.size()))) {
    return IntegrityError("record MAC verification failed");
  }

  recv_cipher_.Crypt(recv_stream_offset_,
                     MutableByteView(ciphertext.data(), ciphertext.size()));
  recv_stream_offset_ += ciphertext.size();
  ++recv_seq_;
  return ciphertext;
}

Result<std::optional<Bytes>> SecureChannel::TryReceive() {
  if (endpoint_.Available() < 12) {
    if (endpoint_.PeerClosed() && endpoint_.Available() > 0) {
      // A record header can never complete: the peer half-closed with a
      // truncated record in flight. A clean EOF between records stays nullopt
      // (the caller decides whether an EOF there is expected).
      return ProtocolError("peer closed mid-record (EOF inside header)");
    }
    return std::optional<Bytes>();
  }
  const Bytes header = endpoint_.Peek(12);
  const uint32_t len = LoadLe32(header.data());
  if (len > 0x7fffffff) return ProtocolError("oversized record");
  if (endpoint_.Available() <
      12 + static_cast<size_t>(len) + HmacSha256::kTagSize) {
    if (endpoint_.PeerClosed()) {
      return ProtocolError("peer closed mid-record (EOF inside payload)");
    }
    return std::optional<Bytes>();
  }
  ASSIGN_OR_RETURN(Bytes record, Receive());
  return std::optional<Bytes>(std::move(record));
}

}  // namespace engarde::crypto
