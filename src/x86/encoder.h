// x86-64 instruction encoder ("assembler"). The workload generator uses this
// to synthesize NaCl-clean client binaries with the paper's three policy
// instrumentations (stack-protector prologues/epilogues, IFCC guard
// sequences, jump tables); tests use it to produce byte-exact inputs for the
// decoder. Emits the same encodings clang produces for the sequences quoted
// in the paper (Section 5).
#ifndef ENGARDE_X86_ENCODER_H_
#define ENGARDE_X86_ENCODER_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "x86/insn.h"

namespace engarde::x86 {

inline constexpr size_t kBundleSize = 32;  // NaCl bundle

class Assembler {
 public:
  // `base_vaddr` is the virtual address the first emitted byte will load at;
  // absolute branch targets are encoded relative to it.
  explicit Assembler(uint64_t base_vaddr) : base_(base_vaddr) {}

  const Bytes& bytes() const { return code_; }
  Bytes TakeBytes();  // finalizes labels, then moves the buffer out
  size_t size() const { return code_.size(); }
  uint64_t CurrentVaddr() const { return base_ + code_.size(); }

  // ---- Moves ----------------------------------------------------------
  void MovRegImm64(Reg dst, uint64_t imm);            // movabs $imm, %dst
  void MovRegImm32(Reg dst, uint32_t imm);            // mov $imm, %dst(32)
  void MovRegReg(Reg dst, Reg src);                   // mov %src, %dst (64)
  void MovRegReg32(Reg dst, Reg src);                 // mov %src, %dst (32)
  void MovRegFsDisp(Reg dst, int32_t disp);           // mov %fs:disp, %dst
  void MovStore(Reg base, int32_t disp, Reg src);     // mov %src, disp(%base)
  void MovLoad(Reg dst, Reg base, int32_t disp);      // mov disp(%base), %dst
  void MovLoadRipRel(Reg dst, int32_t disp);          // mov disp(%rip), %dst
  // Load from an absolute vaddr via RIP-relative addressing (7 bytes).
  void MovLoadRipRelTo(Reg dst, uint64_t target_vaddr);

  // ---- Comparison -------------------------------------------------------
  void CmpRegMem(Reg reg, Reg base, int32_t disp);    // cmp disp(%base), %reg
  void CmpMemReg(Reg base, int32_t disp, Reg reg);    // cmp %reg, disp(%base)
  void CmpRegReg(Reg a, Reg b);                       // cmp %b, %a (64-bit)
  void CmpRegImm32(Reg reg, int32_t imm);             // cmp $imm, %reg
  void TestRegReg(Reg a, Reg b);                      // test %b, %a

  // ---- LEA ---------------------------------------------------------------
  void LeaRipRel(Reg dst, int32_t disp);              // lea disp(%rip), %dst
  // lea targeting an absolute vaddr: computes the rel32 from the insn end.
  void LeaRipRelTo(Reg dst, uint64_t target_vaddr);

  // ---- ALU (64-bit reg/reg) ----------------------------------------------
  void AddRegReg(Reg dst, Reg src);
  void SubRegReg(Reg dst, Reg src);
  void SubRegReg32(Reg dst, Reg src);                 // sub %src, %dst (32)
  void AndRegReg(Reg dst, Reg src);
  void XorRegReg(Reg dst, Reg src);
  void XorRegReg32(Reg dst, Reg src);
  void OrRegReg(Reg dst, Reg src);
  void AddRegImm32(Reg dst, int32_t imm);             // 48 81 /0
  void SubRegImm32(Reg dst, int32_t imm);             // 48 81 /5
  void AndRegImm32(Reg dst, int32_t imm);             // 48 81 /4
  void ImulRegReg(Reg dst, Reg src);                  // 0f af
  void ShlRegImm8(Reg dst, uint8_t count);
  void ShrRegImm8(Reg dst, uint8_t count);

  // ---- Stack -----------------------------------------------------------
  void Push(Reg reg);
  void Pop(Reg reg);

  // ---- Control flow -----------------------------------------------------
  void CallAbs(uint64_t target_vaddr);     // e8 rel32
  void JmpAbs(uint64_t target_vaddr);      // e9 rel32
  void JccAbs(Cond cond, uint64_t target_vaddr);  // 0f 8x rel32
  void CallIndirectReg(Reg reg);           // callq *%reg
  void JmpIndirectReg(Reg reg);            // jmpq *%reg
  void Ret();
  void Leave();

  // ---- Labels (forward references, rel32) ---------------------------------
  class Label {
   public:
    Label() = default;

   private:
    friend class Assembler;
    int id_ = -1;
  };
  Label NewLabel();
  void Bind(Label& label);
  void JmpLabel(const Label& label);
  void JccLabel(Cond cond, const Label& label);

  // ---- NOPs / padding ------------------------------------------------------
  void Nop();                 // 90
  void NopMem();              // 0f 1f 00 — "nopl (%rax)" (jump-table filler)
  void NopBytes(size_t n);    // canonical multi-byte NOP sequence, n >= 1
  void Endbr64();
  void Int3();
  void Syscall();
  void Hlt();
  void Ud2();
  void Cpuid();
  void Rdtsc();

  // Pads to the next `alignment` boundary (power of two) with NOPs chosen so
  // that no NOP itself straddles a bundle boundary.
  void AlignTo(size_t alignment);
  // If an instruction of `insn_len` bytes would straddle a 32-byte bundle
  // boundary at the current position, pads to the next boundary first.
  void BundleAlignFor(size_t insn_len);

 private:
  void Emit8(uint8_t b) { code_.push_back(b); }
  void Emit32(uint32_t v);
  void Emit64(uint64_t v);
  // REX for reg-field `reg` and rm-field `rm` register numbers.
  void EmitRex(bool w, uint8_t reg, uint8_t rm, uint8_t index = 0);
  void EmitModRmRegReg(uint8_t reg_field, uint8_t rm_reg);
  // Memory operand with base register + displacement (picks mod/disp8/32 and
  // SIB when base is rsp/r12; rbp/r13 force an explicit displacement).
  void EmitModRmMem(uint8_t reg_field, uint8_t base, int32_t disp);
  void AluRegReg64(uint8_t opcode, Reg dst, Reg src);

  struct Fixup {
    size_t rel32_offset;  // where the 4 placeholder bytes live
    int label_id;
  };

  uint64_t base_;
  Bytes code_;
  std::vector<int64_t> label_positions_;  // -1 = unbound
  std::vector<Fixup> fixups_;
  int next_label_ = 0;
};

}  // namespace engarde::x86

#endif  // ENGARDE_X86_ENCODER_H_
