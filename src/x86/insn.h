// x86-64 instruction model. The decoder fills one Insn per instruction with
// the metadata the paper's policy modules consume: mnemonic class, operand
// shapes (register / immediate / memory with segment override / RIP-relative)
// and the byte-level breakdown (prefix/opcode/displacement/immediate sizes,
// as in NaCl's decoder tables).
#ifndef ENGARDE_X86_INSN_H_
#define ENGARDE_X86_INSN_H_

#include <cstdint>
#include <string>

namespace engarde::x86 {

// Register numbers follow hardware encoding: RAX=0 ... RDI=7, R8=8 ... R15=15.
enum Reg : uint8_t {
  kRax = 0,
  kRcx = 1,
  kRdx = 2,
  kRbx = 3,
  kRsp = 4,
  kRbp = 5,
  kRsi = 6,
  kRdi = 7,
  kR8 = 8,
  kR9 = 9,
  kR10 = 10,
  kR11 = 11,
  kR12 = 12,
  kR13 = 13,
  kR14 = 14,
  kR15 = 15,
};

const char* RegName(uint8_t reg, uint8_t size);

// Condition codes as encoded in the opcode low nibble of Jcc/SETcc/CMOVcc.
enum Cond : uint8_t {
  kCondO = 0x0,
  kCondNo = 0x1,
  kCondB = 0x2,
  kCondAe = 0x3,
  kCondE = 0x4,   // equal / zero
  kCondNe = 0x5,  // not equal / not zero
  kCondBe = 0x6,
  kCondA = 0x7,
  kCondS = 0x8,
  kCondNs = 0x9,
  kCondP = 0xa,
  kCondNp = 0xb,
  kCondL = 0xc,
  kCondGe = 0xd,
  kCondLe = 0xe,
  kCondG = 0xf,
};

enum class Mnemonic : uint8_t {
  kUnknown = 0,
  // Data movement.
  kMov,
  kLea,
  kMovzx,
  kMovsx,
  kMovsxd,
  kPush,
  kPop,
  kXchg,
  // ALU.
  kAdd,
  kOr,
  kAdc,
  kSbb,
  kAnd,
  kSub,
  kXor,
  kCmp,
  kTest,
  kInc,
  kDec,
  kNeg,
  kNot,
  kMul,
  kImul,
  kDiv,
  kIdiv,
  kShl,
  kShr,
  kSar,
  kRol,
  kRor,
  kBswap,
  kCmov,
  kSetcc,
  kCdqe,  // cbw/cwde/cdqe family
  kCqo,   // cwd/cdq/cqo family
  // Control flow.
  kCall,          // direct, rel32
  kCallIndirect,  // FF /2
  kJmp,           // direct, rel8/rel32
  kJmpIndirect,   // FF /4
  kJcc,
  kRet,
  kLeave,
  // No-ops and system.
  kNop,  // 0x90 and the 0F 1F multi-byte family
  kEndbr64,
  kInt3,
  kInt,
  kSyscall,
  kHlt,
  kCpuid,
  kRdtsc,
  kUd2,
};

const char* MnemonicName(Mnemonic m);

// Segment override actually relevant to enclave code: FS (0x64 prefix) hosts
// the stack-protector canary at %fs:0x28. GS tracked for completeness.
enum class Segment : uint8_t { kNone = 0, kFs, kGs };

enum class OperandKind : uint8_t { kNone = 0, kReg, kImm, kMem, kRipRel };

struct MemRef {
  int8_t base = -1;   // register number or -1 (absolute / RIP-relative)
  int8_t index = -1;  // register number or -1
  uint8_t scale = 1;  // 1, 2, 4 or 8
  int32_t disp = 0;
  Segment segment = Segment::kNone;

  bool HasBase(uint8_t reg) const { return base == static_cast<int8_t>(reg); }
  bool IsAbsolute() const { return base == -1 && index == -1; }
};

struct Operand {
  OperandKind kind = OperandKind::kNone;
  uint8_t reg = 0;    // for kReg
  int64_t imm = 0;    // for kImm
  MemRef mem;         // for kMem; for kRipRel `mem.disp` is the displacement

  bool IsReg(uint8_t r) const {
    return kind == OperandKind::kReg && reg == r;
  }
  bool IsMemWithBase(uint8_t base_reg) const {
    return kind == OperandKind::kMem && mem.HasBase(base_reg);
  }
  bool IsSegMem(Segment seg) const {
    return kind == OperandKind::kMem && mem.segment == seg;
  }
};

struct Insn {
  uint64_t addr = 0;   // virtual address of the first byte
  uint8_t length = 0;  // total encoded length in bytes

  Mnemonic mnemonic = Mnemonic::kUnknown;
  uint8_t cond = 0;      // condition code for kJcc / kSetcc / kCmov
  uint8_t op_size = 4;   // operand size in bytes: 1, 2, 4 or 8

  Operand dst;
  Operand src;

  // For direct control transfers: displacement relative to the next
  // instruction. Target = addr + length + rel.
  int64_t rel = 0;

  // Byte-structure metadata, mirroring what NaCl's disassembler reports
  // ("number of prefix bytes, number of opcode bytes and number of
  // displacement bytes" — paper Section 4).
  uint8_t prefix_len = 0;  // legacy prefixes + REX
  uint8_t opcode_len = 0;
  uint8_t modrm_len = 0;   // 0 or 1
  uint8_t sib_len = 0;     // 0 or 1
  uint8_t disp_len = 0;
  uint8_t imm_len = 0;
  uint8_t rex = 0;         // raw REX byte, 0 if absent

  bool IsDirectBranch() const {
    return mnemonic == Mnemonic::kCall || mnemonic == Mnemonic::kJmp ||
           mnemonic == Mnemonic::kJcc;
  }
  bool IsIndirectBranch() const {
    return mnemonic == Mnemonic::kCallIndirect ||
           mnemonic == Mnemonic::kJmpIndirect;
  }
  // Instructions after which execution does not fall through.
  bool EndsBasicBlock() const {
    return mnemonic == Mnemonic::kJmp || mnemonic == Mnemonic::kJmpIndirect ||
           mnemonic == Mnemonic::kRet || mnemonic == Mnemonic::kHlt ||
           mnemonic == Mnemonic::kUd2;
  }
  uint64_t BranchTarget() const {
    return addr + length + static_cast<uint64_t>(rel);
  }
  uint64_t NextAddr() const { return addr + length; }

  // Render as AT&T-flavoured text (for diagnostics and tests).
  std::string ToString() const;
};

}  // namespace engarde::x86

#endif  // ENGARDE_X86_INSN_H_
