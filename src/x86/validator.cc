#include "x86/validator.h"

#include <atomic>
#include <sstream>
#include <vector>

#include "common/thread_pool.h"
#include "x86/encoder.h"  // kBundleSize

namespace engarde::x86 {
namespace {

std::string AddrString(uint64_t addr) {
  std::ostringstream os;
  os << "0x" << std::hex << addr;
  return os.str();
}

// Index of the first instruction for which `pred` holds, or npos. Sharded
// over `pool` when profitable; the per-shard scan stops at its own first
// hit, and the lowest index across shards wins — the serial answer.
template <typename Pred>
size_t FirstViolation(const InsnBuffer& insns, common::ThreadPool* pool,
                      const Pred& pred) {
  constexpr size_t kGrain = 4096;
  if (pool == nullptr || pool->thread_count() <= 1 ||
      insns.size() < 2 * kGrain) {
    for (size_t i = 0; i < insns.size(); ++i) {
      if (pred(insns[i])) return i;
    }
    return InsnBuffer::npos;
  }
  std::atomic<size_t> first{InsnBuffer::npos};
  pool->ParallelFor(0, insns.size(), kGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (!pred(insns[i])) continue;
      size_t cur = first.load(std::memory_order_relaxed);
      while (i < cur && !first.compare_exchange_weak(
                            cur, i, std::memory_order_relaxed)) {
      }
      break;
    }
  });
  return first.load(std::memory_order_relaxed);
}

}  // namespace

Status ValidateNaClConstraints(const InsnBuffer& insns,
                               const ValidationInput& input,
                               common::ThreadPool* pool) {
  // Rule 1: no instruction overlaps a 32-byte bundle boundary.
  {
    const size_t bad = FirstViolation(insns, pool, [](const Insn& insn) {
      return insn.addr % kBundleSize + insn.length > kBundleSize;
    });
    if (bad != InsnBuffer::npos) {
      return PolicyViolationError("instruction at " +
                                  AddrString(insns[bad].addr) +
                                  " overlaps a 32-byte bundle boundary");
    }
  }

  // Rule 2: every direct control transfer targets a valid instruction start.
  {
    const size_t bad =
        FirstViolation(insns, pool, [&](const Insn& insn) {
          if (!insn.IsDirectBranch()) return false;
          const uint64_t target = insn.BranchTarget();
          return target < input.text_start || target >= input.text_end ||
                 insns.IndexOfAddr(target) == InsnBuffer::npos;
        });
    if (bad != InsnBuffer::npos) {
      const Insn& insn = insns[bad];
      const uint64_t target = insn.BranchTarget();
      if (target < input.text_start || target >= input.text_end) {
        return PolicyViolationError("control transfer at " +
                                    AddrString(insn.addr) + " targets " +
                                    AddrString(target) + " outside text");
      }
      return PolicyViolationError(
          "control transfer at " + AddrString(insn.addr) + " targets " +
          AddrString(target) + ", which is not an instruction start");
    }
  }

  // Rule 3: all instructions reachable from the roots.
  if (insns.empty()) return Status::Ok();

  std::vector<uint8_t> reached(insns.size(), 0);
  std::vector<size_t> worklist;
  for (const uint64_t root : input.roots) {
    const size_t idx = insns.IndexOfAddr(root);
    if (idx == InsnBuffer::npos) {
      return PolicyViolationError("reachability root " + AddrString(root) +
                                  " is not an instruction start");
    }
    if (!reached[idx]) {
      reached[idx] = 1;
      worklist.push_back(idx);
    }
  }

  while (!worklist.empty()) {
    const size_t idx = worklist.back();
    worklist.pop_back();
    const Insn& insn = insns[idx];

    auto visit = [&](size_t next) {
      if (next < insns.size() && !reached[next]) {
        reached[next] = 1;
        worklist.push_back(next);
      }
    };

    if (insn.IsDirectBranch()) {
      const size_t target = insns.IndexOfAddr(insn.BranchTarget());
      if (target != InsnBuffer::npos) visit(target);
    }
    // Fall-through edge (calls return; conditional branches may not be taken).
    if (!insn.EndsBasicBlock() && idx + 1 < insns.size()) visit(idx + 1);
  }

  for (size_t i = 0; i < insns.size(); ++i) {
    if (reached[i]) continue;
    // Alignment padding (NOPs, and INT3 as used by some linkers) between
    // functions is never executed and is exempt, as in NaCl.
    if (insns[i].mnemonic == Mnemonic::kNop ||
        insns[i].mnemonic == Mnemonic::kInt3) {
      continue;
    }
    return PolicyViolationError("instruction at " + AddrString(insns[i].addr) +
                                " is unreachable from the start addresses");
  }
  return Status::Ok();
}

}  // namespace engarde::x86
