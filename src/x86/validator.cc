#include "x86/validator.h"

#include <sstream>
#include <vector>

#include "x86/encoder.h"  // kBundleSize

namespace engarde::x86 {
namespace {

std::string AddrString(uint64_t addr) {
  std::ostringstream os;
  os << "0x" << std::hex << addr;
  return os.str();
}

}  // namespace

Status ValidateNaClConstraints(const InsnBuffer& insns,
                               const ValidationInput& input) {
  // Rule 1: no instruction overlaps a 32-byte bundle boundary.
  for (const Insn& insn : insns) {
    const uint64_t in_bundle = insn.addr % kBundleSize;
    if (in_bundle + insn.length > kBundleSize) {
      return PolicyViolationError("instruction at " + AddrString(insn.addr) +
                                  " overlaps a 32-byte bundle boundary");
    }
  }

  // Rule 2: every direct control transfer targets a valid instruction start.
  for (const Insn& insn : insns) {
    if (!insn.IsDirectBranch()) continue;
    const uint64_t target = insn.BranchTarget();
    if (target < input.text_start || target >= input.text_end) {
      return PolicyViolationError("control transfer at " +
                                  AddrString(insn.addr) + " targets " +
                                  AddrString(target) + " outside text");
    }
    if (insns.IndexOfAddr(target) == InsnBuffer::npos) {
      return PolicyViolationError(
          "control transfer at " + AddrString(insn.addr) + " targets " +
          AddrString(target) + ", which is not an instruction start");
    }
  }

  // Rule 3: all instructions reachable from the roots.
  if (insns.empty()) return Status::Ok();

  std::vector<uint8_t> reached(insns.size(), 0);
  std::vector<size_t> worklist;
  for (const uint64_t root : input.roots) {
    const size_t idx = insns.IndexOfAddr(root);
    if (idx == InsnBuffer::npos) {
      return PolicyViolationError("reachability root " + AddrString(root) +
                                  " is not an instruction start");
    }
    if (!reached[idx]) {
      reached[idx] = 1;
      worklist.push_back(idx);
    }
  }

  while (!worklist.empty()) {
    const size_t idx = worklist.back();
    worklist.pop_back();
    const Insn& insn = insns[idx];

    auto visit = [&](size_t next) {
      if (next < insns.size() && !reached[next]) {
        reached[next] = 1;
        worklist.push_back(next);
      }
    };

    if (insn.IsDirectBranch()) {
      const size_t target = insns.IndexOfAddr(insn.BranchTarget());
      if (target != InsnBuffer::npos) visit(target);
    }
    // Fall-through edge (calls return; conditional branches may not be taken).
    if (!insn.EndsBasicBlock() && idx + 1 < insns.size()) visit(idx + 1);
  }

  for (size_t i = 0; i < insns.size(); ++i) {
    if (reached[i]) continue;
    // Alignment padding (NOPs, and INT3 as used by some linkers) between
    // functions is never executed and is exempt, as in NaCl.
    if (insns[i].mnemonic == Mnemonic::kNop ||
        insns[i].mnemonic == Mnemonic::kInt3) {
      continue;
    }
    return PolicyViolationError("instruction at " + AddrString(insns[i].addr) +
                                " is unreachable from the start addresses");
  }
  return Status::Ok();
}

}  // namespace engarde::x86
