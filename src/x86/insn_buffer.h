// InsnBuffer: holds every decoded instruction of the client binary.
//
// The paper (Section 4) replaces NaCl's small sliding window with "a
// dynamically allocated buffer that can hold all the instructions", and
// amortizes the cost of in-enclave malloc — each allocation exits the enclave
// through a trampoline — by "allocating a memory page at a time instead of
// just a memory region for an instruction". This class reproduces that
// design: instructions are stored in page-sized chunks, and each chunk
// allocation fires a hook through which the SGX cost model charges the
// trampoline's EEXIT/EENTER pair.
#ifndef ENGARDE_X86_INSN_BUFFER_H_
#define ENGARDE_X86_INSN_BUFFER_H_

#include <functional>
#include <memory>
#include <vector>

#include "x86/insn.h"

namespace engarde::x86 {

class InsnBuffer {
 public:
  // Fired once per page-sized chunk allocation (the malloc trampoline).
  using AllocHook = std::function<void(size_t bytes)>;

  static constexpr size_t kChunkBytes = 4096;
  static constexpr size_t kInsnsPerChunk = kChunkBytes / sizeof(Insn);

  explicit InsnBuffer(AllocHook hook = nullptr) : hook_(std::move(hook)) {}

  void Append(const Insn& insn);

  size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  size_t chunk_allocations() const noexcept { return chunks_.size(); }

  const Insn& operator[](size_t i) const {
    return chunks_[i / kInsnsPerChunk]->insns[i % kInsnsPerChunk];
  }

  // Index of the instruction starting at `addr`, or npos. Instructions are
  // appended in ascending address order (sequential disassembly), so this is
  // a binary search.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t IndexOfAddr(uint64_t addr) const;

  // Minimal forward iterator so range-for and <algorithm> work.
  class const_iterator {
   public:
    using value_type = Insn;
    using reference = const Insn&;
    using difference_type = std::ptrdiff_t;

    const_iterator(const InsnBuffer* buf, size_t i) : buf_(buf), i_(i) {}
    reference operator*() const { return (*buf_)[i_]; }
    const Insn* operator->() const { return &(*buf_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const InsnBuffer* buf_;
    size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

 private:
  struct Chunk {
    Insn insns[kInsnsPerChunk];
  };

  AllocHook hook_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  size_t size_ = 0;
};

}  // namespace engarde::x86

#endif  // ENGARDE_X86_INSN_BUFFER_H_
