#include "x86/decoder.h"

#include <algorithm>
#include <sstream>

#include "common/thread_pool.h"
#include "x86/encoder.h"  // kBundleSize

namespace engarde::x86 {
namespace {

// How the instruction's explicit operands map onto ModRM/immediate fields.
enum class Form : uint8_t {
  kNone,      // no explicit operands (ret, leave, syscall, ...)
  kRmReg,     // dst = r/m, src = reg        (e.g. 0x89 mov r/m,r)
  kRegRm,     // dst = reg, src = r/m        (e.g. 0x8B mov r,r/m)
  kRmImm,     // dst = r/m, src = imm        (e.g. 0x81 grp1)
  kRmOnly,    // dst = r/m                   (unary group ops, setcc)
  kRmSrc,     // src = r/m                   (push r/m, call/jmp r/m)
  kRegOpImm,  // dst = reg from opcode, src = imm (0xB8+r)
  kRegOp,     // reg encoded in low opcode bits  (push/pop/xchg/bswap)
  kAccImm,    // dst = rAX, src = imm        (0x05 add eax,imm ...)
  kRel,       // direct branch
};

struct Decoded {
  Mnemonic mnemonic = Mnemonic::kUnknown;
  Form form = Form::kNone;
  bool has_modrm = false;
  uint8_t imm_bytes = 0;   // fixed immediate size (0/1/2/4/8)
  bool imm_by_opsize = false;  // imm is 2 bytes for 16-bit ops, else 4
  uint8_t rel_bytes = 0;   // 1 or 4 for direct branches
  bool byte_op = false;    // 8-bit operand size
  bool default64 = false;  // push/pop/branches default to 64-bit
  uint8_t cond = 0;
};

Mnemonic Grp1Mnemonic(uint8_t reg_field) {
  static constexpr Mnemonic kMap[8] = {
      Mnemonic::kAdd, Mnemonic::kOr,  Mnemonic::kAdc, Mnemonic::kSbb,
      Mnemonic::kAnd, Mnemonic::kSub, Mnemonic::kXor, Mnemonic::kCmp};
  return kMap[reg_field & 7];
}

Mnemonic AluMnemonicFromOpcode(uint8_t opcode) {
  return Grp1Mnemonic(static_cast<uint8_t>(opcode >> 3));
}

// Reader over the instruction bytes with the 15-byte architectural cap.
class InsnCursor {
 public:
  InsnCursor(ByteView code, size_t offset)
      : code_(code), start_(offset), pos_(offset) {}

  bool Next(uint8_t& out) {
    if (pos_ >= code_.size() || pos_ - start_ >= kMaxInsnLength) return false;
    out = code_[pos_++];
    return true;
  }
  bool Peek(uint8_t& out) const {
    if (pos_ >= code_.size() || pos_ - start_ >= kMaxInsnLength) return false;
    out = code_[pos_];
    return true;
  }
  bool Take(size_t n, ByteView& out) {
    if (pos_ + n > code_.size() || pos_ + n - start_ > kMaxInsnLength) {
      return false;
    }
    out = code_.subspan(pos_, n);
    pos_ += n;
    return true;
  }
  size_t consumed() const { return pos_ - start_; }

 private:
  ByteView code_;
  size_t start_;
  size_t pos_;
};

Status TruncatedError(uint64_t addr) {
  std::ostringstream os;
  os << "truncated or overlong instruction at 0x" << std::hex << addr;
  return InvalidArgumentError(os.str());
}

Status UnsupportedOpcode(uint64_t addr, const char* map, unsigned opcode) {
  std::ostringstream os;
  os << "unsupported " << map << " opcode 0x" << std::hex << opcode
     << " at 0x" << addr;
  return UnimplementedError(os.str());
}

int64_t SignExtend(uint64_t value, uint8_t bytes) {
  switch (bytes) {
    case 1: return static_cast<int8_t>(value);
    case 2: return static_cast<int16_t>(value);
    case 4: return static_cast<int32_t>(value);
    default: return static_cast<int64_t>(value);
  }
}

}  // namespace

Result<Insn> DecodeOne(ByteView code, size_t offset, uint64_t vaddr) {
  const uint64_t addr = vaddr + offset;
  InsnCursor cur(code, offset);

  Insn insn;
  insn.addr = addr;

  // ---- Prefixes -----------------------------------------------------------
  bool opsize16 = false;
  bool rep_f3 = false;
  Segment segment = Segment::kNone;
  uint8_t legacy_prefixes = 0;
  uint8_t b = 0;

  for (;;) {
    if (!cur.Peek(b)) return TruncatedError(addr);
    bool is_prefix = true;
    switch (b) {
      case 0x66: opsize16 = true; break;
      case 0x67: break;                       // address-size (tracked only)
      case 0xf0: break;                       // lock
      case 0xf2: break;                       // repne
      case 0xf3: rep_f3 = true; break;        // rep / instruction modifier
      case 0x2e: case 0x36: case 0x3e: case 0x26: break;  // null segments
      case 0x64: segment = Segment::kFs; break;
      case 0x65: segment = Segment::kGs; break;
      default: is_prefix = false; break;
    }
    if (!is_prefix) break;
    (void)cur.Next(b);
    if (++legacy_prefixes > 4) {
      return InvalidArgumentError("too many legacy prefixes");
    }
  }

  uint8_t rex = 0;
  if (b >= 0x40 && b <= 0x4f) {
    rex = b;
    (void)cur.Next(b);
    if (!cur.Peek(b)) return TruncatedError(addr);
  }
  insn.rex = rex;
  const bool rex_w = (rex & 0x08) != 0;
  const uint8_t rex_r = (rex & 0x04) ? 8 : 0;
  const uint8_t rex_x = (rex & 0x02) ? 8 : 0;
  const uint8_t rex_b = (rex & 0x01) ? 8 : 0;

  insn.prefix_len = static_cast<uint8_t>(cur.consumed());

  // ---- Opcode -------------------------------------------------------------
  uint8_t op = 0;
  if (!cur.Next(op)) return TruncatedError(addr);
  bool two_byte = false;
  uint8_t op2 = 0;
  if (op == 0x0f) {
    two_byte = true;
    if (!cur.Next(op2)) return TruncatedError(addr);
    if (op2 == 0x38 || op2 == 0x3a) {
      return UnsupportedOpcode(addr, "three-byte-map", op2);
    }
  }
  insn.opcode_len = two_byte ? 2 : 1;

  Decoded d;

  if (!two_byte) {
    switch (op) {
      // ALU families: 8 groups of 6 encodings each.
      case 0x00: case 0x01: case 0x08: case 0x09: case 0x10: case 0x11:
      case 0x18: case 0x19: case 0x20: case 0x21: case 0x28: case 0x29:
      case 0x30: case 0x31: case 0x38: case 0x39:
        d.mnemonic = AluMnemonicFromOpcode(op);
        d.form = Form::kRmReg;
        d.has_modrm = true;
        d.byte_op = (op & 1) == 0;
        break;
      case 0x02: case 0x03: case 0x0a: case 0x0b: case 0x12: case 0x13:
      case 0x1a: case 0x1b: case 0x22: case 0x23: case 0x2a: case 0x2b:
      case 0x32: case 0x33: case 0x3a: case 0x3b:
        d.mnemonic = AluMnemonicFromOpcode(op);
        d.form = Form::kRegRm;
        d.has_modrm = true;
        d.byte_op = (op & 1) == 0;
        break;
      case 0x04: case 0x05: case 0x0c: case 0x0d: case 0x14: case 0x15:
      case 0x1c: case 0x1d: case 0x24: case 0x25: case 0x2c: case 0x2d:
      case 0x34: case 0x35: case 0x3c: case 0x3d:
        d.mnemonic = AluMnemonicFromOpcode(op);
        d.form = Form::kAccImm;
        d.byte_op = (op & 1) == 0;
        if (d.byte_op) {
          d.imm_bytes = 1;
        } else {
          d.imm_by_opsize = true;
        }
        break;

      case 0x50: case 0x51: case 0x52: case 0x53:
      case 0x54: case 0x55: case 0x56: case 0x57:
        d.mnemonic = Mnemonic::kPush;
        d.form = Form::kRegOp;
        d.default64 = true;
        break;
      case 0x58: case 0x59: case 0x5a: case 0x5b:
      case 0x5c: case 0x5d: case 0x5e: case 0x5f:
        d.mnemonic = Mnemonic::kPop;
        d.form = Form::kRegOp;
        d.default64 = true;
        break;

      case 0x63:
        d.mnemonic = Mnemonic::kMovsxd;
        d.form = Form::kRegRm;
        d.has_modrm = true;
        break;
      case 0x68:
        d.mnemonic = Mnemonic::kPush;
        d.form = Form::kAccImm;  // src = imm, no dst register
        d.imm_by_opsize = true;
        d.default64 = true;
        break;
      case 0x69:
        d.mnemonic = Mnemonic::kImul;
        d.form = Form::kRegRm;
        d.has_modrm = true;
        d.imm_by_opsize = true;
        break;
      case 0x6a:
        d.mnemonic = Mnemonic::kPush;
        d.form = Form::kAccImm;
        d.imm_bytes = 1;
        d.default64 = true;
        break;
      case 0x6b:
        d.mnemonic = Mnemonic::kImul;
        d.form = Form::kRegRm;
        d.has_modrm = true;
        d.imm_bytes = 1;
        break;

      case 0x70: case 0x71: case 0x72: case 0x73: case 0x74: case 0x75:
      case 0x76: case 0x77: case 0x78: case 0x79: case 0x7a: case 0x7b:
      case 0x7c: case 0x7d: case 0x7e: case 0x7f:
        d.mnemonic = Mnemonic::kJcc;
        d.form = Form::kRel;
        d.rel_bytes = 1;
        d.cond = op & 0xf;
        break;

      case 0x80:
        d.form = Form::kRmImm;
        d.has_modrm = true;
        d.byte_op = true;
        d.imm_bytes = 1;
        break;  // mnemonic from reg field below
      case 0x81:
        d.form = Form::kRmImm;
        d.has_modrm = true;
        d.imm_by_opsize = true;
        break;
      case 0x83:
        d.form = Form::kRmImm;
        d.has_modrm = true;
        d.imm_bytes = 1;
        break;

      case 0x84: case 0x85:
        d.mnemonic = Mnemonic::kTest;
        d.form = Form::kRmReg;
        d.has_modrm = true;
        d.byte_op = op == 0x84;
        break;
      case 0x86: case 0x87:
        d.mnemonic = Mnemonic::kXchg;
        d.form = Form::kRmReg;
        d.has_modrm = true;
        d.byte_op = op == 0x86;
        break;
      case 0x88: case 0x89:
        d.mnemonic = Mnemonic::kMov;
        d.form = Form::kRmReg;
        d.has_modrm = true;
        d.byte_op = op == 0x88;
        break;
      case 0x8a: case 0x8b:
        d.mnemonic = Mnemonic::kMov;
        d.form = Form::kRegRm;
        d.has_modrm = true;
        d.byte_op = op == 0x8a;
        break;
      case 0x8d:
        d.mnemonic = Mnemonic::kLea;
        d.form = Form::kRegRm;
        d.has_modrm = true;
        break;
      case 0x8f:
        d.mnemonic = Mnemonic::kPop;
        d.form = Form::kRmOnly;
        d.has_modrm = true;
        d.default64 = true;
        break;

      case 0x90:
        d.mnemonic = Mnemonic::kNop;  // 0x90, and F3 90 (pause)
        break;
      case 0x91: case 0x92: case 0x93: case 0x94: case 0x95: case 0x96:
      case 0x97:
        d.mnemonic = Mnemonic::kXchg;
        d.form = Form::kRegOp;
        break;
      case 0x98:
        d.mnemonic = Mnemonic::kCdqe;
        break;
      case 0x99:
        d.mnemonic = Mnemonic::kCqo;
        break;

      case 0xa8:
        d.mnemonic = Mnemonic::kTest;
        d.form = Form::kAccImm;
        d.byte_op = true;
        d.imm_bytes = 1;
        break;
      case 0xa9:
        d.mnemonic = Mnemonic::kTest;
        d.form = Form::kAccImm;
        d.imm_by_opsize = true;
        break;

      case 0xb0: case 0xb1: case 0xb2: case 0xb3:
      case 0xb4: case 0xb5: case 0xb6: case 0xb7:
        d.mnemonic = Mnemonic::kMov;
        d.form = Form::kRegOpImm;
        d.byte_op = true;
        d.imm_bytes = 1;
        break;
      case 0xb8: case 0xb9: case 0xba: case 0xbb:
      case 0xbc: case 0xbd: case 0xbe: case 0xbf:
        d.mnemonic = Mnemonic::kMov;
        d.form = Form::kRegOpImm;
        d.imm_bytes = rex_w ? 8 : 0;
        if (!rex_w) d.imm_by_opsize = true;
        break;

      case 0xc0: case 0xc1:
        d.form = Form::kRmImm;  // grp2, mnemonic from reg field
        d.has_modrm = true;
        d.byte_op = op == 0xc0;
        d.imm_bytes = 1;
        break;
      case 0xc2:
        d.mnemonic = Mnemonic::kRet;
        d.imm_bytes = 2;
        d.default64 = true;
        break;
      case 0xc3:
        d.mnemonic = Mnemonic::kRet;
        d.default64 = true;
        break;
      case 0xc6:
        d.mnemonic = Mnemonic::kMov;
        d.form = Form::kRmImm;
        d.has_modrm = true;
        d.byte_op = true;
        d.imm_bytes = 1;
        break;
      case 0xc7:
        d.mnemonic = Mnemonic::kMov;
        d.form = Form::kRmImm;
        d.has_modrm = true;
        d.imm_by_opsize = true;
        break;
      case 0xc9:
        d.mnemonic = Mnemonic::kLeave;
        d.default64 = true;
        break;
      case 0xcc:
        d.mnemonic = Mnemonic::kInt3;
        break;
      case 0xcd:
        d.mnemonic = Mnemonic::kInt;
        d.imm_bytes = 1;
        break;

      case 0xd0: case 0xd1: case 0xd2: case 0xd3:
        d.form = Form::kRmOnly;  // grp2 by 1 / by CL
        d.has_modrm = true;
        d.byte_op = (op & 1) == 0;
        break;

      case 0xe8:
        d.mnemonic = Mnemonic::kCall;
        d.form = Form::kRel;
        d.rel_bytes = 4;
        d.default64 = true;
        break;
      case 0xe9:
        d.mnemonic = Mnemonic::kJmp;
        d.form = Form::kRel;
        d.rel_bytes = 4;
        d.default64 = true;
        break;
      case 0xeb:
        d.mnemonic = Mnemonic::kJmp;
        d.form = Form::kRel;
        d.rel_bytes = 1;
        d.default64 = true;
        break;

      case 0xf4:
        d.mnemonic = Mnemonic::kHlt;
        break;
      case 0xf6: case 0xf7:
        d.form = Form::kRmOnly;  // grp3, mnemonic + imm from reg field
        d.has_modrm = true;
        d.byte_op = op == 0xf6;
        break;
      case 0xfe:
        d.form = Form::kRmOnly;  // grp4
        d.has_modrm = true;
        d.byte_op = true;
        break;
      case 0xff:
        d.form = Form::kRmOnly;  // grp5
        d.has_modrm = true;
        break;

      default:
        return UnsupportedOpcode(addr, "one-byte", op);
    }
  } else {
    switch (op2) {
      case 0x05:
        d.mnemonic = Mnemonic::kSyscall;
        break;
      case 0x0b:
        d.mnemonic = Mnemonic::kUd2;
        break;
      case 0x1e:
        // F3 0F 1E FA = endbr64; other forms are reserved-NOP with ModRM.
        d.mnemonic = Mnemonic::kNop;
        d.has_modrm = true;
        d.form = Form::kNone;
        break;
      case 0x1f:
        d.mnemonic = Mnemonic::kNop;  // multi-byte NOP, e.g. nopl (%rax)
        d.has_modrm = true;
        d.form = Form::kRmOnly;
        break;
      case 0x31:
        d.mnemonic = Mnemonic::kRdtsc;
        break;
      case 0xa2:
        d.mnemonic = Mnemonic::kCpuid;
        break;
      case 0xaf:
        d.mnemonic = Mnemonic::kImul;
        d.form = Form::kRegRm;
        d.has_modrm = true;
        break;
      case 0xb6: case 0xb7:
        d.mnemonic = Mnemonic::kMovzx;
        d.form = Form::kRegRm;
        d.has_modrm = true;
        break;
      case 0xbe: case 0xbf:
        d.mnemonic = Mnemonic::kMovsx;
        d.form = Form::kRegRm;
        d.has_modrm = true;
        break;
      case 0xc8: case 0xc9: case 0xca: case 0xcb:
      case 0xcc: case 0xcd: case 0xce: case 0xcf:
        d.mnemonic = Mnemonic::kBswap;
        d.form = Form::kRegOp;
        break;
      default:
        if (op2 >= 0x40 && op2 <= 0x4f) {
          d.mnemonic = Mnemonic::kCmov;
          d.form = Form::kRegRm;
          d.has_modrm = true;
          d.cond = op2 & 0xf;
        } else if (op2 >= 0x80 && op2 <= 0x8f) {
          d.mnemonic = Mnemonic::kJcc;
          d.form = Form::kRel;
          d.rel_bytes = 4;
          d.cond = op2 & 0xf;
        } else if (op2 >= 0x90 && op2 <= 0x9f) {
          d.mnemonic = Mnemonic::kSetcc;
          d.form = Form::kRmOnly;
          d.has_modrm = true;
          d.byte_op = true;
          d.cond = op2 & 0xf;
        } else {
          return UnsupportedOpcode(addr, "two-byte", op2);
        }
        break;
    }
  }

  // ---- Operand size -------------------------------------------------------
  if (d.byte_op) {
    insn.op_size = 1;
  } else if (rex_w || d.default64) {
    insn.op_size = 8;
  } else if (opsize16) {
    insn.op_size = 2;
  } else {
    insn.op_size = 4;
  }

  // ---- ModRM / SIB / displacement -----------------------------------------
  Operand rm_operand;
  uint8_t reg_field = 0;
  if (d.has_modrm) {
    uint8_t modrm = 0;
    if (!cur.Next(modrm)) return TruncatedError(addr);
    insn.modrm_len = 1;
    const uint8_t mod = modrm >> 6;
    reg_field = static_cast<uint8_t>(((modrm >> 3) & 7) | rex_r);
    const uint8_t rm = modrm & 7;

    if (mod == 3) {
      rm_operand.kind = OperandKind::kReg;
      rm_operand.reg = static_cast<uint8_t>(rm | rex_b);
    } else {
      rm_operand.kind = OperandKind::kMem;
      rm_operand.mem.segment = segment;
      uint8_t disp_bytes = (mod == 1) ? 1 : (mod == 2) ? 4 : 0;

      if (rm == 4) {
        uint8_t sib = 0;
        if (!cur.Next(sib)) return TruncatedError(addr);
        insn.sib_len = 1;
        const uint8_t scale_bits = sib >> 6;
        const uint8_t index = static_cast<uint8_t>(((sib >> 3) & 7) | rex_x);
        const uint8_t base = static_cast<uint8_t>((sib & 7) | rex_b);
        if (index != 4) {  // index=100b (without REX.X) means "no index"
          rm_operand.mem.index = static_cast<int8_t>(index);
          rm_operand.mem.scale = static_cast<uint8_t>(1 << scale_bits);
        }
        if ((sib & 7) == 5 && mod == 0) {
          rm_operand.mem.base = -1;  // absolute disp32
          disp_bytes = 4;
        } else {
          rm_operand.mem.base = static_cast<int8_t>(base);
        }
      } else if (rm == 5 && mod == 0) {
        rm_operand.kind = OperandKind::kRipRel;
        rm_operand.mem.segment = segment;
        disp_bytes = 4;
      } else {
        rm_operand.mem.base = static_cast<int8_t>(rm | rex_b);
      }

      if (disp_bytes > 0) {
        ByteView disp_raw;
        if (!cur.Take(disp_bytes, disp_raw)) return TruncatedError(addr);
        insn.disp_len = disp_bytes;
        const uint64_t raw = disp_bytes == 1
                                 ? disp_raw[0]
                                 : static_cast<uint64_t>(LoadLe32(disp_raw.data()));
        rm_operand.mem.disp =
            static_cast<int32_t>(SignExtend(raw, disp_bytes));
      }
    }
  }

  // ---- Group mnemonic resolution ------------------------------------------
  if (!two_byte) {
    switch (op) {
      case 0x80: case 0x81: case 0x83:
        d.mnemonic = Grp1Mnemonic(reg_field & 7);
        break;
      case 0xc0: case 0xc1: case 0xd0: case 0xd1: case 0xd2: case 0xd3: {
        static constexpr Mnemonic kGrp2[8] = {
            Mnemonic::kRol, Mnemonic::kRor, Mnemonic::kUnknown,
            Mnemonic::kUnknown, Mnemonic::kShl, Mnemonic::kShr,
            Mnemonic::kShl, Mnemonic::kSar};
        d.mnemonic = kGrp2[reg_field & 7];
        if (d.mnemonic == Mnemonic::kUnknown) {
          return UnsupportedOpcode(addr, "grp2-rcl-rcr", op);
        }
        break;
      }
      case 0xf6: case 0xf7: {
        static constexpr Mnemonic kGrp3[8] = {
            Mnemonic::kTest, Mnemonic::kTest, Mnemonic::kNot, Mnemonic::kNeg,
            Mnemonic::kMul, Mnemonic::kImul, Mnemonic::kDiv, Mnemonic::kIdiv};
        d.mnemonic = kGrp3[reg_field & 7];
        if ((reg_field & 7) <= 1) {  // TEST r/m, imm
          if (op == 0xf6) {
            d.imm_bytes = 1;
          } else {
            d.imm_by_opsize = true;
          }
          d.form = Form::kRmImm;
        }
        break;
      }
      case 0xfe: {
        const uint8_t sel = reg_field & 7;
        if (sel == 0) {
          d.mnemonic = Mnemonic::kInc;
        } else if (sel == 1) {
          d.mnemonic = Mnemonic::kDec;
        } else {
          return UnsupportedOpcode(addr, "grp4", op);
        }
        break;
      }
      case 0xff: {
        switch (reg_field & 7) {
          case 0: d.mnemonic = Mnemonic::kInc; break;
          case 1: d.mnemonic = Mnemonic::kDec; break;
          case 2:
            d.mnemonic = Mnemonic::kCallIndirect;
            d.form = Form::kRmSrc;
            insn.op_size = 8;
            break;
          case 4:
            d.mnemonic = Mnemonic::kJmpIndirect;
            d.form = Form::kRmSrc;
            insn.op_size = 8;
            break;
          case 6:
            d.mnemonic = Mnemonic::kPush;
            d.form = Form::kRmSrc;
            insn.op_size = 8;
            break;
          default:
            return UnsupportedOpcode(addr, "grp5", op);
        }
        break;
      }
      default:
        break;
    }
  }

  // ---- Immediate / branch displacement ------------------------------------
  uint8_t imm_bytes = d.imm_bytes;
  if (d.imm_by_opsize) imm_bytes = (insn.op_size == 2) ? 2 : 4;

  int64_t imm_value = 0;
  if (imm_bytes > 0) {
    ByteView raw;
    if (!cur.Take(imm_bytes, raw)) return TruncatedError(addr);
    insn.imm_len = imm_bytes;
    uint64_t v = 0;
    for (size_t i = 0; i < imm_bytes; ++i) {
      v |= static_cast<uint64_t>(raw[i]) << (8 * i);
    }
    imm_value = SignExtend(v, imm_bytes);
  }

  if (d.rel_bytes > 0) {
    ByteView raw;
    if (!cur.Take(d.rel_bytes, raw)) return TruncatedError(addr);
    insn.imm_len = d.rel_bytes;
    uint64_t v = 0;
    for (size_t i = 0; i < d.rel_bytes; ++i) {
      v |= static_cast<uint64_t>(raw[i]) << (8 * i);
    }
    insn.rel = SignExtend(v, d.rel_bytes);
  }

  // ---- Operand assembly -----------------------------------------------------
  insn.mnemonic = d.mnemonic;
  insn.cond = d.cond;
  switch (d.form) {
    case Form::kNone:
    case Form::kRel:
      break;
    case Form::kRmReg:
      insn.dst = rm_operand;
      insn.src.kind = OperandKind::kReg;
      insn.src.reg = reg_field;
      break;
    case Form::kRegRm:
      insn.dst.kind = OperandKind::kReg;
      insn.dst.reg = reg_field;
      insn.src = rm_operand;
      // Three-operand imul (reg, r/m, imm): the immediate rides in dst.imm
      // since dst.kind is kReg and its imm field is otherwise unused.
      if (imm_bytes > 0) insn.dst.imm = imm_value;
      break;
    case Form::kRmImm:
      insn.dst = rm_operand;
      insn.src.kind = OperandKind::kImm;
      insn.src.imm = imm_value;
      break;
    case Form::kRmOnly:
      insn.dst = rm_operand;
      break;
    case Form::kRmSrc:
      insn.src = rm_operand;
      break;
    case Form::kRegOpImm:
      insn.dst.kind = OperandKind::kReg;
      insn.dst.reg = static_cast<uint8_t>((two_byte ? op2 : op) & 7) | rex_b;
      insn.src.kind = OperandKind::kImm;
      insn.src.imm = imm_value;
      break;
    case Form::kRegOp:
      insn.dst.kind = OperandKind::kReg;
      insn.dst.reg = static_cast<uint8_t>(((two_byte ? op2 : op) & 7) | rex_b);
      break;
    case Form::kAccImm:
      if (d.mnemonic != Mnemonic::kPush) {
        insn.dst.kind = OperandKind::kReg;
        insn.dst.reg = kRax;
      }
      insn.src.kind = OperandKind::kImm;
      insn.src.imm = imm_value;
      break;
  }

  // endbr64: F3 0F 1E /r where the "modrm" is the fixed byte 0xFA.
  if (two_byte && op2 == 0x1e && rep_f3) {
    insn.mnemonic = Mnemonic::kEndbr64;
    insn.dst = Operand{};
    insn.src = Operand{};
  }

  // lea must take a memory operand.
  if (insn.mnemonic == Mnemonic::kLea &&
      insn.src.kind != OperandKind::kMem &&
      insn.src.kind != OperandKind::kRipRel) {
    return InvalidArgumentError("lea with register source operand");
  }

  insn.length = static_cast<uint8_t>(cur.consumed());
  return insn;
}

Result<std::vector<Insn>> DecodeAll(ByteView code, uint64_t vaddr) {
  std::vector<Insn> out;
  size_t offset = 0;
  while (offset < code.size()) {
    ASSIGN_OR_RETURN(const Insn insn, DecodeOne(code, offset, vaddr));
    offset += insn.length;
    out.push_back(insn);
  }
  return out;
}

namespace {

Status DecodeSerialInto(ByteView content, uint64_t vaddr, InsnBuffer& out) {
  size_t offset = 0;
  while (offset < content.size()) {
    ASSIGN_OR_RETURN(const Insn insn, DecodeOne(content, offset, vaddr));
    out.Append(insn);
    offset += insn.length;
  }
  return Status::Ok();
}

}  // namespace

Status DecodeSectionInto(ByteView content, uint64_t vaddr,
                         common::ThreadPool* pool, InsnBuffer& out) {
  // Sections below a few shards' worth of bytes are not worth the fan-out.
  constexpr size_t kMinShardBytes = 4096;
  static_assert(kMinShardBytes % kBundleSize == 0);
  if (pool == nullptr || pool->thread_count() <= 1 ||
      content.size() < 2 * kMinShardBytes) {
    return DecodeSerialInto(content, vaddr, out);
  }

  // Bundle-aligned shards, one per pool thread (rounded up).
  const size_t threads = pool->thread_count();
  size_t shard_bytes = (content.size() + threads - 1) / threads;
  shard_bytes += kBundleSize - 1;
  shard_bytes -= shard_bytes % kBundleSize;
  shard_bytes = std::max(shard_bytes, kMinShardBytes);
  const size_t num_shards = (content.size() + shard_bytes - 1) / shard_bytes;

  std::vector<std::vector<Insn>> shard_insns(num_shards);
  std::vector<Status> shard_status(num_shards, Status::Ok());
  std::vector<size_t> shard_end_offset(num_shards, 0);
  pool->ParallelFor(0, num_shards, 1, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      const size_t shard_begin = s * shard_bytes;
      const size_t shard_limit =
          std::min(content.size(), shard_begin + shard_bytes);
      size_t offset = shard_begin;
      // The last instruction of a shard may legitimately extend past
      // shard_limit only if it crosses the (bundle-aligned) seam; the seam
      // check below catches that and forces the serial fallback.
      while (offset < shard_limit) {
        auto insn = DecodeOne(content, offset, vaddr);
        if (!insn.ok()) {
          shard_status[s] = insn.status();
          break;
        }
        shard_insns[s].push_back(*insn);
        offset += insn->length;
      }
      shard_end_offset[s] = offset;
    }
  });

  bool exact = true;
  for (size_t s = 0; s < num_shards && exact; ++s) {
    if (!shard_status[s].ok()) exact = false;
    const size_t shard_limit =
        std::min(content.size(), (s + 1) * shard_bytes);
    if (shard_end_offset[s] != shard_limit) exact = false;
  }
  if (!exact) {
    // Divergent decode (undecodable bytes, or an instruction across a shard
    // seam). The serial pass is canonical — rerun it so the caller sees the
    // identical instructions or the identical first error.
    return DecodeSerialInto(content, vaddr, out);
  }

  for (const std::vector<Insn>& shard : shard_insns) {
    for (const Insn& insn : shard) out.Append(insn);
  }
  return Status::Ok();
}

}  // namespace engarde::x86
