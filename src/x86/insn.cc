#include "x86/insn.h"

#include <sstream>

namespace engarde::x86 {
namespace {

const char* const kReg64[16] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                                "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                                "r12", "r13", "r14", "r15"};
const char* const kReg32[16] = {"eax",  "ecx",  "edx",  "ebx", "esp", "ebp",
                                "esi",  "edi",  "r8d",  "r9d", "r10d", "r11d",
                                "r12d", "r13d", "r14d", "r15d"};
const char* const kReg16[16] = {"ax",   "cx",   "dx",   "bx",  "sp",  "bp",
                                "si",   "di",   "r8w",  "r9w", "r10w", "r11w",
                                "r12w", "r13w", "r14w", "r15w"};
const char* const kReg8[16] = {"al",   "cl",   "dl",   "bl",  "spl", "bpl",
                               "sil",  "dil",  "r8b",  "r9b", "r10b", "r11b",
                               "r12b", "r13b", "r14b", "r15b"};

const char* const kCondName[16] = {"o", "no", "b", "ae", "e", "ne", "be", "a",
                                   "s", "ns", "p", "np", "l", "ge", "le", "g"};

void FormatOperand(std::ostream& os, const Operand& op, uint8_t op_size,
                   const Insn& insn) {
  switch (op.kind) {
    case OperandKind::kNone:
      break;
    case OperandKind::kReg:
      os << "%" << RegName(op.reg, op_size);
      break;
    case OperandKind::kImm:
      os << "$0x" << std::hex << op.imm << std::dec;
      break;
    case OperandKind::kRipRel:
      os << "0x" << std::hex << op.mem.disp << std::dec << "(%rip)";
      break;
    case OperandKind::kMem: {
      if (op.mem.segment == Segment::kFs) os << "%fs:";
      if (op.mem.segment == Segment::kGs) os << "%gs:";
      if (op.mem.disp != 0 || op.mem.IsAbsolute()) {
        os << "0x" << std::hex << op.mem.disp << std::dec;
      }
      if (!op.mem.IsAbsolute()) {
        os << "(";
        if (op.mem.base >= 0) os << "%" << RegName(static_cast<uint8_t>(op.mem.base), 8);
        if (op.mem.index >= 0) {
          os << ",%" << RegName(static_cast<uint8_t>(op.mem.index), 8) << ","
             << static_cast<int>(op.mem.scale);
        }
        os << ")";
      }
      break;
    }
  }
  (void)insn;
}

}  // namespace

const char* RegName(uint8_t reg, uint8_t size) {
  reg &= 0xf;
  switch (size) {
    case 1: return kReg8[reg];
    case 2: return kReg16[reg];
    case 4: return kReg32[reg];
    default: return kReg64[reg];
  }
}

const char* MnemonicName(Mnemonic m) {
  switch (m) {
    case Mnemonic::kUnknown: return "(unknown)";
    case Mnemonic::kMov: return "mov";
    case Mnemonic::kLea: return "lea";
    case Mnemonic::kMovzx: return "movzx";
    case Mnemonic::kMovsx: return "movsx";
    case Mnemonic::kMovsxd: return "movsxd";
    case Mnemonic::kPush: return "push";
    case Mnemonic::kPop: return "pop";
    case Mnemonic::kXchg: return "xchg";
    case Mnemonic::kAdd: return "add";
    case Mnemonic::kOr: return "or";
    case Mnemonic::kAdc: return "adc";
    case Mnemonic::kSbb: return "sbb";
    case Mnemonic::kAnd: return "and";
    case Mnemonic::kSub: return "sub";
    case Mnemonic::kXor: return "xor";
    case Mnemonic::kCmp: return "cmp";
    case Mnemonic::kTest: return "test";
    case Mnemonic::kInc: return "inc";
    case Mnemonic::kDec: return "dec";
    case Mnemonic::kNeg: return "neg";
    case Mnemonic::kNot: return "not";
    case Mnemonic::kMul: return "mul";
    case Mnemonic::kImul: return "imul";
    case Mnemonic::kDiv: return "div";
    case Mnemonic::kIdiv: return "idiv";
    case Mnemonic::kShl: return "shl";
    case Mnemonic::kShr: return "shr";
    case Mnemonic::kSar: return "sar";
    case Mnemonic::kRol: return "rol";
    case Mnemonic::kRor: return "ror";
    case Mnemonic::kBswap: return "bswap";
    case Mnemonic::kCmov: return "cmov";
    case Mnemonic::kSetcc: return "set";
    case Mnemonic::kCdqe: return "cdqe";
    case Mnemonic::kCqo: return "cqo";
    case Mnemonic::kCall: return "callq";
    case Mnemonic::kCallIndirect: return "callq*";
    case Mnemonic::kJmp: return "jmpq";
    case Mnemonic::kJmpIndirect: return "jmpq*";
    case Mnemonic::kJcc: return "j";
    case Mnemonic::kRet: return "retq";
    case Mnemonic::kLeave: return "leave";
    case Mnemonic::kNop: return "nop";
    case Mnemonic::kEndbr64: return "endbr64";
    case Mnemonic::kInt3: return "int3";
    case Mnemonic::kInt: return "int";
    case Mnemonic::kSyscall: return "syscall";
    case Mnemonic::kHlt: return "hlt";
    case Mnemonic::kCpuid: return "cpuid";
    case Mnemonic::kRdtsc: return "rdtsc";
    case Mnemonic::kUd2: return "ud2";
  }
  return "(bad)";
}

std::string Insn::ToString() const {
  std::ostringstream os;
  os << std::hex << addr << std::dec << ": " << MnemonicName(mnemonic);
  if (mnemonic == Mnemonic::kJcc || mnemonic == Mnemonic::kSetcc ||
      mnemonic == Mnemonic::kCmov) {
    os << kCondName[cond & 0xf];
  }
  if (IsDirectBranch()) {
    os << " 0x" << std::hex << BranchTarget() << std::dec;
    return os.str();
  }
  // AT&T order: src, dst.
  if (src.kind != OperandKind::kNone) {
    os << " ";
    FormatOperand(os, src, op_size, *this);
    if (dst.kind != OperandKind::kNone) {
      os << ",";
      FormatOperand(os, dst, op_size, *this);
    }
  } else if (dst.kind != OperandKind::kNone) {
    os << " ";
    FormatOperand(os, dst, op_size, *this);
  }
  return os.str();
}

}  // namespace engarde::x86
