// NaCl-style structural validator. The paper (Section 3) lists the
// constraints EnGarde inherits from NaCl's disassembler:
//   1. no instruction overlaps a 32-byte boundary,
//   2. all control transfers target valid instructions, and
//   3. all valid instructions are reachable from the start address.
//
// Reachability roots are the program entry point plus every function-symbol
// address and every jump-table entry: a statically linked binary legitimately
// carries library functions reached only through the symbol table, and
// jump-table entries are reached only through checked indirect calls.
#ifndef ENGARDE_X86_VALIDATOR_H_
#define ENGARDE_X86_VALIDATOR_H_

#include <vector>

#include "common/status.h"
#include "x86/insn_buffer.h"

namespace engarde::common {
class ThreadPool;
}  // namespace engarde::common

namespace engarde::x86 {

struct ValidationInput {
  // Address range of the text region the instructions came from.
  uint64_t text_start = 0;
  uint64_t text_end = 0;
  // Reachability roots (entry point, function starts, jump-table entries).
  std::vector<uint64_t> roots;
};

// Returns OK iff all three NaCl constraints hold for `insns` (which must be
// the complete, in-order disassembly of [text_start, text_end)).
//
// Rules 1 and 2 are independent per-instruction scans; when `pool` has more
// than one thread they run sharded, reporting the lowest-index violation so
// the error (if any) is the one the serial scan finds first. Rule 3's
// reachability BFS is inherently sequential and always runs serially.
Status ValidateNaClConstraints(const InsnBuffer& insns,
                               const ValidationInput& input,
                               common::ThreadPool* pool = nullptr);

}  // namespace engarde::x86

#endif  // ENGARDE_X86_VALIDATOR_H_
