// A small x86-64 interpreter over the decoder's instruction model. EnGarde
// itself never executes client code — it is a *static* inspector — but the
// examples and integration tests use this interpreter to demonstrate that a
// provisioned enclave actually runs: code is fetched through the enclave's
// memory view, W^X is enforced on every fetch, and FS-relative accesses hit
// the thread area where the stack-protector canary lives.
#ifndef ENGARDE_X86_INTERP_H_
#define ENGARDE_X86_INTERP_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "x86/insn.h"

namespace engarde::x86 {

// Memory access surface the machine runs against (implemented by the SGX
// enclave view in src/sgx, and by flat test memories in unit tests).
class MemoryIface {
 public:
  virtual ~MemoryIface() = default;
  virtual Result<uint64_t> Load(uint64_t addr, uint8_t size) = 0;
  virtual Status Store(uint64_t addr, uint8_t size, uint64_t value) = 0;
  // Fills `out` with instruction bytes starting at addr; used for fetch.
  virtual Status Fetch(uint64_t addr, MutableByteView out) = 0;
  // Execute permission check for the page containing addr.
  virtual bool IsExecutable(uint64_t addr) const = 0;
};

// Observes execution for runtime policy enforcement (EnGarde's future-work
// extension, paper Section 1: "an extension of EnGarde that instruments
// client code to enforce policies at runtime"). Any non-OK status aborts
// execution with that status.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  enum class TransferKind : uint8_t {
    kCall,          // direct call
    kCallIndirect,
    kJumpIndirect,
    kReturn,
  };

  // Before the instruction executes.
  virtual Status OnInstruction(const Insn& insn) {
    (void)insn;
    return Status::Ok();
  }
  // After a control transfer resolved its target, before the jump happens.
  // For calls, `return_addr` is the address the matching RET should come
  // back to; 0 for jumps and returns.
  virtual Status OnControlTransfer(TransferKind kind, uint64_t site,
                                   uint64_t target, uint64_t return_addr) {
    (void)kind;
    (void)site;
    (void)target;
    (void)return_addr;
    return Status::Ok();
  }
};

struct MachineConfig {
  uint64_t stack_top = 0;     // initial rsp (16-byte aligned)
  uint64_t fs_base = 0;       // FS segment base (thread area / canary)
  uint64_t max_steps = 1u << 22;
  ExecutionObserver* observer = nullptr;  // optional, not owned
};

class Machine {
 public:
  // The address a top-level RET "returns" to; hitting it stops execution.
  static constexpr uint64_t kExitAddr = 0xffffffff00000000ull;

  Machine(MemoryIface* memory, const MachineConfig& config);

  // Runs from `entry` until the top-level return, HLT, or an error.
  // Returns the final RAX value.
  Result<uint64_t> Run(uint64_t entry);

  uint64_t reg(uint8_t r) const { return regs_[r & 0xf]; }
  void set_reg(uint8_t r, uint64_t v) { regs_[r & 0xf] = v; }
  uint64_t steps_executed() const { return steps_; }

 private:
  Status Step(bool& halted);
  Result<uint64_t> EffectiveAddr(const Operand& op, const Insn& insn) const;
  Result<uint64_t> ReadOperand(const Operand& op, const Insn& insn);
  Status WriteOperand(const Operand& op, const Insn& insn, uint64_t value);
  bool CondHolds(uint8_t cond) const;
  void SetAluFlags(uint64_t result, uint8_t size);
  Status DoPush(uint64_t value);
  Result<uint64_t> DoPop();

  MemoryIface* memory_;
  MachineConfig config_;
  uint64_t regs_[16] = {};
  uint64_t rip_ = 0;
  uint64_t steps_ = 0;
  bool zf_ = false, sf_ = false, cf_ = false, of_ = false;
};

}  // namespace engarde::x86

#endif  // ENGARDE_X86_INTERP_H_
