// Table-driven x86-64 instruction decoder, modelled after the NaCl 64-bit
// disassembler EnGarde builds on (paper Section 4: "Using prefix and opcode
// tables for x86-64 bit instruction set, the disassembler parses the byte
// sequence of the text sections into instructions and associated metadata").
//
// Supported: the general-purpose integer subset that compiled C code (and
// the three policy instrumentations) uses — legacy + REX prefixes, one- and
// two-byte opcode maps, ModRM/SIB/displacement/immediate forms. Anything
// outside that set (SSE, VEX, three-byte maps, far control transfers) decodes
// to UNIMPLEMENTED, which EnGarde treats as grounds for rejection: code it
// cannot disassemble cannot be inspected, so it is not policy-compliant.
#ifndef ENGARDE_X86_DECODER_H_
#define ENGARDE_X86_DECODER_H_

#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "x86/insn.h"
#include "x86/insn_buffer.h"

namespace engarde::common {
class ThreadPool;
}  // namespace engarde::common

namespace engarde::x86 {

// Architectural maximum instruction length.
inline constexpr size_t kMaxInsnLength = 15;

// Decodes the instruction starting at code[offset]; `vaddr` is the virtual
// address of code[0] (so the instruction's address is vaddr + offset).
Result<Insn> DecodeOne(ByteView code, size_t offset, uint64_t vaddr);

// Decodes an entire code region sequentially. Fails on the first undecodable
// byte sequence (with its offset in the message).
Result<std::vector<Insn>> DecodeAll(ByteView code, uint64_t vaddr);

// Decodes one whole text section into `out`, sharding the work across `pool`
// when it has more than one thread (serial when pool is null or single).
//
// Shards split on 32-byte bundle boundaries (kBundleSize). For a NaCl-clean
// binary no instruction crosses a bundle boundary, so every shard's decode
// ends exactly where the next shard begins and concatenating the shards in
// address order reproduces the sequential decode byte for byte. If any shard
// fails to decode, or an instruction straddles a shard seam (a Rule-1
// violation the validator would reject anyway), the section is re-decoded
// serially so the appended instructions — or the returned error — are
// bit-for-bit those of the serial path.
//
// All appends into `out` happen on the calling thread, in address order, so
// InsnBuffer's binary-search invariant and its per-chunk allocation hook
// (the malloc-trampoline accounting) behave exactly as under serial decode.
Status DecodeSectionInto(ByteView content, uint64_t vaddr,
                         common::ThreadPool* pool, InsnBuffer& out);

}  // namespace engarde::x86

#endif  // ENGARDE_X86_DECODER_H_
