#include "x86/encoder.h"

#include <cassert>

namespace engarde::x86 {

void Assembler::Emit32(uint32_t v) {
  Emit8(static_cast<uint8_t>(v));
  Emit8(static_cast<uint8_t>(v >> 8));
  Emit8(static_cast<uint8_t>(v >> 16));
  Emit8(static_cast<uint8_t>(v >> 24));
}

void Assembler::Emit64(uint64_t v) {
  Emit32(static_cast<uint32_t>(v));
  Emit32(static_cast<uint32_t>(v >> 32));
}

void Assembler::EmitRex(bool w, uint8_t reg, uint8_t rm, uint8_t index) {
  uint8_t rex = 0x40;
  if (w) rex |= 0x08;
  if (reg & 8) rex |= 0x04;
  if (index & 8) rex |= 0x02;
  if (rm & 8) rex |= 0x01;
  if (rex != 0x40) Emit8(rex);
}

void Assembler::EmitModRmRegReg(uint8_t reg_field, uint8_t rm_reg) {
  Emit8(static_cast<uint8_t>(0xc0 | ((reg_field & 7) << 3) | (rm_reg & 7)));
}

void Assembler::EmitModRmMem(uint8_t reg_field, uint8_t base, int32_t disp) {
  const uint8_t base_low = base & 7;
  const bool needs_sib = base_low == 4;                 // rsp / r12
  const bool forces_disp = base_low == 5;               // rbp / r13
  uint8_t mod;
  if (disp == 0 && !forces_disp) {
    mod = 0;
  } else if (disp >= -128 && disp <= 127) {
    mod = 1;
  } else {
    mod = 2;
  }
  Emit8(static_cast<uint8_t>((mod << 6) | ((reg_field & 7) << 3) |
                             (needs_sib ? 4 : base_low)));
  if (needs_sib) Emit8(0x24);  // scale=0, index=none, base=rsp/r12
  if (mod == 1) {
    Emit8(static_cast<uint8_t>(disp));
  } else if (mod == 2) {
    Emit32(static_cast<uint32_t>(disp));
  }
}

Bytes Assembler::TakeBytes() {
  for (const Fixup& f : fixups_) {
    const int64_t pos = label_positions_[static_cast<size_t>(f.label_id)];
    assert(pos >= 0 && "unbound label at TakeBytes");
    const int64_t rel =
        pos - static_cast<int64_t>(f.rel32_offset) - 4;  // from insn end
    StoreLe32(code_.data() + f.rel32_offset, static_cast<uint32_t>(rel));
  }
  fixups_.clear();
  return std::move(code_);
}

// ---- Moves ------------------------------------------------------------

void Assembler::MovRegImm64(Reg dst, uint64_t imm) {
  EmitRex(true, 0, dst);
  Emit8(static_cast<uint8_t>(0xb8 | (dst & 7)));
  Emit64(imm);
}

void Assembler::MovRegImm32(Reg dst, uint32_t imm) {
  EmitRex(false, 0, dst);
  Emit8(static_cast<uint8_t>(0xb8 | (dst & 7)));
  Emit32(imm);
}

void Assembler::MovRegReg(Reg dst, Reg src) {
  EmitRex(true, src, dst);
  Emit8(0x89);
  EmitModRmRegReg(src, dst);
}

void Assembler::MovRegReg32(Reg dst, Reg src) {
  EmitRex(false, src, dst);
  Emit8(0x89);
  EmitModRmRegReg(src, dst);
}

void Assembler::MovRegFsDisp(Reg dst, int32_t disp) {
  // mov %fs:disp, %dst  =>  64 REX.W 8b modrm(04|reg) sib(25) disp32
  Emit8(0x64);
  EmitRex(true, dst, 0);
  Emit8(0x8b);
  Emit8(static_cast<uint8_t>(0x04 | ((dst & 7) << 3)));
  Emit8(0x25);
  Emit32(static_cast<uint32_t>(disp));
}

void Assembler::MovStore(Reg base, int32_t disp, Reg src) {
  EmitRex(true, src, base);
  Emit8(0x89);
  EmitModRmMem(src, base, disp);
}

void Assembler::MovLoad(Reg dst, Reg base, int32_t disp) {
  EmitRex(true, dst, base);
  Emit8(0x8b);
  EmitModRmMem(dst, base, disp);
}

void Assembler::MovLoadRipRel(Reg dst, int32_t disp) {
  EmitRex(true, dst, 0);
  Emit8(0x8b);
  Emit8(static_cast<uint8_t>(0x05 | ((dst & 7) << 3)));  // mod00 rm101 = RIP
  Emit32(static_cast<uint32_t>(disp));
}

void Assembler::MovLoadRipRelTo(Reg dst, uint64_t target_vaddr) {
  const uint64_t next = CurrentVaddr() + 7;
  MovLoadRipRel(dst, static_cast<int32_t>(static_cast<int64_t>(target_vaddr) -
                                          static_cast<int64_t>(next)));
}

// ---- Comparison ---------------------------------------------------------

void Assembler::CmpRegMem(Reg reg, Reg base, int32_t disp) {
  EmitRex(true, reg, base);
  Emit8(0x3b);
  EmitModRmMem(reg, base, disp);
}

void Assembler::CmpMemReg(Reg base, int32_t disp, Reg reg) {
  EmitRex(true, reg, base);
  Emit8(0x39);
  EmitModRmMem(reg, base, disp);
}

void Assembler::CmpRegReg(Reg a, Reg b) {
  EmitRex(true, b, a);
  Emit8(0x39);
  EmitModRmRegReg(b, a);
}

void Assembler::CmpRegImm32(Reg reg, int32_t imm) {
  EmitRex(true, 0, reg);
  Emit8(0x81);
  EmitModRmRegReg(7, reg);  // /7 = cmp
  Emit32(static_cast<uint32_t>(imm));
}

void Assembler::TestRegReg(Reg a, Reg b) {
  EmitRex(true, b, a);
  Emit8(0x85);
  EmitModRmRegReg(b, a);
}

// ---- LEA ------------------------------------------------------------------

void Assembler::LeaRipRel(Reg dst, int32_t disp) {
  EmitRex(true, dst, 0);
  Emit8(0x8d);
  Emit8(static_cast<uint8_t>(0x05 | ((dst & 7) << 3)));  // mod00 rm101 = RIP
  Emit32(static_cast<uint32_t>(disp));
}

void Assembler::LeaRipRelTo(Reg dst, uint64_t target_vaddr) {
  // Length is fixed: REX(1) + opcode(1) + modrm(1) + disp32(4) = 7 bytes.
  const uint64_t next = CurrentVaddr() + 7;
  LeaRipRel(dst, static_cast<int32_t>(static_cast<int64_t>(target_vaddr) -
                                      static_cast<int64_t>(next)));
}

// ---- ALU ----------------------------------------------------------------

void Assembler::AluRegReg64(uint8_t opcode, Reg dst, Reg src) {
  EmitRex(true, src, dst);
  Emit8(opcode);
  EmitModRmRegReg(src, dst);
}

void Assembler::AddRegReg(Reg dst, Reg src) { AluRegReg64(0x01, dst, src); }
void Assembler::SubRegReg(Reg dst, Reg src) { AluRegReg64(0x29, dst, src); }
void Assembler::AndRegReg(Reg dst, Reg src) { AluRegReg64(0x21, dst, src); }
void Assembler::XorRegReg(Reg dst, Reg src) { AluRegReg64(0x31, dst, src); }
void Assembler::OrRegReg(Reg dst, Reg src) { AluRegReg64(0x09, dst, src); }

void Assembler::SubRegReg32(Reg dst, Reg src) {
  EmitRex(false, src, dst);
  Emit8(0x29);
  EmitModRmRegReg(src, dst);
}

void Assembler::XorRegReg32(Reg dst, Reg src) {
  EmitRex(false, src, dst);
  Emit8(0x31);
  EmitModRmRegReg(src, dst);
}

void Assembler::AddRegImm32(Reg dst, int32_t imm) {
  EmitRex(true, 0, dst);
  Emit8(0x81);
  EmitModRmRegReg(0, dst);
  Emit32(static_cast<uint32_t>(imm));
}

void Assembler::SubRegImm32(Reg dst, int32_t imm) {
  EmitRex(true, 0, dst);
  Emit8(0x81);
  EmitModRmRegReg(5, dst);
  Emit32(static_cast<uint32_t>(imm));
}

void Assembler::AndRegImm32(Reg dst, int32_t imm) {
  EmitRex(true, 0, dst);
  Emit8(0x81);
  EmitModRmRegReg(4, dst);
  Emit32(static_cast<uint32_t>(imm));
}

void Assembler::ImulRegReg(Reg dst, Reg src) {
  EmitRex(true, dst, src);
  Emit8(0x0f);
  Emit8(0xaf);
  EmitModRmRegReg(dst, src);
}

void Assembler::ShlRegImm8(Reg dst, uint8_t count) {
  EmitRex(true, 0, dst);
  Emit8(0xc1);
  EmitModRmRegReg(4, dst);  // /4 = shl
  Emit8(count);
}

void Assembler::ShrRegImm8(Reg dst, uint8_t count) {
  EmitRex(true, 0, dst);
  Emit8(0xc1);
  EmitModRmRegReg(5, dst);  // /5 = shr
  Emit8(count);
}

// ---- Stack ----------------------------------------------------------------

void Assembler::Push(Reg reg) {
  EmitRex(false, 0, reg);
  Emit8(static_cast<uint8_t>(0x50 | (reg & 7)));
}

void Assembler::Pop(Reg reg) {
  EmitRex(false, 0, reg);
  Emit8(static_cast<uint8_t>(0x58 | (reg & 7)));
}

// ---- Control flow -----------------------------------------------------------

void Assembler::CallAbs(uint64_t target_vaddr) {
  const uint64_t next = CurrentVaddr() + 5;
  Emit8(0xe8);
  Emit32(static_cast<uint32_t>(target_vaddr - next));
}

void Assembler::JmpAbs(uint64_t target_vaddr) {
  const uint64_t next = CurrentVaddr() + 5;
  Emit8(0xe9);
  Emit32(static_cast<uint32_t>(target_vaddr - next));
}

void Assembler::JccAbs(Cond cond, uint64_t target_vaddr) {
  const uint64_t next = CurrentVaddr() + 6;
  Emit8(0x0f);
  Emit8(static_cast<uint8_t>(0x80 | cond));
  Emit32(static_cast<uint32_t>(target_vaddr - next));
}

void Assembler::CallIndirectReg(Reg reg) {
  EmitRex(false, 0, reg);
  Emit8(0xff);
  EmitModRmRegReg(2, reg);  // /2 = call
}

void Assembler::JmpIndirectReg(Reg reg) {
  EmitRex(false, 0, reg);
  Emit8(0xff);
  EmitModRmRegReg(4, reg);  // /4 = jmp
}

void Assembler::Ret() { Emit8(0xc3); }
void Assembler::Leave() { Emit8(0xc9); }

// ---- Labels -----------------------------------------------------------------

Assembler::Label Assembler::NewLabel() {
  Label l;
  l.id_ = next_label_++;
  label_positions_.push_back(-1);
  return l;
}

void Assembler::Bind(Label& label) {
  assert(label.id_ >= 0 && "label not created via NewLabel");
  assert(label_positions_[static_cast<size_t>(label.id_)] == -1 &&
         "label bound twice");
  label_positions_[static_cast<size_t>(label.id_)] =
      static_cast<int64_t>(code_.size());
}

void Assembler::JmpLabel(const Label& label) {
  Emit8(0xe9);
  fixups_.push_back({code_.size(), label.id_});
  Emit32(0);
}

void Assembler::JccLabel(Cond cond, const Label& label) {
  Emit8(0x0f);
  Emit8(static_cast<uint8_t>(0x80 | cond));
  fixups_.push_back({code_.size(), label.id_});
  Emit32(0);
}

// ---- NOPs and misc ---------------------------------------------------------

void Assembler::Nop() { Emit8(0x90); }

void Assembler::NopMem() {
  Emit8(0x0f);
  Emit8(0x1f);
  Emit8(0x00);  // nopl (%rax)
}

void Assembler::NopBytes(size_t n) {
  // Canonical recommended multi-byte NOPs (Intel SDM Vol 2, Table 4-12).
  static const uint8_t k1[] = {0x90};
  static const uint8_t k2[] = {0x66, 0x90};
  static const uint8_t k3[] = {0x0f, 0x1f, 0x00};
  static const uint8_t k4[] = {0x0f, 0x1f, 0x40, 0x00};
  static const uint8_t k5[] = {0x0f, 0x1f, 0x44, 0x00, 0x00};
  static const uint8_t k6[] = {0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00};
  static const uint8_t k7[] = {0x0f, 0x1f, 0x80, 0x00, 0x00, 0x00, 0x00};
  static const uint8_t k8[] = {0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00};
  static const uint8_t k9[] = {0x66, 0x0f, 0x1f, 0x84,
                               0x00, 0x00, 0x00, 0x00, 0x00};
  static const uint8_t* const kNops[] = {k1, k2, k3, k4, k5, k6, k7, k8, k9};

  while (n > 0) {
    const size_t take = n < 9 ? n : 9;
    const uint8_t* seq = kNops[take - 1];
    for (size_t i = 0; i < take; ++i) Emit8(seq[i]);
    n -= take;
  }
}

void Assembler::Endbr64() {
  Emit8(0xf3);
  Emit8(0x0f);
  Emit8(0x1e);
  Emit8(0xfa);
}

void Assembler::Int3() { Emit8(0xcc); }

void Assembler::Syscall() {
  Emit8(0x0f);
  Emit8(0x05);
}

void Assembler::Hlt() { Emit8(0xf4); }

void Assembler::Ud2() {
  Emit8(0x0f);
  Emit8(0x0b);
}

void Assembler::Cpuid() {
  Emit8(0x0f);
  Emit8(0xa2);
}

void Assembler::Rdtsc() {
  Emit8(0x0f);
  Emit8(0x31);
}

void Assembler::AlignTo(size_t alignment) {
  assert(alignment > 0 && (alignment & (alignment - 1)) == 0);
  const size_t rem = code_.size() & (alignment - 1);
  if (rem != 0) NopBytes(alignment - rem);
}

void Assembler::BundleAlignFor(size_t insn_len) {
  assert(insn_len <= kBundleSize);
  const size_t pos_in_bundle = code_.size() & (kBundleSize - 1);
  if (pos_in_bundle + insn_len > kBundleSize) AlignTo(kBundleSize);
}

}  // namespace engarde::x86
