#include "x86/insn_buffer.h"

namespace engarde::x86 {

void InsnBuffer::Append(const Insn& insn) {
  if (size_ == chunks_.size() * kInsnsPerChunk) {
    chunks_.push_back(std::make_unique<Chunk>());
    if (hook_) hook_(kChunkBytes);
  }
  chunks_.back()->insns[size_ % kInsnsPerChunk] = insn;
  ++size_;
}

size_t InsnBuffer::IndexOfAddr(uint64_t addr) const {
  size_t lo = 0, hi = size_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const uint64_t mid_addr = (*this)[mid].addr;
    if (mid_addr == addr) return mid;
    if (mid_addr < addr) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return npos;
}

}  // namespace engarde::x86
