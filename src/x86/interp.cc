#include "x86/interp.h"

#include <sstream>

#include "x86/decoder.h"

namespace engarde::x86 {
namespace {

uint64_t TruncateToSize(uint64_t v, uint8_t size) {
  switch (size) {
    case 1: return v & 0xff;
    case 2: return v & 0xffff;
    case 4: return v & 0xffffffff;
    default: return v;
  }
}

int64_t SignedOf(uint64_t v, uint8_t size) {
  switch (size) {
    case 1: return static_cast<int8_t>(v);
    case 2: return static_cast<int16_t>(v);
    case 4: return static_cast<int32_t>(v);
    default: return static_cast<int64_t>(v);
  }
}

std::string AddrString(uint64_t addr) {
  std::ostringstream os;
  os << "0x" << std::hex << addr;
  return os.str();
}

}  // namespace

Machine::Machine(MemoryIface* memory, const MachineConfig& config)
    : memory_(memory), config_(config) {
  regs_[kRsp] = config.stack_top;
}

Result<uint64_t> Machine::EffectiveAddr(const Operand& op,
                                        const Insn& insn) const {
  if (op.kind == OperandKind::kRipRel) {
    return insn.NextAddr() + static_cast<uint64_t>(
                                 static_cast<int64_t>(op.mem.disp));
  }
  uint64_t addr = static_cast<uint64_t>(static_cast<int64_t>(op.mem.disp));
  if (op.mem.base >= 0) addr += regs_[op.mem.base & 0xf];
  if (op.mem.index >= 0) addr += regs_[op.mem.index & 0xf] * op.mem.scale;
  if (op.mem.segment == Segment::kFs) addr += config_.fs_base;
  if (op.mem.segment == Segment::kGs) {
    return UnimplementedError("GS-relative access in interpreter");
  }
  return addr;
}

Result<uint64_t> Machine::ReadOperand(const Operand& op, const Insn& insn) {
  switch (op.kind) {
    case OperandKind::kReg:
      return TruncateToSize(regs_[op.reg & 0xf], insn.op_size);
    case OperandKind::kImm:
      return TruncateToSize(static_cast<uint64_t>(op.imm), insn.op_size);
    case OperandKind::kMem:
    case OperandKind::kRipRel: {
      ASSIGN_OR_RETURN(const uint64_t addr, EffectiveAddr(op, insn));
      return memory_->Load(addr, insn.op_size);
    }
    case OperandKind::kNone:
      return InternalError("read of absent operand");
  }
  return InternalError("bad operand kind");
}

Status Machine::WriteOperand(const Operand& op, const Insn& insn,
                             uint64_t value) {
  switch (op.kind) {
    case OperandKind::kReg:
      // 32-bit writes zero-extend; 8/16-bit writes merge (x86 semantics).
      if (insn.op_size == 8) {
        regs_[op.reg & 0xf] = value;
      } else if (insn.op_size == 4) {
        regs_[op.reg & 0xf] = value & 0xffffffff;
      } else {
        const uint64_t mask = insn.op_size == 1 ? 0xff : 0xffff;
        regs_[op.reg & 0xf] =
            (regs_[op.reg & 0xf] & ~mask) | (value & mask);
      }
      return Status::Ok();
    case OperandKind::kMem:
    case OperandKind::kRipRel: {
      ASSIGN_OR_RETURN(const uint64_t addr, EffectiveAddr(op, insn));
      return memory_->Store(addr, insn.op_size, value);
    }
    case OperandKind::kImm:
    case OperandKind::kNone:
      return InternalError("write to non-writable operand");
  }
  return InternalError("bad operand kind");
}

bool Machine::CondHolds(uint8_t cond) const {
  switch (cond & 0xf) {
    case kCondO: return of_;
    case kCondNo: return !of_;
    case kCondB: return cf_;
    case kCondAe: return !cf_;
    case kCondE: return zf_;
    case kCondNe: return !zf_;
    case kCondBe: return cf_ || zf_;
    case kCondA: return !cf_ && !zf_;
    case kCondS: return sf_;
    case kCondNs: return !sf_;
    case kCondP: return false;  // parity unsupported; treated as clear
    case kCondNp: return true;
    case kCondL: return sf_ != of_;
    case kCondGe: return sf_ == of_;
    case kCondLe: return zf_ || (sf_ != of_);
    case kCondG: return !zf_ && (sf_ == of_);
  }
  return false;
}

void Machine::SetAluFlags(uint64_t result, uint8_t size) {
  const uint64_t truncated = TruncateToSize(result, size);
  zf_ = truncated == 0;
  sf_ = SignedOf(truncated, size) < 0;
}

Status Machine::DoPush(uint64_t value) {
  regs_[kRsp] -= 8;
  return memory_->Store(regs_[kRsp], 8, value);
}

Result<uint64_t> Machine::DoPop() {
  ASSIGN_OR_RETURN(const uint64_t value, memory_->Load(regs_[kRsp], 8));
  regs_[kRsp] += 8;
  return value;
}

Result<uint64_t> Machine::Run(uint64_t entry) {
  rip_ = entry;
  RETURN_IF_ERROR(DoPush(kExitAddr));
  for (;;) {
    if (rip_ == kExitAddr) return regs_[kRax];
    if (++steps_ > config_.max_steps) {
      return ResourceExhaustedError("interpreter step limit exceeded");
    }
    bool halted = false;
    RETURN_IF_ERROR(Step(halted));
    if (halted) return regs_[kRax];
  }
}

Status Machine::Step(bool& halted) {
  if (!memory_->IsExecutable(rip_)) {
    return PermissionDeniedError("fetch from non-executable page at " +
                                 AddrString(rip_));
  }
  uint8_t window[kMaxInsnLength] = {};
  RETURN_IF_ERROR(memory_->Fetch(rip_, MutableByteView(window, sizeof(window))));
  auto decoded = DecodeOne(ByteView(window, sizeof(window)), 0, rip_);
  if (!decoded.ok()) return decoded.status();
  const Insn insn = *decoded;

  if (config_.observer != nullptr) {
    RETURN_IF_ERROR(config_.observer->OnInstruction(insn));
  }

  uint64_t next_rip = insn.NextAddr();

  switch (insn.mnemonic) {
    case Mnemonic::kNop:
    case Mnemonic::kEndbr64:
      break;

    case Mnemonic::kMov: {
      ASSIGN_OR_RETURN(const uint64_t v, ReadOperand(insn.src, insn));
      RETURN_IF_ERROR(WriteOperand(insn.dst, insn, v));
      break;
    }
    case Mnemonic::kLea: {
      ASSIGN_OR_RETURN(const uint64_t addr, EffectiveAddr(insn.src, insn));
      RETURN_IF_ERROR(WriteOperand(insn.dst, insn, addr));
      break;
    }
    case Mnemonic::kMovzx:
    case Mnemonic::kMovsx:
    case Mnemonic::kMovsxd: {
      // Source width comes from the opcode; we approximate with op_size-1
      // loads where the decoder marked byte ops. For the workload subset the
      // generator emits none of these with memory sources.
      ASSIGN_OR_RETURN(const uint64_t v, ReadOperand(insn.src, insn));
      RETURN_IF_ERROR(WriteOperand(insn.dst, insn, v));
      break;
    }

    case Mnemonic::kAdd:
    case Mnemonic::kOr:
    case Mnemonic::kAnd:
    case Mnemonic::kSub:
    case Mnemonic::kXor: {
      ASSIGN_OR_RETURN(const uint64_t a, ReadOperand(insn.dst, insn));
      ASSIGN_OR_RETURN(const uint64_t b, ReadOperand(insn.src, insn));
      uint64_t r = 0;
      switch (insn.mnemonic) {
        case Mnemonic::kAdd: r = a + b; break;
        case Mnemonic::kOr: r = a | b; break;
        case Mnemonic::kAnd: r = a & b; break;
        case Mnemonic::kSub: r = a - b; break;
        case Mnemonic::kXor: r = a ^ b; break;
        default: break;
      }
      if (insn.mnemonic == Mnemonic::kAdd) {
        cf_ = TruncateToSize(r, insn.op_size) < TruncateToSize(a, insn.op_size);
        of_ = (SignedOf(a, insn.op_size) < 0) == (SignedOf(b, insn.op_size) < 0) &&
              (SignedOf(r, insn.op_size) < 0) != (SignedOf(a, insn.op_size) < 0);
      } else if (insn.mnemonic == Mnemonic::kSub) {
        cf_ = TruncateToSize(a, insn.op_size) < TruncateToSize(b, insn.op_size);
        of_ = (SignedOf(a, insn.op_size) < 0) != (SignedOf(b, insn.op_size) < 0) &&
              (SignedOf(r, insn.op_size) < 0) != (SignedOf(a, insn.op_size) < 0);
      } else {
        cf_ = of_ = false;
      }
      SetAluFlags(r, insn.op_size);
      RETURN_IF_ERROR(WriteOperand(insn.dst, insn, TruncateToSize(r, insn.op_size)));
      break;
    }

    case Mnemonic::kCmp: {
      ASSIGN_OR_RETURN(const uint64_t a, ReadOperand(insn.dst, insn));
      ASSIGN_OR_RETURN(const uint64_t b, ReadOperand(insn.src, insn));
      const uint64_t r = a - b;
      cf_ = TruncateToSize(a, insn.op_size) < TruncateToSize(b, insn.op_size);
      of_ = (SignedOf(a, insn.op_size) < 0) != (SignedOf(b, insn.op_size) < 0) &&
            (SignedOf(r, insn.op_size) < 0) != (SignedOf(a, insn.op_size) < 0);
      SetAluFlags(r, insn.op_size);
      break;
    }
    case Mnemonic::kTest: {
      ASSIGN_OR_RETURN(const uint64_t a, ReadOperand(insn.dst, insn));
      ASSIGN_OR_RETURN(const uint64_t b, ReadOperand(insn.src, insn));
      cf_ = of_ = false;
      SetAluFlags(a & b, insn.op_size);
      break;
    }

    case Mnemonic::kImul: {
      if (insn.dst.kind == OperandKind::kReg &&
          insn.src.kind != OperandKind::kNone) {
        // Two-operand form: reg <- reg * r/m.
        ASSIGN_OR_RETURN(const uint64_t a, ReadOperand(insn.dst, insn));
        ASSIGN_OR_RETURN(const uint64_t b, ReadOperand(insn.src, insn));
        const uint64_t r = a * b;
        SetAluFlags(r, insn.op_size);
        RETURN_IF_ERROR(
            WriteOperand(insn.dst, insn, TruncateToSize(r, insn.op_size)));
      } else {
        // One-operand form (F7 /5): RDX:RAX <- RAX * r/m (signed).
        ASSIGN_OR_RETURN(const uint64_t m, ReadOperand(insn.dst, insn));
        const __int128 wide = static_cast<__int128>(
                                  static_cast<int64_t>(regs_[kRax])) *
                              SignedOf(m, insn.op_size);
        regs_[kRax] = static_cast<uint64_t>(wide);
        regs_[kRdx] = static_cast<uint64_t>(
            static_cast<unsigned __int128>(wide) >> 64);
        SetAluFlags(regs_[kRax], insn.op_size);
      }
      break;
    }
    case Mnemonic::kMul: {
      // RDX:RAX <- RAX * r/m (unsigned).
      ASSIGN_OR_RETURN(const uint64_t m, ReadOperand(insn.dst, insn));
      const unsigned __int128 wide =
          static_cast<unsigned __int128>(regs_[kRax]) *
          TruncateToSize(m, insn.op_size);
      regs_[kRax] = static_cast<uint64_t>(wide);
      regs_[kRdx] = static_cast<uint64_t>(wide >> 64);
      SetAluFlags(regs_[kRax], insn.op_size);
      break;
    }
    case Mnemonic::kDiv: {
      ASSIGN_OR_RETURN(const uint64_t m, ReadOperand(insn.dst, insn));
      const uint64_t divisor = TruncateToSize(m, insn.op_size);
      if (divisor == 0) {
        return InvalidArgumentError("division by zero at " +
                                    AddrString(rip_));
      }
      const unsigned __int128 dividend =
          (static_cast<unsigned __int128>(regs_[kRdx]) << 64) | regs_[kRax];
      const unsigned __int128 quotient = dividend / divisor;
      if (quotient >> 64) {
        return InvalidArgumentError("divide overflow at " + AddrString(rip_));
      }
      regs_[kRax] = static_cast<uint64_t>(quotient);
      regs_[kRdx] = static_cast<uint64_t>(dividend % divisor);
      break;
    }
    case Mnemonic::kIdiv: {
      ASSIGN_OR_RETURN(const uint64_t m, ReadOperand(insn.dst, insn));
      const int64_t divisor = SignedOf(m, insn.op_size);
      if (divisor == 0) {
        return InvalidArgumentError("division by zero at " +
                                    AddrString(rip_));
      }
      const __int128 dividend = static_cast<__int128>(
          (static_cast<unsigned __int128>(regs_[kRdx]) << 64) | regs_[kRax]);
      const __int128 quotient = dividend / divisor;
      if (quotient != static_cast<int64_t>(quotient)) {
        return InvalidArgumentError("divide overflow at " + AddrString(rip_));
      }
      regs_[kRax] = static_cast<uint64_t>(static_cast<int64_t>(quotient));
      regs_[kRdx] =
          static_cast<uint64_t>(static_cast<int64_t>(dividend % divisor));
      break;
    }
    case Mnemonic::kBswap: {
      ASSIGN_OR_RETURN(const uint64_t v, ReadOperand(insn.dst, insn));
      uint64_t r = __builtin_bswap64(v);
      if (insn.op_size == 4) r = __builtin_bswap32(static_cast<uint32_t>(v));
      RETURN_IF_ERROR(WriteOperand(insn.dst, insn, r));
      break;
    }

    case Mnemonic::kShl:
    case Mnemonic::kShr:
    case Mnemonic::kSar: {
      ASSIGN_OR_RETURN(const uint64_t a, ReadOperand(insn.dst, insn));
      const uint8_t count =
          insn.src.kind == OperandKind::kImm
              ? static_cast<uint8_t>(insn.src.imm) & 0x3f
              : static_cast<uint8_t>(regs_[kRcx]) & 0x3f;
      uint64_t r;
      if (insn.mnemonic == Mnemonic::kShl) {
        r = a << count;
      } else if (insn.mnemonic == Mnemonic::kShr) {
        r = TruncateToSize(a, insn.op_size) >> count;
      } else {
        r = static_cast<uint64_t>(SignedOf(a, insn.op_size) >> count);
      }
      SetAluFlags(r, insn.op_size);
      RETURN_IF_ERROR(WriteOperand(insn.dst, insn, TruncateToSize(r, insn.op_size)));
      break;
    }

    case Mnemonic::kInc:
    case Mnemonic::kDec: {
      ASSIGN_OR_RETURN(const uint64_t a, ReadOperand(insn.dst, insn));
      const uint64_t r = insn.mnemonic == Mnemonic::kInc ? a + 1 : a - 1;
      SetAluFlags(r, insn.op_size);
      RETURN_IF_ERROR(WriteOperand(insn.dst, insn, TruncateToSize(r, insn.op_size)));
      break;
    }
    case Mnemonic::kNeg: {
      ASSIGN_OR_RETURN(const uint64_t a, ReadOperand(insn.dst, insn));
      const uint64_t r = 0 - a;
      cf_ = a != 0;
      SetAluFlags(r, insn.op_size);
      RETURN_IF_ERROR(WriteOperand(insn.dst, insn, TruncateToSize(r, insn.op_size)));
      break;
    }
    case Mnemonic::kNot: {
      ASSIGN_OR_RETURN(const uint64_t a, ReadOperand(insn.dst, insn));
      RETURN_IF_ERROR(WriteOperand(insn.dst, insn, TruncateToSize(~a, insn.op_size)));
      break;
    }

    case Mnemonic::kPush: {
      ASSIGN_OR_RETURN(const uint64_t v,
                       insn.src.kind != OperandKind::kNone
                           ? ReadOperand(insn.src, insn)
                           : ReadOperand(insn.dst, insn));
      RETURN_IF_ERROR(DoPush(v));
      break;
    }
    case Mnemonic::kPop: {
      ASSIGN_OR_RETURN(const uint64_t v, DoPop());
      RETURN_IF_ERROR(WriteOperand(insn.dst, insn, v));
      break;
    }

    case Mnemonic::kCall: {
      if (config_.observer != nullptr) {
        RETURN_IF_ERROR(config_.observer->OnControlTransfer(
            ExecutionObserver::TransferKind::kCall, rip_,
            insn.BranchTarget(), next_rip));
      }
      RETURN_IF_ERROR(DoPush(next_rip));
      next_rip = insn.BranchTarget();
      break;
    }
    case Mnemonic::kCallIndirect: {
      ASSIGN_OR_RETURN(const uint64_t target, ReadOperand(insn.src, insn));
      if (config_.observer != nullptr) {
        RETURN_IF_ERROR(config_.observer->OnControlTransfer(
            ExecutionObserver::TransferKind::kCallIndirect, rip_, target,
            next_rip));
      }
      RETURN_IF_ERROR(DoPush(next_rip));
      next_rip = target;
      break;
    }
    case Mnemonic::kJmp:
      next_rip = insn.BranchTarget();
      break;
    case Mnemonic::kJmpIndirect: {
      ASSIGN_OR_RETURN(const uint64_t target, ReadOperand(insn.src, insn));
      if (config_.observer != nullptr) {
        RETURN_IF_ERROR(config_.observer->OnControlTransfer(
            ExecutionObserver::TransferKind::kJumpIndirect, rip_, target,
            0));
      }
      next_rip = target;
      break;
    }
    case Mnemonic::kJcc:
      if (CondHolds(insn.cond)) next_rip = insn.BranchTarget();
      break;
    case Mnemonic::kRet: {
      ASSIGN_OR_RETURN(next_rip, DoPop());
      if (config_.observer != nullptr) {
        RETURN_IF_ERROR(config_.observer->OnControlTransfer(
            ExecutionObserver::TransferKind::kReturn, rip_, next_rip, 0));
      }
      break;
    }
    case Mnemonic::kLeave: {
      regs_[kRsp] = regs_[kRbp];
      ASSIGN_OR_RETURN(regs_[kRbp], DoPop());
      break;
    }

    case Mnemonic::kSetcc: {
      RETURN_IF_ERROR(WriteOperand(insn.dst, insn, CondHolds(insn.cond) ? 1 : 0));
      break;
    }
    case Mnemonic::kCmov: {
      if (CondHolds(insn.cond)) {
        ASSIGN_OR_RETURN(const uint64_t v, ReadOperand(insn.src, insn));
        RETURN_IF_ERROR(WriteOperand(insn.dst, insn, v));
      }
      break;
    }
    case Mnemonic::kCdqe:
      regs_[kRax] = static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int32_t>(regs_[kRax])));
      break;
    case Mnemonic::kCqo:
      regs_[kRdx] =
          (static_cast<int64_t>(regs_[kRax]) < 0) ? ~0ull : 0ull;
      break;
    case Mnemonic::kXchg: {
      ASSIGN_OR_RETURN(const uint64_t a, ReadOperand(insn.dst, insn));
      ASSIGN_OR_RETURN(const uint64_t b, ReadOperand(insn.src, insn));
      RETURN_IF_ERROR(WriteOperand(insn.dst, insn, b));
      RETURN_IF_ERROR(WriteOperand(insn.src, insn, a));
      break;
    }

    case Mnemonic::kHlt:
      halted = true;
      return Status::Ok();

    case Mnemonic::kSyscall:
    case Mnemonic::kInt:
    case Mnemonic::kInt3:
      return PermissionDeniedError(
          "enclave code attempted a system instruction (" +
          std::string(MnemonicName(insn.mnemonic)) + ") at " +
          AddrString(rip_));

    default:
      return UnimplementedError("interpreter: unsupported instruction " +
                                insn.ToString());
  }

  rip_ = next_rip;
  return Status::Ok();
}

}  // namespace engarde::x86
