// Deterministic pseudo-random source (xoshiro256**). Used by the workload
// generator and tests so every run of the benchmark harness builds bit-for-bit
// identical programs. Cryptographic randomness comes from crypto/drbg, not
// from here.
#ifndef ENGARDE_COMMON_RNG_H_
#define ENGARDE_COMMON_RNG_H_

#include <cstdint>

#include "common/bytes.h"

namespace engarde {

class Rng {
 public:
  explicit Rng(uint64_t seed) noexcept;

  uint64_t NextU64() noexcept;
  uint32_t NextU32() noexcept { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling so the
  // distribution is exact (matters for reproducible workload shapes).
  uint64_t NextBelow(uint64_t bound) noexcept;

  // Uniform in [lo, hi], inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) noexcept;

  // True with probability num/den. Requires num <= den, den > 0.
  bool NextChance(uint64_t num, uint64_t den) noexcept;

  Bytes NextBytes(size_t n);

 private:
  uint64_t s_[4];
};

}  // namespace engarde

#endif  // ENGARDE_COMMON_RNG_H_
