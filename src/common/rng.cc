#include "common/rng.h"

#include <cassert>

namespace engarde {
namespace {

// splitmix64: expands the single seed word into the xoshiro state, per the
// reference initialization recommended by the xoshiro authors.
uint64_t SplitMix64(uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) noexcept {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // All-zero state is the one forbidden state for xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() noexcept {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) noexcept {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of bound that fits in 2^64.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) noexcept {
  assert(lo <= hi);
  const uint64_t span = hi - lo + 1;
  if (span == 0) return NextU64();  // full range [0, 2^64)
  return lo + NextBelow(span);
}

bool Rng::NextChance(uint64_t num, uint64_t den) noexcept {
  assert(den > 0 && num <= den);
  return NextBelow(den) < num;
}

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    StoreLe64(out.data() + i, NextU64());
    i += 8;
  }
  if (i < n) {
    uint8_t tmp[8];
    StoreLe64(tmp, NextU64());
    for (size_t j = 0; i < n; ++i, ++j) out[i] = tmp[j];
  }
  return out;
}

}  // namespace engarde
