#include "common/bytes.h"

namespace engarde {

bool ConstantTimeEqual(ByteView a, ByteView b) noexcept {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

}  // namespace engarde
