#include "common/thread_pool.h"

#include <algorithm>

namespace engarde::common {

ThreadPool::ThreadPool(size_t threads) {
  const size_t worker_count = threads > 1 ? threads - 1 : 0;
  workers_.reserve(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Every submitted task runs exactly once: anything the workers had not
  // picked up before the stop runs inline here, so a producer waiting on its
  // tasks' side effects can never be stranded by teardown.
  while (!tasks_.empty()) {
    Task task = std::move(tasks_.front());
    tasks_.pop_front();
    task();
  }
}

void ThreadPool::RunChunk(const Job& job, size_t chunk_index) {
  const size_t chunk_begin = job.begin + chunk_index * job.chunk_items;
  const size_t chunk_end = std::min(job.end, chunk_begin + job.chunk_items);
  if (chunk_begin >= chunk_end) return;
  try {
    (*job.body)(chunk_begin, chunk_end);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (chunk_index < first_error_chunk_) {
      first_error_chunk_ = chunk_index;
      first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    Job job;
    bool run_chunk = false;
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation || !tasks_.empty();
      });
      if (stop_) return;
      if (generation_ != seen_generation) {
        // A ParallelFor caller is blocked on this chunk: it outranks any
        // queued task.
        seen_generation = generation_;
        job = job_;
        run_chunk = true;
      } else {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (run_chunk) {
      // Chunk 0 belongs to the caller; worker w owns chunk w + 1.
      RunChunk(job, worker_index + 1);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--active_workers_ == 0) done_cv_.notify_all();
      }
    } else {
      task();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const RangeBody& body) {
  if (end <= begin) return;
  const size_t items = end - begin;
  if (grain == 0) grain = 1;
  const size_t max_chunks = (items + grain - 1) / grain;
  const size_t num_chunks = std::min(thread_count(), max_chunks);
  if (num_chunks <= 1 || workers_.empty()) {
    body(begin, end);
    return;
  }

  // One dispatching caller at a time: the pool has a single Job slot, and a
  // shared pool is now driven by several ProvisioningSessions concurrently.
  // Serializing dispatch (not the chunk bodies) keeps the static partition —
  // and therefore the verdict — identical to exclusive use.
  std::lock_guard<std::mutex> submit_lock(submit_mu_);

  Job job;
  job.body = &body;
  job.begin = begin;
  job.end = end;
  job.chunk_items = (items + num_chunks - 1) / num_chunks;
  job.num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    first_error_ = nullptr;
    first_error_chunk_ = kNoChunk;
    active_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();

  RunChunk(job, 0);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    first_error_chunk_ = kNoChunk;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::Submit(Task task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

}  // namespace engarde::common
