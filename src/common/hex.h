// Hex encoding/decoding for digests, keys and test fixtures.
#ifndef ENGARDE_COMMON_HEX_H_
#define ENGARDE_COMMON_HEX_H_

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace engarde {

// Lowercase hex, two characters per byte.
std::string HexEncode(ByteView data);

// Strict decode: even length, [0-9a-fA-F] only.
Result<Bytes> HexDecode(std::string_view hex);

}  // namespace engarde

#endif  // ENGARDE_COMMON_HEX_H_
