// Lightweight Status / Result<T> error-handling vocabulary used across the
// EnGarde codebase. Modelled after absl::Status / std::expected: a Status is
// cheap to copy when OK, and a Result<T> carries either a value or a Status.
//
// Error handling policy (see DESIGN.md): anything that can fail because of
// *input* (malformed ELF, non-compliant code, bad ciphertext, protocol
// violations) returns Status/Result. Programming errors (out-of-contract
// calls) use assertions.
#ifndef ENGARDE_COMMON_STATUS_H_
#define ENGARDE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace engarde {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller-supplied data is malformed
  kFailedPrecondition, // operation invalid in the current state
  kNotFound,           // lookup miss (symbol, section, page, ...)
  kOutOfRange,         // offset/index outside a valid range
  kPermissionDenied,   // access-control violation (EPCM, page perms, lock)
  kPolicyViolation,    // client code failed a policy module
  kIntegrityError,     // MAC/signature/hash/measurement mismatch
  kProtocolError,      // provisioning protocol framing/state violation
  kResourceExhausted,  // out of EPC pages, buffer capacity, ...
  kDeadlineExceeded,   // a time budget ran out (connection/session deadline)
  kUnimplemented,      // decoder hit an instruction outside supported set
  kInternal,           // invariant violation detected at runtime
};

std::string_view StatusCodeName(StatusCode code) noexcept;

// Status: OK or (code, message). The OK state allocates nothing.
class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status::Ok() for success");
  }

  static Status Ok() noexcept { return Status(); }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  // Human-readable "CODE: message" rendering for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out(StatusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;  // messages are advisory
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::string_view StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kPolicyViolation: return "POLICY_VIOLATION";
    case StatusCode::kIntegrityError: return "INTEGRITY_ERROR";
    case StatusCode::kProtocolError: return "PROTOCOL_ERROR";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

// Convenience constructors, mirroring absl's factory style.
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status PermissionDeniedError(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status PolicyViolationError(std::string msg) {
  return Status(StatusCode::kPolicyViolation, std::move(msg));
}
inline Status IntegrityError(std::string msg) {
  return Status(StatusCode::kIntegrityError, std::move(msg));
}
inline Status ProtocolError(std::string msg) {
  return Status(StatusCode::kProtocolError, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// Result<T>: value or error Status. Access to value() asserts ok().
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "constructing Result<T> from OK status loses the value");
  }

  bool ok() const noexcept { return std::holds_alternative<T>(rep_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

 private:
  std::variant<T, Status> rep_;
};

// Propagation macros. Double-underscore concat keeps temporaries unique per
// line so nested uses inside one function do not collide.
#define ENGARDE_CONCAT_INNER_(a, b) a##b
#define ENGARDE_CONCAT_(a, b) ENGARDE_CONCAT_INNER_(a, b)

#define RETURN_IF_ERROR(expr)                        \
  do {                                               \
    ::engarde::Status engarde_status_ = (expr);      \
    if (!engarde_status_.ok()) return engarde_status_; \
  } while (false)

#define ASSIGN_OR_RETURN(lhs, expr)                               \
  auto ENGARDE_CONCAT_(engarde_result_, __LINE__) = (expr);       \
  if (!ENGARDE_CONCAT_(engarde_result_, __LINE__).ok())           \
    return ENGARDE_CONCAT_(engarde_result_, __LINE__).status();   \
  lhs = std::move(ENGARDE_CONCAT_(engarde_result_, __LINE__)).value()

}  // namespace engarde

#endif  // ENGARDE_COMMON_STATUS_H_
