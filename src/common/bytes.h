// Byte-buffer vocabulary types and little-endian serialization helpers.
// Everything that crosses a module boundary as "raw bytes" uses these.
#ifndef ENGARDE_COMMON_BYTES_H_
#define ENGARDE_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace engarde {

using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;
using MutableByteView = std::span<uint8_t>;

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(ByteView b) {
  return std::string(b.begin(), b.end());
}

// Constant-time equality for MAC/digest comparison; never early-exits.
bool ConstantTimeEqual(ByteView a, ByteView b) noexcept;

// Little-endian load/store for the fixed-width integers used by the ELF,
// x86 and protocol encoders. Loads assume the caller validated bounds.
inline uint16_t LoadLe16(const uint8_t* p) noexcept {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}
inline uint32_t LoadLe32(const uint8_t* p) noexcept {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}
inline uint64_t LoadLe64(const uint8_t* p) noexcept {
  return static_cast<uint64_t>(LoadLe32(p)) |
         static_cast<uint64_t>(LoadLe32(p + 4)) << 32;
}

inline void StoreLe16(uint8_t* p, uint16_t v) noexcept {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline void StoreLe32(uint8_t* p, uint32_t v) noexcept {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
inline void StoreLe64(uint8_t* p, uint64_t v) noexcept {
  StoreLe32(p, static_cast<uint32_t>(v));
  StoreLe32(p + 4, static_cast<uint32_t>(v >> 32));
}

// Big-endian loads/stores (used by SHA-256 and network-order framing).
inline uint32_t LoadBe32(const uint8_t* p) noexcept {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}
inline uint64_t LoadBe64(const uint8_t* p) noexcept {
  return static_cast<uint64_t>(LoadBe32(p)) << 32 |
         static_cast<uint64_t>(LoadBe32(p + 4));
}
inline void StoreBe32(uint8_t* p, uint32_t v) noexcept {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}
inline void StoreBe64(uint8_t* p, uint64_t v) noexcept {
  StoreBe32(p, static_cast<uint32_t>(v >> 32));
  StoreBe32(p + 4, static_cast<uint32_t>(v));
}

// Append helpers used by serializers.
inline void AppendLe16(Bytes& out, uint16_t v) {
  uint8_t tmp[2];
  StoreLe16(tmp, v);
  out.insert(out.end(), tmp, tmp + 2);
}
inline void AppendLe32(Bytes& out, uint32_t v) {
  uint8_t tmp[4];
  StoreLe32(tmp, v);
  out.insert(out.end(), tmp, tmp + 4);
}
inline void AppendLe64(Bytes& out, uint64_t v) {
  uint8_t tmp[8];
  StoreLe64(tmp, v);
  out.insert(out.end(), tmp, tmp + 8);
}
inline void AppendBytes(Bytes& out, ByteView v) {
  out.insert(out.end(), v.begin(), v.end());
}

// Cursor for safe, bounds-checked sequential reads from a ByteView.
// All Read* methods fail (return false) instead of reading out of range,
// which protocol and file parsers turn into INVALID_ARGUMENT statuses.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) noexcept : data_(data) {}

  size_t remaining() const noexcept { return data_.size() - pos_; }
  size_t position() const noexcept { return pos_; }
  bool AtEnd() const noexcept { return pos_ == data_.size(); }

  bool Skip(size_t n) noexcept {
    if (n > remaining()) return false;
    pos_ += n;
    return true;
  }

  bool ReadU8(uint8_t& out) noexcept {
    if (remaining() < 1) return false;
    out = data_[pos_++];
    return true;
  }
  bool ReadLe16(uint16_t& out) noexcept {
    if (remaining() < 2) return false;
    out = LoadLe16(data_.data() + pos_);
    pos_ += 2;
    return true;
  }
  bool ReadLe32(uint32_t& out) noexcept {
    if (remaining() < 4) return false;
    out = LoadLe32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool ReadLe64(uint64_t& out) noexcept {
    if (remaining() < 8) return false;
    out = LoadLe64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool ReadBytes(size_t n, ByteView& out) noexcept {
    if (remaining() < n) return false;
    out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  ByteView data_;
  size_t pos_ = 0;
};

}  // namespace engarde

#endif  // ENGARDE_COMMON_BYTES_H_
