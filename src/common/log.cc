#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace engarde {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept { g_level.store(level); }
LogLevel GetLogLevel() noexcept { return g_level.load(); }

namespace internal {

void Emit(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
}

}  // namespace internal
}  // namespace engarde
