// A deterministic fork-join worker pool for the parallel inspection engine.
//
// Design constraints, in order:
//   1. Determinism. EnGarde's verdicts must be bit-for-bit identical at any
//      thread count, so there is no work stealing and no dynamic scheduling:
//      ParallelFor statically partitions [begin, end) into contiguous,
//      in-order chunks and assigns chunk c to participant c. Callers merge
//      per-chunk results by chunk index and get the serial answer.
//   2. Reuse. Provisioning runs several parallel scans back to back
//      (disassembly shards, NaCl rules, policy call sites); workers persist
//      across ParallelFor calls instead of being respawned per scan.
//   3. Graceful degradation. With `threads <= 1` no workers are spawned and
//      every ParallelFor runs inline on the caller — the serial pipeline,
//      exactly.
//
// ParallelFor is NOT reentrant: a body must not call back into the same
// pool. The inspection pipeline enforces this by handing the pool either to
// the policy *set* (modules run concurrently) or to a single module (which
// shards internally), never both.
//
// ParallelFor IS safe to call from several external threads at once: a
// submit mutex serializes dispatch, so concurrent ProvisioningSessions
// sharing one inspection pool take turns and each still sees the exact
// static partition (and verdict) it would get with exclusive use.
//
// Submit() is the second, independent work source: fire-and-forget tasks
// (the streaming inspector's speculative page decodes) that workers pick up
// whenever no ParallelFor chunk is pending. Tasks never participate in the
// fork-join generation protocol, so a ParallelFor dispatched while tasks are
// queued still sees its exact static partition — a busy worker just picks up
// its chunk after the task it is running retires. A task must not call back
// into the same pool (neither ParallelFor nor, transitively, Submit-and-wait).
#ifndef ENGARDE_COMMON_THREAD_POOL_H_
#define ENGARDE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace engarde::common {

class ThreadPool {
 public:
  // `threads` is the total parallelism including the calling thread, so the
  // pool spawns `threads - 1` workers. `threads <= 1` spawns none.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const noexcept { return workers_.size() + 1; }

  // Invokes body(chunk_begin, chunk_end) over a static partition of
  // [begin, end): at most thread_count() contiguous chunks, each covering at
  // least `grain` items (except possibly the last). Blocks until every chunk
  // has finished. If any body invocation throws, the exception from the
  // lowest-indexed throwing chunk is rethrown here after all chunks
  // complete — the same exception the serial loop would have surfaced first.
  using RangeBody = std::function<void(size_t begin, size_t end)>;
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const RangeBody& body);

  // Enqueues a fire-and-forget task for the next free worker. With no
  // workers (threads <= 1) the task runs inline on the caller before Submit
  // returns — the serial pipeline, exactly, with no queue to drain. A task
  // that throws terminates (tasks own their error reporting; the streaming
  // decoder records per-chunk Statuses instead of throwing).
  using Task = std::function<void()>;
  void Submit(Task task);

 private:
  struct Job {
    const RangeBody* body = nullptr;
    size_t begin = 0;
    size_t end = 0;
    size_t chunk_items = 0;
    size_t num_chunks = 0;
  };

  static constexpr size_t kNoChunk = static_cast<size_t>(-1);

  void WorkerLoop(size_t worker_index);
  void RunChunk(const Job& job, size_t chunk_index);

  // Held for the full duration of one ParallelFor dispatch (the pool has a
  // single Job slot). mu_ below protects the slot's fields themselves.
  std::mutex submit_mu_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job job_;
  uint64_t generation_ = 0;
  size_t active_workers_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
  size_t first_error_chunk_ = kNoChunk;
  std::deque<Task> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace engarde::common

#endif  // ENGARDE_COMMON_THREAD_POOL_H_
