// Minimal leveled logger. EnGarde's in-enclave components log through this;
// the provider-visible audit trail is separate (core/report.h) because the
// threat model forbids leaking client code details to the host.
#ifndef ENGARDE_COMMON_LOG_H_
#define ENGARDE_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace engarde {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; defaults to kWarning so tests/benches are quiet.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

namespace internal {
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  ~LogLine() { Emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define ENGARDE_LOG(level) \
  ::engarde::internal::LogLine(::engarde::LogLevel::level)

}  // namespace engarde

#endif  // ENGARDE_COMMON_LOG_H_
