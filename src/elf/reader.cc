#include "elf/reader.h"

#include <algorithm>

namespace engarde::elf {
namespace {

// Resolves a NUL-terminated string at `offset` inside a string table blob.
Result<std::string> StringAt(ByteView strtab, uint64_t offset) {
  if (offset >= strtab.size()) {
    return InvalidArgumentError("string table offset out of range");
  }
  const auto* begin = strtab.data() + offset;
  const auto* end = strtab.data() + strtab.size();
  const auto* nul = std::find(begin, end, uint8_t{0});
  if (nul == end) {
    return InvalidArgumentError("unterminated string in string table");
  }
  return std::string(reinterpret_cast<const char*>(begin),
                     static_cast<size_t>(nul - begin));
}

// Bounds-checks that [offset, offset+size) lies inside the image.
Status CheckRange(ByteView image, uint64_t offset, uint64_t size,
                  const char* what) {
  if (offset > image.size() || size > image.size() - offset) {
    return InvalidArgumentError(std::string(what) +
                                " extends beyond end of file");
  }
  return Status::Ok();
}

}  // namespace

Result<ElfFile> ElfFile::Parse(ByteView image) {
  ElfFile file;
  file.image_.assign(image.begin(), image.end());
  const ByteView img(file.image_.data(), file.image_.size());

  if (img.size() < kEhdrSize) {
    return InvalidArgumentError("file too small for an ELF header");
  }

  // e_ident: magic, class, data encoding, version.
  if (img[0] != kMag0 || img[1] != kMag1 || img[2] != kMag2 ||
      img[3] != kMag3) {
    return InvalidArgumentError("bad ELF magic");
  }
  if (img[4] != kClass64) {
    return InvalidArgumentError("not a 64-bit ELF (ELFCLASS64 required)");
  }
  if (img[5] != kDataLsb) {
    return InvalidArgumentError("not little-endian (ELFDATA2LSB required)");
  }
  if (img[6] != kVersionCurrent) {
    return InvalidArgumentError("unsupported ELF version");
  }

  Ehdr& e = file.ehdr_;
  e.type = LoadLe16(img.data() + 16);
  e.machine = LoadLe16(img.data() + 18);
  e.entry = LoadLe64(img.data() + 24);
  e.phoff = LoadLe64(img.data() + 32);
  e.shoff = LoadLe64(img.data() + 40);
  const uint16_t phentsize = LoadLe16(img.data() + 54);
  e.phnum = LoadLe16(img.data() + 56);
  const uint16_t shentsize = LoadLe16(img.data() + 58);
  e.shnum = LoadLe16(img.data() + 60);
  e.shstrndx = LoadLe16(img.data() + 62);

  if (e.phnum > 0 && phentsize != kPhdrSize) {
    return InvalidArgumentError("unexpected program header entry size");
  }
  if (e.shnum > 0 && shentsize != kShdrSize) {
    return InvalidArgumentError("unexpected section header entry size");
  }

  // Program headers.
  RETURN_IF_ERROR(CheckRange(img, e.phoff,
                             static_cast<uint64_t>(e.phnum) * kPhdrSize,
                             "program header table"));
  file.phdrs_.reserve(e.phnum);
  for (uint16_t i = 0; i < e.phnum; ++i) {
    const uint8_t* p = img.data() + e.phoff + i * kPhdrSize;
    Phdr ph;
    ph.type = LoadLe32(p);
    ph.flags = LoadLe32(p + 4);
    ph.offset = LoadLe64(p + 8);
    ph.vaddr = LoadLe64(p + 16);
    ph.filesz = LoadLe64(p + 32);
    ph.memsz = LoadLe64(p + 40);
    ph.align = LoadLe64(p + 48);
    if (ph.type == kPtLoad) {
      RETURN_IF_ERROR(CheckRange(img, ph.offset, ph.filesz, "PT_LOAD segment"));
      if (ph.memsz < ph.filesz) {
        return InvalidArgumentError("segment memsz smaller than filesz");
      }
    }
    file.phdrs_.push_back(ph);
  }

  // Section headers: first pass reads raw fields, second resolves names.
  RETURN_IF_ERROR(CheckRange(img, e.shoff,
                             static_cast<uint64_t>(e.shnum) * kShdrSize,
                             "section header table"));
  struct RawShdr {
    uint32_t name_off;
    Shdr shdr;
  };
  std::vector<RawShdr> raw;
  raw.reserve(e.shnum);
  for (uint16_t i = 0; i < e.shnum; ++i) {
    const uint8_t* p = img.data() + e.shoff + i * kShdrSize;
    RawShdr r;
    r.name_off = LoadLe32(p);
    r.shdr.type = LoadLe32(p + 4);
    r.shdr.flags = LoadLe64(p + 8);
    r.shdr.addr = LoadLe64(p + 16);
    r.shdr.offset = LoadLe64(p + 24);
    r.shdr.size = LoadLe64(p + 32);
    r.shdr.link = LoadLe32(p + 40);
    r.shdr.entsize = LoadLe64(p + 56);
    if (r.shdr.type != kShtNobits && r.shdr.type != kShtNull) {
      RETURN_IF_ERROR(CheckRange(img, r.shdr.offset, r.shdr.size, "section"));
    }
    raw.push_back(std::move(r));
  }

  if (e.shnum > 0) {
    if (e.shstrndx >= e.shnum) {
      return InvalidArgumentError("shstrndx out of range");
    }
    const Shdr& shstr = raw[e.shstrndx].shdr;
    if (shstr.type != kShtStrtab) {
      return InvalidArgumentError("shstrndx does not point at a string table");
    }
    const ByteView shstrtab = img.subspan(shstr.offset, shstr.size);
    for (auto& r : raw) {
      ASSIGN_OR_RETURN(r.shdr.name, StringAt(shstrtab, r.name_off));
      file.shdrs_.push_back(std::move(r.shdr));
    }
  }

  // Symbol table (at most one SHT_SYMTAB; the paper's loader builds its
  // symbol hash table from it).
  for (const Shdr& s : file.shdrs_) {
    if (s.type != kShtSymtab) continue;
    if (s.entsize != kSymSize || s.size % kSymSize != 0) {
      return InvalidArgumentError("malformed symbol table geometry");
    }
    if (s.link >= file.shdrs_.size() ||
        file.shdrs_[s.link].type != kShtStrtab) {
      return InvalidArgumentError("symbol table has no linked string table");
    }
    const Shdr& strtab_hdr = file.shdrs_[s.link];
    const ByteView strtab = img.subspan(strtab_hdr.offset, strtab_hdr.size);

    const size_t count = s.size / kSymSize;
    file.symbols_.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const uint8_t* p = img.data() + s.offset + i * kSymSize;
      Sym sym;
      const uint32_t name_off = LoadLe32(p);
      sym.info = p[4];
      sym.shndx = LoadLe16(p + 6);
      sym.value = LoadLe64(p + 8);
      sym.size = LoadLe64(p + 16);
      ASSIGN_OR_RETURN(sym.name, StringAt(strtab, name_off));
      file.symbols_.push_back(std::move(sym));
    }
  }

  // RELA relocation sections.
  for (const Shdr& s : file.shdrs_) {
    if (s.type != kShtRela) continue;
    if (s.entsize != kRelaSize || s.size % kRelaSize != 0) {
      return InvalidArgumentError("malformed RELA section geometry");
    }
    const size_t count = s.size / kRelaSize;
    file.relas_.reserve(file.relas_.size() + count);
    for (size_t i = 0; i < count; ++i) {
      const uint8_t* p = img.data() + s.offset + i * kRelaSize;
      Rela rela;
      rela.offset = LoadLe64(p);
      const uint64_t info = LoadLe64(p + 8);
      rela.sym = RelaSym(info);
      rela.type = RelaType(info);
      rela.addend = static_cast<int64_t>(LoadLe64(p + 16));
      file.relas_.push_back(rela);
    }
  }

  // Dynamic table.
  for (const Shdr& s : file.shdrs_) {
    if (s.type != kShtDynamic) continue;
    if (s.entsize != kDynSize || s.size % kDynSize != 0) {
      return InvalidArgumentError("malformed dynamic section geometry");
    }
    const size_t count = s.size / kDynSize;
    for (size_t i = 0; i < count; ++i) {
      const uint8_t* p = img.data() + s.offset + i * kDynSize;
      Dyn d;
      d.tag = static_cast<int64_t>(LoadLe64(p));
      d.value = LoadLe64(p + 8);
      if (d.tag == kDtNull) break;
      file.dynamic_.push_back(d);
    }
  }

  return file;
}

const Shdr* ElfFile::SectionByName(std::string_view name) const {
  for (const Shdr& s : shdrs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const Shdr*> ElfFile::TextSections() const {
  std::vector<const Shdr*> out;
  for (const Shdr& s : shdrs_) {
    if (s.type == kShtProgbits && (s.flags & kShfExecinstr)) out.push_back(&s);
  }
  return out;
}

Result<ByteView> ElfFile::SectionContent(const Shdr& section) const {
  if (section.type == kShtNobits) return ByteView{};
  const ByteView img(image_.data(), image_.size());
  if (section.offset > img.size() ||
      section.size > img.size() - section.offset) {
    return OutOfRangeError("section content out of file bounds");
  }
  return img.subspan(section.offset, section.size);
}

std::optional<uint64_t> ElfFile::DynamicValue(int64_t tag) const {
  for (const Dyn& d : dynamic_) {
    if (d.tag == tag) return d.value;
  }
  return std::nullopt;
}

Status ElfFile::ValidateForEnclave() const {
  if (ehdr_.machine != kEmX8664) {
    return InvalidArgumentError("enclave code must be x86-64");
  }
  if (ehdr_.type != kEtDyn) {
    return InvalidArgumentError(
        "enclave code must be a position-independent executable (ET_DYN)");
  }

  // Statically linked: a PT_INTERP segment (type 3) means a dynamic loader
  // is required, which EnGarde does not provide inside the enclave.
  for (const Phdr& ph : phdrs_) {
    if (ph.type == 3 /* PT_INTERP */) {
      return InvalidArgumentError(
          "enclave code must be statically linked (found PT_INTERP)");
    }
  }

  // Code/data separation at segment granularity: no PT_LOAD may be both
  // writable and executable, and every executable section must live in an
  // executable, non-writable segment. "EnGarde rejects pages that contain
  // mixed code and data."
  for (const Phdr& ph : phdrs_) {
    if (ph.type != kPtLoad) continue;
    if ((ph.flags & kPfX) && (ph.flags & kPfW)) {
      return PolicyViolationError("segment is both writable and executable");
    }
  }
  for (const Shdr& s : shdrs_) {
    if (s.type != kShtProgbits || !(s.flags & kShfExecinstr)) continue;
    if (s.flags & kShfWrite) {
      return PolicyViolationError("section " + s.name +
                                  " is both writable and executable");
    }
    bool covered = false;
    for (const Phdr& ph : phdrs_) {
      if (ph.type != kPtLoad || !(ph.flags & kPfX)) continue;
      if (s.addr >= ph.vaddr && s.addr + s.size <= ph.vaddr + ph.memsz) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return InvalidArgumentError("text section " + s.name +
                                  " not covered by an executable segment");
    }
  }

  // Symbol-table requirement: stripped binaries are auto-rejected because the
  // policy modules resolve call targets through the symbol hash table.
  bool has_function_symbol = false;
  for (const Sym& sym : symbols_) {
    if (sym.IsFunction() && !sym.name.empty()) {
      has_function_symbol = true;
      break;
    }
  }
  if (!has_function_symbol) {
    return InvalidArgumentError(
        "stripped binary: EnGarde requires function symbols");
  }

  // Entry point must land inside some executable segment.
  bool entry_ok = false;
  for (const Phdr& ph : phdrs_) {
    if (ph.type == kPtLoad && (ph.flags & kPfX) && ehdr_.entry >= ph.vaddr &&
        ehdr_.entry < ph.vaddr + ph.memsz) {
      entry_ok = true;
      break;
    }
  }
  if (!entry_ok) {
    return InvalidArgumentError("entry point outside executable segments");
  }

  return Status::Ok();
}

}  // namespace engarde::elf
