// ElfBuilder: constructs 64-bit ELF position-independent executables of the
// shape EnGarde accepts — separated code/data sections, symbol table, RELA
// relocations, .dynamic table. The workload generator uses this to stand in
// for "clang/LLVM-3.6 + musl-libc" from the paper's evaluation; tests use it
// to produce both well-formed and deliberately malformed inputs.
//
// Layout produced (offset == vaddr for all allocated content):
//   0x0000  ELF header + program headers        PT_LOAD  R
//   0x1000  text sections (contiguous)          PT_LOAD  R+X
//   page    data sections, then .bss (memsz)    PT_LOAD  R+W
//   page    .rela.dyn, .dynamic                 PT_LOAD  R+W  (+PT_DYNAMIC)
//   ----    .symtab, .strtab, .shstrtab, section headers (non-alloc)
#ifndef ENGARDE_ELF_BUILDER_H_
#define ENGARDE_ELF_BUILDER_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "elf/elf_types.h"

namespace engarde::elf {

class ElfBuilder {
 public:
  ElfBuilder() = default;

  // Adds an executable section; returns its assigned virtual address.
  // All text sections must be added before any data/bss. Content is placed
  // contiguously, each section aligned to 32 bytes (the NaCl bundle size).
  uint64_t AddTextSection(const std::string& name, Bytes content);

  // Adds a writable data section; returns its assigned virtual address.
  uint64_t AddDataSection(const std::string& name, Bytes content);

  // Reserves .bss space after the data sections; returns its virtual address.
  // At most one bss region.
  uint64_t AddBss(uint64_t size);

  // Declares a symbol at an absolute virtual address. type/bind use the
  // kStt*/kStb* constants from elf_types.h.
  void AddSymbol(const std::string& name, uint64_t vaddr, uint64_t size,
                 uint8_t type, uint8_t bind = kStbGlobal);

  // R_X86_64_RELATIVE: at load time, *(u64*)(base + slot_vaddr) = base + addend.
  void AddRelativeRelocation(uint64_t slot_vaddr, int64_t addend);

  void SetEntry(uint64_t vaddr) { entry_ = vaddr; }

  // Serializes the executable. The builder can be reused afterwards (Build is
  // const). Fails if no text was added or layout invariants are violated.
  Result<Bytes> Build() const;

 private:
  struct SectionSpec {
    std::string name;
    Bytes content;
    uint64_t vaddr = 0;
  };
  struct SymbolSpec {
    std::string name;
    uint64_t vaddr = 0;
    uint64_t size = 0;
    uint8_t type = 0;
    uint8_t bind = 0;
  };
  struct RelaSpec {
    uint64_t offset = 0;
    int64_t addend = 0;
  };

  uint64_t TextEnd() const;
  uint64_t DataStart() const;
  uint64_t DataEnd() const;

  std::vector<SectionSpec> text_sections_;
  std::vector<SectionSpec> data_sections_;
  uint64_t bss_size_ = 0;
  uint64_t bss_vaddr_ = 0;
  std::vector<SymbolSpec> symbols_;
  std::vector<RelaSpec> relas_;
  uint64_t entry_ = 0;
  bool data_started_ = false;
};

}  // namespace engarde::elf

#endif  // ENGARDE_ELF_BUILDER_H_
