// ELF64 on-disk structures and constants (System V ABI / ELF-64 object file
// format), restricted to what EnGarde's loader needs: x86-64, little-endian,
// position-independent executables with separated code and data sections
// (paper Section 4, "Binary Disassembly" and "Loading").
#ifndef ENGARDE_ELF_ELF_TYPES_H_
#define ENGARDE_ELF_ELF_TYPES_H_

#include <cstdint>

namespace engarde::elf {

// e_ident layout.
inline constexpr uint8_t kMag0 = 0x7f;
inline constexpr uint8_t kMag1 = 'E';
inline constexpr uint8_t kMag2 = 'L';
inline constexpr uint8_t kMag3 = 'F';
inline constexpr uint8_t kClass64 = 2;      // ELFCLASS64
inline constexpr uint8_t kDataLsb = 1;      // ELFDATA2LSB
inline constexpr uint8_t kVersionCurrent = 1;

// e_type values.
inline constexpr uint16_t kEtExec = 2;  // ET_EXEC (fixed-address; rejected)
inline constexpr uint16_t kEtDyn = 3;   // ET_DYN (PIE; required)

// e_machine.
inline constexpr uint16_t kEmX8664 = 62;  // EM_X86_64

// Program header types.
inline constexpr uint32_t kPtNull = 0;
inline constexpr uint32_t kPtLoad = 1;
inline constexpr uint32_t kPtDynamic = 2;

// Program header flags.
inline constexpr uint32_t kPfX = 1;
inline constexpr uint32_t kPfW = 2;
inline constexpr uint32_t kPfR = 4;

// Section header types.
inline constexpr uint32_t kShtNull = 0;
inline constexpr uint32_t kShtProgbits = 1;
inline constexpr uint32_t kShtSymtab = 2;
inline constexpr uint32_t kShtStrtab = 3;
inline constexpr uint32_t kShtRela = 4;
inline constexpr uint32_t kShtNobits = 8;
inline constexpr uint32_t kShtDynamic = 6;

// Section flags.
inline constexpr uint64_t kShfWrite = 0x1;
inline constexpr uint64_t kShfAlloc = 0x2;
inline constexpr uint64_t kShfExecinstr = 0x4;

// Symbol binding / type (packed into st_info).
inline constexpr uint8_t kStbLocal = 0;
inline constexpr uint8_t kStbGlobal = 1;
inline constexpr uint8_t kSttNotype = 0;
inline constexpr uint8_t kSttObject = 1;
inline constexpr uint8_t kSttFunc = 2;

inline constexpr uint8_t MakeSymInfo(uint8_t bind, uint8_t type) {
  return static_cast<uint8_t>(bind << 4 | (type & 0xf));
}
inline constexpr uint8_t SymBind(uint8_t info) { return info >> 4; }
inline constexpr uint8_t SymType(uint8_t info) { return info & 0xf; }

// Relocation types (x86-64 psABI).
inline constexpr uint32_t kRX8664None = 0;
inline constexpr uint32_t kRX866464 = 1;       // S + A, 64-bit
inline constexpr uint32_t kRX8664Relative = 8;  // B + A, 64-bit

inline constexpr uint64_t MakeRelaInfo(uint32_t sym, uint32_t type) {
  return static_cast<uint64_t>(sym) << 32 | type;
}
inline constexpr uint32_t RelaSym(uint64_t info) {
  return static_cast<uint32_t>(info >> 32);
}
inline constexpr uint32_t RelaType(uint64_t info) {
  return static_cast<uint32_t>(info);
}

// Dynamic table tags.
inline constexpr int64_t kDtNull = 0;
inline constexpr int64_t kDtStrtab = 5;
inline constexpr int64_t kDtSymtab = 6;
inline constexpr int64_t kDtRela = 7;
inline constexpr int64_t kDtRelasz = 8;
inline constexpr int64_t kDtRelaent = 9;

// Fixed sizes of the on-disk records.
inline constexpr size_t kEhdrSize = 64;
inline constexpr size_t kPhdrSize = 56;
inline constexpr size_t kShdrSize = 64;
inline constexpr size_t kSymSize = 24;
inline constexpr size_t kRelaSize = 24;
inline constexpr size_t kDynSize = 16;

inline constexpr uint64_t kPageSize = 4096;

inline constexpr uint64_t PageAlignUp(uint64_t v) {
  return (v + kPageSize - 1) & ~(kPageSize - 1);
}
inline constexpr uint64_t PageAlignDown(uint64_t v) {
  return v & ~(kPageSize - 1);
}

// Parsed (host-endian) views of the on-disk records.
struct Ehdr {
  uint16_t type = 0;
  uint16_t machine = 0;
  uint64_t entry = 0;
  uint64_t phoff = 0;
  uint64_t shoff = 0;
  uint16_t phnum = 0;
  uint16_t shnum = 0;
  uint16_t shstrndx = 0;
};

struct Phdr {
  uint32_t type = 0;
  uint32_t flags = 0;
  uint64_t offset = 0;
  uint64_t vaddr = 0;
  uint64_t filesz = 0;
  uint64_t memsz = 0;
  uint64_t align = 0;
};

struct Shdr {
  std::string name;  // resolved from .shstrtab
  uint32_t type = 0;
  uint64_t flags = 0;
  uint64_t addr = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t link = 0;
  uint64_t entsize = 0;
};

struct Sym {
  std::string name;  // resolved from the linked string table
  uint8_t info = 0;
  uint16_t shndx = 0;
  uint64_t value = 0;
  uint64_t size = 0;

  bool IsFunction() const { return SymType(info) == kSttFunc; }
};

struct Rela {
  uint64_t offset = 0;
  uint32_t sym = 0;
  uint32_t type = 0;
  int64_t addend = 0;
};

struct Dyn {
  int64_t tag = 0;
  uint64_t value = 0;
};

}  // namespace engarde::elf

#endif  // ENGARDE_ELF_ELF_TYPES_H_
