#include "elf/builder.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace engarde::elf {
namespace {

constexpr uint64_t kTextStart = 0x1000;
constexpr uint64_t kBundleAlign = 32;  // NaCl bundle size

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) & ~(a - 1); }

// Simple string table builder: offset 0 is the empty string.
class StrTab {
 public:
  StrTab() { blob_.push_back(0); }

  uint32_t Intern(const std::string& s) {
    auto [it, inserted] = offsets_.try_emplace(s, 0);
    if (inserted) {
      it->second = static_cast<uint32_t>(blob_.size());
      blob_.insert(blob_.end(), s.begin(), s.end());
      blob_.push_back(0);
    }
    return it->second;
  }

  const Bytes& blob() const { return blob_; }

 private:
  Bytes blob_;
  std::map<std::string, uint32_t> offsets_;
};

}  // namespace

uint64_t ElfBuilder::TextEnd() const {
  uint64_t end = kTextStart;
  for (const SectionSpec& s : text_sections_) {
    end = AlignUp(end, kBundleAlign) + s.content.size();
  }
  return end;
}

uint64_t ElfBuilder::DataStart() const { return PageAlignUp(TextEnd()); }

uint64_t ElfBuilder::DataEnd() const {
  uint64_t end = DataStart();
  for (const SectionSpec& s : data_sections_) {
    end = AlignUp(end, 8) + s.content.size();
  }
  return end;
}

uint64_t ElfBuilder::AddTextSection(const std::string& name, Bytes content) {
  assert(!data_started_ && "all text sections must precede data sections");
  const uint64_t vaddr = AlignUp(TextEnd(), kBundleAlign);
  text_sections_.push_back({name, std::move(content), vaddr});
  return vaddr;
}

uint64_t ElfBuilder::AddDataSection(const std::string& name, Bytes content) {
  assert(bss_size_ == 0 && "data sections must precede bss");
  data_started_ = true;
  const uint64_t vaddr = AlignUp(DataEnd(), 8);
  data_sections_.push_back({name, std::move(content), vaddr});
  return vaddr;
}

uint64_t ElfBuilder::AddBss(uint64_t size) {
  assert(bss_size_ == 0 && "at most one bss region");
  data_started_ = true;
  bss_vaddr_ = AlignUp(DataEnd(), 8);
  bss_size_ = size;
  return bss_vaddr_;
}

void ElfBuilder::AddSymbol(const std::string& name, uint64_t vaddr,
                           uint64_t size, uint8_t type, uint8_t bind) {
  symbols_.push_back({name, vaddr, size, type, bind});
}

void ElfBuilder::AddRelativeRelocation(uint64_t slot_vaddr, int64_t addend) {
  relas_.push_back({slot_vaddr, addend});
}

Result<Bytes> ElfBuilder::Build() const {
  if (text_sections_.empty()) {
    return FailedPreconditionError("cannot build an ELF without text");
  }

  // ---- Layout ----------------------------------------------------------
  const uint64_t data_start = DataStart();
  const uint64_t data_end = DataEnd();
  const uint64_t bss_end =
      bss_size_ > 0 ? bss_vaddr_ + bss_size_ : data_end;

  // Dynamic region (rela + dynamic) sits page-aligned after bss in vaddr
  // space and page-aligned after the data file content in the file.
  const uint64_t dyn_vaddr = PageAlignUp(bss_end);
  const uint64_t dyn_offset = PageAlignUp(data_end);
  const uint64_t rela_size = relas_.size() * kRelaSize;
  // 4 fixed dynamic entries (RELA, RELASZ, RELAENT, NULL).
  const uint64_t dynamic_vaddr = dyn_vaddr + rela_size;
  const uint64_t dynamic_size = 4 * kDynSize;
  const uint64_t dyn_region_size = rela_size + dynamic_size;

  // ---- Section table assembly -------------------------------------------
  struct OutSection {
    std::string name;
    uint32_t type;
    uint64_t flags;
    uint64_t addr;
    uint64_t offset;
    uint64_t size;
    uint32_t link;
    uint64_t entsize;
  };
  std::vector<OutSection> sections;
  sections.push_back({"", kShtNull, 0, 0, 0, 0, 0, 0});  // index 0

  for (const SectionSpec& s : text_sections_) {
    sections.push_back({s.name, kShtProgbits, kShfAlloc | kShfExecinstr,
                        s.vaddr, s.vaddr, s.content.size(), 0, 0});
  }
  for (const SectionSpec& s : data_sections_) {
    sections.push_back({s.name, kShtProgbits, kShfAlloc | kShfWrite, s.vaddr,
                        s.vaddr, s.content.size(), 0, 0});
  }
  if (bss_size_ > 0) {
    sections.push_back({".bss", kShtNobits, kShfAlloc | kShfWrite, bss_vaddr_,
                        0, bss_size_, 0, 0});
  }
  sections.push_back({".rela.dyn", kShtRela, kShfAlloc, dyn_vaddr, dyn_offset,
                      rela_size, 0, kRelaSize});
  sections.push_back({".dynamic", kShtDynamic, kShfAlloc | kShfWrite,
                      dynamic_vaddr, dyn_offset + rela_size, dynamic_size, 0,
                      kDynSize});

  // Symbols: null first, then locals, then globals (ELF ordering rule).
  std::vector<SymbolSpec> ordered = symbols_;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SymbolSpec& a, const SymbolSpec& b) {
                     return (a.bind == kStbLocal) > (b.bind == kStbLocal);
                   });
  size_t local_count = 1;  // the null symbol counts as local
  for (const SymbolSpec& s : ordered) {
    if (s.bind == kStbLocal) ++local_count;
  }

  // Resolve each symbol's section index by address containment.
  auto section_index_for = [&](uint64_t vaddr) -> uint16_t {
    for (size_t i = 1; i < sections.size(); ++i) {
      const OutSection& s = sections[i];
      if (!(s.flags & kShfAlloc)) continue;
      if (vaddr >= s.addr && vaddr < s.addr + std::max<uint64_t>(s.size, 1)) {
        return static_cast<uint16_t>(i);
      }
    }
    return 0;
  };

  StrTab strtab;
  Bytes symtab_blob(kSymSize, 0);  // null symbol
  for (const SymbolSpec& s : ordered) {
    const uint32_t name_off = strtab.Intern(s.name);
    Bytes rec(kSymSize, 0);
    StoreLe32(rec.data(), name_off);
    rec[4] = MakeSymInfo(s.bind, s.type);
    rec[5] = 0;  // st_other: default visibility
    StoreLe16(rec.data() + 6, section_index_for(s.vaddr));
    StoreLe64(rec.data() + 8, s.vaddr);
    StoreLe64(rec.data() + 16, s.size);
    AppendBytes(symtab_blob, ByteView(rec.data(), rec.size()));
  }

  // Non-alloc sections live after the dynamic region in the file.
  uint64_t cursor = dyn_offset + dyn_region_size;
  cursor = AlignUp(cursor, 8);
  const uint64_t symtab_offset = cursor;
  cursor += symtab_blob.size();
  const uint64_t strtab_offset = cursor;
  cursor += strtab.blob().size();

  const uint32_t strtab_index = static_cast<uint32_t>(sections.size() + 1);
  sections.push_back({".symtab", kShtSymtab, 0, 0, symtab_offset,
                      symtab_blob.size(), strtab_index, kSymSize});
  sections.push_back({".strtab", kShtStrtab, 0, 0, strtab_offset,
                      strtab.blob().size(), 0, 0});

  // .shstrtab content depends on all names; intern them now.
  StrTab shstrtab;
  std::vector<uint32_t> name_offsets;
  name_offsets.reserve(sections.size() + 1);
  for (const OutSection& s : sections) name_offsets.push_back(shstrtab.Intern(s.name));
  name_offsets.push_back(shstrtab.Intern(".shstrtab"));

  const uint64_t shstrtab_offset = cursor;
  sections.push_back({".shstrtab", kShtStrtab, 0, 0, shstrtab_offset,
                      shstrtab.blob().size(), 0, 0});
  cursor += shstrtab.blob().size();

  const uint64_t shoff = AlignUp(cursor, 8);
  const uint16_t shnum = static_cast<uint16_t>(sections.size());
  const uint16_t shstrndx = shnum - 1;

  // ---- Program headers ---------------------------------------------------
  struct OutPhdr {
    uint32_t type, flags;
    uint64_t offset, vaddr, filesz, memsz, align;
  };
  std::vector<OutPhdr> phdrs;
  const uint16_t phnum_est = 5;
  const uint64_t headers_size = kEhdrSize + phnum_est * kPhdrSize;
  phdrs.push_back({kPtLoad, kPfR, 0, 0, headers_size, headers_size, kPageSize});
  phdrs.push_back({kPtLoad, kPfR | kPfX, kTextStart, kTextStart,
                   TextEnd() - kTextStart, TextEnd() - kTextStart, kPageSize});
  if (data_end > data_start || bss_size_ > 0) {
    phdrs.push_back({kPtLoad, kPfR | kPfW, data_start, data_start,
                     data_end - data_start, bss_end - data_start, kPageSize});
  }
  phdrs.push_back({kPtLoad, kPfR | kPfW, dyn_offset, dyn_vaddr,
                   dyn_region_size, dyn_region_size, kPageSize});
  phdrs.push_back({kPtDynamic, kPfR | kPfW, dyn_offset + rela_size,
                   dynamic_vaddr, dynamic_size, dynamic_size, 8});
  assert(phdrs.size() <= phnum_est);
  const uint16_t phnum = static_cast<uint16_t>(phdrs.size());

  if (headers_size > kTextStart) {
    return InternalError("program headers overflow the header page");
  }

  // ---- Serialize ----------------------------------------------------------
  Bytes out(shoff + shnum * kShdrSize, 0);

  // ELF header.
  out[0] = kMag0;
  out[1] = kMag1;
  out[2] = kMag2;
  out[3] = kMag3;
  out[4] = kClass64;
  out[5] = kDataLsb;
  out[6] = kVersionCurrent;
  StoreLe16(out.data() + 16, kEtDyn);
  StoreLe16(out.data() + 18, kEmX8664);
  StoreLe32(out.data() + 20, 1);  // e_version
  StoreLe64(out.data() + 24,
            entry_ != 0 ? entry_ : text_sections_.front().vaddr);
  StoreLe64(out.data() + 32, kEhdrSize);  // e_phoff
  StoreLe64(out.data() + 40, shoff);
  StoreLe16(out.data() + 52, kEhdrSize);  // e_ehsize
  StoreLe16(out.data() + 54, kPhdrSize);
  StoreLe16(out.data() + 56, phnum);
  StoreLe16(out.data() + 58, kShdrSize);
  StoreLe16(out.data() + 60, shnum);
  StoreLe16(out.data() + 62, shstrndx);

  // Program headers.
  for (size_t i = 0; i < phdrs.size(); ++i) {
    uint8_t* p = out.data() + kEhdrSize + i * kPhdrSize;
    StoreLe32(p, phdrs[i].type);
    StoreLe32(p + 4, phdrs[i].flags);
    StoreLe64(p + 8, phdrs[i].offset);
    StoreLe64(p + 16, phdrs[i].vaddr);
    StoreLe64(p + 24, phdrs[i].vaddr);  // paddr = vaddr
    StoreLe64(p + 32, phdrs[i].filesz);
    StoreLe64(p + 40, phdrs[i].memsz);
    StoreLe64(p + 48, phdrs[i].align);
  }

  // Section content: text and data at offset == vaddr.
  for (const SectionSpec& s : text_sections_) {
    std::copy(s.content.begin(), s.content.end(), out.begin() + static_cast<long>(s.vaddr));
  }
  for (const SectionSpec& s : data_sections_) {
    std::copy(s.content.begin(), s.content.end(), out.begin() + static_cast<long>(s.vaddr));
  }

  // Relocations.
  for (size_t i = 0; i < relas_.size(); ++i) {
    uint8_t* p = out.data() + dyn_offset + i * kRelaSize;
    StoreLe64(p, relas_[i].offset);
    StoreLe64(p + 8, MakeRelaInfo(0, kRX8664Relative));
    StoreLe64(p + 16, static_cast<uint64_t>(relas_[i].addend));
  }

  // Dynamic table.
  {
    uint8_t* p = out.data() + dyn_offset + rela_size;
    auto emit = [&p](int64_t tag, uint64_t value) {
      StoreLe64(p, static_cast<uint64_t>(tag));
      StoreLe64(p + 8, value);
      p += kDynSize;
    };
    emit(kDtRela, dyn_vaddr);
    emit(kDtRelasz, rela_size);
    emit(kDtRelaent, kRelaSize);
    emit(kDtNull, 0);
  }

  // Symbol/string tables.
  std::copy(symtab_blob.begin(), symtab_blob.end(),
            out.begin() + static_cast<long>(symtab_offset));
  std::copy(strtab.blob().begin(), strtab.blob().end(),
            out.begin() + static_cast<long>(strtab_offset));
  std::copy(shstrtab.blob().begin(), shstrtab.blob().end(),
            out.begin() + static_cast<long>(shstrtab_offset));

  // Section headers.
  for (size_t i = 0; i < sections.size(); ++i) {
    uint8_t* p = out.data() + shoff + i * kShdrSize;
    const OutSection& s = sections[i];
    StoreLe32(p, name_offsets[i]);
    StoreLe32(p + 4, s.type);
    StoreLe64(p + 8, s.flags);
    StoreLe64(p + 16, s.addr);
    StoreLe64(p + 24, s.offset);
    StoreLe64(p + 32, s.size);
    StoreLe32(p + 40, s.link);
    StoreLe32(p + 44, 0);  // sh_info (unused; symtab local count is advisory)
    StoreLe64(p + 48, i == 0 ? 0 : 8);  // sh_addralign
    StoreLe64(p + 56, s.entsize);
  }
  // symtab sh_info = index of first non-local symbol.
  {
    // Find .symtab's section header index.
    for (size_t i = 0; i < sections.size(); ++i) {
      if (sections[i].name == ".symtab") {
        StoreLe32(out.data() + shoff + i * kShdrSize + 44,
                  static_cast<uint32_t>(local_count));
        break;
      }
    }
  }

  return out;
}

}  // namespace engarde::elf
