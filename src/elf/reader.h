// ElfReader: parses and validates the 64-bit ELF executables clients ship to
// EnGarde. Mirrors the loader checks from paper Section 4: signature, ELF
// class, position-independent (ET_DYN) x86-64, statically linked, and
// separated code/data sections. Also exposes the symbol table (EnGarde
// auto-rejects binaries without one — Section 6, "Recognizing Functions in
// Binary Code"), RELA relocations and the .dynamic table used for loading.
#ifndef ENGARDE_ELF_READER_H_
#define ENGARDE_ELF_READER_H_

#include <optional>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "elf/elf_types.h"

namespace engarde::elf {

class ElfFile {
 public:
  // Parses headers, sections, segments, symbols, relocations and the dynamic
  // table. The returned object keeps a copy of the raw image, so section
  // content views remain valid for its lifetime.
  static Result<ElfFile> Parse(ByteView image);

  const Ehdr& header() const { return ehdr_; }
  const std::vector<Phdr>& segments() const { return phdrs_; }
  const std::vector<Shdr>& sections() const { return shdrs_; }
  const std::vector<Sym>& symbols() const { return symbols_; }
  const std::vector<Rela>& relocations() const { return relas_; }
  const std::vector<Dyn>& dynamic() const { return dynamic_; }

  const Shdr* SectionByName(std::string_view name) const;
  // All sections with SHF_EXECINSTR — "the loader reads the program header of
  // the executable to extract all text sections".
  std::vector<const Shdr*> TextSections() const;
  // Raw content of a section (empty for SHT_NOBITS).
  Result<ByteView> SectionContent(const Shdr& section) const;

  std::optional<uint64_t> DynamicValue(int64_t tag) const;

  // The EnGarde front-door checks, in the order the paper applies them.
  // Distinct from Parse: Parse rejects *malformed* files, Validate rejects
  // well-formed files that violate EnGarde's input contract.
  Status ValidateForEnclave() const;

  ByteView image() const { return ByteView(image_.data(), image_.size()); }

 private:
  ElfFile() = default;

  Bytes image_;
  Ehdr ehdr_;
  std::vector<Phdr> phdrs_;
  std::vector<Shdr> shdrs_;
  std::vector<Sym> symbols_;
  std::vector<Rela> relas_;
  std::vector<Dyn> dynamic_;
};

}  // namespace engarde::elf

#endif  // ENGARDE_ELF_READER_H_
