#include "workload/catalog.h"

#include <string>
#include <string_view>

namespace engarde::workload {

const std::vector<CatalogEntry>& PaperBenchmarks() {
  // Columns: name, #Inst for Figures 3/4/5, then (disassembly, policy,
  // load+reloc) cycles for Figures 3, 4 and 5, exactly as printed in the
  // paper.
  static const std::vector<CatalogEntry> kEntries = {
      {"Nginx", 262228, 271106, 267669,
       694405019, 1307411662, 128696,
       719360640, 713772098, 128662,
       821734999, 20843253, 128668},
      {"401.bzip2", 24112, 24226, 24201,
       34071240, 148922245, 4239,
       34292136, 862023613, 4206,
       34235817, 1751276, 4206},
      {"Graph-500", 100411, 100488, 100424,
       140307017, 246669796, 4582,
       140588361, 195218892, 4548,
       140429738, 7014913, 4548},
      {"429.mcf", 12903, 12985, 12903,
       18242127, 123895553, 4363,
       18288921, 31459881, 4330,
       18242127, 1177429, 4330},
      {"Memcached", 71437, 71677, 71508,
       137372517, 489914732, 8115,
       137877497, 325442403, 8081,
       138231446, 5301168, 8081},
      {"Netperf", 51403, 51868, 51431,
       90616563, 367356878, 18090,
       91577335, 183274713, 18057,
       91161601, 3775318, 18057},
      {"Otp-gen", 28125, 28217, 28132,
       42823024, 198587525, 5388,
       43053386, 217302816, 5355,
       42829680, 2334847, 5355},
  };
  return kEntries;
}

Result<BuiltProgram> BuildBenchmark(const CatalogEntry& entry,
                                    BuildFlavor flavor) {
  return BuildBenchmarkScaled(entry, flavor, 1.0);
}

Result<BuiltProgram> BuildBenchmarkScaled(const CatalogEntry& entry,
                                          BuildFlavor flavor, double scale) {
  ProgramSpec spec;
  spec.name = entry.name;
  // Deterministic per-benchmark seed: the same benchmark always builds the
  // same binary, across figures the *base* program is shared and only the
  // instrumentation differs — as with a real recompile.
  spec.seed = 0xb455ull;
  for (const char* c = entry.name; *c != '\0'; ++c) {
    spec.seed = spec.seed * 131 + static_cast<uint64_t>(*c);
  }
  spec.target_instructions = static_cast<size_t>(
      static_cast<double>(entry.InstructionsFor(flavor)) * scale);
  spec.stack_protection = flavor == BuildFlavor::kStackProtector;
  spec.ifcc = flavor == BuildFlavor::kIfcc;
  spec.indirect_call_sites = flavor == BuildFlavor::kIfcc ? 8 : 0;
  // Scale the data segment roughly with the program.
  spec.data_bytes = 256 + spec.target_instructions / 64;
  spec.bss_bytes = 4096;
  return BuildProgram(spec);
}

const CatalogEntry* FindBenchmark(const char* name) {
  for (const CatalogEntry& entry : PaperBenchmarks()) {
    if (std::string_view(entry.name) == name) return &entry;
  }
  return nullptr;
}

const std::vector<GroupTopology>& GroupTopologies() {
  static const std::vector<GroupTopology> kTopologies = {
      // Replica sets: one binary, N members. The group path uploads and
      // decrypts the binary once (and, with the verdict cache, inspects it
      // once), fanning the records out to every replica.
      {"replica-set-memcached-2",
       {{"Memcached", BuildFlavor::kStackProtector, 2}}},
      {"replica-set-memcached-4",
       {{"Memcached", BuildFlavor::kStackProtector, 4}}},
      {"replica-set-otp-8",
       {{"Otp-gen", BuildFlavor::kStackProtector, 8}}},
      // Pipelines: distinct cooperating stages, mutually vouched. Every
      // binary is inspected, but attestation and channel setup amortize.
      {"pipeline-web",
       {{"Nginx", BuildFlavor::kStackProtector, 1},
        {"Memcached", BuildFlavor::kStackProtector, 1},
        {"Otp-gen", BuildFlavor::kStackProtector, 1}}},
      {"pipeline-batch",
       {{"401.bzip2", BuildFlavor::kStackProtector, 1},
        {"429.mcf", BuildFlavor::kStackProtector, 1},
        {"Graph-500", BuildFlavor::kStackProtector, 1}}},
      // Mixed: a front tier of replicas plus a distinct backing store.
      {"mixed-web-tier",
       {{"Netperf", BuildFlavor::kStackProtector, 2},
        {"Memcached", BuildFlavor::kStackProtector, 1}}},
  };
  return kTopologies;
}

Result<std::vector<BuiltProgram>> BuildGroup(const GroupTopology& topology,
                                             double scale) {
  std::vector<BuiltProgram> members;
  members.reserve(topology.MemberCount());
  for (const GroupTopologySlot& slot : topology.slots) {
    const CatalogEntry* entry = FindBenchmark(slot.benchmark);
    if (entry == nullptr) {
      return NotFoundError(std::string("unknown benchmark in topology: ") +
                           slot.benchmark);
    }
    if (slot.replicas == 0) {
      return InvalidArgumentError(std::string("topology slot with zero "
                                              "replicas: ") +
                                  slot.benchmark);
    }
    ASSIGN_OR_RETURN(BuiltProgram built,
                     BuildBenchmarkScaled(*entry, slot.flavor, scale));
    for (size_t r = 1; r < slot.replicas; ++r) {
      members.push_back(built);  // replicas: byte-identical copies
    }
    members.push_back(std::move(built));
  }
  return members;
}

}  // namespace engarde::workload
