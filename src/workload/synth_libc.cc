#include "workload/synth_libc.h"

#include <cassert>

#include "crypto/sha256.h"
#include "elf/builder.h"
#include "workload/funcgen.h"

namespace engarde::workload {
namespace {

// musl-flavoured names for the first functions; the remainder get generic
// internal names.
constexpr const char* kCoreNames[] = {
    "memcpy",   "memset",  "memmove", "strlen",  "strcmp",  "strcpy",
    "strncmp",  "malloc",  "free",    "calloc",  "realloc", "printf",
    "fprintf",  "snprintf", "fopen",  "fclose",  "fread",   "fwrite",
    "open",     "close",   "read",    "write",   "socket",  "bind",
    "listen",   "accept",  "connect", "send",    "recv",    "atoi",
    "strtol",   "getenv",  "time",    "rand",    "srand",   "qsort",
    "bsearch",  "memchr",  "strchr",  "strstr",  "abort",   "exit"};

uint32_t VersionFlavor(const std::string& version) {
  const crypto::Sha256Digest d =
      crypto::Sha256::Hash(ToBytes("synth-musl-" + version));
  return LoadLe32(d.data());
}

}  // namespace

uint64_t SynthLibrary::OffsetOf(std::string_view name) const {
  for (const SynthFunction& fn : functions) {
    if (fn.name == name) return fn.offset;
  }
  assert(false && "unknown synthetic libc function");
  return 0;
}

SynthLibrary GenerateSynthLibc(const SynthLibcOptions& options) {
  SynthLibrary library;
  BundledAsm basm(0);  // position-independent: emit at base 0
  Rng rng(options.seed ^ (static_cast<uint64_t>(VersionFlavor(options.version))
                          << 17));
  const uint32_t flavor = VersionFlavor(options.version);

  // __stack_chk_fail comes first so every later function can call it.
  basm.AlignToBundle();
  const uint64_t chk_fail_offset = basm.CurrentVaddr();
  library.functions.push_back({"__stack_chk_fail", chk_fail_offset, 0});
  basm.Emit([&](x86::Assembler& as) { as.Hlt(); });

  std::vector<uint64_t> placed;  // offsets callable by later functions
  const size_t total = options.function_count;
  for (size_t i = 0; i < total; ++i) {
    basm.AlignToBundle();
    const uint64_t offset = basm.CurrentVaddr();
    const std::string name = i < std::size(kCoreNames)
                                 ? kCoreNames[i]
                                 : "musl_internal_" + std::to_string(i);

    FuncGenConfig config;
    config.stack_protect = options.stack_protect;
    config.stack_chk_fail = chk_fail_offset;
    config.flavor = flavor;
    config.max_calls = 1;  // linear internal call chains
    const size_t filler = rng.NextInRange(40, 160);
    EmitFunction(basm, rng, config, placed, filler);

    library.functions.push_back({name, offset, basm.CurrentVaddr() - offset});
    placed.push_back(offset);
  }
  basm.AlignToBundle();

  // Record __stack_chk_fail's size now that its successor is known.
  library.functions[0].size = library.functions.size() > 1
                                  ? library.functions[1].offset
                                  : basm.size();

  library.insn_count = basm.insn_count();
  library.code = basm.TakeBytes();
  return library;
}

Result<core::LibraryHashDb> BuildLibcHashDb(const SynthLibcOptions& options) {
  const SynthLibrary library = GenerateSynthLibc(options);

  // Wrap the blob in a standalone library image, as the provider would wrap
  // (or directly read) the real musl archive.
  elf::ElfBuilder builder;
  const uint64_t text_vaddr = builder.AddTextSection(".text", library.code);
  for (const SynthFunction& fn : library.functions) {
    builder.AddSymbol(fn.name, text_vaddr + fn.offset, fn.size,
                      elf::kSttFunc);
  }
  ASSIGN_OR_RETURN(const Bytes image, builder.Build());
  ASSIGN_OR_RETURN(const elf::ElfFile elf,
                   elf::ElfFile::Parse(ByteView(image.data(), image.size())));
  return core::LibraryHashDb::FromLibraryImage(elf);
}

}  // namespace engarde::workload
