// Shared function-body generator for the synthetic libc and the synthetic
// application programs: deterministic filler code with optional
// -fstack-protector-all-style instrumentation (the exact shape from paper
// Section 5) and optional direct calls to already-placed functions.
#ifndef ENGARDE_WORKLOAD_FUNCGEN_H_
#define ENGARDE_WORKLOAD_FUNCGEN_H_

#include <vector>

#include "common/rng.h"
#include "workload/bundled_asm.h"

namespace engarde::workload {

struct FuncGenConfig {
  bool stack_protect = false;
  // Absolute vaddr of __stack_chk_fail (same address space as the assembler
  // base). Required when stack_protect is set.
  uint64_t stack_chk_fail = 0;
  // Mixed into every body so different "library versions" / programs hash
  // differently.
  uint32_t flavor = 0;
  // If true, emit the prologue/epilogue but sabotage the epilogue (no
  // reload+cmp) — the "malicious client" variant for tests.
  bool sabotage_epilogue = false;
  // Maximum direct calls this function makes into `callees`. Application
  // functions use 3 (dense call graphs, as in real programs); library
  // functions use 1 so the runtime call tree stays linear.
  size_t max_calls = 1;
};

// Emits one complete function at the current (bundle-aligned) position:
// prologue, `filler_ops` filler instructions with optional direct calls into
// `callees`, epilogue, terminator. Returns nothing; basm.insn_count()
// advances by everything emitted.
void EmitFunction(BundledAsm& basm, Rng& rng, const FuncGenConfig& config,
                  const std::vector<uint64_t>& callees, size_t filler_ops);

}  // namespace engarde::workload

#endif  // ENGARDE_WORKLOAD_FUNCGEN_H_
