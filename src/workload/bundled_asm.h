// BundledAsm: an Assembler wrapper that maintains the NaCl discipline the
// generated binaries must satisfy — no instruction may straddle a 32-byte
// bundle boundary — and counts every emitted instruction (padding NOPs
// included), so the generator can hit the paper's per-benchmark instruction
// counts exactly.
#ifndef ENGARDE_WORKLOAD_BUNDLED_ASM_H_
#define ENGARDE_WORKLOAD_BUNDLED_ASM_H_

#include <cassert>
#include <utility>

#include "x86/encoder.h"

namespace engarde::workload {

class BundledAsm {
 public:
  explicit BundledAsm(uint64_t base_vaddr) : as_(base_vaddr) {
    assert(base_vaddr % x86::kBundleSize == 0 &&
           "bundle math requires a 32-aligned base");
  }

  x86::Assembler& raw() { return as_; }
  uint64_t CurrentVaddr() const { return as_.CurrentVaddr(); }
  size_t size() const { return as_.size(); }
  size_t insn_count() const { return count_; }
  Bytes TakeBytes() { return as_.TakeBytes(); }

  // Emits exactly one instruction produced by `f` (which must not use
  // labels): measures it on a scratch assembler, pads if it would straddle a
  // bundle boundary, then re-emits at the final address (so absolute-target
  // encodings stay correct).
  template <typename F>
  void Emit(F&& f) {
    x86::Assembler scratch(as_.CurrentVaddr());
    f(scratch);
    PadFor(scratch.size());
    f(as_);
    ++count_;
  }

  // Label-based branches have fixed encodings (6 / 5 bytes).
  void EmitJccLabel(x86::Cond cond, const x86::Assembler::Label& label) {
    PadFor(6);
    as_.JccLabel(cond, label);
    ++count_;
  }
  void EmitJmpLabel(const x86::Assembler::Label& label) {
    PadFor(5);
    as_.JmpLabel(label);
    ++count_;
  }
  x86::Assembler::Label NewLabel() { return as_.NewLabel(); }
  void Bind(x86::Assembler::Label& label) { as_.Bind(label); }

  // Ensures the next `len` bytes are bundle-contiguous (len <= 32). Used for
  // instruction groups the policies require to be adjacent (canary reload +
  // cmp + jne; the IFCC guard + call).
  void ReserveContiguous(size_t len) { PadFor(len); }

  // Pads to the next bundle boundary, counting the padding NOPs.
  void AlignToBundle() {
    const size_t rem = as_.size() % x86::kBundleSize;
    if (rem == 0) return;
    const size_t pad = x86::kBundleSize - rem;
    count_ += pad / 9 + (pad % 9 != 0 ? 1 : 0);  // NopBytes chunking
    as_.NopBytes(pad);
  }

 private:
  void PadFor(size_t insn_len) {
    const size_t pos = as_.size() % x86::kBundleSize;
    if (pos + insn_len > x86::kBundleSize) AlignToBundle();
  }

  x86::Assembler as_;
  size_t count_ = 0;
};

}  // namespace engarde::workload

#endif  // ENGARDE_WORKLOAD_BUNDLED_ASM_H_
