#include "workload/program_builder.h"

#include <algorithm>
#include <cassert>

#include "elf/builder.h"
#include "workload/funcgen.h"

namespace engarde::workload {
namespace {

using x86::Assembler;

constexpr uint64_t kAppBase = 0x1000;  // ElfBuilder places .text here
constexpr int32_t kFrameSize = 0x18;
constexpr int32_t kCanarySlot = 0x10;

struct AppSymbol {
  std::string name;
  uint64_t vaddr = 0;
  uint64_t size = 0;
};

// Everything one generation pass produces. Addresses of later items depend
// on sizes of earlier ones; the caller iterates to a fixed point (sizes are
// address-independent, so the second pass converges).
struct AppText {
  Bytes code;
  size_t insn_count = 0;
  std::vector<AppSymbol> symbols;
  uint64_t entry = 0;
  uint64_t table_base = 0;          // jump table start (0 if none)
  size_t table_entries = 0;         // padded to a power of two
  std::vector<uint64_t> slot_addends;  // file vaddrs the data slots point at
};

// Layout assumptions fed forward from the previous pass.
struct LayoutGuess {
  uint64_t libc_base = 0x200000;
  uint64_t table_base = 0x100000;
  std::vector<uint64_t> fn_addrs;   // app function addresses
  uint64_t data_base = 0x300000;    // for RIP-relative slot loads
};

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

AppText GenerateAppText(const ProgramSpec& spec, const SynthLibrary& libc,
                        const LayoutGuess& guess) {
  AppText out;
  BundledAsm basm(kAppBase);
  Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 1);

  const uint64_t chk_fail = guess.libc_base + libc.OffsetOf("__stack_chk_fail");
  const uint32_t flavor = static_cast<uint32_t>(spec.seed * 2654435761u);

  std::vector<uint64_t> libc_addrs;
  libc_addrs.reserve(libc.functions.size());
  for (const SynthFunction& fn : libc.functions) {
    if (fn.name == "__stack_chk_fail") continue;
    libc_addrs.push_back(guess.libc_base + fn.offset);
  }

  // ---- Budget ---------------------------------------------------------------
  // Instruction budget for the application text: everything except libc.
  const size_t budget =
      spec.target_instructions > libc.insn_count + 64
          ? spec.target_instructions - libc.insn_count
          : 64;

  // ---- _start -----------------------------------------------------------------
  // call main; hlt. main's address is taken from the previous pass.
  out.entry = basm.CurrentVaddr();
  const uint64_t main_guess =
      guess.fn_addrs.empty() ? kAppBase + 64 : guess.fn_addrs[0];
  out.symbols.push_back({"_start", basm.CurrentVaddr(), 0});
  basm.Emit([&](Assembler& as) { as.CallAbs(main_guess); });
  basm.Emit([&](Assembler& as) { as.Hlt(); });
  out.symbols.back().size = basm.CurrentVaddr() - out.symbols.back().vaddr;
  basm.AlignToBundle();

  // ---- main ---------------------------------------------------------------------
  const bool emit_indirect = spec.ifcc || spec.unguarded_indirect_call;
  const size_t sites = emit_indirect ? std::max<size_t>(spec.indirect_call_sites, 1) : 0;

  out.symbols.push_back({"main", basm.CurrentVaddr(), 0});
  {
    if (spec.stack_protection) {
      basm.Emit([&](Assembler& as) { as.SubRegImm32(x86::kRsp, kFrameSize); });
      basm.Emit([&](Assembler& as) { as.MovRegFsDisp(x86::kRax, 0x28); });
      basm.Emit([&](Assembler& as) {
        as.MovStore(x86::kRsp, kCanarySlot, x86::kRax);
      });
    }
    basm.Emit([&](Assembler& as) { as.MovRegImm32(x86::kRax, flavor); });

    // Direct calls into a few application functions and libc.
    const size_t direct_calls = std::min<size_t>(4, guess.fn_addrs.size() > 1
                                                       ? guess.fn_addrs.size() - 1
                                                       : 0);
    for (size_t i = 0; i < direct_calls; ++i) {
      const uint64_t target = guess.fn_addrs[1 + i];
      basm.Emit([&](Assembler& as) { as.CallAbs(target); });
    }
    if (!libc_addrs.empty()) {
      basm.Emit([&](Assembler& as) {
        as.CallAbs(libc_addrs[rng.NextBelow(libc_addrs.size())]);
      });
    }

    // Indirect call sites.
    const size_t padded_entries = NextPow2(std::max<size_t>(sites, 1));
    const int32_t ifcc_mask = static_cast<int32_t>((padded_entries - 1) * 8);
    for (size_t site = 0; site < sites; ++site) {
      const uint64_t slot_vaddr = guess.data_base + site * 8;
      basm.Emit([&](Assembler& as) {
        as.MovLoadRipRelTo(x86::kRcx, slot_vaddr);
      });
      if (spec.unguarded_indirect_call) {
        basm.Emit([&](Assembler& as) { as.CallIndirectReg(x86::kRcx); });
        continue;
      }
      // The policy requires lea/sub/and/add/call adjacency (7+2+7+3+2 = 21).
      basm.ReserveContiguous(21);
      basm.Emit([&](Assembler& as) {
        as.LeaRipRelTo(x86::kRax, guess.table_base);
      });
      basm.Emit([&](Assembler& as) { as.SubRegReg32(x86::kRcx, x86::kRax); });
      basm.Emit([&](Assembler& as) { as.AndRegImm32(x86::kRcx, ifcc_mask); });
      basm.Emit([&](Assembler& as) { as.AddRegReg(x86::kRcx, x86::kRax); });
      basm.Emit([&](Assembler& as) { as.CallIndirectReg(x86::kRcx); });
    }

    if (spec.stack_protection) {
      auto fail = basm.NewLabel();
      basm.ReserveContiguous(20);
      basm.Emit([&](Assembler& as) { as.MovRegFsDisp(x86::kRcx, 0x28); });
      basm.Emit([&](Assembler& as) {
        as.CmpRegMem(x86::kRcx, x86::kRsp, kCanarySlot);
      });
      basm.EmitJccLabel(x86::kCondNe, fail);
      basm.Emit([&](Assembler& as) { as.AddRegImm32(x86::kRsp, kFrameSize); });
      basm.Emit([&](Assembler& as) { as.Ret(); });
      // No padding between the label and the callq (see funcgen.cc).
      basm.ReserveContiguous(6);
      basm.Bind(fail);
      basm.Emit([&](Assembler& as) { as.CallAbs(chk_fail); });
      basm.Emit([&](Assembler& as) { as.Hlt(); });
    } else {
      basm.Emit([&](Assembler& as) { as.Ret(); });
    }
  }
  out.symbols.back().size = basm.CurrentVaddr() - out.symbols.back().vaddr;
  basm.AlignToBundle();

  // ---- Application functions --------------------------------------------------
  std::vector<uint64_t> fn_addrs;  // [0] = main, then fn_0, fn_1, ...
  fn_addrs.push_back(out.symbols[1].vaddr);

  size_t fn_index = 0;
  const size_t sabotage_index = 0;  // deterministic victim: fn_0 always exists
  // Reserve room for the jump table in the budget (2 insns per entry).
  const size_t table_budget =
      spec.ifcc ? 2 * NextPow2(std::max<size_t>(sites, 1)) + 4 : 0;
  while (basm.insn_count() + 48 + table_budget < budget) {
    basm.AlignToBundle();
    const uint64_t vaddr = basm.CurrentVaddr();
    FuncGenConfig config;
    config.stack_protect = spec.stack_protection;
    config.stack_chk_fail = chk_fail;
    config.flavor = flavor;
    config.max_calls = 6;  // dense call graph into libc (drives Figure 3)
    config.sabotage_epilogue =
        spec.sabotage_one_function && fn_index == sabotage_index;
    const size_t remaining = budget - table_budget - basm.insn_count();
    const size_t filler = std::min<size_t>(
        rng.NextInRange(40, 160), remaining > 64 ? remaining - 32 : 1);
    // Callees: libc plus strictly earlier app functions (first three only) —
    // earlier-only keeps the runtime call graph acyclic so any generated
    // program terminates under the interpreter.
    std::vector<uint64_t> callees = libc_addrs;
    for (size_t j = 1; j < guess.fn_addrs.size() && j <= 3 && j <= fn_index;
         ++j) {
      callees.push_back(guess.fn_addrs[j]);
    }
    EmitFunction(basm, rng, config, callees, filler);
    out.symbols.push_back({"fn_" + std::to_string(fn_index), vaddr,
                           basm.CurrentVaddr() - vaddr});
    fn_addrs.push_back(vaddr);
    ++fn_index;
  }

  // ---- IFCC jump table -----------------------------------------------------------
  if (spec.ifcc) {
    basm.AlignToBundle();
    out.table_base = basm.CurrentVaddr();
    const size_t padded_entries = NextPow2(std::max<size_t>(sites, 1));
    out.table_entries = padded_entries;
    // Targets: cycle through the generated functions (skip _start).
    std::vector<uint64_t> targets;
    for (size_t i = 1; i < out.symbols.size() && targets.size() < padded_entries;
         ++i) {
      if (out.symbols[i].name == "main") continue;
      targets.push_back(out.symbols[i].vaddr);
    }
    if (targets.empty()) targets.push_back(out.symbols[1].vaddr);

    for (size_t entry = 0; entry < padded_entries; ++entry) {
      const uint64_t entry_vaddr = basm.CurrentVaddr();
      assert(entry_vaddr % 8 == 0);
      const uint64_t target = targets[entry % targets.size()];
      // jmpq <fn> (5) ; nopl (%rax) (3) — one 8-byte entry.
      basm.Emit([&](Assembler& as) { as.JmpAbs(target); });
      basm.Emit([&](Assembler& as) { as.NopMem(); });
      out.symbols.push_back({"__llvm_jump_instr_table_0_" +
                                 std::to_string(entry),
                             entry_vaddr, 8});
    }
    basm.AlignToBundle();

    // Data slots point at the first `sites` table entries.
    for (size_t site = 0; site < sites; ++site) {
      out.slot_addends.push_back(out.table_base + site * 8);
    }
  } else if (spec.unguarded_indirect_call) {
    // Slots point straight at functions — no table.
    for (size_t site = 0; site < sites; ++site) {
      out.slot_addends.push_back(
          fn_addrs[std::min<size_t>(1 + site, fn_addrs.size() - 1)]);
    }
  }

  basm.AlignToBundle();
  out.insn_count = basm.insn_count();
  out.code = basm.TakeBytes();
  return out;
}

}  // namespace

Result<BuiltProgram> BuildProgram(const ProgramSpec& spec) {
  SynthLibcOptions libc_options = spec.libc;
  libc_options.stack_protect = spec.stack_protection;
  SynthLibrary libc = GenerateSynthLibc(libc_options);
  // Small programs link against a slimmer libc (as real small programs pull
  // in fewer objects from the archive): keep the library under half of the
  // instruction budget so application code exists at every scale.
  while (libc.insn_count * 2 > spec.target_instructions &&
         libc_options.function_count > 8) {
    libc_options.function_count /= 2;
    libc = GenerateSynthLibc(libc_options);
  }

  // Fixed-point generation: addresses stabilize after the second pass
  // because every encoding the generator emits has an address-independent
  // length.
  LayoutGuess guess;
  AppText app;
  for (int pass = 0; pass < 8; ++pass) {
    app = GenerateAppText(spec, libc, guess);

    LayoutGuess next;
    next.libc_base = (kAppBase + app.code.size() + 31) & ~uint64_t{31};
    next.table_base = app.table_base;
    next.data_base =
        elf::PageAlignUp(next.libc_base + libc.code.size());
    for (const AppSymbol& symbol : app.symbols) {
      if (symbol.name == "main") {
        next.fn_addrs.insert(next.fn_addrs.begin(), symbol.vaddr);
      } else if (symbol.name.rfind("fn_", 0) == 0) {
        next.fn_addrs.push_back(symbol.vaddr);
      }
    }
    const bool stable = next.libc_base == guess.libc_base &&
                        next.table_base == guess.table_base &&
                        next.data_base == guess.data_base &&
                        next.fn_addrs == guess.fn_addrs;
    guess = std::move(next);
    if (stable) break;
    if (pass == 7) {
      return InternalError("program layout did not converge");
    }
  }

  // ---- Assemble the ELF ------------------------------------------------------
  elf::ElfBuilder builder;
  const uint64_t app_vaddr = builder.AddTextSection(".text", app.code);
  if (app_vaddr != kAppBase) {
    return InternalError("unexpected .text placement");
  }
  const uint64_t libc_vaddr =
      builder.AddTextSection(".text.libc", libc.code);
  if (libc_vaddr != guess.libc_base) {
    return InternalError("libc base mismatch after convergence");
  }

  // Data: pointer slots first, then filler bytes.
  Rng data_rng(spec.seed ^ 0xda7a);
  const size_t slot_bytes = app.slot_addends.size() * 8;
  Bytes data(slot_bytes, 0);
  const Bytes filler_data = data_rng.NextBytes(spec.data_bytes);
  AppendBytes(data, ByteView(filler_data.data(), filler_data.size()));
  const uint64_t data_vaddr = builder.AddDataSection(".data", data);
  if (data_vaddr != guess.data_base) {
    return InternalError("data base mismatch after convergence");
  }
  if (spec.bss_bytes > 0) builder.AddBss(spec.bss_bytes);

  // Relocations: each slot gets base + addend at load time.
  for (size_t i = 0; i < app.slot_addends.size(); ++i) {
    builder.AddRelativeRelocation(data_vaddr + i * 8,
                                  static_cast<int64_t>(app.slot_addends[i]));
  }

  // Symbols.
  for (const AppSymbol& symbol : app.symbols) {
    builder.AddSymbol(symbol.name, symbol.vaddr, symbol.size, elf::kSttFunc);
  }
  for (const SynthFunction& fn : libc.functions) {
    builder.AddSymbol(fn.name, libc_vaddr + fn.offset, fn.size,
                      elf::kSttFunc);
  }
  builder.AddSymbol("__data_start", data_vaddr, data.size(), elf::kSttObject);
  builder.SetEntry(app.entry);

  ASSIGN_OR_RETURN(Bytes image, builder.Build());

  BuiltProgram built;
  built.name = spec.name;
  built.image = std::move(image);
  built.emitted_insn_count = app.insn_count + libc.insn_count;
  built.libc_options = libc_options;
  return built;
}

}  // namespace engarde::workload
