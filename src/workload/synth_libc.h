// Synthetic stand-in for musl-libc (paper Section 5 links every benchmark
// against musl-libc v1.0.5 "to keep the size of the executables small").
// We do not have musl's sources in this environment, so we *simulate* the
// library: a deterministic, position-independent corpus of functions with
// musl-style names, generated from a seed. The "version" knob perturbs every
// function body, so v1.0.4 and v1.0.5 hash differently — reproducing exactly
// the property the library-linking policy checks.
//
// The blob is position-independent (internal calls are rel32), so the same
// bytes can be embedded as a .text.libc section in any program, and the
// per-function SHA-256 digests computed from the standalone library image
// match the digests of the linked copy.
#ifndef ENGARDE_WORKLOAD_SYNTH_LIBC_H_
#define ENGARDE_WORKLOAD_SYNTH_LIBC_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/library_db.h"

namespace engarde::workload {

struct SynthLibcOptions {
  std::string version = "1.0.5";
  size_t function_count = 48;  // includes the named core functions
  // Instrument library functions with stack protectors (the library must be
  // compiled the same way as the application for Figure-4 configurations).
  bool stack_protect = false;
  uint64_t seed = 0x5eed;

  bool operator==(const SynthLibcOptions&) const = default;
};

struct SynthFunction {
  std::string name;
  uint64_t offset = 0;  // from blob start
  uint64_t size = 0;
};

struct SynthLibrary {
  Bytes code;  // position-independent; place at any 32-aligned vaddr
  std::vector<SynthFunction> functions;  // ascending offset
  size_t insn_count = 0;

  uint64_t OffsetOf(std::string_view name) const;  // asserts existence
};

// Deterministic generation: same options -> bit-identical blob.
SynthLibrary GenerateSynthLibc(const SynthLibcOptions& options);

// Builds the reference hash database the provider distributes: wraps the
// blob in a standalone library ELF image and hashes every function, exactly
// as LibraryHashDb::FromLibraryImage would over real musl.
Result<core::LibraryHashDb> BuildLibcHashDb(const SynthLibcOptions& options);

}  // namespace engarde::workload

#endif  // ENGARDE_WORKLOAD_SYNTH_LIBC_H_
