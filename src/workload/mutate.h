// Deterministic in-place function mutation for re-upload experiments: the
// verdict-cache tests and benches need "the same binary with k of N
// functions changed". Mutating a real instruction stream safely means
// preserving instruction boundaries and NaCl structure, so the mutator only
// flips a byte inside the 4-byte immediate of a non-branch ALU/mov
// instruction — the decode, symbol table and page classification are
// untouched; only the mutated functions' bytes (and hence digests) change.
//
// Mutating an application function (fn_*) keeps the binary fully compliant;
// mutating a library-named function changes a body the library-linking
// policy hashes, so the re-upload is rejected with the standard
// wrong-library-version violation — the "mutation that introduces a policy
// violation" case.
#ifndef ENGARDE_WORKLOAD_MUTATE_H_
#define ENGARDE_WORKLOAD_MUTATE_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace engarde::workload {

struct MutationOptions {
  // How many functions to mutate, evenly spaced over the eligible set (so
  // "10% changed" spreads across the binary instead of clustering).
  size_t count = 1;
  // false = application functions (binary stays compliant); true = functions
  // the library database names (introduces a library-linking violation).
  bool library_functions = false;
  // Mutate exactly these functions instead of count/library selection.
  std::vector<std::string> only_names;
};

// Flips one immediate byte in each selected function of the ELF `image`,
// in place. Returns the names of the functions actually mutated; an error if
// a requested function has no safely mutable instruction.
Result<std::vector<std::string>> MutateFunctions(Bytes& image,
                                                 const MutationOptions& options);

// Number of functions eligible for the given selection mode — the N in
// "k of N changed".
Result<size_t> CountMutableFunctions(const Bytes& image, bool library_functions);

}  // namespace engarde::workload

#endif  // ENGARDE_WORKLOAD_MUTATE_H_
