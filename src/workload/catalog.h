// The paper's benchmark suite (Section 5): "Nginx (an HTTP server),
// Memcached (a popular key-value store), Netperf (a networking benchmark),
// otp-gen (a password generator), graph-500 (a graph data benchmark) and two
// SPEC benchmarks (401.bzip2 and 429.mcf)", all compiled as statically
// linked PIEs against musl-libc.
//
// We do not have those programs (or clang-3.6/musl) in this environment; the
// catalog reproduces each one as a synthetic program with the *same
// instruction count* the paper reports in Figure 3, since every cost the
// evaluation measures (disassembly, policy checking, loading) is a function
// of the instruction stream, not of what the program computes.
#ifndef ENGARDE_WORKLOAD_CATALOG_H_
#define ENGARDE_WORKLOAD_CATALOG_H_

#include <vector>

#include "workload/program_builder.h"

namespace engarde::workload {

// Which instrumentation the benchmark build carries — one per evaluated
// policy (Figures 3, 4, 5).
enum class BuildFlavor {
  kPlain,           // Figure 3: library-linking check
  kStackProtector,  // Figure 4: clang -fstack-protector-all
  kIfcc,            // Figure 5: LLVM IFCC patch
};

struct CatalogEntry {
  const char* name;
  // #Inst as the paper reports it per figure: the instrumented builds are
  // larger binaries (e.g. Nginx 262,228 plain -> 271,106 with stack
  // protectors -> 267,669 with IFCC).
  size_t fig3_instructions;
  size_t fig4_instructions;
  size_t fig5_instructions;
  // Paper-reported cycle counts, for side-by-side output in the benches.
  uint64_t fig3_disasm_cycles, fig3_policy_cycles, fig3_load_cycles;
  uint64_t fig4_disasm_cycles, fig4_policy_cycles, fig4_load_cycles;
  uint64_t fig5_disasm_cycles, fig5_policy_cycles, fig5_load_cycles;

  size_t InstructionsFor(BuildFlavor flavor) const {
    switch (flavor) {
      case BuildFlavor::kPlain: return fig3_instructions;
      case BuildFlavor::kStackProtector: return fig4_instructions;
      case BuildFlavor::kIfcc: return fig5_instructions;
    }
    return fig3_instructions;
  }
};

// The seven benchmarks with the paper's published numbers.
const std::vector<CatalogEntry>& PaperBenchmarks();

// Builds the synthetic equivalent of a catalog entry at the paper's
// instruction scale.
Result<BuiltProgram> BuildBenchmark(const CatalogEntry& entry,
                                    BuildFlavor flavor);

// Same, scaled: target_instructions multiplied by `scale` (tests use < 1).
Result<BuiltProgram> BuildBenchmarkScaled(const CatalogEntry& entry,
                                          BuildFlavor flavor, double scale);

// Looks a benchmark up by its catalog name ("Nginx", "Memcached", ...).
const CatalogEntry* FindBenchmark(const char* name);

// ---- Fleet topologies -------------------------------------------------------
//
// A deployment shape for the group-provisioning path: an ordered member list
// where `replicas` copies of one benchmark share the identical binary — and
// therefore one upload class, one verdict-cache key, and one inspection.
// Pipelines mix distinct binaries that attest as one mutually-vouching group.

struct GroupTopologySlot {
  const char* benchmark;  // catalog name, see PaperBenchmarks()
  BuildFlavor flavor;
  size_t replicas;
};

struct GroupTopology {
  const char* name;
  std::vector<GroupTopologySlot> slots;

  size_t MemberCount() const {
    size_t n = 0;
    for (const GroupTopologySlot& slot : slots) n += slot.replicas;
    return n;
  }
};

// The deployment shapes the group benchmarks sweep: replica sets (N identical
// servers behind a balancer) and pipelines (distinct cooperating stages).
const std::vector<GroupTopology>& GroupTopologies();

// Materializes the topology's member binaries in declaration order at
// `scale`; replicas of a slot are byte-identical copies of one build.
Result<std::vector<BuiltProgram>> BuildGroup(const GroupTopology& topology,
                                             double scale);

}  // namespace engarde::workload

#endif  // ENGARDE_WORKLOAD_CATALOG_H_
