#include "workload/funcgen.h"

namespace engarde::workload {
namespace {

using x86::Assembler;
using x86::Reg;

// Scratch registers for filler code: everything except rsp/rbp (frame) and
// rax (accumulator with a defined role).
constexpr Reg kScratch[] = {x86::kRcx, x86::kRdx, x86::kRsi, x86::kRdi,
                            x86::kR8,  x86::kR9,  x86::kR10, x86::kR11};

Reg PickScratch(Rng& rng) {
  return kScratch[rng.NextBelow(std::size(kScratch))];
}

// One filler instruction drawn from a fixed distribution: register ALU ops,
// local branches, and stack spills/reloads below the stack pointer (real
// compiled code stores to the frame constantly — and those stores are what
// makes the paper's stack-protection check expensive, since every one
// triggers a backward dataflow scan).
void EmitFillerOp(BundledAsm& basm, Rng& rng, uint32_t flavor) {
  const Reg a = PickScratch(rng);
  const Reg b = PickScratch(rng);
  switch (rng.NextBelow(13)) {
    case 0:
      basm.Emit([&](Assembler& as) {
        as.MovRegImm32(a, static_cast<uint32_t>(rng.NextU32() ^ flavor));
      });
      break;
    case 1:
      basm.Emit([&](Assembler& as) { as.AddRegReg(a, b); });
      break;
    case 2:
      basm.Emit([&](Assembler& as) { as.XorRegReg(a, b); });
      break;
    case 3:
      basm.Emit([&](Assembler& as) { as.SubRegReg(a, b); });
      break;
    case 4:
      basm.Emit([&](Assembler& as) { as.ImulRegReg(a, b); });
      break;
    case 5:
      basm.Emit([&](Assembler& as) {
        as.ShlRegImm8(a, static_cast<uint8_t>(rng.NextInRange(1, 13)));
      });
      break;
    case 6:
      basm.Emit([&](Assembler& as) { as.OrRegReg(a, b); });
      break;
    case 7:
      basm.Emit([&](Assembler& as) {
        as.AddRegImm32(a, static_cast<int32_t>(rng.NextU32() & 0xffff));
      });
      break;
    case 8:
      basm.Emit([&](Assembler& as) { as.MovRegReg(a, b); });
      break;
    case 9: {
      // Short forward branch over a couple of filler instructions: gives the
      // code realistic local control flow.
      auto skip = basm.NewLabel();
      basm.Emit([&](Assembler& as) {
        as.CmpRegImm32(a, static_cast<int32_t>(rng.NextBelow(100)));
      });
      basm.EmitJccLabel(rng.NextChance(1, 2) ? x86::kCondE : x86::kCondL, skip);
      basm.Emit([&](Assembler& as) { as.XorRegReg(b, b); });
      basm.Emit([&](Assembler& as) { as.AddRegImm32(b, 1); });
      basm.Bind(skip);
      break;
    }
    case 10:
    case 11: {
      // Spill to the frame (below rsp, clear of the canary slot).
      const int32_t disp =
          -8 * static_cast<int32_t>(rng.NextInRange(1, 8));
      basm.Emit([&](Assembler& as) { as.MovStore(x86::kRsp, disp, a); });
      break;
    }
    case 12: {
      // Reload from the frame.
      const int32_t disp =
          -8 * static_cast<int32_t>(rng.NextInRange(1, 8));
      basm.Emit([&](Assembler& as) { as.MovLoad(a, x86::kRsp, disp); });
      break;
    }
  }
}

}  // namespace

void EmitFunction(BundledAsm& basm, Rng& rng, const FuncGenConfig& config,
                  const std::vector<uint64_t>& callees, size_t filler_ops) {
  constexpr int32_t kFrameSize = 0x18;
  constexpr int32_t kCanarySlot = 0x10;

  // ---- Prologue ----------------------------------------------------------
  if (config.stack_protect) {
    basm.Emit([&](Assembler& as) { as.SubRegImm32(x86::kRsp, kFrameSize); });
    // mov %fs:0x28, %rax ; mov %rax, 0x10(%rsp)
    basm.Emit([&](Assembler& as) { as.MovRegFsDisp(x86::kRax, 0x28); });
    basm.Emit([&](Assembler& as) {
      as.MovStore(x86::kRsp, kCanarySlot, x86::kRax);
    });
  }

  // ---- Body ----------------------------------------------------------------
  // Seed the accumulator with a flavor-dependent constant: this is what makes
  // two "library versions" differ byte-for-byte in every function.
  basm.Emit([&](Assembler& as) {
    as.MovRegImm32(x86::kRax, config.flavor ^ static_cast<uint32_t>(rng.NextU32()));
  });
  size_t remaining = filler_ops;
  size_t calls_made = 0;
  while (remaining > 0) {
    if (calls_made < config.max_calls && !callees.empty() &&
        rng.NextChance(1, 4)) {
      const uint64_t target = callees[rng.NextBelow(callees.size())];
      basm.Emit([&](Assembler& as) { as.CallAbs(target); });
      ++calls_made;
    } else {
      EmitFillerOp(basm, rng, config.flavor);
    }
    --remaining;
  }
  // Fold a scratch register into the result so the body is not dead code.
  basm.Emit([&](Assembler& as) { as.AddRegReg(x86::kRax, x86::kRcx); });

  // ---- Epilogue ------------------------------------------------------------
  if (config.stack_protect && !config.sabotage_epilogue) {
    // The policy requires reload / cmp / jne to be adjacent, so keep the
    // triple inside one bundle (9 + 5 + 6 = 20 bytes).
    auto fail = basm.NewLabel();
    basm.ReserveContiguous(20);
    basm.Emit([&](Assembler& as) { as.MovRegFsDisp(x86::kRcx, 0x28); });
    basm.Emit([&](Assembler& as) {
      as.CmpRegMem(x86::kRcx, x86::kRsp, kCanarySlot);
    });
    basm.EmitJccLabel(x86::kCondNe, fail);
    basm.Emit([&](Assembler& as) { as.AddRegImm32(x86::kRsp, kFrameSize); });
    basm.Emit([&](Assembler& as) { as.Ret(); });
    // The jne must land exactly on the callq (the policy resolves the branch
    // target), so make sure no bundle padding lands after the label.
    basm.ReserveContiguous(6);
    basm.Bind(fail);
    basm.Emit([&](Assembler& as) { as.CallAbs(config.stack_chk_fail); });
    basm.Emit([&](Assembler& as) { as.Hlt(); });
  } else if (config.stack_protect) {
    // Sabotaged: tear the frame down without checking the canary.
    basm.Emit([&](Assembler& as) { as.AddRegImm32(x86::kRsp, kFrameSize); });
    basm.Emit([&](Assembler& as) { as.Ret(); });
  } else {
    basm.Emit([&](Assembler& as) { as.Ret(); });
  }
}

}  // namespace engarde::workload
