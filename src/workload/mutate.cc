#include "workload/mutate.h"

#include <algorithm>

#include "core/symbol_table.h"
#include "elf/reader.h"
#include "x86/decoder.h"
#include "x86/insn_buffer.h"

namespace engarde::workload {
namespace {

// Application-private functions are the fn_* bodies (plus main); everything
// else in the synthetic programs' symbol tables comes from the embedded
// libc, which the library database names and the linking policy hashes.
bool IsLibraryFunction(const std::string& name) {
  return name.rfind("fn_", 0) != 0 && name != "main";
}

// A byte we can flip without perturbing decode or NaCl structure: inside the
// 4-byte immediate of a non-branch instruction (mov/add reg, imm32 filler —
// the generators emit these densely). Branches encode their rel32 in the
// immediate slot, so they are excluded.
bool SafelyMutable(const x86::Insn& insn) {
  return insn.imm_len == 4 && !insn.IsDirectBranch() &&
         insn.src.kind == x86::OperandKind::kImm;
}

struct DecodedImage {
  elf::ElfFile elf;
  core::SymbolHashTable symbols;
  std::unique_ptr<x86::InsnBuffer> insns;
};

Result<DecodedImage> Decode(const Bytes& image) {
  ASSIGN_OR_RETURN(elf::ElfFile elf,
                   elf::ElfFile::Parse(ByteView(image.data(), image.size())));
  auto insns = std::make_unique<x86::InsnBuffer>([](size_t) {});
  for (const elf::Shdr* section : elf.TextSections()) {
    ASSIGN_OR_RETURN(const ByteView content, elf.SectionContent(*section));
    RETURN_IF_ERROR(
        x86::DecodeSectionInto(content, section->addr, nullptr, *insns));
  }
  core::SymbolHashTable symbols = core::SymbolHashTable::Build(elf);
  return DecodedImage{std::move(elf), std::move(symbols), std::move(insns)};
}

bool HasMutableInsn(const x86::InsnBuffer& insns,
                    const core::SymbolHashTable::Function& fn) {
  size_t index = insns.IndexOfAddr(fn.start);
  for (; index != x86::InsnBuffer::npos && index < insns.size(); ++index) {
    if (insns[index].addr >= fn.end) break;
    if (SafelyMutable(insns[index])) return true;
  }
  return false;
}

// File offset of vaddr `addr` (which must lie in a text section).
Result<size_t> FileOffsetOf(const elf::ElfFile& elf, uint64_t addr) {
  for (const elf::Shdr* section : elf.TextSections()) {
    if (addr >= section->addr && addr < section->addr + section->size) {
      return static_cast<size_t>(section->offset + (addr - section->addr));
    }
  }
  return NotFoundError("vaddr outside every text section");
}

}  // namespace

Result<std::vector<std::string>> MutateFunctions(
    Bytes& image, const MutationOptions& options) {
  ASSIGN_OR_RETURN(DecodedImage decoded, Decode(image));
  const x86::InsnBuffer& insns = *decoded.insns;

  std::vector<const core::SymbolHashTable::Function*> targets;
  if (!options.only_names.empty()) {
    for (const std::string& name : options.only_names) {
      const core::SymbolHashTable::Function* fn = nullptr;
      for (const core::SymbolHashTable::Function& candidate :
           decoded.symbols.functions()) {
        if (candidate.name == name) {
          fn = &candidate;
          break;
        }
      }
      if (fn == nullptr) return NotFoundError("no function named " + name);
      targets.push_back(fn);
    }
  } else {
    std::vector<const core::SymbolHashTable::Function*> eligible;
    for (const core::SymbolHashTable::Function& fn :
         decoded.symbols.functions()) {
      if (IsLibraryFunction(fn.name) == options.library_functions &&
          HasMutableInsn(insns, fn)) {
        eligible.push_back(&fn);
      }
    }
    if (options.count > eligible.size()) {
      return OutOfRangeError("asked to mutate " +
                             std::to_string(options.count) + " of " +
                             std::to_string(eligible.size()) + " functions");
    }
    const size_t stride = std::max<size_t>(1, eligible.size() / options.count);
    for (size_t i = 0; i < options.count; ++i) {
      targets.push_back(eligible[std::min(i * stride, eligible.size() - 1)]);
    }
  }

  std::vector<std::string> mutated;
  mutated.reserve(targets.size());
  for (const core::SymbolHashTable::Function* fn : targets) {
    size_t index = insns.IndexOfAddr(fn->start);
    bool flipped = false;
    for (; index != x86::InsnBuffer::npos && index < insns.size(); ++index) {
      const x86::Insn& insn = insns[index];
      if (insn.addr >= fn->end) break;
      if (!SafelyMutable(insn)) continue;
      // The immediate is the trailing imm_len bytes of the encoding.
      ASSIGN_OR_RETURN(
          const size_t offset,
          FileOffsetOf(decoded.elf, insn.addr + insn.length - insn.imm_len));
      image[offset] ^= 0x5a;
      flipped = true;
      break;
    }
    if (!flipped) {
      return FailedPreconditionError("function " + fn->name +
                                     " has no safely mutable instruction");
    }
    mutated.push_back(fn->name);
  }
  return mutated;
}

Result<size_t> CountMutableFunctions(const Bytes& image,
                                     bool library_functions) {
  ASSIGN_OR_RETURN(const DecodedImage decoded, Decode(image));
  size_t count = 0;
  for (const core::SymbolHashTable::Function& fn :
       decoded.symbols.functions()) {
    if (IsLibraryFunction(fn.name) == library_functions &&
        HasMutableInsn(*decoded.insns, fn)) {
      ++count;
    }
  }
  return count;
}

}  // namespace engarde::workload
