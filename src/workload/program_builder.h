// Synthesizes the client executables for the evaluation: NaCl-clean x86-64
// ELF PIEs, statically "linked" against the synthetic musl, with the paper's
// three instrumentations togglable — stack protectors (Figure 4), IFCC jump
// tables + guards (Figure 5) — plus deliberately non-compliant variants for
// the rejection tests. Instruction counts are steered to the exact
// per-benchmark sizes the paper reports.
#ifndef ENGARDE_WORKLOAD_PROGRAM_BUILDER_H_
#define ENGARDE_WORKLOAD_PROGRAM_BUILDER_H_

#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "workload/synth_libc.h"

namespace engarde::workload {

struct ProgramSpec {
  std::string name = "program";
  uint64_t seed = 1;
  // Total decoded instructions (application + jump table + libc + padding).
  // The builder lands within a fraction of a percent of this.
  size_t target_instructions = 8000;

  // Instrumentation the "compiler" applied.
  bool stack_protection = false;
  bool ifcc = false;
  size_t indirect_call_sites = 4;  // emitted when ifcc or unguarded variant

  // Malicious-client variants for rejection tests.
  bool unguarded_indirect_call = false;   // indirect calls with no IFCC guard
  bool sabotage_one_function = false;     // one function missing its epilogue

  SynthLibcOptions libc;  // stack_protect is forced to match the program

  size_t data_bytes = 512;
  size_t bss_bytes = 4096;
};

struct BuiltProgram {
  std::string name;
  Bytes image;                 // the ELF executable
  size_t emitted_insn_count;   // exact, counted during generation
  SynthLibcOptions libc_options;  // what the library db must be built from
};

Result<BuiltProgram> BuildProgram(const ProgramSpec& spec);

}  // namespace engarde::workload

#endif  // ENGARDE_WORKLOAD_PROGRAM_BUILDER_H_
