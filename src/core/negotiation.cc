#include "core/negotiation.h"

#include <algorithm>

namespace engarde::core {
namespace {

Bytes SerializeStringList(const std::vector<std::string>& strings) {
  Bytes out;
  AppendLe32(out, static_cast<uint32_t>(strings.size()));
  for (const std::string& s : strings) {
    AppendLe32(out, static_cast<uint32_t>(s.size()));
    AppendBytes(out, ToBytes(s));
  }
  return out;
}

Result<std::vector<std::string>> DeserializeStringList(ByteView data) {
  ByteReader reader(data);
  uint32_t count = 0;
  if (!reader.ReadLe32(count) || count > 1024) {
    return ProtocolError("malformed policy list header");
  }
  std::vector<std::string> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    ByteView bytes;
    if (!reader.ReadLe32(len) || len > 4096 || !reader.ReadBytes(len, bytes)) {
      return ProtocolError("malformed policy list entry");
    }
    out.push_back(ToString(bytes));
  }
  if (!reader.AtEnd()) return ProtocolError("policy list has trailing bytes");
  return out;
}

}  // namespace

Bytes PolicyOffer::Serialize() const { return SerializeStringList(fingerprints); }

Result<PolicyOffer> PolicyOffer::Deserialize(ByteView data) {
  ASSIGN_OR_RETURN(auto fingerprints, DeserializeStringList(data));
  return PolicyOffer{std::move(fingerprints)};
}

PolicyOffer PolicyOffer::FromPolicies(const PolicySet& policies) {
  PolicyOffer offer;
  offer.fingerprints.reserve(policies.size());
  for (const auto& policy : policies) {
    offer.fingerprints.push_back(policy->Fingerprint());
  }
  return offer;
}

Bytes PolicySelection::Serialize() const {
  return SerializeStringList(fingerprints);
}

Result<PolicySelection> PolicySelection::Deserialize(ByteView data) {
  ASSIGN_OR_RETURN(auto fingerprints, DeserializeStringList(data));
  return PolicySelection{std::move(fingerprints)};
}

Result<PolicySelection> SelectFromOffer(
    const PolicyOffer& offer, const std::vector<std::string>& required) {
  PolicySelection selection;
  for (const std::string& want : required) {
    const auto it = std::find_if(
        offer.fingerprints.begin(), offer.fingerprints.end(),
        [&want](const std::string& fp) { return fp.rfind(want, 0) == 0; });
    if (it == offer.fingerprints.end()) {
      return NotFoundError("provider does not offer a policy matching '" +
                           want + "'");
    }
    selection.fingerprints.push_back(*it);
  }
  return selection;
}

Result<PolicySet> ApplySelection(PolicySet menu,
                                 const PolicySelection& selection) {
  PolicySet out;
  for (const std::string& fp : selection.fingerprints) {
    const auto it = std::find_if(menu.begin(), menu.end(),
                                 [&fp](const std::unique_ptr<PolicyModule>& p) {
                                   return p != nullptr && p->Fingerprint() == fp;
                                 });
    if (it == menu.end() || *it == nullptr) {
      return NotFoundError("selection names an unknown or repeated policy: " +
                           fp);
    }
    out.push_back(std::move(*it));  // nulls the slot; repeats then fail
  }
  return out;
}

}  // namespace engarde::core
