#include "core/inspection.h"

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "core/streaming.h"
#include "core/verdict_cache.h"
#include "crypto/sha256.h"
#include "x86/decoder.h"
#include "x86/validator.h"

namespace engarde::core {
namespace {

using Clock = std::chrono::steady_clock;

// Default rule id for a stage that rejected without depositing one.
std::string_view DefaultRule(StageId stage) {
  switch (stage) {
    case StageId::kContainerValidate: return "elf-container";
    case StageId::kPageSeparation: return "page-separation";
    case StageId::kDisassemble: return "nacl-disassembly";
    case StageId::kBuildSymbols: return "symbol-table";
    case StageId::kNaClValidate: return "nacl-structural";
    case StageId::kPolicyCheck: return "policy";
    case StageId::kLoadAndLock: return "loader";
    case StageId::kCount: break;
  }
  return "?";
}

uint64_t SgxCount(const sgx::CycleAccountant* accountant) {
  return accountant ? accountant->total_sgx_instructions() : 0;
}

// ---- Stage bodies ----------------------------------------------------------

Status StageContainerValidate(InspectionContext& ctx) {
  // "Before disassembling the code sections of the executable, the loader
  // checks its header to verify that the executable is correctly formatted."
  ASSIGN_OR_RETURN(elf::ElfFile elf,
                   elf::ElfFile::Parse(ByteView(ctx.image->data(),
                                                ctx.image->size())));
  RETURN_IF_ERROR(elf.ValidateForEnclave());
  ctx.elf.emplace(std::move(elf));
  return Status::Ok();
}

Status StagePageSeparation(InspectionContext& ctx) {
  // Classify every file page by the sections whose *content* overlaps it.
  // "EnGarde operates at the granularity of memory pages ... EnGarde rejects
  // pages that contain mixed code and data." Sorted flat vectors, not
  // std::set: the per-page node allocations were measurable on every
  // provisioning, and a sort + set_intersection over contiguous memory does
  // the same classification allocation-free per element.
  std::vector<uint64_t> code_pages;
  std::vector<uint64_t> data_pages;
  for (const elf::Shdr& section : ctx.elf->sections()) {
    if (!(section.flags & elf::kShfAlloc)) continue;
    if (section.type == elf::kShtNobits || section.size == 0) continue;
    const bool is_code = (section.flags & elf::kShfExecinstr) != 0;
    const uint64_t first = section.addr / sgx::kPageSize;
    const uint64_t last = (section.addr + section.size - 1) / sgx::kPageSize;
    std::vector<uint64_t>& pages = is_code ? code_pages : data_pages;
    for (uint64_t page = first; page <= last; ++page) pages.push_back(page);
  }
  auto sort_unique = [](std::vector<uint64_t>& pages) {
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  };
  sort_unique(code_pages);
  sort_unique(data_pages);
  std::vector<uint64_t> mixed;
  std::set_intersection(code_pages.begin(), code_pages.end(),
                        data_pages.begin(), data_pages.end(),
                        std::back_inserter(mixed));
  if (!mixed.empty()) {
    // mixed is sorted, so front() is the lowest offending page.
    ctx.pending_vaddr = mixed.front() * sgx::kPageSize;
    return PolicyViolationError(
        "page " + std::to_string(mixed.front()) +
        " mixes code and data; compile with separated sections");
  }

  // The client's claimed code-page set must match what the ELF actually
  // says. Offline inspection has no manifest, so there is no claim to check.
  if (ctx.manifest != nullptr) {
    std::vector<uint64_t> claimed(ctx.manifest->code_pages.begin(),
                                  ctx.manifest->code_pages.end());
    sort_unique(claimed);
    if (claimed != code_pages) {
      ctx.pending_rule = "manifest-agreement";
      return PolicyViolationError(
          "manifest code-page list disagrees with the ELF section headers");
    }
  }
  return Status::Ok();
}

Status StageDisassemble(InspectionContext& ctx) {
  sgx::CycleAccountant* accountant = ctx.accountant;
  ctx.insns = std::make_unique<x86::InsnBuffer>([accountant](size_t) {
    // "we reduce the involved overhead by restricting the calls to malloc by
    // allocating a memory page at a time": one trampoline per buffer page.
    if (accountant) accountant->CountTrampoline();
  });
  ctx.text_start = UINT64_MAX;
  ctx.text_end = 0;
  for (const elf::Shdr* section : ctx.elf->TextSections()) {
    ASSIGN_OR_RETURN(const ByteView content, ctx.elf->SectionContent(*section));
    // Streaming path: the upload already decoded these pages speculatively;
    // splice them if they tile the section exactly. Appends (and their
    // per-page malloc trampolines) happen here either way, so a spliced
    // section is byte- and accounting-identical to a decoded one.
    if (ctx.streaming != nullptr &&
        ctx.streaming->SpliceSection(section->offset, section->addr,
                                     content.size(), *ctx.insns)) {
      ctx.text_start = std::min(ctx.text_start, section->addr);
      ctx.text_end = std::max(ctx.text_end, section->addr + section->size);
      continue;
    }
    // Bundle-aligned shards decoded concurrently, merged in address order
    // on this thread (serial when no pool) — see x86::DecodeSectionInto.
    RETURN_IF_ERROR(
        x86::DecodeSectionInto(content, section->addr, ctx.pool, *ctx.insns));
    ctx.text_start = std::min(ctx.text_start, section->addr);
    ctx.text_end = std::max(ctx.text_end, section->addr + section->size);
  }
  return Status::Ok();
}

Status StageBuildSymbols(InspectionContext& ctx) {
  // "Along with disassembling the executable, the loader also reads the
  // symbol tables ... constructs a symbol hash table."
  ctx.symbols = SymbolHashTable::Build(*ctx.elf);
  return Status::Ok();
}

Status StageNaClValidate(InspectionContext& ctx) {
  // NaCl structural constraints (Section 3). Roots: the entry point plus
  // every named function (a statically-linked binary legitimately contains
  // functions reached only via the symbol table or jump tables).
  x86::ValidationInput validation;
  validation.text_start = ctx.text_start;
  validation.text_end = ctx.text_end;
  validation.roots.push_back(ctx.elf->header().entry);
  for (const SymbolHashTable::Function& fn : ctx.symbols.functions()) {
    validation.roots.push_back(fn.start);
  }
  return x86::ValidateNaClConstraints(*ctx.insns, validation, ctx.pool);
}

Status StagePolicyCheck(InspectionContext& ctx) {
  PolicyContext base;
  base.insns = ctx.insns.get();
  base.symbols = &ctx.symbols;
  base.elf = &*ctx.elf;
  base.liblink_reuse = ctx.liblink_reuse;
  base.reuse_log = ctx.reuse_log;
  const PolicySet& policies = *ctx.policies;
  // The pool goes either to the policy SET (independent read-only modules
  // checked concurrently) or to a lone module (which may shard its own scan
  // through context.pool) — never both, since ParallelFor does not nest.
  // Either way the verdict is the first failure in module order, exactly
  // what the serial loop reports.
  common::ThreadPool* pool = ctx.pool;
  size_t failed = policies.size();
  std::vector<Status> statuses(policies.size(), Status::Ok());
  std::vector<ViolationSite> sites(policies.size());
  if (pool != nullptr && policies.size() > 1) {
    pool->ParallelFor(0, policies.size(), 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        PolicyContext context = base;
        context.violation_out = &sites[i];
        statuses[i] = policies[i]->Check(context);
      }
    });
    for (size_t i = 0; i < statuses.size(); ++i) {
      if (!statuses[i].ok()) {
        failed = i;
        break;
      }
    }
  } else {
    for (size_t i = 0; i < policies.size(); ++i) {
      PolicyContext context = base;
      context.pool = pool;
      context.violation_out = &sites[i];
      statuses[i] = policies[i]->Check(context);
      if (!statuses[i].ok()) {
        failed = i;
        break;
      }
    }
  }
  if (failed != policies.size()) {
    ctx.pending_rule = std::string(policies[failed]->name());
    ctx.pending_vaddr = sites[failed].vaddr;
    // The legacy reason prefixes the module name — byte-identical to the
    // pre-pipeline monolith, which tests and old clients grep.
    ctx.pending_reason = std::string(policies[failed]->name()) + ": " +
                         statuses[failed].ToString();
    return statuses[failed];
  }
  return Status::Ok();
}

Status StageLoadAndLock(InspectionContext& ctx) {
  sgx::CycleAccountant* accountant = ctx.accountant;
  sgx::SgxDevice* device = ctx.host->device();
  {
    sgx::ScopedPhase phase(accountant, sgx::Phase::kLoading);
    const Bytes canary = ctx.drbg ? ctx.drbg->Generate(8) : Bytes(8, 0);
    ASSIGN_OR_RETURN(
        LoadResult load,
        EnclaveLoader::Load(*device, ctx.enclave_id, *ctx.layout, *ctx.elf,
                            ByteView(canary.data(), canary.size())));

    // Inform the host component: it flips page-table permission bits for the
    // loaded span (kernel memory writes) and prevents any further enclave
    // extension. Each request is one enclave exit + re-entry.
    if (accountant) accountant->CountTrampoline();
    RETURN_IF_ERROR(ctx.host->ApplyWxPolicy(ctx.enclave_id, *ctx.layout,
                                            load.span_pages,
                                            load.executable_pages));
    if (accountant) accountant->CountTrampoline();
    RETURN_IF_ERROR(ctx.host->LockEnclave(ctx.enclave_id));
    ctx.load = std::move(load);
  }

  // SGX2 EPCM hardening — beyond the paper's measured prototype: anchor the
  // W^X split in the EPCM so a malicious host cannot revert it via page
  // tables (the SGX1 attack the paper cites as its reason to require SGX2).
  // Accounted as a sibling phase — the paper's "Loading and Relocation"
  // column does not include it.
  if (device->sgx_version() >= 2) {
    sgx::ScopedPhase phase(accountant, sgx::Phase::kWxHardening);
    RETURN_IF_ERROR(
        ctx.host->HardenWxInEpcm(ctx.enclave_id, ctx.load->executable_pages));
  }
  return Status::Ok();
}

}  // namespace

std::string_view VerdictCacheOutcomeName(VerdictCacheOutcome outcome) noexcept {
  switch (outcome) {
    case VerdictCacheOutcome::kDisabled: return "disabled";
    case VerdictCacheOutcome::kMiss: return "miss";
    case VerdictCacheOutcome::kPartialHit: return "partial-hit";
    case VerdictCacheOutcome::kFullHit: return "hit";
  }
  return "?";
}

std::string_view StageName(StageId stage) noexcept {
  switch (stage) {
    case StageId::kContainerValidate: return "ContainerValidate";
    case StageId::kPageSeparation: return "PageSeparation";
    case StageId::kDisassemble: return "Disassemble";
    case StageId::kBuildSymbols: return "BuildSymbols";
    case StageId::kNaClValidate: return "NaClValidate";
    case StageId::kPolicyCheck: return "PolicyCheck";
    case StageId::kLoadAndLock: return "LoadAndLock";
    case StageId::kCount: break;
  }
  return "?";
}

std::string_view StageOutcomeName(StageOutcome outcome) noexcept {
  switch (outcome) {
    case StageOutcome::kPassed: return "passed";
    case StageOutcome::kRejected: return "rejected";
    case StageOutcome::kError: return "error";
    case StageOutcome::kSkipped: return "skipped";
  }
  return "?";
}

bool IsClientRejection(const Status& status) {
  switch (status.code()) {
    case StatusCode::kPolicyViolation:
    case StatusCode::kInvalidArgument:
    case StatusCode::kUnimplemented:
    case StatusCode::kOutOfRange:
      return true;
    default:
      return false;
  }
}

bool IsRetryableResourceError(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted;
}

uint64_t ExtractVaddrHint(std::string_view message) {
  const size_t pos = message.find("0x");
  if (pos == std::string_view::npos) return 0;
  uint64_t value = 0;
  bool any = false;
  for (size_t i = pos + 2; i < message.size(); ++i) {
    const char c = message[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else break;
    value = (value << 4) | static_cast<uint64_t>(digit);
    any = true;
  }
  return any ? value : 0;
}

namespace {

struct StageSpec {
  StageId id;
  // Phase the stage is wrapped in; kCount = the body manages phases itself
  // (LoadAndLock switches kLoading -> kWxHardening internally).
  sgx::Phase phase;
  Status (*body)(InspectionContext&);
};
constexpr StageSpec kStages[] = {
    {StageId::kContainerValidate, sgx::Phase::kContainer,
     &StageContainerValidate},
    {StageId::kPageSeparation, sgx::Phase::kContainer, &StagePageSeparation},
    {StageId::kDisassemble, sgx::Phase::kDisassembly, &StageDisassemble},
    {StageId::kBuildSymbols, sgx::Phase::kDisassembly, &StageBuildSymbols},
    {StageId::kNaClValidate, sgx::Phase::kDisassembly, &StageNaClValidate},
    {StageId::kPolicyCheck, sgx::Phase::kPolicyCheck, &StagePolicyCheck},
    {StageId::kLoadAndLock, sgx::Phase::kCount, &StageLoadAndLock},
};

// Runs one stage body live — timing, phase scope, SGX delta, rejection
// assembly — and appends its report. Returns the hard-error status on an
// infrastructure failure, otherwise whether the pipeline must stop (a client
// rejection was recorded in `result`).
Result<bool> ExecuteLiveStage(const StageSpec& spec, InspectionContext& context,
                              InspectionResult& result) {
  StageReport report;
  report.stage = spec.id;

  context.pending_rule.clear();
  context.pending_vaddr = 0;
  context.pending_reason.clear();

  const uint64_t sgx_before = SgxCount(context.accountant);
  const Clock::time_point start = Clock::now();
  Status status = Status::Ok();
  {
    // LoadAndLock drives its own kLoading/kWxHardening sibling phases.
    sgx::ScopedPhase phase_scope(
        spec.phase == sgx::Phase::kCount ? nullptr : context.accountant,
        spec.phase);
    status = spec.body(context);
  }
  report.wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
  report.sgx_instructions = SgxCount(context.accountant) - sgx_before;

  if (status.ok()) {
    report.outcome = StageOutcome::kPassed;
    result.reports.push_back(std::move(report));
    return false;
  }
  if (!IsClientRejection(status)) {
    // Infrastructure failure (channel, EPC pressure, internal): hard error.
    report.outcome = StageOutcome::kError;
    report.detail = status.ToString();
    result.reports.push_back(std::move(report));
    return status;
  }

  // Client-attributable: build the structured rejection + legacy reason.
  Rejection rejection;
  rejection.stage = std::string(StageName(spec.id));
  rejection.rule = context.pending_rule.empty()
                       ? std::string(DefaultRule(spec.id))
                       : context.pending_rule;
  rejection.vaddr = context.pending_vaddr != 0
                        ? context.pending_vaddr
                        : ExtractVaddrHint(status.message());
  rejection.detail = status.ToString();
  result.reason = context.pending_reason.empty() ? status.ToString()
                                                 : context.pending_reason;
  result.rejection = std::move(rejection);
  result.compliant = false;
  report.outcome = StageOutcome::kRejected;
  report.detail = result.reason;
  result.reports.push_back(std::move(report));
  return true;  // remaining stages are reported kSkipped
}

// Full verdict-cache hit: `result` holds the live ContainerValidate and
// PageSeparation reports; the cached Disassemble..PolicyCheck reports are
// replayed verbatim, and the live accountant is charged exactly what the
// cold stages charged (Disassemble's per-buffer-page malloc trampolines are
// their only SGX cost), so per-phase SGX accounting is bit-identical to a
// cold run. LoadAndLock is NEVER replayed from the cache: an accept loads
// and locks against the live enclave — the cache vouches for the
// content-determined verdict, not for any measurement or EPC state.
Result<InspectionResult> ReplayCachedVerdict(InspectionContext& context,
                                             InspectionResult result,
                                             CachedVerdict cached) {
  result.cache_outcome = VerdictCacheOutcome::kFullHit;
  result.cached_instruction_count = cached.instruction_count;
  result.cached_insn_buffer_pages = cached.insn_buffer_pages;
  {
    sgx::ScopedPhase phase_scope(context.accountant, sgx::Phase::kDisassembly);
    if (context.accountant != nullptr) {
      for (uint64_t i = 0; i < cached.insn_buffer_pages; ++i) {
        context.accountant->CountTrampoline();
      }
    }
    // The loader and the session need the symbol table even when the verdict
    // is replayed; building it is pure in-enclave compute (no SGX charges).
    if (cached.compliant) {
      context.symbols = SymbolHashTable::Build(*context.elf);
    }
  }
  for (StageReport& report : cached.reports) {
    result.reports.push_back(std::move(report));
  }

  if (!cached.compliant) {
    result.compliant = false;
    result.rejection = std::move(cached.rejection);
    result.reason = std::move(cached.reason);
    StageReport skipped;
    skipped.stage = StageId::kLoadAndLock;
    result.reports.push_back(std::move(skipped));
    return result;
  }

  result.compliant = true;
  if (context.host == nullptr) {
    StageReport skipped;
    skipped.stage = StageId::kLoadAndLock;
    skipped.detail = "offline inspection: nothing to load";
    result.reports.push_back(std::move(skipped));
    return result;
  }
  ASSIGN_OR_RETURN(
      const bool stopped,
      ExecuteLiveStage(kStages[static_cast<size_t>(StageId::kLoadAndLock)],
                       context, result));
  (void)stopped;  // a LoadAndLock rejection already updated `result`
  return result;
}

}  // namespace

Result<InspectionResult> InspectionPipeline::Run(InspectionContext& context) {
  InspectionResult result;
  result.reports.reserve(std::size(kStages));

  // Verdict-cache state for this run. The reuse pointers alias locals, so
  // they must not outlive this frame no matter how we leave it.
  crypto::Sha256Digest binary_sha{};
  bool probed = false;
  std::map<uint64_t, uint64_t> reuse;
  VerifiedRangeLog reuse_log;
  struct ReuseScopeClear {
    InspectionContext& ctx;
    ~ReuseScopeClear() {
      ctx.liblink_reuse = nullptr;
      ctx.reuse_log = nullptr;
    }
  } reuse_scope{context};

  bool stop = false;
  for (const StageSpec& spec : kStages) {
    if (stop || (spec.id == StageId::kLoadAndLock && context.host == nullptr)) {
      StageReport report;
      report.stage = spec.id;
      report.outcome = StageOutcome::kSkipped;
      if (!stop) report.detail = "offline inspection: nothing to load";
      result.reports.push_back(std::move(report));
      continue;
    }

    if (spec.id == StageId::kDisassemble && context.verdict_cache != nullptr) {
      // Probe once the live-only stages passed: ContainerValidate and
      // PageSeparation always execute (the latter checks the per-session
      // manifest, which the cache key deliberately does not cover).
      binary_sha = crypto::Sha256::Hash(
          ByteView(context.image->data(), context.image->size()));
      probed = true;
      if (std::optional<CachedVerdict> cached =
              context.verdict_cache->Probe(binary_sha)) {
        return ReplayCachedVerdict(context, std::move(result),
                                   std::move(*cached));
      }
    }
    if (spec.id == StageId::kPolicyCheck && probed) {
      // Partial hit: library functions whose bytes are provably unchanged
      // since a prior verification skip the body-hash walk. Newly verified
      // ranges are collected for persisting below.
      reuse = context.verdict_cache->ResolveReuse(context.symbols,
                                                  *context.elf);
      context.liblink_reuse = reuse.empty() ? nullptr : &reuse;
      context.reuse_log = &reuse_log;
    }

    ASSIGN_OR_RETURN(stop, ExecuteLiveStage(spec, context, result));
  }

  result.compliant = !result.rejection.has_value();

  if (probed) {
    VerdictCache& cache = *context.verdict_cache;
    if (reuse.empty()) {
      cache.CountMiss();
      result.cache_outcome = VerdictCacheOutcome::kMiss;
    } else {
      cache.CountPartialHit();
      result.cache_outcome = VerdictCacheOutcome::kPartialHit;
    }
    // LoadAndLock outcomes depend on the live enclave (EPC pressure, lock
    // state), not on the binary's content — a rejection there must not be
    // replayed onto future uploads of the same bytes.
    const bool content_determined =
        result.compliant ||
        result.rejection->stage != StageName(StageId::kLoadAndLock);
    if (content_determined && context.insns != nullptr) {
      CachedVerdict entry;
      entry.compliant = result.compliant;
      entry.reason = result.reason;
      entry.rejection = result.rejection;
      entry.instruction_count = context.insns->size();
      entry.insn_buffer_pages = context.insns->chunk_allocations();
      // The four content-determined stage reports: Disassemble, BuildSymbols,
      // NaClValidate, PolicyCheck (kSkipped ones included, so a replayed
      // rejection reproduces the cold report sequence exactly).
      entry.reports.assign(
          result.reports.begin() +
              static_cast<ptrdiff_t>(StageId::kDisassemble),
          result.reports.begin() +
              static_cast<ptrdiff_t>(StageId::kLoadAndLock));
      cache.Store(binary_sha, entry);
    }
    if (!reuse_log.ranges.empty()) {
      // PolicyCheck's workers have joined; the log is exclusively ours now.
      cache.MergeVerifiedFunctions(reuse_log.ranges, context.symbols,
                                   *context.elf);
    }
  }
  return result;
}

}  // namespace engarde::core
