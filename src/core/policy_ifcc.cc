#include "core/policy_ifcc.h"

#include <algorithm>

namespace engarde::core {
namespace {

using x86::Insn;
using x86::Mnemonic;
using x86::OperandKind;

std::string InsnError(const Insn& insn, const std::string& what) {
  return "indirect call [" + insn.ToString() + "]: " + what;
}

}  // namespace

std::string IndirectCallPolicy::Fingerprint() const {
  return "indirect-call-check(" + options_.table_symbol_prefix + ",entry=" +
         std::to_string(options_.entry_size) + ")";
}

Status IndirectCallPolicy::Check(const PolicyContext& context) const {
  const x86::InsnBuffer& insns = *context.insns;
  const SymbolHashTable& symbols = *context.symbols;
  // Deposits the offending site for the structured Rejection, then builds
  // the same POLICY_VIOLATION status as before.
  const auto violation = [&context](uint64_t vaddr, std::string message) {
    if (context.violation_out != nullptr) context.violation_out->vaddr = vaddr;
    return PolicyViolationError(std::move(message));
  };

  // ---- Recover the jump-table range from its entry symbols. ---------------
  uint64_t table_start = UINT64_MAX;
  uint64_t table_end = 0;
  size_t entry_count = 0;
  for (const SymbolHashTable::Function& fn : symbols.functions()) {
    if (fn.name.rfind(options_.table_symbol_prefix, 0) != 0) continue;
    table_start = std::min(table_start, fn.start);
    table_end = std::max(table_end, fn.start + options_.entry_size);
    ++entry_count;
  }

  // Does the program contain indirect calls at all?
  bool has_indirect_calls = false;
  for (const Insn& insn : insns) {
    if (insn.mnemonic == Mnemonic::kCallIndirect) {
      has_indirect_calls = true;
      break;
    }
  }
  if (!has_indirect_calls) return Status::Ok();
  if (entry_count == 0) {
    return PolicyViolationError(
        "program makes indirect calls but has no IFCC jump table (" +
        options_.table_symbol_prefix + "* symbols missing)");
  }

  // ---- Structurally verify every jump-table entry: jmpq rel32; nopl. ------
  for (uint64_t entry = table_start; entry < table_end;
       entry += options_.entry_size) {
    const size_t jmp_idx = insns.IndexOfAddr(entry);
    if (jmp_idx == x86::InsnBuffer::npos ||
        insns[jmp_idx].mnemonic != Mnemonic::kJmp ||
        insns[jmp_idx].length != 5) {
      return violation(
          entry, "malformed jump-table entry (expected jmpq rel32) at index " +
                     std::to_string((entry - table_start) / options_.entry_size));
    }
    const size_t nop_idx = jmp_idx + 1;
    if (nop_idx >= insns.size() ||
        insns[nop_idx].mnemonic != Mnemonic::kNop ||
        insns[nop_idx].addr != entry + 5 || insns[nop_idx].length != 3) {
      return violation(entry,
                       "malformed jump-table entry (expected trailing nopl)");
    }
  }

  // ---- Verify the guard sequence before every indirect call. -------------
  for (size_t i = 0; i < insns.size(); ++i) {
    const Insn& call = insns[i];
    if (call.mnemonic != Mnemonic::kCallIndirect) continue;

    if (call.src.kind != OperandKind::kReg) {
      return violation(
          call.addr,
          InsnError(call, "indirect call through memory is not IFCC-checkable"));
    }
    const uint8_t target_reg = call.src.reg;  // %C
    if (i < 4) {
      return violation(
          call.addr,
          InsnError(call, "missing IFCC guard"));
    }

    const Insn& lea = insns[i - 4];
    const Insn& sub = insns[i - 3];
    const Insn& mask = insns[i - 2];
    const Insn& add = insns[i - 1];

    // lea <table>(%rip), %A
    if (lea.mnemonic != Mnemonic::kLea ||
        lea.src.kind != OperandKind::kRipRel ||
        lea.dst.kind != OperandKind::kReg) {
      return violation(
          call.addr,
          InsnError(call, "guard does not start with lea <table>(%rip),%reg"));
    }
    const uint8_t base_reg = lea.dst.reg;  // %A
    const uint64_t lea_target =
        lea.NextAddr() + static_cast<uint64_t>(
                             static_cast<int64_t>(lea.src.mem.disp));
    if (lea_target != table_start) {
      return violation(
          call.addr,
          InsnError(call, "guard lea does not target the jump table base"));
    }

    // sub %A, %C (32-bit in LLVM's emission; accept 32- or 64-bit).
    if (sub.mnemonic != Mnemonic::kSub || !sub.dst.IsReg(target_reg) ||
        !sub.src.IsReg(base_reg)) {
      return violation(
          call.addr,
          InsnError(call, "guard missing sub %table_base,%target"));
    }

    // and $MASK, %C
    if (mask.mnemonic != Mnemonic::kAnd || !mask.dst.IsReg(target_reg) ||
        mask.src.kind != OperandKind::kImm) {
      return violation(
          call.addr,
          InsnError(call, "guard missing and $mask,%target"));
    }
    // The mask must keep offsets entry-aligned (low bits clear) and inside
    // the table (largest masked offset + entry size <= table size).
    const int64_t mask_value = mask.src.imm;
    if (mask_value < 0 ||
        (mask_value & static_cast<int64_t>(options_.entry_size - 1)) != 0) {
      return violation(
          call.addr,
          InsnError(call, "IFCC mask does not preserve entry alignment"));
    }
    if (static_cast<uint64_t>(mask_value) + options_.entry_size >
        table_end - table_start) {
      return violation(
          call.addr,
          InsnError(call, "IFCC mask permits offsets beyond the jump table"));
    }

    // add %A, %C
    if (add.mnemonic != Mnemonic::kAdd || !add.dst.IsReg(target_reg) ||
        !add.src.IsReg(base_reg)) {
      return violation(
          call.addr,
          InsnError(call, "guard missing add %table_base,%target"));
    }
  }
  return Status::Ok();
}

}  // namespace engarde::core
