#include "core/frontend.h"

#include <utility>

#include "core/inspection.h"
#include "core/protocol.h"
#include "sgx/device.h"

namespace engarde::core {
namespace {

// Moves everything the session has written (via EndA) out to the transport.
// Returns the number of bytes moved.
Result<size_t> ShuttleOut(crypto::DuplexPipe::Endpoint wire,
                          net::Transport& transport) {
  const size_t pending = wire.Available();
  if (pending == 0) return size_t{0};
  ASSIGN_OR_RETURN(const Bytes data, wire.Read(pending));
  RETURN_IF_ERROR(transport.Send(ByteView(data)));
  return pending;
}

uint64_t BudgetFromDevice(sgx::HostOs& host, const FrontendOptions& options) {
  const uint64_t capacity = host.device()->epc().capacity();
  return capacity > options.epc_reserve_pages
             ? capacity - options.epc_reserve_pages
             : 0;
}

}  // namespace

EngardeOptions ProvisioningFrontend::PerEnclaveOptions() const {
  EngardeOptions enclave_options = options_.enclave_options;
  enclave_options.inspection_threads = 1;
  enclave_options.shared_inspection_pool = inspection_pool_.get();
  return enclave_options;
}

ProvisioningFrontend::ProvisioningFrontend(
    sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
    std::function<PolicySet()> policy_factory, FrontendOptions options)
    : host_(host),
      quoting_(quoting),
      policy_factory_(std::move(policy_factory)),
      options_(std::move(options)),
      inspection_pool_(options_.inspection_threads > 1
                           ? std::make_unique<common::ThreadPool>(
                                 options_.inspection_threads)
                           : nullptr),
      owned_budget_(
          std::make_unique<EpcBudget>(BudgetFromDevice(*host, options_))),
      owned_pool_(std::make_unique<WarmEnclavePool>(
          host, quoting, policy_factory_, PerEnclaveOptions())),
      budget_(owned_budget_.get()),
      pool_(owned_pool_.get()) {}

ProvisioningFrontend::ProvisioningFrontend(
    sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
    std::function<PolicySet()> policy_factory, FrontendOptions options,
    EpcBudget* budget, WarmEnclavePool* pool)
    : host_(host),
      quoting_(quoting),
      policy_factory_(std::move(policy_factory)),
      options_(std::move(options)),
      inspection_pool_(options_.inspection_threads > 1
                           ? std::make_unique<common::ThreadPool>(
                                 options_.inspection_threads)
                           : nullptr),
      budget_(budget),
      pool_(pool) {}

Status ProvisioningFrontend::PrefillPool(size_t count) {
  for (size_t i = 0; i < count; ++i) {
    if (!budget_->TryReserve(PagesPerEnclave())) {
      return ResourceExhaustedError(
          "EPC admission budget cannot hold another pooled enclave");
    }
    const Status added = pool_->AddOne();
    if (!added.ok()) {
      budget_->Release(PagesPerEnclave());
      return added;
    }
  }
  return Status::Ok();
}

Result<uint64_t> ProvisioningFrontend::Accept(
    std::unique_ptr<net::Transport> transport) {
  auto conn = std::make_unique<Connection>();
  conn->id = connections_.size();
  conn->transport = std::move(transport);
  conn->pipe = std::make_unique<crypto::DuplexPipe>();
  connections_.push_back(std::move(conn));
  Connection& accepted = *connections_.back();

  // Arrivals behind the queue must not overtake it; only try immediate
  // admission when nobody is already waiting.
  if (admission_queue_.empty()) {
    ASSIGN_OR_RETURN(const AdmitResult admitted, TryAdmit(accepted));
    if (admitted == AdmitResult::kAdmitted) return accepted.id;
  }
  if (admission_queue_.size() < options_.admission_queue_capacity) {
    admission_queue_.push_back(accepted.id);
    return accepted.id;  // stays kQueued; nothing on the wire yet
  }
  RETURN_IF_ERROR(Shed(accepted));
  return accepted.id;
}

Result<ProvisioningFrontend::AdmitResult> ProvisioningFrontend::TryAdmit(
    Connection& conn) {
  PolicySet policies = policy_factory_();
  const std::string fingerprint = PolicySetFingerprint(policies);
  std::unique_ptr<PooledEnclave> slot = pool_->TryTake(fingerprint);
  if (slot == nullptr) {
    // Cold path: the enclave's pages are committed now; a pooled handout's
    // were committed at prefill/top-up time. Reserve first so a sibling
    // reactor racing this admission can never jointly overdraw the budget.
    if (!budget_->TryReserve(PagesPerEnclave())) {
      return AdmitResult::kNoBudget;
    }
    Result<std::unique_ptr<PooledEnclave>> built = WarmEnclavePool::BuildEntry(
        host_, *quoting_, std::move(policies), PerEnclaveOptions());
    if (!built.ok()) {
      budget_->Release(PagesPerEnclave());
      // The device itself ran out of EPC (someone else holds pages outside
      // our budget): treat like over-budget so the client gets RetryAfter
      // instead of a hard failure.
      if (IsRetryableResourceError(built.status())) {
        return AdmitResult::kNoBudget;
      }
      return built.status();
    }
    slot = std::move(*built);
  } else {
    conn.from_pool = true;
  }

  conn.slot = std::move(slot);
  // Frontend paths announce themselves: a control frame first, then the
  // exact hello bytes a direct SendHello would produce. Written through
  // EndA so ordering with later session output is automatic.
  crypto::DuplexPipe::Endpoint session_side = conn.pipe->EndA();
  RETURN_IF_ERROR(
      WriteControlFrame(session_side, ControlType::kHelloFollows, {}));
  session_side.Write(ByteView(conn.slot->hello_wire));
  conn.session.emplace(&*conn.slot->enclave, session_side);
  conn.state = ConnectionState::kActive;
  // Push the greeting out immediately so in-memory clients can respond to
  // it right after Accept() returns, without waiting for a PollOnce().
  RETURN_IF_ERROR(ShuttleOut(conn.pipe->EndB(), *conn.transport).status());
  RETURN_IF_ERROR(conn.transport->Flush().status());
  return AdmitResult::kAdmitted;
}

Status ProvisioningFrontend::Shed(Connection& conn) {
  RetryAfter record;
  record.retry_after_ms = options_.retry_after_ms;
  record.queue_depth = static_cast<uint32_t>(admission_queue_.size());
  record.epc_pages_in_use = budget_->committed_pages();
  record.epc_budget_pages = budget_->budget_pages();
  crypto::DuplexPipe::Endpoint session_side = conn.pipe->EndA();
  RETURN_IF_ERROR(WriteControlFrame(session_side, ControlType::kRetryAfter,
                                    ByteView(record.Serialize())));
  RETURN_IF_ERROR(ShuttleOut(conn.pipe->EndB(), *conn.transport).status());
  ASSIGN_OR_RETURN(const bool flushed, conn.transport->Flush());
  if (flushed) conn.transport->Close();
  conn.state = ConnectionState::kShed;
  shed_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status ProvisioningFrontend::PumpConnection(Connection& conn,
                                            size_t& progress) {
  switch (conn.state) {
    case ConnectionState::kQueued:
      return Status::Ok();  // admitted via AdmitFromQueue, never pumped
    case ConnectionState::kShed:
    case ConnectionState::kDone:
    case ConnectionState::kFailed: {
      // Only residual outbound bytes (verdict tail, retry-after) remain.
      ASSIGN_OR_RETURN(const size_t moved,
                       ShuttleOut(conn.pipe->EndB(), *conn.transport));
      ASSIGN_OR_RETURN(const bool flushed, conn.transport->Flush());
      if (moved > 0) ++progress;
      if (flushed && conn.pipe->EndB().Available() == 0 &&
          conn.transport->descriptor() >= 0) {
        conn.transport->Close();
      }
      return Status::Ok();
    }
    case ConnectionState::kActive:
      break;
  }

  // Inbound: transport -> internal wire.
  Bytes inbound;
  ASSIGN_OR_RETURN(const size_t drained, conn.transport->Drain(inbound));
  crypto::DuplexPipe::Endpoint wire_side = conn.pipe->EndB();
  if (drained > 0) {
    wire_side.Write(ByteView(inbound));
    ++progress;
  }
  if (conn.transport->AtEof() && !conn.pipe->EndA().PeerClosed()) {
    // Propagate the peer's FIN onto the internal wire exactly once (EndA's
    // PeerClosed mirror tells us whether we already did).
    wire_side.CloseWrite();
    ++progress;
  }

  // Pump the session under its accountant — the same redirection
  // ProvisioningServer::Drive applies, so per-phase attribution matches a
  // serial drive bit for bit.
  const ProvisioningSession::State before = conn.session->state();
  {
    sgx::ScopedAccountant scoped(&conn.slot->accountant);
    const Status pumped = conn.session->Pump();
    if (!pumped.ok()) {
      conn.failure = pumped;
      conn.state = ConnectionState::kFailed;
      ++progress;
    }
  }
  if (conn.state == ConnectionState::kFailed) {
    ReleaseEnclave(conn);
    return Status::Ok();
  }
  if (conn.session->state() != before) ++progress;

  if (conn.session->done()) {
    ASSIGN_OR_RETURN(ProvisionOutcome outcome, conn.session->TakeOutcome());
    conn.outcome.emplace(std::move(outcome));
    conn.state = ConnectionState::kDone;
    done_count_.fetch_add(1, std::memory_order_relaxed);
    ++progress;
    if (options_.destroy_enclave_on_verdict) ReleaseEnclave(conn);
  } else if (conn.session->state() == before &&
             conn.pipe->EndA().AtEof() &&
             conn.pipe->EndA().Available() == 0) {
    // Peer finished sending but the exchange is incomplete and no further
    // progress is possible: terminal.
    conn.failure = ProtocolError(
        "peer closed mid-exchange: session stalled before a verdict");
    conn.state = ConnectionState::kFailed;
    ReleaseEnclave(conn);
    ++progress;
  }

  // Outbound: internal wire -> transport.
  ASSIGN_OR_RETURN(const size_t moved,
                   ShuttleOut(conn.pipe->EndB(), *conn.transport));
  if (moved > 0) ++progress;
  RETURN_IF_ERROR(conn.transport->Flush().status());
  return Status::Ok();
}

void ProvisioningFrontend::ReleaseEnclave(Connection& conn) {
  if (conn.slot == nullptr || !conn.slot->enclave.has_value() ||
      conn.enclave_released) {
    return;
  }
  const uint64_t enclave_id = conn.slot->enclave->enclave_id();
  conn.session.reset();  // holds a pointer into the enclave
  // Deliberately OUTSIDE any ScopedAccountant: teardown EREMOVEs are charged
  // to the device-wide accountant, never the session's, so the session's
  // per-phase counts stay bit-for-bit equal to a serial Drive of the same
  // exchange (which never destroys the enclave). Destroying through the
  // HostOs (not the raw device) also retires the kernel-side page-table and
  // lock records — the map leak the lifecycle soak pins.
  (void)host_->DestroyEnclave(enclave_id);
  conn.slot->enclave.reset();
  conn.enclave_released = true;
  budget_->Release(PagesPerEnclave());
}

Status ProvisioningFrontend::AdmitFromQueue(size_t& progress) {
  while (!admission_queue_.empty()) {
    Connection& conn = *connections_[admission_queue_.front()];
    ASSIGN_OR_RETURN(const AdmitResult admitted, TryAdmit(conn));
    if (admitted == AdmitResult::kNoBudget) break;  // still starved; FIFO
    admission_queue_.pop_front();
    ++progress;
  }
  return Status::Ok();
}

Result<size_t> ProvisioningFrontend::PollOnce() {
  size_t progress = 0;
  for (const auto& conn : connections_) {
    RETURN_IF_ERROR(PumpConnection(*conn, progress));
  }
  RETURN_IF_ERROR(AdmitFromQueue(progress));
  return progress;
}

Status ProvisioningFrontend::DrainAll() {
  for (;;) {
    ASSIGN_OR_RETURN(const size_t progress, PollOnce());
    if (progress == 0) return Status::Ok();
  }
}

Result<ProvisionOutcome> ProvisioningFrontend::TakeOutcome(uint64_t id) {
  if (id >= connections_.size()) {
    return OutOfRangeError("no such frontend connection");
  }
  Connection& conn = *connections_[id];
  if (conn.state != ConnectionState::kDone) {
    return FailedPreconditionError("connection has not reached a verdict");
  }
  if (conn.outcome_taken || !conn.outcome.has_value()) {
    return FailedPreconditionError("outcome already taken");
  }
  conn.outcome_taken = true;
  ProvisionOutcome outcome = std::move(*conn.outcome);
  conn.outcome.reset();
  return outcome;
}

size_t ProvisioningFrontend::active_count() const noexcept {
  size_t active = 0;
  for (const auto& conn : connections_) {
    if (conn->state == ConnectionState::kActive) ++active;
  }
  return active;
}

std::vector<int> ProvisioningFrontend::PollDescriptors() const {
  std::vector<int> descriptors;
  for (const auto& conn : connections_) {
    if (conn->state != ConnectionState::kActive &&
        conn->state != ConnectionState::kQueued) {
      continue;
    }
    const int fd = conn->transport->descriptor();
    if (fd >= 0) descriptors.push_back(fd);
  }
  return descriptors;
}

}  // namespace engarde::core
