#include "core/frontend.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "core/inspection.h"
#include "core/protocol.h"
#include "core/verdict_cache.h"
#include "sgx/device.h"

namespace engarde::core {
namespace {

// Moves everything the session has written (via EndA) out to the transport.
// Returns the number of bytes moved.
Result<size_t> ShuttleOut(crypto::DuplexPipe::Endpoint wire,
                          net::Transport& transport) {
  const size_t pending = wire.Available();
  if (pending == 0) return size_t{0};
  ASSIGN_OR_RETURN(const Bytes data, wire.Read(pending));
  RETURN_IF_ERROR(transport.Send(ByteView(data)));
  return pending;
}

uint64_t BudgetFromDevice(sgx::HostOs& host, const FrontendOptions& options) {
  const uint64_t capacity = host.device()->epc().capacity();
  return capacity > options.epc_reserve_pages
             ? capacity - options.epc_reserve_pages
             : 0;
}

void AtomicMax(std::atomic<uint64_t>& cell, uint64_t value) {
  uint64_t current = cell.load(std::memory_order_relaxed);
  while (current < value &&
         !cell.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

// Round-up nanoseconds -> milliseconds (a derived deadline must cover the
// samples it came from).
uint64_t CeilNsToMs(uint64_t ns) { return (ns + 999999) / 1000000; }

}  // namespace

size_t LatencyBucketIndex(uint64_t duration_ns) noexcept {
  if (duration_ns == 0) return 0;
  const size_t bit = static_cast<size_t>(std::bit_width(duration_ns)) - 1;
  return std::min(bit, kLatencyBuckets - 1);
}

uint64_t HistogramCount(const uint64_t (&buckets)[kLatencyBuckets]) noexcept {
  uint64_t total = 0;
  for (const uint64_t count : buckets) total += count;
  return total;
}

uint64_t HistogramPercentileNs(const uint64_t (&buckets)[kLatencyBuckets],
                               uint32_t percent) noexcept {
  const uint64_t total = HistogramCount(buckets);
  if (total == 0) return 0;
  const uint64_t need = (total * percent + 99) / 100;  // ceil
  uint64_t seen = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    seen += buckets[i];
    // Exclusive upper bound of the covering bucket: conservative by design.
    if (seen >= need) return uint64_t{1} << std::min<size_t>(i + 1, 63);
  }
  return uint64_t{1} << std::min<size_t>(kLatencyBuckets, 63);
}

void FrontendMetrics::Merge(const FrontendMetrics& other) noexcept {
  accepted += other.accepted;
  admitted += other.admitted;
  admitted_warm += other.admitted_warm;
  queued += other.queued;
  shed += other.shed;
  timed_out += other.timed_out;
  failed += other.failed;
  done += other.done;
  reaped += other.reaped;
  live_connections += other.live_connections;
  peak_live_connections =
      std::max(peak_live_connections, other.peak_live_connections);
  queue_depth += other.queue_depth;
  admission_wait_count += other.admission_wait_count;
  admission_wait_total_ns += other.admission_wait_total_ns;
  admission_wait_max_ns =
      std::max(admission_wait_max_ns, other.admission_wait_max_ns);
  session_count += other.session_count;
  session_total_ns += other.session_total_ns;
  session_max_ns = std::max(session_max_ns, other.session_max_ns);
  decode_overlap_count += other.decode_overlap_count;
  decode_early_bytes_total += other.decode_early_bytes_total;
  decode_overlap_sum_permille += other.decode_overlap_sum_permille;
  decode_overlap_max_permille =
      std::max(decode_overlap_max_permille, other.decode_overlap_max_permille);
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    admission_wait_hist[i] += other.admission_wait_hist[i];
    session_hist[i] += other.session_hist[i];
  }
  // Effective deadlines are per-shard policy outputs over (mostly) the same
  // workload; the max is the representative aggregate. tenants_seen maxes
  // because one tenant may hit several shards.
  effective_queue_deadline_ms =
      std::max(effective_queue_deadline_ms, other.effective_queue_deadline_ms);
  effective_idle_deadline_ms =
      std::max(effective_idle_deadline_ms, other.effective_idle_deadline_ms);
  effective_session_deadline_ms = std::max(effective_session_deadline_ms,
                                           other.effective_session_deadline_ms);
  effective_retry_after_ms =
      std::max(effective_retry_after_ms, other.effective_retry_after_ms);
  deadline_recomputes += other.deadline_recomputes;
  evicted_oldest += other.evicted_oldest;
  rate_limit_deferrals += other.rate_limit_deferrals;
  tenants_seen = std::max(tenants_seen, other.tenants_seen);
  // Budget and paging fields are per-budget / per-host-OS, not per-shard:
  // taking the max keeps a self-merge correct, and the caller that knows
  // which shards share them fills them once after merging.
  budget_pages = std::max(budget_pages, other.budget_pages);
  committed_pages = std::max(committed_pages, other.committed_pages);
  max_committed_pages = std::max(max_committed_pages, other.max_committed_pages);
  physical_budget_pages =
      std::max(physical_budget_pages, other.physical_budget_pages);
  budget_underflows = std::max(budget_underflows, other.budget_underflows);
  epc_faults = std::max(epc_faults, other.epc_faults);
  eldu_loads = std::max(eldu_loads, other.eldu_loads);
  pages_reclaimed = std::max(pages_reclaimed, other.pages_reclaimed);
  pages_evicted_inline =
      std::max(pages_evicted_inline, other.pages_evicted_inline);
  reclaim_wakeups = std::max(reclaim_wakeups, other.reclaim_wakeups);
  epc_resident_pages = std::max(epc_resident_pages, other.epc_resident_pages);
  epc_resident_peak = std::max(epc_resident_peak, other.epc_resident_peak);
  epc_capacity_pages = std::max(epc_capacity_pages, other.epc_capacity_pages);
  // The verdict cache is one shared object across a group's shards (see the
  // budget/paging note above), so its totals max-merge too.
  verdict_cache_hits = std::max(verdict_cache_hits, other.verdict_cache_hits);
  verdict_cache_partial_hits =
      std::max(verdict_cache_partial_hits, other.verdict_cache_partial_hits);
  verdict_cache_misses =
      std::max(verdict_cache_misses, other.verdict_cache_misses);
  verdict_cache_tamper_rejects = std::max(verdict_cache_tamper_rejects,
                                          other.verdict_cache_tamper_rejects);
  verdict_cache_evictions =
      std::max(verdict_cache_evictions, other.verdict_cache_evictions);
  verdict_cache_bytes_sealed =
      std::max(verdict_cache_bytes_sealed, other.verdict_cache_bytes_sealed);
  groups_admitted += other.groups_admitted;
  group_members_admitted += other.group_members_admitted;
  groups_rejected_mutual += other.groups_rejected_mutual;
}

EngardeOptions ProvisioningFrontend::PerEnclaveOptions() const {
  EngardeOptions enclave_options = options_.enclave_options;
  enclave_options.inspection_threads = 1;
  enclave_options.shared_inspection_pool = inspection_pool_.get();
  return enclave_options;
}

uint64_t ProvisioningFrontend::NowNs() const {
  if (options_.clock) return options_.clock();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ProvisioningFrontend::ProvisioningFrontend(
    sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
    std::function<PolicySet()> policy_factory, FrontendOptions options)
    : host_(host),
      quoting_(quoting),
      policy_factory_(std::move(policy_factory)),
      options_(std::move(options)),
      inspection_pool_(options_.inspection_threads > 1
                           ? std::make_unique<common::ThreadPool>(
                                 options_.inspection_threads)
                           : nullptr),
      owned_budget_(std::make_unique<EpcBudget>(
          BudgetFromDevice(*host, options_), options_.epc_oversub,
          options_.session_quota_pages)),
      owned_pool_(std::make_unique<WarmEnclavePool>(
          host, quoting, policy_factory_, PerEnclaveOptions())),
      budget_(owned_budget_.get()),
      pool_(owned_pool_.get()) {
  InitEffectiveDeadlines();
}

ProvisioningFrontend::ProvisioningFrontend(
    sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
    std::function<PolicySet()> policy_factory, FrontendOptions options,
    EpcBudget* budget, WarmEnclavePool* pool)
    : host_(host),
      quoting_(quoting),
      policy_factory_(std::move(policy_factory)),
      options_(std::move(options)),
      inspection_pool_(options_.inspection_threads > 1
                           ? std::make_unique<common::ThreadPool>(
                                 options_.inspection_threads)
                           : nullptr),
      budget_(budget),
      pool_(pool) {
  InitEffectiveDeadlines();
}

void ProvisioningFrontend::InitEffectiveDeadlines() noexcept {
  metrics_cells_.eff_queue_deadline_ms.store(options_.queue_deadline_ms,
                                             std::memory_order_relaxed);
  metrics_cells_.eff_idle_deadline_ms.store(options_.idle_deadline_ms,
                                            std::memory_order_relaxed);
  metrics_cells_.eff_session_deadline_ms.store(options_.session_deadline_ms,
                                               std::memory_order_relaxed);
  metrics_cells_.eff_retry_after_ms.store(options_.retry_after_ms,
                                          std::memory_order_relaxed);
}

uint64_t ProvisioningFrontend::ClampAdaptiveMs(uint64_t ms) const noexcept {
  const uint64_t floor_ms = options_.adaptive_min_ms;
  const uint64_t ceil_ms = std::max(options_.adaptive_max_ms, floor_ms);
  return std::min(std::max(ms, floor_ms), ceil_ms);
}

uint64_t ApplyHysteresis(uint64_t current, uint64_t proposed,
                         uint64_t hysteresis_pct) noexcept {
  if (current == 0) return proposed;  // nothing in force yet: adopt outright
  const uint64_t delta =
      current > proposed ? current - proposed : proposed - current;
  return delta * 100 > current * hysteresis_pct ? proposed : current;
}

uint64_t ProvisioningFrontend::WithHysteresis(uint64_t current,
                                              uint64_t proposed) const noexcept {
  return ApplyHysteresis(current, proposed, options_.adaptive_hysteresis_pct);
}

void ProvisioningFrontend::MaybeRecomputeDeadlines(uint64_t now_ns) {
  if (!options_.adaptive_deadlines) return;
  const uint64_t cadence_ns = options_.adaptive_recompute_ms * 1000000ull;
  if (last_recompute_ns_ != 0 && now_ns >= last_recompute_ns_ &&
      now_ns - last_recompute_ns_ < cadence_ns) {
    return;
  }
  last_recompute_ns_ = now_ns;
  metrics_cells_.deadline_recomputes.fetch_add(1, std::memory_order_relaxed);

  const auto adopt = [this](std::atomic<uint64_t>& cell, uint64_t proposed) {
    const uint64_t current = cell.load(std::memory_order_relaxed);
    const uint64_t next = WithHysteresis(current, proposed);
    if (next != current) cell.store(next, std::memory_order_relaxed);
  };
  const auto snapshot = [](const std::atomic<uint64_t> (&cells)[kLatencyBuckets],
                           uint64_t (&out)[kLatencyBuckets]) {
    for (size_t i = 0; i < kLatencyBuckets; ++i) {
      out[i] = cells[i].load(std::memory_order_relaxed);
    }
  };

  // Cold start: each histogram drives its deadlines only once it holds
  // enough samples; until then the value in force (initially the static
  // option) stands.
  uint64_t sessions[kLatencyBuckets];
  snapshot(metrics_cells_.session_hist, sessions);
  if (HistogramCount(sessions) >= options_.adaptive_min_samples) {
    const uint64_t p95_ns = HistogramPercentileNs(sessions, 95);
    adopt(metrics_cells_.eff_session_deadline_ms,
          ClampAdaptiveMs(CeilNsToMs(8 * p95_ns)));
    adopt(metrics_cells_.eff_idle_deadline_ms,
          ClampAdaptiveMs(CeilNsToMs(4 * p95_ns)));
  }
  uint64_t waits[kLatencyBuckets];
  snapshot(metrics_cells_.admission_wait_hist, waits);
  if (HistogramCount(waits) >= options_.adaptive_min_samples) {
    adopt(metrics_cells_.eff_queue_deadline_ms,
          ClampAdaptiveMs(CeilNsToMs(4 * HistogramPercentileNs(waits, 95))));
    // The back-off hint tracks the median wait: long enough that a retry
    // usually finds room, short enough not to idle a healthy client. Only
    // the ceiling applies — a sub-adaptive_min_ms hint is useful.
    const uint64_t hint_ms = std::max<uint64_t>(
        1, std::min(CeilNsToMs(HistogramPercentileNs(waits, 50)),
                    std::max(options_.adaptive_max_ms, uint64_t{1})));
    adopt(metrics_cells_.eff_retry_after_ms, hint_ms);
  }
}

Status ProvisioningFrontend::PrefillPool(size_t count) {
  for (size_t i = 0; i < count; ++i) {
    if (!budget_->TryReserve(PagesPerEnclave())) {
      return ResourceExhaustedError(
          "EPC admission budget cannot hold another pooled enclave");
    }
    const Status added = pool_->AddOne();
    if (!added.ok()) {
      budget_->Release(PagesPerEnclave());
      return added;
    }
  }
  return Status::Ok();
}

ProvisioningFrontend::Connection* ProvisioningFrontend::Find(
    uint64_t id) noexcept {
  const uint32_t slot = static_cast<uint32_t>(id);
  const uint32_t generation = static_cast<uint32_t>(id >> kSlotBits);
  if (slot >= slots_.size()) return nullptr;
  TableSlot& entry = slots_[slot];
  if (entry.generation != generation || entry.conn == nullptr) return nullptr;
  return entry.conn.get();
}

const ProvisioningFrontend::Connection* ProvisioningFrontend::Find(
    uint64_t id) const noexcept {
  return const_cast<ProvisioningFrontend*>(this)->Find(id);
}

const ProvisioningFrontend::Connection& ProvisioningFrontend::Get(
    uint64_t id) const {
  const Connection* conn = Find(id);
  assert(conn != nullptr && "introspection on a reaped or unknown connection");
  return *conn;
}

Result<uint64_t> ProvisioningFrontend::Accept(
    std::unique_ptr<net::Transport> transport) {
  uint32_t slot_index = 0;
  if (!free_slots_.empty()) {
    slot_index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot_index = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  auto conn = std::make_unique<Connection>();
  conn->id = MakeId(slot_index, slots_[slot_index].generation);
  conn->transport = std::move(transport);
  conn->pipe = std::make_unique<crypto::DuplexPipe>();
  conn->tenant = conn->transport->peer();
  const uint64_t now = NowNs();
  conn->accepted_ns = now;
  conn->last_input_ns = now;
  slots_[slot_index].conn = std::move(conn);
  Connection& accepted = *slots_[slot_index].conn;
  const size_t live = live_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  metrics_cells_.accepted.fetch_add(1, std::memory_order_relaxed);
  AtomicMax(metrics_cells_.peak_live, live);

  // Fleet mode: nothing is admitted (or even budgeted) until the client's
  // GroupManifest frame arrives — the connection parks and the reactor
  // decides once it can see the whole group.
  if (options_.group_provisioning) {
    accepted.state = ConnectionState::kAwaitGroup;
    return accepted.id;
  }

  // Arrivals behind the queue must not overtake it; only try immediate
  // admission when nobody is already waiting (and, under fair admission,
  // the tenant's token bucket covers the session).
  bool admissible = true;
  if (options_.fair_admission) {
    admissible = TenantAdmissible(TenantFor(accepted.tenant), 1, now);
  }
  if (TotalQueued() == 0 && admissible) {
    ASSIGN_OR_RETURN(const AdmitResult admitted, TryAdmit(accepted));
    if (admitted == AdmitResult::kAdmitted) {
      if (options_.fair_admission) ChargeTokens(TenantFor(accepted.tenant), 1);
      return accepted.id;
    }
  }
  if (TotalQueued() < options_.admission_queue_capacity) {
    EnqueueForAdmission(accepted);
    return accepted.id;  // stays kQueued; nothing on the wire yet
  }
  if (options_.evict_oldest) {
    // Queue pressure: the oldest waiter — the one closest to blowing its
    // queue deadline — yields its place to the newcomer.
    ASSIGN_OR_RETURN(const bool evicted, EvictOldestQueued());
    if (evicted) {
      EnqueueForAdmission(accepted);
      return accepted.id;
    }
  }
  RETURN_IF_ERROR(Shed(accepted));
  return accepted.id;
}

Result<ProvisioningFrontend::AdmitResult> ProvisioningFrontend::TryAdmit(
    Connection& conn) {
  PolicySet policies = policy_factory_();
  const std::string fingerprint = PolicySetFingerprint(policies);
  std::unique_ptr<PooledEnclave> slot = pool_->TryTake(fingerprint);
  if (slot == nullptr) {
    // Cold path: the enclave's pages are committed now; a pooled handout's
    // were committed at prefill/top-up time. Reserve first so a sibling
    // reactor racing this admission can never jointly overdraw the budget.
    if (!budget_->TryReserve(PagesPerEnclave())) {
      return AdmitResult::kNoBudget;
    }
    Result<std::unique_ptr<PooledEnclave>> built = WarmEnclavePool::BuildEntry(
        host_, *quoting_, std::move(policies), PerEnclaveOptions());
    if (!built.ok()) {
      budget_->Release(PagesPerEnclave());
      // The device itself ran out of EPC (someone else holds pages outside
      // our budget): treat like over-budget so the client gets RetryAfter
      // instead of a hard failure.
      if (IsRetryableResourceError(built.status())) {
        return AdmitResult::kNoBudget;
      }
      return built.status();
    }
    slot = std::move(*built);
  } else {
    conn.from_pool = true;
  }

  conn.slot = std::move(slot);
  // Frontend paths announce themselves: a control frame first, then the
  // exact hello bytes a direct SendHello would produce. Written through
  // EndA so ordering with later session output is automatic.
  crypto::DuplexPipe::Endpoint session_side = conn.pipe->EndA();
  RETURN_IF_ERROR(
      WriteControlFrame(session_side, ControlType::kHelloFollows, {}));
  session_side.Write(ByteView(conn.slot->hello_wire));
  conn.session.emplace(&*conn.slot->enclave, session_side);
  // A session parked at the DONE barrier behind in-flight decode tasks must
  // yield to the sweep instead of blocking it; PumpConnection re-pumps it
  // until the pool drains and the verdict lands.
  conn.session->set_async_barrier(true);
  conn.state = ConnectionState::kActive;
  const uint64_t now = NowNs();
  conn.last_input_ns = now;  // the idle clock starts at admission
  const uint64_t wait =
      now >= conn.accepted_ns ? now - conn.accepted_ns : 0;
  metrics_cells_.admitted.fetch_add(1, std::memory_order_relaxed);
  if (conn.from_pool) {
    metrics_cells_.admitted_warm.fetch_add(1, std::memory_order_relaxed);
  }
  metrics_cells_.admission_wait_count.fetch_add(1, std::memory_order_relaxed);
  metrics_cells_.admission_wait_total_ns.fetch_add(wait,
                                                   std::memory_order_relaxed);
  AtomicMax(metrics_cells_.admission_wait_max_ns, wait);
  metrics_cells_.admission_wait_hist[LatencyBucketIndex(wait)].fetch_add(
      1, std::memory_order_relaxed);
  // Push the greeting out immediately so in-memory clients can respond to
  // it right after Accept() returns, without waiting for a PollOnce().
  RETURN_IF_ERROR(ShuttleOut(conn.pipe->EndB(), *conn.transport).status());
  RETURN_IF_ERROR(conn.transport->Flush().status());
  // Oversubscribed admission eats physical headroom before any page faults:
  // kick the reclaimer now so cold pages are already written back when the
  // new session starts touching its working set.
  if (options_.reclaim_low_watermark > 0 &&
      host_->device()->FreeEpcPages() < options_.reclaim_low_watermark) {
    host_->NotifyEpcPressure();
  }
  return AdmitResult::kAdmitted;
}

Result<ProvisioningFrontend::AdmitResult> ProvisioningFrontend::TryAdmitGroup(
    Connection& conn) {
  const GroupManifest& manifest = *conn.group_manifest;
  const std::string fingerprint = PolicySetFingerprint(policy_factory_());
  const uint64_t pages = PagesPerEnclave();
  const uint64_t heap_bytes =
      options_.enclave_options.layout.heap_pages * sgx::kPageSize;
  const size_t count = manifest.members.size();

  // All-or-nothing: any exit before the success epilogue must leave the pool
  // and the budget exactly as it found them.
  std::vector<std::unique_ptr<PooledEnclave>> slots(count);
  std::vector<bool> warm(count, false);
  const auto roll_back_handouts = [&] {
    for (size_t i = 0; i < count; ++i) {
      if (slots[i] != nullptr && warm[i]) pool_->Return(std::move(slots[i]));
    }
  };

  // Validate-then-acquire per member, in declaration order: a manifest that
  // turns invalid at member k must return the k handouts already taken.
  for (size_t i = 0; i < count; ++i) {
    const GroupMember& member = manifest.members[i];
    Status invalid = Status::Ok();
    if (member.policy_fingerprint != fingerprint) {
      invalid = InvalidArgumentError(
          "group member " + std::to_string(i) +
          " expects a policy set this front end does not serve");
    } else if (member.binary_size == 0 || member.binary_size > heap_bytes) {
      invalid = InvalidArgumentError(
          "group member " + std::to_string(i) +
          " declares a binary that cannot fit the enclave staging area");
    }
    if (!invalid.ok()) {
      roll_back_handouts();
      return invalid;
    }
    slots[i] = pool_->TryTake(fingerprint);
    warm[i] = slots[i] != nullptr;
  }

  // One reservation covers every cold member; warm handouts carry their
  // prefill-time reservation with them.
  size_t cold = 0;
  for (size_t i = 0; i < count; ++i) {
    if (!warm[i]) ++cold;
  }
  if (cold > 0 && !budget_->TryReserve(cold * pages)) {
    roll_back_handouts();
    return AdmitResult::kNoBudget;
  }
  Status build_failure = Status::Ok();
  for (size_t i = 0; i < count && build_failure.ok(); ++i) {
    if (slots[i] != nullptr) continue;
    Result<std::unique_ptr<PooledEnclave>> built = WarmEnclavePool::BuildEntry(
        host_, *quoting_, policy_factory_(), PerEnclaveOptions());
    if (!built.ok()) {
      build_failure = built.status();
    } else {
      slots[i] = std::move(*built);
    }
  }
  if (!build_failure.ok()) {
    for (size_t i = 0; i < count; ++i) {
      if (slots[i] == nullptr || warm[i]) continue;
      // Cold members built before the failure go away entirely.
      (void)host_->DestroyEnclave(slots[i]->enclave->enclave_id());
      slots[i].reset();
    }
    budget_->Release(cold * pages);
    roll_back_handouts();
    if (IsRetryableResourceError(build_failure)) return AdmitResult::kNoBudget;
    return build_failure;
  }

  // Group hello: one quote signed over the ordered member identities, then
  // each member's public key. Signed outside any ScopedAccountant — like a
  // solo quote, attestation is provider-side work, never a session charge.
  std::vector<sgx::Report> reports;
  reports.reserve(count);
  for (const auto& slot : slots) {
    reports.push_back(slot->enclave->quote().report);
  }
  Result<sgx::Quote> group_quote = quoting_->CreateGroupQuote(reports);
  if (!group_quote.ok()) {
    for (size_t i = 0; i < count; ++i) {
      if (slots[i] == nullptr || warm[i]) continue;
      (void)host_->DestroyEnclave(slots[i]->enclave->enclave_id());
      slots[i].reset();
    }
    budget_->Release(cold * pages);
    roll_back_handouts();
    return group_quote.status();
  }
  crypto::DuplexPipe::Endpoint session_side = conn.pipe->EndA();
  RETURN_IF_ERROR(
      WriteControlFrame(session_side, ControlType::kHelloFollows, {}));
  RETURN_IF_ERROR(
      WriteFrame(session_side, ByteView(group_quote->Serialize())));
  for (const auto& slot : slots) {
    RETURN_IF_ERROR(WriteFrame(
        session_side, ByteView(slot->enclave->public_key().Serialize())));
  }

  conn.from_pool = cold == 0;
  conn.group_slots = std::move(slots);
  std::vector<PooledEnclave*> borrowed;
  borrowed.reserve(count);
  for (const auto& slot : conn.group_slots) borrowed.push_back(slot.get());
  conn.group_session = std::make_unique<GroupProvisioningSession>(
      host_, std::move(*conn.group_manifest), std::move(borrowed),
      session_side);
  conn.group_manifest.reset();
  conn.state = ConnectionState::kActive;

  const uint64_t now = NowNs();
  conn.last_input_ns = now;
  const uint64_t wait = now >= conn.accepted_ns ? now - conn.accepted_ns : 0;
  metrics_cells_.admitted.fetch_add(1, std::memory_order_relaxed);
  if (conn.from_pool) {
    metrics_cells_.admitted_warm.fetch_add(1, std::memory_order_relaxed);
  }
  metrics_cells_.groups_admitted.fetch_add(1, std::memory_order_relaxed);
  metrics_cells_.group_members_admitted.fetch_add(count,
                                                  std::memory_order_relaxed);
  metrics_cells_.admission_wait_count.fetch_add(1, std::memory_order_relaxed);
  metrics_cells_.admission_wait_total_ns.fetch_add(wait,
                                                   std::memory_order_relaxed);
  AtomicMax(metrics_cells_.admission_wait_max_ns, wait);
  metrics_cells_.admission_wait_hist[LatencyBucketIndex(wait)].fetch_add(
      1, std::memory_order_relaxed);
  RETURN_IF_ERROR(ShuttleOut(conn.pipe->EndB(), *conn.transport).status());
  RETURN_IF_ERROR(conn.transport->Flush().status());
  if (options_.reclaim_low_watermark > 0 &&
      host_->device()->FreeEpcPages() < options_.reclaim_low_watermark) {
    host_->NotifyEpcPressure();
  }
  return AdmitResult::kAdmitted;
}

Status ProvisioningFrontend::PumpAwaitGroup(Connection& conn, uint64_t now_ns,
                                            size_t& progress) {
  crypto::DuplexPipe::Endpoint session_side = conn.pipe->EndA();
  Result<std::optional<Bytes>> frame = TryReadFrame(session_side);
  if (!frame.ok()) {
    FailConnection(conn, frame.status(), now_ns, progress);
    return Status::Ok();
  }
  if (!frame->has_value()) {
    if (session_side.AtEof()) {
      FailConnection(
          conn, ProtocolError("peer closed before sending a group manifest"),
          now_ns, progress);
    }
    return Status::Ok();
  }
  Result<GroupManifest> parsed =
      GroupManifest::Deserialize(ByteView((*frame)->data(), (*frame)->size()));
  if (!parsed.ok()) {
    FailConnection(conn, parsed.status(), now_ns, progress);
    return Status::Ok();
  }
  conn.group_manifest.emplace(std::move(*parsed));
  ++progress;

  // Same FIFO discipline as solo Accept: a freshly declared group must not
  // overtake groups already queued for budget. A group charges its full
  // co-admission cost — all members — to its tenant's bucket.
  const uint64_t cost = AdmissionCost(conn);
  bool admissible = true;
  if (options_.fair_admission) {
    admissible = TenantAdmissible(TenantFor(conn.tenant), cost, now_ns);
  }
  if (TotalQueued() == 0 && admissible) {
    Result<AdmitResult> admitted = TryAdmitGroup(conn);
    if (!admitted.ok()) {
      FailConnection(conn, admitted.status(), now_ns, progress);
      return Status::Ok();
    }
    if (*admitted == AdmitResult::kAdmitted) {
      if (options_.fair_admission) ChargeTokens(TenantFor(conn.tenant), cost);
      return Status::Ok();
    }
  }
  if (TotalQueued() < options_.admission_queue_capacity) {
    conn.state = ConnectionState::kQueued;
    EnqueueForAdmission(conn);
    return Status::Ok();
  }
  if (options_.evict_oldest) {
    ASSIGN_OR_RETURN(const bool evicted, EvictOldestQueued());
    if (evicted) {
      conn.state = ConnectionState::kQueued;
      EnqueueForAdmission(conn);
      return Status::Ok();
    }
  }
  return Shed(conn);
}

Status ProvisioningFrontend::Shed(Connection& conn) {
  RetryAfter record;
  record.retry_after_ms =
      metrics_cells_.eff_retry_after_ms.load(std::memory_order_relaxed);
  record.queue_depth = static_cast<uint32_t>(TotalQueued());
  record.epc_pages_in_use = budget_->committed_pages();
  record.epc_budget_pages = budget_->budget_pages();
  crypto::DuplexPipe::Endpoint session_side = conn.pipe->EndA();
  RETURN_IF_ERROR(WriteControlFrame(session_side, ControlType::kRetryAfter,
                                    ByteView(record.Serialize())));
  conn.state = ConnectionState::kShed;
  metrics_cells_.shed.fetch_add(1, std::memory_order_relaxed);
  RecordTerminal(conn, NowNs());
  // Best-effort delivery, same containment as ExpireConnection: a hard wire
  // error here used to propagate out of Accept()/AdmitFromQueue() and poison
  // the whole sweep — now it just latches wire_dead and the reaper retires
  // the slot. A short write (flushed == false) leaves the tail on the
  // internal wire; the terminal-state branch of PumpConnection keeps
  // draining it every sweep and only reaps once the RetryAfter has fully
  // landed, so a shed client never misses the record.
  const Status shuttled =
      ShuttleOut(conn.pipe->EndB(), *conn.transport).status();
  Result<bool> flush_result =
      shuttled.ok() ? conn.transport->Flush() : Result<bool>(false);
  if (!shuttled.ok() || !flush_result.ok()) {
    conn.wire_dead = true;
    conn.transport->Close();
  } else if (*flush_result) {
    conn.transport->Close();
  }
  return Status::Ok();
}

void ProvisioningFrontend::RecordDecodeOverlap(const ProvisionStats& stats) {
  if (stats.streaming_text_bytes == 0) return;  // staged run: no speculation
  metrics_cells_.decode_overlap_count.fetch_add(1, std::memory_order_relaxed);
  metrics_cells_.decode_early_bytes_total.fetch_add(
      stats.streaming_bytes_before_done, std::memory_order_relaxed);
  const uint64_t permille =
      stats.streaming_bytes_before_done * 1000 / stats.streaming_text_bytes;
  metrics_cells_.decode_overlap_sum_permille.fetch_add(
      permille, std::memory_order_relaxed);
  AtomicMax(metrics_cells_.decode_overlap_max_permille, permille);
}

void ProvisioningFrontend::RecordTerminal(Connection& conn, uint64_t now_ns) {
  const uint64_t duration =
      now_ns >= conn.accepted_ns ? now_ns - conn.accepted_ns : 0;
  metrics_cells_.session_count.fetch_add(1, std::memory_order_relaxed);
  metrics_cells_.session_total_ns.fetch_add(duration,
                                            std::memory_order_relaxed);
  AtomicMax(metrics_cells_.session_max_ns, duration);
  metrics_cells_.session_hist[LatencyBucketIndex(duration)].fetch_add(
      1, std::memory_order_relaxed);
}

bool ProvisioningFrontend::Expired(const Connection& conn, uint64_t now_ns,
                                   uint64_t* deadline_ms,
                                   const char** what) const {
  const auto blown = [now_ns](uint64_t since_ns, uint64_t budget_ms) {
    return budget_ms > 0 && now_ns >= since_ns &&
           now_ns - since_ns >= budget_ms * 1000000ull;
  };
  // Deadlines in force: the static options, or the latest adaptive
  // recompute's percentile-derived values (identical when adaptive is off).
  const uint64_t queue_ms =
      metrics_cells_.eff_queue_deadline_ms.load(std::memory_order_relaxed);
  const uint64_t idle_ms =
      metrics_cells_.eff_idle_deadline_ms.load(std::memory_order_relaxed);
  const uint64_t session_ms =
      metrics_cells_.eff_session_deadline_ms.load(std::memory_order_relaxed);
  if (conn.state == ConnectionState::kQueued &&
      blown(conn.accepted_ns, queue_ms)) {
    *deadline_ms = queue_ms;
    *what = "admission-queue";
    return true;
  }
  if ((conn.state == ConnectionState::kActive ||
       conn.state == ConnectionState::kAwaitGroup) &&
      blown(conn.last_input_ns, idle_ms)) {
    *deadline_ms = idle_ms;
    *what = "inbound-idle";
    return true;
  }
  if ((conn.state == ConnectionState::kQueued ||
       conn.state == ConnectionState::kActive ||
       conn.state == ConnectionState::kAwaitGroup) &&
      blown(conn.accepted_ns, session_ms)) {
    *deadline_ms = session_ms;
    *what = "session";
    return true;
  }
  return false;
}

Status ProvisioningFrontend::ExpireConnection(Connection& conn,
                                              uint64_t now_ns,
                                              uint64_t deadline_ms,
                                              const char* what) {
  DeadlineNotice notice;
  notice.elapsed_ms =
      (now_ns >= conn.accepted_ns ? now_ns - conn.accepted_ns : 0) / 1000000u;
  notice.deadline_ms = deadline_ms;
  // Best-effort parting record. A queued connection has had nothing written
  // yet, so the client's AwaitAdmission sees this as its first control frame;
  // an admitted one may or may not read past the hello — either way the
  // enclave and its pages are coming back.
  crypto::DuplexPipe::Endpoint session_side = conn.pipe->EndA();
  RETURN_IF_ERROR(WriteControlFrame(session_side,
                                    ControlType::kDeadlineExceeded,
                                    ByteView(notice.Serialize())));
  if (conn.state == ConnectionState::kQueued) RemoveFromQueue(conn);
  conn.failure = DeadlineExceededError(
      std::string(what) + " deadline (" + std::to_string(deadline_ms) +
      "ms) exceeded after " + std::to_string(notice.elapsed_ms) + "ms");
  conn.state = ConnectionState::kTimedOut;
  metrics_cells_.timed_out.fetch_add(1, std::memory_order_relaxed);
  RecordTerminal(conn, now_ns);
  ReleaseEnclave(conn);
  // Best-effort delivery of the notice: an expired connection's wire is
  // often the thing that misbehaved, so an error here just kills the wire.
  const Status shuttled = ShuttleOut(conn.pipe->EndB(), *conn.transport)
                              .status();
  Result<bool> flush_result =
      shuttled.ok() ? conn.transport->Flush() : Result<bool>(false);
  if (!shuttled.ok() || !flush_result.ok()) {
    conn.wire_dead = true;
    conn.transport->Close();
  } else if (*flush_result && conn.transport->descriptor() >= 0) {
    conn.transport->Close();
  }
  return Status::Ok();
}

Status ProvisioningFrontend::PumpConnection(Connection& conn, uint64_t now_ns,
                                            size_t& progress) {
  uint64_t deadline_ms = 0;
  const char* what = nullptr;
  switch (conn.state) {
    case ConnectionState::kQueued:
      // Admitted via AdmitFromQueue, never pumped — but the wait itself is
      // on the clock.
      if (Expired(conn, now_ns, &deadline_ms, &what)) {
        RETURN_IF_ERROR(ExpireConnection(conn, now_ns, deadline_ms, what));
        ++progress;
      }
      return Status::Ok();
    case ConnectionState::kShed:
    case ConnectionState::kDone:
    case ConnectionState::kFailed:
    case ConnectionState::kTimedOut: {
      // Only residual outbound bytes (verdict tail, retry-after, deadline
      // notice) remain. A transport hard error here means the tail is
      // undeliverable: latch wire_dead, stop touching the wire, and let the
      // reaper take the slot — one bad socket never poisons the sweep.
      bool dead = conn.wire_dead;
      size_t moved = 0;
      bool flushed = true;
      if (!dead) {
        Result<size_t> moved_result =
            ShuttleOut(conn.pipe->EndB(), *conn.transport);
        if (!moved_result.ok()) {
          dead = true;
        } else {
          moved = *moved_result;
          Result<bool> flush_result = conn.transport->Flush();
          if (!flush_result.ok()) {
            dead = true;
          } else {
            flushed = *flush_result;
          }
        }
        if (dead) {
          conn.wire_dead = true;
          conn.transport->Close();
          ++progress;
        }
      }
      if (moved > 0) ++progress;
      // An unflushed tail is work in flight (a short-writing transport moves
      // a bounded chunk per Flush): count it so DrainAll keeps sweeping
      // until the tail lands and the connection can be reaped.
      if (!dead && !flushed) ++progress;
      const bool tail_landed =
          dead || (flushed && conn.pipe->EndB().Available() == 0);
      if (!dead && flushed && conn.pipe->EndB().Available() == 0 &&
          conn.transport->descriptor() >= 0) {
        conn.transport->Close();
      }
      // Reap once the outbound tail has landed (or died) and nobody still
      // needs the connection's record: a verdict counts as "needed" until
      // TakeOutcome (or TakeGroupOutcomes) moves it out, so polling drivers
      // keep their introspection window.
      const bool outcome_claimed = conn.group_session != nullptr
                                       ? conn.group_outcomes_taken
                                       : conn.outcome_taken;
      if (tail_landed &&
          (conn.state != ConnectionState::kDone || outcome_claimed)) {
        Reap(conn);  // invalidates conn
        ++progress;
      }
      return Status::Ok();
    }
    case ConnectionState::kReaped:
      return InternalError("kReaped is a reporting state, never stored");
    case ConnectionState::kAwaitGroup:
    case ConnectionState::kActive:
      break;
  }

  // Inbound: transport -> internal wire. A hard transport error fails this
  // connection, not the reactor.
  Bytes inbound;
  Result<size_t> drain_result = conn.transport->Drain(inbound);
  if (!drain_result.ok()) {
    FailConnection(conn, drain_result.status(), now_ns, progress);
    return Status::Ok();
  }
  const size_t drained = *drain_result;
  crypto::DuplexPipe::Endpoint wire_side = conn.pipe->EndB();
  if (drained > 0) {
    wire_side.Write(ByteView(inbound));
    conn.last_input_ns = now_ns;
    ++progress;
  }
  if (conn.transport->AtEof() && !conn.pipe->EndA().PeerClosed()) {
    // Propagate the peer's FIN onto the internal wire exactly once (EndA's
    // PeerClosed mirror tells us whether we already did).
    wire_side.CloseWrite();
    ++progress;
  }

  // Deadlines are judged after the drain so bytes that already arrived
  // count as progress — only a genuinely idle or overrunning connection
  // expires.
  if (Expired(conn, now_ns, &deadline_ms, &what)) {
    RETURN_IF_ERROR(ExpireConnection(conn, now_ns, deadline_ms, what));
    ++progress;
    return Status::Ok();
  }

  if (conn.state == ConnectionState::kAwaitGroup) {
    // Nothing has been written yet, so no outbound step is owed here;
    // admission/shedding write and flush their own bytes.
    return PumpAwaitGroup(conn, now_ns, progress);
  }

  if (conn.group_session != nullptr) {
    // Fleet connection: the group session scopes each member's accountant
    // and EPC pin itself, so no connection-level redirection here.
    const GroupProvisioningSession::State before = conn.group_session->state();
    const Status pumped = conn.group_session->Pump();
    if (!pumped.ok()) {
      FailConnection(conn, pumped, now_ns, progress);
      return Status::Ok();
    }
    if (conn.group_session->state() != before) ++progress;
    if (conn.group_session->done()) {
      ASSIGN_OR_RETURN(std::vector<ProvisionOutcome> outcomes,
                       conn.group_session->TakeOutcomes());
      for (const ProvisionOutcome& outcome : outcomes) {
        RecordDecodeOverlap(outcome.stats);
      }
      if (conn.group_session->group_rejected()) {
        metrics_cells_.groups_rejected_mutual.fetch_add(
            1, std::memory_order_relaxed);
      }
      conn.group_outcomes = std::move(outcomes);
      conn.state = ConnectionState::kDone;
      metrics_cells_.done.fetch_add(1, std::memory_order_relaxed);
      RecordTerminal(conn, now_ns);
      ++progress;
      if (options_.destroy_enclave_on_verdict) ReleaseEnclave(conn);
    } else if (conn.group_session->waiting_on_decode()) {
      ++progress;
      std::this_thread::yield();
    } else if (conn.group_session->state() == before &&
               conn.pipe->EndA().AtEof() &&
               conn.pipe->EndA().Available() == 0) {
      FailConnection(conn,
                     ProtocolError("peer closed mid-exchange: group stalled "
                                   "before its verdicts"),
                     now_ns, progress);
    }
  } else {
    // Pump the session under its accountant — the same redirection
    // ProvisioningServer::Drive applies, so per-phase attribution matches a
    // serial drive bit for bit.
    const ProvisioningSession::State before = conn.session->state();
    Status pumped = Status::Ok();
    {
      // Pin this enclave's pages for the duration of the pump: the reclaimer
      // must not write back the working set mid-stage. Between pumps the pin
      // drops, so a session parked in Blocks ages out like any cold enclave.
      sgx::ScopedEpcPin pin(host_->device(),
                            conn.slot->enclave->enclave_id());
      sgx::ScopedAccountant scoped(&conn.slot->accountant);
      pumped = conn.session->Pump();
    }
    if (!pumped.ok()) {
      FailConnection(conn, pumped, now_ns, progress);
      return Status::Ok();
    }
    if (conn.session->state() != before) ++progress;

    if (conn.session->done()) {
      ASSIGN_OR_RETURN(ProvisionOutcome outcome, conn.session->TakeOutcome());
      RecordDecodeOverlap(outcome.stats);
      conn.outcome.emplace(std::move(outcome));
      conn.state = ConnectionState::kDone;
      metrics_cells_.done.fetch_add(1, std::memory_order_relaxed);
      RecordTerminal(conn, now_ns);
      ++progress;
      if (options_.destroy_enclave_on_verdict) ReleaseEnclave(conn);
    } else if (conn.session->waiting_on_decode()) {
      // The image is complete but decode tasks are still retiring on the
      // inspection pool: that is work in flight, not a stall. Count it as
      // progress so DrainAll keeps sweeping until the verdict lands, and
      // give the workers the cycles they need to get there.
      ++progress;
      std::this_thread::yield();
    } else if (conn.session->state() == before &&
               conn.pipe->EndA().AtEof() &&
               conn.pipe->EndA().Available() == 0) {
      // Peer finished sending but the exchange is incomplete and no further
      // progress is possible: terminal.
      FailConnection(conn,
                     ProtocolError("peer closed mid-exchange: session "
                                   "stalled before a verdict"),
                     now_ns, progress);
    }
  }

  // Outbound: internal wire -> transport. Hard errors fail the connection;
  // any tail left on the internal wire is the terminal branch's problem.
  Result<size_t> moved_result = ShuttleOut(conn.pipe->EndB(), *conn.transport);
  if (!moved_result.ok()) {
    if (conn.state == ConnectionState::kActive) {
      FailConnection(conn, moved_result.status(), now_ns, progress);
    } else {
      conn.wire_dead = true;
      conn.transport->Close();
    }
    return Status::Ok();
  }
  if (*moved_result > 0) ++progress;
  Result<bool> flush_result = conn.transport->Flush();
  if (!flush_result.ok()) {
    if (conn.state == ConnectionState::kActive) {
      FailConnection(conn, flush_result.status(), now_ns, progress);
    } else {
      conn.wire_dead = true;
      conn.transport->Close();
    }
    return Status::Ok();
  }
  return Status::Ok();
}

void ProvisioningFrontend::FailConnection(Connection& conn, Status cause,
                                          uint64_t now_ns, size_t& progress) {
  conn.failure = std::move(cause);
  conn.state = ConnectionState::kFailed;
  metrics_cells_.failed.fetch_add(1, std::memory_order_relaxed);
  RecordTerminal(conn, now_ns);
  ReleaseEnclave(conn);
  ++progress;
}

void ProvisioningFrontend::ReleaseEnclave(Connection& conn) {
  if (conn.enclave_released) return;
  if (!conn.group_slots.empty()) {
    // Fleet connection: every member goes back at once — sessions first
    // (each holds a pointer into its enclave), then the enclaves, then one
    // release covering the whole group's reservation. Same
    // outside-any-accountant discipline as the solo path.
    if (conn.group_session != nullptr) conn.group_session->ResetSessions();
    for (auto& slot : conn.group_slots) {
      if (slot == nullptr || !slot->enclave.has_value()) continue;
      // A member abandoned mid-exchange still has its logical thread "inside"
      // (EENTER with no verdict-side EEXIT); force the asynchronous exit the
      // kernel would deliver by IPI before teardown, or EREMOVE refuses.
      host_->device()->AexAll(slot->enclave->enclave_id());
      (void)host_->DestroyEnclave(slot->enclave->enclave_id());
      slot->enclave.reset();
    }
    conn.enclave_released = true;
    budget_->Release(conn.group_slots.size() * PagesPerEnclave());
    return;
  }
  if (conn.slot == nullptr || !conn.slot->enclave.has_value()) {
    return;
  }
  const uint64_t enclave_id = conn.slot->enclave->enclave_id();
  conn.session.reset();  // holds a pointer into the enclave
  // A session abandoned before its verdict (idle/session expiry, a failed
  // wire, an evicted peer) EENTERed on its first pump and never reached the
  // cooperative EEXIT on the verdict path, so the device still counts a
  // logical thread inside and EREMOVE would refuse. Real kernels IPI every
  // CPU out of the enclave (an asynchronous exit) before sgx_encl_release
  // EREMOVEs the pages; AexAll is that forced exit.
  host_->device()->AexAll(enclave_id);
  // Deliberately OUTSIDE any ScopedAccountant: teardown EREMOVEs are charged
  // to the device-wide accountant, never the session's, so the session's
  // per-phase counts stay bit-for-bit equal to a serial Drive of the same
  // exchange (which never destroys the enclave). Destroying through the
  // HostOs (not the raw device) also retires the kernel-side page-table and
  // lock records — the map leak the lifecycle soak pins.
  (void)host_->DestroyEnclave(enclave_id);
  conn.slot->enclave.reset();
  conn.enclave_released = true;
  budget_->Release(PagesPerEnclave());
}

void ProvisioningFrontend::Reap(Connection& conn) {
  conn.transport->Close();  // idempotent for both pipe and socket transports
  const uint32_t slot_index = static_cast<uint32_t>(conn.id);
  slots_[slot_index].conn.reset();  // destroys conn: pipes, fds, outcome
  ++slots_[slot_index].generation;  // the old id can never alias the slot again
  free_slots_.push_back(slot_index);
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  metrics_cells_.reaped.fetch_add(1, std::memory_order_relaxed);
}

uint64_t ProvisioningFrontend::AdmissionCost(const Connection& conn) noexcept {
  return conn.group_manifest.has_value()
             ? std::max<uint64_t>(1, conn.group_manifest->members.size())
             : 1;
}

size_t ProvisioningFrontend::TotalQueued() const noexcept {
  return options_.fair_admission ? queued_total_ : admission_queue_.size();
}

void ProvisioningFrontend::StoreQueueDepth() noexcept {
  metrics_cells_.queue_depth.store(TotalQueued(), std::memory_order_relaxed);
}

void ProvisioningFrontend::EnqueueForAdmission(Connection& conn) {
  if (options_.fair_admission) {
    TenantState& tenant = TenantFor(conn.tenant);
    tenant.waiting.push_back(conn.id);
    ++queued_total_;
    if (!tenant.in_rotation) {
      rotation_.push_back(conn.tenant);
      tenant.in_rotation = true;
    }
  } else {
    admission_queue_.push_back(conn.id);
  }
  StoreQueueDepth();
  metrics_cells_.queued.fetch_add(1, std::memory_order_relaxed);
}

void ProvisioningFrontend::RemoveFromQueue(Connection& conn) {
  if (!options_.fair_admission) {
    admission_queue_.erase(std::remove(admission_queue_.begin(),
                                       admission_queue_.end(), conn.id),
                           admission_queue_.end());
    StoreQueueDepth();
    return;
  }
  const auto it = tenants_.find(conn.tenant);
  if (it == tenants_.end()) return;
  TenantState& tenant = it->second;
  const size_t before = tenant.waiting.size();
  tenant.waiting.erase(
      std::remove(tenant.waiting.begin(), tenant.waiting.end(), conn.id),
      tenant.waiting.end());
  queued_total_ -= before - tenant.waiting.size();
  if (tenant.waiting.empty() && tenant.in_rotation) {
    rotation_.erase(std::remove(rotation_.begin(), rotation_.end(),
                                conn.tenant),
                    rotation_.end());
    tenant.in_rotation = false;
    tenant.deficit = 0;
  }
  StoreQueueDepth();
}

ProvisioningFrontend::Connection* ProvisioningFrontend::OldestQueued() noexcept {
  if (!options_.fair_admission) {
    // The global FIFO is in arrival order: the first still-valid entry is
    // the oldest. Stale entries are skipped (and lazily dropped later).
    for (const uint64_t id : admission_queue_) {
      Connection* conn = Find(id);
      if (conn != nullptr && conn->state == ConnectionState::kQueued) {
        return conn;
      }
    }
    return nullptr;
  }
  // Per-tenant queues are each in arrival order, so the global oldest is the
  // oldest among the tenants' first valid entries.
  Connection* oldest = nullptr;
  for (const std::string& name : rotation_) {
    const auto it = tenants_.find(name);
    if (it == tenants_.end()) continue;
    for (const uint64_t id : it->second.waiting) {
      Connection* conn = Find(id);
      if (conn == nullptr || conn->state != ConnectionState::kQueued) continue;
      if (oldest == nullptr || conn->accepted_ns < oldest->accepted_ns) {
        oldest = conn;
      }
      break;
    }
  }
  return oldest;
}

Result<bool> ProvisioningFrontend::EvictOldestQueued() {
  Connection* victim = OldestQueued();
  if (victim == nullptr) return false;
  RemoveFromQueue(*victim);
  metrics_cells_.evicted_oldest.fetch_add(1, std::memory_order_relaxed);
  RETURN_IF_ERROR(Shed(*victim));
  return true;
}

ProvisioningFrontend::TenantState& ProvisioningFrontend::TenantFor(
    const std::string& tenant) {
  const auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    metrics_cells_.tenant_count.store(tenants_.size(),
                                      std::memory_order_relaxed);
  }
  return it->second;
}

void ProvisioningFrontend::RefillTokens(TenantState& tenant,
                                        uint64_t now_ns) const {
  if (options_.tenant_rate <= 0) return;
  const double burst = options_.tenant_burst > 0
                           ? options_.tenant_burst
                           : std::max(4.0, 2 * options_.tenant_rate);
  if (tenant.token_refill_ns == 0) {
    // First sighting: a full bucket, so a new tenant's initial burst is
    // bounded but never zero.
    tenant.tokens = burst;
    tenant.token_refill_ns = now_ns;
    return;
  }
  if (now_ns <= tenant.token_refill_ns) return;
  const double elapsed_s = (now_ns - tenant.token_refill_ns) / 1e9;
  tenant.tokens = std::min(burst, tenant.tokens +
                                      elapsed_s * options_.tenant_rate);
  tenant.token_refill_ns = now_ns;
}

bool ProvisioningFrontend::TenantAdmissible(TenantState& tenant, uint64_t cost,
                                            uint64_t now_ns) {
  if (options_.tenant_rate <= 0) return true;
  RefillTokens(tenant, now_ns);
  // Small epsilon so exact refills (fake clocks land on whole tokens) pass.
  if (tenant.tokens + 1e-9 >= static_cast<double>(cost)) return true;
  metrics_cells_.rate_limit_deferrals.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ProvisioningFrontend::ChargeTokens(TenantState& tenant,
                                        uint64_t cost) const {
  if (options_.tenant_rate <= 0) return;
  tenant.tokens = std::max(0.0, tenant.tokens - static_cast<double>(cost));
}

Status ProvisioningFrontend::AdmitFromQueueFair(size_t& progress) {
  const uint64_t now = NowNs();
  // One deficit-round-robin pass: each rotation visit earns the tenant one
  // admission unit of credit (never hoarding past its head's cost), and the
  // pass ends once a full rotation admits nothing — every remaining tenant
  // is blocked on deficit, tokens, or EPC budget. Budget starvation does
  // not stall the pass: another tenant's cheaper head (a solo session
  // behind a big group) may still fit, which is exactly the cross-tenant
  // fairness the single FIFO could not give.
  size_t visits_without_admit = 0;
  while (!rotation_.empty() && visits_without_admit < rotation_.size()) {
    const std::string name = rotation_.front();
    rotation_.pop_front();
    TenantState& tenant = tenants_[name];
    // Drop stale heads WITHOUT charging the deficit: an arrival that
    // expired or failed while queued must not eat its tenant's share.
    const auto drop_stale_heads = [&] {
      while (!tenant.waiting.empty()) {
        Connection* head = Find(tenant.waiting.front());
        if (head != nullptr && head->state == ConnectionState::kQueued) break;
        tenant.waiting.pop_front();
        --queued_total_;
        StoreQueueDepth();
      }
    };
    drop_stale_heads();
    if (tenant.waiting.empty()) {
      tenant.in_rotation = false;
      tenant.deficit = 0;  // an empty queue hoards no credit
      continue;            // rotation shrank; not a starved visit
    }
    Connection* head = Find(tenant.waiting.front());
    if (tenant.deficit < AdmissionCost(*head)) ++tenant.deficit;
    bool admitted_any = false;
    while (!tenant.waiting.empty()) {
      drop_stale_heads();
      if (tenant.waiting.empty()) break;
      head = Find(tenant.waiting.front());
      const uint64_t cost = AdmissionCost(*head);
      if (tenant.deficit < cost) break;
      if (!TenantAdmissible(tenant, cost, now)) break;  // bucket empty
      AdmitResult result = AdmitResult::kNoBudget;
      if (head->group_manifest.has_value()) {
        Result<AdmitResult> group_admitted = TryAdmitGroup(*head);
        if (!group_admitted.ok()) {
          // An invalid manifest fails its own connection, not the sweep —
          // and leaves deficit and tokens untouched.
          tenant.waiting.pop_front();
          --queued_total_;
          StoreQueueDepth();
          FailConnection(*head, group_admitted.status(), now, progress);
          continue;
        }
        result = *group_admitted;
      } else {
        ASSIGN_OR_RETURN(result, TryAdmit(*head));
      }
      if (result == AdmitResult::kNoBudget) break;  // EPC starved: next tenant
      tenant.deficit -= cost;
      ChargeTokens(tenant, cost);
      tenant.waiting.pop_front();
      --queued_total_;
      StoreQueueDepth();
      ++progress;
      admitted_any = true;
    }
    if (tenant.waiting.empty()) {
      tenant.in_rotation = false;
      tenant.deficit = 0;
    } else {
      rotation_.push_back(name);
    }
    visits_without_admit = admitted_any ? 0 : visits_without_admit + 1;
  }
  return Status::Ok();
}

Status ProvisioningFrontend::AdmitFromQueue(size_t& progress) {
  if (options_.fair_admission) return AdmitFromQueueFair(progress);
  while (!admission_queue_.empty()) {
    Connection* conn = Find(admission_queue_.front());
    if (conn == nullptr || conn->state != ConnectionState::kQueued) {
      // Expired or otherwise finished while waiting; drop the stale entry.
      admission_queue_.pop_front();
      metrics_cells_.queue_depth.store(admission_queue_.size(),
                                       std::memory_order_relaxed);
      continue;
    }
    // A queued fleet connection carries its parsed manifest; everything else
    // is a solo admission.
    AdmitResult admitted = AdmitResult::kNoBudget;
    if (conn->group_manifest.has_value()) {
      Result<AdmitResult> group_admitted = TryAdmitGroup(*conn);
      if (!group_admitted.ok()) {
        // A manifest that turns out invalid fails its own connection, not
        // the queue sweep.
        admission_queue_.pop_front();
        metrics_cells_.queue_depth.store(admission_queue_.size(),
                                         std::memory_order_relaxed);
        FailConnection(*conn, group_admitted.status(), NowNs(), progress);
        continue;
      }
      admitted = *group_admitted;
    } else {
      ASSIGN_OR_RETURN(admitted, TryAdmit(*conn));
    }
    if (admitted == AdmitResult::kNoBudget) break;  // still starved; FIFO
    admission_queue_.pop_front();
    metrics_cells_.queue_depth.store(admission_queue_.size(),
                                     std::memory_order_relaxed);
    ++progress;
  }
  return Status::Ok();
}

Result<size_t> ProvisioningFrontend::PollOnce() {
  size_t progress = 0;
  const uint64_t now = NowNs();
  // Adaptive deadlines track the workload on a sweep cadence; this is a
  // no-op (and the effective cells stay at the static options) when off.
  MaybeRecomputeDeadlines(now);
  // Index loop, not iterators: Reap() edits the slot under our feet but
  // never resizes slots_ mid-sweep (only Accept grows it).
  for (size_t i = 0; i < slots_.size(); ++i) {
    Connection* conn = slots_[i].conn.get();
    if (conn == nullptr) continue;
    RETURN_IF_ERROR(PumpConnection(*conn, now, progress));
  }
  RETURN_IF_ERROR(AdmitFromQueue(progress));
  return progress;
}

Status ProvisioningFrontend::DrainAll() {
  for (;;) {
    ASSIGN_OR_RETURN(const size_t progress, PollOnce());
    if (progress == 0) return Status::Ok();
  }
}

std::vector<uint64_t> ProvisioningFrontend::connection_ids() const {
  std::vector<uint64_t> ids;
  ids.reserve(live_count_.load(std::memory_order_relaxed));
  for (const TableSlot& slot : slots_) {
    if (slot.conn != nullptr) ids.push_back(slot.conn->id);
  }
  return ids;
}

ConnectionState ProvisioningFrontend::state(uint64_t id) const noexcept {
  const Connection* conn = Find(id);
  return conn != nullptr ? conn->state : ConnectionState::kReaped;
}

Status ProvisioningFrontend::connection_status(uint64_t id) const {
  const Connection* conn = Find(id);
  if (conn == nullptr) {
    return NotFoundError("connection was reaped (or never existed)");
  }
  return conn->failure;
}

Result<std::vector<ProvisionOutcome>> ProvisioningFrontend::TakeGroupOutcomes(
    uint64_t id) {
  Connection* conn = Find(id);
  if (conn == nullptr) {
    return NotFoundError("connection was reaped (or never existed)");
  }
  if (conn->state != ConnectionState::kDone || conn->group_session == nullptr) {
    return FailedPreconditionError("group has not reached its verdicts");
  }
  if (conn->group_outcomes_taken) {
    return FailedPreconditionError("group outcomes already taken");
  }
  conn->group_outcomes_taken = true;
  return std::move(conn->group_outcomes);
}

Result<ProvisionOutcome> ProvisioningFrontend::TakeOutcome(uint64_t id) {
  Connection* conn = Find(id);
  if (conn == nullptr) {
    return NotFoundError("connection was reaped (or never existed)");
  }
  if (conn->state != ConnectionState::kDone) {
    return FailedPreconditionError("connection has not reached a verdict");
  }
  if (conn->outcome_taken || !conn->outcome.has_value()) {
    return FailedPreconditionError("outcome already taken");
  }
  conn->outcome_taken = true;
  ProvisionOutcome outcome = std::move(*conn->outcome);
  conn->outcome.reset();
  return outcome;
}

FrontendMetrics ProvisioningFrontend::metrics() const noexcept {
  const auto load = [](const std::atomic<uint64_t>& cell) {
    return cell.load(std::memory_order_relaxed);
  };
  FrontendMetrics m;
  m.accepted = load(metrics_cells_.accepted);
  m.admitted = load(metrics_cells_.admitted);
  m.admitted_warm = load(metrics_cells_.admitted_warm);
  m.queued = load(metrics_cells_.queued);
  m.shed = load(metrics_cells_.shed);
  m.timed_out = load(metrics_cells_.timed_out);
  m.failed = load(metrics_cells_.failed);
  m.done = load(metrics_cells_.done);
  m.reaped = load(metrics_cells_.reaped);
  m.live_connections = live_count_.load(std::memory_order_relaxed);
  m.peak_live_connections = load(metrics_cells_.peak_live);
  m.queue_depth = load(metrics_cells_.queue_depth);
  m.admission_wait_count = load(metrics_cells_.admission_wait_count);
  m.admission_wait_total_ns = load(metrics_cells_.admission_wait_total_ns);
  m.admission_wait_max_ns = load(metrics_cells_.admission_wait_max_ns);
  m.session_count = load(metrics_cells_.session_count);
  m.session_total_ns = load(metrics_cells_.session_total_ns);
  m.session_max_ns = load(metrics_cells_.session_max_ns);
  m.decode_overlap_count = load(metrics_cells_.decode_overlap_count);
  m.decode_early_bytes_total = load(metrics_cells_.decode_early_bytes_total);
  m.decode_overlap_sum_permille =
      load(metrics_cells_.decode_overlap_sum_permille);
  m.decode_overlap_max_permille =
      load(metrics_cells_.decode_overlap_max_permille);
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    m.admission_wait_hist[i] = load(metrics_cells_.admission_wait_hist[i]);
    m.session_hist[i] = load(metrics_cells_.session_hist[i]);
  }
  m.effective_queue_deadline_ms = load(metrics_cells_.eff_queue_deadline_ms);
  m.effective_idle_deadline_ms = load(metrics_cells_.eff_idle_deadline_ms);
  m.effective_session_deadline_ms =
      load(metrics_cells_.eff_session_deadline_ms);
  m.effective_retry_after_ms = load(metrics_cells_.eff_retry_after_ms);
  m.deadline_recomputes = load(metrics_cells_.deadline_recomputes);
  m.evicted_oldest = load(metrics_cells_.evicted_oldest);
  m.rate_limit_deferrals = load(metrics_cells_.rate_limit_deferrals);
  m.tenants_seen = load(metrics_cells_.tenant_count);
  m.budget_pages = budget_->budget_pages();
  m.committed_pages = budget_->committed_pages();
  m.max_committed_pages = budget_->max_committed_pages();
  m.physical_budget_pages = budget_->physical_pages();
  m.budget_underflows = budget_->underflow_count();
  m.epc_faults = host_->epc_faults_handled();
  m.eldu_loads = host_->eldu_loads();
  m.pages_reclaimed = host_->pages_reclaimed();
  m.pages_evicted_inline = host_->pages_evicted();
  m.reclaim_wakeups = host_->reclaim_wakeups();
  const sgx::Epc& epc = host_->device()->epc();
  m.epc_resident_pages = epc.pages_in_use();
  m.epc_resident_peak = epc.peak_pages_in_use();
  m.epc_capacity_pages = epc.capacity();
  if (const VerdictCache* cache = options_.enclave_options.verdict_cache.get();
      cache != nullptr) {
    const VerdictCacheStats stats = cache->stats();
    m.verdict_cache_hits = stats.hits;
    m.verdict_cache_partial_hits = stats.partial_hits;
    m.verdict_cache_misses = stats.misses;
    m.verdict_cache_tamper_rejects = stats.tamper_rejects;
    m.verdict_cache_evictions = stats.evictions;
    m.verdict_cache_bytes_sealed = stats.bytes_sealed;
  }
  m.groups_admitted = load(metrics_cells_.groups_admitted);
  m.group_members_admitted = load(metrics_cells_.group_members_admitted);
  m.groups_rejected_mutual = load(metrics_cells_.groups_rejected_mutual);
  return m;
}

size_t ProvisioningFrontend::active_count() const noexcept {
  size_t active = 0;
  for (const TableSlot& slot : slots_) {
    if (slot.conn != nullptr &&
        slot.conn->state == ConnectionState::kActive) {
      ++active;
    }
  }
  return active;
}

std::vector<int> ProvisioningFrontend::PollDescriptors() const {
  std::vector<int> descriptors;
  for (const TableSlot& slot : slots_) {
    if (slot.conn == nullptr) continue;
    if (slot.conn->state != ConnectionState::kActive &&
        slot.conn->state != ConnectionState::kQueued &&
        slot.conn->state != ConnectionState::kAwaitGroup) {
      continue;
    }
    const int fd = slot.conn->transport->descriptor();
    if (fd >= 0) descriptors.push_back(fd);
  }
  return descriptors;
}

}  // namespace engarde::core
