// ProvisioningFrontend: the provider's readiness-driven front door. A
// single-threaded poll-style reactor that multiplexes every client
// provisioning exchange over abstract net::Transports — in-memory pipes for
// tests and benchmarks, non-blocking TCP sockets for tools/engarde-serve —
// pumping each ready ProvisioningSession exactly as far as its queued input
// allows. No thread is ever parked per connection.
//
// Four cooperating parts:
//
//  * Admission controller — budgets the EPC before anything is built: each
//    enclave costs layout.TotalPages() pages against the device capacity
//    minus a reserve, so concurrent arrivals can never push the device into
//    its nondeterministic eviction path. Arrivals beyond budget wait in a
//    bounded FIFO; beyond that (or when an enclave build itself fails with
//    IsRetryableResourceError) the client gets an explicit RetryAfter
//    control record on the wire and is expected to reconnect. The budget
//    itself lives in core/epc_budget.h and may be shared: a FrontendGroup
//    hands N reactors one EpcBudget so they can never jointly overdraw it.
//
//  * Reactor — PollOnce() sweeps every live connection: shuttles bytes
//    between the transport and the connection's internal DuplexPipe, pumps
//    the session under its own ScopedAccountant (the same discipline as
//    ProvisioningServer::Drive, so per-phase SGX attribution is bit-for-bit
//    identical to a serial drive of the same exchange), reaps verdicts, and
//    re-admits from the queue as EPC frees up.
//
//  * Deadline enforcement + reaper — every sweep reads a monotonic clock
//    (injectable through FrontendOptions::clock for deterministic tests) and
//    fails any connection that blew one of its time budgets: too long queued
//    for admission, too long without inbound bytes while admitted, or too
//    long overall. An expired connection gets a best-effort kDeadlineExceeded
//    control record, its enclave is destroyed through HostOs::DestroyEnclave
//    and its EPC pages go back to the budget — a slow-loris client can never
//    starve the FIFO. Terminal connections (kDone once their outcome is
//    taken, kShed/kFailed/kTimedOut once their outbound tail is flushed) are
//    then reaped: the slot-mapped connection table frees the slot, the fd,
//    and the pipes, so memory and per-sweep work stay O(active) no matter
//    how many sessions a long-lived server has served. Ids stay stable —
//    a reused slot gets a fresh generation, so a stale id never aliases a
//    newer connection (it reads as kReaped).
//
//  * Warm enclave pool — admission prefers a pre-built enclave whose
//    policy-set fingerprint matches, skipping enclave build + RSA keygen +
//    hello serialization on the hot path (core/enclave_pool.h). Also
//    shareable across a group.
//
// Threading: one ProvisioningFrontend is owned by exactly one thread —
// Accept/PollOnce/per-connection introspection are not synchronized. What IS
// safe cross-thread: the shared EpcBudget, the shared WarmEnclavePool, and
// the FrontendMetrics counters (atomics), which is precisely the state a
// sibling reactor or a monitoring thread touches while this one runs.
#ifndef ENGARDE_CORE_FRONTEND_H_
#define ENGARDE_CORE_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/enclave_pool.h"
#include "core/engarde.h"
#include "core/epc_budget.h"
#include "core/group_session.h"
#include "core/session.h"
#include "net/transport.h"
#include "sgx/attestation.h"
#include "sgx/cost_model.h"
#include "sgx/hostos.h"

namespace engarde::core {

struct FrontendOptions {
  // Per-enclave options; shared_inspection_pool is overridden with the
  // front end's own shared pool.
  EngardeOptions enclave_options;
  // Size of the shared inspection worker pool. 1 = serial inspection.
  size_t inspection_threads = 1;
  // EPC pages held back from admission (device bookkeeping headroom).
  // Ignored when an external EpcBudget is supplied.
  uint64_t epc_reserve_pages = 64;
  // EPC oversubscription ratio: admission capacity = physical budget ×
  // this ratio (values <= 1.0 mean no oversubscription). Above 1.0 the
  // front end admits more enclaves than physically fit and relies on the
  // host OS reclaimer (EWB/ELDU) to multiplex the resident set. Ignored
  // when an external EpcBudget is supplied.
  double epc_oversub = 1.0;
  // Per-session page quota (cgroup-style): a single enclave larger than
  // this is shed outright instead of admitted. 0 = no quota. Ignored when
  // an external EpcBudget is supplied.
  uint64_t session_quota_pages = 0;
  // When > 0, every admission that leaves fewer than this many free EPC
  // pages kicks HostOs::NotifyEpcPressure() so the background reclaimer
  // restores headroom before the next fault. 0 = never kick.
  uint64_t reclaim_low_watermark = 0;
  // Arrivals allowed to wait for EPC beyond the budget; past this they are
  // shed with a RetryAfter record. 0 = shed immediately when over budget.
  size_t admission_queue_capacity = 0;
  // Back-off hint carried in the RetryAfter record.
  uint64_t retry_after_ms = 50;
  // Destroy the enclave (freeing its EPC pages toward queued arrivals) once
  // its session reached a verdict and the outcome was recorded. A provider
  // that keeps compliant enclaves alive to run client code turns this off
  // and manages lifetimes itself.
  bool destroy_enclave_on_verdict = true;
  // Fleet mode: every connection leads with a GroupManifest frame
  // (core/protocol.h) and co-provisions all declared members over ONE shared
  // channel (core/group_session.h). Admission is atomic per group — warm
  // handouts plus one all-or-nothing EpcBudget reservation for the cold
  // remainder; any mid-group failure rolls every member back. Off (the
  // default), the front end speaks the original one-connection-one-enclave
  // protocol, byte for byte.
  bool group_provisioning = false;

  // ---- Deadlines (0 = unlimited) -------------------------------------------
  // All measured against `clock`. Expiry fails the connection with
  // DEADLINE_EXCEEDED, sends a best-effort kDeadlineExceeded control record,
  // destroys its enclave through HostOs::DestroyEnclave and returns its EPC
  // pages so queued arrivals admit.
  //
  // Max time an arrival may wait in the admission FIFO before the front end
  // gives up on EPC freeing in time.
  uint64_t queue_deadline_ms = 0;
  // Max time an admitted connection may go without delivering a single
  // inbound byte — the slow-loris bound.
  uint64_t idle_deadline_ms = 0;
  // Max time from accept to verdict, inbound progress or not.
  uint64_t session_deadline_ms = 0;
  // Monotonic nanosecond clock the deadlines are measured against. Null =
  // std::chrono::steady_clock. Must be thread-safe when the frontend is a
  // FrontendGroup shard (every reactor thread reads it).
  std::function<uint64_t()> clock;
};

enum class ConnectionState : uint8_t {
  kQueued = 0,  // waiting for EPC budget; nothing sent yet
  kActive,      // admitted: hello sent, session live
  kAwaitGroup,  // fleet mode: waiting for the client's GroupManifest frame
  kDone,        // verdict reached, outcome recorded
  kShed,        // RetryAfter sent; client must reconnect
  kFailed,      // hard protocol/transport error, no verdict
  kTimedOut,    // a deadline expired; enclave reclaimed, no verdict
  kReaped,      // slot retired — reported for stale ids, never stored
};

// Aggregate front-end telemetry. Counters are monotonic over the frontend's
// lifetime; gauges are sampled at snapshot time. Safe to take from any
// thread while the reactor runs (the cells are relaxed atomics, same
// discipline as the budget counters).
struct FrontendMetrics {
  // Counters.
  uint64_t accepted = 0;       // connections ever Accept()ed
  uint64_t admitted = 0;       // reached kActive (immediately or from queue)
  uint64_t admitted_warm = 0;  // of those, served from the warm pool
  uint64_t queued = 0;         // ever parked in the admission FIFO
  uint64_t shed = 0;           // RetryAfter sent
  uint64_t timed_out = 0;      // any deadline expiry
  uint64_t failed = 0;         // hard failures (excluding timeouts)
  uint64_t done = 0;           // verdicts reached
  uint64_t reaped = 0;         // slots retired by the reaper
  // Gauges.
  uint64_t live_connections = 0;  // slots currently held
  uint64_t peak_live_connections = 0;
  uint64_t queue_depth = 0;
  // Admission wait (accept -> kActive) over admitted connections.
  uint64_t admission_wait_count = 0;
  uint64_t admission_wait_total_ns = 0;
  uint64_t admission_wait_max_ns = 0;
  // Session duration (accept -> terminal state) over finished connections.
  uint64_t session_count = 0;
  uint64_t session_total_ns = 0;
  uint64_t session_max_ns = 0;
  // Streaming-decode overlap over verdicts whose session planned speculative
  // decode work (EngardeOptions::streaming_inspection): how many bytes were
  // already decoded when DONE arrived, and the per-session overlap ratio
  // (bytes-before-DONE / planned text bytes, in permille).
  uint64_t decode_overlap_count = 0;         // verdicts with planned decode
  uint64_t decode_early_bytes_total = 0;     // bytes decoded before DONE
  uint64_t decode_overlap_sum_permille = 0;  // sum of per-session ratios
  uint64_t decode_overlap_max_permille = 0;
  // Budget occupancy at snapshot time (shared across a group's shards).
  // budget_pages is the *virtual* (oversubscribed) capacity;
  // physical_budget_pages is the physical pot it scales.
  uint64_t budget_pages = 0;
  uint64_t committed_pages = 0;
  uint64_t max_committed_pages = 0;
  uint64_t physical_budget_pages = 0;
  uint64_t budget_underflows = 0;  // EpcBudget double releases; must stay 0
  // Paging telemetry from the shared host OS / device (counters monotonic,
  // residency fields sampled). epc_resident_pages is physical occupancy —
  // committed_pages above it is the oversubscription in action.
  uint64_t epc_faults = 0;             // faults serviced by ELDU
  uint64_t eldu_loads = 0;             // successful ELDU reloads
  uint64_t pages_reclaimed = 0;        // background/batch reclaim EWBs
  uint64_t pages_evicted_inline = 0;   // last-resort same-enclave EWBs
  uint64_t reclaim_wakeups = 0;        // reclaimer scans that found pressure
  uint64_t epc_resident_pages = 0;     // physical EPC pages in use now
  uint64_t epc_resident_peak = 0;      // high-water physical occupancy
  uint64_t epc_capacity_pages = 0;     // physical EPC size
  // Verdict-cache telemetry (core/verdict_cache.h), read from the cache
  // object the enclave options carry. Like the budget/paging fields, the
  // cache is shared across a group's shards, so Merge keeps the max instead
  // of summing (every shard reports the same shared totals). All zero when
  // no cache is configured.
  uint64_t verdict_cache_hits = 0;
  uint64_t verdict_cache_partial_hits = 0;
  uint64_t verdict_cache_misses = 0;
  uint64_t verdict_cache_tamper_rejects = 0;
  uint64_t verdict_cache_evictions = 0;
  uint64_t verdict_cache_bytes_sealed = 0;  // gauge: sealed bytes on disk
  // Fleet provisioning (group_provisioning mode; all zero otherwise).
  uint64_t groups_admitted = 0;         // whole groups co-admitted
  uint64_t group_members_admitted = 0;  // members across those groups
  uint64_t groups_rejected_mutual = 0;  // groups rejected by mutual verify

  // Shard aggregation: counters and gauges sum, maxima take the max; budget
  // and paging fields are shared (one budget / host OS per group), so Merge
  // keeps the max and the group overwrites them once after merging.
  void Merge(const FrontendMetrics& other) noexcept;
};

class ProvisioningFrontend {
 public:
  // Standalone reactor: owns its budget (device capacity minus
  // options.epc_reserve_pages) and its warm pool. `host`, `quoting` and the
  // transports' peers must outlive the frontend.
  ProvisioningFrontend(sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
                       std::function<PolicySet()> policy_factory,
                       FrontendOptions options);

  // Group shard: draws admissions from a shared `budget` and warm handouts
  // from a shared `pool`, both owned by the caller (FrontendGroup) and
  // outliving the frontend. epc_reserve_pages in `options` is ignored — the
  // shared budget already encodes the reserve.
  ProvisioningFrontend(sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
                       std::function<PolicySet()> policy_factory,
                       FrontendOptions options, EpcBudget* budget,
                       WarmEnclavePool* pool);

  // Pre-builds `count` warm enclaves, charging their EPC pages against the
  // admission budget. Fails with RESOURCE_EXHAUSTED when the budget cannot
  // hold another pooled enclave.
  Status PrefillPool(size_t count);

  // Registers a connection and decides admission immediately:
  //   admitted — control kHelloFollows + hello bytes go out, session is live;
  //   queued   — parked FIFO until EPC frees, nothing sent yet;
  //   shed     — RetryAfter record goes out, connection is finished.
  // Returns the connection id: stable for the connection's whole lifetime,
  // never reused for a later connection (slot index + generation).
  Result<uint64_t> Accept(std::unique_ptr<net::Transport> transport);

  // One reactor sweep over every live connection: deadline enforcement,
  // byte shuttling, session pumping, reaping, queue admission. Returns how
  // many connections made progress (bytes moved or state advanced).
  Result<size_t> PollOnce();

  // Sweeps until a full pass makes no progress (in-memory transports: until
  // every queued byte is consumed and every completable session completed).
  Status DrainAll();

  // ---- Introspection (owner thread, except where noted) -------------------
  // Live (un-reaped) connections currently held.
  size_t connection_count() const noexcept {
    return live_count_.load(std::memory_order_relaxed);
  }
  // Ids of every live connection, in slot order.
  std::vector<uint64_t> connection_ids() const;
  // kReaped for an id the reaper has retired (or that never existed).
  ConnectionState state(uint64_t id) const noexcept;
  // Terminal failure for kFailed/kTimedOut connections (OK otherwise,
  // NOT_FOUND for reaped ids).
  Status connection_status(uint64_t id) const;
  // Moves the outcome out of a kDone connection. Once taken, the reaper may
  // retire the connection on a later sweep.
  Result<ProvisionOutcome> TakeOutcome(uint64_t id);
  const sgx::CycleAccountant& accountant(uint64_t id) const {
    return Get(id).slot->accountant;
  }
  bool served_from_pool(uint64_t id) const { return Get(id).from_pool; }

  // ---- Fleet-mode introspection (group_provisioning connections) ----------
  // Member count of a co-admitted group; 0 before admission or for a solo
  // connection.
  size_t group_member_count(uint64_t id) const {
    return Get(id).group_slots.size();
  }
  const sgx::CycleAccountant& group_member_accountant(uint64_t id,
                                                      size_t member) const {
    return Get(id).group_slots[member]->accountant;
  }
  // True for a kDone group whose verdicts were overridden by mutual
  // verification.
  bool group_rejected(uint64_t id) const {
    const Connection& conn = Get(id);
    return conn.group_session != nullptr && conn.group_session->group_rejected();
  }
  // Moves every member outcome (declaration order) out of a kDone group.
  Result<std::vector<ProvisionOutcome>> TakeGroupOutcomes(uint64_t id);

  size_t active_count() const noexcept;
  size_t queued_count() const noexcept {
    return metrics_cells_.queue_depth.load(std::memory_order_relaxed);
  }
  // Aggregate counters — safe to read from any thread while the reactor runs.
  size_t shed_count() const noexcept {
    return metrics_cells_.shed.load(std::memory_order_relaxed);
  }
  size_t done_count() const noexcept {
    return metrics_cells_.done.load(std::memory_order_relaxed);
  }
  size_t timed_out_count() const noexcept {
    return metrics_cells_.timed_out.load(std::memory_order_relaxed);
  }
  size_t reaped_count() const noexcept {
    return metrics_cells_.reaped.load(std::memory_order_relaxed);
  }
  // Full telemetry snapshot (thread-safe, like the individual counters).
  FrontendMetrics metrics() const noexcept;

  // Admission budget telemetry (thread-safe; possibly shared across a
  // group). max_committed_pages() never exceeding budget_pages() is the
  // no-eviction guarantee the tests pin.
  uint64_t budget_pages() const noexcept { return budget_->budget_pages(); }
  uint64_t committed_pages() const noexcept {
    return budget_->committed_pages();
  }
  uint64_t max_committed_pages() const noexcept {
    return budget_->max_committed_pages();
  }
  EpcBudget& budget() noexcept { return *budget_; }

  WarmEnclavePool& pool() noexcept { return *pool_; }

  // Descriptors of all live fd-backed transports, for poll(2) in a serving
  // loop. In-memory transports have none and are swept unconditionally.
  std::vector<int> PollDescriptors() const;

 private:
  struct Connection {
    uint64_t id = 0;
    std::unique_ptr<net::Transport> transport;
    // Internal wire: EndA = session side, EndB = transport side.
    std::unique_ptr<crypto::DuplexPipe> pipe;
    std::unique_ptr<PooledEnclave> slot;  // accountant + enclave + hello
    std::optional<ProvisioningSession> session;
    // Fleet mode (group_provisioning): the parsed manifest is held while the
    // group waits in the admission FIFO; on co-admission the connection owns
    // one slot per member plus the group session that borrows them.
    std::optional<GroupManifest> group_manifest;
    std::vector<std::unique_ptr<PooledEnclave>> group_slots;
    std::unique_ptr<GroupProvisioningSession> group_session;
    std::vector<ProvisionOutcome> group_outcomes;
    bool group_outcomes_taken = false;
    ConnectionState state = ConnectionState::kQueued;
    Status failure;
    std::optional<ProvisionOutcome> outcome;
    bool from_pool = false;
    bool outcome_taken = false;
    bool enclave_released = false;
    // Latched when the transport hard-errors while flushing a terminal
    // tail: the tail is undeliverable, stop touching the wire and let the
    // reaper retire the slot.
    bool wire_dead = false;
    // Deadline bookkeeping, all in clock() nanoseconds.
    uint64_t accepted_ns = 0;
    uint64_t last_input_ns = 0;  // reset on every inbound byte once admitted
  };

  // One connection-table entry. A retired slot keeps its generation bumped
  // so the stale id can never alias the slot's next tenant.
  struct TableSlot {
    std::unique_ptr<Connection> conn;
    uint32_t generation = 0;
  };

  // All monotonic counters live here as relaxed atomics so metrics() and the
  // legacy shed/done accessors are safe cross-thread.
  struct MetricsCells {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> admitted_warm{0};
    std::atomic<uint64_t> queued{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> timed_out{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> done{0};
    std::atomic<uint64_t> reaped{0};
    std::atomic<uint64_t> peak_live{0};
    std::atomic<uint64_t> admission_wait_count{0};
    std::atomic<uint64_t> admission_wait_total_ns{0};
    std::atomic<uint64_t> admission_wait_max_ns{0};
    std::atomic<uint64_t> session_count{0};
    std::atomic<uint64_t> session_total_ns{0};
    std::atomic<uint64_t> session_max_ns{0};
    std::atomic<uint64_t> decode_overlap_count{0};
    std::atomic<uint64_t> decode_early_bytes_total{0};
    std::atomic<uint64_t> decode_overlap_sum_permille{0};
    std::atomic<uint64_t> decode_overlap_max_permille{0};
    std::atomic<uint64_t> groups_admitted{0};
    std::atomic<uint64_t> group_members_admitted{0};
    std::atomic<uint64_t> groups_rejected_mutual{0};
    // Gauge mirror of admission_queue_.size(), so queued_count()/metrics()
    // stay readable off the owner thread.
    std::atomic<uint64_t> queue_depth{0};
  };

  enum class AdmitResult : uint8_t { kAdmitted, kNoBudget };

  static constexpr uint32_t kSlotBits = 32;
  static uint64_t MakeId(uint32_t slot, uint32_t generation) noexcept {
    return (static_cast<uint64_t>(generation) << kSlotBits) | slot;
  }
  // The live connection behind `id`, or nullptr for stale/unknown ids.
  Connection* Find(uint64_t id) noexcept;
  const Connection* Find(uint64_t id) const noexcept;
  // Asserting variant for accessors whose contract requires a live id.
  const Connection& Get(uint64_t id) const;

  // Tries to admit: warm handout or budgeted cold build + control frame +
  // hello. kNoBudget when the EPC budget (or a retryable build failure)
  // stands in the way.
  Result<AdmitResult> TryAdmit(Connection& conn);
  // Atomic group co-admission against conn.group_manifest: validates every
  // member, takes warm handouts, makes ONE all-or-nothing budget reservation
  // for the cold remainder and builds it. Any failure rolls back every
  // handout, build and reserved page — kNoBudget for retryable starvation
  // (the group can queue), a hard status for an invalid manifest.
  Result<AdmitResult> TryAdmitGroup(Connection& conn);
  // kAwaitGroup step: parse the GroupManifest frame once it is whole, then
  // admit / queue / shed the group.
  Status PumpAwaitGroup(Connection& conn, uint64_t now_ns, size_t& progress);
  // Sends the RetryAfter record and finishes the connection.
  Status Shed(Connection& conn);
  // One sweep over one connection; increments `progress` on any advance.
  // `now_ns` is the sweep's clock reading (deadlines). May reap `conn`.
  Status PumpConnection(Connection& conn, uint64_t now_ns, size_t& progress);
  // Expires `conn` with DEADLINE_EXCEEDED: best-effort control record,
  // enclave destroyed, budget released, FIFO entry dropped.
  Status ExpireConnection(Connection& conn, uint64_t now_ns,
                          uint64_t deadline_ms, const char* what);
  // Deadline the connection is currently closest to blowing; 0 = none armed.
  bool Expired(const Connection& conn, uint64_t now_ns,
               uint64_t* deadline_ms, const char** what) const;
  // Fails one connection with `cause` (transport hard error, session
  // failure): records metrics, destroys the enclave, releases its pages.
  // A bad wire takes down its own connection, never the whole sweep.
  void FailConnection(Connection& conn, Status cause, uint64_t now_ns,
                      size_t& progress);
  // Reaps EPC from a finished connection and re-admits queued arrivals.
  void ReleaseEnclave(Connection& conn);
  // Retires a terminal, fully-flushed connection: frees the slot, the
  // transport (fd) and the pipes. The id goes stale (kReaped).
  void Reap(Connection& conn);
  void RecordTerminal(Connection& conn, uint64_t now_ns);
  // Folds a verdict's streaming telemetry into the overlap cells.
  void RecordDecodeOverlap(const ProvisionStats& stats);
  Status AdmitFromQueue(size_t& progress);

  uint64_t PagesPerEnclave() const noexcept {
    return options_.enclave_options.layout.TotalPages();
  }
  EngardeOptions PerEnclaveOptions() const;
  // options_.clock, defaulting to std::chrono::steady_clock nanoseconds.
  uint64_t NowNs() const;

  sgx::HostOs* host_;
  const sgx::QuotingEnclave* quoting_;
  std::function<PolicySet()> policy_factory_;
  FrontendOptions options_;
  // Shared inspection pool; null when inspection_threads <= 1.
  std::unique_ptr<common::ThreadPool> inspection_pool_;
  // Standalone mode owns these; group shards borrow the group's.
  std::unique_ptr<EpcBudget> owned_budget_;
  std::unique_ptr<WarmEnclavePool> owned_pool_;
  EpcBudget* budget_;
  WarmEnclavePool* pool_;
  // Slot-mapped connection table: reaped slots go on the free list and are
  // reused (with a bumped generation) by later accepts, so the table stays
  // O(live connections) on a long-lived server.
  std::vector<TableSlot> slots_;
  std::vector<uint32_t> free_slots_;
  std::atomic<size_t> live_count_{0};
  std::deque<uint64_t> admission_queue_;
  MetricsCells metrics_cells_;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_FRONTEND_H_
