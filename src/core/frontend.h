// ProvisioningFrontend: the provider's readiness-driven front door. A
// single-threaded poll-style reactor that multiplexes every client
// provisioning exchange over abstract net::Transports — in-memory pipes for
// tests and benchmarks, non-blocking TCP sockets for tools/engarde-serve —
// pumping each ready ProvisioningSession exactly as far as its queued input
// allows. No thread is ever parked per connection.
//
// Three cooperating parts:
//
//  * Admission controller — budgets the EPC before anything is built: each
//    enclave costs layout.TotalPages() pages against the device capacity
//    minus a reserve, so concurrent arrivals can never push the device into
//    its nondeterministic eviction path. Arrivals beyond budget wait in a
//    bounded FIFO; beyond that (or when an enclave build itself fails with
//    IsRetryableResourceError) the client gets an explicit RetryAfter
//    control record on the wire and is expected to reconnect. The budget
//    itself lives in core/epc_budget.h and may be shared: a FrontendGroup
//    hands N reactors one EpcBudget so they can never jointly overdraw it.
//
//  * Reactor — PollOnce() sweeps every connection: shuttles bytes between
//    the transport and the connection's internal DuplexPipe, pumps the
//    session under its own ScopedAccountant (the same discipline as
//    ProvisioningServer::Drive, so per-phase SGX attribution is bit-for-bit
//    identical to a serial drive of the same exchange), reaps verdicts, and
//    re-admits from the queue as EPC frees up.
//
//  * Warm enclave pool — admission prefers a pre-built enclave whose
//    policy-set fingerprint matches, skipping enclave build + RSA keygen +
//    hello serialization on the hot path (core/enclave_pool.h). Also
//    shareable across a group.
//
// Threading: one ProvisioningFrontend is owned by exactly one thread —
// Accept/PollOnce/per-connection introspection are not synchronized. What IS
// safe cross-thread: the shared EpcBudget, the shared WarmEnclavePool, and
// the aggregate done/shed counters (atomics), which is precisely the state a
// sibling reactor or a monitoring thread touches while this one runs.
#ifndef ENGARDE_CORE_FRONTEND_H_
#define ENGARDE_CORE_FRONTEND_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/enclave_pool.h"
#include "core/engarde.h"
#include "core/epc_budget.h"
#include "core/session.h"
#include "net/transport.h"
#include "sgx/attestation.h"
#include "sgx/cost_model.h"
#include "sgx/hostos.h"

namespace engarde::core {

struct FrontendOptions {
  // Per-enclave options; shared_inspection_pool is overridden with the
  // front end's own shared pool.
  EngardeOptions enclave_options;
  // Size of the shared inspection worker pool. 1 = serial inspection.
  size_t inspection_threads = 1;
  // EPC pages held back from admission (device bookkeeping headroom).
  // Ignored when an external EpcBudget is supplied.
  uint64_t epc_reserve_pages = 64;
  // Arrivals allowed to wait for EPC beyond the budget; past this they are
  // shed with a RetryAfter record. 0 = shed immediately when over budget.
  size_t admission_queue_capacity = 0;
  // Back-off hint carried in the RetryAfter record.
  uint64_t retry_after_ms = 50;
  // Destroy the enclave (freeing its EPC pages toward queued arrivals) once
  // its session reached a verdict and the outcome was recorded. A provider
  // that keeps compliant enclaves alive to run client code turns this off
  // and manages lifetimes itself.
  bool destroy_enclave_on_verdict = true;
};

enum class ConnectionState : uint8_t {
  kQueued = 0,  // waiting for EPC budget; nothing sent yet
  kActive,      // admitted: hello sent, session live
  kDone,        // verdict reached, outcome recorded
  kShed,        // RetryAfter sent; client must reconnect
  kFailed,      // hard protocol/transport error, no verdict
};

class ProvisioningFrontend {
 public:
  // Standalone reactor: owns its budget (device capacity minus
  // options.epc_reserve_pages) and its warm pool. `host`, `quoting` and the
  // transports' peers must outlive the frontend.
  ProvisioningFrontend(sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
                       std::function<PolicySet()> policy_factory,
                       FrontendOptions options);

  // Group shard: draws admissions from a shared `budget` and warm handouts
  // from a shared `pool`, both owned by the caller (FrontendGroup) and
  // outliving the frontend. epc_reserve_pages in `options` is ignored — the
  // shared budget already encodes the reserve.
  ProvisioningFrontend(sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
                       std::function<PolicySet()> policy_factory,
                       FrontendOptions options, EpcBudget* budget,
                       WarmEnclavePool* pool);

  // Pre-builds `count` warm enclaves, charging their EPC pages against the
  // admission budget. Fails with RESOURCE_EXHAUSTED when the budget cannot
  // hold another pooled enclave.
  Status PrefillPool(size_t count);

  // Registers a connection and decides admission immediately:
  //   admitted — control kHelloFollows + hello bytes go out, session is live;
  //   queued   — parked FIFO until EPC frees, nothing sent yet;
  //   shed     — RetryAfter record goes out, connection is finished.
  // Returns the connection id (dense, starting at 0).
  Result<uint64_t> Accept(std::unique_ptr<net::Transport> transport);

  // One reactor sweep over every connection. Returns how many connections
  // made progress (bytes moved or state advanced).
  Result<size_t> PollOnce();

  // Sweeps until a full pass makes no progress (in-memory transports: until
  // every queued byte is consumed and every completable session completed).
  Status DrainAll();

  // ---- Introspection (owner thread, except where noted) -------------------
  size_t connection_count() const noexcept { return connections_.size(); }
  ConnectionState state(uint64_t id) const {
    return connections_[id]->state;
  }
  // Terminal failure for kFailed connections (OK otherwise).
  Status connection_status(uint64_t id) const {
    return connections_[id]->failure;
  }
  // Moves the outcome out of a kDone connection.
  Result<ProvisionOutcome> TakeOutcome(uint64_t id);
  const sgx::CycleAccountant& accountant(uint64_t id) const {
    return connections_[id]->slot->accountant;
  }
  bool served_from_pool(uint64_t id) const {
    return connections_[id]->from_pool;
  }

  size_t active_count() const noexcept;
  size_t queued_count() const noexcept { return admission_queue_.size(); }
  // Aggregate counters — safe to read from any thread while the reactor runs.
  size_t shed_count() const noexcept {
    return shed_count_.load(std::memory_order_relaxed);
  }
  size_t done_count() const noexcept {
    return done_count_.load(std::memory_order_relaxed);
  }

  // Admission budget telemetry (thread-safe; possibly shared across a
  // group). max_committed_pages() never exceeding budget_pages() is the
  // no-eviction guarantee the tests pin.
  uint64_t budget_pages() const noexcept { return budget_->budget_pages(); }
  uint64_t committed_pages() const noexcept {
    return budget_->committed_pages();
  }
  uint64_t max_committed_pages() const noexcept {
    return budget_->max_committed_pages();
  }
  EpcBudget& budget() noexcept { return *budget_; }

  WarmEnclavePool& pool() noexcept { return *pool_; }

  // Descriptors of all live fd-backed transports, for poll(2) in a serving
  // loop. In-memory transports have none and are swept unconditionally.
  std::vector<int> PollDescriptors() const;

 private:
  struct Connection {
    uint64_t id = 0;
    std::unique_ptr<net::Transport> transport;
    // Internal wire: EndA = session side, EndB = transport side.
    std::unique_ptr<crypto::DuplexPipe> pipe;
    std::unique_ptr<PooledEnclave> slot;  // accountant + enclave + hello
    std::optional<ProvisioningSession> session;
    ConnectionState state = ConnectionState::kQueued;
    Status failure;
    std::optional<ProvisionOutcome> outcome;
    bool from_pool = false;
    bool outcome_taken = false;
    bool enclave_released = false;
  };

  enum class AdmitResult : uint8_t { kAdmitted, kNoBudget };

  // Tries to admit: warm handout or budgeted cold build + control frame +
  // hello. kNoBudget when the EPC budget (or a retryable build failure)
  // stands in the way.
  Result<AdmitResult> TryAdmit(Connection& conn);
  // Sends the RetryAfter record and finishes the connection.
  Status Shed(Connection& conn);
  // One sweep over one connection; increments `progress` on any advance.
  Status PumpConnection(Connection& conn, size_t& progress);
  // Reaps EPC from a finished connection and re-admits queued arrivals.
  void ReleaseEnclave(Connection& conn);
  Status AdmitFromQueue(size_t& progress);

  uint64_t PagesPerEnclave() const noexcept {
    return options_.enclave_options.layout.TotalPages();
  }
  EngardeOptions PerEnclaveOptions() const;

  sgx::HostOs* host_;
  const sgx::QuotingEnclave* quoting_;
  std::function<PolicySet()> policy_factory_;
  FrontendOptions options_;
  // Shared inspection pool; null when inspection_threads <= 1.
  std::unique_ptr<common::ThreadPool> inspection_pool_;
  // Standalone mode owns these; group shards borrow the group's.
  std::unique_ptr<EpcBudget> owned_budget_;
  std::unique_ptr<WarmEnclavePool> owned_pool_;
  EpcBudget* budget_;
  WarmEnclavePool* pool_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::deque<uint64_t> admission_queue_;
  std::atomic<size_t> shed_count_{0};
  std::atomic<size_t> done_count_{0};
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_FRONTEND_H_
