// ProvisioningFrontend: the provider's readiness-driven front door. A
// single-threaded poll-style reactor that multiplexes every client
// provisioning exchange over abstract net::Transports — in-memory pipes for
// tests and benchmarks, non-blocking TCP sockets for tools/engarde-serve —
// pumping each ready ProvisioningSession exactly as far as its queued input
// allows. No thread is ever parked per connection.
//
// Four cooperating parts:
//
//  * Admission controller — budgets the EPC before anything is built: each
//    enclave costs layout.TotalPages() pages against the device capacity
//    minus a reserve, so concurrent arrivals can never push the device into
//    its nondeterministic eviction path. Arrivals beyond budget wait in a
//    bounded FIFO; beyond that (or when an enclave build itself fails with
//    IsRetryableResourceError) the client gets an explicit RetryAfter
//    control record on the wire and is expected to reconnect. The budget
//    itself lives in core/epc_budget.h and may be shared: a FrontendGroup
//    hands N reactors one EpcBudget so they can never jointly overdraw it.
//
//  * Reactor — PollOnce() sweeps every live connection: shuttles bytes
//    between the transport and the connection's internal DuplexPipe, pumps
//    the session under its own ScopedAccountant (the same discipline as
//    ProvisioningServer::Drive, so per-phase SGX attribution is bit-for-bit
//    identical to a serial drive of the same exchange), reaps verdicts, and
//    re-admits from the queue as EPC frees up.
//
//  * Deadline enforcement + reaper — every sweep reads a monotonic clock
//    (injectable through FrontendOptions::clock for deterministic tests) and
//    fails any connection that blew one of its time budgets: too long queued
//    for admission, too long without inbound bytes while admitted, or too
//    long overall. An expired connection gets a best-effort kDeadlineExceeded
//    control record, its enclave is destroyed through HostOs::DestroyEnclave
//    and its EPC pages go back to the budget — a slow-loris client can never
//    starve the FIFO. Terminal connections (kDone once their outcome is
//    taken, kShed/kFailed/kTimedOut once their outbound tail is flushed) are
//    then reaped: the slot-mapped connection table frees the slot, the fd,
//    and the pipes, so memory and per-sweep work stay O(active) no matter
//    how many sessions a long-lived server has served. Ids stay stable —
//    a reused slot gets a fresh generation, so a stale id never aliases a
//    newer connection (it reads as kReaped).
//
//  * Warm enclave pool — admission prefers a pre-built enclave whose
//    policy-set fingerprint matches, skipping enclave build + RSA keygen +
//    hello serialization on the hot path (core/enclave_pool.h). Also
//    shareable across a group.
//
// Threading: one ProvisioningFrontend is owned by exactly one thread —
// Accept/PollOnce/per-connection introspection are not synchronized. What IS
// safe cross-thread: the shared EpcBudget, the shared WarmEnclavePool, and
// the FrontendMetrics counters (atomics), which is precisely the state a
// sibling reactor or a monitoring thread touches while this one runs.
#ifndef ENGARDE_CORE_FRONTEND_H_
#define ENGARDE_CORE_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/enclave_pool.h"
#include "core/engarde.h"
#include "core/epc_budget.h"
#include "core/group_session.h"
#include "core/session.h"
#include "net/transport.h"
#include "sgx/attestation.h"
#include "sgx/cost_model.h"
#include "sgx/hostos.h"

namespace engarde::core {

// ---- Log-scale latency histograms ------------------------------------------
// Fixed-bucket power-of-two histogram over nanosecond durations: bucket i
// counts samples in [2^i, 2^(i+1)) ns (bucket 0 also takes 0 ns), and the
// last bucket absorbs everything from 2^(kLatencyBuckets-1) ns (~9 minutes)
// up. Cells are relaxed atomics updated with one fetch_add per sample, so
// recording is lock-free and shard merging is element-wise summation. The
// count/total/max triple the metrics already carry cannot yield a p95; this
// can, at the cost of power-of-two resolution — plenty for deriving
// deadlines that only move on order-of-magnitude workload shifts.
inline constexpr size_t kLatencyBuckets = 40;

// Bucket the duration lands in (see the bucketing rule above).
size_t LatencyBucketIndex(uint64_t duration_ns) noexcept;

// Conservative percentile: the EXCLUSIVE upper bound (2^(i+1) ns) of the
// first bucket at which the cumulative count reaches `percent`% of the
// total. 0 when the histogram is empty. Conservative-by-rounding-up is the
// right bias for deadline derivation — a deadline must cover the samples it
// was derived from.
uint64_t HistogramPercentileNs(const uint64_t (&buckets)[kLatencyBuckets],
                               uint32_t percent) noexcept;

// Total sample count across the buckets.
uint64_t HistogramCount(const uint64_t (&buckets)[kLatencyBuckets]) noexcept;

// Hysteresis rule for adaptive-deadline adoption: returns `proposed` when it
// moved more than `hysteresis_pct` percent of `current` away from it, else
// `current`. A zero `current` (nothing in force yet) adopts outright. Note
// the asymmetry at pct >= 100: a downward move can never exceed 100% of
// `current`, so shrinking deadlines requires pct < 100.
uint64_t ApplyHysteresis(uint64_t current, uint64_t proposed,
                         uint64_t hysteresis_pct) noexcept;

struct FrontendOptions {
  // Per-enclave options; shared_inspection_pool is overridden with the
  // front end's own shared pool.
  EngardeOptions enclave_options;
  // Size of the shared inspection worker pool. 1 = serial inspection.
  size_t inspection_threads = 1;
  // EPC pages held back from admission (device bookkeeping headroom).
  // Ignored when an external EpcBudget is supplied.
  uint64_t epc_reserve_pages = 64;
  // EPC oversubscription ratio: admission capacity = physical budget ×
  // this ratio (values <= 1.0 mean no oversubscription). Above 1.0 the
  // front end admits more enclaves than physically fit and relies on the
  // host OS reclaimer (EWB/ELDU) to multiplex the resident set. Ignored
  // when an external EpcBudget is supplied.
  double epc_oversub = 1.0;
  // Per-session page quota (cgroup-style): a single enclave larger than
  // this is shed outright instead of admitted. 0 = no quota. Ignored when
  // an external EpcBudget is supplied.
  uint64_t session_quota_pages = 0;
  // When > 0, every admission that leaves fewer than this many free EPC
  // pages kicks HostOs::NotifyEpcPressure() so the background reclaimer
  // restores headroom before the next fault. 0 = never kick.
  uint64_t reclaim_low_watermark = 0;
  // Arrivals allowed to wait for EPC beyond the budget; past this they are
  // shed with a RetryAfter record. 0 = shed immediately when over budget.
  size_t admission_queue_capacity = 0;
  // Back-off hint carried in the RetryAfter record.
  uint64_t retry_after_ms = 50;
  // Destroy the enclave (freeing its EPC pages toward queued arrivals) once
  // its session reached a verdict and the outcome was recorded. A provider
  // that keeps compliant enclaves alive to run client code turns this off
  // and manages lifetimes itself.
  bool destroy_enclave_on_verdict = true;
  // Fleet mode: every connection leads with a GroupManifest frame
  // (core/protocol.h) and co-provisions all declared members over ONE shared
  // channel (core/group_session.h). Admission is atomic per group — warm
  // handouts plus one all-or-nothing EpcBudget reservation for the cold
  // remainder; any mid-group failure rolls every member back. Off (the
  // default), the front end speaks the original one-connection-one-enclave
  // protocol, byte for byte.
  bool group_provisioning = false;

  // ---- Deadlines (0 = unlimited) -------------------------------------------
  // All measured against `clock`. Expiry fails the connection with
  // DEADLINE_EXCEEDED, sends a best-effort kDeadlineExceeded control record,
  // destroys its enclave through HostOs::DestroyEnclave and returns its EPC
  // pages so queued arrivals admit.
  //
  // Max time an arrival may wait in the admission FIFO before the front end
  // gives up on EPC freeing in time.
  uint64_t queue_deadline_ms = 0;
  // Max time an admitted connection may go without delivering a single
  // inbound byte — the slow-loris bound.
  uint64_t idle_deadline_ms = 0;
  // Max time from accept to verdict, inbound progress or not.
  uint64_t session_deadline_ms = 0;
  // Monotonic nanosecond clock the deadlines are measured against. Null =
  // std::chrono::steady_clock. Must be thread-safe when the frontend is a
  // FrontendGroup shard (every reactor thread reads it).
  std::function<uint64_t()> clock;

  // ---- Adaptive overload control (off = static flags above rule) -----------
  // Derive the three deadlines and the RetryAfter hint from the observed
  // latency histograms instead of the static flags. Every
  // adaptive_recompute_ms of reactor time the front end recomputes
  //   session deadline = 8 × p95(session duration)
  //   idle deadline    = 4 × p95(session duration)
  //   queue deadline   = 4 × p95(admission wait)
  //   retry hint       = p50(admission wait)
  // each clamped to [adaptive_min_ms, adaptive_max_ms] (the hint only to the
  // max), with hysteresis: a recomputed value is adopted only when it moves
  // more than adaptive_hysteresis_pct away from the one in force. Until a
  // histogram holds adaptive_min_samples samples the corresponding static
  // value stays in force (cold start), so a freshly booted server behaves
  // exactly like a static one.
  bool adaptive_deadlines = false;
  uint64_t adaptive_recompute_ms = 100;
  uint64_t adaptive_min_samples = 32;
  uint64_t adaptive_min_ms = 10;
  uint64_t adaptive_max_ms = 60000;
  uint64_t adaptive_hysteresis_pct = 25;

  // Under queue pressure (an arrival finding the admission queue at
  // capacity), shed the OLDEST queued arrival — the one closest to its queue
  // deadline, i.e. the most likely doomed — and park the newcomer in its
  // place, instead of refusing the newcomer. Fixes the tail-latency
  // inversion where a waiter that will expire anyway blocks a fresh admit.
  // Off: classic shed-the-newest, byte-identical to earlier behavior.
  bool evict_oldest = false;

  // Weighted-fair admission across tenants (Transport::peer() tags): one
  // FIFO per tenant drained deficit-round-robin (quantum: one admission unit
  // per rotation; a group session costs its member count), so one heavy or
  // slow tenant cannot starve the rest. Off: the original single global
  // FIFO, byte-identical to earlier behavior.
  bool fair_admission = false;
  // Token-bucket rate limit per tenant, in admission units (group members)
  // per second; 0 = unlimited. A rate-limited tenant's arrivals queue (or
  // shed when the queue is full) until its bucket refills. Only consulted
  // when fair_admission is on.
  double tenant_rate = 0.0;
  // Token-bucket capacity. 0 = max(4, 2 × tenant_rate).
  double tenant_burst = 0.0;
};

enum class ConnectionState : uint8_t {
  kQueued = 0,  // waiting for EPC budget; nothing sent yet
  kActive,      // admitted: hello sent, session live
  kAwaitGroup,  // fleet mode: waiting for the client's GroupManifest frame
  kDone,        // verdict reached, outcome recorded
  kShed,        // RetryAfter sent; client must reconnect
  kFailed,      // hard protocol/transport error, no verdict
  kTimedOut,    // a deadline expired; enclave reclaimed, no verdict
  kReaped,      // slot retired — reported for stale ids, never stored
};

// Aggregate front-end telemetry. Counters are monotonic over the frontend's
// lifetime; gauges are sampled at snapshot time. Safe to take from any
// thread while the reactor runs (the cells are relaxed atomics, same
// discipline as the budget counters).
struct FrontendMetrics {
  // Counters.
  uint64_t accepted = 0;       // connections ever Accept()ed
  uint64_t admitted = 0;       // reached kActive (immediately or from queue)
  uint64_t admitted_warm = 0;  // of those, served from the warm pool
  uint64_t queued = 0;         // ever parked in the admission FIFO
  uint64_t shed = 0;           // RetryAfter sent
  uint64_t timed_out = 0;      // any deadline expiry
  uint64_t failed = 0;         // hard failures (excluding timeouts)
  uint64_t done = 0;           // verdicts reached
  uint64_t reaped = 0;         // slots retired by the reaper
  // Gauges.
  uint64_t live_connections = 0;  // slots currently held
  uint64_t peak_live_connections = 0;
  uint64_t queue_depth = 0;
  // Admission wait (accept -> kActive) over admitted connections.
  uint64_t admission_wait_count = 0;
  uint64_t admission_wait_total_ns = 0;
  uint64_t admission_wait_max_ns = 0;
  // Session duration (accept -> terminal state) over finished connections.
  uint64_t session_count = 0;
  uint64_t session_total_ns = 0;
  uint64_t session_max_ns = 0;
  // Log-scale histograms behind the triples above (see kLatencyBuckets):
  // percentile sources for adaptive deadlines and --metrics-json.
  uint64_t admission_wait_hist[kLatencyBuckets] = {};
  uint64_t session_hist[kLatencyBuckets] = {};
  // Adaptive overload control. The effective_* values are the deadlines and
  // hint currently in force — equal to the static options until an adaptive
  // recompute adopts a percentile-derived value. deadline_recomputes counts
  // recompute passes (sums across shards); evicted_oldest counts queued
  // arrivals shed by the oldest-eviction policy; rate_limit_deferrals counts
  // admission attempts deferred by an empty tenant token bucket.
  uint64_t effective_queue_deadline_ms = 0;
  uint64_t effective_idle_deadline_ms = 0;
  uint64_t effective_session_deadline_ms = 0;
  uint64_t effective_retry_after_ms = 0;
  uint64_t deadline_recomputes = 0;
  uint64_t evicted_oldest = 0;
  uint64_t rate_limit_deferrals = 0;
  // Distinct tenant tags this shard has seen (gauge; max across shards — a
  // tenant may hit several shards, so summing would overcount).
  uint64_t tenants_seen = 0;
  // Streaming-decode overlap over verdicts whose session planned speculative
  // decode work (EngardeOptions::streaming_inspection): how many bytes were
  // already decoded when DONE arrived, and the per-session overlap ratio
  // (bytes-before-DONE / planned text bytes, in permille).
  uint64_t decode_overlap_count = 0;         // verdicts with planned decode
  uint64_t decode_early_bytes_total = 0;     // bytes decoded before DONE
  uint64_t decode_overlap_sum_permille = 0;  // sum of per-session ratios
  uint64_t decode_overlap_max_permille = 0;
  // Budget occupancy at snapshot time (shared across a group's shards).
  // budget_pages is the *virtual* (oversubscribed) capacity;
  // physical_budget_pages is the physical pot it scales.
  uint64_t budget_pages = 0;
  uint64_t committed_pages = 0;
  uint64_t max_committed_pages = 0;
  uint64_t physical_budget_pages = 0;
  uint64_t budget_underflows = 0;  // EpcBudget double releases; must stay 0
  // Paging telemetry from the shared host OS / device (counters monotonic,
  // residency fields sampled). epc_resident_pages is physical occupancy —
  // committed_pages above it is the oversubscription in action.
  uint64_t epc_faults = 0;             // faults serviced by ELDU
  uint64_t eldu_loads = 0;             // successful ELDU reloads
  uint64_t pages_reclaimed = 0;        // background/batch reclaim EWBs
  uint64_t pages_evicted_inline = 0;   // last-resort same-enclave EWBs
  uint64_t reclaim_wakeups = 0;        // reclaimer scans that found pressure
  uint64_t epc_resident_pages = 0;     // physical EPC pages in use now
  uint64_t epc_resident_peak = 0;      // high-water physical occupancy
  uint64_t epc_capacity_pages = 0;     // physical EPC size
  // Verdict-cache telemetry (core/verdict_cache.h), read from the cache
  // object the enclave options carry. Like the budget/paging fields, the
  // cache is shared across a group's shards, so Merge keeps the max instead
  // of summing (every shard reports the same shared totals). All zero when
  // no cache is configured.
  uint64_t verdict_cache_hits = 0;
  uint64_t verdict_cache_partial_hits = 0;
  uint64_t verdict_cache_misses = 0;
  uint64_t verdict_cache_tamper_rejects = 0;
  uint64_t verdict_cache_evictions = 0;
  uint64_t verdict_cache_bytes_sealed = 0;  // gauge: sealed bytes on disk
  // Fleet provisioning (group_provisioning mode; all zero otherwise).
  uint64_t groups_admitted = 0;         // whole groups co-admitted
  uint64_t group_members_admitted = 0;  // members across those groups
  uint64_t groups_rejected_mutual = 0;  // groups rejected by mutual verify

  // Shard aggregation: counters and gauges sum, maxima take the max; budget
  // and paging fields are shared (one budget / host OS per group), so Merge
  // keeps the max and the group overwrites them once after merging.
  void Merge(const FrontendMetrics& other) noexcept;
};

class ProvisioningFrontend {
 public:
  // Standalone reactor: owns its budget (device capacity minus
  // options.epc_reserve_pages) and its warm pool. `host`, `quoting` and the
  // transports' peers must outlive the frontend.
  ProvisioningFrontend(sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
                       std::function<PolicySet()> policy_factory,
                       FrontendOptions options);

  // Group shard: draws admissions from a shared `budget` and warm handouts
  // from a shared `pool`, both owned by the caller (FrontendGroup) and
  // outliving the frontend. epc_reserve_pages in `options` is ignored — the
  // shared budget already encodes the reserve.
  ProvisioningFrontend(sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
                       std::function<PolicySet()> policy_factory,
                       FrontendOptions options, EpcBudget* budget,
                       WarmEnclavePool* pool);

  // Pre-builds `count` warm enclaves, charging their EPC pages against the
  // admission budget. Fails with RESOURCE_EXHAUSTED when the budget cannot
  // hold another pooled enclave.
  Status PrefillPool(size_t count);

  // Registers a connection and decides admission immediately:
  //   admitted — control kHelloFollows + hello bytes go out, session is live;
  //   queued   — parked FIFO until EPC frees, nothing sent yet;
  //   shed     — RetryAfter record goes out, connection is finished.
  // Returns the connection id: stable for the connection's whole lifetime,
  // never reused for a later connection (slot index + generation).
  Result<uint64_t> Accept(std::unique_ptr<net::Transport> transport);

  // One reactor sweep over every live connection: deadline enforcement,
  // byte shuttling, session pumping, reaping, queue admission. Returns how
  // many connections made progress (bytes moved or state advanced).
  Result<size_t> PollOnce();

  // Sweeps until a full pass makes no progress (in-memory transports: until
  // every queued byte is consumed and every completable session completed).
  Status DrainAll();

  // ---- Introspection (owner thread, except where noted) -------------------
  // Live (un-reaped) connections currently held.
  size_t connection_count() const noexcept {
    return live_count_.load(std::memory_order_relaxed);
  }
  // Ids of every live connection, in slot order.
  std::vector<uint64_t> connection_ids() const;
  // kReaped for an id the reaper has retired (or that never existed).
  ConnectionState state(uint64_t id) const noexcept;
  // Terminal failure for kFailed/kTimedOut connections (OK otherwise,
  // NOT_FOUND for reaped ids).
  Status connection_status(uint64_t id) const;
  // Moves the outcome out of a kDone connection. Once taken, the reaper may
  // retire the connection on a later sweep.
  Result<ProvisionOutcome> TakeOutcome(uint64_t id);
  const sgx::CycleAccountant& accountant(uint64_t id) const {
    return Get(id).slot->accountant;
  }
  bool served_from_pool(uint64_t id) const { return Get(id).from_pool; }

  // ---- Fleet-mode introspection (group_provisioning connections) ----------
  // Member count of a co-admitted group; 0 before admission or for a solo
  // connection.
  size_t group_member_count(uint64_t id) const {
    return Get(id).group_slots.size();
  }
  const sgx::CycleAccountant& group_member_accountant(uint64_t id,
                                                      size_t member) const {
    return Get(id).group_slots[member]->accountant;
  }
  // True for a kDone group whose verdicts were overridden by mutual
  // verification.
  bool group_rejected(uint64_t id) const {
    const Connection& conn = Get(id);
    return conn.group_session != nullptr && conn.group_session->group_rejected();
  }
  // Moves every member outcome (declaration order) out of a kDone group.
  Result<std::vector<ProvisionOutcome>> TakeGroupOutcomes(uint64_t id);

  size_t active_count() const noexcept;
  size_t queued_count() const noexcept {
    return metrics_cells_.queue_depth.load(std::memory_order_relaxed);
  }
  // Aggregate counters — safe to read from any thread while the reactor runs.
  size_t shed_count() const noexcept {
    return metrics_cells_.shed.load(std::memory_order_relaxed);
  }
  size_t done_count() const noexcept {
    return metrics_cells_.done.load(std::memory_order_relaxed);
  }
  size_t timed_out_count() const noexcept {
    return metrics_cells_.timed_out.load(std::memory_order_relaxed);
  }
  size_t reaped_count() const noexcept {
    return metrics_cells_.reaped.load(std::memory_order_relaxed);
  }
  // Full telemetry snapshot (thread-safe, like the individual counters).
  FrontendMetrics metrics() const noexcept;

  // Deadlines / back-off hint currently in force (thread-safe). Equal to the
  // static options until adaptive_deadlines adopts percentile-derived values.
  uint64_t effective_queue_deadline_ms() const noexcept {
    return metrics_cells_.eff_queue_deadline_ms.load(std::memory_order_relaxed);
  }
  uint64_t effective_idle_deadline_ms() const noexcept {
    return metrics_cells_.eff_idle_deadline_ms.load(std::memory_order_relaxed);
  }
  uint64_t effective_session_deadline_ms() const noexcept {
    return metrics_cells_.eff_session_deadline_ms.load(
        std::memory_order_relaxed);
  }
  uint64_t effective_retry_after_ms() const noexcept {
    return metrics_cells_.eff_retry_after_ms.load(std::memory_order_relaxed);
  }

  // Admission budget telemetry (thread-safe; possibly shared across a
  // group). max_committed_pages() never exceeding budget_pages() is the
  // no-eviction guarantee the tests pin.
  uint64_t budget_pages() const noexcept { return budget_->budget_pages(); }
  uint64_t committed_pages() const noexcept {
    return budget_->committed_pages();
  }
  uint64_t max_committed_pages() const noexcept {
    return budget_->max_committed_pages();
  }
  EpcBudget& budget() noexcept { return *budget_; }

  WarmEnclavePool& pool() noexcept { return *pool_; }

  // Descriptors of all live fd-backed transports, for poll(2) in a serving
  // loop. In-memory transports have none and are swept unconditionally.
  std::vector<int> PollDescriptors() const;

 private:
  struct Connection {
    uint64_t id = 0;
    std::unique_ptr<net::Transport> transport;
    // Internal wire: EndA = session side, EndB = transport side.
    std::unique_ptr<crypto::DuplexPipe> pipe;
    std::unique_ptr<PooledEnclave> slot;  // accountant + enclave + hello
    std::optional<ProvisioningSession> session;
    // Fleet mode (group_provisioning): the parsed manifest is held while the
    // group waits in the admission FIFO; on co-admission the connection owns
    // one slot per member plus the group session that borrows them.
    // Fair-admission tenant tag, copied from Transport::peer() at accept
    // (empty = anonymous default tenant).
    std::string tenant;
    std::optional<GroupManifest> group_manifest;
    std::vector<std::unique_ptr<PooledEnclave>> group_slots;
    std::unique_ptr<GroupProvisioningSession> group_session;
    std::vector<ProvisionOutcome> group_outcomes;
    bool group_outcomes_taken = false;
    ConnectionState state = ConnectionState::kQueued;
    Status failure;
    std::optional<ProvisionOutcome> outcome;
    bool from_pool = false;
    bool outcome_taken = false;
    bool enclave_released = false;
    // Latched when the transport hard-errors while flushing a terminal
    // tail: the tail is undeliverable, stop touching the wire and let the
    // reaper retire the slot.
    bool wire_dead = false;
    // Deadline bookkeeping, all in clock() nanoseconds.
    uint64_t accepted_ns = 0;
    uint64_t last_input_ns = 0;  // reset on every inbound byte once admitted
  };

  // One connection-table entry. A retired slot keeps its generation bumped
  // so the stale id can never alias the slot's next tenant.
  struct TableSlot {
    std::unique_ptr<Connection> conn;
    uint32_t generation = 0;
  };

  // All monotonic counters live here as relaxed atomics so metrics() and the
  // legacy shed/done accessors are safe cross-thread.
  struct MetricsCells {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> admitted_warm{0};
    std::atomic<uint64_t> queued{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> timed_out{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> done{0};
    std::atomic<uint64_t> reaped{0};
    std::atomic<uint64_t> peak_live{0};
    std::atomic<uint64_t> admission_wait_count{0};
    std::atomic<uint64_t> admission_wait_total_ns{0};
    std::atomic<uint64_t> admission_wait_max_ns{0};
    std::atomic<uint64_t> session_count{0};
    std::atomic<uint64_t> session_total_ns{0};
    std::atomic<uint64_t> session_max_ns{0};
    std::atomic<uint64_t> decode_overlap_count{0};
    std::atomic<uint64_t> decode_early_bytes_total{0};
    std::atomic<uint64_t> decode_overlap_sum_permille{0};
    std::atomic<uint64_t> decode_overlap_max_permille{0};
    std::atomic<uint64_t> groups_admitted{0};
    std::atomic<uint64_t> group_members_admitted{0};
    std::atomic<uint64_t> groups_rejected_mutual{0};
    // Gauge mirror of the total queued population (the global FIFO, or the
    // sum across tenant queues under fair admission), so
    // queued_count()/metrics() stay readable off the owner thread.
    std::atomic<uint64_t> queue_depth{0};
    // Log-scale latency histograms (one fetch_add per sample).
    std::atomic<uint64_t> admission_wait_hist[kLatencyBuckets] = {};
    std::atomic<uint64_t> session_hist[kLatencyBuckets] = {};
    // Deadlines/hint currently in force. Mirrored into atomics (initialized
    // from the static options at construction) so Expired()/Shed() on the
    // owner thread and metrics() on a monitor thread read the same values
    // without synchronization.
    std::atomic<uint64_t> eff_queue_deadline_ms{0};
    std::atomic<uint64_t> eff_idle_deadline_ms{0};
    std::atomic<uint64_t> eff_session_deadline_ms{0};
    std::atomic<uint64_t> eff_retry_after_ms{0};
    std::atomic<uint64_t> deadline_recomputes{0};
    std::atomic<uint64_t> evicted_oldest{0};
    std::atomic<uint64_t> rate_limit_deferrals{0};
    std::atomic<uint64_t> tenant_count{0};  // gauge mirror of tenants_.size()
  };

  enum class AdmitResult : uint8_t { kAdmitted, kNoBudget };

  // Per-tenant fair-admission state (fair_admission mode). A tenant entry
  // persists across queue emptiness so its token bucket keeps draining and
  // refilling on real time; the map is bounded by the number of distinct
  // peer tags the server ever sees.
  struct TenantState {
    std::deque<uint64_t> waiting;  // kQueued connection ids, arrival order
    // Deficit-round-robin credit, in admission units. Earned one quantum per
    // rotation visit while arrivals wait; reset when the queue drains so an
    // idle tenant cannot hoard credit.
    uint64_t deficit = 0;
    // Token bucket (tenant_rate > 0): admission units available now.
    double tokens = 0.0;
    uint64_t token_refill_ns = 0;  // 0 = bucket not yet initialized
    bool in_rotation = false;      // member of rotation_
  };

  static constexpr uint32_t kSlotBits = 32;
  static uint64_t MakeId(uint32_t slot, uint32_t generation) noexcept {
    return (static_cast<uint64_t>(generation) << kSlotBits) | slot;
  }
  // The live connection behind `id`, or nullptr for stale/unknown ids.
  Connection* Find(uint64_t id) noexcept;
  const Connection* Find(uint64_t id) const noexcept;
  // Asserting variant for accessors whose contract requires a live id.
  const Connection& Get(uint64_t id) const;

  // Tries to admit: warm handout or budgeted cold build + control frame +
  // hello. kNoBudget when the EPC budget (or a retryable build failure)
  // stands in the way.
  Result<AdmitResult> TryAdmit(Connection& conn);
  // Atomic group co-admission against conn.group_manifest: validates every
  // member, takes warm handouts, makes ONE all-or-nothing budget reservation
  // for the cold remainder and builds it. Any failure rolls back every
  // handout, build and reserved page — kNoBudget for retryable starvation
  // (the group can queue), a hard status for an invalid manifest.
  Result<AdmitResult> TryAdmitGroup(Connection& conn);
  // kAwaitGroup step: parse the GroupManifest frame once it is whole, then
  // admit / queue / shed the group.
  Status PumpAwaitGroup(Connection& conn, uint64_t now_ns, size_t& progress);
  // Sends the RetryAfter record and finishes the connection.
  Status Shed(Connection& conn);
  // One sweep over one connection; increments `progress` on any advance.
  // `now_ns` is the sweep's clock reading (deadlines). May reap `conn`.
  Status PumpConnection(Connection& conn, uint64_t now_ns, size_t& progress);
  // Expires `conn` with DEADLINE_EXCEEDED: best-effort control record,
  // enclave destroyed, budget released, FIFO entry dropped.
  Status ExpireConnection(Connection& conn, uint64_t now_ns,
                          uint64_t deadline_ms, const char* what);
  // Deadline the connection is currently closest to blowing; 0 = none armed.
  bool Expired(const Connection& conn, uint64_t now_ns,
               uint64_t* deadline_ms, const char** what) const;
  // Fails one connection with `cause` (transport hard error, session
  // failure): records metrics, destroys the enclave, releases its pages.
  // A bad wire takes down its own connection, never the whole sweep.
  void FailConnection(Connection& conn, Status cause, uint64_t now_ns,
                      size_t& progress);
  // Reaps EPC from a finished connection and re-admits queued arrivals.
  void ReleaseEnclave(Connection& conn);
  // Retires a terminal, fully-flushed connection: frees the slot, the
  // transport (fd) and the pipes. The id goes stale (kReaped).
  void Reap(Connection& conn);
  void RecordTerminal(Connection& conn, uint64_t now_ns);
  // Folds a verdict's streaming telemetry into the overlap cells.
  void RecordDecodeOverlap(const ProvisionStats& stats);
  Status AdmitFromQueue(size_t& progress);
  // Fair-admission variant: one deficit-round-robin pass over the tenant
  // rotation, admitting heads while deficit, tokens and EPC budget allow.
  Status AdmitFromQueueFair(size_t& progress);

  // ---- Admission-queue bookkeeping (both modes) ---------------------------
  // Admission units a connection charges: 1 solo, member count for a group.
  static uint64_t AdmissionCost(const Connection& conn) noexcept;
  // Queued population across whichever queue structure is active.
  size_t TotalQueued() const noexcept;
  // Parks a kQueued connection (global FIFO, or its tenant's queue).
  void EnqueueForAdmission(Connection& conn);
  // Eagerly removes a connection's queue entry (expiry path); lazily-dropped
  // stale entries elsewhere never charge DRR deficit.
  void RemoveFromQueue(Connection& conn);
  // Oldest valid kQueued connection across the queue(s); nullptr when none.
  Connection* OldestQueued() noexcept;
  // evict_oldest policy: sheds the oldest queued arrival to make room.
  // Returns false (leaving the queues untouched) when nothing is evictable.
  Result<bool> EvictOldestQueued();
  void StoreQueueDepth() noexcept;

  // ---- Tenant token buckets (fair_admission && tenant_rate > 0) ----------
  TenantState& TenantFor(const std::string& tenant);
  void RefillTokens(TenantState& tenant, uint64_t now_ns) const;
  // True when the tenant may admit `cost` units now; counts a deferral
  // otherwise. Always true when rate limiting is off.
  bool TenantAdmissible(TenantState& tenant, uint64_t cost, uint64_t now_ns);
  void ChargeTokens(TenantState& tenant, uint64_t cost) const;

  // ---- Adaptive deadlines -------------------------------------------------
  // Seeds the effective-deadline cells from the static options (ctors).
  void InitEffectiveDeadlines() noexcept;
  // Recomputes the effective deadlines/hint from the histograms on the
  // adaptive_recompute_ms cadence. No-op when adaptive_deadlines is off.
  void MaybeRecomputeDeadlines(uint64_t now_ns);
  uint64_t ClampAdaptiveMs(uint64_t ms) const noexcept;
  // `proposed` if it moved more than adaptive_hysteresis_pct away from
  // `current` (or current is 0), else `current`.
  uint64_t WithHysteresis(uint64_t current, uint64_t proposed) const noexcept;

  uint64_t PagesPerEnclave() const noexcept {
    return options_.enclave_options.layout.TotalPages();
  }
  EngardeOptions PerEnclaveOptions() const;
  // options_.clock, defaulting to std::chrono::steady_clock nanoseconds.
  uint64_t NowNs() const;

  sgx::HostOs* host_;
  const sgx::QuotingEnclave* quoting_;
  std::function<PolicySet()> policy_factory_;
  FrontendOptions options_;
  // Shared inspection pool; null when inspection_threads <= 1.
  std::unique_ptr<common::ThreadPool> inspection_pool_;
  // Standalone mode owns these; group shards borrow the group's.
  std::unique_ptr<EpcBudget> owned_budget_;
  std::unique_ptr<WarmEnclavePool> owned_pool_;
  EpcBudget* budget_;
  WarmEnclavePool* pool_;
  // Slot-mapped connection table: reaped slots go on the free list and are
  // reused (with a bumped generation) by later accepts, so the table stays
  // O(live connections) on a long-lived server.
  std::vector<TableSlot> slots_;
  std::vector<uint32_t> free_slots_;
  std::atomic<size_t> live_count_{0};
  // Legacy global admission FIFO (fair_admission off) — untouched by the
  // fair path so the default admission order stays byte-identical.
  std::deque<uint64_t> admission_queue_;
  // Fair admission: per-tenant queues + the DRR rotation of tenants with
  // waiting arrivals. queued_total_ mirrors the sum of waiting sizes.
  std::map<std::string, TenantState> tenants_;
  std::deque<std::string> rotation_;
  size_t queued_total_ = 0;
  uint64_t last_recompute_ns_ = 0;
  MetricsCells metrics_cells_;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_FRONTEND_H_
