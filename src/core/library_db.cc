#include "core/library_db.h"

#include <algorithm>

#include "core/symbol_table.h"

namespace engarde::core {

const crypto::Sha256Digest* LibraryHashDb::Lookup(
    std::string_view name) const {
  const auto it = entries_.find(std::string(name));
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

Result<LibraryHashDb> LibraryHashDb::FromLibraryImage(
    const elf::ElfFile& elf) {
  const SymbolHashTable symbols = SymbolHashTable::Build(elf);
  if (symbols.empty()) {
    return InvalidArgumentError("library image has no function symbols");
  }

  LibraryHashDb db;
  for (const SymbolHashTable::Function& fn : symbols.functions()) {
    // Locate the containing text section and hash the body bytes.
    bool hashed = false;
    for (const elf::Shdr* section : elf.TextSections()) {
      if (fn.start < section->addr ||
          fn.start >= section->addr + section->size) {
        continue;
      }
      ASSIGN_OR_RETURN(const ByteView content, elf.SectionContent(*section));
      // A malformed symbol table can claim fn.end < fn.start; without this
      // guard `end - begin` below wraps around and subspan() hashes a
      // garbage-length view.
      if (fn.end < fn.start) {
        return InvalidArgumentError("function " + fn.name +
                                    " has end before start in the symbol "
                                    "table");
      }
      const uint64_t begin = fn.start - section->addr;
      const uint64_t end =
          std::max(begin, std::min<uint64_t>(fn.end - section->addr,
                                             section->size));
      db.Add(fn.name, crypto::Sha256::Hash(content.subspan(begin, end - begin)));
      hashed = true;
      break;
    }
    if (!hashed) {
      return InvalidArgumentError("function " + fn.name +
                                  " lies outside all text sections");
    }
  }
  return db;
}

crypto::Sha256Digest LibraryHashDb::DbDigest() const {
  crypto::Sha256 hash;
  for (const auto& [name, digest] : entries_) {  // std::map: sorted, stable
    hash.Update(ToBytes(name));
    hash.Update(crypto::DigestView(digest));
  }
  return hash.Finalize();
}

Bytes LibraryHashDb::Serialize() const {
  Bytes out;
  AppendLe32(out, static_cast<uint32_t>(entries_.size()));
  for (const auto& [name, digest] : entries_) {
    AppendLe32(out, static_cast<uint32_t>(name.size()));
    AppendBytes(out, ToBytes(name));
    AppendBytes(out, crypto::DigestView(digest));
  }
  return out;
}

Result<LibraryHashDb> LibraryHashDb::Deserialize(ByteView data) {
  ByteReader reader(data);
  uint32_t count = 0;
  if (!reader.ReadLe32(count)) {
    return InvalidArgumentError("library db: truncated header");
  }
  LibraryHashDb db;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    ByteView name_bytes;
    ByteView digest_bytes;
    if (!reader.ReadLe32(name_len) || !reader.ReadBytes(name_len, name_bytes) ||
        !reader.ReadBytes(crypto::Sha256::kDigestSize, digest_bytes)) {
      return InvalidArgumentError("library db: truncated entry");
    }
    crypto::Sha256Digest digest;
    std::copy(digest_bytes.begin(), digest_bytes.end(), digest.begin());
    db.Add(ToString(name_bytes), digest);
  }
  if (!reader.AtEnd()) {
    return InvalidArgumentError("library db: trailing bytes");
  }
  return db;
}

}  // namespace engarde::core
