// Re-entrant provisioning: one ProvisioningSession is the enclave side of one
// client's provisioning exchange, restructured from the former blocking
// receive loop in EngardeEnclave::RunProvisioning into an explicit state
// machine
//
//   Handshake -> Manifest -> Blocks -> Inspect -> Done
//
// driven by Pump(): each call consumes every *complete* frame/record the
// endpoint currently holds, advances the machine, and returns when input runs
// dry — it never blocks on a partial record. Blocks are staged into the
// enclave heap incrementally as they arrive, so a session holds no completed
// image before DONE. This is what lets a ProvisioningServer multiplex many
// client exchanges without a thread parked per connection (and what the old
// one-shot RunProvisioning is now a thin driver over).
//
// Accounting matches the old loop bit-for-bit: EENTER on the first pump, one
// channel trampoline per block record and per DONE (none for the manifest),
// all charged inside Phase::kChannel, EEXIT after the verdict is sent. Hard
// errors (channel integrity, protocol framing) are terminal and — like the
// old early returns — skip the EEXIT.
#ifndef ENGARDE_CORE_SESSION_H_
#define ENGARDE_CORE_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "common/bytes.h"
#include "common/status.h"
#include "core/engarde.h"
#include "core/protocol.h"
#include "core/streaming.h"
#include "crypto/channel.h"

namespace engarde::core {

class ProvisioningSession {
 public:
  enum class State : uint8_t {
    kHandshake = 0,  // awaiting the RSA-wrapped AES master key (plaintext)
    kManifest,       // channel up; awaiting the manifest record
    kBlocks,         // receiving code blocks until DONE
    kInspect,        // image complete; inspection pipeline pending
    kVerdictPending,  // inspected; verdict held for a group-level release
    kDone,           // verdict sent, EEXIT done — terminal
  };

  // `enclave` must outlive the session and must not be provisioned through
  // any other path while the session is live.
  ProvisioningSession(EngardeEnclave* enclave,
                      crypto::DuplexPipe::Endpoint endpoint);

  // ---- Group (external-feed) mode ------------------------------------------
  // A GroupProvisioningSession owns ONE shared secure channel for a whole
  // group and routes each decrypted record to the right member. Such a member
  // session never performs its own handshake or channel reads: EnterExternalFeed
  // jumps the machine to kManifest, and records arrive via InjectRecord —
  // charged exactly as Pump charges them (one channel trampoline per block
  // record and per DONE, none for the manifest), under whatever accountant
  // the caller scoped. Pump() remains the driver for the inspection states.
  void EnterExternalFeed() noexcept {
    external_feed_ = true;
    if (state_ == State::kHandshake) state_ = State::kManifest;
  }
  Status InjectRecord(Message message);

  // Verdict hold: with hold_verdict set, the session stops at kVerdictPending
  // after inspection — outcome computed, inspected-image digest captured, but
  // nothing sent and no EEXIT — so a group can cross-check every member's
  // identity before ANY verdict commits. ReleaseVerdict finishes the member:
  // an engaged `group_override` replaces the member's own verdict with the
  // whole-group structured rejection (and drops any approved image/load
  // state); either way the EEXIT is charged to the scoped accountant and the
  // final verdict is returned for the caller to transmit (the session also
  // sends it itself when it owns a channel).
  void set_hold_verdict(bool hold) noexcept { hold_verdict_ = hold; }
  bool verdict_pending() const noexcept {
    return state_ == State::kVerdictPending;
  }
  Result<Verdict> ReleaseVerdict(const std::optional<Rejection>& group_override);
  // SHA-256 of the staged image — the actually-inspected identity the group
  // layer checks declared sibling measurements against. Valid from
  // kVerdictPending on (hold_verdict mode only).
  const crypto::Sha256Digest& image_digest() const noexcept {
    return image_digest_;
  }

  // Consumes every complete frame/record queued on the endpoint and advances
  // the state machine as far as the input allows (through inspection and the
  // verdict when everything is in). Returns OK both on progress and when the
  // input merely ran dry; any error is terminal for the session.
  Status Pump();

  State state() const noexcept { return state_; }
  bool done() const noexcept { return state_ == State::kDone; }
  size_t blocks_received() const noexcept {
    return outcome_.stats.blocks_received;
  }

  // Async barrier mode, set by a reactor that multiplexes many sessions:
  // when the image is complete but speculative decode tasks are still in
  // flight on the inspection pool, Pump() returns OK without blocking (and
  // waiting_on_decode() reports true) so the sweep can serve other
  // connections; a later Pump runs the barrier stages once decode is idle.
  // Off (the default, used by the blocking ProvisioningServer::Drive and
  // RunProvisioning), Pump waits at the barrier inside the kInspect step.
  void set_async_barrier(bool async) noexcept { async_barrier_ = async; }
  // True iff the session is parked at the DONE barrier behind in-flight
  // decode work. A reactor must not treat such a session as stalled.
  bool waiting_on_decode() const noexcept {
    return state_ == State::kInspect && streaming_ != nullptr &&
           !streaming_->DecodeIdle();
  }

  // Moves the provisioning outcome out. Valid once done().
  Result<ProvisionOutcome> TakeOutcome();

 private:
  Status OnWrappedKey(Bytes frame);
  Status OnManifest(Message message);
  Status OnBlock(Message message);
  Status OnDone();
  Status RunInspectionAndVerdict();

  EngardeEnclave* enclave_;
  crypto::DuplexPipe::Endpoint endpoint_;
  std::optional<crypto::SecureChannel> channel_;  // set after the handshake
  State state_ = State::kHandshake;
  bool entered_ = false;  // EENTER charged on the first Pump
  bool external_feed_ = false;  // records injected by a group session
  bool hold_verdict_ = false;   // park at kVerdictPending instead of sending
  crypto::Sha256Digest image_digest_{};  // set at the hold point
  Manifest manifest_;
  Bytes image_;  // grows block by block; mirrored into the enclave heap
  // Speculative decode over image_. Declared after image_ so its destructor
  // (which waits out in-flight decode tasks reading the buffer) runs first.
  std::unique_ptr<StreamingInspector> streaming_;
  bool async_barrier_ = false;
  ProvisionOutcome outcome_;
  bool outcome_taken_ = false;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_SESSION_H_
