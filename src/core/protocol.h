// Wire protocol between the client machine and the EnGarde enclave.
//
// Two layers (paper Section 3, "Overall Design"):
//  * Plaintext handshake over the raw socket: the enclave sends its quote and
//    ephemeral RSA public key; the client returns the RSA-wrapped 256-bit AES
//    master key.
//  * Encrypted records over crypto::SecureChannel: a manifest, the executable
//    in page-sized blocks ("the client sends the content in encrypted
//    blocks"), a DONE marker, and finally the enclave's verdict.
#ifndef ENGARDE_CORE_PROTOCOL_H_
#define ENGARDE_CORE_PROTOCOL_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/channel.h"
#include "crypto/sha256.h"

namespace engarde::core {

inline constexpr size_t kBlockSize = 4096;  // page-granularity transfer

enum class MessageType : uint8_t {
  kManifest = 1,
  kBlock = 2,
  kDone = 3,
  kVerdict = 4,
};

// The client's description of what it is sending. EnGarde independently
// re-derives the code-page set from the ELF section headers and rejects the
// submission when the claims disagree (or when any page mixes code and data).
struct Manifest {
  uint64_t file_size = 0;
  // File-vaddr page numbers (vaddr / 4096) the client claims contain code.
  std::vector<uint64_t> code_pages;

  Bytes Serialize() const;
  static Result<Manifest> Deserialize(ByteView data);
};

// Structured diagnosis of a rejection, produced by the inspection pipeline
// and carried end-to-end to the client (never to the provider). Unlike the
// flat reason string it names *where* the binary failed: the pipeline stage,
// the rule or policy id within that stage, and the offending file-vaddr when
// one is known (0 = not applicable).
struct Rejection {
  std::string stage;   // pipeline stage name, e.g. "PolicyCheck"
  std::string rule;    // rule / policy id, e.g. "stack-protection"
  uint64_t vaddr = 0;  // offending file-vaddr; 0 when no single site applies
  std::string detail;  // human-readable detail (the status text)
};

struct Verdict {
  // Wire version emitted by Serialize(). v1 verdicts start with the raw
  // compliance flag (0 or 1); v2 prefixes a version byte and appends the
  // optional structured rejection. Deserialize() accepts both.
  static constexpr uint8_t kWireVersion = 2;

  bool compliant = false;
  // Human-readable reason on rejection. Sent to the *client* only — the
  // provider learns nothing beyond the compliance bit (threat model).
  // Kept alongside the structured rejection for wire compatibility.
  std::string reason;
  // Structured diagnosis; set on rejection when the pipeline produced one.
  std::optional<Rejection> rejection;

  Bytes Serialize() const;
  // The pre-versioning v1 encoding (flag || reason only). Tests use it to
  // prove old verdict frames still parse.
  Bytes SerializeLegacy() const;
  static Result<Verdict> Deserialize(ByteView data);
};

// ---- Group provisioning (fleet deployments) --------------------------------
// A client deploying N cooperating enclaves (a pipeline, a replica set) as
// one logical unit opens ONE connection and leads with a GroupManifest: one
// entry per member, in deployment order. Each entry names the binary the
// member will run (its SHA-256 and size — members sharing a digest form an
// upload class whose bytes cross the wire once), the policy-set fingerprint
// the member expects, and the MAGE-style pre-measured sibling identities:
// (member index, expected binary digest) pairs the member vouches for. After
// every member is staged and inspected, the group session cross-checks each
// declared sibling digest against the actually-inspected identity; any
// mismatch rejects the whole group with a structured Rejection.
struct GroupMember {
  crypto::Sha256Digest binary_digest{};  // SHA-256 of this member's binary
  uint64_t binary_size = 0;              // bytes the member will stage
  std::string policy_fingerprint;        // expected PolicySetFingerprint
  // Pre-measured sibling identities: (member index, expected binary digest).
  std::vector<std::pair<uint32_t, crypto::Sha256Digest>> siblings;
};

struct GroupManifest {
  static constexpr uint8_t kWireVersion = 1;
  // Sanity bound on one co-admitted deployment; a fleet larger than this
  // provisions as multiple groups.
  static constexpr size_t kMaxMembers = 64;

  std::vector<GroupMember> members;

  Bytes Serialize() const;
  // Rejects empty groups, groups beyond kMaxMembers, and sibling slots that
  // point outside the group or at the declaring member itself.
  static Result<GroupManifest> Deserialize(ByteView data);
};

// ---- Front-end control frames (plaintext, pre-channel) ---------------------
// A provisioning front end prepends one typed control frame to the exchange
// before any hello bytes, so it can turn a client away *before* building an
// enclave. Versioned alongside verdict v2: old direct paths (enclave hello
// straight onto the pipe) never emit control frames, and the client only
// expects one when it connects through a front end.
enum class ControlType : uint8_t {
  kHelloFollows = 1,  // admitted: the quote + key frames follow immediately
  kRetryAfter = 2,    // over EPC budget: back off and reconnect
  kDeadlineExceeded = 3,  // too slow: the front end reclaimed the connection
};

// The explicit retry-after record an admission controller sends when the EPC
// budget (or the arrival queue) is full — the wire form of
// IsRetryableResourceError. The client library surfaces it instead of
// treating the connection as failed.
struct RetryAfter {
  static constexpr uint8_t kWireVersion = 1;

  uint64_t retry_after_ms = 0;  // suggested client back-off
  uint32_t queue_depth = 0;     // arrivals already waiting ahead
  uint64_t epc_pages_in_use = 0;  // committed pages at decision time
  uint64_t epc_budget_pages = 0;  // the controller's admission budget

  Bytes Serialize() const;
  static Result<RetryAfter> Deserialize(ByteView data);
};

// The parting record a front end sends (best effort, plaintext) when a
// connection blows one of its time budgets — waiting in the admission queue,
// idling mid-exchange, or overrunning the overall session deadline — and the
// reactor reclaims its enclave and EPC pages for queued arrivals.
struct DeadlineNotice {
  static constexpr uint8_t kWireVersion = 1;

  uint64_t elapsed_ms = 0;   // how long the connection had been in flight
  uint64_t deadline_ms = 0;  // the budget it exceeded

  Bytes Serialize() const;
  static Result<DeadlineNotice> Deserialize(ByteView data);
};

// Control frames ride the same u32-length framing as the hello; the payload
// is type byte || body.
Status WriteControlFrame(crypto::DuplexPipe::Endpoint& endpoint,
                         ControlType type, ByteView body);
struct ControlFrame {
  ControlType type;
  Bytes body;
};
Result<ControlFrame> ReadControlFrame(crypto::DuplexPipe::Endpoint& endpoint);
// Non-blocking variant: nullopt until a whole control frame is queued.
Result<std::optional<ControlFrame>> TryReadControlFrame(
    crypto::DuplexPipe::Endpoint& endpoint);

// Helpers for the plaintext (pre-channel) frames: u32 length || payload.
Status WriteFrame(crypto::DuplexPipe::Endpoint& endpoint, ByteView payload);
Result<Bytes> ReadFrame(crypto::DuplexPipe::Endpoint& endpoint);
// Non-blocking variant: nullopt until the endpoint holds one whole frame.
// Never consumes a partial frame, so a session can be pumped incrementally.
Result<std::optional<Bytes>> TryReadFrame(crypto::DuplexPipe::Endpoint& endpoint);

// Helpers for typed records over the secure channel.
Status SendMessage(crypto::SecureChannel& channel, MessageType type,
                   ByteView payload);
struct Message {
  MessageType type;
  Bytes payload;
};
Result<Message> ReceiveMessage(crypto::SecureChannel& channel);
// Splits an already-received record into type byte + payload.
Result<Message> ParseMessage(Bytes record);

}  // namespace engarde::core

#endif  // ENGARDE_CORE_PROTOCOL_H_
