// Wire protocol between the client machine and the EnGarde enclave.
//
// Two layers (paper Section 3, "Overall Design"):
//  * Plaintext handshake over the raw socket: the enclave sends its quote and
//    ephemeral RSA public key; the client returns the RSA-wrapped 256-bit AES
//    master key.
//  * Encrypted records over crypto::SecureChannel: a manifest, the executable
//    in page-sized blocks ("the client sends the content in encrypted
//    blocks"), a DONE marker, and finally the enclave's verdict.
#ifndef ENGARDE_CORE_PROTOCOL_H_
#define ENGARDE_CORE_PROTOCOL_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/channel.h"

namespace engarde::core {

inline constexpr size_t kBlockSize = 4096;  // page-granularity transfer

enum class MessageType : uint8_t {
  kManifest = 1,
  kBlock = 2,
  kDone = 3,
  kVerdict = 4,
};

// The client's description of what it is sending. EnGarde independently
// re-derives the code-page set from the ELF section headers and rejects the
// submission when the claims disagree (or when any page mixes code and data).
struct Manifest {
  uint64_t file_size = 0;
  // File-vaddr page numbers (vaddr / 4096) the client claims contain code.
  std::vector<uint64_t> code_pages;

  Bytes Serialize() const;
  static Result<Manifest> Deserialize(ByteView data);
};

struct Verdict {
  bool compliant = false;
  // Human-readable reason on rejection. Sent to the *client* only — the
  // provider learns nothing beyond the compliance bit (threat model).
  std::string reason;

  Bytes Serialize() const;
  static Result<Verdict> Deserialize(ByteView data);
};

// Helpers for the plaintext (pre-channel) frames: u32 length || payload.
Status WriteFrame(crypto::DuplexPipe::Endpoint& endpoint, ByteView payload);
Result<Bytes> ReadFrame(crypto::DuplexPipe::Endpoint& endpoint);

// Helpers for typed records over the secure channel.
Status SendMessage(crypto::SecureChannel& channel, MessageType type,
                   ByteView payload);
struct Message {
  MessageType type;
  Bytes payload;
};
Result<Message> ReceiveMessage(crypto::SecureChannel& channel);

}  // namespace engarde::core

#endif  // ENGARDE_CORE_PROTOCOL_H_
