// Sealed program caching: once EnGarde has approved a client executable, the
// enclave can *seal* it (AES-256-CTR + HMAC under an EGETKEY-derived key
// bound to MRENCLAVE) and hand the opaque blob to the host for storage.
// When the machine restarts the provider rebuilds the same EnGarde enclave
// (same bootstrap, same policies, hence the same MRENCLAVE and the same
// sealing key), unseals the cached program and loads it — skipping the
// client round-trip and the full re-inspection.
//
// Security argument: the sealing key exists only inside an enclave with the
// *identical* measurement, i.e. the identical EnGarde + policy set. A host
// cannot forge a blob (MAC), substitute another program (MAC covers the
// image), or replay the blob into an enclave with weaker policies (different
// MRENCLAVE -> different key -> MAC fails).
#ifndef ENGARDE_CORE_SEALING_H_
#define ENGARDE_CORE_SEALING_H_

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"

namespace engarde::core {

// Versioned, authenticated container for sealed data.
//   wire = magic(8) || key_id(8) || nonce(12) || len(4) || ct || tag(32)
struct SealedBlob {
  uint64_t key_id = 0;
  std::array<uint8_t, 12> nonce{};
  Bytes ciphertext;
  std::array<uint8_t, 32> tag{};

  Bytes Serialize() const;
  static Result<SealedBlob> Deserialize(ByteView data);
};

// Seals `plaintext` under `key` (from EGETKEY). The nonce must be unique per
// (key, seal) pair; callers pass a counter or DRBG output.
SealedBlob Seal(const crypto::Aes256Key& key, uint64_t key_id,
                const std::array<uint8_t, 12>& nonce, ByteView plaintext);

// Verifies and decrypts. INTEGRITY_ERROR on any tamper or wrong key.
Result<Bytes> Unseal(const crypto::Aes256Key& key, const SealedBlob& blob);

}  // namespace engarde::core

#endif  // ENGARDE_CORE_SEALING_H_
