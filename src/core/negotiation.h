// SLA policy negotiation — the step the paper assumes ("the cloud provider
// and client mutually agree upon the set of policies", Section 3) made
// concrete as a small wire protocol:
//
//   1. The provider advertises its policy menu: an ordered list of
//      fingerprints (name + configuration digest, the same strings that feed
//      the bootstrap measurement).
//   2. The client selects the subset it requires, by fingerprint — not by
//      index alone, so a menu reshuffle cannot silently swap policies.
//   3. The provider instantiates EnGarde with exactly the selected policies;
//      both sides compute the expected MRENCLAVE from the agreed
//      fingerprints, and attestation later proves the provider kept its word.
//
// Negotiation runs in the clear: per the threat model, EnGarde's code and
// policy configurations are public to both parties.
#ifndef ENGARDE_CORE_NEGOTIATION_H_
#define ENGARDE_CORE_NEGOTIATION_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/policy.h"

namespace engarde::core {

struct PolicyOffer {
  std::vector<std::string> fingerprints;  // provider's menu, ordered

  Bytes Serialize() const;
  static Result<PolicyOffer> Deserialize(ByteView data);

  static PolicyOffer FromPolicies(const PolicySet& policies);
};

struct PolicySelection {
  // The agreed subset, by fingerprint, in the order they will run.
  std::vector<std::string> fingerprints;

  Bytes Serialize() const;
  static Result<PolicySelection> Deserialize(ByteView data);
};

// Client side: pick required policies off the menu. NOT_FOUND if the
// provider's menu is missing any required fingerprint prefix (clients may
// match on the "name(" prefix to accept any compatible configuration, or on
// the full fingerprint to pin one exactly).
Result<PolicySelection> SelectFromOffer(
    const PolicyOffer& offer, const std::vector<std::string>& required);

// Provider side: reduce the full menu PolicySet to the client's selection,
// preserving the selection's order. Errors if the selection names unknown
// fingerprints or repeats one.
Result<PolicySet> ApplySelection(PolicySet menu,
                                 const PolicySelection& selection);

}  // namespace engarde::core

#endif  // ENGARDE_CORE_NEGOTIATION_H_
