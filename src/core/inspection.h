// The staged inspection pipeline: EnGarde's in-enclave compliance check as an
// explicit sequence of named stages over a shared context, instead of the
// former 460-line inline monolith in EngardeEnclave::InspectAndLoad.
//
//   ContainerValidate -> PageSeparation -> Disassemble -> BuildSymbols
//     -> NaClValidate -> PolicyCheck -> LoadAndLock
//
// Each stage emits a StageReport (wall time, modeled cycles under the
// paper's cost model, SGX-instruction count, outcome), and a failing stage
// produces a structured Rejection (stage, rule, offending vaddr, detail)
// that travels end-to-end to the client's Verdict. The pipeline is the seam
// the provisioning session, the engarde-inspect CLI and the bench harness
// all share: the CLI runs it "offline" (no enclave, LoadAndLock skipped),
// the session runs it against a live HostOs.
//
// Note on order: the paper presents NaCl validation before the symbol table,
// but the validator's root set is derived *from* the symbol table (entry
// point + every named function), so BuildSymbols executes before
// NaClValidate. Stage reports list execution order.
#ifndef ENGARDE_CORE_INSPECTION_H_
#define ENGARDE_CORE_INSPECTION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/loader.h"
#include "core/policy.h"
#include "core/protocol.h"
#include "core/symbol_table.h"
#include "crypto/drbg.h"
#include "elf/reader.h"
#include "sgx/cost_model.h"
#include "sgx/hostos.h"
#include "x86/insn_buffer.h"

namespace engarde::core {

class StreamingInspector;
class VerdictCache;

// How the verdict cache (core/verdict_cache.h) participated in a run.
enum class VerdictCacheOutcome : uint8_t {
  kDisabled = 0,   // no cache attached
  kMiss,           // probed; nothing reusable, fully cold inspection
  kPartialHit,     // probed; >=1 verified function skipped re-hashing
  kFullHit,        // exact-binary entry replayed
};

std::string_view VerdictCacheOutcomeName(VerdictCacheOutcome outcome) noexcept;

enum class StageId : uint8_t {
  kContainerValidate = 0,
  kPageSeparation,
  kDisassemble,
  kBuildSymbols,
  kNaClValidate,
  kPolicyCheck,
  kLoadAndLock,
  kCount,
};

std::string_view StageName(StageId stage) noexcept;

enum class StageOutcome : uint8_t {
  kPassed = 0,
  kRejected,  // client-attributable failure: non-compliant verdict
  kError,     // infrastructure failure: hard error, no verdict
  kSkipped,   // not reached (after a rejection) or not applicable (offline)
};

std::string_view StageOutcomeName(StageOutcome outcome) noexcept;

struct StageReport {
  StageId stage = StageId::kCount;
  StageOutcome outcome = StageOutcome::kSkipped;
  uint64_t wall_ns = 0;           // native time spent in the stage
  uint64_t sgx_instructions = 0;  // SGX instructions the stage charged
  std::string detail;             // empty unless rejected/errored

  // Cycles under the paper's model: native time at 3.5 GHz plus 10K cycles
  // per SGX instruction.
  uint64_t ModeledCycles() const noexcept {
    return static_cast<uint64_t>(static_cast<double>(wall_ns) *
                                 sgx::CycleAccountant::kClockGhz) +
           sgx_instructions * sgx::CycleAccountant::kSgxInstructionCycles;
  }
};

// Shared state the stages read and grow. Inputs are non-owning pointers;
// artifacts (parsed ELF, instruction buffer, symbols, load result) live here
// so the caller can harvest them after Run().
struct InspectionContext {
  // ---- Inputs ----
  const Bytes* image = nullptr;        // the staged executable (required)
  const Manifest* manifest = nullptr;  // null = offline: skip the
                                       // manifest-agreement check
  const PolicySet* policies = nullptr;
  common::ThreadPool* pool = nullptr;  // null = serial pipeline
  sgx::CycleAccountant* accountant = nullptr;

  // Load environment. host == nullptr = offline inspection (engarde-inspect):
  // LoadAndLock is reported kSkipped and the verdict covers stages 1-6 only.
  sgx::HostOs* host = nullptr;
  uint64_t enclave_id = 0;
  const sgx::EnclaveLayout* layout = nullptr;
  crypto::HmacDrbg* drbg = nullptr;  // stack-canary source; null = zero canary

  // Speculative decode state from the upload (core/streaming.h). When set
  // (and decode-idle), StageDisassemble splices each section's pre-decoded
  // instructions instead of decoding it, falling back to the staged decode
  // per section on any mismatch. Null = fully staged Disassemble.
  StreamingInspector* streaming = nullptr;

  // Content-addressed sealed verdict cache (core/verdict_cache.h). When set,
  // Run() probes it once ContainerValidate + PageSeparation pass (those two
  // always run live — PageSeparation checks the per-session manifest): a
  // full hit replays the cached Disassemble..PolicyCheck reports and verdict
  // bit-identically (LoadAndLock still runs live for accepts), a miss falls
  // through to cold inspection with per-function reuse where provable, and
  // the cold result is published back. Null = no caching.
  VerdictCache* verdict_cache = nullptr;
  // Per-function reuse plumbing Run() threads into StagePolicyCheck's
  // PolicyContext (see PolicyContext::liblink_reuse / reuse_log). Owned by
  // Run()'s frame; always null outside a Run() with a verdict cache.
  const std::map<uint64_t, uint64_t>* liblink_reuse = nullptr;
  VerifiedRangeLog* reuse_log = nullptr;

  // ---- Artifacts (filled by the stages) ----
  std::optional<elf::ElfFile> elf;        // ContainerValidate
  std::unique_ptr<x86::InsnBuffer> insns; // Disassemble
  uint64_t text_start = 0;                // Disassemble
  uint64_t text_end = 0;                  // Disassemble
  SymbolHashTable symbols;                // BuildSymbols
  std::optional<LoadResult> load;         // LoadAndLock

  // ---- Rejection scratch (set by a failing stage, consumed by Run) ----
  std::string pending_rule;    // rule/policy id; stage default when empty
  uint64_t pending_vaddr = 0;  // offending file-vaddr; 0 = unknown
  std::string pending_reason;  // legacy reason override (policy failures)
};

struct InspectionResult {
  bool compliant = false;
  // Set iff !compliant: the structured diagnosis.
  std::optional<Rejection> rejection;
  // The legacy flat reason string, byte-identical to what the pre-pipeline
  // monolith put in Verdict::reason (tests and old clients grep it).
  std::string reason;
  // One report per StageId, in execution order; stages after a rejection are
  // kSkipped.
  std::vector<StageReport> reports;
  // How the verdict cache participated (kDisabled when none was attached).
  VerdictCacheOutcome cache_outcome = VerdictCacheOutcome::kDisabled;
  // Set on a full hit, where context.insns stays null: the instruction-buffer
  // statistics the cold run recorded, so callers report identical stats.
  uint64_t cached_instruction_count = 0;
  uint64_t cached_insn_buffer_pages = 0;
};

// ---- Status classification --------------------------------------------------
// Client-attributable failures (malformed/violating binaries) become a
// non-compliant verdict. Enclave-resource exhaustion (EPC pressure, staging
// limits) is deliberately NOT in this set: misreporting it as "non-compliant
// binary" would tell the client their code is bad when the host is merely
// overloaded. Those surface as retryable hard errors instead.
bool IsClientRejection(const Status& status);
// True for resource-pressure failures a caller may retry (against the same
// or another enclave) without changing the binary.
bool IsRetryableResourceError(const Status& status);

// Best-effort "0x..." hex-address extraction from a diagnostic message, for
// stages (decoder, NaCl validator) whose statuses embed the offending vaddr
// in text. Returns 0 when no address is present.
uint64_t ExtractVaddrHint(std::string_view message);

class InspectionPipeline {
 public:
  // Runs every stage in order against `context`. Client-attributable
  // failures yield an OK result with compliant == false and a structured
  // rejection; infrastructure failures (including retryable resource
  // errors — see IsRetryableResourceError) are returned as hard errors.
  static Result<InspectionResult> Run(InspectionContext& context);
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_INSPECTION_H_
