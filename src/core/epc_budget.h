// The shared EPC admission budget: one pot of pages that every front-end
// reactor draws from before building (or pooling) an enclave.
//
// Since the ksgxd-style reclaimer landed, the budget tracks *committed*
// (virtual) pages, not resident ones: capacity is the physical EPC times an
// oversubscription ratio, and the device plus reclaimer keep the resident
// set within physical bounds by paging cold pages out. At ratio 1.0 this
// degenerates to the historical never-evict guarantee (max_committed_pages()
// <= physical_pages()); above 1.0 the front end admits more sessions than
// fit and relies on EWB/ELDU to multiplex them.
//
// An optional per-session quota (cgroup-style: the misc.max sgx_epc shape)
// caps any single reservation so one huge enclave cannot monopolize the
// virtual pot. Reservation is all-or-nothing and thread-safe.
#ifndef ENGARDE_CORE_EPC_BUDGET_H_
#define ENGARDE_CORE_EPC_BUDGET_H_

#include <cstdint>
#include <mutex>

namespace engarde::core {

class EpcBudget {
 public:
  // `physical_pages` is the real EPC backing this budget; `oversub_ratio`
  // scales it into the virtual capacity TryReserve admits against (values
  // below 1.0 are clamped to 1.0 — the budget never undersells the
  // hardware). `session_quota_pages` caps a single reservation; 0 = no cap.
  explicit EpcBudget(uint64_t physical_pages, double oversub_ratio = 1.0,
                     uint64_t session_quota_pages = 0) noexcept;
  EpcBudget(const EpcBudget&) = delete;
  EpcBudget& operator=(const EpcBudget&) = delete;

  // Commits `pages` against the virtual capacity; false (and no change)
  // when the reservation would overdraw it or exceed the per-session quota.
  bool TryReserve(uint64_t pages) noexcept;

  // Returns pages a finished (or failed) enclave held. Releasing more than
  // is committed is a caller bug (a double release); debug builds abort,
  // release builds clamp to zero and count it in underflow_count().
  void Release(uint64_t pages) noexcept;

  // Virtual capacity: physical_pages() scaled by the oversubscription ratio.
  uint64_t budget_pages() const noexcept { return virtual_pages_; }
  uint64_t physical_pages() const noexcept { return physical_pages_; }
  double oversub_ratio() const noexcept { return oversub_ratio_; }
  uint64_t session_quota_pages() const noexcept { return session_quota_; }

  uint64_t committed_pages() const noexcept;
  // Peak commitment over the budget's lifetime. At ratio 1.0, never
  // exceeding physical_pages() is the no-eviction guarantee.
  uint64_t max_committed_pages() const noexcept;
  // Times Release() was asked for more pages than were committed. Tests pin
  // this to zero: any nonzero value is a front-end double-release bug.
  uint64_t underflow_count() const noexcept;

 private:
  const uint64_t physical_pages_;
  const double oversub_ratio_;
  const uint64_t virtual_pages_;
  const uint64_t session_quota_;
  mutable std::mutex mu_;
  uint64_t committed_ = 0;
  uint64_t max_committed_ = 0;
  uint64_t underflows_ = 0;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_EPC_BUDGET_H_
