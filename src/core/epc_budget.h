// The shared EPC admission budget: one pot of pages that every front-end
// reactor draws from before building (or pooling) an enclave, so N reactors
// can never jointly push the device into its nondeterministic eviction path.
// Reservation is all-or-nothing and thread-safe; the high-water mark is the
// never-exceeds-budget invariant the tests pin.
#ifndef ENGARDE_CORE_EPC_BUDGET_H_
#define ENGARDE_CORE_EPC_BUDGET_H_

#include <cstdint>
#include <mutex>

namespace engarde::core {

class EpcBudget {
 public:
  explicit EpcBudget(uint64_t budget_pages) noexcept
      : budget_pages_(budget_pages) {}
  EpcBudget(const EpcBudget&) = delete;
  EpcBudget& operator=(const EpcBudget&) = delete;

  // Commits `pages` against the budget; false (and no change) when the
  // reservation would overdraw it.
  bool TryReserve(uint64_t pages) noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    if (committed_ + pages > budget_pages_) return false;
    committed_ += pages;
    if (committed_ > max_committed_) max_committed_ = committed_;
    return true;
  }

  // Returns pages a finished (or failed) enclave held.
  void Release(uint64_t pages) noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    committed_ = pages > committed_ ? 0 : committed_ - pages;
  }

  uint64_t budget_pages() const noexcept { return budget_pages_; }
  uint64_t committed_pages() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return committed_;
  }
  // Peak commitment over the budget's lifetime; never exceeding
  // budget_pages() is the no-eviction guarantee.
  uint64_t max_committed_pages() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return max_committed_;
  }

 private:
  const uint64_t budget_pages_;
  mutable std::mutex mu_;
  uint64_t committed_ = 0;
  uint64_t max_committed_ = 0;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_EPC_BUDGET_H_
