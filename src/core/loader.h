// The in-enclave loader (paper Section 4, "Loading"): after the executable
// passes policy checks, "the loader maps the text, data and bss segments to
// the enclave memory, making the text segment be executable but read-only,
// the data segment and bss segment be writable but non-executable. It then
// locates the sections that require relocations ... The loader acquires all
// the information that it needs for relocations from the .dynamic section
// ... Upon completing relocation, the loader sets up a call stack and
// transfers control to the executable."
//
// Permissions themselves are applied by the host component
// (HostOs::ApplyWxPolicy) from the executable-page list this loader returns.
#ifndef ENGARDE_CORE_LOADER_H_
#define ENGARDE_CORE_LOADER_H_

#include <vector>

#include "elf/reader.h"
#include "sgx/hostos.h"

namespace engarde::core {

struct LoadResult {
  // Enclave linear address corresponding to the file's vaddr 0 (the binary
  // is a PIE, so EnGarde picks the base).
  uint64_t load_base = 0;
  uint64_t entry = 0;  // absolute enclave linear address
  // Absolute addresses of the pages that must be executable (text), i.e. the
  // only code-location information the cloud provider learns.
  std::vector<uint64_t> executable_pages;
  uint64_t stack_top = 0;
  uint64_t tls_base = 0;  // %fs base; canary lives at tls_base + 0x28
  size_t relocations_applied = 0;
  // Number of load-region pages the image occupies (text+data+bss span).
  uint64_t span_pages = 0;
};

class EnclaveLoader {
 public:
  // Maps segments into the enclave's load region, applies RELA relocations
  // (R_X86_64_RELATIVE), and prepares stack/TLS. Does NOT change page
  // permissions — the caller hands `executable_pages` to the host component.
  static Result<LoadResult> Load(sgx::SgxDevice& device, uint64_t enclave_id,
                                 const sgx::EnclaveLayout& layout,
                                 const elf::ElfFile& elf, ByteView canary);
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_LOADER_H_
