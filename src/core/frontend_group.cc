#include "core/frontend_group.h"

#include <chrono>
#include <utility>

#include "sgx/device.h"

namespace engarde::core {

FrontendGroup::FrontendGroup(sgx::HostOs* host,
                             const sgx::QuotingEnclave* quoting,
                             std::function<PolicySet()> policy_factory,
                             FrontendGroupOptions options)
    : host_(host),
      quoting_(quoting),
      policy_factory_(std::move(policy_factory)),
      options_(std::move(options)) {
  if (options_.reactors == 0) options_.reactors = 1;

  const uint64_t capacity = host_->device()->epc().capacity();
  const uint64_t reserve = options_.frontend.epc_reserve_pages;
  budget_ = std::make_unique<EpcBudget>(
      capacity > reserve ? capacity - reserve : 0,
      options_.frontend.epc_oversub, options_.frontend.session_quota_pages);

  // Pool entries inspect serially regardless of the shards' inspection
  // settings: a background build must never borrow a shard's worker pool.
  EngardeOptions pool_options = options_.frontend.enclave_options;
  pool_options.inspection_threads = 1;
  pool_options.shared_inspection_pool = nullptr;
  pool_ = std::make_unique<WarmEnclavePool>(host_, quoting_, policy_factory_,
                                            std::move(pool_options));
  pool_->SetRefillTarget(options_.pool_target);

  shards_.reserve(options_.reactors);
  for (size_t i = 0; i < options_.reactors; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->frontend = std::make_unique<ProvisioningFrontend>(
        host_, quoting_, policy_factory_, options_.frontend, budget_.get(),
        pool_.get());
    shards_.push_back(std::move(shard));
  }
}

FrontendGroup::~FrontendGroup() {
  if (running_) (void)Stop();
}

Status FrontendGroup::PrefillPool(size_t count) {
  for (size_t i = 0; i < count; ++i) {
    if (!budget_->TryReserve(pool_->PagesPerEnclave())) {
      return ResourceExhaustedError(
          "EPC admission budget cannot hold another pooled enclave");
    }
    const Status added = pool_->AddOne();
    if (!added.ok()) {
      budget_->Release(pool_->PagesPerEnclave());
      return added;
    }
  }
  return Status::Ok();
}

size_t FrontendGroup::Dispatch(std::unique_ptr<net::Transport> transport) {
  const size_t index =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  shards_[index]->inbox.Push(std::move(transport));
  return index;
}

void FrontendGroup::AttachListener(net::Listener* listener) {
  listener_ = listener;
}

void FrontendGroup::HarvestVerdicts(size_t index, size_t& progress) {
  if (!options_.on_verdict) return;
  ProvisioningFrontend& frontend = *shards_[index]->frontend;
  // Live ids only — the table is a slot map now, so ids are not dense and a
  // long-serving shard holds far fewer connections than it ever accepted.
  // Taking the outcome is what clears a kDone connection for the reaper.
  for (const uint64_t id : frontend.connection_ids()) {
    if (frontend.state(id) != ConnectionState::kDone) continue;
    if (frontend.group_member_count(id) > 0) {
      // Fleet connection: one callback per member, declaration order.
      Result<std::vector<ProvisionOutcome>> outcomes =
          frontend.TakeGroupOutcomes(id);
      if (!outcomes.ok()) continue;  // already harvested on an earlier sweep
      for (const ProvisionOutcome& outcome : *outcomes) {
        options_.on_verdict(index, id, outcome, frontend.served_from_pool(id));
      }
      ++progress;
      continue;
    }
    Result<ProvisionOutcome> outcome = frontend.TakeOutcome(id);
    if (!outcome.ok()) continue;  // already harvested on an earlier sweep
    options_.on_verdict(index, id, *outcome, frontend.served_from_pool(id));
    ++progress;
  }
}

Status FrontendGroup::SweepShard(size_t index, size_t& progress) {
  Shard& shard = *shards_[index];

  // Dispatched arrivals first (strict FIFO per shard: the inbox preserves
  // Dispatch order and Accept preserves queue order).
  for (;;) {
    ASSIGN_OR_RETURN(std::unique_ptr<net::Transport> transport,
                     shard.inbox.TryAccept());
    if (transport == nullptr) break;
    RETURN_IF_ERROR(shard.frontend->Accept(std::move(transport)).status());
    ++progress;
  }

  // Then the shared listener, raced against sibling reactors — whoever's
  // sweep gets there first takes the connection, SO_REUSEPORT-style.
  if (listener_ != nullptr) {
    for (;;) {
      ASSIGN_OR_RETURN(std::unique_ptr<net::Transport> transport,
                       listener_->TryAccept());
      if (transport == nullptr) break;
      RETURN_IF_ERROR(shard.frontend->Accept(std::move(transport)).status());
      ++progress;
    }
  }

  ASSIGN_OR_RETURN(const size_t swept, shard.frontend->PollOnce());
  progress += swept;
  HarvestVerdicts(index, progress);

  if (options_.pool_refill == PoolRefill::kBackground) {
    ASSIGN_OR_RETURN(const bool topped, pool_->TopUpOnce(*budget_));
    if (topped) ++progress;
  }
  return Status::Ok();
}

Result<size_t> FrontendGroup::PollOnce() {
  if (running_) {
    return FailedPreconditionError(
        "deterministic PollOnce while reactor threads run");
  }
  size_t progress = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    RETURN_IF_ERROR(SweepShard(i, progress));
  }
  return progress;
}

Status FrontendGroup::DrainAll() {
  for (;;) {
    ASSIGN_OR_RETURN(const size_t progress, PollOnce());
    if (progress == 0) return Status::Ok();
  }
}

void FrontendGroup::RecordFailure(const Status& failure) {
  const std::lock_guard<std::mutex> lock(failure_mu_);
  if (first_failure_.ok()) first_failure_ = failure;
}

void FrontendGroup::ReactorMain(size_t index) {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    size_t progress = 0;
    const Status swept = SweepShard(index, progress);
    if (!swept.ok()) {
      // This shard is wedged; siblings keep serving. Stop() reports it.
      RecordFailure(swept);
      return;
    }
    if (progress == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

Status FrontendGroup::Start() {
  if (running_) return FailedPreconditionError("group already running");
  stop_requested_.store(false, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(failure_mu_);
    first_failure_ = Status::Ok();
  }
  threads_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    threads_.emplace_back([this, i] { ReactorMain(i); });
  }
  running_ = true;
  return Status::Ok();
}

Status FrontendGroup::Stop() {
  if (!running_) return FailedPreconditionError("group not running");
  stop_requested_.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
  running_ = false;
  {
    const std::lock_guard<std::mutex> lock(failure_mu_);
    if (!first_failure_.ok()) return first_failure_;
  }
  // Reap-only epilogue: a reactor may have been stopped between delivering a
  // connection's verdict and the sweep that would have retired it. Sweep each
  // shard to quiescence without accepting new arrivals (inbox and listener
  // stay untouched) so Stop() leaves no finished connection behind.
  for (size_t i = 0; i < shards_.size(); ++i) {
    for (;;) {
      ASSIGN_OR_RETURN(size_t progress, shards_[i]->frontend->PollOnce());
      HarvestVerdicts(i, progress);
      if (progress == 0) break;
    }
  }
  return Status::Ok();
}

size_t FrontendGroup::connection_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->frontend->connection_count();
  }
  return total;
}

size_t FrontendGroup::done_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->frontend->done_count();
  return total;
}

size_t FrontendGroup::shed_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->frontend->shed_count();
  return total;
}

FrontendMetrics FrontendGroup::metrics() const {
  FrontendMetrics total;
  for (const auto& shard : shards_) {
    total.Merge(shard->frontend->metrics());
  }
  // Every shard reported the same shared budget and host OS; count them
  // once (Merge kept the max, which for shared monotonic counters is
  // already exact — overwriting makes the sourcing explicit).
  total.budget_pages = budget_->budget_pages();
  total.committed_pages = budget_->committed_pages();
  total.max_committed_pages = budget_->max_committed_pages();
  total.physical_budget_pages = budget_->physical_pages();
  total.budget_underflows = budget_->underflow_count();
  total.epc_faults = host_->epc_faults_handled();
  total.eldu_loads = host_->eldu_loads();
  total.pages_reclaimed = host_->pages_reclaimed();
  total.pages_evicted_inline = host_->pages_evicted();
  total.reclaim_wakeups = host_->reclaim_wakeups();
  const sgx::Epc& epc = host_->device()->epc();
  total.epc_resident_pages = epc.pages_in_use();
  total.epc_resident_peak = epc.peak_pages_in_use();
  total.epc_capacity_pages = epc.capacity();
  return total;
}

}  // namespace engarde::core
