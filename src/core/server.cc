#include "core/server.h"

#include <thread>
#include <utility>

namespace engarde::core {

ProvisioningServer::ProvisioningServer(sgx::HostOs* host,
                                       const sgx::QuotingEnclave* quoting,
                                       std::function<PolicySet()> policy_factory,
                                       Options options)
    : host_(host),
      quoting_(quoting),
      policy_factory_(std::move(policy_factory)),
      options_(std::move(options)) {
  if (options_.inspection_threads > 1) {
    pool_ = std::make_unique<common::ThreadPool>(options_.inspection_threads);
  }
}

Result<size_t> ProvisioningServer::Accept(crypto::DuplexPipe::Endpoint endpoint) {
  auto entry = std::make_unique<Entry>();
  {
    // Enclave construction (ECREATE/EADD/EEXTEND/EINIT, keygen, quote) is
    // charged to the session's own accountant, like everything else the
    // session later does.
    sgx::ScopedAccountant scoped(&entry->accountant);
    EngardeOptions enclave_options = options_.enclave_options;
    enclave_options.inspection_threads = 1;  // never an owned per-enclave pool
    enclave_options.shared_inspection_pool = pool_.get();
    ASSIGN_OR_RETURN(
        EngardeEnclave enclave,
        EngardeEnclave::Create(host_, *quoting_, policy_factory_(),
                               std::move(enclave_options)));
    entry->enclave.emplace(std::move(enclave));
    RETURN_IF_ERROR(entry->enclave->SendHello(endpoint));
  }
  entry->session.emplace(&*entry->enclave, endpoint);
  sessions_.push_back(std::move(entry));
  return sessions_.size() - 1;
}

Result<ProvisionOutcome> ProvisioningServer::Drive(size_t index) {
  if (index >= sessions_.size()) {
    return OutOfRangeError("no such provisioning session");
  }
  Entry& entry = *sessions_[index];
  if (entry.driven) {
    // The session's outcome has already been moved out; pumping it again
    // would re-run a consumed state machine (formerly undefined single-use
    // behavior). Report the caller bug explicitly instead.
    return FailedPreconditionError("provisioning session already driven");
  }
  // Redirect every SGX charge this thread makes — device calls, channel
  // trampolines, pipeline phases — to the session's accountant. The session
  // keeps its default blocking barrier: with streaming inspection on, this
  // one Pump dispatches the speculative page decodes as it stages blocks and
  // then waits out the stragglers at the DONE barrier before the verdict —
  // a synchronous Drive never observes a half-inspected session.
  sgx::ScopedAccountant scoped(&entry.accountant);
  RETURN_IF_ERROR(entry.session->Pump());
  if (!entry.session->done()) {
    return ProtocolError(
        "session stalled: peer closed or sent a truncated exchange");
  }
  ASSIGN_OR_RETURN(ProvisionOutcome outcome, entry.session->TakeOutcome());
  entry.driven = true;
  return outcome;
}

std::vector<Result<ProvisionOutcome>> ProvisioningServer::DriveAll() {
  std::vector<std::optional<Result<ProvisionOutcome>>> slots(sessions_.size());
  std::vector<std::thread> threads;
  threads.reserve(sessions_.size());
  for (size_t i = 0; i < sessions_.size(); ++i) {
    threads.emplace_back([this, i, &slots] { slots[i].emplace(Drive(i)); });
  }
  for (std::thread& thread : threads) thread.join();
  std::vector<Result<ProvisionOutcome>> results;
  results.reserve(slots.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace engarde::core
