#include "core/runtime_monitor.h"

#include <sstream>

namespace engarde::core {
namespace {

using TransferKind = x86::ExecutionObserver::TransferKind;

std::string AddrString(uint64_t addr) {
  std::ostringstream os;
  os << "0x" << std::hex << addr;
  return os.str();
}

}  // namespace

Status ShadowStackPolicy::OnControlTransfer(TransferKind kind, uint64_t site,
                                            uint64_t target,
                                            uint64_t return_addr) {
  switch (kind) {
    case TransferKind::kCall:
    case TransferKind::kCallIndirect:
      shadow_.push_back(return_addr);
      return Status::Ok();
    case TransferKind::kReturn: {
      // The top-level return targets the machine's exit sentinel, which no
      // call in this run pushed.
      if (shadow_.empty()) {
        if (target == x86::Machine::kExitAddr) return Status::Ok();
        return PolicyViolationError("return at " + AddrString(site) +
                                    " with an empty shadow stack");
      }
      const uint64_t expected = shadow_.back();
      shadow_.pop_back();
      if (target != expected) {
        return PolicyViolationError(
            "return-address hijack at " + AddrString(site) + ": returning to " +
            AddrString(target) + ", call site expected " +
            AddrString(expected));
      }
      return Status::Ok();
    }
    case TransferKind::kJumpIndirect:
      return Status::Ok();
  }
  return Status::Ok();
}

IndirectTargetPolicy IndirectTargetPolicy::FromSymbols(
    const SymbolHashTable& symbols, uint64_t load_base) {
  std::set<uint64_t> allowed;
  for (const SymbolHashTable::Function& fn : symbols.functions()) {
    allowed.insert(load_base + fn.start);
  }
  return IndirectTargetPolicy(std::move(allowed));
}

Status IndirectTargetPolicy::OnControlTransfer(TransferKind kind,
                                               uint64_t site, uint64_t target,
                                               uint64_t /*return_addr*/) {
  if (kind != TransferKind::kCallIndirect &&
      kind != TransferKind::kJumpIndirect) {
    return Status::Ok();
  }
  if (allowed_.count(target) == 0) {
    return PolicyViolationError("indirect transfer at " + AddrString(site) +
                                " to non-whitelisted target " +
                                AddrString(target));
  }
  return Status::Ok();
}

Status InstructionBudgetPolicy::OnInstruction(const x86::Insn& /*insn*/) {
  if (++executed_ > budget_) {
    return PolicyViolationError("instruction budget of " +
                                std::to_string(budget_) + " exceeded");
  }
  return Status::Ok();
}

void RuntimeMonitor::BeginRun() {
  violation_.clear();
  transfers_ = 0;
  for (const auto& policy : policies_) policy->OnRunStart();
}

Status RuntimeMonitor::Record(std::string_view policy, const Status& status) {
  if (status.ok()) return status;
  violation_ = std::string(policy) + ": " + status.ToString();
  return status;
}

Status RuntimeMonitor::OnInstruction(const x86::Insn& insn) {
  for (const auto& policy : policies_) {
    RETURN_IF_ERROR(Record(policy->name(), policy->OnInstruction(insn)));
  }
  return Status::Ok();
}

Status RuntimeMonitor::OnControlTransfer(TransferKind kind, uint64_t site,
                                         uint64_t target,
                                         uint64_t return_addr) {
  ++transfers_;
  for (const auto& policy : policies_) {
    RETURN_IF_ERROR(Record(
        policy->name(),
        policy->OnControlTransfer(kind, site, target, return_addr)));
  }
  return Status::Ok();
}

}  // namespace engarde::core
