#include "core/group_session.h"

#include <map>
#include <string>
#include <utility>

#include "sgx/cost_model.h"
#include "sgx/device.h"

namespace engarde::core {

GroupProvisioningSession::GroupProvisioningSession(
    sgx::HostOs* host, GroupManifest manifest,
    std::vector<PooledEnclave*> members, crypto::DuplexPipe::Endpoint endpoint)
    : host_(host), manifest_(std::move(manifest)), endpoint_(endpoint) {
  std::map<crypto::Sha256Digest, size_t> class_by_digest;
  members_.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    Member member;
    member.entry = members[i];
    member.feed = std::make_unique<crypto::DuplexPipe>();
    member.session = std::make_unique<ProvisioningSession>(
        &*member.entry->enclave, member.feed->EndB());
    member.session->EnterExternalFeed();
    member.session->set_hold_verdict(true);
    member.session->set_async_barrier(true);
    const crypto::Sha256Digest& digest = manifest_.members[i].binary_digest;
    const auto found = class_by_digest.find(digest);
    if (found == class_by_digest.end()) {
      member.upload_class = classes_.size();
      class_by_digest.emplace(digest, classes_.size());
      classes_.push_back({i});
    } else {
      member.upload_class = found->second;
      classes_[found->second].push_back(i);
    }
    members_.push_back(std::move(member));
  }
}

bool GroupProvisioningSession::waiting_on_decode() const noexcept {
  for (const Member& member : members_) {
    if (member.session != nullptr && member.session->waiting_on_decode()) {
      return true;
    }
  }
  return false;
}

Status GroupProvisioningSession::PumpMembers() {
  for (Member& member : members_) {
    if (member.session == nullptr || member.session->done()) continue;
    // Same per-member discipline as a solo front-end connection: charges from
    // this member's pump (EENTER, inspection phases) land on its own
    // accountant, and its pages are pinned against reclaim for the duration.
    sgx::ScopedEpcPin pin(host_->device(),
                          member.entry->enclave->enclave_id());
    sgx::ScopedAccountant scoped(&member.entry->accountant);
    RETURN_IF_ERROR(member.session->Pump());
  }
  return Status::Ok();
}

Status GroupProvisioningSession::Pump() {
  // Members first: charges each EENTER before any wire input is consumed
  // (the solo ordering) and drives inspections whose DONE already landed.
  RETURN_IF_ERROR(PumpMembers());
  for (;;) {
    switch (state_) {
      case State::kAwaitKey: {
        // The client wraps ONE master key to member 0's public key; the
        // unwrap is charged to the leader — for a single-member group this
        // is exactly the solo handshake.
        Member& leader = members_.front();
        sgx::ScopedEpcPin pin(host_->device(),
                              leader.entry->enclave->enclave_id());
        sgx::ScopedAccountant scoped(&leader.entry->accountant);
        ASSIGN_OR_RETURN(std::optional<Bytes> frame, TryReadFrame(endpoint_));
        if (!frame.has_value()) return Status::Ok();
        ASSIGN_OR_RETURN(const Bytes master_key,
                         leader.entry->enclave->UnwrapMasterKey(
                             ByteView(frame->data(), frame->size())));
        if (master_key.size() != 32) {
          return ProtocolError("client AES key must be 256 bits");
        }
        const crypto::SessionKeys keys = crypto::SessionKeys::Derive(
            ByteView(master_key.data(), master_key.size()));
        channel_.emplace(endpoint_, keys, /*is_enclave_side=*/true);
        state_ = State::kStreaming;
        break;
      }
      case State::kStreaming: {
        if (current_class_ >= classes_.size()) {
          state_ = State::kQuiesce;
          break;
        }
        const std::vector<size_t>& cls = classes_[current_class_];
        std::optional<Bytes> record;
        {
          // The shared decrypt is work a solo session does per connection;
          // here it runs once per record, charged to the class primary (the
          // solo sequence exactly, when the group has one member).
          Member& primary = members_[cls.front()];
          sgx::ScopedEpcPin pin(host_->device(),
                                primary.entry->enclave->enclave_id());
          sgx::ScopedAccountant scoped(&primary.entry->accountant);
          ASSIGN_OR_RETURN(record, channel_->TryReceive());
        }
        if (!record.has_value()) return Status::Ok();
        ASSIGN_OR_RETURN(Message message, ParseMessage(std::move(*record)));
        if (message.type == MessageType::kManifest) {
          // Cross-check the uploaded manifest against the group declaration
          // before any member stages a byte: a size lie fails fast instead
          // of surfacing as a digest mismatch after N full uploads.
          ASSIGN_OR_RETURN(
              const Manifest uploaded,
              Manifest::Deserialize(ByteView(message.payload.data(),
                                             message.payload.size())));
          for (const size_t index : cls) {
            if (uploaded.file_size != manifest_.members[index].binary_size) {
              return ProtocolError(
                  "upload manifest size disagrees with the group declaration "
                  "for member " + std::to_string(index));
            }
          }
        }
        const bool class_done = message.type == MessageType::kDone;
        for (const size_t index : cls) {
          Member& member = members_[index];
          // Each class member receives its own copy of the record under its
          // own accountant: staging, trampolines and EnclaveWrites account
          // exactly as if the member had its own connection.
          Message copy{message.type, message.payload};
          sgx::ScopedEpcPin pin(host_->device(),
                                member.entry->enclave->enclave_id());
          sgx::ScopedAccountant scoped(&member.entry->accountant);
          RETURN_IF_ERROR(member.session->InjectRecord(std::move(copy)));
        }
        if (class_done) {
          ++current_class_;
          // Kick the finished class's inspections before the next class's
          // records arrive.
          RETURN_IF_ERROR(PumpMembers());
        }
        break;
      }
      case State::kQuiesce: {
        RETURN_IF_ERROR(PumpMembers());
        for (const Member& member : members_) {
          // Still inspecting (or parked behind in-flight decode): yield to
          // the reactor; a later pump re-enters here.
          if (!member.session->verdict_pending()) return Status::Ok();
        }
        RETURN_IF_ERROR(MutualVerifyAndRelease());
        state_ = State::kDone;
        break;
      }
      case State::kDone:
        if (endpoint_.Available() > 0) {
          return ProtocolError(
              "record received after the group verdicts (replay?)");
        }
        return Status::Ok();
    }
  }
}

Status GroupProvisioningSession::MutualVerifyAndRelease() {
  // Cross-check every member's actually-inspected identity before ANY
  // verdict commits. First mismatch wins; the whole group shares it.
  std::optional<Rejection> group_override;
  for (size_t i = 0; i < members_.size() && !group_override.has_value(); ++i) {
    if (!ConstantTimeEqual(
            crypto::DigestView(members_[i].session->image_digest()),
            crypto::DigestView(manifest_.members[i].binary_digest))) {
      Rejection rejection;
      rejection.stage = "GroupVerify";
      rejection.rule = "binary-digest";
      rejection.detail = "group rejected: member " + std::to_string(i) +
                         " staged a binary whose SHA-256 disagrees with its "
                         "own group declaration";
      group_override.emplace(std::move(rejection));
    }
  }
  for (size_t i = 0; i < members_.size() && !group_override.has_value(); ++i) {
    for (const auto& [slot, digest] : manifest_.members[i].siblings) {
      if (!ConstantTimeEqual(
              crypto::DigestView(members_[slot].session->image_digest()),
              crypto::DigestView(digest))) {
        Rejection rejection;
        rejection.stage = "GroupVerify";
        rejection.rule = "sibling-measurement";
        rejection.detail =
            "group rejected: member " + std::to_string(i) +
            " vouched for member " + std::to_string(slot) +
            " with a measurement the inspected binary does not have";
        group_override.emplace(std::move(rejection));
        break;
      }
    }
  }
  group_rejected_ = group_override.has_value();

  for (Member& member : members_) {
    Verdict verdict;
    {
      // The release EEXIT is the member's own charge, like a solo verdict.
      sgx::ScopedEpcPin pin(host_->device(),
                            member.entry->enclave->enclave_id());
      sgx::ScopedAccountant scoped(&member.entry->accountant);
      ASSIGN_OR_RETURN(verdict, member.session->ReleaseVerdict(group_override));
    }
    // Verdict records go out over the shared channel in declaration order.
    // Uncharged, like the solo send (AES + HMAC only, no SGX instructions).
    const Bytes wire = verdict.Serialize();
    RETURN_IF_ERROR(SendMessage(*channel_, MessageType::kVerdict,
                                ByteView(wire.data(), wire.size())));
  }
  return Status::Ok();
}

Result<std::vector<ProvisionOutcome>> GroupProvisioningSession::TakeOutcomes() {
  if (!done()) {
    return FailedPreconditionError(
        "group provisioning has not reached its verdicts");
  }
  std::vector<ProvisionOutcome> outcomes;
  outcomes.reserve(members_.size());
  for (Member& member : members_) {
    ASSIGN_OR_RETURN(ProvisionOutcome outcome, member.session->TakeOutcome());
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

void GroupProvisioningSession::ResetSessions() {
  for (Member& member : members_) {
    member.session.reset();
    member.feed.reset();
  }
}

}  // namespace engarde::core
