// ProvisioningServer: the cloud provider's front door. Multiplexes N
// concurrent client provisioning exchanges against one shared HostOs/device:
// every accepted connection gets its own EnGarde enclave (an enclave is
// locked by a successful provisioning, so it serves exactly one client) and
// its own re-entrant ProvisioningSession, while the SGX device, the host OS
// component and the inspection worker pool are shared.
//
// Accounting: each session is driven under a ScopedAccountant bound to a
// session-private CycleAccountant, so per-phase SGX-instruction attribution
// is per-client and bit-for-bit identical whether the sessions are driven
// serially (Drive in a loop) or concurrently (DriveAll) — the property the
// multi-session tests pin.
#ifndef ENGARDE_CORE_SERVER_H_
#define ENGARDE_CORE_SERVER_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engarde.h"
#include "core/session.h"
#include "crypto/channel.h"
#include "sgx/attestation.h"
#include "sgx/cost_model.h"
#include "sgx/hostos.h"

namespace engarde::core {

class ProvisioningServer {
 public:
  struct Options {
    // Per-enclave options. shared_inspection_pool and inspection_threads are
    // overridden: every enclave uses the server's shared pool.
    EngardeOptions enclave_options;
    // Size of the shared inspection worker pool. 1 = serial inspection.
    size_t inspection_threads = 1;
  };

  // `policy_factory` builds one mutually-agreed PolicySet per accepted
  // connection (each enclave owns its modules). `host` and `quoting` must
  // outlive the server.
  ProvisioningServer(sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
                     std::function<PolicySet()> policy_factory,
                     Options options);

  // Builds a fresh EnGarde enclave for the connection, sends the hello
  // (quote + public key), and registers a session. Returns the session index.
  Result<size_t> Accept(crypto::DuplexPipe::Endpoint endpoint);

  // Drives one session to its verdict under its private accountant. Errors
  // if the queued input does not reach a verdict (truncated exchange) or on
  // any hard protocol/channel failure. Single use per session: a second
  // Drive of the same index returns FAILED_PRECONDITION (the outcome was
  // already moved out). A drive that merely stalled may be retried once more
  // input arrives.
  Result<ProvisionOutcome> Drive(size_t index);

  // Drives every session concurrently, one thread per session, and returns
  // the outcomes by session index.
  std::vector<Result<ProvisionOutcome>> DriveAll();

  size_t session_count() const noexcept { return sessions_.size(); }
  EngardeEnclave& enclave(size_t index) { return *sessions_[index]->enclave; }
  const sgx::CycleAccountant& session_accountant(size_t index) const {
    return sessions_[index]->accountant;
  }

 private:
  struct Entry {
    sgx::CycleAccountant accountant;
    std::optional<EngardeEnclave> enclave;
    std::optional<ProvisioningSession> session;
    bool driven = false;  // outcome consumed; further drives are an error
  };

  sgx::HostOs* host_;
  const sgx::QuotingEnclave* quoting_;
  std::function<PolicySet()> policy_factory_;
  Options options_;
  // Shared inspection pool; null when inspection_threads <= 1. Safe across
  // concurrently driven sessions: dispatch is serialized inside the pool.
  std::unique_ptr<common::ThreadPool> pool_;
  std::vector<std::unique_ptr<Entry>> sessions_;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_SERVER_H_
