// Warm enclave pool: pre-built, measured-but-unlocked EnGarde enclaves keyed
// by policy-set fingerprint, so an accepted client skips enclave build
// (ECREATE/EADD/EEXTEND/EINIT), RSA keygen and hello serialization on the
// provisioning hot path. MAGE-style reasoning: the enclave's measurement
// depends only on the bootstrap image (policy fingerprints) and the layout,
// never on which client it will serve — so an enclave built ahead of time
// attests exactly like one built on demand.
//
// Accounting: every pre-build is charged to the entry's own CycleAccountant
// (enclave construction, keygen, EREPORT/quote — the same charges a cold
// ProvisioningServer::Accept makes). When the front end hands the entry to a
// connection, the connection adopts that accountant, so per-phase SGX
// attribution for a warm-pool session is bit-for-bit identical to a
// cold-built one; only the wall-clock position of the build moves.
//
// Thread safety: the shelves are mutex-guarded so N front-end reactors can
// TryTake/TopUpOnce against one shared pool. Enclave builds happen OUTSIDE
// the pool mutex (they are long and take the device's hardware mutex
// internally); only shelving and handout serialize.
#ifndef ENGARDE_CORE_ENCLAVE_POOL_H_
#define ENGARDE_CORE_ENCLAVE_POOL_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "core/engarde.h"
#include "core/epc_budget.h"
#include "sgx/attestation.h"
#include "sgx/cost_model.h"
#include "sgx/hostos.h"

namespace engarde::core {

// When the pool replaces a handed-out enclave.
enum class PoolRefill : uint8_t {
  // Never behind the client's back: the pool only shrinks as entries are
  // taken; admissions past the prefill go cold. (The pre-sharding behavior.)
  kOnAdmission = 0,
  // A background top-up (FrontendGroup's reactor loop between sweeps)
  // rebuilds toward `target_size` whenever EPC budget is free, so bursts
  // keep hitting warm enclaves after the initial prefill drains.
  kBackground,
};

// The joint fingerprint of a mutually-agreed policy configuration — the
// pool's key. Two PolicySets with the same fingerprint produce the same
// bootstrap image and hence the same MRENCLAVE.
std::string PolicySetFingerprint(const PolicySet& policies);

// One ready-to-serve enclave. Heap-allocated and moved wholesale because the
// accountant holds atomics (not movable).
struct PooledEnclave {
  sgx::CycleAccountant accountant;  // charged with the build at prefill time
  std::optional<EngardeEnclave> enclave;
  Bytes hello_wire;                 // pre-serialized quote + key frames
  std::string policy_fingerprint;
};

class WarmEnclavePool {
 public:
  // `host` and `quoting` must outlive the pool. `policy_factory` builds the
  // policy set each pooled enclave is measured against.
  WarmEnclavePool(sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
                  std::function<PolicySet()> policy_factory,
                  EngardeOptions enclave_options);

  // Builds one entry outside any connection: enclave + keygen + quote under
  // the entry's accountant, hello pre-serialized. Shared by the pool and by
  // the front end's cold path (which charges the same work at admit time).
  static Result<std::unique_ptr<PooledEnclave>> BuildEntry(
      sgx::HostOs* host, const sgx::QuotingEnclave& quoting,
      PolicySet policies, const EngardeOptions& enclave_options);

  // Pre-builds one enclave and shelves it. The caller budgets EPC: each
  // pooled enclave holds layout.TotalPages() EPC pages while it waits.
  Status AddOne();

  // Background refill step: when fewer than `target_size` entries are
  // shelved AND `budget` has room for another enclave, builds and shelves
  // one, returning true. False = the pool is full or the budget is not —
  // nothing happened. Safe to call from any reactor thread; concurrent
  // callers may briefly overshoot target_size by the number of in-flight
  // builds, never the budget.
  Result<bool> TopUpOnce(EpcBudget& budget);

  void SetRefillTarget(size_t target_size);
  size_t refill_target() const;

  // Hands out a warm enclave whose policy fingerprint matches, oldest first;
  // nullptr when none match (the caller falls back to a cold build). A
  // stale-keyed entry (policy set changed since prefill) is never returned.
  std::unique_ptr<PooledEnclave> TryTake(const std::string& fingerprint);

  // Puts back an entry a caller took but never used — an atomic group
  // admission that failed mid-group returns every member's handout. The
  // entry is re-shelved untouched (same accountant, same hello) and the
  // handout is un-counted, so a rolled-back admission leaves the pool's
  // statistics exactly as if TryTake had never happened.
  void Return(std::unique_ptr<PooledEnclave> entry);

  size_t size() const;
  size_t total_prebuilt() const;
  size_t total_handouts() const;
  uint64_t PagesPerEnclave() const noexcept {
    return enclave_options_.layout.TotalPages();
  }

 private:
  void Shelve(std::unique_ptr<PooledEnclave> entry);

  sgx::HostOs* host_;
  const sgx::QuotingEnclave* quoting_;
  std::function<PolicySet()> policy_factory_;
  EngardeOptions enclave_options_;
  mutable std::mutex mu_;  // guards everything below
  std::map<std::string, std::deque<std::unique_ptr<PooledEnclave>>> shelves_;
  size_t size_ = 0;
  size_t target_size_ = 0;
  size_t total_prebuilt_ = 0;
  size_t total_handouts_ = 0;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_ENCLAVE_POOL_H_
