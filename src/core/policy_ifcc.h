// Indirect function-call compliance (paper Section 5, "Restricting Indirect
// Function Calls"): verifies that the executable carries Google's IFCC
// forward-edge CFI instrumentation. Every indirect call must be preceded by
// the masking sequence
//
//   lea  <jump_table>(%rip), %A     ; table base
//   sub  %A(32), %C(32)             ; offset into the table
//   and  $MASK, %C                  ; bound + 8-byte-align the offset
//   add  %A, %C                     ; rebased, masked target
//   callq *%C
//
// with the shown register dataflow, and the masked target range must fall
// inside the jump table, whose entries are "jmpq <fn>; nopl (%rax)" pairs.
//
// The jump-table range is recovered from the __llvm_jump_instr_table_*
// symbols (exactly the names LLVM's IFCC patch emits), and each entry is
// structurally verified.
#ifndef ENGARDE_CORE_POLICY_IFCC_H_
#define ENGARDE_CORE_POLICY_IFCC_H_

#include <string>

#include "core/policy.h"

namespace engarde::core {

class IndirectCallPolicy : public PolicyModule {
 public:
  struct Options {
    // Prefix of the jump-table entry symbols.
    std::string table_symbol_prefix = "__llvm_jump_instr_table_";
    // Size of one jump-table entry (jmpq rel32 = 5 bytes + nopl = 3).
    uint64_t entry_size = 8;
  };

  IndirectCallPolicy() = default;
  explicit IndirectCallPolicy(Options options) : options_(std::move(options)) {}

  std::string_view name() const override { return "indirect-call-check"; }
  std::string Fingerprint() const override;
  Status Check(const PolicyContext& context) const override;

 private:
  Options options_;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_POLICY_IFCC_H_
