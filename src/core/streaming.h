// StreamingInspector: the incremental front half of the inspection pipeline.
//
// The staged pipeline only starts after a session has seen DONE, so the
// channel phase and the disassembly phase are fully serialized. This class
// overlaps them: as each decrypted block lands in the session's staging
// buffer it (1) speculatively parses the ELF header + program headers the
// moment those bytes are present (the builder puts them at the front of the
// file, long before the section headers at the end), (2) derives the
// executable file ranges from the PF_X PT_LOAD segments, carves them into
// page-sized decode chunks, and (3) dispatches each chunk's decode onto the
// shared inspection ThreadPool as soon as the chunk's bytes are staged —
// decode for page k proceeds while blocks k+1… are still on the wire.
//
// At the DONE barrier the staged stages run unchanged; StageDisassemble asks
// SpliceSection for each text section. A splice succeeds only when the
// speculative chunks tile the section exactly — every covering chunk decoded
// cleanly to its exact end, the segment's vaddr/offset mapping matches the
// section's, and the selected instructions are contiguous from the section's
// first byte to its last. Sequential decode is memoryless per instruction,
// so a successful splice appends byte-for-byte the instructions the staged
// x86::DecodeSectionInto would have appended (and fires the same per-chunk
// InsnBuffer malloc trampolines — those depend only on the total count).
// Any mismatch falls back to the staged decode of that section, so verdicts,
// stage reports and per-phase SGX accounting stay bit-identical in every
// case: the speculation itself runs with NO accountant and charges nothing.
//
// Threading: the producer (the session's Pump thread) calls OnBytesStaged /
// OnUploadComplete; decode tasks run on pool workers and only read staging
// bytes below the watermark captured at dispatch (the session reserves the
// full file size up front, so the buffer's data pointer never moves). With
// no workers every decode runs inline on the producer — the serial pipeline,
// just reordered inside Phase::kChannel wall time. The destructor waits for
// in-flight tasks, so a torn-block/early-FIN session can be destroyed safely
// while decodes are still running.
#ifndef ENGARDE_CORE_STREAMING_H_
#define ENGARDE_CORE_STREAMING_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/thread_pool.h"
#include "x86/insn.h"
#include "x86/insn_buffer.h"

namespace engarde::core {

// Telemetry for the overlap the speculation actually achieved. Counts are
// exact; the before-DONE split depends on scheduling and is reported, never
// equality-gated.
struct StreamingStats {
  uint64_t planned_chunks = 0;    // decode chunks carved from PF_X segments
  uint64_t completed_chunks = 0;  // chunks whose decode finished
  uint64_t clean_chunks = 0;      // of those, decoded cleanly to their end
  uint64_t text_bytes_planned = 0;
  uint64_t bytes_decoded_before_done = 0;  // decode finished pre-DONE
  uint64_t spliced_sections = 0;   // sections served from speculation
  uint64_t fallback_sections = 0;  // sections re-decoded at the barrier

  // Overlap ratio in permille: how much of the planned text had already
  // been decoded when DONE arrived. 0 when nothing was planned.
  uint64_t OverlapPermille() const noexcept {
    return text_bytes_planned == 0
               ? 0
               : bytes_decoded_before_done * 1000 / text_bytes_planned;
  }
};

class StreamingInspector {
 public:
  // One decode chunk per staged page of executable segment.
  static constexpr size_t kChunkBytes = 4096;

  // `image` is the session's staging buffer; the caller must have reserved
  // `expected_size` bytes in it already (so appends never reallocate) and
  // must keep the inspector alive until after its own destructor has run
  // (member order: declare the inspector after the buffer). `pool` may be
  // null or single-threaded — decode then runs inline on the producer.
  // `max_inflight` caps dispatched-but-unfinished chunk decodes before DONE.
  StreamingInspector(const Bytes* image, uint64_t expected_size,
                     common::ThreadPool* pool, size_t max_inflight);
  ~StreamingInspector();
  StreamingInspector(const StreamingInspector&) = delete;
  StreamingInspector& operator=(const StreamingInspector&) = delete;

  // Producer side: call after every append to the staging buffer, and once
  // when DONE arrives (lifts the in-flight cap and dispatches the rest).
  void OnBytesStaged();
  void OnUploadComplete();

  // True once every planned chunk has been dispatched and finished (or the
  // plan failed / never engaged). The async-barrier pump polls this; a
  // blocking driver calls WaitDecodeIdle instead.
  bool DecodeIdle() const;
  void WaitDecodeIdle();

  // Barrier half, called from StageDisassemble with decode idle: appends the
  // speculative decode of the section at [sec_offset, sec_offset + size) /
  // vaddr `sec_vaddr` into `out` iff the chunks tile it exactly (see file
  // comment). Returns false when the caller must decode the section itself.
  bool SpliceSection(uint64_t sec_offset, uint64_t sec_vaddr, uint64_t size,
                     x86::InsnBuffer& out);

  StreamingStats stats() const;

 private:
  struct Chunk {
    uint64_t file_begin = 0;
    uint64_t file_end = 0;
    uint64_t vaddr = 0;  // of file_begin
    std::vector<x86::Insn> insns;
    bool clean = false;  // decoded to exactly file_end with no error
    bool completed = false;
  };

  // Parses ehdr + phdrs once enough bytes are staged; plans the chunks.
  void TryPlanLocked();
  // Dispatches every chunk whose bytes are fully staged, respecting the
  // in-flight cap until upload completes.
  void DispatchReadyLocked();
  void CompleteChunkLocked(Chunk& chunk);
  static void DecodeChunk(const uint8_t* base, Chunk& chunk);

  const Bytes* image_;
  const uint64_t expected_size_;
  common::ThreadPool* pool_;  // null/single-threaded = inline decode
  const size_t max_inflight_;
  const bool inline_mode_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Chunk> chunks_;  // sorted by file_begin, non-overlapping
  uint64_t watermark_ = 0;     // staged bytes at last OnBytesStaged
  size_t dispatched_ = 0;      // chunks_[0..dispatched_) handed out
  size_t inflight_ = 0;
  bool planned_ = false;
  bool plan_failed_ = false;  // not a valid ELF64 prefix: no speculation
  bool upload_done_ = false;
  bool abandoned_ = false;  // tearing down: stop dispatching
  StreamingStats stats_;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_STREAMING_H_
