#include "core/policy.h"

namespace engarde::core {

Result<ByteView> PolicyContext::TextBytes(uint64_t addr, size_t length) const {
  if (elf == nullptr) return InternalError("PolicyContext missing ELF");
  for (const elf::Shdr* section : elf->TextSections()) {
    if (addr >= section->addr && addr + length <= section->addr + section->size) {
      ASSIGN_OR_RETURN(const ByteView content, elf->SectionContent(*section));
      return content.subspan(addr - section->addr, length);
    }
  }
  return OutOfRangeError("text byte range crosses section boundaries");
}

}  // namespace engarde::core
