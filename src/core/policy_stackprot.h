// Stack-protection compliance (paper Section 5, "Compliance for Stack
// Protection"): verifies that every function carries Clang's
// -fstack-protector-all instrumentation:
//
//   prologue:  mov %fs:0x28, %REG          ; load the canary
//              mov %REG, (%rsp)            ; spill it to the frame
//   epilogue:  mov %fs:0x28, %REG'         ; reload the canary
//              cmp <frame slot>, %REG'     ; compare against the spill
//              jne <fail>                  ; mismatch ->
//   fail:      callq __stack_chk_fail
//
// The check follows the paper: within each function (bounds from the symbol
// hash table) it finds the canary spill, tracks which frame slot and source
// register were used, requires the reload to immediately precede the cmp,
// and resolves the jne target to a direct call to __stack_chk_fail.
#ifndef ENGARDE_CORE_POLICY_STACKPROT_H_
#define ENGARDE_CORE_POLICY_STACKPROT_H_

#include <set>
#include <string>

#include "core/policy.h"

namespace engarde::core {

class StackProtectionPolicy : public PolicyModule {
 public:
  struct Options {
    // Canary location within the thread area (%fs:<offset>); 0x28 on x86-64.
    int32_t canary_fs_offset = 0x28;
    // Symbol the failure edge must call.
    std::string fail_symbol = "__stack_chk_fail";
    // Functions exempt from the check. The failure handler itself can't be
    // instrumented; the process entry point runs before the canary exists.
    std::set<std::string> exempt = {"__stack_chk_fail", "_start"};
    // Symbol prefixes exempt from the check: IFCC jump-table entries carry
    // STT_FUNC symbols but are two-instruction thunks, not real frames.
    std::vector<std::string> exempt_prefixes = {"__llvm_jump_instr_table_"};
  };

  StackProtectionPolicy() = default;
  explicit StackProtectionPolicy(Options options)
      : options_(std::move(options)) {}

  std::string_view name() const override { return "stack-protection"; }
  std::string Fingerprint() const override;
  Status Check(const PolicyContext& context) const override;

 private:
  Options options_;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_POLICY_STACKPROT_H_
