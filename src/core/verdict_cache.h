// Content-addressed sealed verdict cache: at fleet scale most clients
// re-upload identical or near-identical binaries, so EnGarde would re-run the
// full inspection pipeline over work it has already judged. The cache makes a
// re-upload cheap on two granularities:
//
//  * Full hit — the exact binary (by SHA-256) was inspected before under the
//    same policy set and library database: the pipeline replays the cached
//    per-stage reports and structured rejection bit-identically, skipping
//    Disassemble/NaClValidate/PolicyCheck. An ACCEPT verdict still re-runs
//    LoadAndLock against the live enclave — the cache never vouches for a
//    measurement, only for the content-determined verdict.
//  * Partial hit — the binary is new, but the per-function digest store
//    remembers which library-function bodies the library-linking policy has
//    already verified. Functions whose raw bytes are provably unchanged skip
//    the per-call-site body hashing (the dominant policy-check cost); changed
//    functions re-hash cold, preserving the lowest-index-violation reduction.
//
// Trust argument: entries are sealed (core/sealing.h) under an
// EGETKEY-derived key bound to the MRENCLAVE of the EnGarde bootstrap for
// THIS policy set and layout — the same key-derivation the sealed-program
// path uses. The host stores opaque blobs; it cannot forge an entry (MAC),
// splice a verdict onto a different binary (the plaintext embeds the binary
// SHA-256 the filename was derived from), or replay an entry sealed under a
// weaker policy set (different bootstrap -> different MRENCLAVE -> different
// key -> MAC fails). Any tamper, truncation, schema or fingerprint mismatch
// degrades to a counted miss followed by cold inspection — never a crash,
// never a wrong accept.
//
// Concurrency: one VerdictCache is shared by every reactor shard of a
// FrontendGroup (and its warm pool). Probes and stores serialize on one
// mutex; publishes write a temp file and commit with an atomic rename, so a
// crash mid-write leaves either the old entry or a stray .tmp (swept at
// Create), never a torn read. Counters are relaxed atomics, readable from
// any thread while reactors run.
#ifndef ENGARDE_CORE_VERDICT_CACHE_H_
#define ENGARDE_CORE_VERDICT_CACHE_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/inspection.h"
#include "core/policy.h"
#include "core/symbol_table.h"
#include "crypto/aes.h"
#include "crypto/sha256.h"
#include "elf/reader.h"
#include "sgx/hostos.h"

namespace engarde::core {

struct VerdictCacheOptions {
  // On-disk store; created if missing. One directory per (policy set,
  // library db) deployment is typical, but entries from different
  // configurations coexist safely — the key and filename both cover the
  // fingerprints.
  std::string directory;
  // Max sealed verdict entries on disk; the least-recently-used entry is
  // evicted (unlinked) past this. 0 = unlimited (the default — operators
  // bound the store explicitly via --verdict-cache-max-entries).
  size_t capacity = 0;
  // Bound on persisted per-function digest records; oldest are dropped.
  size_t max_function_records = 65536;
};

// The replayable payload of a full hit: everything a cold run of the cached
// stages (Disassemble, BuildSymbols, NaClValidate, PolicyCheck) produced
// that is content-determined — verdict, rejection, stage reports, and the
// instruction-buffer statistics the session reports.
struct CachedVerdict {
  bool compliant = false;
  std::string reason;                  // legacy flat reason; empty if compliant
  std::optional<Rejection> rejection;  // set iff !compliant
  uint64_t instruction_count = 0;
  uint64_t insn_buffer_pages = 0;  // malloc trampolines to replay (kDisassembly)
  // Reports for the four cached stages, in execution order.
  std::vector<StageReport> reports;
};

// One library function the linking policy verified: the call-site walk
// hashed exactly the raw bytes [start, hashed_end) (hashed_end can exceed
// the symbol-table `end` when the final instruction straddles it), and the
// digest matched the agreed library database. Reuse on a re-upload requires
// the function to sit at the same [start, end) with byte-identical
// [start, hashed_end) content — anything else re-hashes cold.
struct VerifiedFunctionRecord {
  std::string name;
  uint64_t start = 0;
  uint64_t end = 0;         // symbol-table end at verification time
  uint64_t hashed_end = 0;  // one past the last byte the walk hashed
  crypto::Sha256Digest digest{};  // SHA-256 of image bytes [start, hashed_end)
};

struct VerdictCacheStats {
  uint64_t hits = 0;            // full entry replayed
  uint64_t partial_hits = 0;    // >=1 function skipped re-hashing
  uint64_t misses = 0;          // cold inspection, nothing reused
  uint64_t tamper_rejects = 0;  // sealed artifact failed validation
  uint64_t evictions = 0;       // LRU unlinks past capacity
  uint64_t bytes_sealed = 0;    // gauge: sealed bytes currently on disk
};

class VerdictCache {
 public:
  // Derives the sealing key once, at construction: a scratch device builds
  // the EnGarde bootstrap for `policies` under `layout` (the same reference
  // build ExpectedMeasurement performs) and runs EGETKEY against it, so the
  // key is bound to this exact policy-set MRENCLAVE and no live-session
  // accountant ever sees the derivation. Scans `options.directory`, seeding
  // the LRU index from entry mtimes and sweeping stray temp files.
  static Result<std::shared_ptr<VerdictCache>> Create(
      VerdictCacheOptions options, const PolicySet& policies,
      const sgx::EnclaveLayout& layout);

  // Full-entry probe. A valid entry counts a hit and returns the cached
  // verdict; absence returns nullopt uncounted (the pipeline classifies the
  // run as partial hit or miss once function reuse is known). Tampered,
  // truncated, stale-schema or wrong-fingerprint entries count a tamper
  // reject, are unlinked, and return nullopt.
  std::optional<CachedVerdict> Probe(const crypto::Sha256Digest& binary_sha);

  // Publishes the verdict for `binary_sha`: seal, write to a temp file,
  // atomic-rename into place, then LRU-evict past capacity. Thread-safe
  // single-writer; concurrent stores of the same binary are idempotent.
  void Store(const crypto::Sha256Digest& binary_sha,
             const CachedVerdict& verdict);

  // Resolves the persisted function records against a new binary: returns
  // start -> hashed_end for every recorded function that exists in `symbols`
  // at the same [start, end) with a byte-identical [start, hashed_end) range
  // in `elf`. Those call targets may skip the body-hash walk.
  std::map<uint64_t, uint64_t> ResolveReuse(const SymbolHashTable& symbols,
                                            const elf::ElfFile& elf) const;

  // Folds newly verified [start, hashed_end) ranges into the sealed
  // per-function store (named via `symbols`), bounded by
  // max_function_records, and republishes it (temp file + atomic rename).
  void MergeVerifiedFunctions(
      const std::vector<std::pair<uint64_t, uint64_t>>& ranges,
      const SymbolHashTable& symbols, const elf::ElfFile& elf);

  // Probe classification the pipeline reports once reuse is known.
  void CountMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  void CountPartialHit() {
    partial_hits_.fetch_add(1, std::memory_order_relaxed);
  }

  VerdictCacheStats stats() const;

  const std::string& directory() const { return options_.directory; }
  size_t entry_count() const;

  // ---- Test hooks (tamper-injection tests forge on-disk artifacts) --------
  // Path the entry for `binary_sha` lives at under THIS cache's fingerprints.
  std::string EntryPathFor(const crypto::Sha256Digest& binary_sha) const;
  // Seals arbitrary plaintext under this cache's key, for forging entries
  // with wrong schemas/fingerprints in tests.
  Bytes SealForTesting(ByteView plaintext) const;

 private:
  VerdictCache(VerdictCacheOptions options, crypto::Aes256Key key,
               crypto::Sha256Digest policy_fp, crypto::Sha256Digest library_fp);

  struct IndexEntry {
    std::list<std::string>::iterator lru;  // position in lru_ (front = oldest)
    uint64_t bytes = 0;
  };

  std::string EntryFileName(const crypto::Sha256Digest& binary_sha) const;
  std::string FunctionStorePath() const;
  Bytes Seal(ByteView plaintext) const;
  Result<Bytes> UnsealFile(const std::string& path) const;
  // Writes `sealed` to `path` via temp file + atomic rename. Under mu_.
  Status PublishLocked(const std::string& path, const Bytes& sealed);
  void TouchLocked(const std::string& name);
  void RemoveEntryLocked(const std::string& name);
  void EvictPastCapacityLocked();
  void LoadFunctionStore();  // Create-time; tamper resets the store
  void CountTamper() {
    tamper_rejects_.fetch_add(1, std::memory_order_relaxed);
  }

  VerdictCacheOptions options_;
  crypto::Aes256Key key_{};
  crypto::Sha256Digest policy_fp_{};
  crypto::Sha256Digest library_fp_{};

  mutable std::mutex mu_;  // guards the index, LRU, fn records and file IO
  std::list<std::string> lru_;  // entry file names, front = oldest
  std::unordered_map<std::string, IndexEntry> index_;
  std::vector<VerifiedFunctionRecord> fn_records_;  // in-memory mirror
  uint64_t fn_store_bytes_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> partial_hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> tamper_rejects_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> bytes_sealed_{0};
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_VERDICT_CACHE_H_
