#include "core/symbol_table.h"

#include <algorithm>

namespace engarde::core {

SymbolHashTable SymbolHashTable::Build(const elf::ElfFile& elf) {
  SymbolHashTable table;

  for (const elf::Sym& sym : elf.symbols()) {
    if (!sym.IsFunction() || sym.name.empty()) continue;
    table.functions_.push_back(Function{sym.value, 0, sym.name});
  }
  std::sort(table.functions_.begin(), table.functions_.end(),
            [](const Function& a, const Function& b) {
              return a.start < b.start;
            });
  // Duplicate addresses (aliases) keep the first name only.
  table.functions_.erase(
      std::unique(table.functions_.begin(), table.functions_.end(),
                  [](const Function& a, const Function& b) {
                    return a.start == b.start;
                  }),
      table.functions_.end());

  // Compute each function's end: the next function start, capped at the end
  // of the text section containing it.
  const auto text_sections = elf.TextSections();
  auto section_end_for = [&](uint64_t addr) -> uint64_t {
    for (const elf::Shdr* section : text_sections) {
      if (addr >= section->addr && addr < section->addr + section->size) {
        return section->addr + section->size;
      }
    }
    return addr;  // not inside any text section; empty body
  };

  for (size_t i = 0; i < table.functions_.size(); ++i) {
    Function& fn = table.functions_[i];
    const uint64_t section_end = section_end_for(fn.start);
    uint64_t end = section_end;
    if (i + 1 < table.functions_.size() &&
        table.functions_[i + 1].start < section_end) {
      end = table.functions_[i + 1].start;
    }
    fn.end = end;
  }

  for (size_t i = 0; i < table.functions_.size(); ++i) {
    table.by_addr_.emplace(table.functions_[i].start, i);
    table.by_name_.emplace(table.functions_[i].name, i);
  }
  return table;
}

const std::string* SymbolHashTable::NameAt(uint64_t addr) const {
  const auto it = by_addr_.find(addr);
  if (it == by_addr_.end()) return nullptr;
  return &functions_[it->second].name;
}

std::optional<uint64_t> SymbolHashTable::AddrOf(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return functions_[it->second].start;
}

const SymbolHashTable::Function* SymbolHashTable::FunctionContaining(
    uint64_t addr) const {
  // Binary search for the last function with start <= addr.
  auto it = std::upper_bound(functions_.begin(), functions_.end(), addr,
                             [](uint64_t a, const Function& fn) {
                               return a < fn.start;
                             });
  if (it == functions_.begin()) return nullptr;
  --it;
  if (addr >= it->end) return nullptr;
  return &*it;
}

const SymbolHashTable::Function* SymbolHashTable::FunctionAt(
    uint64_t addr) const {
  const auto it = by_addr_.find(addr);
  if (it == by_addr_.end()) return nullptr;
  return &functions_[it->second];
}

}  // namespace engarde::core
