#include "core/engarde.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>

#include "core/sealing.h"
#include "core/session.h"
#include "x86/interp.h"

namespace engarde::core {

Bytes EngardeEnclave::BootstrapImage(const PolicySet& policies) {
  Bytes image = ToBytes("ENGARDE/1.0 bootstrap: loader+crypto+nacl-disasm\n");
  for (const auto& policy : policies) {
    AppendBytes(image, ToBytes("policy: " + policy->Fingerprint() + "\n"));
  }
  return image;
}

Result<crypto::Sha256Digest> EngardeEnclave::ExpectedMeasurement(
    const PolicySet& policies, const EngardeOptions& options) {
  // The measurement depends only on the bootstrap image (policy fingerprints)
  // and the layout, both public — so the reference build is memoized on
  // those. A provider pinning one policy configuration across many client
  // connections pays for the scratch ECREATE/EADD/EEXTEND walk once.
  const Bytes image = BootstrapImage(policies);
  Bytes key;
  for (const uint64_t field :
       {options.layout.base, options.layout.bootstrap_pages,
        options.layout.heap_pages, options.layout.load_pages,
        options.layout.stack_pages, options.layout.tls_pages}) {
    for (int shift = 0; shift < 64; shift += 8) {
      key.push_back(static_cast<uint8_t>(field >> shift));
    }
  }
  AppendBytes(key, ByteView(image.data(), image.size()));

  static std::mutex cache_mu;
  static std::map<Bytes, crypto::Sha256Digest>* cache =
      new std::map<Bytes, crypto::Sha256Digest>();
  {
    const std::lock_guard<std::mutex> lock(cache_mu);
    const auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }

  // Reference build on a scratch device.
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = options.layout.TotalPages() + 8});
  sgx::HostOs host(&device);
  ASSIGN_OR_RETURN(const uint64_t enclave_id,
                   host.BuildEnclave(options.layout,
                                     ByteView(image.data(), image.size())));
  ASSIGN_OR_RETURN(const crypto::Sha256Digest measurement,
                   device.Measurement(enclave_id));
  const std::lock_guard<std::mutex> lock(cache_mu);
  cache->emplace(std::move(key), measurement);
  return measurement;
}

Result<EngardeEnclave> EngardeEnclave::Create(
    sgx::HostOs* host, const sgx::QuotingEnclave& quoting, PolicySet policies,
    EngardeOptions options) {
  const Bytes image = BootstrapImage(policies);
  ASSIGN_OR_RETURN(const uint64_t enclave_id,
                   host->BuildEnclave(options.layout,
                                      ByteView(image.data(), image.size())));

  // "The bootstrap code loaded into a freshly-created enclave first generates
  // a 2048-bit RSA key pair" (Section 3).
  crypto::HmacDrbg keygen_drbg(ByteView(options.enclave_entropy.data(),
                                        options.enclave_entropy.size()));
  ASSIGN_OR_RETURN(crypto::RsaKeyPair rsa,
                   crypto::RsaGenerateKey(options.rsa_bits, keygen_drbg));

  // Quote binds the public key to the measurement via report_data.
  ASSIGN_OR_RETURN(
      const sgx::Report report,
      host->device()->EReport(enclave_id,
                              sgx::BindPublicKey(rsa.public_key)));
  ASSIGN_OR_RETURN(sgx::Quote quote, quoting.CreateQuote(report));

  return EngardeEnclave(host, std::move(policies), std::move(options),
                        std::move(rsa), enclave_id, std::move(quote));
}

EngardeEnclave::EngardeEnclave(sgx::HostOs* host, PolicySet policies,
                               EngardeOptions options, crypto::RsaKeyPair rsa,
                               uint64_t enclave_id, sgx::Quote quote)
    : host_(host),
      policies_(std::move(policies)),
      options_(std::move(options)),
      rsa_(std::move(rsa)),
      enclave_id_(enclave_id),
      quote_(std::move(quote)),
      drbg_(ByteView(options_.enclave_entropy.data(),
                     options_.enclave_entropy.size())) {
  drbg_.Reseed(ToBytes("post-keygen state separation"));
  if (options_.shared_inspection_pool == nullptr &&
      options_.inspection_threads > 1) {
    inspect_pool_ =
        std::make_unique<common::ThreadPool>(options_.inspection_threads);
  }
}

Bytes EngardeEnclave::HelloWire() const {
  const Bytes quote_wire = quote_.Serialize();
  const Bytes key_wire = rsa_.public_key.Serialize();
  Bytes out;
  out.reserve(8 + quote_wire.size() + key_wire.size());
  AppendLe32(out, static_cast<uint32_t>(quote_wire.size()));
  AppendBytes(out, ByteView(quote_wire.data(), quote_wire.size()));
  AppendLe32(out, static_cast<uint32_t>(key_wire.size()));
  AppendBytes(out, ByteView(key_wire.data(), key_wire.size()));
  return out;
}

Status EngardeEnclave::SendHello(crypto::DuplexPipe::Endpoint endpoint) {
  const Bytes hello = HelloWire();
  endpoint.Write(ByteView(hello.data(), hello.size()));
  return Status::Ok();
}

Result<Bytes> EngardeEnclave::UnwrapMasterKey(ByteView wrapped) const {
  return crypto::RsaDecrypt(rsa_.private_key, wrapped);
}

Result<ProvisionOutcome> EngardeEnclave::RunProvisioning(
    crypto::DuplexPipe::Endpoint endpoint) {
  // One-shot driver over the re-entrant session: the whole exchange (wrapped
  // key, manifest, blocks, DONE) is expected on the endpoint already, so a
  // single pump must reach the verdict. See core/session.h for the state
  // machine and core/inspection.h for the staged pipeline it runs.
  ProvisioningSession session(this, endpoint);
  RETURN_IF_ERROR(session.Pump());
  if (!session.done()) {
    // The peer stopped mid-exchange: surface the same error the old blocking
    // loop's short read produced.
    return ProtocolError("short read: peer closed or sent a truncated record");
  }
  return session.TakeOutcome();
}

Result<Bytes> EngardeEnclave::SealApprovedProgram() {
  if (approved_image_.empty()) {
    return FailedPreconditionError(
        "nothing to seal: no compliant program has been provisioned");
  }
  const uint64_t key_id = seal_counter_++;
  ASSIGN_OR_RETURN(const crypto::Aes256Key key,
                   host_->device()->EGetkey(enclave_id_, key_id));
  std::array<uint8_t, 12> nonce{};
  const Bytes nonce_bytes = drbg_.Generate(nonce.size());
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());
  const SealedBlob blob =
      Seal(key, key_id, nonce,
           ByteView(approved_image_.data(), approved_image_.size()));
  return blob.Serialize();
}

Status EngardeEnclave::RestoreFromSealed(ByteView sealed_blob) {
  if (load_.has_value()) {
    return FailedPreconditionError(
        "enclave already holds a provisioned program");
  }
  ASSIGN_OR_RETURN(const SealedBlob blob,
                   SealedBlob::Deserialize(sealed_blob));
  ASSIGN_OR_RETURN(const crypto::Aes256Key key,
                   host_->device()->EGetkey(enclave_id_, blob.key_id));
  // A forged/tampered blob, or one sealed by an enclave with a different
  // policy set (different MRENCLAVE -> different key), fails here.
  ASSIGN_OR_RETURN(const Bytes image, Unseal(key, blob));

  // The seal covers a binary this exact EnGarde configuration already judged
  // compliant, so only the structural front door is re-checked before the
  // load path re-runs.
  ASSIGN_OR_RETURN(const elf::ElfFile elf,
                   elf::ElfFile::Parse(ByteView(image.data(), image.size())));
  RETURN_IF_ERROR(elf.ValidateForEnclave());

  sgx::CycleAccountant* accountant = host_->device()->accountant();
  sgx::ScopedPhase phase(accountant, sgx::Phase::kLoading);
  const Bytes canary = drbg_.Generate(8);
  ASSIGN_OR_RETURN(
      LoadResult load,
      EnclaveLoader::Load(*host_->device(), enclave_id_, options_.layout, elf,
                          ByteView(canary.data(), canary.size())));
  RETURN_IF_ERROR(host_->ApplyWxPolicy(enclave_id_, options_.layout,
                                       load.span_pages,
                                       load.executable_pages));
  RETURN_IF_ERROR(host_->LockEnclave(enclave_id_));
  if (host_->device()->sgx_version() >= 2) {
    RETURN_IF_ERROR(host_->HardenWxInEpcm(enclave_id_, load.executable_pages));
  }
  loaded_symbols_ = SymbolHashTable::Build(elf);
  approved_image_ = image;
  load_ = std::move(load);
  return Status::Ok();
}

Result<uint64_t> EngardeEnclave::ExecuteClientProgram(
    uint64_t max_steps, x86::ExecutionObserver* observer) {
  if (!load_.has_value()) {
    return FailedPreconditionError(
        "no client program has been provisioned into this enclave");
  }
  RETURN_IF_ERROR(host_->device()->EEnter(enclave_id_));
  auto memory = host_->device()->MakeEnclaveView(enclave_id_);
  x86::MachineConfig config;
  config.stack_top = load_->stack_top;
  config.fs_base = load_->tls_base;
  config.max_steps = max_steps;
  config.observer = observer;
  x86::Machine machine(memory.get(), config);
  auto result = machine.Run(load_->entry);
  RETURN_IF_ERROR(host_->device()->EExit(enclave_id_));
  return result;
}

}  // namespace engarde::core
