#include "core/engarde.h"

#include <algorithm>
#include <cstring>

#include "core/sealing.h"
#include "x86/decoder.h"
#include "x86/interp.h"
#include "x86/validator.h"

namespace engarde::core {
namespace {

// Rejection-class statuses become a non-compliant verdict; everything else
// (channel integrity, protocol framing, internal errors) stays a hard error.
bool IsRejection(const Status& status) {
  switch (status.code()) {
    case StatusCode::kPolicyViolation:
    case StatusCode::kInvalidArgument:
    case StatusCode::kUnimplemented:
    case StatusCode::kOutOfRange:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

}  // namespace

Bytes EngardeEnclave::BootstrapImage(const PolicySet& policies) {
  Bytes image = ToBytes("ENGARDE/1.0 bootstrap: loader+crypto+nacl-disasm\n");
  for (const auto& policy : policies) {
    AppendBytes(image, ToBytes("policy: " + policy->Fingerprint() + "\n"));
  }
  return image;
}

Result<crypto::Sha256Digest> EngardeEnclave::ExpectedMeasurement(
    const PolicySet& policies, const EngardeOptions& options) {
  // Reference build on a scratch device: measurement depends only on the
  // bootstrap image and the layout, both of which are public.
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = options.layout.TotalPages() + 8});
  sgx::HostOs host(&device);
  const Bytes image = BootstrapImage(policies);
  ASSIGN_OR_RETURN(const uint64_t enclave_id,
                   host.BuildEnclave(options.layout,
                                     ByteView(image.data(), image.size())));
  return device.Measurement(enclave_id);
}

Result<EngardeEnclave> EngardeEnclave::Create(
    sgx::HostOs* host, const sgx::QuotingEnclave& quoting, PolicySet policies,
    EngardeOptions options) {
  const Bytes image = BootstrapImage(policies);
  ASSIGN_OR_RETURN(const uint64_t enclave_id,
                   host->BuildEnclave(options.layout,
                                      ByteView(image.data(), image.size())));

  // "The bootstrap code loaded into a freshly-created enclave first generates
  // a 2048-bit RSA key pair" (Section 3).
  crypto::HmacDrbg keygen_drbg(ByteView(options.enclave_entropy.data(),
                                        options.enclave_entropy.size()));
  ASSIGN_OR_RETURN(crypto::RsaKeyPair rsa,
                   crypto::RsaGenerateKey(options.rsa_bits, keygen_drbg));

  // Quote binds the public key to the measurement via report_data.
  ASSIGN_OR_RETURN(
      const sgx::Report report,
      host->device()->EReport(enclave_id,
                              sgx::BindPublicKey(rsa.public_key)));
  ASSIGN_OR_RETURN(sgx::Quote quote, quoting.CreateQuote(report));

  return EngardeEnclave(host, std::move(policies), std::move(options),
                        std::move(rsa), enclave_id, std::move(quote));
}

EngardeEnclave::EngardeEnclave(sgx::HostOs* host, PolicySet policies,
                               EngardeOptions options, crypto::RsaKeyPair rsa,
                               uint64_t enclave_id, sgx::Quote quote)
    : host_(host),
      policies_(std::move(policies)),
      options_(std::move(options)),
      rsa_(std::move(rsa)),
      enclave_id_(enclave_id),
      quote_(std::move(quote)),
      drbg_(ByteView(options_.enclave_entropy.data(),
                     options_.enclave_entropy.size())) {
  drbg_.Reseed(ToBytes("post-keygen state separation"));
  if (options_.inspection_threads > 1) {
    inspect_pool_ =
        std::make_unique<common::ThreadPool>(options_.inspection_threads);
  }
}

Status EngardeEnclave::SendHello(crypto::DuplexPipe::Endpoint endpoint) {
  const Bytes quote_wire = quote_.Serialize();
  RETURN_IF_ERROR(WriteFrame(endpoint, ByteView(quote_wire.data(),
                                                quote_wire.size())));
  const Bytes key_wire = rsa_.public_key.Serialize();
  return WriteFrame(endpoint, ByteView(key_wire.data(), key_wire.size()));
}

Status EngardeEnclave::CheckPageSeparation(const elf::ElfFile& elf,
                                           const Manifest& manifest) const {
  // Classify every file page by the sections whose *content* overlaps it.
  // "EnGarde operates at the granularity of memory pages ... EnGarde rejects
  // pages that contain mixed code and data." Sorted flat vectors, not
  // std::set: the per-page node allocations were measurable on every
  // provisioning, and a sort + set_intersection over contiguous memory does
  // the same classification allocation-free per element.
  std::vector<uint64_t> code_pages;
  std::vector<uint64_t> data_pages;
  for (const elf::Shdr& section : elf.sections()) {
    if (!(section.flags & elf::kShfAlloc)) continue;
    if (section.type == elf::kShtNobits || section.size == 0) continue;
    const bool is_code = (section.flags & elf::kShfExecinstr) != 0;
    const uint64_t first = section.addr / sgx::kPageSize;
    const uint64_t last = (section.addr + section.size - 1) / sgx::kPageSize;
    std::vector<uint64_t>& pages = is_code ? code_pages : data_pages;
    for (uint64_t page = first; page <= last; ++page) pages.push_back(page);
  }
  auto sort_unique = [](std::vector<uint64_t>& pages) {
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  };
  sort_unique(code_pages);
  sort_unique(data_pages);
  std::vector<uint64_t> mixed;
  std::set_intersection(code_pages.begin(), code_pages.end(),
                        data_pages.begin(), data_pages.end(),
                        std::back_inserter(mixed));
  if (!mixed.empty()) {
    // mixed is sorted, so front() is the lowest offending page — the same
    // page the old ordered-set walk reported first.
    return PolicyViolationError(
        "page " + std::to_string(mixed.front()) +
        " mixes code and data; compile with separated sections");
  }

  // The client's claimed code-page set must match what the ELF actually says.
  std::vector<uint64_t> claimed(manifest.code_pages.begin(),
                                manifest.code_pages.end());
  sort_unique(claimed);
  if (claimed != code_pages) {
    return PolicyViolationError(
        "manifest code-page list disagrees with the ELF section headers");
  }
  return Status::Ok();
}

Result<ProvisionOutcome> EngardeEnclave::RunProvisioning(
    crypto::DuplexPipe::Endpoint endpoint) {
  sgx::CycleAccountant* accountant = host_->device()->accountant();

  // ---- Key exchange ---------------------------------------------------------
  // EENTER: the host switches into the enclave to run EnGarde.
  RETURN_IF_ERROR(host_->device()->EEnter(enclave_id_));
  ASSIGN_OR_RETURN(const Bytes wrapped_key, ReadFrame(endpoint));
  ASSIGN_OR_RETURN(
      const Bytes master_key,
      crypto::RsaDecrypt(rsa_.private_key,
                         ByteView(wrapped_key.data(), wrapped_key.size())));
  if (master_key.size() != 32) {
    return ProtocolError("client AES key must be 256 bits");
  }
  const crypto::SessionKeys keys = crypto::SessionKeys::Derive(
      ByteView(master_key.data(), master_key.size()));
  crypto::SecureChannel channel(endpoint, keys, /*is_enclave_side=*/true);

  ProvisionOutcome outcome;

  // ---- Receive the manifest and the encrypted blocks ------------------------
  Manifest manifest;
  Bytes image;
  {
    sgx::ScopedPhase phase(accountant, sgx::Phase::kChannel);
    ASSIGN_OR_RETURN(const Message first, ReceiveMessage(channel));
    if (first.type != MessageType::kManifest) {
      return ProtocolError("expected manifest as the first record");
    }
    ASSIGN_OR_RETURN(manifest, Manifest::Deserialize(ByteView(
                                   first.payload.data(),
                                   first.payload.size())));
    if (manifest.file_size > options_.layout.heap_pages * sgx::kPageSize) {
      return ProtocolError("executable exceeds the enclave staging area");
    }
    image.reserve(manifest.file_size);
    for (;;) {
      // Each block crosses the enclave boundary through a trampoline.
      if (accountant) accountant->CountTrampoline();
      ASSIGN_OR_RETURN(const Message message, ReceiveMessage(channel));
      if (message.type == MessageType::kDone) break;
      if (message.type != MessageType::kBlock) {
        return ProtocolError("unexpected record type during code transfer");
      }
      AppendBytes(image, ByteView(message.payload.data(),
                                  message.payload.size()));
      ++outcome.stats.blocks_received;
      if (image.size() > manifest.file_size) {
        return ProtocolError("client sent more bytes than the manifest size");
      }
    }
    if (image.size() != manifest.file_size) {
      return ProtocolError("client sent fewer bytes than the manifest size");
    }
    // Stage the plaintext image in the enclave heap (EnGarde's working copy).
    RETURN_IF_ERROR(host_->device()->EnclaveWrite(
        enclave_id_, options_.layout.HeapStart(),
        ByteView(image.data(), image.size())));
  }

  // ---- Inspect ---------------------------------------------------------------
  auto result = InspectAndLoad(manifest, image);
  if (result.ok() && result->verdict.compliant) {
    approved_image_ = std::move(image);  // retained for SealApprovedProgram
  }

  // ---- Verdict ----------------------------------------------------------------
  Verdict verdict;
  ProvisionOutcome final_outcome;
  if (result.ok()) {
    final_outcome = std::move(result).value();
    final_outcome.stats.blocks_received = outcome.stats.blocks_received;
    verdict = final_outcome.verdict;
  } else if (IsRejection(result.status())) {
    verdict.compliant = false;
    verdict.reason = result.status().ToString();
    final_outcome.verdict = verdict;
    final_outcome.provider_report.compliant = false;
  } else {
    return result.status();  // hard protocol/crypto error
  }

  const Bytes verdict_wire = verdict.Serialize();
  RETURN_IF_ERROR(SendMessage(channel, MessageType::kVerdict,
                              ByteView(verdict_wire.data(),
                                       verdict_wire.size())));
  RETURN_IF_ERROR(host_->device()->EExit(enclave_id_));
  return final_outcome;
}

Result<ProvisionOutcome> EngardeEnclave::InspectAndLoad(
    const Manifest& manifest, const Bytes& image) {
  sgx::CycleAccountant* accountant = host_->device()->accountant();
  ProvisionOutcome outcome;

  // ---- Container checks (front door) ---------------------------------------
  // "Before disassembling the code sections of the executable, the loader
  // checks its header to verify that the executable is correctly formatted."
  ASSIGN_OR_RETURN(const elf::ElfFile elf,
                   elf::ElfFile::Parse(ByteView(image.data(), image.size())));
  RETURN_IF_ERROR(elf.ValidateForEnclave());
  RETURN_IF_ERROR(CheckPageSeparation(elf, manifest));

  // ---- Disassembly -------------------------------------------------------------
  x86::InsnBuffer insns([accountant](size_t) {
    // "we reduce the involved overhead by restricting the calls to malloc by
    // allocating a memory page at a time": one trampoline per buffer page.
    if (accountant) accountant->CountTrampoline();
  });
  SymbolHashTable symbols;
  {
    sgx::ScopedPhase phase(accountant, sgx::Phase::kDisassembly);
    uint64_t text_start = UINT64_MAX;
    uint64_t text_end = 0;
    for (const elf::Shdr* section : elf.TextSections()) {
      ASSIGN_OR_RETURN(const ByteView content, elf.SectionContent(*section));
      // Bundle-aligned shards decoded concurrently, merged in address order
      // on this thread (serial when no pool) — see x86::DecodeSectionInto.
      RETURN_IF_ERROR(x86::DecodeSectionInto(content, section->addr,
                                             inspect_pool_.get(), insns));
      text_start = std::min(text_start, section->addr);
      text_end = std::max(text_end, section->addr + section->size);
    }

    // "Along with disassembling the executable, the loader also reads the
    // symbol tables ... constructs a symbol hash table."
    symbols = SymbolHashTable::Build(elf);

    // NaCl structural constraints (Section 3). Roots: the entry point plus
    // every named function (a statically-linked binary legitimately contains
    // functions reached only via the symbol table or jump tables).
    x86::ValidationInput validation;
    validation.text_start = text_start;
    validation.text_end = text_end;
    validation.roots.push_back(elf.header().entry);
    for (const SymbolHashTable::Function& fn : symbols.functions()) {
      validation.roots.push_back(fn.start);
    }
    RETURN_IF_ERROR(
        x86::ValidateNaClConstraints(insns, validation, inspect_pool_.get()));
  }
  outcome.stats.instruction_count = insns.size();
  outcome.stats.insn_buffer_pages = insns.chunk_allocations();

  // ---- Policy checks ------------------------------------------------------------
  {
    sgx::ScopedPhase phase(accountant, sgx::Phase::kPolicyCheck);
    PolicyContext context;
    context.insns = &insns;
    context.symbols = &symbols;
    context.elf = &elf;
    // The pool goes either to the policy SET (independent read-only modules
    // checked concurrently) or to a lone module (which may shard its own
    // scan through context.pool) — never both, since ParallelFor does not
    // nest. Either way the verdict is the first failure in module order,
    // exactly what the serial loop reports.
    common::ThreadPool* pool = inspect_pool_.get();
    size_t failed = policies_.size();
    std::vector<Status> statuses(policies_.size(), Status::Ok());
    if (pool != nullptr && policies_.size() > 1) {
      pool->ParallelFor(0, policies_.size(), 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          statuses[i] = policies_[i]->Check(context);
        }
      });
      for (size_t i = 0; i < statuses.size(); ++i) {
        if (!statuses[i].ok()) {
          failed = i;
          break;
        }
      }
    } else {
      context.pool = pool;
      for (size_t i = 0; i < policies_.size(); ++i) {
        statuses[i] = policies_[i]->Check(context);
        if (!statuses[i].ok()) {
          failed = i;
          break;
        }
      }
    }
    if (failed != policies_.size()) {
      outcome.verdict.compliant = false;
      outcome.verdict.reason = std::string(policies_[failed]->name()) + ": " +
                               statuses[failed].ToString();
      outcome.provider_report.compliant = false;
      return outcome;
    }
  }

  // ---- Load, relocate, enforce W^X, lock ------------------------------------
  {
    sgx::ScopedPhase phase(accountant, sgx::Phase::kLoading);
    const Bytes canary = drbg_.Generate(8);
    ASSIGN_OR_RETURN(
        LoadResult load,
        EnclaveLoader::Load(*host_->device(), enclave_id_, options_.layout,
                            elf, ByteView(canary.data(), canary.size())));
    outcome.stats.relocations_applied = load.relocations_applied;

    // Inform the host component: it flips page-table permission bits for the
    // loaded span (kernel memory writes) and prevents any further enclave
    // extension. Each request is one enclave exit + re-entry.
    if (accountant) accountant->CountTrampoline();
    RETURN_IF_ERROR(host_->ApplyWxPolicy(enclave_id_, options_.layout,
                                         load.span_pages,
                                         load.executable_pages));
    if (accountant) accountant->CountTrampoline();
    RETURN_IF_ERROR(host_->LockEnclave(enclave_id_));

    outcome.provider_report.compliant = true;
    outcome.provider_report.executable_pages = load.executable_pages;
    load_ = std::move(load);
    loaded_symbols_ = std::move(symbols);
    outcome.load = load_;
  }

  // ---- SGX2 EPCM hardening ---------------------------------------------------
  // Beyond the paper's measured prototype: anchor the W^X split in the EPCM
  // so a malicious host cannot revert it via page tables (the SGX1 attack
  // the paper cites as its reason to require SGX2). Accounted separately —
  // the paper's "Loading and Relocation" column does not include it.
  if (host_->device()->sgx_version() >= 2) {
    sgx::ScopedPhase phase(accountant, sgx::Phase::kWxHardening);
    RETURN_IF_ERROR(
        host_->HardenWxInEpcm(enclave_id_, load_->executable_pages));
  }

  outcome.verdict.compliant = true;
  return outcome;
}

Result<Bytes> EngardeEnclave::SealApprovedProgram() {
  if (approved_image_.empty()) {
    return FailedPreconditionError(
        "nothing to seal: no compliant program has been provisioned");
  }
  const uint64_t key_id = seal_counter_++;
  ASSIGN_OR_RETURN(const crypto::Aes256Key key,
                   host_->device()->EGetkey(enclave_id_, key_id));
  std::array<uint8_t, 12> nonce{};
  const Bytes nonce_bytes = drbg_.Generate(nonce.size());
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());
  const SealedBlob blob =
      Seal(key, key_id, nonce,
           ByteView(approved_image_.data(), approved_image_.size()));
  return blob.Serialize();
}

Status EngardeEnclave::RestoreFromSealed(ByteView sealed_blob) {
  if (load_.has_value()) {
    return FailedPreconditionError(
        "enclave already holds a provisioned program");
  }
  ASSIGN_OR_RETURN(const SealedBlob blob,
                   SealedBlob::Deserialize(sealed_blob));
  ASSIGN_OR_RETURN(const crypto::Aes256Key key,
                   host_->device()->EGetkey(enclave_id_, blob.key_id));
  // A forged/tampered blob, or one sealed by an enclave with a different
  // policy set (different MRENCLAVE -> different key), fails here.
  ASSIGN_OR_RETURN(const Bytes image, Unseal(key, blob));

  // The seal covers a binary this exact EnGarde configuration already judged
  // compliant, so only the structural front door is re-checked before the
  // load path re-runs.
  ASSIGN_OR_RETURN(const elf::ElfFile elf,
                   elf::ElfFile::Parse(ByteView(image.data(), image.size())));
  RETURN_IF_ERROR(elf.ValidateForEnclave());

  sgx::CycleAccountant* accountant = host_->device()->accountant();
  sgx::ScopedPhase phase(accountant, sgx::Phase::kLoading);
  const Bytes canary = drbg_.Generate(8);
  ASSIGN_OR_RETURN(
      LoadResult load,
      EnclaveLoader::Load(*host_->device(), enclave_id_, options_.layout, elf,
                          ByteView(canary.data(), canary.size())));
  RETURN_IF_ERROR(host_->ApplyWxPolicy(enclave_id_, options_.layout,
                                       load.span_pages,
                                       load.executable_pages));
  RETURN_IF_ERROR(host_->LockEnclave(enclave_id_));
  if (host_->device()->sgx_version() >= 2) {
    RETURN_IF_ERROR(host_->HardenWxInEpcm(enclave_id_, load.executable_pages));
  }
  loaded_symbols_ = SymbolHashTable::Build(elf);
  approved_image_ = image;
  load_ = std::move(load);
  return Status::Ok();
}

Result<uint64_t> EngardeEnclave::ExecuteClientProgram(
    uint64_t max_steps, x86::ExecutionObserver* observer) {
  if (!load_.has_value()) {
    return FailedPreconditionError(
        "no client program has been provisioned into this enclave");
  }
  RETURN_IF_ERROR(host_->device()->EEnter(enclave_id_));
  auto memory = host_->device()->MakeEnclaveView(enclave_id_);
  x86::MachineConfig config;
  config.stack_top = load_->stack_top;
  config.fs_base = load_->tls_base;
  config.max_steps = max_steps;
  config.observer = observer;
  x86::Machine machine(memory.get(), config);
  auto result = machine.Run(load_->entry);
  RETURN_IF_ERROR(host_->device()->EExit(enclave_id_));
  return result;
}

}  // namespace engarde::core
