#include "core/session.h"

#include <utility>

#include "core/inspection.h"
#include "crypto/rsa.h"
#include "sgx/cost_model.h"

namespace engarde::core {

ProvisioningSession::ProvisioningSession(EngardeEnclave* enclave,
                                         crypto::DuplexPipe::Endpoint endpoint)
    : enclave_(enclave), endpoint_(endpoint) {}

Status ProvisioningSession::Pump() {
  sgx::CycleAccountant* accountant = enclave_->host_->device()->accountant();
  if (!entered_) {
    // EENTER: the host switches into the enclave to run EnGarde. Charged on
    // the first pump whether or not any input has arrived yet, exactly where
    // the old blocking loop charged it.
    entered_ = true;
    RETURN_IF_ERROR(enclave_->host_->device()->EEnter(enclave_->enclave_id_));
  }
  for (;;) {
    switch (state_) {
      case State::kHandshake: {
        ASSIGN_OR_RETURN(std::optional<Bytes> frame, TryReadFrame(endpoint_));
        if (!frame.has_value()) return Status::Ok();
        RETURN_IF_ERROR(OnWrappedKey(std::move(*frame)));
        break;
      }
      case State::kManifest:
      case State::kBlocks: {
        // External-feed members have no channel of their own: the group
        // session decrypts from the shared channel and injects records.
        if (external_feed_) return Status::Ok();
        sgx::ScopedPhase phase(accountant, sgx::Phase::kChannel);
        ASSIGN_OR_RETURN(std::optional<Bytes> record, channel_->TryReceive());
        if (!record.has_value()) return Status::Ok();
        // Each block record — and the DONE — crosses the enclave boundary
        // through a trampoline. The manifest does not: counting only after a
        // whole record is in keeps dry pumps free, so the totals match the
        // old count-then-block loop.
        if (state_ == State::kBlocks && accountant) {
          accountant->CountTrampoline();
        }
        ASSIGN_OR_RETURN(Message message, ParseMessage(std::move(*record)));
        if (state_ == State::kManifest) {
          RETURN_IF_ERROR(OnManifest(std::move(message)));
        } else if (message.type == MessageType::kDone) {
          RETURN_IF_ERROR(OnDone());
        } else if (message.type == MessageType::kBlock) {
          RETURN_IF_ERROR(OnBlock(std::move(message)));
        } else {
          return ProtocolError("unexpected record type during code transfer");
        }
        break;
      }
      case State::kInspect:
        if (async_barrier_ && streaming_ != nullptr &&
            !streaming_->DecodeIdle()) {
          // Decode tasks for the last pages are still on the pool. Yield to
          // the reactor instead of blocking its sweep; it pumps us again.
          return Status::Ok();
        }
        RETURN_IF_ERROR(RunInspectionAndVerdict());
        break;
      case State::kVerdictPending:
        // Parked for the group-level mutual verification; ReleaseVerdict
        // finishes the member.
        return Status::Ok();
      case State::kDone:
        if (endpoint_.Available() > 0) {
          return ProtocolError("record received after the verdict (replay?)");
        }
        return Status::Ok();
    }
  }
}

Status ProvisioningSession::InjectRecord(Message message) {
  if (!external_feed_) {
    return FailedPreconditionError(
        "session owns its channel; drive it with Pump");
  }
  if (!entered_) {
    // The group session normally pumps every member (charging its EENTER)
    // before any record can arrive; this is a safety net for direct callers.
    entered_ = true;
    RETURN_IF_ERROR(enclave_->host_->device()->EEnter(enclave_->enclave_id_));
  }
  if (state_ != State::kManifest && state_ != State::kBlocks) {
    return ProtocolError("record injected outside the transfer states");
  }
  // Same charges as the owned-channel path in Pump(): the record crosses the
  // enclave boundary in Phase::kChannel, one trampoline per block and per
  // DONE, none for the manifest.
  sgx::CycleAccountant* accountant = enclave_->host_->device()->accountant();
  sgx::ScopedPhase phase(accountant, sgx::Phase::kChannel);
  if (state_ == State::kBlocks && accountant) accountant->CountTrampoline();
  if (state_ == State::kManifest) return OnManifest(std::move(message));
  if (message.type == MessageType::kDone) return OnDone();
  if (message.type == MessageType::kBlock) return OnBlock(std::move(message));
  return ProtocolError("unexpected record type during code transfer");
}

Status ProvisioningSession::OnWrappedKey(Bytes frame) {
  ASSIGN_OR_RETURN(
      const Bytes master_key,
      crypto::RsaDecrypt(enclave_->rsa_.private_key,
                         ByteView(frame.data(), frame.size())));
  if (master_key.size() != 32) {
    return ProtocolError("client AES key must be 256 bits");
  }
  const crypto::SessionKeys keys = crypto::SessionKeys::Derive(
      ByteView(master_key.data(), master_key.size()));
  channel_.emplace(endpoint_, keys, /*is_enclave_side=*/true);
  state_ = State::kManifest;
  return Status::Ok();
}

Status ProvisioningSession::OnManifest(Message message) {
  if (message.type != MessageType::kManifest) {
    return ProtocolError("expected manifest as the first record");
  }
  ASSIGN_OR_RETURN(manifest_,
                   Manifest::Deserialize(ByteView(message.payload.data(),
                                                  message.payload.size())));
  if (manifest_.file_size >
      enclave_->options_.layout.heap_pages * sgx::kPageSize) {
    return ProtocolError("executable exceeds the enclave staging area");
  }
  image_.reserve(manifest_.file_size);
  if (enclave_->options_.streaming_inspection) {
    // The reserve above pins image_'s data pointer for the whole upload, so
    // decode tasks can read staged bytes while later blocks append.
    streaming_ = std::make_unique<StreamingInspector>(
        &image_, manifest_.file_size, enclave_->inspection_pool(),
        enclave_->options_.max_inflight_decode_pages);
  }
  state_ = State::kBlocks;
  return Status::Ok();
}

Status ProvisioningSession::OnBlock(Message message) {
  if (image_.size() + message.payload.size() > manifest_.file_size) {
    return ProtocolError("client sent more bytes than the manifest size");
  }
  // Stage the plaintext incrementally at its final heap offset: the enclave
  // working copy is always exactly the bytes received so far, and no session
  // buffers a complete image it has not yet been sent.
  RETURN_IF_ERROR(enclave_->host_->device()->EnclaveWrite(
      enclave_->enclave_id_,
      enclave_->options_.layout.HeapStart() + image_.size(),
      ByteView(message.payload.data(), message.payload.size())));
  AppendBytes(image_, ByteView(message.payload.data(),
                               message.payload.size()));
  // Kick the incremental front half: plan once the program headers are in,
  // then dispatch every newly completed executable page for decode. The
  // speculation charges no SGX instructions — only this thread's kChannel
  // wall time when it runs inline (no pool).
  if (streaming_ != nullptr) streaming_->OnBytesStaged();
  ++outcome_.stats.blocks_received;
  return Status::Ok();
}

Status ProvisioningSession::OnDone() {
  if (image_.size() != manifest_.file_size) {
    return ProtocolError("client sent fewer bytes than the manifest size");
  }
  // Lifts the in-flight cap and dispatches the remaining chunks; completions
  // cascade on the pool while the reactor keeps sweeping (async barrier) or
  // while this thread proceeds to the barrier wait (blocking drivers).
  if (streaming_ != nullptr) streaming_->OnUploadComplete();
  state_ = State::kInspect;
  return Status::Ok();
}

Status ProvisioningSession::RunInspectionAndVerdict() {
  EngardeEnclave* enclave = enclave_;
  sgx::CycleAccountant* accountant = enclave->host_->device()->accountant();

  // The DONE barrier: every speculative decode must have retired before the
  // staged stages splice its results. Blocking drivers
  // (ProvisioningServer::Drive, RunProvisioning) park here; an async-barrier
  // reactor only reaches this point once DecodeIdle() already held, so the
  // wait is free. Charged to no phase — the workers do the decoding, and
  // their work is uncharged by design.
  if (streaming_ != nullptr) streaming_->WaitDecodeIdle();

  InspectionContext ctx;
  ctx.image = &image_;
  ctx.manifest = &manifest_;
  ctx.policies = &enclave->policies_;
  ctx.pool = enclave->inspection_pool();
  ctx.accountant = accountant;
  ctx.host = enclave->host_;
  ctx.enclave_id = enclave->enclave_id_;
  ctx.layout = &enclave->options_.layout;
  ctx.drbg = &enclave->drbg_;
  ctx.streaming = streaming_.get();
  ctx.verdict_cache = enclave->options_.verdict_cache.get();

  // Hard (non-client-attributable) failures propagate here and terminate the
  // session without a verdict or the EEXIT — the old early-return behavior.
  ASSIGN_OR_RETURN(InspectionResult inspection, InspectionPipeline::Run(ctx));

  outcome_.stage_reports = std::move(inspection.reports);
  if (ctx.insns) {
    outcome_.stats.instruction_count = ctx.insns->size();
    outcome_.stats.insn_buffer_pages = ctx.insns->chunk_allocations();
  } else if (inspection.cache_outcome == VerdictCacheOutcome::kFullHit) {
    // Full verdict-cache hit: no live instruction buffer exists; report the
    // statistics the cold run recorded so clients see identical numbers.
    outcome_.stats.instruction_count = inspection.cached_instruction_count;
    outcome_.stats.insn_buffer_pages = inspection.cached_insn_buffer_pages;
  }
  if (streaming_ != nullptr) {
    const StreamingStats streaming = streaming_->stats();
    outcome_.stats.streaming_text_bytes = streaming.text_bytes_planned;
    outcome_.stats.streaming_bytes_before_done =
        streaming.bytes_decoded_before_done;
    outcome_.stats.streaming_spliced_sections = streaming.spliced_sections;
    outcome_.stats.streaming_fallback_sections = streaming.fallback_sections;
  }

  Verdict& verdict = outcome_.verdict;
  verdict.compliant = inspection.compliant;
  if (hold_verdict_) {
    // Captured before a compliant image moves into the enclave: the
    // actually-inspected identity the group layer cross-checks declared
    // sibling measurements against.
    image_digest_ = crypto::Sha256::Hash(ByteView(image_.data(),
                                                  image_.size()));
  }
  if (inspection.compliant) {
    outcome_.stats.relocations_applied = ctx.load->relocations_applied;
    outcome_.provider_report.compliant = true;
    outcome_.provider_report.executable_pages = ctx.load->executable_pages;
    enclave->approved_image_ = std::move(image_);
    enclave->load_ = std::move(ctx.load);
    enclave->loaded_symbols_ = std::move(ctx.symbols);
    outcome_.load = enclave->load_;
  } else {
    verdict.reason = inspection.reason;
    verdict.rejection = std::move(inspection.rejection);
    outcome_.provider_report.compliant = false;
  }

  if (hold_verdict_) {
    // Group mode: the outcome is complete but nothing commits — no verdict on
    // the wire, no EEXIT — until the group layer has cross-checked every
    // member and calls ReleaseVerdict.
    state_ = State::kVerdictPending;
    return Status::Ok();
  }

  const Bytes verdict_wire = verdict.Serialize();
  RETURN_IF_ERROR(SendMessage(*channel_, MessageType::kVerdict,
                              ByteView(verdict_wire.data(),
                                       verdict_wire.size())));
  RETURN_IF_ERROR(enclave->host_->device()->EExit(enclave->enclave_id_));
  state_ = State::kDone;
  return Status::Ok();
}

Result<Verdict> ProvisioningSession::ReleaseVerdict(
    const std::optional<Rejection>& group_override) {
  if (state_ != State::kVerdictPending) {
    return FailedPreconditionError("no verdict is pending release");
  }
  if (group_override.has_value()) {
    // The group's mutual verification failed: the whole group is rejected, so
    // this member's own verdict — compliant or not — is replaced with the
    // structured group rejection, and any approved program state is dropped
    // (a member of a rejected group must not be runnable).
    Verdict& verdict = outcome_.verdict;
    verdict.compliant = false;
    verdict.reason = group_override->detail;
    verdict.rejection = *group_override;
    outcome_.provider_report.compliant = false;
    outcome_.provider_report.executable_pages.clear();
    outcome_.load.reset();
    enclave_->approved_image_.clear();
    enclave_->load_.reset();
    enclave_->loaded_symbols_.reset();
  }
  if (channel_.has_value()) {
    const Bytes verdict_wire = outcome_.verdict.Serialize();
    RETURN_IF_ERROR(SendMessage(*channel_, MessageType::kVerdict,
                                ByteView(verdict_wire.data(),
                                         verdict_wire.size())));
  }
  RETURN_IF_ERROR(enclave_->host_->device()->EExit(enclave_->enclave_id_));
  state_ = State::kDone;
  return outcome_.verdict;
}

Result<ProvisionOutcome> ProvisioningSession::TakeOutcome() {
  if (!done()) {
    return FailedPreconditionError(
        "provisioning session has not reached a verdict");
  }
  if (outcome_taken_) {
    return FailedPreconditionError("provisioning outcome already taken");
  }
  outcome_taken_ = true;
  return std::move(outcome_);
}

}  // namespace engarde::core
