#include "core/epc_budget.h"

#include <cassert>
#include <cmath>

namespace engarde::core {

namespace {

uint64_t ScaleByRatio(uint64_t physical_pages, double ratio) {
  if (!(ratio > 1.0)) return physical_pages;  // also rejects NaN
  const double scaled = std::floor(static_cast<double>(physical_pages) * ratio);
  return static_cast<uint64_t>(scaled);
}

}  // namespace

EpcBudget::EpcBudget(uint64_t physical_pages, double oversub_ratio,
                     uint64_t session_quota_pages) noexcept
    : physical_pages_(physical_pages),
      oversub_ratio_(oversub_ratio > 1.0 ? oversub_ratio : 1.0),
      virtual_pages_(ScaleByRatio(physical_pages, oversub_ratio)),
      session_quota_(session_quota_pages) {}

bool EpcBudget::TryReserve(uint64_t pages) noexcept {
  if (session_quota_ > 0 && pages > session_quota_) return false;
  const std::lock_guard<std::mutex> lock(mu_);
  if (committed_ + pages > virtual_pages_) return false;
  committed_ += pages;
  if (committed_ > max_committed_) max_committed_ = committed_;
  return true;
}

void EpcBudget::Release(uint64_t pages) noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  if (pages > committed_) {
    ++underflows_;
    assert(pages <= committed_ &&
           "EpcBudget::Release underflow (double release?)");
    committed_ = 0;
    return;
  }
  committed_ -= pages;
}

uint64_t EpcBudget::committed_pages() const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

uint64_t EpcBudget::max_committed_pages() const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_committed_;
}

uint64_t EpcBudget::underflow_count() const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  return underflows_;
}

}  // namespace engarde::core
