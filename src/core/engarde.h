// EnGarde: the mutually-trusted enclave inspection library (the paper's core
// contribution). One EngardeEnclave instance models the in-enclave bootstrap
// the cloud provider loads into a freshly created enclave:
//
//   1. Create()          — the host builds the enclave with the EnGarde
//                          bootstrap (whose image encodes the agreed policy
//                          set, so MRENCLAVE pins the policies), generates the
//                          ephemeral 2048-bit RSA key pair inside, and obtains
//                          a quote binding that key to the measurement.
//   2. SendHello()       — quote + public key go to the client in the clear.
//   3. RunProvisioning() — receives the RSA-wrapped AES key, then the
//                          client's executable in encrypted page-sized
//                          blocks; validates the ELF, enforces code/data page
//                          separation, disassembles with the NaCl-style
//                          decoder into the page-chunked instruction buffer,
//                          builds the symbol hash table, runs every policy
//                          module, and — on compliance — loads, relocates,
//                          applies W^X through the host component and locks
//                          the enclave. Returns the client verdict and the
//                          provider report (compliance bit + executable page
//                          list, nothing else).
//   4. ExecuteClientProgram() — enters the enclave and runs the loaded code
//                          (interpreter-backed; EnGarde itself added no
//                          runtime instrumentation, matching the paper's
//                          zero-runtime-overhead property).
#ifndef ENGARDE_CORE_ENGARDE_H_
#define ENGARDE_CORE_ENGARDE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/inspection.h"
#include "core/loader.h"
#include "core/policy.h"
#include "core/protocol.h"
#include "crypto/channel.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "sgx/attestation.h"
#include "sgx/hostos.h"

namespace engarde::core {

class VerdictCache;

// Default entropy for the in-enclave DRBG. Built out of line: an
// initializer-list default member initializer trips GCC 12's
// -Wmaybe-uninitialized when EngardeOptions is copied at -O2 (the
// class-scope backing array confuses the inliner's tracking).
inline Bytes DefaultEnclaveEntropy() {
  static const uint8_t kSeed[] = {0xe7, 0x6a, 0x2d, 0xe0};
  return Bytes(kSeed, kSeed + sizeof(kSeed));
}

struct EngardeOptions {
  sgx::EnclaveLayout layout;
  size_t rsa_bits = 2048;  // tests dial this down for speed
  // Entropy for the in-enclave DRBG (RSA key, canary). On real hardware this
  // comes from RDRAND inside the enclave.
  Bytes enclave_entropy = DefaultEnclaveEntropy();
  // Worker threads for the inspection pass (sharded disassembly, parallel
  // NaCl rules 1-2, concurrent policy checks). SGX enclaves are
  // multi-threaded via multiple TCS entries, so the in-enclave inspection
  // can scale with cores; verdicts, statistics and per-phase SGX-instruction
  // attribution are bit-for-bit identical at any setting. 1 = the paper's
  // serial pipeline.
  size_t inspection_threads = 1;
  // When set, the enclave uses this externally owned pool instead of creating
  // one (and inspection_threads is ignored). A ProvisioningServer shares one
  // pool across all its enclaves this way. Must outlive the enclave.
  common::ThreadPool* shared_inspection_pool = nullptr;
  // Overlap block upload with speculative page decode: each executable page
  // is dispatched onto the inspection pool the moment its bytes are staged,
  // and the Disassemble stage splices the pre-decoded instructions at the
  // DONE barrier (core/streaming.h). Verdicts, stage reports and per-phase
  // SGX attribution are bit-identical to the staged run at any setting —
  // the speculation charges nothing and falls back to the staged decode on
  // any mismatch. Off = stage the full image before inspecting (PR-5
  // behavior), useful as a baseline.
  bool streaming_inspection = true;
  // Cap on dispatched-but-unmerged speculative page decodes per session
  // before DONE arrives, bounding the memory and pool-queue share a fast
  // uploader can claim ahead of the barrier stages.
  size_t max_inflight_decode_pages = 64;
  // Content-addressed sealed verdict cache (core/verdict_cache.h), shared
  // across every enclave/shard built from these options (the object is
  // thread-safe). Null = no caching. Verdicts, rejection strings and
  // per-phase SGX attribution are bit-identical with or without it; only
  // wall time changes.
  std::shared_ptr<VerdictCache> verdict_cache;
};

// Everything the cloud provider is allowed to learn (threat model,
// Section 3): the compliance bit and "the virtual addresses of the pages
// that contain the client's code".
struct ProviderReport {
  bool compliant = false;
  std::vector<uint64_t> executable_pages;
};

struct ProvisionStats {
  size_t instruction_count = 0;      // #Inst column of Figures 3-5
  size_t insn_buffer_pages = 0;      // malloc-trampoline allocations
  size_t blocks_received = 0;
  size_t relocations_applied = 0;
  // Streaming-inspection telemetry (zero when streaming was off or never
  // engaged). Scheduling-dependent: reported, never equality-gated.
  uint64_t streaming_text_bytes = 0;        // bytes planned for decode
  uint64_t streaming_bytes_before_done = 0; // of those, decoded pre-DONE
  uint64_t streaming_spliced_sections = 0;
  uint64_t streaming_fallback_sections = 0;
};

struct ProvisionOutcome {
  Verdict verdict;                 // sent to the client
  ProviderReport provider_report;  // visible to the host
  ProvisionStats stats;
  std::optional<LoadResult> load;  // set iff compliant
  // One report per inspection stage (execution order); empty when the
  // exchange failed before inspection started.
  std::vector<StageReport> stage_reports;
};

class EngardeEnclave {
 public:
  // Builds the enclave via the host OS and provisions the EnGarde bootstrap.
  // `quoting_enclave` signs the attestation quote. The PolicySet is the
  // mutually-agreed policy configuration.
  static Result<EngardeEnclave> Create(sgx::HostOs* host,
                                       const sgx::QuotingEnclave& quoting,
                                       PolicySet policies,
                                       EngardeOptions options = {});

  // The deterministic bootstrap image for a policy set: version banner plus
  // every policy fingerprint. Both parties can recompute it (and hence the
  // expected MRENCLAVE) independently.
  static Bytes BootstrapImage(const PolicySet& policies);
  // Reference build: the measurement a correctly-provisioned EnGarde enclave
  // with this policy set and layout must have. Clients pin this value.
  static Result<crypto::Sha256Digest> ExpectedMeasurement(
      const PolicySet& policies, const EngardeOptions& options);

  uint64_t enclave_id() const { return enclave_id_; }
  const sgx::Quote& quote() const { return quote_; }
  const crypto::RsaPublicKey& public_key() const {
    return rsa_.public_key;
  }

  // Unwraps a client's RSA-wrapped AES master key with this enclave's
  // ephemeral private key. Used by the group provisioning session, where the
  // leader member's key bootstraps ONE shared secure channel for the whole
  // group instead of one per member.
  Result<Bytes> UnwrapMasterKey(ByteView wrapped) const;

  // Protocol step 1: plaintext hello frame (serialized quote, then key).
  Status SendHello(crypto::DuplexPipe::Endpoint endpoint);
  // The hello bytes SendHello writes (both length-prefixed frames).
  // Deterministic per enclave, so a warm pool can serialize them once at
  // pre-build time and hand them out without re-serializing on the hot path.
  Bytes HelloWire() const;

  // Protocol steps 2..n: runs the full inspection pipeline against whatever
  // the client queued on the pipe, sends the verdict back, and returns the
  // outcome. Policy violations and malformed binaries yield a non-compliant
  // verdict; channel-integrity and protocol failures are hard errors.
  // A thin synchronous driver over ProvisioningSession (core/session.h) —
  // the whole exchange must already be queued on the endpoint.
  Result<ProvisionOutcome> RunProvisioning(
      crypto::DuplexPipe::Endpoint endpoint);

  // Runs the provisioned program inside the enclave. Fails if provisioning
  // has not succeeded. Returns the program's RAX at exit. An optional
  // observer (e.g. core::RuntimeMonitor) receives execution events for
  // runtime policy enforcement — the paper's future-work extension.
  Result<uint64_t> ExecuteClientProgram(
      uint64_t max_steps = 1u << 22,
      x86::ExecutionObserver* observer = nullptr);

  // ---- Sealed program caching ------------------------------------------------
  // After a compliant provisioning, seals the approved executable under an
  // EGETKEY-derived key bound to this enclave's MRENCLAVE. The host stores
  // the blob; the client's code never leaves the enclave in plaintext.
  Result<Bytes> SealApprovedProgram();
  // On a freshly built EnGarde enclave with the *same* measurement (same
  // bootstrap + policy set on the same device), restores a sealed program:
  // verifies + decrypts the blob, re-validates the container, loads,
  // re-applies W^X and locks — without the client round-trip or the full
  // re-inspection (which the seal's trust argument makes redundant).
  Status RestoreFromSealed(ByteView sealed_blob);

  const LoadResult* load_result() const {
    return load_.has_value() ? &*load_ : nullptr;
  }
  // The symbol hash table EnGarde built during inspection (file-vaddr
  // space); present after a compliant provisioning. Runtime policies use it
  // to build target whitelists.
  const SymbolHashTable* loaded_symbols() const {
    return loaded_symbols_.has_value() ? &*loaded_symbols_ : nullptr;
  }

  // The inspection worker pool in effect: the shared server pool when one
  // was injected, else this enclave's own. Null = serial pipeline.
  common::ThreadPool* inspection_pool() const noexcept {
    return options_.shared_inspection_pool != nullptr
               ? options_.shared_inspection_pool
               : inspect_pool_.get();
  }

 private:
  // The provisioning state machine reads the enclave's private key, policy
  // set, layout and DRBG, and deposits the load result on compliance.
  friend class ProvisioningSession;

  EngardeEnclave(sgx::HostOs* host, PolicySet policies, EngardeOptions options,
                 crypto::RsaKeyPair rsa, uint64_t enclave_id,
                 sgx::Quote quote);

  sgx::HostOs* host_;
  PolicySet policies_;
  EngardeOptions options_;
  crypto::RsaKeyPair rsa_;
  uint64_t enclave_id_;
  sgx::Quote quote_;
  crypto::HmacDrbg drbg_;
  std::optional<LoadResult> load_;
  std::optional<SymbolHashTable> loaded_symbols_;
  Bytes approved_image_;  // retained for sealing; empty until compliant
  uint64_t seal_counter_ = 0;
  // Inspection worker pool, modelling the extra TCS threads the enclave
  // dedicates to inspection. Null when inspection_threads <= 1 (the
  // paper-faithful serial pipeline).
  std::unique_ptr<common::ThreadPool> inspect_pool_;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_ENGARDE_H_
