// FrontendGroup: N ProvisioningFrontend reactors sharded over one host OS.
//
// The single-reactor front end (core/frontend.h) serializes every exchange
// through one sweep loop; past a point the reactor itself is the bottleneck,
// not the enclaves. The group splits the connection load across N reactors
// the way SO_REUSEPORT shards a busy accept queue across processes — while
// keeping exactly one of everything that must stay global:
//
//  * one EpcBudget — reservation is all-or-nothing and thread-safe, so the
//    reactors can never jointly overdraw the device into its eviction path;
//  * one WarmEnclavePool — a warm enclave built by (or for) any reactor
//    serves whichever reactor's client arrives first;
//  * one HostOs/SgxDevice — already safe under concurrent reactors via the
//    shared hardware mutex (see sgx/hostos.h), with HostOs::DestroyEnclave
//    reclaiming both device pages and kernel-side records per verdict.
//
// Everything else is per-reactor: connections, sessions, admission FIFO.
// Because each session pumps under its own ScopedAccountant (thread-local
// redirection) and teardown charges the device-wide accountant, per-phase
// SGX attribution stays bit-for-bit identical to a serial Drive of the same
// exchange no matter which reactor runs it or how sweeps interleave — the
// property the group tests and bench_frontend gate on.
//
// Two execution modes:
//
//  * Deterministic (tests, benches over in-memory pipes): the caller owns
//    the only thread, routes arrivals with Dispatch() (round-robin over
//    per-reactor inboxes), and turns the crank with PollOnce()/DrainAll().
//    In-memory pipes are not thread-safe, so this is the ONLY mode they may
//    be used in.
//  * Threaded (tools/engarde-serve, TCP benches): Start() spawns one thread
//    per reactor; each drains its inbox, races the shared Listener attached
//    via AttachListener() (accept(2) dedups kernel-side), sweeps its shard,
//    and — under PoolRefill::kBackground — tops the warm pool back up toward
//    pool_target between sweeps. Stop() joins. Per-connection introspection
//    is owner-thread-only while running; aggregate counters and the budget
//    are safe from anywhere, and everything is readable once Stop() returns.
#ifndef ENGARDE_CORE_FRONTEND_GROUP_H_
#define ENGARDE_CORE_FRONTEND_GROUP_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/enclave_pool.h"
#include "core/epc_budget.h"
#include "core/frontend.h"
#include "net/transport.h"

namespace engarde::core {

struct FrontendGroupOptions {
  // Per-reactor options. epc_reserve_pages is applied ONCE to size the
  // shared budget, not per reactor.
  FrontendOptions frontend;
  // Number of reactors (shards). 1 reproduces the single-reactor front end.
  size_t reactors = 1;
  // kOnAdmission: the warm pool only drains (pre-sharding behavior).
  // kBackground: reactors rebuild toward pool_target between sweeps.
  PoolRefill pool_refill = PoolRefill::kOnAdmission;
  // Warm enclaves to keep shelved under kBackground.
  size_t pool_target = 0;
  // Invoked (from the owning reactor's thread) as each connection reaches a
  // verdict; the outcome is moved out, so TakeOutcome will not see it again.
  std::function<void(size_t reactor, uint64_t connection,
                     const ProvisionOutcome& outcome, bool from_pool)>
      on_verdict;
};

class FrontendGroup {
 public:
  // `host` and `quoting` must outlive the group.
  FrontendGroup(sgx::HostOs* host, const sgx::QuotingEnclave* quoting,
                std::function<PolicySet()> policy_factory,
                FrontendGroupOptions options);
  ~FrontendGroup();

  // Pre-builds `count` warm enclaves against the shared budget.
  Status PrefillPool(size_t count);

  // Routes an arrival round-robin into a reactor's inbox and returns the
  // chosen reactor index. Thread-safe; the connection is Accept()ed (hello
  // or RetryAfter sent) on that reactor's next sweep, in FIFO order.
  size_t Dispatch(std::unique_ptr<net::Transport> transport);

  // Shared accept source for threaded mode; raced by all reactor threads.
  // Must outlive the group; attach before Start().
  void AttachListener(net::Listener* listener);

  // ---- Deterministic mode (caller's thread is the only thread) ------------
  // One sweep of every reactor: inbox accepts, shared-listener accepts,
  // shard PollOnce, verdict harvest, background top-up. Returns total
  // progress. Must not be called between Start() and Stop().
  Result<size_t> PollOnce();
  // Sweeps until a full pass makes no progress.
  Status DrainAll();

  // ---- Threaded mode ------------------------------------------------------
  Status Start();
  // Signals every reactor thread and joins them, then sweeps each shard to
  // quiescence without accepting new arrivals, so verdicted connections whose
  // terminal sweep the shutdown raced past are still harvested and reaped.
  // Afterwards the group is quiescent and fully introspectable. Returns the
  // first hard failure any reactor hit (the group stops sweeping a failed
  // shard but keeps serving the others).
  Status Stop();
  bool running() const noexcept { return running_; }

  // ---- Introspection ------------------------------------------------------
  size_t reactor_count() const noexcept { return shards_.size(); }
  ProvisioningFrontend& reactor(size_t index) {
    return *shards_[index]->frontend;
  }
  const ProvisioningFrontend& reactor(size_t index) const {
    return *shards_[index]->frontend;
  }

  // Aggregates over all shards (safe any time; exact when quiescent).
  size_t connection_count() const;
  size_t done_count() const;
  size_t shed_count() const;
  // Merged shard telemetry, with the shared budget counted once.
  FrontendMetrics metrics() const;

  EpcBudget& budget() noexcept { return *budget_; }
  WarmEnclavePool& pool() noexcept { return *pool_; }

 private:
  // Everything one reactor thread owns besides the shard itself.
  struct Shard {
    std::unique_ptr<ProvisioningFrontend> frontend;
    net::MemoryListener inbox;  // Dispatch() target; thread-safe
  };

  // One sweep of shard `index`; adds to `progress`. Called by the shard's
  // thread (threaded mode) or the caller's (deterministic mode).
  Status SweepShard(size_t index, size_t& progress);
  void HarvestVerdicts(size_t index, size_t& progress);
  void ReactorMain(size_t index);
  void RecordFailure(const Status& failure);

  sgx::HostOs* host_;
  const sgx::QuotingEnclave* quoting_;
  std::function<PolicySet()> policy_factory_;
  FrontendGroupOptions options_;
  std::unique_ptr<EpcBudget> budget_;
  std::unique_ptr<WarmEnclavePool> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  net::Listener* listener_ = nullptr;  // not owned
  std::atomic<size_t> next_shard_{0};
  std::atomic<bool> stop_requested_{false};
  bool running_ = false;
  std::vector<std::thread> threads_;
  std::mutex failure_mu_;
  Status first_failure_;  // guarded by failure_mu_
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_FRONTEND_GROUP_H_
