#include "core/streaming.h"

#include <algorithm>

#include "elf/elf_types.h"
#include "x86/decoder.h"

namespace engarde::core {
namespace {

// The ELF constants the speculative header parse needs. The real parse with
// full validation still happens in StageContainerValidate; this one only has
// to be conservative — any anomaly disables speculation, it never rejects.
constexpr uint8_t kElfMagic[4] = {0x7f, 'E', 'L', 'F'};
constexpr size_t kPhoffOff = 32;
constexpr size_t kPhentsizeOff = 54;
constexpr size_t kPhnumOff = 56;

}  // namespace

StreamingInspector::StreamingInspector(const Bytes* image,
                                       uint64_t expected_size,
                                       common::ThreadPool* pool,
                                       size_t max_inflight)
    : image_(image),
      expected_size_(expected_size),
      pool_(pool),
      max_inflight_(max_inflight > 0 ? max_inflight : 1),
      inline_mode_(pool == nullptr || pool->thread_count() <= 1) {}

StreamingInspector::~StreamingInspector() {
  std::unique_lock<std::mutex> lock(mu_);
  // Undispatched chunks stay undispatched; in-flight ones hold pointers into
  // our chunk table and the session's staging buffer, so wait them out.
  abandoned_ = true;
  cv_.wait(lock, [&] { return inflight_ == 0; });
}

void StreamingInspector::TryPlanLocked() {
  if (planned_ || plan_failed_) return;
  const uint8_t* base = image_->data();
  if (watermark_ < elf::kEhdrSize) return;  // headers not staged yet
  if (!std::equal(kElfMagic, kElfMagic + 4, base) || base[4] != 2 /*ELF64*/ ||
      base[5] != 1 /*little-endian*/) {
    plan_failed_ = true;  // ContainerValidate will deal with it
    return;
  }
  const uint64_t phoff = LoadLe64(base + kPhoffOff);
  const uint16_t phentsize = LoadLe16(base + kPhentsizeOff);
  const uint16_t phnum = LoadLe16(base + kPhnumOff);
  if (phnum == 0 || phentsize != elf::kPhdrSize ||
      phoff > expected_size_ ||
      static_cast<uint64_t>(phnum) * elf::kPhdrSize >
          expected_size_ - phoff) {
    plan_failed_ = true;
    return;
  }
  const uint64_t phdrs_end = phoff + static_cast<uint64_t>(phnum) *
                                         elf::kPhdrSize;
  if (watermark_ < phdrs_end) return;  // phdrs not fully staged yet

  // Executable file ranges from the PF_X PT_LOAD segments.
  struct Range {
    uint64_t begin, end, vaddr;
  };
  std::vector<Range> ranges;
  for (uint16_t i = 0; i < phnum; ++i) {
    const uint8_t* p = base + phoff + i * elf::kPhdrSize;
    if (LoadLe32(p) != elf::kPtLoad) continue;
    if ((LoadLe32(p + 4) & elf::kPfX) == 0) continue;
    const uint64_t offset = LoadLe64(p + 8);
    const uint64_t vaddr = LoadLe64(p + 16);
    const uint64_t filesz = LoadLe64(p + 32);
    if (filesz == 0) continue;
    if (offset > expected_size_ || filesz > expected_size_ - offset) {
      plan_failed_ = true;  // malformed; leave it to the real validator
      return;
    }
    ranges.push_back({offset, offset + filesz, vaddr});
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const Range& a, const Range& b) { return a.begin < b.begin; });
  for (size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i].begin < ranges[i - 1].end) {
      plan_failed_ = true;  // overlapping exec segments: do not speculate
      return;
    }
  }

  // Page-sized chunks at absolute file-offset page boundaries, so a chunk is
  // dispatchable the moment the block carrying its last byte is staged.
  for (const Range& range : ranges) {
    uint64_t begin = range.begin;
    while (begin < range.end) {
      const uint64_t page_end = (begin / kChunkBytes + 1) * kChunkBytes;
      const uint64_t end = std::min<uint64_t>(range.end, page_end);
      Chunk chunk;
      chunk.file_begin = begin;
      chunk.file_end = end;
      chunk.vaddr = range.vaddr + (begin - range.begin);
      chunks_.push_back(std::move(chunk));
      stats_.text_bytes_planned += end - begin;
      begin = end;
    }
  }
  stats_.planned_chunks = chunks_.size();
  planned_ = true;
}

void StreamingInspector::DecodeChunk(const uint8_t* base, Chunk& chunk) {
  const ByteView code(base + chunk.file_begin,
                      chunk.file_end - chunk.file_begin);
  size_t offset = 0;
  bool clean = true;
  while (offset < code.size()) {
    Result<x86::Insn> insn = x86::DecodeOne(code, offset, chunk.vaddr);
    if (!insn.ok()) {
      // Undecodable — or an instruction that straddles the chunk seam. The
      // barrier re-decodes this section through the staged path, so the
      // staged error (and its exact message) is the one that surfaces.
      clean = false;
      break;
    }
    chunk.insns.push_back(*insn);
    offset += insn->length;
  }
  chunk.clean = clean && offset == code.size();
}

void StreamingInspector::CompleteChunkLocked(Chunk& chunk) {
  chunk.completed = true;
  ++stats_.completed_chunks;
  if (chunk.clean) ++stats_.clean_chunks;
  if (!upload_done_) {
    stats_.bytes_decoded_before_done += chunk.file_end - chunk.file_begin;
  }
  --inflight_;
  // Cascade: a retiring task frees a cap slot (or, after DONE, simply makes
  // room), so the next staged chunk dispatches without waiting for another
  // producer call. Inline mode needs no cascade — the dispatch loop that
  // invoked us keeps iterating (recursing here would nest once per chunk).
  if (!abandoned_ && !inline_mode_) DispatchReadyLocked();
  cv_.notify_all();
}

void StreamingInspector::DispatchReadyLocked() {
  const uint8_t* base = image_->data();
  while (dispatched_ < chunks_.size() &&
         chunks_[dispatched_].file_end <= watermark_ &&
         (upload_done_ || inflight_ < max_inflight_)) {
    Chunk& chunk = chunks_[dispatched_++];
    ++inflight_;
    if (inline_mode_) {
      DecodeChunk(base, chunk);
      CompleteChunkLocked(chunk);
    } else {
      pool_->Submit([this, base, &chunk] {
        DecodeChunk(base, chunk);
        std::lock_guard<std::mutex> lock(mu_);
        CompleteChunkLocked(chunk);
      });
    }
  }
}

void StreamingInspector::OnBytesStaged() {
  std::lock_guard<std::mutex> lock(mu_);
  watermark_ = std::min<uint64_t>(image_->size(), expected_size_);
  TryPlanLocked();
  if (planned_ && !abandoned_) DispatchReadyLocked();
}

void StreamingInspector::OnUploadComplete() {
  std::lock_guard<std::mutex> lock(mu_);
  upload_done_ = true;
  watermark_ = std::min<uint64_t>(image_->size(), expected_size_);
  TryPlanLocked();
  if (planned_ && !abandoned_) DispatchReadyLocked();
}

bool StreamingInspector::DecodeIdle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_ == 0 && (dispatched_ == chunks_.size() || !planned_);
}

void StreamingInspector::WaitDecodeIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return inflight_ == 0 && (dispatched_ == chunks_.size() || !planned_);
  });
}

bool StreamingInspector::SpliceSection(uint64_t sec_offset, uint64_t sec_vaddr,
                                       uint64_t size, x86::InsnBuffer& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (size == 0) {
    ++stats_.spliced_sections;
    return true;  // nothing to decode either way
  }
  const auto fallback = [&] {
    ++stats_.fallback_sections;
    return false;
  };
  if (!planned_) return fallback();
  const uint64_t sec_end = sec_offset + size;
  if (sec_vaddr < sec_offset) return fallback();  // mapping would underflow
  const uint64_t delta = sec_vaddr - sec_offset;

  // The chain of chunks covering [sec_offset, sec_end): contiguous, clean,
  // and mapped with the section's own vaddr delta.
  size_t first = chunks_.size();
  for (size_t i = 0; i < chunks_.size(); ++i) {
    if (chunks_[i].file_begin <= sec_offset && sec_offset < chunks_[i].file_end) {
      first = i;
      break;
    }
  }
  if (first == chunks_.size()) return fallback();

  // Validate the whole chain before touching `out`: a partial append would
  // diverge from the staged decode.
  struct Selection {
    const Chunk* chunk;
    size_t begin, end;  // insn index range within the chunk
  };
  std::vector<Selection> selections;
  uint64_t covered = sec_offset;   // file offset validated so far
  uint64_t expect_addr = sec_vaddr;  // next instruction must start here
  for (size_t i = first; i < chunks_.size() && covered < sec_end; ++i) {
    const Chunk& chunk = chunks_[i];
    if (chunk.file_begin > covered) return fallback();  // coverage gap
    if (!chunk.completed || !chunk.clean) return fallback();
    if (chunk.vaddr - chunk.file_begin != delta) return fallback();

    const uint64_t lo = sec_vaddr + (std::max(chunk.file_begin, sec_offset) -
                                     sec_offset);
    const uint64_t hi = sec_vaddr + (std::min(chunk.file_end, sec_end) -
                                     sec_offset);
    Selection sel{&chunk, chunk.insns.size(), chunk.insns.size()};
    bool in_range = false;
    for (size_t k = 0; k < chunk.insns.size(); ++k) {
      const x86::Insn& insn = chunk.insns[k];
      if (insn.addr < lo) continue;
      if (insn.addr >= hi) break;
      // Every selected instruction must butt up against the previous one —
      // the exact tiling sequential decode from the section start produces.
      if (insn.addr != expect_addr) return fallback();
      if (!in_range) {
        sel.begin = k;
        in_range = true;
      }
      sel.end = k + 1;
      expect_addr = insn.addr + insn.length;
    }
    selections.push_back(sel);
    covered = chunk.file_end;
  }
  if (covered < sec_end) return fallback();        // chain ran out early
  if (expect_addr != sec_vaddr + size) return fallback();  // ragged tail

  // The chunks tile the section exactly: append in address order on the
  // caller thread, firing the same InsnBuffer page-allocation trampolines
  // the staged decode would.
  for (const Selection& sel : selections) {
    for (size_t k = sel.begin; k < sel.end; ++k) {
      out.Append(sel.chunk->insns[k]);
    }
  }
  ++stats_.spliced_sections;
  return true;
}

StreamingStats StreamingInspector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace engarde::core
