#include "core/verdict_cache.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>
#include <utility>

#include "common/hex.h"
#include "core/enclave_pool.h"
#include "core/engarde.h"
#include "core/sealing.h"
#include "sgx/hostos.h"

namespace engarde::core {
namespace {

namespace fs = std::filesystem;

// Bumped whenever the sealed plaintext layout changes; an entry with any
// other value is stale and degrades to a counted miss.
constexpr uint32_t kEntrySchema = 1;
constexpr uint32_t kFunctionStoreSchema = 1;
// SealedBlob key id marking verdict-cache artifacts (vs sealed programs,
// whose ids are per-enclave counters).
constexpr uint64_t kVerdictCacheKeyId = 0xe7cac4e1;

constexpr std::string_view kEntrySuffix = ".evc";
constexpr std::string_view kTempSuffix = ".tmp";

void AppendString(Bytes& out, std::string_view s) {
  AppendLe32(out, static_cast<uint32_t>(s.size()));
  AppendBytes(out, ToBytes(s));
}

bool ReadString(ByteReader& reader, std::string& out) {
  uint32_t length = 0;
  ByteView view;
  if (!reader.ReadLe32(length) || !reader.ReadBytes(length, view)) return false;
  out = ToString(view);
  return true;
}

bool ReadDigest(ByteReader& reader, crypto::Sha256Digest& out) {
  ByteView view;
  if (!reader.ReadBytes(out.size(), view)) return false;
  std::copy(view.begin(), view.end(), out.begin());
  return true;
}

// The raw bytes [start, end) if they lie within one text section of `elf`;
// nullopt otherwise (the range is then not provably re-hashable).
std::optional<ByteView> RangeBytes(const elf::ElfFile& elf, uint64_t start,
                                   uint64_t end) {
  if (end <= start) return std::nullopt;
  for (const elf::Shdr* section : elf.TextSections()) {
    if (start >= section->addr &&
        end <= section->addr + section->size) {
      Result<ByteView> content = elf.SectionContent(*section);
      if (!content.ok()) return std::nullopt;
      return content->subspan(start - section->addr, end - start);
    }
  }
  return std::nullopt;
}

Bytes SerializeEntry(const crypto::Sha256Digest& binary_sha,
                     const crypto::Sha256Digest& policy_fp,
                     const crypto::Sha256Digest& library_fp,
                     const CachedVerdict& verdict) {
  Bytes out;
  AppendLe32(out, kEntrySchema);
  AppendBytes(out, crypto::DigestView(binary_sha));
  AppendBytes(out, crypto::DigestView(policy_fp));
  AppendBytes(out, crypto::DigestView(library_fp));
  out.push_back(verdict.compliant ? 1 : 0);
  AppendString(out, verdict.reason);
  out.push_back(verdict.rejection.has_value() ? 1 : 0);
  if (verdict.rejection.has_value()) {
    AppendString(out, verdict.rejection->stage);
    AppendString(out, verdict.rejection->rule);
    AppendLe64(out, verdict.rejection->vaddr);
    AppendString(out, verdict.rejection->detail);
  }
  AppendLe64(out, verdict.instruction_count);
  AppendLe64(out, verdict.insn_buffer_pages);
  AppendLe32(out, static_cast<uint32_t>(verdict.reports.size()));
  for (const StageReport& report : verdict.reports) {
    out.push_back(static_cast<uint8_t>(report.stage));
    out.push_back(static_cast<uint8_t>(report.outcome));
    AppendLe64(out, report.wall_ns);
    AppendLe64(out, report.sgx_instructions);
    AppendString(out, report.detail);
  }
  return out;
}

// Strict parse + fingerprint validation; nullopt = stale/corrupt (counted as
// a tamper reject by the caller).
std::optional<CachedVerdict> ParseEntry(ByteView plaintext,
                                        const crypto::Sha256Digest& binary_sha,
                                        const crypto::Sha256Digest& policy_fp,
                                        const crypto::Sha256Digest& library_fp) {
  ByteReader reader(plaintext);
  uint32_t schema = 0;
  if (!reader.ReadLe32(schema) || schema != kEntrySchema) return std::nullopt;
  crypto::Sha256Digest sha{}, pfp{}, lfp{};
  if (!ReadDigest(reader, sha) || !ReadDigest(reader, pfp) ||
      !ReadDigest(reader, lfp)) {
    return std::nullopt;
  }
  if (sha != binary_sha || pfp != policy_fp || lfp != library_fp) {
    return std::nullopt;
  }
  CachedVerdict verdict;
  uint8_t compliant = 0, has_rejection = 0;
  if (!reader.ReadU8(compliant)) return std::nullopt;
  verdict.compliant = compliant != 0;
  if (!ReadString(reader, verdict.reason)) return std::nullopt;
  if (!reader.ReadU8(has_rejection)) return std::nullopt;
  if (has_rejection != 0) {
    Rejection rejection;
    if (!ReadString(reader, rejection.stage) ||
        !ReadString(reader, rejection.rule) ||
        !reader.ReadLe64(rejection.vaddr) ||
        !ReadString(reader, rejection.detail)) {
      return std::nullopt;
    }
    verdict.rejection = std::move(rejection);
  }
  if (verdict.compliant == verdict.rejection.has_value()) return std::nullopt;
  if (!reader.ReadLe64(verdict.instruction_count) ||
      !reader.ReadLe64(verdict.insn_buffer_pages)) {
    return std::nullopt;
  }
  uint32_t report_count = 0;
  if (!reader.ReadLe32(report_count) || report_count > 16) return std::nullopt;
  verdict.reports.reserve(report_count);
  for (uint32_t i = 0; i < report_count; ++i) {
    StageReport report;
    uint8_t stage = 0, outcome = 0;
    if (!reader.ReadU8(stage) || !reader.ReadU8(outcome) ||
        !reader.ReadLe64(report.wall_ns) ||
        !reader.ReadLe64(report.sgx_instructions) ||
        !ReadString(reader, report.detail)) {
      return std::nullopt;
    }
    if (stage >= static_cast<uint8_t>(StageId::kCount) || outcome > 3) {
      return std::nullopt;
    }
    report.stage = static_cast<StageId>(stage);
    report.outcome = static_cast<StageOutcome>(outcome);
    verdict.reports.push_back(std::move(report));
  }
  return reader.AtEnd() ? std::optional<CachedVerdict>(std::move(verdict))
                        : std::nullopt;
}

Bytes SerializeFunctionStore(const crypto::Sha256Digest& policy_fp,
                             const crypto::Sha256Digest& library_fp,
                             const std::vector<VerifiedFunctionRecord>& records) {
  Bytes out;
  AppendLe32(out, kFunctionStoreSchema);
  AppendBytes(out, crypto::DigestView(policy_fp));
  AppendBytes(out, crypto::DigestView(library_fp));
  AppendLe32(out, static_cast<uint32_t>(records.size()));
  for (const VerifiedFunctionRecord& record : records) {
    AppendString(out, record.name);
    AppendLe64(out, record.start);
    AppendLe64(out, record.end);
    AppendLe64(out, record.hashed_end);
    AppendBytes(out, crypto::DigestView(record.digest));
  }
  return out;
}

std::optional<std::vector<VerifiedFunctionRecord>> ParseFunctionStore(
    ByteView plaintext, const crypto::Sha256Digest& policy_fp,
    const crypto::Sha256Digest& library_fp) {
  ByteReader reader(plaintext);
  uint32_t schema = 0;
  if (!reader.ReadLe32(schema) || schema != kFunctionStoreSchema) {
    return std::nullopt;
  }
  crypto::Sha256Digest pfp{}, lfp{};
  if (!ReadDigest(reader, pfp) || !ReadDigest(reader, lfp)) return std::nullopt;
  if (pfp != policy_fp || lfp != library_fp) return std::nullopt;
  uint32_t count = 0;
  if (!reader.ReadLe32(count)) return std::nullopt;
  std::vector<VerifiedFunctionRecord> records;
  records.reserve(std::min<uint32_t>(count, 4096));
  for (uint32_t i = 0; i < count; ++i) {
    VerifiedFunctionRecord record;
    if (!ReadString(reader, record.name) || !reader.ReadLe64(record.start) ||
        !reader.ReadLe64(record.end) || !reader.ReadLe64(record.hashed_end) ||
        !ReadDigest(reader, record.digest)) {
      return std::nullopt;
    }
    records.push_back(std::move(record));
  }
  if (!reader.AtEnd()) return std::nullopt;
  return records;
}

}  // namespace

VerdictCache::VerdictCache(VerdictCacheOptions options, crypto::Aes256Key key,
                           crypto::Sha256Digest policy_fp,
                           crypto::Sha256Digest library_fp)
    : options_(std::move(options)),
      key_(key),
      policy_fp_(policy_fp),
      library_fp_(library_fp) {}

Result<std::shared_ptr<VerdictCache>> VerdictCache::Create(
    VerdictCacheOptions options, const PolicySet& policies,
    const sgx::EnclaveLayout& layout) {
  if (options.directory.empty()) {
    return InvalidArgumentError("verdict cache requires a directory");
  }
  std::error_code ec;
  fs::create_directories(options.directory, ec);
  if (ec) {
    return InternalError("cannot create verdict cache directory " +
                         options.directory + ": " + ec.message());
  }

  // Fingerprints: the policy dimension covers every module's configuration,
  // the library dimension only the reference databases, so a library upgrade
  // and a policy reconfiguration invalidate independently (and visibly — the
  // plaintext embeds both).
  const std::string policy_text = PolicySetFingerprint(policies);
  const crypto::Sha256Digest policy_fp =
      crypto::Sha256::Hash(ByteView(ToBytes(policy_text)));
  std::string library_text;
  for (const auto& policy : policies) {
    library_text += policy->LibraryFingerprint();
    library_text += '\n';
  }
  const crypto::Sha256Digest library_fp =
      crypto::Sha256::Hash(ByteView(ToBytes(library_text)));

  // Seal-key derivation, once, on a scratch device (the ExpectedMeasurement
  // idiom): build the EnGarde bootstrap for this policy set and run EGETKEY
  // against it. The key is thereby bound to the policy-set MRENCLAVE — an
  // entry sealed under a different policy set or layout simply fails its
  // MAC — and no live session's accountant observes the derivation charges.
  const Bytes bootstrap = EngardeEnclave::BootstrapImage(policies);
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = layout.TotalPages() + 8});
  sgx::HostOs host(&device);
  ASSIGN_OR_RETURN(
      const uint64_t enclave_id,
      host.BuildEnclave(layout, ByteView(bootstrap.data(), bootstrap.size())));
  ASSIGN_OR_RETURN(const crypto::Aes256Key key,
                   device.EGetkey(enclave_id, kVerdictCacheKeyId));

  std::shared_ptr<VerdictCache> cache(
      new VerdictCache(std::move(options), key, policy_fp, library_fp));

  // Seed the LRU index from entry mtimes and sweep stray temp files (a crash
  // mid-publish leaves at most one; it was never visible to readers).
  std::vector<std::pair<fs::file_time_type, std::pair<std::string, uint64_t>>>
      found;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(cache->options_.directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > kTempSuffix.size() &&
        name.compare(name.size() - kTempSuffix.size(), kTempSuffix.size(),
                     kTempSuffix) == 0) {
      fs::remove(entry.path(), ec);
      continue;
    }
    if (name.size() > kEntrySuffix.size() &&
        name.compare(name.size() - kEntrySuffix.size(), kEntrySuffix.size(),
                     kEntrySuffix) == 0) {
      found.emplace_back(
          entry.last_write_time(ec),
          std::make_pair(name, static_cast<uint64_t>(entry.file_size(ec))));
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  {
    const std::lock_guard<std::mutex> lock(cache->mu_);
    for (auto& [mtime, name_bytes] : found) {
      auto& [name, bytes] = name_bytes;
      cache->lru_.push_back(name);
      cache->index_.emplace(
          name, IndexEntry{std::prev(cache->lru_.end()), bytes});
      cache->bytes_sealed_.fetch_add(bytes, std::memory_order_relaxed);
    }
    cache->EvictPastCapacityLocked();
  }
  cache->LoadFunctionStore();
  return cache;
}

std::string VerdictCache::EntryFileName(
    const crypto::Sha256Digest& binary_sha) const {
  crypto::Sha256 hash;
  hash.Update(ByteView(ToBytes("engarde-verdict-entry/1")));
  hash.Update(crypto::DigestView(policy_fp_));
  hash.Update(crypto::DigestView(library_fp_));
  hash.Update(crypto::DigestView(binary_sha));
  const crypto::Sha256Digest name = hash.Finalize();
  return HexEncode(crypto::DigestView(name)) + std::string(kEntrySuffix);
}

std::string VerdictCache::EntryPathFor(
    const crypto::Sha256Digest& binary_sha) const {
  return (fs::path(options_.directory) / EntryFileName(binary_sha)).string();
}

std::string VerdictCache::FunctionStorePath() const {
  crypto::Sha256 hash;
  hash.Update(ByteView(ToBytes("engarde-fn-store/1")));
  hash.Update(crypto::DigestView(policy_fp_));
  hash.Update(crypto::DigestView(library_fp_));
  const crypto::Sha256Digest name = hash.Finalize();
  return (fs::path(options_.directory) /
          ("functions-" + HexEncode(crypto::DigestView(name)).substr(0, 16) +
           ".evcfn"))
      .string();
}

Bytes VerdictCache::Seal(ByteView plaintext) const {
  // SIV-style deterministic nonce: derived from the plaintext, so the only
  // way to repeat a (key, nonce) pair is to re-seal the identical plaintext,
  // which reuses the keystream on identical bytes — harmless.
  crypto::Sha256 nonce_hash;
  nonce_hash.Update(ByteView(ToBytes("engarde-evc-nonce/1")));
  nonce_hash.Update(plaintext);
  const crypto::Sha256Digest nonce_digest = nonce_hash.Finalize();
  std::array<uint8_t, 12> nonce{};
  std::copy_n(nonce_digest.begin(), nonce.size(), nonce.begin());
  return core::Seal(key_, kVerdictCacheKeyId, nonce, plaintext).Serialize();
}

Bytes VerdictCache::SealForTesting(ByteView plaintext) const {
  return Seal(plaintext);
}

Result<Bytes> VerdictCache::UnsealFile(const std::string& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("verdict cache entry unreadable: " + path);
  Bytes wire((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  ASSIGN_OR_RETURN(const SealedBlob blob,
                   SealedBlob::Deserialize(ByteView(wire.data(), wire.size())));
  return Unseal(key_, blob);
}

Status VerdictCache::PublishLocked(const std::string& path,
                                   const Bytes& sealed) {
  const std::string temp = path + std::string(kTempSuffix);
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return InternalError("cannot write " + temp);
    out.write(reinterpret_cast<const char*>(sealed.data()),
              static_cast<std::streamsize>(sealed.size()));
    if (!out) {
      std::error_code ec;
      fs::remove(temp, ec);
      return InternalError("short write to " + temp);
    }
  }
  // Atomic publish: readers see the old entry or the new one, never a torn
  // prefix. (And an unsealable torn file would only count a tamper miss.)
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    return InternalError("cannot publish " + path);
  }
  return Status::Ok();
}

void VerdictCache::TouchLocked(const std::string& name) {
  const auto it = index_.find(name);
  if (it == index_.end()) return;
  lru_.splice(lru_.end(), lru_, it->second.lru);
}

void VerdictCache::RemoveEntryLocked(const std::string& name) {
  const auto it = index_.find(name);
  if (it == index_.end()) return;
  bytes_sealed_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
  lru_.erase(it->second.lru);
  index_.erase(it);
  std::error_code ec;
  fs::remove(fs::path(options_.directory) / name, ec);
}

void VerdictCache::EvictPastCapacityLocked() {
  if (options_.capacity == 0) return;
  while (index_.size() > options_.capacity && !lru_.empty()) {
    const std::string victim = lru_.front();
    RemoveEntryLocked(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<CachedVerdict> VerdictCache::Probe(
    const crypto::Sha256Digest& binary_sha) {
  const std::string name = EntryFileName(binary_sha);
  const std::lock_guard<std::mutex> lock(mu_);
  if (index_.find(name) == index_.end()) return std::nullopt;
  const std::string path =
      (fs::path(options_.directory) / name).string();
  const Result<Bytes> plaintext = UnsealFile(path);
  if (!plaintext.ok()) {
    // Bit-flip, truncation, wrong key (other policy set / library db /
    // layout): silent counted miss, and the poisoned file is dropped so the
    // next probe goes straight to cold inspection.
    CountTamper();
    RemoveEntryLocked(name);
    return std::nullopt;
  }
  std::optional<CachedVerdict> verdict = ParseEntry(
      ByteView(plaintext->data(), plaintext->size()), binary_sha, policy_fp_,
      library_fp_);
  if (!verdict.has_value()) {
    CountTamper();
    RemoveEntryLocked(name);
    return std::nullopt;
  }
  TouchLocked(name);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return verdict;
}

void VerdictCache::Store(const crypto::Sha256Digest& binary_sha,
                         const CachedVerdict& verdict) {
  const Bytes sealed =
      Seal(ByteView(SerializeEntry(binary_sha, policy_fp_, library_fp_,
                                   verdict)));
  const std::string name = EntryFileName(binary_sha);
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string path = (fs::path(options_.directory) / name).string();
  if (!PublishLocked(path, sealed).ok()) return;  // disk trouble = no caching
  const auto it = index_.find(name);
  if (it != index_.end()) {
    bytes_sealed_.fetch_add(sealed.size(), std::memory_order_relaxed);
    bytes_sealed_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    it->second.bytes = sealed.size();
    TouchLocked(name);
  } else {
    lru_.push_back(name);
    index_.emplace(name, IndexEntry{std::prev(lru_.end()),
                                    static_cast<uint64_t>(sealed.size())});
    bytes_sealed_.fetch_add(sealed.size(), std::memory_order_relaxed);
    EvictPastCapacityLocked();
  }
}

std::map<uint64_t, uint64_t> VerdictCache::ResolveReuse(
    const SymbolHashTable& symbols, const elf::ElfFile& elf) const {
  std::vector<VerifiedFunctionRecord> records;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    records = fn_records_;
  }
  std::map<uint64_t, uint64_t> reuse;
  for (const VerifiedFunctionRecord& record : records) {
    // Reuse demands the function sit at the identical [start, end) — a
    // shifted or resized function re-hashes cold (its relocated bytes would
    // differ anyway), and an unchanged `end` also proves no new function
    // start appeared inside the body (ends are derived from the next start).
    const SymbolHashTable::Function* fn = symbols.FunctionAt(record.start);
    if (fn == nullptr || fn->name != record.name ||
        fn->start != record.start || fn->end != record.end) {
      continue;
    }
    const std::optional<ByteView> bytes =
        RangeBytes(elf, record.start, record.hashed_end);
    if (!bytes.has_value()) continue;
    if (crypto::Sha256::Hash(*bytes) == record.digest) {
      reuse.emplace(record.start, record.hashed_end);
    }
  }
  return reuse;
}

void VerdictCache::MergeVerifiedFunctions(
    const std::vector<std::pair<uint64_t, uint64_t>>& ranges,
    const SymbolHashTable& symbols, const elf::ElfFile& elf) {
  std::vector<VerifiedFunctionRecord> fresh;
  fresh.reserve(ranges.size());
  for (const auto& [start, hashed_end] : ranges) {
    const SymbolHashTable::Function* fn = symbols.FunctionAt(start);
    if (fn == nullptr) continue;
    const std::optional<ByteView> bytes = RangeBytes(elf, start, hashed_end);
    if (!bytes.has_value()) continue;
    VerifiedFunctionRecord record;
    record.name = fn->name;
    record.start = start;
    record.end = fn->end;
    record.hashed_end = hashed_end;
    record.digest = crypto::Sha256::Hash(*bytes);
    fresh.push_back(std::move(record));
  }
  if (fresh.empty()) return;

  const std::lock_guard<std::mutex> lock(mu_);
  for (VerifiedFunctionRecord& record : fresh) {
    const auto existing = std::find_if(
        fn_records_.begin(), fn_records_.end(),
        [&](const VerifiedFunctionRecord& r) {
          return r.name == record.name && r.start == record.start;
        });
    if (existing != fn_records_.end()) {
      *existing = std::move(record);
    } else {
      fn_records_.push_back(std::move(record));
    }
  }
  if (options_.max_function_records > 0 &&
      fn_records_.size() > options_.max_function_records) {
    fn_records_.erase(fn_records_.begin(),
                      fn_records_.begin() +
                          static_cast<ptrdiff_t>(fn_records_.size() -
                                                 options_.max_function_records));
  }
  const Bytes sealed = Seal(
      ByteView(SerializeFunctionStore(policy_fp_, library_fp_, fn_records_)));
  if (!PublishLocked(FunctionStorePath(), sealed).ok()) return;
  bytes_sealed_.fetch_add(sealed.size(), std::memory_order_relaxed);
  bytes_sealed_.fetch_sub(fn_store_bytes_, std::memory_order_relaxed);
  fn_store_bytes_ = sealed.size();
}

void VerdictCache::LoadFunctionStore() {
  const std::string path = FunctionStorePath();
  std::error_code ec;
  if (!fs::exists(path, ec)) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const Result<Bytes> plaintext = UnsealFile(path);
  std::optional<std::vector<VerifiedFunctionRecord>> records;
  if (plaintext.ok()) {
    records = ParseFunctionStore(ByteView(plaintext->data(), plaintext->size()),
                                 policy_fp_, library_fp_);
  }
  if (!records.has_value()) {
    // Tampered/stale function store: reset it. Every re-upload re-hashes
    // cold until compliant runs repopulate it — a counted miss, never a
    // wrong reuse.
    CountTamper();
    fs::remove(path, ec);
    return;
  }
  fn_records_ = std::move(*records);
  fn_store_bytes_ = static_cast<uint64_t>(fs::file_size(path, ec));
  bytes_sealed_.fetch_add(fn_store_bytes_, std::memory_order_relaxed);
}

VerdictCacheStats VerdictCache::stats() const {
  VerdictCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.partial_hits = partial_hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.tamper_rejects = tamper_rejects_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.bytes_sealed = bytes_sealed_.load(std::memory_order_relaxed);
  return stats;
}

size_t VerdictCache::entry_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

}  // namespace engarde::core
