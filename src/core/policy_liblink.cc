#include "core/policy_liblink.h"

#include <mutex>
#include <set>
#include <unordered_map>

#include "common/hex.h"
#include "common/thread_pool.h"

namespace engarde::core {

std::string LibraryLinkingPolicy::Fingerprint() const {
  // The memoization/caching knobs do not change what is accepted, only how
  // fast, so they are deliberately not part of the fingerprint.
  return "library-linking(" + library_name_ + "," +
         HexEncode(crypto::DigestView(db_.DbDigest())) + ")";
}

std::string LibraryLinkingPolicy::LibraryFingerprint() const {
  return library_name_ + ":" + HexEncode(crypto::DigestView(db_.DbDigest()));
}

Status LibraryLinkingPolicy::CheckRange(const PolicyContext& context,
                                        size_t begin, size_t end,
                                        size_t* bad_index) const {
  const x86::InsnBuffer& insns = *context.insns;
  const SymbolHashTable& symbols = *context.symbols;
  std::set<uint64_t> verified;  // function starts already checked (memoized)
  // Digest cache: one SHA-256 per distinct call target instead of one per
  // call site. Local to the range, so shards never share mutable state.
  std::unordered_map<uint64_t, crypto::Sha256Digest> digests;
  // Targets this shard already logged to context.reuse_log (the verdict
  // cache dedups across shards; this just bounds the log's growth).
  std::set<uint64_t> deposited;

  for (size_t site = begin; site < end; ++site) {
    const x86::Insn& insn = insns[site];
    if (insn.mnemonic != x86::Mnemonic::kCall) continue;
    *bad_index = site;
    const uint64_t target = insn.BranchTarget();
    if (options_.memoize_functions && verified.count(target) != 0) continue;

    // "If the target does not exist in the symbol hash table the check will
    // mark the function call as invalid."
    const SymbolHashTable::Function* fn = symbols.FunctionAt(target);
    if (fn == nullptr) {
      return PolicyViolationError(
          "direct call [" + insn.ToString() +
          "] targets an address with no symbol-table entry");
    }

    // Only functions the library database names are version-checked;
    // application-private functions are outside this policy's scope.
    const crypto::Sha256Digest* expected = db_.Lookup(fn->name);
    if (options_.memoize_functions) verified.insert(target);
    if (expected == nullptr) continue;

    // Cross-session reuse (core/verdict_cache.h): this target's bytes are
    // provably unchanged since a prior verification against the same
    // database. The symbol-table lookup above and the instruction-boundary
    // check here still run live — only the body-hash walk is skipped — so
    // rejection strings and the lowest-index-violation reduction are
    // bit-identical to a cold walk.
    if (context.liblink_reuse != nullptr) {
      const auto reusable = context.liblink_reuse->find(target);
      if (reusable != context.liblink_reuse->end()) {
        if (insns.IndexOfAddr(target) == x86::InsnBuffer::npos) {
          return PolicyViolationError("direct call [" + insn.ToString() +
                                      "] targets a non-instruction address");
        }
        if (context.reuse_log != nullptr && deposited.insert(target).second) {
          context.reuse_log->Add(target, reusable->second);
        }
        continue;
      }
    }

    // Hash the function body the way the paper describes: "the policy module
    // sequentially reads instructions starting from the computed target
    // address and stops when it comes across an instruction that is at the
    // beginning of another function", consulting the symbol hash table per
    // instruction. (No per-function memoisation unless the caller opts in —
    // the paper's check re-hashes on every call site, and so do we.)
    const crypto::Sha256Digest* actual = nullptr;
    crypto::Sha256Digest computed;
    bool freshly_hashed = false;
    uint64_t hashed_end = 0;  // one past the last byte the walk hashed
    if (options_.cache_function_digests) {
      const auto cached = digests.find(target);
      if (cached != digests.end()) actual = &cached->second;
    }
    if (actual == nullptr) {
      size_t index = insns.IndexOfAddr(target);
      if (index == x86::InsnBuffer::npos) {
        return PolicyViolationError("direct call [" + insn.ToString() +
                                    "] targets a non-instruction address");
      }
      crypto::Sha256 hash;
      for (; index < insns.size(); ++index) {
        const x86::Insn& body_insn = insns[index];
        if (body_insn.addr != target &&
            symbols.IsFunctionStart(body_insn.addr)) {
          break;
        }
        if (body_insn.addr >= fn->end) break;  // section-end cap
        ASSIGN_OR_RETURN(const ByteView bytes,
                         context.TextBytes(body_insn.addr, body_insn.length));
        hash.Update(bytes);
        hashed_end = body_insn.addr + body_insn.length;
      }
      computed = hash.Finalize();
      freshly_hashed = true;
      if (options_.cache_function_digests) {
        actual = &digests.emplace(target, computed).first->second;
      } else {
        actual = &computed;
      }
    }
    if (!ConstantTimeEqual(crypto::DigestView(*actual),
                           crypto::DigestView(*expected))) {
      return PolicyViolationError(
          "function " + fn->name + " does not match the required " +
          library_name_ + " implementation (wrong library version?)");
    }
    // A fresh walk just matched the database: record exactly what it hashed
    // so a future upload with these bytes unchanged can skip the walk.
    if (freshly_hashed && context.reuse_log != nullptr &&
        hashed_end > target && deposited.insert(target).second) {
      context.reuse_log->Add(target, hashed_end);
    }
  }
  return Status::Ok();
}

Status LibraryLinkingPolicy::Check(const PolicyContext& context) const {
  const x86::InsnBuffer& insns = *context.insns;
  common::ThreadPool* pool = context.pool;
  constexpr size_t kGrain = 2048;
  size_t bad_index = x86::InsnBuffer::npos;
  if (pool == nullptr || pool->thread_count() <= 1 ||
      insns.size() < 2 * kGrain) {
    const Status status = CheckRange(context, 0, insns.size(), &bad_index);
    if (!status.ok() && context.violation_out != nullptr &&
        bad_index != x86::InsnBuffer::npos) {
      context.violation_out->vaddr = insns[bad_index].addr;
    }
    return status;
  }

  // Sharded scan. Each shard memoizes/caches locally, so outcomes cannot
  // depend on shard boundaries; the violation at the lowest call-site index
  // wins, which is exactly the serial walk's first error.
  std::mutex mu;
  size_t first_bad = x86::InsnBuffer::npos;
  Status first_status = Status::Ok();
  pool->ParallelFor(0, insns.size(), kGrain, [&](size_t begin, size_t end) {
    size_t shard_bad = x86::InsnBuffer::npos;
    const Status status = CheckRange(context, begin, end, &shard_bad);
    if (status.ok()) return;
    std::lock_guard<std::mutex> lock(mu);
    if (shard_bad < first_bad) {
      first_bad = shard_bad;
      first_status = status;
    }
  });
  if (!first_status.ok() && context.violation_out != nullptr &&
      first_bad != x86::InsnBuffer::npos) {
    context.violation_out->vaddr = insns[first_bad].addr;
  }
  return first_status;
}

}  // namespace engarde::core
