#include "core/policy_liblink.h"

#include <set>

#include "common/hex.h"

namespace engarde::core {

std::string LibraryLinkingPolicy::Fingerprint() const {
  // The memoization knob does not change what is accepted, only how fast,
  // so it is deliberately not part of the fingerprint.
  return "library-linking(" + library_name_ + "," +
         HexEncode(crypto::DigestView(db_.DbDigest())) + ")";
}

Status LibraryLinkingPolicy::Check(const PolicyContext& context) const {
  const x86::InsnBuffer& insns = *context.insns;
  const SymbolHashTable& symbols = *context.symbols;
  std::set<uint64_t> verified;  // function starts already checked (memoized)

  for (const x86::Insn& insn : insns) {
    if (insn.mnemonic != x86::Mnemonic::kCall) continue;
    const uint64_t target = insn.BranchTarget();
    if (options_.memoize_functions && verified.count(target) != 0) continue;

    // "If the target does not exist in the symbol hash table the check will
    // mark the function call as invalid."
    const SymbolHashTable::Function* fn = symbols.FunctionAt(target);
    if (fn == nullptr) {
      return PolicyViolationError(
          "direct call [" + insn.ToString() +
          "] targets an address with no symbol-table entry");
    }

    // Only functions the library database names are version-checked;
    // application-private functions are outside this policy's scope.
    const crypto::Sha256Digest* expected = db_.Lookup(fn->name);
    if (options_.memoize_functions) verified.insert(target);
    if (expected == nullptr) continue;

    // Hash the function body the way the paper describes: "the policy module
    // sequentially reads instructions starting from the computed target
    // address and stops when it comes across an instruction that is at the
    // beginning of another function", consulting the symbol hash table per
    // instruction. (No per-function memoisation — the paper's check re-hashes
    // on every call site, and so do we.)
    size_t index = insns.IndexOfAddr(target);
    if (index == x86::InsnBuffer::npos) {
      return PolicyViolationError("direct call [" + insn.ToString() +
                                  "] targets a non-instruction address");
    }
    crypto::Sha256 hash;
    for (; index < insns.size(); ++index) {
      const x86::Insn& body_insn = insns[index];
      if (body_insn.addr != target && symbols.IsFunctionStart(body_insn.addr)) {
        break;
      }
      if (body_insn.addr >= fn->end) break;  // section-end cap
      ASSIGN_OR_RETURN(const ByteView bytes,
                       context.TextBytes(body_insn.addr, body_insn.length));
      hash.Update(bytes);
    }
    const crypto::Sha256Digest actual = hash.Finalize();
    if (!ConstantTimeEqual(crypto::DigestView(actual),
                           crypto::DigestView(*expected))) {
      return PolicyViolationError(
          "function " + fn->name + " does not match the required " +
          library_name_ + " implementation (wrong library version?)");
    }
  }
  return Status::Ok();
}

}  // namespace engarde::core
