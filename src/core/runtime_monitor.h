// Runtime policy enforcement — the extension the paper sketches but does not
// build (Section 1: "One can also imagine an extension of EnGarde that
// instruments client code to enforce policies at runtime, but our current
// implementation only implements support for static code inspection").
//
// The RuntimeMonitor attaches to the enclave's execution (the interpreter's
// ExecutionObserver hooks) and enforces dynamic policies that static
// inspection cannot express:
//
//   * ShadowStackPolicy      — backward-edge CFI: every RET must return to
//                              the address its CALL pushed. Complements the
//                              static IFCC policy, which protects only the
//                              forward edge.
//   * IndirectTargetPolicy   — dynamic forward-edge CFI: indirect calls and
//                              jumps may only land on a whitelist (function
//                              entries + jump-table entries from the symbol
//                              hash table EnGarde built at provisioning).
//   * InstructionBudgetPolicy — SLA metering: aborts a run that exceeds the
//                              agreed instruction budget.
//
// Violations abort execution with POLICY_VIOLATION, and the monitor records
// which policy fired and where.
#ifndef ENGARDE_CORE_RUNTIME_MONITOR_H_
#define ENGARDE_CORE_RUNTIME_MONITOR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/symbol_table.h"
#include "x86/interp.h"

namespace engarde::core {

class RuntimePolicy {
 public:
  virtual ~RuntimePolicy() = default;
  virtual std::string_view name() const = 0;

  virtual Status OnInstruction(const x86::Insn& insn) {
    (void)insn;
    return Status::Ok();
  }
  virtual Status OnControlTransfer(x86::ExecutionObserver::TransferKind kind,
                                   uint64_t site, uint64_t target,
                                   uint64_t return_addr) {
    (void)kind;
    (void)site;
    (void)target;
    (void)return_addr;
    return Status::Ok();
  }
  // Called when a fresh run starts (reset any per-run state).
  virtual void OnRunStart() {}
};

// Backward-edge CFI via a shadow stack maintained outside the enclave's own
// (attacker-writable) stack.
class ShadowStackPolicy : public RuntimePolicy {
 public:
  std::string_view name() const override { return "shadow-stack"; }
  void OnRunStart() override { shadow_.clear(); }
  Status OnControlTransfer(x86::ExecutionObserver::TransferKind kind,
                           uint64_t site, uint64_t target,
                           uint64_t return_addr) override;

  size_t depth() const { return shadow_.size(); }

 private:
  std::vector<uint64_t> shadow_;
};

// Forward-edge CFI: indirect transfers must land on whitelisted addresses.
class IndirectTargetPolicy : public RuntimePolicy {
 public:
  explicit IndirectTargetPolicy(std::set<uint64_t> allowed_targets)
      : allowed_(std::move(allowed_targets)) {}

  // Builds the whitelist from the provisioning-time symbol hash table,
  // rebased to where the program was loaded.
  static IndirectTargetPolicy FromSymbols(const SymbolHashTable& symbols,
                                          uint64_t load_base);

  std::string_view name() const override { return "indirect-target"; }
  Status OnControlTransfer(x86::ExecutionObserver::TransferKind kind,
                           uint64_t site, uint64_t target,
                           uint64_t return_addr) override;

 private:
  std::set<uint64_t> allowed_;
};

// SLA metering: cap the instructions one run may execute.
class InstructionBudgetPolicy : public RuntimePolicy {
 public:
  explicit InstructionBudgetPolicy(uint64_t budget) : budget_(budget) {}

  std::string_view name() const override { return "instruction-budget"; }
  void OnRunStart() override { executed_ = 0; }
  Status OnInstruction(const x86::Insn& insn) override;

  uint64_t executed() const { return executed_; }

 private:
  uint64_t budget_;
  uint64_t executed_ = 0;
};

// Fans interpreter events out to the registered policies. Attach via
// MachineConfig::observer (or EngardeEnclave::ExecuteClientProgram).
class RuntimeMonitor : public x86::ExecutionObserver {
 public:
  RuntimeMonitor() = default;

  void AddPolicy(std::unique_ptr<RuntimePolicy> policy) {
    policies_.push_back(std::move(policy));
  }
  size_t policy_count() const { return policies_.size(); }

  // Resets per-run policy state; call before each execution.
  void BeginRun();

  Status OnInstruction(const x86::Insn& insn) override;
  Status OnControlTransfer(TransferKind kind, uint64_t site, uint64_t target,
                           uint64_t return_addr) override;

  // Set when a policy aborted the run.
  const std::string& violation() const { return violation_; }
  uint64_t transfers_observed() const { return transfers_; }

 private:
  Status Record(std::string_view policy, const Status& status);

  std::vector<std::unique_ptr<RuntimePolicy>> policies_;
  std::string violation_;
  uint64_t transfers_ = 0;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_RUNTIME_MONITOR_H_
