#include "core/policy_stackprot.h"

#include <sstream>
#include <vector>

namespace engarde::core {
namespace {

using x86::Insn;
using x86::Mnemonic;
using x86::OperandKind;
using x86::Segment;

// mov %fs:<canary_offset>, %REG — the canary load. Returns the destination
// register, or -1.
int CanaryLoadDest(const Insn& insn, int32_t canary_offset) {
  if (insn.mnemonic != Mnemonic::kMov) return -1;
  if (insn.dst.kind != OperandKind::kReg) return -1;
  if (insn.src.kind != OperandKind::kMem) return -1;
  if (insn.src.mem.segment != Segment::kFs) return -1;
  if (!insn.src.mem.IsAbsolute() || insn.src.mem.disp != canary_offset) {
    return -1;
  }
  return insn.dst.reg;
}

// A stack frame slot: base register + displacement.
struct Slot {
  uint8_t base = 0;
  int32_t disp = 0;
  bool operator==(const Slot&) const = default;
};

// "looks for instructions that affect the stack's variables (e.g.,
// mov %rax,(%rsp))": any register store through rsp or rbp.
bool IsStackStore(const Insn& insn, uint8_t& reg_out, Slot& slot_out) {
  if (insn.mnemonic != Mnemonic::kMov) return false;
  if (insn.src.kind != OperandKind::kReg) return false;
  if (insn.dst.kind != OperandKind::kMem) return false;
  if (insn.dst.mem.segment != Segment::kNone) return false;
  if (!(insn.dst.IsMemWithBase(x86::kRsp) || insn.dst.IsMemWithBase(x86::kRbp))) {
    return false;
  }
  reg_out = insn.src.reg;
  slot_out.base = static_cast<uint8_t>(insn.dst.mem.base);
  slot_out.disp = insn.dst.mem.disp;
  return true;
}

// Whether `insn` writes `reg` (for the backward dataflow scan). push/cmp/test
// name a register without modifying it.
bool WritesReg(const Insn& insn, uint8_t reg) {
  if (insn.dst.kind != OperandKind::kReg || insn.dst.reg != reg) return false;
  switch (insn.mnemonic) {
    case Mnemonic::kCmp:
    case Mnemonic::kTest:
    case Mnemonic::kPush:
    case Mnemonic::kNop:
      return false;
    default:
      return true;
  }
}

// cmp <slot>, %REG (AT&T) — encoded as kCmp with dst=REG, src=mem.
bool IsCanaryCompare(const Insn& insn, uint8_t reg, const Slot& slot) {
  if (insn.mnemonic != Mnemonic::kCmp) return false;
  if (insn.dst.kind != OperandKind::kReg || insn.dst.reg != reg) return false;
  if (insn.src.kind != OperandKind::kMem) return false;
  return insn.src.mem.base == static_cast<int8_t>(slot.base) &&
         insn.src.mem.disp == slot.disp;
}

std::string FnError(const std::string& fn, const std::string& what) {
  return "function " + fn + ": " + what;
}

}  // namespace

std::string StackProtectionPolicy::Fingerprint() const {
  std::ostringstream os;
  os << "stack-protection(fs:0x" << std::hex << options_.canary_fs_offset
     << "," << options_.fail_symbol;
  for (const std::string& name : options_.exempt) os << ",-" << name;
  for (const std::string& prefix : options_.exempt_prefixes) {
    os << ",-" << prefix << "*";
  }
  os << ")";
  return os.str();
}

Status StackProtectionPolicy::Check(const PolicyContext& context) const {
  const x86::InsnBuffer& insns = *context.insns;
  const SymbolHashTable& symbols = *context.symbols;

  // "the policy module iterates through the instruction buffer and
  // identifies the start of a function using the symbol hash table": the
  // outer walk queries the hash table at every instruction, exactly as the
  // paper describes (function boundaries are discovered, not precomputed).
  for (size_t cursor = 0; cursor < insns.size();) {
    const std::string* fn_name = symbols.NameAt(insns[cursor].addr);
    if (fn_name == nullptr) {
      ++cursor;  // padding or unlabeled bytes between functions
      continue;
    }
    const SymbolHashTable::Function& fn = *symbols.FunctionAt(insns[cursor].addr);
    const size_t begin = cursor;
    // Find the function's extent by walking until the next function start.
    size_t end = begin + 1;
    while (end < insns.size() && insns[end].addr < fn.end &&
           !symbols.IsFunctionStart(insns[end].addr)) {
      ++end;
    }
    cursor = end;

    if (options_.exempt.count(*fn_name) != 0) continue;
    bool prefix_exempt = false;
    for (const std::string& prefix : options_.exempt_prefixes) {
      if (fn.name.rfind(prefix, 0) == 0) {
        prefix_exempt = true;
        break;
      }
    }
    if (prefix_exempt) continue;

    // ---- Pass 1: find the canary spill (paper algorithm) -------------------
    // "the policy check looks for instructions that affect the stack's
    // variables ... It then identifies the source operand of the instruction
    // (%rax) and figures out the value of the source operand
    // (mov %fs:0x28,%rax)": for EVERY stack store, scan backwards for the
    // defining instruction of the stored register and test whether it is the
    // canary load. This per-store dataflow walk is what makes the check
    // expensive on store-heavy functions (cf. 401.bzip2 in Figure 4).
    std::vector<Slot> canary_slots;
    for (size_t i = begin; i < end; ++i) {
      uint8_t reg = 0;
      Slot slot;
      if (!IsStackStore(insns[i], reg, slot)) continue;
      // Walk back toward the function start for the instruction that
      // produced the stored value. The nearest write decides; a canary load
      // marks this slot as a canary spill. (This per-store walk is the
      // quadratic term that blows up on store-heavy functions — cf. the
      // 401.bzip2 row of Figure 4, 25x its own disassembly cost.)
      for (size_t j = i; j-- > begin;) {
        if (CanaryLoadDest(insns[j], options_.canary_fs_offset) ==
            static_cast<int>(reg)) {
          canary_slots.push_back(slot);
          break;
        }
        if (WritesReg(insns[j], reg)) break;  // value comes from elsewhere
      }
    }
    if (canary_slots.empty()) {
      if (context.violation_out != nullptr) {
        context.violation_out->vaddr = fn.start;
      }
      return PolicyViolationError(FnError(
          fn.name,
          "no stack-protector prologue (mov %fs:0x28,%reg; mov %reg,(%rsp))"));
    }

    // ---- Pass 2: the epilogue check ------------------------------------------
    // cmp against a canary slot, immediately preceded by a canary reload into
    // the compared register, followed by jne whose target is a direct call to
    // __stack_chk_fail (resolved through the symbol hash table).
    bool checked = false;
    for (size_t i = begin; i < end && !checked; ++i) {
      const Insn& insn = insns[i];
      if (insn.mnemonic != Mnemonic::kCmp) continue;
      if (insn.dst.kind != OperandKind::kReg) continue;
      bool slot_matches = false;
      for (const Slot& slot : canary_slots) {
        if (IsCanaryCompare(insn, insn.dst.reg, slot)) {
          slot_matches = true;
          break;
        }
      }
      if (!slot_matches) continue;

      // "It also has to check that just preceding the cmp instruction, there
      // is an instruction that computes the original value of the source
      // operand (mov %fs:0x28,%rax)."
      if (i == begin ||
          CanaryLoadDest(insns[i - 1], options_.canary_fs_offset) !=
              insn.dst.reg) {
        continue;
      }

      // Next instruction: jne to the failure edge.
      if (i + 1 >= end) break;
      const Insn& branch = insns[i + 1];
      if (branch.mnemonic != Mnemonic::kJcc || branch.cond != x86::kCondNe) {
        continue;
      }
      const size_t fail_idx = insns.IndexOfAddr(branch.BranchTarget());
      if (fail_idx == x86::InsnBuffer::npos) continue;
      const Insn& fail_insn = insns[fail_idx];
      if (fail_insn.mnemonic != Mnemonic::kCall) continue;
      const std::string* callee = symbols.NameAt(fail_insn.BranchTarget());
      if (callee == nullptr || *callee != options_.fail_symbol) continue;

      checked = true;
    }
    if (!checked) {
      if (context.violation_out != nullptr) {
        context.violation_out->vaddr = fn.start;
      }
      return PolicyViolationError(FnError(
          fn.name,
          "no stack-protector epilogue (reload; cmp; jne; callq " +
              options_.fail_symbol + ")"));
    }
  }
  return Status::Ok();
}

}  // namespace engarde::core
