#include "core/sealing.h"

#include <cstring>

#include "crypto/hmac.h"

namespace engarde::core {
namespace {

constexpr char kMagic[8] = {'E', 'G', 'S', 'E', 'A', 'L', '0', '1'};

crypto::Sha256Digest ComputeTag(const crypto::Aes256Key& key,
                                const SealedBlob& blob) {
  // MAC key domain-separated from the encryption key.
  const crypto::Sha256Digest mac_key = crypto::HmacSha256::Mac(
      ByteView(key.data(), key.size()), ToBytes("seal-mac"));
  crypto::HmacSha256 mac(crypto::DigestView(mac_key));
  uint8_t key_id_le[8];
  StoreLe64(key_id_le, blob.key_id);
  mac.Update(ByteView(key_id_le, 8));
  mac.Update(ByteView(blob.nonce.data(), blob.nonce.size()));
  mac.Update(ByteView(blob.ciphertext.data(), blob.ciphertext.size()));
  return mac.Finalize();
}

}  // namespace

Bytes SealedBlob::Serialize() const {
  Bytes out;
  AppendBytes(out, ByteView(reinterpret_cast<const uint8_t*>(kMagic), 8));
  AppendLe64(out, key_id);
  AppendBytes(out, ByteView(nonce.data(), nonce.size()));
  AppendLe32(out, static_cast<uint32_t>(ciphertext.size()));
  AppendBytes(out, ByteView(ciphertext.data(), ciphertext.size()));
  AppendBytes(out, ByteView(tag.data(), tag.size()));
  return out;
}

Result<SealedBlob> SealedBlob::Deserialize(ByteView data) {
  ByteReader reader(data);
  ByteView magic;
  SealedBlob blob;
  ByteView nonce_bytes;
  uint32_t ct_len = 0;
  ByteView ct;
  ByteView tag_bytes;
  if (!reader.ReadBytes(8, magic) ||
      std::memcmp(magic.data(), kMagic, 8) != 0) {
    return InvalidArgumentError("not a sealed blob (bad magic)");
  }
  if (!reader.ReadLe64(blob.key_id) || !reader.ReadBytes(12, nonce_bytes) ||
      !reader.ReadLe32(ct_len) || !reader.ReadBytes(ct_len, ct) ||
      !reader.ReadBytes(32, tag_bytes) || !reader.AtEnd()) {
    return InvalidArgumentError("truncated or malformed sealed blob");
  }
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), blob.nonce.begin());
  blob.ciphertext.assign(ct.begin(), ct.end());
  std::copy(tag_bytes.begin(), tag_bytes.end(), blob.tag.begin());
  return blob;
}

SealedBlob Seal(const crypto::Aes256Key& key, uint64_t key_id,
                const std::array<uint8_t, 12>& nonce, ByteView plaintext) {
  SealedBlob blob;
  blob.key_id = key_id;
  blob.nonce = nonce;
  crypto::AesCtr ctr(key, nonce);
  blob.ciphertext = ctr.Crypt(0, plaintext);
  const crypto::Sha256Digest tag = ComputeTag(key, blob);
  std::copy(tag.begin(), tag.end(), blob.tag.begin());
  return blob;
}

Result<Bytes> Unseal(const crypto::Aes256Key& key, const SealedBlob& blob) {
  const crypto::Sha256Digest expected = ComputeTag(key, blob);
  if (!ConstantTimeEqual(crypto::DigestView(expected),
                         ByteView(blob.tag.data(), blob.tag.size()))) {
    return IntegrityError(
        "sealed blob fails authentication (tampered, or sealed by a "
        "different enclave identity)");
  }
  crypto::AesCtr ctr(key, blob.nonce);
  return ctr.Crypt(0, ByteView(blob.ciphertext.data(),
                               blob.ciphertext.size()));
}

}  // namespace engarde::core
