#include "core/loader.h"

#include <algorithm>
#include <set>

namespace engarde::core {

Result<LoadResult> EnclaveLoader::Load(sgx::SgxDevice& device,
                                       uint64_t enclave_id,
                                       const sgx::EnclaveLayout& layout,
                                       const elf::ElfFile& elf,
                                       ByteView canary) {
  LoadResult result;
  result.load_base = layout.LoadStart();

  // ---- Span check ----------------------------------------------------------
  uint64_t max_vaddr = 0;
  for (const elf::Phdr& segment : elf.segments()) {
    if (segment.type != elf::kPtLoad) continue;
    max_vaddr = std::max(max_vaddr, segment.vaddr + segment.memsz);
  }
  if (max_vaddr > layout.load_pages * sgx::kPageSize) {
    return ResourceExhaustedError(
        "executable needs " + std::to_string(max_vaddr) +
        " bytes of load region; enclave has " +
        std::to_string(layout.load_pages * sgx::kPageSize));
  }
  result.span_pages = (max_vaddr + sgx::kPageSize - 1) / sgx::kPageSize;

  // ---- Map segments ---------------------------------------------------------
  const ByteView image = elf.image();
  std::set<uint64_t> exec_pages;
  for (const elf::Phdr& segment : elf.segments()) {
    if (segment.type != elf::kPtLoad) continue;
    if (segment.filesz > 0) {
      RETURN_IF_ERROR(device.EnclaveWrite(
          enclave_id, result.load_base + segment.vaddr,
          image.subspan(segment.offset, segment.filesz)));
    }
    // memsz > filesz tail (.bss) stays zero: load-region pages were EADDed
    // zeroed and nothing wrote them yet.
    if (segment.flags & elf::kPfX) {
      const uint64_t first = sgx::kPageSize *
                             ((result.load_base + segment.vaddr) / sgx::kPageSize);
      const uint64_t last = result.load_base + segment.vaddr + segment.memsz;
      for (uint64_t page = first; page < last; page += sgx::kPageSize) {
        exec_pages.insert(page);
      }
    }
  }
  result.executable_pages.assign(exec_pages.begin(), exec_pages.end());

  // ---- Relocations -----------------------------------------------------------
  // "The loader determines the address and the size of relocation tables ...
  // by reading appropriate entries of the .dynamic section."
  const auto rela_addr = elf.DynamicValue(elf::kDtRela);
  const auto rela_size = elf.DynamicValue(elf::kDtRelasz);
  if (rela_addr.has_value() != rela_size.has_value()) {
    return InvalidArgumentError(".dynamic has DT_RELA without DT_RELASZ");
  }
  if (rela_addr.has_value() && *rela_size > 0) {
    for (const elf::Rela& rela : elf.relocations()) {
      switch (rela.type) {
        case elf::kRX8664Relative: {
          // B + A: the slot receives load_base + addend.
          uint8_t slot[8];
          StoreLe64(slot, result.load_base +
                              static_cast<uint64_t>(rela.addend));
          RETURN_IF_ERROR(device.EnclaveWrite(enclave_id,
                                              result.load_base + rela.offset,
                                              ByteView(slot, 8)));
          ++result.relocations_applied;
          break;
        }
        case elf::kRX8664None:
          break;
        default:
          return UnimplementedError(
              "unsupported relocation type " + std::to_string(rela.type) +
              " (statically-linked PIEs need only R_X86_64_RELATIVE)");
      }
    }
  }

  // ---- Stack and TLS ----------------------------------------------------------
  // 16-byte-aligned stack top, growing down through the stack region.
  result.stack_top =
      layout.StackStart() + layout.stack_pages * sgx::kPageSize - 16;
  result.tls_base = layout.TlsStart();
  if (!canary.empty()) {
    RETURN_IF_ERROR(
        device.EnclaveWrite(enclave_id, result.tls_base + 0x28, canary));
  }

  result.entry = result.load_base + elf.header().entry;
  return result;
}

}  // namespace engarde::core
