// The symbol hash table from paper Section 4: "the loader also reads the
// symbol tables to keep track of the address and name of all the functions in
// the executable. It constructs a symbol hash table whose key is the address
// of a function and value is the name of the function." Policy modules use it
// to resolve direct-call targets, detect function starts, and find the
// boundaries of function bodies for hashing.
#ifndef ENGARDE_CORE_SYMBOL_TABLE_H_
#define ENGARDE_CORE_SYMBOL_TABLE_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "elf/reader.h"

namespace engarde::core {

class SymbolHashTable {
 public:
  struct Function {
    uint64_t start = 0;
    // One past the last byte that belongs to this function: the next
    // function's start, capped at the end of the containing text section.
    uint64_t end = 0;
    std::string name;
  };

  // Builds from the ELF's STT_FUNC symbols. Text section bounds cap the
  // last function in each section.
  static SymbolHashTable Build(const elf::ElfFile& elf);

  size_t size() const { return functions_.size(); }
  bool empty() const { return functions_.empty(); }

  // Key lookup: function name at exactly this address (the paper's hash
  // table), or nullptr.
  const std::string* NameAt(uint64_t addr) const;
  bool IsFunctionStart(uint64_t addr) const { return NameAt(addr) != nullptr; }

  std::optional<uint64_t> AddrOf(std::string_view name) const;

  // The function whose [start, end) contains addr, or nullptr.
  const Function* FunctionContaining(uint64_t addr) const;
  const Function* FunctionAt(uint64_t addr) const;

  // All functions in ascending address order.
  const std::vector<Function>& functions() const { return functions_; }

 private:
  std::vector<Function> functions_;                    // sorted by start
  std::unordered_map<uint64_t, size_t> by_addr_;       // start -> index
  std::unordered_map<std::string, size_t> by_name_;    // name -> index
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_SYMBOL_TABLE_H_
