// The pluggable policy-module interface (paper Section 3): "EnGarde's
// architecture supports plugging in policy modules, which check compliance
// based upon the policies that the cloud provider and client mutually agree
// upon. Each policy module checks compliance for a specific property."
//
// A policy module is stateless with respect to the client binary: it receives
// a read-only PolicyContext (the full instruction buffer, the symbol hash
// table, the parsed ELF and raw text bytes) and returns OK or a
// POLICY_VIOLATION status naming the offending location.
//
// Fingerprint() feeds the enclave's bootstrap image, so the agreed policy set
// is covered by MRENCLAVE: provider and client both attest *which* policies
// this EnGarde instance enforces.
#ifndef ENGARDE_CORE_POLICY_H_
#define ENGARDE_CORE_POLICY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/symbol_table.h"
#include "elf/reader.h"
#include "x86/insn_buffer.h"

namespace engarde::common {
class ThreadPool;
}  // namespace engarde::common

namespace engarde::core {

// The precise site of a policy violation. A module may deposit this (via
// PolicyContext::violation_out) just before returning POLICY_VIOLATION; the
// inspection pipeline folds it into the structured Rejection the client
// receives, so a rejected client learns the offending vaddr without parsing
// the human-readable text.
struct ViolationSite {
  uint64_t vaddr = 0;  // file-vaddr of the offending instruction/function
};

// Thread-safe out-slot collecting the [start, hashed_end) byte ranges whose
// body hash the library-linking policy verified against the agreed database
// during this check. The verdict cache persists them (core/verdict_cache.h)
// so a re-upload can skip re-hashing functions whose bytes are unchanged.
// Like violation_out, this is an output channel, not module state — Check()
// remains const and side-effect-free with respect to the binary.
struct VerifiedRangeLog {
  std::mutex mu;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;  // [start, hashed_end)

  void Add(uint64_t start, uint64_t hashed_end) {
    const std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(start, hashed_end);
  }
};

struct PolicyContext {
  const x86::InsnBuffer* insns = nullptr;
  const SymbolHashTable* symbols = nullptr;
  const elf::ElfFile* elf = nullptr;

  // Optional out-slot for the violation site (see ViolationSite). Each module
  // invocation gets its own slot, so concurrent policy checks never share
  // one. Null when the caller does not want structured diagnostics.
  ViolationSite* violation_out = nullptr;

  // Optional worker pool a policy may use to shard its own read-only scan.
  // Null when the policy *modules* themselves run concurrently (the engine
  // never nests ParallelFor) and in the serial pipeline. A sharded policy
  // must produce the identical verdict at any thread count.
  common::ThreadPool* pool = nullptr;

  // Verdict-cache reuse (core/verdict_cache.h). liblink_reuse maps function
  // starts whose [start, hashed_end) bytes are PROVABLY unchanged since a
  // prior verification to that hashed_end: the library-linking policy may
  // skip the body-hash walk for those targets (the symbol-table and
  // instruction-boundary checks still run, so the verdict — including every
  // rejection string and the lowest-index-violation reduction — is
  // bit-identical to a cold check). reuse_log, when set, collects the ranges
  // verified during THIS check for persisting. Both null when caching is off.
  const std::map<uint64_t, uint64_t>* liblink_reuse = nullptr;
  VerifiedRangeLog* reuse_log = nullptr;

  // Raw bytes of the text region [text_start, text_end) in file-vaddr space;
  // used by hashing policies. Sections may be disjoint; Bytes() resolves via
  // the ELF.
  Result<ByteView> TextBytes(uint64_t addr, size_t length) const;
};

class PolicyModule {
 public:
  virtual ~PolicyModule() = default;

  virtual std::string_view name() const = 0;
  // Stable description of the module + its configuration (library version,
  // exemption lists, ...). Folded into the enclave measurement.
  virtual std::string Fingerprint() const = 0;
  // Fingerprint of any external reference database the module checks against
  // (the library hash db for library-linking); empty for self-contained
  // modules. Split out from Fingerprint() so the verdict cache can key on
  // the library dimension independently of the policy configuration.
  virtual std::string LibraryFingerprint() const { return {}; }

  // OK iff the client code complies. Must not mutate anything and must not
  // leak information beyond the status (threat model, Section 3).
  virtual Status Check(const PolicyContext& context) const = 0;
};

using PolicySet = std::vector<std::unique_ptr<PolicyModule>>;

}  // namespace engarde::core

#endif  // ENGARDE_CORE_POLICY_H_
