// The pluggable policy-module interface (paper Section 3): "EnGarde's
// architecture supports plugging in policy modules, which check compliance
// based upon the policies that the cloud provider and client mutually agree
// upon. Each policy module checks compliance for a specific property."
//
// A policy module is stateless with respect to the client binary: it receives
// a read-only PolicyContext (the full instruction buffer, the symbol hash
// table, the parsed ELF and raw text bytes) and returns OK or a
// POLICY_VIOLATION status naming the offending location.
//
// Fingerprint() feeds the enclave's bootstrap image, so the agreed policy set
// is covered by MRENCLAVE: provider and client both attest *which* policies
// this EnGarde instance enforces.
#ifndef ENGARDE_CORE_POLICY_H_
#define ENGARDE_CORE_POLICY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/symbol_table.h"
#include "elf/reader.h"
#include "x86/insn_buffer.h"

namespace engarde::common {
class ThreadPool;
}  // namespace engarde::common

namespace engarde::core {

// The precise site of a policy violation. A module may deposit this (via
// PolicyContext::violation_out) just before returning POLICY_VIOLATION; the
// inspection pipeline folds it into the structured Rejection the client
// receives, so a rejected client learns the offending vaddr without parsing
// the human-readable text.
struct ViolationSite {
  uint64_t vaddr = 0;  // file-vaddr of the offending instruction/function
};

struct PolicyContext {
  const x86::InsnBuffer* insns = nullptr;
  const SymbolHashTable* symbols = nullptr;
  const elf::ElfFile* elf = nullptr;

  // Optional out-slot for the violation site (see ViolationSite). Each module
  // invocation gets its own slot, so concurrent policy checks never share
  // one. Null when the caller does not want structured diagnostics.
  ViolationSite* violation_out = nullptr;

  // Optional worker pool a policy may use to shard its own read-only scan.
  // Null when the policy *modules* themselves run concurrently (the engine
  // never nests ParallelFor) and in the serial pipeline. A sharded policy
  // must produce the identical verdict at any thread count.
  common::ThreadPool* pool = nullptr;

  // Raw bytes of the text region [text_start, text_end) in file-vaddr space;
  // used by hashing policies. Sections may be disjoint; Bytes() resolves via
  // the ELF.
  Result<ByteView> TextBytes(uint64_t addr, size_t length) const;
};

class PolicyModule {
 public:
  virtual ~PolicyModule() = default;

  virtual std::string_view name() const = 0;
  // Stable description of the module + its configuration (library version,
  // exemption lists, ...). Folded into the enclave measurement.
  virtual std::string Fingerprint() const = 0;

  // OK iff the client code complies. Must not mutate anything and must not
  // leak information beyond the status (threat model, Section 3).
  virtual Status Check(const PolicyContext& context) const = 0;
};

using PolicySet = std::vector<std::unique_ptr<PolicyModule>>;

}  // namespace engarde::core

#endif  // ENGARDE_CORE_POLICY_H_
