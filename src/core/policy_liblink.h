// Library-linking compliance (paper Section 5, "Compliance for Library
// Linking"): verifies that the client executable is linked against an exact,
// agreed library version (musl-libc v1.0.5 in the paper) by hashing the body
// of every directly-called function that the library database names and
// comparing against the reference digest.
//
// Algorithm, verbatim from the paper: "the policy module iterates through the
// instruction buffer ... and looks for all direct function calls. For each
// direct function call, the policy check computes the target of the call and
// then looks up the symbol hash table to get the function name of the target.
// If the target does not exist in the symbol hash table the check will mark
// the function call as invalid; otherwise, it will compute the SHA-256 hash
// of all the instructions of the function ... and stops when it comes across
// an instruction that is at the beginning of another function. ... The policy
// check next compares the hash of the function in the executable with its
// hash in musl-libc."
#ifndef ENGARDE_CORE_POLICY_LIBLINK_H_
#define ENGARDE_CORE_POLICY_LIBLINK_H_

#include <string>

#include "core/library_db.h"
#include "core/policy.h"

namespace engarde::core {

class LibraryLinkingPolicy : public PolicyModule {
 public:
  struct Options {
    // The paper's algorithm re-hashes the callee at EVERY direct call site
    // ("the policy check continues with the next iteration"). Memoizing the
    // per-function verdict is an obvious optimisation the paper leaves on
    // the table — bench/ablation_provisioning quantifies it. Kept off by
    // default for figure fidelity.
    bool memoize_functions = false;
    // Weaker optimisation: still compare at every call site, but compute the
    // SHA-256 digest of each distinct call target only once (keyed by the
    // function's start address). Unlike memoize_functions this keeps the
    // per-site symbol-table lookup and digest comparison. Off by default so
    // the paper-faithful re-hash mode remains the bench baseline.
    bool cache_function_digests = false;
  };

  LibraryLinkingPolicy(std::string library_name, LibraryHashDb db)
      : library_name_(std::move(library_name)), db_(std::move(db)) {}
  LibraryLinkingPolicy(std::string library_name, LibraryHashDb db,
                       Options options)
      : library_name_(std::move(library_name)),
        db_(std::move(db)),
        options_(options) {}

  std::string_view name() const override { return "library-linking"; }
  std::string Fingerprint() const override;
  // The reference-database dimension of the verdict-cache key: upgrading the
  // agreed library invalidates cached verdicts even if the policy
  // configuration is otherwise unchanged.
  std::string LibraryFingerprint() const override;
  // Sharded over context.pool when available: the call-site scan is
  // partitioned into instruction ranges checked concurrently, and the
  // lowest-index violation decides — the verdict is identical to the serial
  // walk at any thread count.
  Status Check(const PolicyContext& context) const override;

 private:
  // Checks the call sites whose instruction index lies in [begin, end). On
  // violation, *bad_index receives the offending call site's index (for the
  // cross-shard first-violation reduction).
  Status CheckRange(const PolicyContext& context, size_t begin, size_t end,
                    size_t* bad_index) const;

  std::string library_name_;  // e.g. "musl-libc v1.0.5"
  LibraryHashDb db_;
  Options options_;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_POLICY_LIBLINK_H_
