// GroupProvisioningSession: the enclave side of one *fleet* provisioning
// exchange — one connection co-provisions N cooperating enclaves (a pipeline,
// a replica set) declared up front by a GroupManifest (core/protocol.h).
//
// Wire shape, after the front end has co-admitted the group and written the
// control frame + group hello (group quote frame + one public-key frame per
// member, in declaration order):
//
//   client -> frame: RSA-wrapped AES master key, encrypted to MEMBER 0's key
//   — ONE SecureChannel for the whole group comes up on both sides —
//   client -> per upload class: manifest record, block records, DONE
//   enclave -> one verdict record per member, in declaration order
//
// Upload classes: members declaring the same binary digest share one upload —
// their manifest/blocks/DONE cross the wire (and are decrypted) exactly once,
// and the group session fans each decrypted record out to every class member.
// This is where the amortization over N independent connections comes from:
// one RSA unwrap and one AES decrypt per record instead of N, while each
// member still stages, inspects and accounts its own copy exactly as a solo
// session would.
//
// Accounting: every member borrows a PooledEnclave whose CycleAccountant
// receives exactly the charges a solo front-end connection makes — EENTER on
// the member's first pump, one kChannel trampoline per injected block/DONE,
// the inspection phases, EEXIT at verdict release. Shared-channel work that a
// solo session would not perform per member (the single unwrap, the single
// decrypt) is charged to the class primary's accountant, which for a
// single-member group IS the solo sequence — so N=1 groups account
// bit-for-bit identically to the pre-group path.
//
// Mutual verification (MAGE-style): no verdict commits until every member is
// inspected. The group then cross-checks each member's actually-inspected
// SHA-256 against (a) its own declared digest and (b) every sibling
// declaration naming it. Any mismatch overrides ALL member verdicts with one
// structured Rejection{stage: "GroupVerify"} — the whole group is rejected,
// compliant members included, because a group vouching relationship that
// failed for one member is void for all of them.
#ifndef ENGARDE_CORE_GROUP_SESSION_H_
#define ENGARDE_CORE_GROUP_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/enclave_pool.h"
#include "core/protocol.h"
#include "core/session.h"
#include "crypto/channel.h"
#include "sgx/hostos.h"

namespace engarde::core {

class GroupProvisioningSession {
 public:
  enum class State : uint8_t {
    kAwaitKey = 0,  // group hello sent; awaiting the wrapped master key
    kStreaming,     // shared channel up; upload classes arriving in order
    kQuiesce,       // all uploads in; waiting for every member's inspection
    kDone,          // mutual verification done, all verdicts sent — terminal
  };

  // `members` are borrowed, one per GroupManifest entry in declaration
  // order; they (and `host`) must outlive the session. `endpoint` is the
  // session side of the connection's wire, positioned after the group hello.
  GroupProvisioningSession(sgx::HostOs* host, GroupManifest manifest,
                           std::vector<PooledEnclave*> members,
                           crypto::DuplexPipe::Endpoint endpoint);

  // Consumes every complete frame/record queued on the endpoint, fans
  // records out to member sessions, and drives member inspections. Returns
  // OK on progress and when input ran dry; errors are terminal for the
  // whole group.
  Status Pump();

  State state() const noexcept { return state_; }
  bool done() const noexcept { return state_ == State::kDone; }
  // True iff any member is parked at the DONE barrier behind in-flight
  // decode tasks — work in flight, not a stall.
  bool waiting_on_decode() const noexcept;

  size_t member_count() const noexcept { return members_.size(); }
  // Distinct binaries actually uploaded (<= member_count()).
  size_t upload_class_count() const noexcept { return classes_.size(); }
  // Set iff mutual verification failed and every verdict was overridden.
  bool group_rejected() const noexcept { return group_rejected_; }
  const sgx::CycleAccountant& member_accountant(size_t index) const {
    return members_[index].entry->accountant;
  }

  // Moves every member's outcome out, in declaration order. Valid once
  // done(); each outcome can be taken once.
  Result<std::vector<ProvisionOutcome>> TakeOutcomes();

  // Drops the member sessions (each holds a pointer into its enclave).
  // Must run before the owner destroys the member enclaves.
  void ResetSessions();

 private:
  struct Member {
    PooledEnclave* entry = nullptr;  // borrowed: accountant + enclave
    // Dummy wire for the session ctor; an external-feed member never reads
    // from it.
    std::unique_ptr<crypto::DuplexPipe> feed;
    std::unique_ptr<ProvisioningSession> session;
    size_t upload_class = 0;
  };

  // Pumps every live member under its own accountant + EPC pin (EENTER on
  // first pump, inspection once its DONE landed).
  Status PumpMembers();
  Status MutualVerifyAndRelease();

  sgx::HostOs* host_;
  GroupManifest manifest_;
  crypto::DuplexPipe::Endpoint endpoint_;
  std::optional<crypto::SecureChannel> channel_;  // keyed to member 0
  std::vector<Member> members_;
  // Upload classes in first-appearance order; each lists member indices in
  // declaration order, so classes_[c][0] is the class primary whose
  // accountant carries the shared decrypt.
  std::vector<std::vector<size_t>> classes_;
  size_t current_class_ = 0;
  State state_ = State::kAwaitKey;
  bool group_rejected_ = false;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_GROUP_SESSION_H_
