#include "core/protocol.h"

#include <algorithm>

namespace engarde::core {

Bytes Manifest::Serialize() const {
  Bytes out;
  out.reserve(12 + code_pages.size() * 8);
  AppendLe64(out, file_size);
  AppendLe32(out, static_cast<uint32_t>(code_pages.size()));
  for (const uint64_t page : code_pages) AppendLe64(out, page);
  return out;
}

Result<Manifest> Manifest::Deserialize(ByteView data) {
  ByteReader reader(data);
  Manifest manifest;
  uint32_t count = 0;
  if (!reader.ReadLe64(manifest.file_size) || !reader.ReadLe32(count)) {
    return ProtocolError("truncated manifest");
  }
  manifest.code_pages.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t page = 0;
    if (!reader.ReadLe64(page)) return ProtocolError("truncated manifest");
    manifest.code_pages.push_back(page);
  }
  if (!reader.AtEnd()) return ProtocolError("manifest has trailing bytes");
  return manifest;
}

namespace {

void AppendString(Bytes& out, const std::string& s) {
  AppendLe32(out, static_cast<uint32_t>(s.size()));
  AppendBytes(out, ToBytes(s));
}

bool ReadString(ByteReader& reader, std::string& out) {
  uint32_t len = 0;
  ByteView bytes;
  if (!reader.ReadLe32(len) || !reader.ReadBytes(len, bytes)) return false;
  out = ToString(bytes);
  return true;
}

}  // namespace

Bytes Verdict::SerializeLegacy() const {
  Bytes out;
  out.push_back(compliant ? 1 : 0);
  AppendString(out, reason);
  return out;
}

Bytes Verdict::Serialize() const {
  // v2: version || flag || reason || has_rejection || [stage, rule, vaddr,
  // detail]. The version byte (2) can never collide with a v1 verdict, whose
  // first byte is the 0/1 compliance flag.
  Bytes out;
  out.push_back(kWireVersion);
  out.push_back(compliant ? 1 : 0);
  AppendString(out, reason);
  out.push_back(rejection.has_value() ? 1 : 0);
  if (rejection.has_value()) {
    AppendString(out, rejection->stage);
    AppendString(out, rejection->rule);
    AppendLe64(out, rejection->vaddr);
    AppendString(out, rejection->detail);
  }
  return out;
}

Result<Verdict> Verdict::Deserialize(ByteView data) {
  ByteReader reader(data);
  uint8_t first = 0;
  if (!reader.ReadU8(first)) return ProtocolError("malformed verdict");
  Verdict verdict;
  if (first <= 1) {
    // v1: flag || reason, nothing else.
    verdict.compliant = first != 0;
    if (!ReadString(reader, verdict.reason) || !reader.AtEnd()) {
      return ProtocolError("malformed verdict");
    }
    return verdict;
  }
  if (first != kWireVersion) {
    return ProtocolError("unsupported verdict wire version");
  }
  uint8_t flag = 0;
  uint8_t has_rejection = 0;
  if (!reader.ReadU8(flag) || !ReadString(reader, verdict.reason) ||
      !reader.ReadU8(has_rejection) || has_rejection > 1) {
    return ProtocolError("malformed verdict");
  }
  verdict.compliant = flag != 0;
  if (has_rejection) {
    Rejection rejection;
    if (!ReadString(reader, rejection.stage) ||
        !ReadString(reader, rejection.rule) ||
        !reader.ReadLe64(rejection.vaddr) ||
        !ReadString(reader, rejection.detail)) {
      return ProtocolError("malformed verdict");
    }
    verdict.rejection = std::move(rejection);
  }
  if (!reader.AtEnd()) return ProtocolError("malformed verdict");
  return verdict;
}

Bytes GroupManifest::Serialize() const {
  Bytes out;
  out.push_back(kWireVersion);
  AppendLe32(out, static_cast<uint32_t>(members.size()));
  for (const GroupMember& member : members) {
    AppendBytes(out, crypto::DigestView(member.binary_digest));
    AppendLe64(out, member.binary_size);
    AppendString(out, member.policy_fingerprint);
    AppendLe32(out, static_cast<uint32_t>(member.siblings.size()));
    for (const auto& [slot, digest] : member.siblings) {
      AppendLe32(out, slot);
      AppendBytes(out, crypto::DigestView(digest));
    }
  }
  return out;
}

Result<GroupManifest> GroupManifest::Deserialize(ByteView data) {
  ByteReader reader(data);
  uint8_t version = 0;
  if (!reader.ReadU8(version)) return ProtocolError("truncated group manifest");
  if (version != kWireVersion) {
    return ProtocolError("unsupported group-manifest wire version");
  }
  uint32_t count = 0;
  if (!reader.ReadLe32(count)) return ProtocolError("truncated group manifest");
  if (count == 0) return ProtocolError("group manifest declares no members");
  if (count > kMaxMembers) {
    return ProtocolError("group manifest exceeds the member bound");
  }
  GroupManifest manifest;
  manifest.members.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    GroupMember member;
    ByteView digest;
    uint32_t sibling_count = 0;
    if (!reader.ReadBytes(member.binary_digest.size(), digest) ||
        !reader.ReadLe64(member.binary_size) ||
        !ReadString(reader, member.policy_fingerprint) ||
        !reader.ReadLe32(sibling_count)) {
      return ProtocolError("truncated group manifest");
    }
    std::copy(digest.begin(), digest.end(), member.binary_digest.begin());
    if (sibling_count > kMaxMembers) {
      return ProtocolError("group member declares too many siblings");
    }
    member.siblings.reserve(sibling_count);
    for (uint32_t s = 0; s < sibling_count; ++s) {
      uint32_t slot = 0;
      ByteView sibling_digest;
      crypto::Sha256Digest expected{};
      if (!reader.ReadLe32(slot) ||
          !reader.ReadBytes(expected.size(), sibling_digest)) {
        return ProtocolError("truncated group manifest");
      }
      if (slot >= count) {
        return ProtocolError("sibling slot points outside the group");
      }
      if (slot == i) {
        return ProtocolError("group member declares itself as a sibling");
      }
      std::copy(sibling_digest.begin(), sibling_digest.end(),
                expected.begin());
      member.siblings.emplace_back(slot, expected);
    }
    manifest.members.push_back(std::move(member));
  }
  if (!reader.AtEnd()) {
    return ProtocolError("group manifest has trailing bytes");
  }
  return manifest;
}

Bytes RetryAfter::Serialize() const {
  Bytes out;
  out.push_back(kWireVersion);
  AppendLe64(out, retry_after_ms);
  AppendLe32(out, queue_depth);
  AppendLe64(out, epc_pages_in_use);
  AppendLe64(out, epc_budget_pages);
  return out;
}

Result<RetryAfter> RetryAfter::Deserialize(ByteView data) {
  ByteReader reader(data);
  uint8_t version = 0;
  if (!reader.ReadU8(version)) return ProtocolError("truncated retry-after");
  if (version != kWireVersion) {
    return ProtocolError("unsupported retry-after wire version");
  }
  RetryAfter retry;
  if (!reader.ReadLe64(retry.retry_after_ms) ||
      !reader.ReadLe32(retry.queue_depth) ||
      !reader.ReadLe64(retry.epc_pages_in_use) ||
      !reader.ReadLe64(retry.epc_budget_pages) || !reader.AtEnd()) {
    return ProtocolError("malformed retry-after");
  }
  return retry;
}

Bytes DeadlineNotice::Serialize() const {
  Bytes out;
  out.push_back(kWireVersion);
  AppendLe64(out, elapsed_ms);
  AppendLe64(out, deadline_ms);
  return out;
}

Result<DeadlineNotice> DeadlineNotice::Deserialize(ByteView data) {
  ByteReader reader(data);
  uint8_t version = 0;
  if (!reader.ReadU8(version)) return ProtocolError("truncated deadline notice");
  if (version != kWireVersion) {
    return ProtocolError("unsupported deadline-notice wire version");
  }
  DeadlineNotice notice;
  if (!reader.ReadLe64(notice.elapsed_ms) ||
      !reader.ReadLe64(notice.deadline_ms) || !reader.AtEnd()) {
    return ProtocolError("malformed deadline notice");
  }
  return notice;
}

Status WriteControlFrame(crypto::DuplexPipe::Endpoint& endpoint,
                         ControlType type, ByteView body) {
  Bytes payload;
  payload.reserve(1 + body.size());
  payload.push_back(static_cast<uint8_t>(type));
  AppendBytes(payload, body);
  return WriteFrame(endpoint, ByteView(payload.data(), payload.size()));
}

namespace {

Result<ControlFrame> ParseControlFrame(Bytes frame) {
  if (frame.empty()) return ProtocolError("empty control frame");
  const uint8_t type = frame[0];
  if (type != static_cast<uint8_t>(ControlType::kHelloFollows) &&
      type != static_cast<uint8_t>(ControlType::kRetryAfter) &&
      type != static_cast<uint8_t>(ControlType::kDeadlineExceeded)) {
    return ProtocolError("unknown control frame type");
  }
  ControlFrame control;
  control.type = static_cast<ControlType>(type);
  control.body.assign(frame.begin() + 1, frame.end());
  return control;
}

}  // namespace

Result<ControlFrame> ReadControlFrame(crypto::DuplexPipe::Endpoint& endpoint) {
  ASSIGN_OR_RETURN(Bytes frame, ReadFrame(endpoint));
  return ParseControlFrame(std::move(frame));
}

Result<std::optional<ControlFrame>> TryReadControlFrame(
    crypto::DuplexPipe::Endpoint& endpoint) {
  ASSIGN_OR_RETURN(std::optional<Bytes> frame, TryReadFrame(endpoint));
  if (!frame.has_value()) return std::optional<ControlFrame>();
  ASSIGN_OR_RETURN(ControlFrame control, ParseControlFrame(std::move(*frame)));
  return std::optional<ControlFrame>(std::move(control));
}

Status WriteFrame(crypto::DuplexPipe::Endpoint& endpoint, ByteView payload) {
  Bytes header;
  AppendLe32(header, static_cast<uint32_t>(payload.size()));
  endpoint.Write(ByteView(header.data(), header.size()));
  endpoint.Write(payload);
  return Status::Ok();
}

Result<Bytes> ReadFrame(crypto::DuplexPipe::Endpoint& endpoint) {
  ASSIGN_OR_RETURN(const Bytes header, endpoint.Read(4));
  const uint32_t length = LoadLe32(header.data());
  if (length > (64u << 20)) {
    return ProtocolError("oversized frame");
  }
  return endpoint.Read(length);
}

Result<std::optional<Bytes>> TryReadFrame(
    crypto::DuplexPipe::Endpoint& endpoint) {
  if (endpoint.Available() < 4) {
    if (endpoint.PeerClosed() && endpoint.Available() > 0) {
      return ProtocolError("peer closed mid-frame (EOF inside header)");
    }
    return std::optional<Bytes>();
  }
  const Bytes header = endpoint.Peek(4);
  const uint32_t length = LoadLe32(header.data());
  if (length > (64u << 20)) {
    return ProtocolError("oversized frame");
  }
  if (endpoint.Available() < 4 + static_cast<size_t>(length)) {
    if (endpoint.PeerClosed()) {
      return ProtocolError("peer closed mid-frame (EOF inside payload)");
    }
    return std::optional<Bytes>();
  }
  ASSIGN_OR_RETURN(Bytes frame, ReadFrame(endpoint));
  return std::optional<Bytes>(std::move(frame));
}

Status SendMessage(crypto::SecureChannel& channel, MessageType type,
                   ByteView payload) {
  Bytes record;
  record.push_back(static_cast<uint8_t>(type));
  AppendBytes(record, payload);
  return channel.Send(record);
}

Result<Message> ReceiveMessage(crypto::SecureChannel& channel) {
  ASSIGN_OR_RETURN(Bytes record, channel.Receive());
  return ParseMessage(std::move(record));
}

Result<Message> ParseMessage(Bytes record) {
  if (record.empty()) return ProtocolError("empty protocol record");
  Message message;
  message.type = static_cast<MessageType>(record[0]);
  message.payload.assign(record.begin() + 1, record.end());
  return message;
}

}  // namespace engarde::core
