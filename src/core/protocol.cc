#include "core/protocol.h"

namespace engarde::core {

Bytes Manifest::Serialize() const {
  Bytes out;
  out.reserve(12 + code_pages.size() * 8);
  AppendLe64(out, file_size);
  AppendLe32(out, static_cast<uint32_t>(code_pages.size()));
  for (const uint64_t page : code_pages) AppendLe64(out, page);
  return out;
}

Result<Manifest> Manifest::Deserialize(ByteView data) {
  ByteReader reader(data);
  Manifest manifest;
  uint32_t count = 0;
  if (!reader.ReadLe64(manifest.file_size) || !reader.ReadLe32(count)) {
    return ProtocolError("truncated manifest");
  }
  manifest.code_pages.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t page = 0;
    if (!reader.ReadLe64(page)) return ProtocolError("truncated manifest");
    manifest.code_pages.push_back(page);
  }
  if (!reader.AtEnd()) return ProtocolError("manifest has trailing bytes");
  return manifest;
}

Bytes Verdict::Serialize() const {
  Bytes out;
  out.push_back(compliant ? 1 : 0);
  AppendLe32(out, static_cast<uint32_t>(reason.size()));
  AppendBytes(out, ToBytes(reason));
  return out;
}

Result<Verdict> Verdict::Deserialize(ByteView data) {
  ByteReader reader(data);
  uint8_t flag = 0;
  uint32_t reason_len = 0;
  ByteView reason_bytes;
  if (!reader.ReadU8(flag) || !reader.ReadLe32(reason_len) ||
      !reader.ReadBytes(reason_len, reason_bytes) || !reader.AtEnd()) {
    return ProtocolError("malformed verdict");
  }
  Verdict verdict;
  verdict.compliant = flag != 0;
  verdict.reason = ToString(reason_bytes);
  return verdict;
}

Status WriteFrame(crypto::DuplexPipe::Endpoint& endpoint, ByteView payload) {
  Bytes header;
  AppendLe32(header, static_cast<uint32_t>(payload.size()));
  endpoint.Write(ByteView(header.data(), header.size()));
  endpoint.Write(payload);
  return Status::Ok();
}

Result<Bytes> ReadFrame(crypto::DuplexPipe::Endpoint& endpoint) {
  ASSIGN_OR_RETURN(const Bytes header, endpoint.Read(4));
  const uint32_t length = LoadLe32(header.data());
  if (length > (64u << 20)) {
    return ProtocolError("oversized frame");
  }
  return endpoint.Read(length);
}

Status SendMessage(crypto::SecureChannel& channel, MessageType type,
                   ByteView payload) {
  Bytes record;
  record.push_back(static_cast<uint8_t>(type));
  AppendBytes(record, payload);
  return channel.Send(record);
}

Result<Message> ReceiveMessage(crypto::SecureChannel& channel) {
  ASSIGN_OR_RETURN(Bytes record, channel.Receive());
  if (record.empty()) return ProtocolError("empty protocol record");
  Message message;
  message.type = static_cast<MessageType>(record[0]);
  message.payload.assign(record.begin() + 1, record.end());
  return message;
}

}  // namespace engarde::core
