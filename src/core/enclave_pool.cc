#include "core/enclave_pool.h"

#include <utility>

namespace engarde::core {

std::string PolicySetFingerprint(const PolicySet& policies) {
  std::string fingerprint;
  for (const auto& policy : policies) {
    fingerprint += policy->Fingerprint();
    fingerprint += '\n';
  }
  return fingerprint;
}

WarmEnclavePool::WarmEnclavePool(sgx::HostOs* host,
                                 const sgx::QuotingEnclave* quoting,
                                 std::function<PolicySet()> policy_factory,
                                 EngardeOptions enclave_options)
    : host_(host),
      quoting_(quoting),
      policy_factory_(std::move(policy_factory)),
      enclave_options_(std::move(enclave_options)) {}

Result<std::unique_ptr<PooledEnclave>> WarmEnclavePool::BuildEntry(
    sgx::HostOs* host, const sgx::QuotingEnclave& quoting, PolicySet policies,
    const EngardeOptions& enclave_options) {
  auto entry = std::make_unique<PooledEnclave>();
  entry->policy_fingerprint = PolicySetFingerprint(policies);
  {
    // Enclave construction (ECREATE/EADD/EEXTEND/EINIT), keygen and quote
    // are charged to the entry's accountant — exactly the charges a cold
    // Accept makes — so a session adopting this entry accounts identically.
    sgx::ScopedAccountant scoped(&entry->accountant);
    ASSIGN_OR_RETURN(EngardeEnclave enclave,
                     EngardeEnclave::Create(host, quoting, std::move(policies),
                                            enclave_options));
    entry->enclave.emplace(std::move(enclave));
  }
  entry->hello_wire = entry->enclave->HelloWire();
  return entry;
}

Status WarmEnclavePool::AddOne() {
  EngardeOptions options = enclave_options_;
  ASSIGN_OR_RETURN(std::unique_ptr<PooledEnclave> entry,
                   BuildEntry(host_, *quoting_, policy_factory_(), options));
  Shelve(std::move(entry));
  return Status::Ok();
}

Result<bool> WarmEnclavePool::TopUpOnce(EpcBudget& budget) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (size_ >= target_size_) return false;
  }
  // Reserve before building so the new enclave's pages count against the
  // same pot the reactors admit from — a top-up can delay an admission but
  // never overdraw the EPC.
  if (!budget.TryReserve(PagesPerEnclave())) return false;
  const Status added = AddOne();
  if (!added.ok()) {
    budget.Release(PagesPerEnclave());
    return added;
  }
  return true;
}

void WarmEnclavePool::SetRefillTarget(size_t target_size) {
  const std::lock_guard<std::mutex> lock(mu_);
  target_size_ = target_size;
}

size_t WarmEnclavePool::refill_target() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return target_size_;
}

void WarmEnclavePool::Shelve(std::unique_ptr<PooledEnclave> entry) {
  // A shelved enclave is idle by definition: nobody pumps it until TryTake.
  // Mark it a preferred reclaim victim so the background reclaimer pages
  // warm-pool enclaves out before any admitted session's working set.
  if (entry->enclave.has_value()) {
    (void)host_->device()->SetReclaimPreferred(entry->enclave->enclave_id(),
                                               true);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string key = entry->policy_fingerprint;
  shelves_[key].push_back(std::move(entry));
  ++size_;
  ++total_prebuilt_;
}

std::unique_ptr<PooledEnclave> WarmEnclavePool::TryTake(
    const std::string& fingerprint) {
  std::unique_ptr<PooledEnclave> entry;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto shelf = shelves_.find(fingerprint);
    if (shelf == shelves_.end() || shelf->second.empty()) return nullptr;
    entry = std::move(shelf->second.front());
    shelf->second.pop_front();
    if (shelf->second.empty()) shelves_.erase(shelf);
    --size_;
    ++total_handouts_;
  }
  // Back in service: this enclave competes for residency like any admitted
  // session again (pages it lost while shelved fault back in on demand).
  if (entry->enclave.has_value()) {
    (void)host_->device()->SetReclaimPreferred(entry->enclave->enclave_id(),
                                               false);
  }
  return entry;
}

void WarmEnclavePool::Return(std::unique_ptr<PooledEnclave> entry) {
  if (entry == nullptr) return;
  // Back on the shelf and idle again: preferred reclaim victim, handout
  // un-counted. Deliberately NOT routed through Shelve(): a returned entry
  // was never newly built, so total_prebuilt_ must not move.
  if (entry->enclave.has_value()) {
    (void)host_->device()->SetReclaimPreferred(entry->enclave->enclave_id(),
                                               true);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string key = entry->policy_fingerprint;
  shelves_[key].push_back(std::move(entry));
  ++size_;
  --total_handouts_;
}

size_t WarmEnclavePool::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

size_t WarmEnclavePool::total_prebuilt() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_prebuilt_;
}

size_t WarmEnclavePool::total_handouts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_handouts_;
}

}  // namespace engarde::core
