// Per-function SHA-256 database for the library-linking policy (paper
// Section 5): "we first generate the SHA-256 hashes of all the functions of
// musl-libc v1.0.5" — here, of whatever reference library image the provider
// and client agree on (the synthetic musl stand-in in this reproduction).
//
// Hashing rule (identical on the build side and the check side): the digest
// covers the raw instruction bytes from the function's start up to the next
// function start, capped at the end of the containing text section.
#ifndef ENGARDE_CORE_LIBRARY_DB_H_
#define ENGARDE_CORE_LIBRARY_DB_H_

#include <map>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sha256.h"
#include "elf/reader.h"

namespace engarde::core {

class LibraryHashDb {
 public:
  LibraryHashDb() = default;

  void Add(std::string name, const crypto::Sha256Digest& digest) {
    entries_[std::move(name)] = digest;
  }
  const crypto::Sha256Digest* Lookup(std::string_view name) const;
  size_t size() const { return entries_.size(); }

  // Builds the reference database from a library image (an ELF whose symbol
  // table names the library's functions). This is what the cloud provider
  // runs offline over musl-libc v1.0.5.
  static Result<LibraryHashDb> FromLibraryImage(const elf::ElfFile& elf);

  // Stable digest of the whole database (feeds the policy fingerprint).
  crypto::Sha256Digest DbDigest() const;

  // Wire format for shipping the database into the enclave bootstrap.
  Bytes Serialize() const;
  static Result<LibraryHashDb> Deserialize(ByteView data);

 private:
  std::map<std::string, crypto::Sha256Digest> entries_;
};

}  // namespace engarde::core

#endif  // ENGARDE_CORE_LIBRARY_DB_H_
