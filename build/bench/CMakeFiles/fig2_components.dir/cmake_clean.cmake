file(REMOVE_RECURSE
  "CMakeFiles/fig2_components.dir/fig2_components.cc.o"
  "CMakeFiles/fig2_components.dir/fig2_components.cc.o.d"
  "fig2_components"
  "fig2_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
