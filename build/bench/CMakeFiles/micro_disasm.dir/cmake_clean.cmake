file(REMOVE_RECURSE
  "CMakeFiles/micro_disasm.dir/micro_disasm.cc.o"
  "CMakeFiles/micro_disasm.dir/micro_disasm.cc.o.d"
  "micro_disasm"
  "micro_disasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
