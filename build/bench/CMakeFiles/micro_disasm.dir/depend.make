# Empty dependencies file for micro_disasm.
# This may be replaced when dependencies are built.
