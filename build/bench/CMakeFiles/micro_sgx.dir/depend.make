# Empty dependencies file for micro_sgx.
# This may be replaced when dependencies are built.
