file(REMOVE_RECURSE
  "CMakeFiles/micro_sgx.dir/micro_sgx.cc.o"
  "CMakeFiles/micro_sgx.dir/micro_sgx.cc.o.d"
  "micro_sgx"
  "micro_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
