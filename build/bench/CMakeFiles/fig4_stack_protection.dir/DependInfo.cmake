
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_stack_protection.cc" "bench/CMakeFiles/fig4_stack_protection.dir/fig4_stack_protection.cc.o" "gcc" "bench/CMakeFiles/fig4_stack_protection.dir/fig4_stack_protection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/engarde_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/engarde_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/engarde_client.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/engarde_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/engarde_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/engarde_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/engarde_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/engarde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
