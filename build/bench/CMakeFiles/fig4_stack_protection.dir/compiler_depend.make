# Empty compiler generated dependencies file for fig4_stack_protection.
# This may be replaced when dependencies are built.
