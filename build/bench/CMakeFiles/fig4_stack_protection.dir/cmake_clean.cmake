file(REMOVE_RECURSE
  "CMakeFiles/fig4_stack_protection.dir/fig4_stack_protection.cc.o"
  "CMakeFiles/fig4_stack_protection.dir/fig4_stack_protection.cc.o.d"
  "fig4_stack_protection"
  "fig4_stack_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_stack_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
