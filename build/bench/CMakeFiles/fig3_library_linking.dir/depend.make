# Empty dependencies file for fig3_library_linking.
# This may be replaced when dependencies are built.
