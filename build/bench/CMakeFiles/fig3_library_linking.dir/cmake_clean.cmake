file(REMOVE_RECURSE
  "CMakeFiles/fig3_library_linking.dir/fig3_library_linking.cc.o"
  "CMakeFiles/fig3_library_linking.dir/fig3_library_linking.cc.o.d"
  "fig3_library_linking"
  "fig3_library_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_library_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
