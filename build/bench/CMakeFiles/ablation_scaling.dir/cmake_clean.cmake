file(REMOVE_RECURSE
  "CMakeFiles/ablation_scaling.dir/ablation_scaling.cc.o"
  "CMakeFiles/ablation_scaling.dir/ablation_scaling.cc.o.d"
  "ablation_scaling"
  "ablation_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
