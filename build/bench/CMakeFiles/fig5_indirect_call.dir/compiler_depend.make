# Empty compiler generated dependencies file for fig5_indirect_call.
# This may be replaced when dependencies are built.
