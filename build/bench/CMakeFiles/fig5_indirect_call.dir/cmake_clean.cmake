file(REMOVE_RECURSE
  "CMakeFiles/fig5_indirect_call.dir/fig5_indirect_call.cc.o"
  "CMakeFiles/fig5_indirect_call.dir/fig5_indirect_call.cc.o.d"
  "fig5_indirect_call"
  "fig5_indirect_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_indirect_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
