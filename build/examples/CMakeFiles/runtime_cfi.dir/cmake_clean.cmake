file(REMOVE_RECURSE
  "CMakeFiles/runtime_cfi.dir/runtime_cfi.cpp.o"
  "CMakeFiles/runtime_cfi.dir/runtime_cfi.cpp.o.d"
  "runtime_cfi"
  "runtime_cfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_cfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
