# Empty dependencies file for runtime_cfi.
# This may be replaced when dependencies are built.
