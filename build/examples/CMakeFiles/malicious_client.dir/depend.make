# Empty dependencies file for malicious_client.
# This may be replaced when dependencies are built.
