file(REMOVE_RECURSE
  "CMakeFiles/malicious_client.dir/malicious_client.cpp.o"
  "CMakeFiles/malicious_client.dir/malicious_client.cpp.o.d"
  "malicious_client"
  "malicious_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malicious_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
