file(REMOVE_RECURSE
  "libengarde_common.a"
)
