file(REMOVE_RECURSE
  "CMakeFiles/engarde_common.dir/bytes.cc.o"
  "CMakeFiles/engarde_common.dir/bytes.cc.o.d"
  "CMakeFiles/engarde_common.dir/hex.cc.o"
  "CMakeFiles/engarde_common.dir/hex.cc.o.d"
  "CMakeFiles/engarde_common.dir/log.cc.o"
  "CMakeFiles/engarde_common.dir/log.cc.o.d"
  "CMakeFiles/engarde_common.dir/rng.cc.o"
  "CMakeFiles/engarde_common.dir/rng.cc.o.d"
  "libengarde_common.a"
  "libengarde_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engarde_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
