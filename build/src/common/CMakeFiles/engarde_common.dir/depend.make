# Empty dependencies file for engarde_common.
# This may be replaced when dependencies are built.
