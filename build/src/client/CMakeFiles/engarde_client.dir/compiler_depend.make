# Empty compiler generated dependencies file for engarde_client.
# This may be replaced when dependencies are built.
