file(REMOVE_RECURSE
  "CMakeFiles/engarde_client.dir/client.cc.o"
  "CMakeFiles/engarde_client.dir/client.cc.o.d"
  "libengarde_client.a"
  "libengarde_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engarde_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
