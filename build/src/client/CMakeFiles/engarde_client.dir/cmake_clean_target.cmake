file(REMOVE_RECURSE
  "libengarde_client.a"
)
