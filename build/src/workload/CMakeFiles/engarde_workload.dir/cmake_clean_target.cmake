file(REMOVE_RECURSE
  "libengarde_workload.a"
)
