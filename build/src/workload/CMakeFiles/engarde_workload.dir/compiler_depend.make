# Empty compiler generated dependencies file for engarde_workload.
# This may be replaced when dependencies are built.
