
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalog.cc" "src/workload/CMakeFiles/engarde_workload.dir/catalog.cc.o" "gcc" "src/workload/CMakeFiles/engarde_workload.dir/catalog.cc.o.d"
  "/root/repo/src/workload/funcgen.cc" "src/workload/CMakeFiles/engarde_workload.dir/funcgen.cc.o" "gcc" "src/workload/CMakeFiles/engarde_workload.dir/funcgen.cc.o.d"
  "/root/repo/src/workload/program_builder.cc" "src/workload/CMakeFiles/engarde_workload.dir/program_builder.cc.o" "gcc" "src/workload/CMakeFiles/engarde_workload.dir/program_builder.cc.o.d"
  "/root/repo/src/workload/synth_libc.cc" "src/workload/CMakeFiles/engarde_workload.dir/synth_libc.cc.o" "gcc" "src/workload/CMakeFiles/engarde_workload.dir/synth_libc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/engarde_core.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/engarde_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/engarde_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/engarde_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/engarde_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/engarde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
