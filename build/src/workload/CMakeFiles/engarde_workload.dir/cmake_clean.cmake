file(REMOVE_RECURSE
  "CMakeFiles/engarde_workload.dir/catalog.cc.o"
  "CMakeFiles/engarde_workload.dir/catalog.cc.o.d"
  "CMakeFiles/engarde_workload.dir/funcgen.cc.o"
  "CMakeFiles/engarde_workload.dir/funcgen.cc.o.d"
  "CMakeFiles/engarde_workload.dir/program_builder.cc.o"
  "CMakeFiles/engarde_workload.dir/program_builder.cc.o.d"
  "CMakeFiles/engarde_workload.dir/synth_libc.cc.o"
  "CMakeFiles/engarde_workload.dir/synth_libc.cc.o.d"
  "libengarde_workload.a"
  "libengarde_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engarde_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
