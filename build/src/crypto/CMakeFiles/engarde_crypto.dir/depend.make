# Empty dependencies file for engarde_crypto.
# This may be replaced when dependencies are built.
