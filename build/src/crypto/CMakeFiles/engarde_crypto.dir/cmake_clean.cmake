file(REMOVE_RECURSE
  "CMakeFiles/engarde_crypto.dir/aes.cc.o"
  "CMakeFiles/engarde_crypto.dir/aes.cc.o.d"
  "CMakeFiles/engarde_crypto.dir/bigint.cc.o"
  "CMakeFiles/engarde_crypto.dir/bigint.cc.o.d"
  "CMakeFiles/engarde_crypto.dir/channel.cc.o"
  "CMakeFiles/engarde_crypto.dir/channel.cc.o.d"
  "CMakeFiles/engarde_crypto.dir/drbg.cc.o"
  "CMakeFiles/engarde_crypto.dir/drbg.cc.o.d"
  "CMakeFiles/engarde_crypto.dir/hmac.cc.o"
  "CMakeFiles/engarde_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/engarde_crypto.dir/rsa.cc.o"
  "CMakeFiles/engarde_crypto.dir/rsa.cc.o.d"
  "CMakeFiles/engarde_crypto.dir/sha256.cc.o"
  "CMakeFiles/engarde_crypto.dir/sha256.cc.o.d"
  "libengarde_crypto.a"
  "libengarde_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engarde_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
