file(REMOVE_RECURSE
  "libengarde_crypto.a"
)
