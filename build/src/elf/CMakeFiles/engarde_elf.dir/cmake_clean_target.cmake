file(REMOVE_RECURSE
  "libengarde_elf.a"
)
