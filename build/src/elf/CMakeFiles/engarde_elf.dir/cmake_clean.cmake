file(REMOVE_RECURSE
  "CMakeFiles/engarde_elf.dir/builder.cc.o"
  "CMakeFiles/engarde_elf.dir/builder.cc.o.d"
  "CMakeFiles/engarde_elf.dir/reader.cc.o"
  "CMakeFiles/engarde_elf.dir/reader.cc.o.d"
  "libengarde_elf.a"
  "libengarde_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engarde_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
