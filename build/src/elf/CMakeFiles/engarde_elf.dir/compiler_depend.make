# Empty compiler generated dependencies file for engarde_elf.
# This may be replaced when dependencies are built.
