# Empty dependencies file for engarde_core.
# This may be replaced when dependencies are built.
