file(REMOVE_RECURSE
  "CMakeFiles/engarde_core.dir/engarde.cc.o"
  "CMakeFiles/engarde_core.dir/engarde.cc.o.d"
  "CMakeFiles/engarde_core.dir/library_db.cc.o"
  "CMakeFiles/engarde_core.dir/library_db.cc.o.d"
  "CMakeFiles/engarde_core.dir/loader.cc.o"
  "CMakeFiles/engarde_core.dir/loader.cc.o.d"
  "CMakeFiles/engarde_core.dir/negotiation.cc.o"
  "CMakeFiles/engarde_core.dir/negotiation.cc.o.d"
  "CMakeFiles/engarde_core.dir/policy.cc.o"
  "CMakeFiles/engarde_core.dir/policy.cc.o.d"
  "CMakeFiles/engarde_core.dir/policy_ifcc.cc.o"
  "CMakeFiles/engarde_core.dir/policy_ifcc.cc.o.d"
  "CMakeFiles/engarde_core.dir/policy_liblink.cc.o"
  "CMakeFiles/engarde_core.dir/policy_liblink.cc.o.d"
  "CMakeFiles/engarde_core.dir/policy_stackprot.cc.o"
  "CMakeFiles/engarde_core.dir/policy_stackprot.cc.o.d"
  "CMakeFiles/engarde_core.dir/protocol.cc.o"
  "CMakeFiles/engarde_core.dir/protocol.cc.o.d"
  "CMakeFiles/engarde_core.dir/runtime_monitor.cc.o"
  "CMakeFiles/engarde_core.dir/runtime_monitor.cc.o.d"
  "CMakeFiles/engarde_core.dir/sealing.cc.o"
  "CMakeFiles/engarde_core.dir/sealing.cc.o.d"
  "CMakeFiles/engarde_core.dir/symbol_table.cc.o"
  "CMakeFiles/engarde_core.dir/symbol_table.cc.o.d"
  "libengarde_core.a"
  "libengarde_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engarde_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
