
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engarde.cc" "src/core/CMakeFiles/engarde_core.dir/engarde.cc.o" "gcc" "src/core/CMakeFiles/engarde_core.dir/engarde.cc.o.d"
  "/root/repo/src/core/library_db.cc" "src/core/CMakeFiles/engarde_core.dir/library_db.cc.o" "gcc" "src/core/CMakeFiles/engarde_core.dir/library_db.cc.o.d"
  "/root/repo/src/core/loader.cc" "src/core/CMakeFiles/engarde_core.dir/loader.cc.o" "gcc" "src/core/CMakeFiles/engarde_core.dir/loader.cc.o.d"
  "/root/repo/src/core/negotiation.cc" "src/core/CMakeFiles/engarde_core.dir/negotiation.cc.o" "gcc" "src/core/CMakeFiles/engarde_core.dir/negotiation.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/engarde_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/engarde_core.dir/policy.cc.o.d"
  "/root/repo/src/core/policy_ifcc.cc" "src/core/CMakeFiles/engarde_core.dir/policy_ifcc.cc.o" "gcc" "src/core/CMakeFiles/engarde_core.dir/policy_ifcc.cc.o.d"
  "/root/repo/src/core/policy_liblink.cc" "src/core/CMakeFiles/engarde_core.dir/policy_liblink.cc.o" "gcc" "src/core/CMakeFiles/engarde_core.dir/policy_liblink.cc.o.d"
  "/root/repo/src/core/policy_stackprot.cc" "src/core/CMakeFiles/engarde_core.dir/policy_stackprot.cc.o" "gcc" "src/core/CMakeFiles/engarde_core.dir/policy_stackprot.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/core/CMakeFiles/engarde_core.dir/protocol.cc.o" "gcc" "src/core/CMakeFiles/engarde_core.dir/protocol.cc.o.d"
  "/root/repo/src/core/runtime_monitor.cc" "src/core/CMakeFiles/engarde_core.dir/runtime_monitor.cc.o" "gcc" "src/core/CMakeFiles/engarde_core.dir/runtime_monitor.cc.o.d"
  "/root/repo/src/core/sealing.cc" "src/core/CMakeFiles/engarde_core.dir/sealing.cc.o" "gcc" "src/core/CMakeFiles/engarde_core.dir/sealing.cc.o.d"
  "/root/repo/src/core/symbol_table.cc" "src/core/CMakeFiles/engarde_core.dir/symbol_table.cc.o" "gcc" "src/core/CMakeFiles/engarde_core.dir/symbol_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/engarde_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/engarde_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/engarde_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/engarde_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/engarde_sgx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
