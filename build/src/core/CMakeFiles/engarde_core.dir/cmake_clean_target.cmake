file(REMOVE_RECURSE
  "libengarde_core.a"
)
