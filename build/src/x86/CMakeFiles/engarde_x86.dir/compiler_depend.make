# Empty compiler generated dependencies file for engarde_x86.
# This may be replaced when dependencies are built.
