file(REMOVE_RECURSE
  "libengarde_x86.a"
)
