
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/decoder.cc" "src/x86/CMakeFiles/engarde_x86.dir/decoder.cc.o" "gcc" "src/x86/CMakeFiles/engarde_x86.dir/decoder.cc.o.d"
  "/root/repo/src/x86/encoder.cc" "src/x86/CMakeFiles/engarde_x86.dir/encoder.cc.o" "gcc" "src/x86/CMakeFiles/engarde_x86.dir/encoder.cc.o.d"
  "/root/repo/src/x86/insn.cc" "src/x86/CMakeFiles/engarde_x86.dir/insn.cc.o" "gcc" "src/x86/CMakeFiles/engarde_x86.dir/insn.cc.o.d"
  "/root/repo/src/x86/insn_buffer.cc" "src/x86/CMakeFiles/engarde_x86.dir/insn_buffer.cc.o" "gcc" "src/x86/CMakeFiles/engarde_x86.dir/insn_buffer.cc.o.d"
  "/root/repo/src/x86/interp.cc" "src/x86/CMakeFiles/engarde_x86.dir/interp.cc.o" "gcc" "src/x86/CMakeFiles/engarde_x86.dir/interp.cc.o.d"
  "/root/repo/src/x86/validator.cc" "src/x86/CMakeFiles/engarde_x86.dir/validator.cc.o" "gcc" "src/x86/CMakeFiles/engarde_x86.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/engarde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
