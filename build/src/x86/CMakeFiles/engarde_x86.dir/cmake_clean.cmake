file(REMOVE_RECURSE
  "CMakeFiles/engarde_x86.dir/decoder.cc.o"
  "CMakeFiles/engarde_x86.dir/decoder.cc.o.d"
  "CMakeFiles/engarde_x86.dir/encoder.cc.o"
  "CMakeFiles/engarde_x86.dir/encoder.cc.o.d"
  "CMakeFiles/engarde_x86.dir/insn.cc.o"
  "CMakeFiles/engarde_x86.dir/insn.cc.o.d"
  "CMakeFiles/engarde_x86.dir/insn_buffer.cc.o"
  "CMakeFiles/engarde_x86.dir/insn_buffer.cc.o.d"
  "CMakeFiles/engarde_x86.dir/interp.cc.o"
  "CMakeFiles/engarde_x86.dir/interp.cc.o.d"
  "CMakeFiles/engarde_x86.dir/validator.cc.o"
  "CMakeFiles/engarde_x86.dir/validator.cc.o.d"
  "libengarde_x86.a"
  "libengarde_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engarde_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
