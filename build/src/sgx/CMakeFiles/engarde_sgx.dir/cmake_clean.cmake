file(REMOVE_RECURSE
  "CMakeFiles/engarde_sgx.dir/attestation.cc.o"
  "CMakeFiles/engarde_sgx.dir/attestation.cc.o.d"
  "CMakeFiles/engarde_sgx.dir/cost_model.cc.o"
  "CMakeFiles/engarde_sgx.dir/cost_model.cc.o.d"
  "CMakeFiles/engarde_sgx.dir/device.cc.o"
  "CMakeFiles/engarde_sgx.dir/device.cc.o.d"
  "CMakeFiles/engarde_sgx.dir/epc.cc.o"
  "CMakeFiles/engarde_sgx.dir/epc.cc.o.d"
  "CMakeFiles/engarde_sgx.dir/hostos.cc.o"
  "CMakeFiles/engarde_sgx.dir/hostos.cc.o.d"
  "libengarde_sgx.a"
  "libengarde_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engarde_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
