file(REMOVE_RECURSE
  "libengarde_sgx.a"
)
