# Empty dependencies file for engarde_sgx.
# This may be replaced when dependencies are built.
