
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgx/attestation.cc" "src/sgx/CMakeFiles/engarde_sgx.dir/attestation.cc.o" "gcc" "src/sgx/CMakeFiles/engarde_sgx.dir/attestation.cc.o.d"
  "/root/repo/src/sgx/cost_model.cc" "src/sgx/CMakeFiles/engarde_sgx.dir/cost_model.cc.o" "gcc" "src/sgx/CMakeFiles/engarde_sgx.dir/cost_model.cc.o.d"
  "/root/repo/src/sgx/device.cc" "src/sgx/CMakeFiles/engarde_sgx.dir/device.cc.o" "gcc" "src/sgx/CMakeFiles/engarde_sgx.dir/device.cc.o.d"
  "/root/repo/src/sgx/epc.cc" "src/sgx/CMakeFiles/engarde_sgx.dir/epc.cc.o" "gcc" "src/sgx/CMakeFiles/engarde_sgx.dir/epc.cc.o.d"
  "/root/repo/src/sgx/hostos.cc" "src/sgx/CMakeFiles/engarde_sgx.dir/hostos.cc.o" "gcc" "src/sgx/CMakeFiles/engarde_sgx.dir/hostos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/engarde_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/engarde_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/engarde_x86.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
