# Empty dependencies file for engarde-genprog.
# This may be replaced when dependencies are built.
