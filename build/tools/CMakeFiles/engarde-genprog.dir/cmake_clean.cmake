file(REMOVE_RECURSE
  "CMakeFiles/engarde-genprog.dir/engarde-genprog.cc.o"
  "CMakeFiles/engarde-genprog.dir/engarde-genprog.cc.o.d"
  "engarde-genprog"
  "engarde-genprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engarde-genprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
