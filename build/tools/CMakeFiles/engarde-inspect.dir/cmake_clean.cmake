file(REMOVE_RECURSE
  "CMakeFiles/engarde-inspect.dir/engarde-inspect.cc.o"
  "CMakeFiles/engarde-inspect.dir/engarde-inspect.cc.o.d"
  "engarde-inspect"
  "engarde-inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engarde-inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
