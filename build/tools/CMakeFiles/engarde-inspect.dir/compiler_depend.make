# Empty compiler generated dependencies file for engarde-inspect.
# This may be replaced when dependencies are built.
