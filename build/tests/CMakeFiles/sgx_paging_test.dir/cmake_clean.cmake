file(REMOVE_RECURSE
  "CMakeFiles/sgx_paging_test.dir/sgx_paging_test.cc.o"
  "CMakeFiles/sgx_paging_test.dir/sgx_paging_test.cc.o.d"
  "sgx_paging_test"
  "sgx_paging_test.pdb"
  "sgx_paging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgx_paging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
