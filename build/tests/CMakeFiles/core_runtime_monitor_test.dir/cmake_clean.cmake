file(REMOVE_RECURSE
  "CMakeFiles/core_runtime_monitor_test.dir/core_runtime_monitor_test.cc.o"
  "CMakeFiles/core_runtime_monitor_test.dir/core_runtime_monitor_test.cc.o.d"
  "core_runtime_monitor_test"
  "core_runtime_monitor_test.pdb"
  "core_runtime_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_runtime_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
