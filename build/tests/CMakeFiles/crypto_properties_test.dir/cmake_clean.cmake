file(REMOVE_RECURSE
  "CMakeFiles/crypto_properties_test.dir/crypto_properties_test.cc.o"
  "CMakeFiles/crypto_properties_test.dir/crypto_properties_test.cc.o.d"
  "crypto_properties_test"
  "crypto_properties_test.pdb"
  "crypto_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
