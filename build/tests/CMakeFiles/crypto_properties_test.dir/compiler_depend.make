# Empty compiler generated dependencies file for crypto_properties_test.
# This may be replaced when dependencies are built.
