# Empty dependencies file for sgx_attestation_test.
# This may be replaced when dependencies are built.
