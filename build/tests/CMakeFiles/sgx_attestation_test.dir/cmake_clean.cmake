file(REMOVE_RECURSE
  "CMakeFiles/sgx_attestation_test.dir/sgx_attestation_test.cc.o"
  "CMakeFiles/sgx_attestation_test.dir/sgx_attestation_test.cc.o.d"
  "sgx_attestation_test"
  "sgx_attestation_test.pdb"
  "sgx_attestation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgx_attestation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
