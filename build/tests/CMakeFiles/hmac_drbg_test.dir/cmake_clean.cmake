file(REMOVE_RECURSE
  "CMakeFiles/hmac_drbg_test.dir/hmac_drbg_test.cc.o"
  "CMakeFiles/hmac_drbg_test.dir/hmac_drbg_test.cc.o.d"
  "hmac_drbg_test"
  "hmac_drbg_test.pdb"
  "hmac_drbg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmac_drbg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
