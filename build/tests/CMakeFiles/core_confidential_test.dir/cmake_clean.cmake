file(REMOVE_RECURSE
  "CMakeFiles/core_confidential_test.dir/core_confidential_test.cc.o"
  "CMakeFiles/core_confidential_test.dir/core_confidential_test.cc.o.d"
  "core_confidential_test"
  "core_confidential_test.pdb"
  "core_confidential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_confidential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
