# Empty dependencies file for core_confidential_test.
# This may be replaced when dependencies are built.
