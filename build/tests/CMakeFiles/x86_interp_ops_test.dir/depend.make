# Empty dependencies file for x86_interp_ops_test.
# This may be replaced when dependencies are built.
