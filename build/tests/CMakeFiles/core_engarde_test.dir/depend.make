# Empty dependencies file for core_engarde_test.
# This may be replaced when dependencies are built.
