file(REMOVE_RECURSE
  "CMakeFiles/core_engarde_test.dir/core_engarde_test.cc.o"
  "CMakeFiles/core_engarde_test.dir/core_engarde_test.cc.o.d"
  "core_engarde_test"
  "core_engarde_test.pdb"
  "core_engarde_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_engarde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
