file(REMOVE_RECURSE
  "CMakeFiles/sgx_device_test.dir/sgx_device_test.cc.o"
  "CMakeFiles/sgx_device_test.dir/sgx_device_test.cc.o.d"
  "sgx_device_test"
  "sgx_device_test.pdb"
  "sgx_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgx_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
