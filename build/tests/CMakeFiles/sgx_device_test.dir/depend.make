# Empty dependencies file for sgx_device_test.
# This may be replaced when dependencies are built.
