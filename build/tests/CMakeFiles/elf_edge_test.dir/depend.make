# Empty dependencies file for elf_edge_test.
# This may be replaced when dependencies are built.
