file(REMOVE_RECURSE
  "CMakeFiles/elf_edge_test.dir/elf_edge_test.cc.o"
  "CMakeFiles/elf_edge_test.dir/elf_edge_test.cc.o.d"
  "elf_edge_test"
  "elf_edge_test.pdb"
  "elf_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elf_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
