file(REMOVE_RECURSE
  "CMakeFiles/core_symbol_table_test.dir/core_symbol_table_test.cc.o"
  "CMakeFiles/core_symbol_table_test.dir/core_symbol_table_test.cc.o.d"
  "core_symbol_table_test"
  "core_symbol_table_test.pdb"
  "core_symbol_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_symbol_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
