# Empty compiler generated dependencies file for core_sealing_test.
# This may be replaced when dependencies are built.
