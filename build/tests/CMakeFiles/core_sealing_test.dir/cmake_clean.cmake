file(REMOVE_RECURSE
  "CMakeFiles/core_sealing_test.dir/core_sealing_test.cc.o"
  "CMakeFiles/core_sealing_test.dir/core_sealing_test.cc.o.d"
  "core_sealing_test"
  "core_sealing_test.pdb"
  "core_sealing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sealing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
