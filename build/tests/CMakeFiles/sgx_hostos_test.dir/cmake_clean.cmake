file(REMOVE_RECURSE
  "CMakeFiles/sgx_hostos_test.dir/sgx_hostos_test.cc.o"
  "CMakeFiles/sgx_hostos_test.dir/sgx_hostos_test.cc.o.d"
  "sgx_hostos_test"
  "sgx_hostos_test.pdb"
  "sgx_hostos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgx_hostos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
