# Empty dependencies file for sgx_hostos_test.
# This may be replaced when dependencies are built.
