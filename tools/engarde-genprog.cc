// engarde-genprog: emits the synthetic workloads used by the reproduction as
// real files on disk, so engarde-inspect (and anything else that consumes
// ELF executables) can be driven end-to-end from the shell.
//
// Usage:
//   engarde-genprog OUT.elf [--insns N] [--seed N] [--stackprot] [--ifcc]
//                   [--unguarded] [--sabotage] [--libc-version V]
//                   [--emit-libdb OUT.db]
//   engarde-genprog --benchmark NAME --flavor plain|stackprot|ifcc OUT.elf
//
// Exit code: 0 on success, 2 on usage/IO error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "workload/catalog.h"
#include "workload/program_builder.h"

using namespace engarde;

namespace {

bool WriteFile(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: engarde-genprog OUT.elf [--insns N] [--seed N] [--stackprot]\n"
      "           [--ifcc] [--unguarded] [--sabotage] [--libc-version V]\n"
      "           [--emit-libdb OUT.db]\n"
      "       engarde-genprog --benchmark NAME --flavor plain|stackprot|ifcc"
      " OUT.elf\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();

  std::string out_path;
  std::string libdb_path;
  std::string benchmark;
  std::string flavor = "plain";
  workload::ProgramSpec spec;
  spec.name = "genprog";
  spec.target_instructions = 5000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--insns") {
      if (++i >= argc) return Usage();
      spec.target_instructions = std::stoul(argv[i]);
    } else if (arg == "--seed") {
      if (++i >= argc) return Usage();
      spec.seed = std::stoull(argv[i]);
    } else if (arg == "--stackprot") {
      spec.stack_protection = true;
    } else if (arg == "--ifcc") {
      spec.ifcc = true;
      spec.indirect_call_sites = 4;
    } else if (arg == "--unguarded") {
      spec.unguarded_indirect_call = true;
      spec.indirect_call_sites = 2;
    } else if (arg == "--sabotage") {
      spec.sabotage_one_function = true;
    } else if (arg == "--libc-version") {
      if (++i >= argc) return Usage();
      spec.libc.version = argv[i];
    } else if (arg == "--emit-libdb") {
      if (++i >= argc) return Usage();
      libdb_path = argv[i];
    } else if (arg == "--benchmark") {
      if (++i >= argc) return Usage();
      benchmark = argv[i];
    } else if (arg == "--flavor") {
      if (++i >= argc) return Usage();
      flavor = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      out_path = arg;
    }
  }
  if (out_path.empty()) return Usage();

  Result<workload::BuiltProgram> program = InternalError("unreached");
  if (!benchmark.empty()) {
    const workload::CatalogEntry* entry = nullptr;
    for (const auto& e : workload::PaperBenchmarks()) {
      if (benchmark == e.name) entry = &e;
    }
    if (entry == nullptr) {
      std::fprintf(stderr, "unknown benchmark '%s'; options:", benchmark.c_str());
      for (const auto& e : workload::PaperBenchmarks()) {
        std::fprintf(stderr, " %s", e.name);
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
    workload::BuildFlavor f = workload::BuildFlavor::kPlain;
    if (flavor == "stackprot") f = workload::BuildFlavor::kStackProtector;
    else if (flavor == "ifcc") f = workload::BuildFlavor::kIfcc;
    else if (flavor != "plain") return Usage();
    program = workload::BuildBenchmark(*entry, f);
  } else {
    program = workload::BuildProgram(spec);
  }

  if (!program.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 program.status().ToString().c_str());
    return 2;
  }
  if (!WriteFile(out_path, program->image)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("%s: %zu bytes, %zu instructions\n", out_path.c_str(),
              program->image.size(), program->emitted_insn_count);

  if (!libdb_path.empty()) {
    auto db = workload::BuildLibcHashDb(program->libc_options);
    if (!db.ok()) {
      std::fprintf(stderr, "libdb generation failed: %s\n",
                   db.status().ToString().c_str());
      return 2;
    }
    if (!WriteFile(libdb_path, db->Serialize())) {
      std::fprintf(stderr, "cannot write %s\n", libdb_path.c_str());
      return 2;
    }
    std::printf("%s: %zu function digests (synth-musl v%s)\n",
                libdb_path.c_str(), db->size(),
                program->libc_options.version.c_str());
  }
  return 0;
}
