// engarde-serve: the provider's provisioning front door over real TCP.
//
// Binds a loopback listener and runs a FrontendGroup of N readiness-driven
// reactors over one host OS: the main thread accepts and deals connections
// round-robin into per-reactor inboxes, each reactor thread sweeps its own
// shard, and all shards draw from one shared EPC admission budget (queue +
// RetryAfter shedding) and one shared warm enclave pool — optionally topped
// back up in the background so bursts keep hitting warm enclaves.
//
//   engarde-serve [--host A.B.C.D] [--port N] [--reactors N] [--warm N]
//                 [--bg-refill] [--queue N] [--reserve N] [--epc-pages N]
//                 [--epc-oversub R] [--reclaim-low-watermark N]
//                 [--reclaim-batch N] [--rsa-bits N] [--queue-ms N]
//                 [--idle-ms N] [--session-ms N] [--adaptive-deadlines]
//                 [--evict-oldest] [--fair-admission] [--tenant-rate R]
//                 [--tenant-burst R] [--metrics-json [PATH]]
//                 [--verdict-cache DIR] [--verdict-cache-max-entries N]
//                 [--group-size N] [--selftest N]
//
// --host widens the bind address beyond the loopback default. The *-ms flags
// arm the front end's per-state deadlines (admission-queue wait, inbound
// idle, overall session; 0 = unlimited) — an expired connection gets a
// DEADLINE_EXCEEDED control record and its enclave/EPC come back for queued
// arrivals. --metrics-json dumps the group's aggregated FrontendMetrics as
// JSON when serving ends: on stdout by default, or — given a PATH — written
// to a same-directory temp file and atomically renamed into place, so a
// scraper polling PATH never reads a torn or half-written snapshot.
//
// --adaptive-deadlines derives the three deadlines and the RetryAfter hint
// from observed admission-wait / session-duration percentiles (log-scale
// histograms, exported in --metrics-json) instead of the static *-ms flags,
// recomputed on a sweep cadence with hysteresis. --evict-oldest sheds the
// OLDEST queued arrival under queue pressure instead of refusing the newest.
// --fair-admission replaces the single admission FIFO with per-tenant
// (peer-IP) queues drained deficit-round-robin, and --tenant-rate R caps each
// tenant at R admissions/second (token bucket of --tenant-burst capacity;
// a group charges all its members at once), so one hostile tenant cannot
// starve the rest.
//
// --group-size N switches every shard into fleet provisioning: a connection
// leads with a GroupManifest and is co-admitted atomically as one N-member
// group (one group quote, one shared channel, per-member verdicts). The
// selftest then deploys N-replica groups instead of solo programs.
//
// --epc-oversub R (R >= 1.0) admits up to R times the physical EPC budget;
// the ksgxd-style background reclaimer then pages cold enclaves out to keep
// the resident set physical. --reclaim-low-watermark sets the free-page
// level that wakes the reclaimer (it also gates admission pressure kicks;
// defaults to 1/32 of the EPC whenever oversubscription is on), and
// --reclaim-batch bounds EWB writebacks per scan.
//
// --verdict-cache DIR enables the content-addressed sealed verdict cache in
// DIR, shared by every reactor shard and the warm pool: re-uploads of a
// byte-identical binary replay the sealed verdict instead of re-inspecting,
// and partial matches re-hash only the library functions that changed. The
// cache's hit/miss/tamper counters ride along in --metrics-json output.
//
// --selftest N provisions N real clients over 127.0.0.1 in threads
// (pinning the expected EnGarde measurement, honoring RetryAfter back-off)
// and exits non-zero unless every one of them reaches a verdict — and, with
// --reactors >= 2, unless every reactor served at least one client under
// that same pinned measurement (warm or cold, any shard: one MRENCLAVE).
#include <poll.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "core/frontend_group.h"
#include "core/policy_stackprot.h"
#include "core/verdict_cache.h"
#include "net/tcp.h"
#include "workload/program_builder.h"

namespace engarde {
namespace {

core::PolicySet MakePolicies() {
  core::PolicySet policies;
  policies.push_back(std::make_unique<core::StackProtectionPolicy>());
  return policies;
}

struct ServeConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned ephemeral
  size_t reactors = 1;
  size_t warm = 0;
  bool bg_refill = false;  // keep the pool topped up to --warm in background
  size_t queue = 8;
  uint64_t reserve = 64;
  size_t epc_pages = sgx::kDefaultEpcPages;
  double epc_oversub = 1.0;           // virtual capacity / physical budget
  uint64_t reclaim_low_watermark = 0;  // 0 = auto (epc/32) when oversub > 1
  size_t reclaim_batch = 16;
  size_t rsa_bits = 768;
  uint64_t queue_ms = 0;    // admission-queue wait deadline (0 = unlimited)
  uint64_t idle_ms = 0;     // inbound-idle deadline (0 = unlimited)
  uint64_t session_ms = 0;  // overall session deadline (0 = unlimited)
  bool adaptive_deadlines = false;  // derive deadlines from percentiles
  bool evict_oldest = false;        // shed oldest queued, not newest arrival
  bool fair_admission = false;      // per-tenant DRR admission queues
  double tenant_rate = 0.0;         // admissions/sec/tenant (0 = unlimited)
  double tenant_burst = 0.0;        // token-bucket capacity (0 = auto)
  bool metrics_json = false;
  std::string metrics_json_path;      // empty = stdout
  std::string verdict_cache_dir;      // empty = verdict cache disabled
  size_t verdict_cache_max_entries = 0;  // 0 = unlimited (LRU off)
  size_t group_size = 0;              // 0 = solo provisioning
  size_t selftest = 0;                // 0 = serve forever
};

void WriteMetricsJson(std::FILE* out, const core::FrontendMetrics& m) {
  const auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"accepted\": %llu,\n", u(m.accepted));
  std::fprintf(out, "  \"admitted\": %llu,\n", u(m.admitted));
  std::fprintf(out, "  \"admitted_warm\": %llu,\n", u(m.admitted_warm));
  std::fprintf(out, "  \"queued\": %llu,\n", u(m.queued));
  std::fprintf(out, "  \"shed\": %llu,\n", u(m.shed));
  std::fprintf(out, "  \"timed_out\": %llu,\n", u(m.timed_out));
  std::fprintf(out, "  \"failed\": %llu,\n", u(m.failed));
  std::fprintf(out, "  \"done\": %llu,\n", u(m.done));
  std::fprintf(out, "  \"reaped\": %llu,\n", u(m.reaped));
  std::fprintf(out, "  \"live_connections\": %llu,\n", u(m.live_connections));
  std::fprintf(out, "  \"peak_live_connections\": %llu,\n",
              u(m.peak_live_connections));
  std::fprintf(out, "  \"queue_depth\": %llu,\n", u(m.queue_depth));
  std::fprintf(out, "  \"admission_wait_count\": %llu,\n",
              u(m.admission_wait_count));
  std::fprintf(out, "  \"admission_wait_total_ns\": %llu,\n",
              u(m.admission_wait_total_ns));
  std::fprintf(out, "  \"admission_wait_max_ns\": %llu,\n",
              u(m.admission_wait_max_ns));
  std::fprintf(out, "  \"session_count\": %llu,\n", u(m.session_count));
  std::fprintf(out, "  \"session_total_ns\": %llu,\n", u(m.session_total_ns));
  std::fprintf(out, "  \"session_max_ns\": %llu,\n", u(m.session_max_ns));
  // Log-scale histograms (bucket i counts samples in [2^i, 2^(i+1)) ns) and
  // the percentiles the adaptive deadlines were derived from.
  const auto hist = [out, &u](const char* name,
                              const uint64_t (&buckets)[core::kLatencyBuckets]) {
    std::fprintf(out, "  \"%s\": [", name);
    for (size_t i = 0; i < core::kLatencyBuckets; ++i) {
      std::fprintf(out, "%s%llu", i == 0 ? "" : ", ", u(buckets[i]));
    }
    std::fprintf(out, "],\n");
  };
  hist("admission_wait_hist", m.admission_wait_hist);
  hist("session_hist", m.session_hist);
  std::fprintf(out, "  \"admission_wait_p50_ns\": %llu,\n",
               u(core::HistogramPercentileNs(m.admission_wait_hist, 50)));
  std::fprintf(out, "  \"admission_wait_p95_ns\": %llu,\n",
               u(core::HistogramPercentileNs(m.admission_wait_hist, 95)));
  std::fprintf(out, "  \"session_p95_ns\": %llu,\n",
               u(core::HistogramPercentileNs(m.session_hist, 95)));
  std::fprintf(out, "  \"effective_queue_deadline_ms\": %llu,\n",
               u(m.effective_queue_deadline_ms));
  std::fprintf(out, "  \"effective_idle_deadline_ms\": %llu,\n",
               u(m.effective_idle_deadline_ms));
  std::fprintf(out, "  \"effective_session_deadline_ms\": %llu,\n",
               u(m.effective_session_deadline_ms));
  std::fprintf(out, "  \"effective_retry_after_ms\": %llu,\n",
               u(m.effective_retry_after_ms));
  std::fprintf(out, "  \"deadline_recomputes\": %llu,\n",
               u(m.deadline_recomputes));
  std::fprintf(out, "  \"evicted_oldest\": %llu,\n", u(m.evicted_oldest));
  std::fprintf(out, "  \"rate_limit_deferrals\": %llu,\n",
               u(m.rate_limit_deferrals));
  std::fprintf(out, "  \"tenants_seen\": %llu,\n", u(m.tenants_seen));
  std::fprintf(out, "  \"budget_pages\": %llu,\n", u(m.budget_pages));
  std::fprintf(out, "  \"committed_pages\": %llu,\n", u(m.committed_pages));
  std::fprintf(out, "  \"max_committed_pages\": %llu,\n", u(m.max_committed_pages));
  std::fprintf(out, "  \"physical_budget_pages\": %llu,\n",
              u(m.physical_budget_pages));
  std::fprintf(out, "  \"budget_underflows\": %llu,\n", u(m.budget_underflows));
  std::fprintf(out, "  \"epc_faults\": %llu,\n", u(m.epc_faults));
  std::fprintf(out, "  \"eldu_loads\": %llu,\n", u(m.eldu_loads));
  std::fprintf(out, "  \"pages_reclaimed\": %llu,\n", u(m.pages_reclaimed));
  std::fprintf(out, "  \"pages_evicted_inline\": %llu,\n",
              u(m.pages_evicted_inline));
  std::fprintf(out, "  \"reclaim_wakeups\": %llu,\n", u(m.reclaim_wakeups));
  std::fprintf(out, "  \"epc_resident_pages\": %llu,\n", u(m.epc_resident_pages));
  std::fprintf(out, "  \"epc_resident_peak\": %llu,\n", u(m.epc_resident_peak));
  std::fprintf(out, "  \"epc_capacity_pages\": %llu,\n", u(m.epc_capacity_pages));
  std::fprintf(out, "  \"decode_overlap_count\": %llu,\n", u(m.decode_overlap_count));
  std::fprintf(out, "  \"decode_early_bytes_total\": %llu,\n",
              u(m.decode_early_bytes_total));
  std::fprintf(out, "  \"decode_overlap_sum_permille\": %llu,\n",
              u(m.decode_overlap_sum_permille));
  std::fprintf(out, "  \"decode_overlap_max_permille\": %llu,\n",
              u(m.decode_overlap_max_permille));
  std::fprintf(out, "  \"verdict_cache_hits\": %llu,\n", u(m.verdict_cache_hits));
  std::fprintf(out, "  \"verdict_cache_partial_hits\": %llu,\n",
              u(m.verdict_cache_partial_hits));
  std::fprintf(out, "  \"verdict_cache_misses\": %llu,\n", u(m.verdict_cache_misses));
  std::fprintf(out, "  \"verdict_cache_tamper_rejects\": %llu,\n",
              u(m.verdict_cache_tamper_rejects));
  std::fprintf(out, "  \"verdict_cache_evictions\": %llu,\n",
              u(m.verdict_cache_evictions));
  std::fprintf(out, "  \"verdict_cache_bytes_sealed\": %llu,\n",
              u(m.verdict_cache_bytes_sealed));
  std::fprintf(out, "  \"groups_admitted\": %llu,\n", u(m.groups_admitted));
  std::fprintf(out, "  \"group_members_admitted\": %llu,\n",
              u(m.group_members_admitted));
  std::fprintf(out, "  \"groups_rejected_mutual\": %llu\n",
              u(m.groups_rejected_mutual));
  std::fprintf(out, "}\n");
}

// Dumps the metrics snapshot: to stdout when `path` is empty, otherwise via
// write-to-temp + rename(2) so a concurrent reader of `path` sees either the
// previous snapshot or this one in full — never a torn write. The temp file
// lives next to the target (rename is only atomic within a filesystem).
int DumpMetrics(const core::FrontendMetrics& m, const std::string& path) {
  if (path.empty()) {
    WriteMetricsJson(stdout, m);
    return 0;
  }
  const std::string temp = path + ".tmp";
  std::FILE* out = std::fopen(temp.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "metrics: cannot open %s: %s\n", temp.c_str(),
                 std::strerror(errno));
    return 1;
  }
  WriteMetricsJson(out, m);
  const bool write_failed = std::ferror(out) != 0;
  if (std::fclose(out) != 0 || write_failed) {
    std::fprintf(stderr, "metrics: write to %s failed\n", temp.c_str());
    std::remove(temp.c_str());
    return 1;
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "metrics: rename %s -> %s failed: %s\n", temp.c_str(),
                 path.c_str(), std::strerror(errno));
    std::remove(temp.c_str());
    return 1;
  }
  return 0;
}

// ---- Selftest client -------------------------------------------------------

// Moves bytes both ways between the socket and the client's side of the
// bridge pipe. Returns how many bytes moved.
Result<size_t> Shuttle(net::TcpTransport& socket, crypto::DuplexPipe& pipe) {
  size_t moved = 0;
  Bytes inbound;
  ASSIGN_OR_RETURN(const size_t drained, socket.Drain(inbound));
  crypto::DuplexPipe::Endpoint bridge = pipe.EndA();
  if (drained > 0) {
    bridge.Write(ByteView(inbound));
    moved += drained;
  }
  const size_t pending = bridge.Available();
  if (pending > 0) {
    ASSIGN_OR_RETURN(const Bytes outbound, bridge.Read(pending));
    RETURN_IF_ERROR(socket.Send(ByteView(outbound)));
    moved += pending;
  }
  RETURN_IF_ERROR(socket.Flush().status());
  return moved;
}

// Pumps the bridge until `ready()` holds; fails if the server goes away
// first.
template <typename Ready>
Status PumpUntil(net::TcpTransport& socket, crypto::DuplexPipe& pipe,
                 Ready ready) {
  while (!ready()) {
    ASSIGN_OR_RETURN(const size_t moved, Shuttle(socket, pipe));
    if (moved == 0) {
      if (socket.AtEof() && pipe.EndB().Available() == 0) {
        return ProtocolError("server closed before the exchange completed");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return Status::Ok();
}

// One full client provisioning over loopback TCP, honoring RetryAfter: on
// shed, back off for the hinted interval and reconnect.
Result<core::Verdict> RunSelftestClient(uint16_t port,
                                        const client::ClientOptions& options,
                                        const Bytes& executable) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    ASSIGN_OR_RETURN(std::unique_ptr<net::TcpTransport> socket,
                     net::TcpTransport::Connect("127.0.0.1", port));
    crypto::DuplexPipe pipe;
    crypto::DuplexPipe::Endpoint client_end = pipe.EndB();
    client::Client client(options, executable);

    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteFrames(client_end, 1);
    }));
    ASSIGN_OR_RETURN(const std::optional<core::RetryAfter> retry,
                     client.AwaitAdmission(client_end));
    if (retry.has_value()) {
      socket->Close();
      // Honor the server's (possibly adaptive) hint, doubling per
      // consecutive shed so sustained pressure spreads the retries out.
      std::this_thread::sleep_for(std::chrono::milliseconds(
          client::RetryBackoffMs(*retry, static_cast<size_t>(attempt) + 1)));
      continue;
    }
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteFrames(client_end, 2);  // quote + key hello
    }));
    RETURN_IF_ERROR(client.SendProgram(client_end));
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteSecureRecord(client_end);
    }));
    return client.AwaitVerdict();
  }
  return ResourceExhaustedError("still shed after 200 admission attempts");
}

// One fleet provisioning over loopback TCP: the whole replica set rides one
// connection (manifest -> admission -> group hello -> shared uploads -> one
// verdict per member), honoring RetryAfter the same way.
Result<std::vector<core::Verdict>> RunSelftestGroupClient(
    uint16_t port, const client::ClientOptions& options,
    const std::vector<Bytes>& executables,
    const std::string& policy_fingerprint) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    ASSIGN_OR_RETURN(std::unique_ptr<net::TcpTransport> socket,
                     net::TcpTransport::Connect("127.0.0.1", port));
    crypto::DuplexPipe pipe;
    crypto::DuplexPipe::Endpoint client_end = pipe.EndB();
    client::GroupClient group_client(options, executables, policy_fingerprint);
    const size_t members = group_client.member_count();

    RETURN_IF_ERROR(group_client.SendGroupManifest(client_end));
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteFrames(client_end, 1);  // control frame
    }));
    ASSIGN_OR_RETURN(const std::optional<core::RetryAfter> retry,
                     group_client.AwaitAdmission(client_end));
    if (retry.has_value()) {
      socket->Close();
      std::this_thread::sleep_for(std::chrono::milliseconds(
          client::RetryBackoffMs(*retry, static_cast<size_t>(attempt) + 1)));
      continue;
    }
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end, members] {
      // Group hello: one group quote + one public key per member.
      return net::HasCompleteFrames(client_end, 1 + members);
    }));
    RETURN_IF_ERROR(group_client.SendPrograms(client_end));
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end, members] {
      return net::HasCompleteSecureRecords(client_end, members);
    }));
    return group_client.AwaitVerdicts();
  }
  return ResourceExhaustedError("still shed after 200 admission attempts");
}

// ---- Serving loop ----------------------------------------------------------

int Serve(const ServeConfig& config) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = config.epc_pages});
  sgx::HostOs host(&device);
  auto quoting = sgx::QuotingEnclave::Provision(ToBytes("engarde-serve"),
                                                config.rsa_bits);
  if (!quoting.ok()) {
    std::fprintf(stderr, "quoting enclave: %s\n",
                 quoting.status().ToString().c_str());
    return 1;
  }

  // Oversubscription: spin up the host-OS reclaimer before any admission can
  // overdraw physical EPC. The auto watermark is deliberately small (EPC/32):
  // oversubscribed steady state keeps free pages low by design, so a large
  // watermark is perpetually breached and turns the poll loop into thrash —
  // the watermark should cover allocation headroom, not target residency.
  uint64_t low_watermark = config.reclaim_low_watermark;
  if (low_watermark == 0 && config.epc_oversub > 1.0) {
    low_watermark = config.epc_pages / 32;
  }
  if (low_watermark > 0) {
    sgx::ReclaimerOptions reclaimer;
    reclaimer.low_watermark_pages = low_watermark;
    reclaimer.batch_pages = config.reclaim_batch;
    const Status started = host.StartReclaimer(reclaimer);
    if (!started.ok()) {
      std::fprintf(stderr, "reclaimer: %s\n", started.ToString().c_str());
      return 1;
    }
  }

  core::FrontendGroupOptions options;
  options.frontend.enclave_options.rsa_bits = config.rsa_bits;
  options.frontend.enclave_options.layout.heap_pages = 128;
  options.frontend.enclave_options.layout.load_pages = 32;
  options.frontend.epc_reserve_pages = config.reserve;
  options.frontend.epc_oversub = config.epc_oversub;
  options.frontend.reclaim_low_watermark = low_watermark;
  options.frontend.group_provisioning = config.group_size > 0;
  options.frontend.admission_queue_capacity = config.queue;
  options.frontend.queue_deadline_ms = config.queue_ms;
  options.frontend.idle_deadline_ms = config.idle_ms;
  options.frontend.session_deadline_ms = config.session_ms;
  options.frontend.adaptive_deadlines = config.adaptive_deadlines;
  options.frontend.evict_oldest = config.evict_oldest;
  options.frontend.fair_admission = config.fair_admission;
  options.frontend.tenant_rate = config.tenant_rate;
  options.frontend.tenant_burst = config.tenant_burst;
  options.reactors = config.reactors;
  if (config.bg_refill) {
    options.pool_refill = core::PoolRefill::kBackground;
    options.pool_target = config.warm;
  }
  if (!config.verdict_cache_dir.empty()) {
    // One shared cache across every shard and the warm pool: the group's
    // per-enclave options copy the shared_ptr, so all reactors publish into
    // (and probe) the same sealed store. Created against the same policies
    // and layout the group provisions with, so the sealing key and the
    // policy/library fingerprints match what sessions will inspect under.
    core::VerdictCacheOptions cache_options;
    cache_options.directory = config.verdict_cache_dir;
    cache_options.capacity = config.verdict_cache_max_entries;
    auto cache = core::VerdictCache::Create(
        cache_options, MakePolicies(),
        options.frontend.enclave_options.layout);
    if (!cache.ok()) {
      std::fprintf(stderr, "verdict cache: %s\n",
                   cache.status().ToString().c_str());
      return 1;
    }
    options.frontend.enclave_options.verdict_cache = std::move(*cache);
  }
  // Verdicts are reported from the owning reactor's thread as they land.
  options.on_verdict = [](size_t reactor, uint64_t connection,
                          const core::ProvisionOutcome& outcome,
                          bool from_pool) {
    std::fprintf(stderr, "reactor %zu conn %llu: %s%s (blocks=%zu, insns=%zu)\n",
                 reactor, static_cast<unsigned long long>(connection),
                 outcome.verdict.compliant ? "COMPLIANT" : "REJECTED",
                 from_pool ? " [warm]" : "", outcome.stats.blocks_received,
                 outcome.stats.instruction_count);
  };
  core::FrontendGroup group(&host, &*quoting, MakePolicies, options);

  if (config.warm > 0) {
    const Status prefilled = group.PrefillPool(config.warm);
    if (!prefilled.ok()) {
      std::fprintf(stderr, "warm pool: %s\n", prefilled.ToString().c_str());
      return 1;
    }
  }

  auto listener = net::TcpListener::Bind(config.host, config.port);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "engarde-serve: %s:%u (%zu reactors, epc budget %llu "
               "pages%s, warm pool %zu%s, queue %zu%s)\n",
               config.host.c_str(), listener->port(), group.reactor_count(),
               static_cast<unsigned long long>(group.budget().budget_pages()),
               config.epc_oversub > 1.0 ? " [oversubscribed]" : "",
               group.pool().size(), config.bg_refill ? " [bg refill]" : "",
               config.queue,
               host.reclaimer_running() ? ", reclaimer on" : "");

  // Selftest clients run in threads against the same process's listener.
  std::vector<std::thread> clients;
  std::atomic<size_t> client_ok{0};
  std::atomic<size_t> client_failed{0};
  if (config.selftest > 0) {
    auto expected = core::EngardeEnclave::ExpectedMeasurement(
        MakePolicies(), options.frontend.enclave_options);
    if (!expected.ok()) {
      std::fprintf(stderr, "measurement: %s\n",
                   expected.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < config.selftest; ++i) {
      workload::ProgramSpec spec;
      spec.name = "selftest-" + std::to_string(i);
      spec.seed = 4200 + i;
      spec.target_instructions = 2000;
      spec.stack_protection = (i % 2 == 0);
      auto program = workload::BuildProgram(spec);
      if (!program.ok()) {
        std::fprintf(stderr, "program %zu: %s\n", i,
                     program.status().ToString().c_str());
        return 1;
      }
      client::ClientOptions client_options;
      client_options.attestation_key = quoting->attestation_public_key();
      client_options.expected_measurement = *expected;
      client_options.entropy = ToBytes("selftest-" + std::to_string(i));
      const uint16_t port = listener->port();
      if (config.group_size > 0) {
        // Fleet mode: each selftest deployment is a replica set of
        // group_size byte-identical members on one connection; every
        // member's verdict must match the program's expected outcome.
        const std::vector<Bytes> replicas(config.group_size, program->image);
        const std::string fingerprint =
            core::PolicySetFingerprint(MakePolicies());
        clients.emplace_back([port, client_options, replicas, fingerprint,
                              compliant = (i % 2 == 0), i, &client_ok,
                              &client_failed] {
          auto verdicts =
              RunSelftestGroupClient(port, client_options, replicas,
                                     fingerprint);
          bool ok = verdicts.ok() && !verdicts->empty();
          if (ok) {
            for (const core::Verdict& verdict : *verdicts) {
              ok = ok && verdict.compliant == compliant;
            }
          }
          if (ok) {
            client_ok.fetch_add(1);
          } else {
            std::fprintf(stderr, "group client %zu: %s\n", i,
                         verdicts.ok()
                             ? "unexpected verdict"
                             : verdicts.status().ToString().c_str());
            client_failed.fetch_add(1);
          }
        });
        continue;
      }
      clients.emplace_back([port, client_options,
                            image = program->image,
                            compliant = (i % 2 == 0), i, &client_ok,
                            &client_failed] {
        auto verdict = RunSelftestClient(port, client_options, image);
        if (verdict.ok() && verdict->compliant == compliant) {
          client_ok.fetch_add(1);
        } else {
          std::fprintf(stderr, "client %zu: %s\n", i,
                       verdict.ok() ? "unexpected verdict"
                                    : verdict.status().ToString().c_str());
          client_failed.fetch_add(1);
        }
      });
    }
  }

  // Reactor threads sweep their shards; the main thread only accepts and
  // deals connections round-robin into the per-reactor inboxes, so every
  // reactor provably gets a share of the selftest load.
  const Status started = group.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  for (;;) {
    pollfd pfd{listener->descriptor(), POLLIN, 0};
    (void)::poll(&pfd, 1, 20);
    for (;;) {
      auto accepted = listener->TryAccept();
      if (!accepted.ok()) {
        std::fprintf(stderr, "accept: %s\n",
                     accepted.status().ToString().c_str());
        (void)group.Stop();
        return 1;
      }
      if (*accepted == nullptr) break;
      group.Dispatch(std::move(*accepted));
    }
    if (config.selftest > 0 &&
        client_ok.load() + client_failed.load() == config.selftest) {
      break;
    }
  }

  for (std::thread& thread : clients) thread.join();
  host.StopReclaimer();  // quiesce paging before the final metrics snapshot
  const Status stopped = group.Stop();
  if (!stopped.ok()) {
    std::fprintf(stderr, "reactor failure: %s\n", stopped.ToString().c_str());
    return 1;
  }

  std::fprintf(
      stderr,
      "selftest: %zu/%zu clients verdicted (%zu shed retries observed, "
      "peak EPC %llu/%llu pages, warm handouts %zu)\n",
      client_ok.load(), config.selftest, group.shed_count(),
      static_cast<unsigned long long>(group.budget().max_committed_pages()),
      static_cast<unsigned long long>(group.budget().budget_pages()),
      group.pool().total_handouts());
  for (size_t r = 0; r < group.reactor_count(); ++r) {
    std::fprintf(stderr,
                 "  reactor %zu: %zu verdicts, %zu sheds, %zu timeouts, "
                 "%zu reaped, %zu live\n",
                 r, group.reactor(r).done_count(),
                 group.reactor(r).shed_count(),
                 group.reactor(r).timed_out_count(),
                 group.reactor(r).reaped_count(),
                 group.reactor(r).connection_count());
  }
  if (config.metrics_json &&
      DumpMetrics(group.metrics(), config.metrics_json_path) != 0) {
    return 1;
  }
  if (config.selftest >= group.reactor_count() && group.reactor_count() > 1) {
    // Round-robin dealing + pinned-measurement clients: every reactor must
    // have served at least one verdict, all under the same MRENCLAVE.
    for (size_t r = 0; r < group.reactor_count(); ++r) {
      if (group.reactor(r).done_count() == 0) {
        std::fprintf(stderr,
                     "selftest: reactor %zu served no verdicts — sharding "
                     "did not distribute\n",
                     r);
        return 1;
      }
    }
  }
  return client_failed.load() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace engarde

namespace {

constexpr const char* kUsage =
    "usage: engarde-serve [--host A.B.C.D] [--port N] "
    "[--reactors N] [--warm N] [--bg-refill] [--queue N] "
    "[--reserve N] [--epc-pages N] [--epc-oversub R] "
    "[--reclaim-low-watermark N] [--reclaim-batch N] "
    "[--rsa-bits N] [--queue-ms N] [--idle-ms N] "
    "[--session-ms N] [--adaptive-deadlines] [--evict-oldest] "
    "[--fair-admission] [--tenant-rate R] [--tenant-burst R] "
    "[--metrics-json [PATH]] "
    "[--verdict-cache DIR] [--verdict-cache-max-entries N] "
    "[--group-size N] [--selftest N]\n";

[[noreturn]] void UsageError(const std::string& message) {
  std::fprintf(stderr, "engarde-serve: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

// Strict numeric operands. The old parser funneled std::atol through
// unsigned casts, so "--queue-ms -5" silently wrapped to a ~585-million-year
// deadline and "--selftest banana" parsed as 0; both now exit with a usage
// error instead.
uint64_t ParseU64(const std::string& flag, const char* value) {
  if (value == nullptr || *value == '\0') {
    UsageError(flag + " needs a value");
  }
  if (value[0] == '-' || value[0] == '+') {
    UsageError(flag + " expects a non-negative integer, got '" +
               std::string(value) + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) {
    UsageError(flag + " expects a non-negative integer, got '" +
               std::string(value) + "'");
  }
  return parsed;
}

double ParseNonNegativeDouble(const std::string& flag, const char* value) {
  if (value == nullptr || *value == '\0') {
    UsageError(flag + " needs a value");
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < 0.0 ||
      !(parsed == parsed) /* NaN */) {
    UsageError(flag + " expects a non-negative number, got '" +
               std::string(value) + "'");
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  engarde::ServeConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    auto next_u64 = [&]() -> uint64_t { return ParseU64(arg, next_value()); };
    auto next_double = [&]() -> double {
      return ParseNonNegativeDouble(arg, next_value());
    };
    auto next_str = [&]() -> std::string {
      const char* value = next_value();
      if (value == nullptr || *value == '\0') UsageError(arg + " needs a value");
      return value;
    };
    if (arg == "--host") {
      config.host = next_str();
    } else if (arg == "--port") {
      const uint64_t port = next_u64();
      if (port > 65535) UsageError("--port must be within [0, 65535]");
      config.port = static_cast<uint16_t>(port);
    } else if (arg == "--reactors") {
      config.reactors = static_cast<size_t>(next_u64());
    } else if (arg == "--warm") {
      config.warm = static_cast<size_t>(next_u64());
    } else if (arg == "--bg-refill") {
      config.bg_refill = true;
    } else if (arg == "--queue") {
      config.queue = static_cast<size_t>(next_u64());
    } else if (arg == "--reserve") {
      config.reserve = next_u64();
    } else if (arg == "--epc-pages") {
      config.epc_pages = static_cast<size_t>(next_u64());
    } else if (arg == "--epc-oversub") {
      config.epc_oversub = next_double();
      if (config.epc_oversub < 1.0) {
        UsageError("--epc-oversub expects a ratio >= 1.0");
      }
    } else if (arg == "--reclaim-low-watermark") {
      config.reclaim_low_watermark = next_u64();
    } else if (arg == "--reclaim-batch") {
      config.reclaim_batch = static_cast<size_t>(next_u64());
    } else if (arg == "--rsa-bits") {
      config.rsa_bits = static_cast<size_t>(next_u64());
    } else if (arg == "--queue-ms") {
      config.queue_ms = next_u64();
    } else if (arg == "--idle-ms") {
      config.idle_ms = next_u64();
    } else if (arg == "--session-ms") {
      config.session_ms = next_u64();
    } else if (arg == "--adaptive-deadlines") {
      config.adaptive_deadlines = true;
    } else if (arg == "--evict-oldest") {
      config.evict_oldest = true;
    } else if (arg == "--fair-admission") {
      config.fair_admission = true;
    } else if (arg == "--tenant-rate") {
      config.tenant_rate = next_double();
    } else if (arg == "--tenant-burst") {
      config.tenant_burst = next_double();
    } else if (arg == "--metrics-json") {
      config.metrics_json = true;
      // Optional PATH operand: atomic temp+rename target instead of stdout.
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        config.metrics_json_path = argv[++i];
      }
    } else if (arg == "--verdict-cache") {
      config.verdict_cache_dir = next_str();
    } else if (arg == "--verdict-cache-max-entries") {
      config.verdict_cache_max_entries = static_cast<size_t>(next_u64());
    } else if (arg == "--group-size") {
      config.group_size = static_cast<size_t>(next_u64());
    } else if (arg == "--selftest") {
      config.selftest = static_cast<size_t>(next_u64());
    } else {
      UsageError("unknown flag '" + arg + "'");
    }
  }
  return engarde::Serve(config);
}
