// engarde-inspect: standalone offline inspector.
//
// Runs EnGarde's staged inspection pipeline (core::InspectionPipeline — the
// very code the in-enclave library runs, minus the LoadAndLock stage) over an
// executable on disk, usable by a *client* to pre-check policy compliance
// before provisioning ("The client can also use EnGarde to independently
// verify policy compliance of the enclave code that it wants to provision",
// paper Section 3).
//
// Usage:
//   engarde-inspect BINARY [--stackprot] [--ifcc] [--liblink DBFILE]
//                   [--no-system-insns] [--threads N] [--verbose] [--dump]
//                   [--report-json] [--stream] [--block-size N]
//                   [--verdict-cache DIR]
//
// --dump prints the full disassembly listing (with function labels).
// --threads N shards disassembly, NaCl validation and policy scans over N
// worker threads; the verdict is identical to the serial run.
// --report-json emits one JSON object with a per-stage StageReport array
// (stage, outcome, wall_ns, sgx_instructions, modeled_cycles) and, on
// rejection, the structured (stage, rule, vaddr, detail) diagnosis.
// --stream feeds the file through the incremental inspection front half in
// --block-size byte chunks (default 4096), exactly as a provisioning session
// stages blocks off the wire, then runs the barrier stages; the verdict is
// identical to the staged run, and the report gains the achieved decode
// overlap (ratio of text bytes already decoded when the last block landed).
// --verdict-cache DIR keeps a content-addressed sealed verdict cache in DIR
// (core/verdict_cache.h): re-inspecting an unchanged binary replays the
// cached verdict, a near-identical one skips re-hashing unchanged library
// functions; the verdict is identical either way. The report gains a
// "verdict_cache" object (outcome + counters).
// Exit code: 0 compliant, 1 rejected, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "common/thread_pool.h"
#include "core/engarde.h"
#include "core/inspection.h"
#include "core/streaming.h"
#include "core/library_db.h"
#include "core/policy_ifcc.h"
#include "core/policy_liblink.h"
#include "core/policy_stackprot.h"
#include "core/symbol_table.h"
#include "core/verdict_cache.h"
#include "sgx/cost_model.h"

using namespace engarde;

namespace {

Result<Bytes> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open " + path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

class NoSystemInsnsPolicy : public core::PolicyModule {
 public:
  std::string_view name() const override { return "no-system-instructions"; }
  std::string Fingerprint() const override { return "no-system-instructions"; }
  Status Check(const core::PolicyContext& context) const override {
    for (const x86::Insn& insn : *context.insns) {
      switch (insn.mnemonic) {
        case x86::Mnemonic::kSyscall:
        case x86::Mnemonic::kInt:
        case x86::Mnemonic::kInt3:
        case x86::Mnemonic::kCpuid:
        case x86::Mnemonic::kRdtsc:
          if (context.violation_out != nullptr) {
            context.violation_out->vaddr = insn.addr;
          }
          return PolicyViolationError("forbidden instruction [" +
                                      insn.ToString() + "]");
        default:
          break;
      }
    }
    return Status::Ok();
  }
};

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintReportJson(const std::string& binary_path,
                     const core::InspectionResult& result,
                     const core::StreamingStats* streaming,
                     const core::VerdictCache* cache) {
  std::printf("{\n  \"binary\": \"%s\",\n  \"compliant\": %s,\n",
              JsonEscape(binary_path).c_str(),
              result.compliant ? "true" : "false");
  std::printf("  \"stages\": [\n");
  for (size_t i = 0; i < result.reports.size(); ++i) {
    const core::StageReport& report = result.reports[i];
    std::printf("    {\"stage\": \"%.*s\", \"outcome\": \"%.*s\", "
                "\"wall_ns\": %llu, \"sgx_instructions\": %llu, "
                "\"modeled_cycles\": %llu, \"detail\": \"%s\"}%s\n",
                static_cast<int>(core::StageName(report.stage).size()),
                core::StageName(report.stage).data(),
                static_cast<int>(
                    core::StageOutcomeName(report.outcome).size()),
                core::StageOutcomeName(report.outcome).data(),
                static_cast<unsigned long long>(report.wall_ns),
                static_cast<unsigned long long>(report.sgx_instructions),
                static_cast<unsigned long long>(report.ModeledCycles()),
                JsonEscape(report.detail).c_str(),
                i + 1 < result.reports.size() ? "," : "");
  }
  std::printf("  ]");
  if (streaming != nullptr) {
    std::printf(
        ",\n  \"streaming\": {\"text_bytes_planned\": %llu, "
        "\"bytes_decoded_before_done\": %llu, \"overlap_permille\": %llu, "
        "\"spliced_sections\": %llu, \"fallback_sections\": %llu}",
        static_cast<unsigned long long>(streaming->text_bytes_planned),
        static_cast<unsigned long long>(streaming->bytes_decoded_before_done),
        static_cast<unsigned long long>(streaming->OverlapPermille()),
        static_cast<unsigned long long>(streaming->spliced_sections),
        static_cast<unsigned long long>(streaming->fallback_sections));
  }
  if (cache != nullptr) {
    const core::VerdictCacheStats stats = cache->stats();
    const std::string_view outcome =
        core::VerdictCacheOutcomeName(result.cache_outcome);
    std::printf(
        ",\n  \"verdict_cache\": {\"outcome\": \"%.*s\", \"hits\": %llu, "
        "\"partial_hits\": %llu, \"misses\": %llu, \"tamper_rejects\": %llu, "
        "\"evictions\": %llu, \"bytes_sealed\": %llu, \"entries\": %llu}",
        static_cast<int>(outcome.size()), outcome.data(),
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.partial_hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.tamper_rejects),
        static_cast<unsigned long long>(stats.evictions),
        static_cast<unsigned long long>(stats.bytes_sealed),
        static_cast<unsigned long long>(cache->entry_count()));
  }
  if (result.rejection.has_value()) {
    const core::Rejection& rejection = *result.rejection;
    std::printf(
        ",\n  \"rejection\": {\"stage\": \"%s\", \"rule\": \"%s\", "
        "\"vaddr\": %llu, \"detail\": \"%s\"}",
        JsonEscape(rejection.stage).c_str(), JsonEscape(rejection.rule).c_str(),
        static_cast<unsigned long long>(rejection.vaddr),
        JsonEscape(rejection.detail).c_str());
  }
  std::printf("\n}\n");
}

int Usage() {
  std::fprintf(stderr,
               "usage: engarde-inspect BINARY [--stackprot] [--ifcc] "
               "[--liblink DBFILE] [--no-system-insns] [--threads N] "
               "[--verbose] [--dump] [--report-json] [--stream] "
               "[--block-size N] [--verdict-cache DIR] "
               "[--verdict-cache-max-entries N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string binary_path = argv[1];
  core::PolicySet policies;
  bool verbose = false;
  bool dump = false;
  bool report_json = false;
  bool stream = false;
  size_t threads = 1;
  size_t block_size = core::kBlockSize;
  std::string cache_dir;
  size_t cache_max_entries = 0;  // 0 = unlimited (no LRU eviction)

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stackprot") {
      policies.push_back(std::make_unique<core::StackProtectionPolicy>());
    } else if (arg == "--ifcc") {
      policies.push_back(std::make_unique<core::IndirectCallPolicy>());
    } else if (arg == "--liblink") {
      if (++i >= argc) return Usage();
      auto db_bytes = ReadFile(argv[i]);
      if (!db_bytes.ok()) {
        std::fprintf(stderr, "error: %s\n", db_bytes.status().ToString().c_str());
        return 2;
      }
      auto db = core::LibraryHashDb::Deserialize(
          ByteView(db_bytes->data(), db_bytes->size()));
      if (!db.ok()) {
        std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
        return 2;
      }
      policies.push_back(std::make_unique<core::LibraryLinkingPolicy>(
          std::string(argv[i]), std::move(db).value()));
    } else if (arg == "--no-system-insns") {
      policies.push_back(std::make_unique<NoSystemInsnsPolicy>());
    } else if (arg == "--threads") {
      if (++i >= argc) return Usage();
      const long parsed = std::strtol(argv[i], nullptr, 10);
      if (parsed < 1) return Usage();
      threads = static_cast<size_t>(parsed);
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--report-json") {
      report_json = true;
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--block-size") {
      if (++i >= argc) return Usage();
      const long parsed = std::strtol(argv[i], nullptr, 10);
      if (parsed < 1) return Usage();
      block_size = static_cast<size_t>(parsed);
    } else if (arg == "--verdict-cache") {
      if (++i >= argc) return Usage();
      cache_dir = argv[i];
    } else if (arg == "--verdict-cache-max-entries") {
      if (++i >= argc) return Usage();
      const long parsed = std::strtol(argv[i], nullptr, 10);
      if (parsed < 0) return Usage();
      cache_max_entries = static_cast<size_t>(parsed);
    } else {
      return Usage();
    }
  }

  auto image = ReadFile(binary_path);
  if (!image.ok()) {
    std::fprintf(stderr, "error: %s\n", image.status().ToString().c_str());
    return 2;
  }

  // ---- The exact pipeline the enclave runs, offline -----------------------
  // No manifest (nothing claimed), no HostOs (nothing to load into): the
  // manifest-agreement check and the LoadAndLock stage are skipped, every
  // other stage is byte-for-byte the in-enclave code path.
  std::unique_ptr<common::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<common::ThreadPool>(threads);
  sgx::CycleAccountant accountant;

  core::InspectionContext ctx;
  ctx.image = &*image;
  ctx.policies = &policies;
  ctx.pool = pool.get();
  ctx.accountant = &accountant;

  // The cache key is bound to the policy set (and the default layout the
  // offline inspector shares with the serve defaults), so runs with
  // different policy flags never cross-hit.
  std::shared_ptr<core::VerdictCache> cache;
  if (!cache_dir.empty()) {
    core::VerdictCacheOptions cache_options;
    cache_options.directory = cache_dir;
    cache_options.capacity = cache_max_entries;
    auto created = core::VerdictCache::Create(cache_options, policies,
                                              sgx::EnclaveLayout{});
    if (!created.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   created.status().ToString().c_str());
      return 2;
    }
    cache = std::move(created).value();
    ctx.verdict_cache = cache.get();
  }

  // --stream replays the provisioning session's staging sequence offline:
  // the file lands block by block, the streaming inspector speculates after
  // every append, and the barrier stages run against the staged copy.
  Bytes staged;
  std::unique_ptr<core::StreamingInspector> inspector;
  if (stream) {
    staged.reserve(image->size());
    inspector = std::make_unique<core::StreamingInspector>(
        &staged, image->size(), pool.get(),
        core::EngardeOptions{}.max_inflight_decode_pages);
    for (size_t offset = 0; offset < image->size(); offset += block_size) {
      const size_t take = std::min(block_size, image->size() - offset);
      staged.insert(staged.end(), image->data() + offset,
                    image->data() + offset + take);
      inspector->OnBytesStaged();
    }
    inspector->OnUploadComplete();
    inspector->WaitDecodeIdle();
    ctx.image = &staged;
    ctx.streaming = inspector.get();
  }

  auto result = core::InspectionPipeline::Run(ctx);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 2;
  }

  if (verbose && ctx.insns != nullptr) {
    std::printf("%s: %zu bytes, %zu text sections, %zu instructions, "
                "%zu functions\n",
                binary_path.c_str(), image->size(),
                ctx.elf.has_value() ? ctx.elf->TextSections().size() : 0,
                ctx.insns->size(), ctx.symbols.size());
  }

  if (dump && ctx.insns != nullptr) {
    for (const x86::Insn& insn : *ctx.insns) {
      if (const std::string* fn = ctx.symbols.NameAt(insn.addr);
          fn != nullptr) {
        std::printf("\n<%s>:\n", fn->c_str());
      }
      std::printf("  %s\n", insn.ToString().c_str());
    }
    std::printf("\n");
  }

  std::optional<core::StreamingStats> streaming_stats;
  if (inspector != nullptr) streaming_stats = inspector->stats();

  if (report_json) {
    PrintReportJson(binary_path, *result,
                    streaming_stats ? &*streaming_stats : nullptr,
                    cache.get());
    return result->compliant ? 0 : 1;
  }

  if (cache != nullptr) {
    const std::string_view outcome =
        core::VerdictCacheOutcomeName(result->cache_outcome);
    std::printf("verdict-cache: %.*s (%zu entries in %s)\n",
                static_cast<int>(outcome.size()), outcome.data(),
                cache->entry_count(), cache->directory().c_str());
  }

  if (streaming_stats.has_value()) {
    std::printf("streaming: %llu/%llu text bytes decoded before DONE "
                "(%llu permille overlap), %llu sections spliced, "
                "%llu fell back\n",
                static_cast<unsigned long long>(
                    streaming_stats->bytes_decoded_before_done),
                static_cast<unsigned long long>(
                    streaming_stats->text_bytes_planned),
                static_cast<unsigned long long>(
                    streaming_stats->OverlapPermille()),
                static_cast<unsigned long long>(
                    streaming_stats->spliced_sections),
                static_cast<unsigned long long>(
                    streaming_stats->fallback_sections));
  }

  if (!result->compliant) {
    const core::Rejection& rejection = *result->rejection;
    if (rejection.vaddr != 0) {
      std::printf("REJECTED (%s/%s @ 0x%llx): %s\n", rejection.stage.c_str(),
                  rejection.rule.c_str(),
                  static_cast<unsigned long long>(rejection.vaddr),
                  result->reason.c_str());
    } else {
      std::printf("REJECTED (%s/%s): %s\n", rejection.stage.c_str(),
                  rejection.rule.c_str(), result->reason.c_str());
    }
    return 1;
  }

  if (verbose) {
    for (const auto& policy : policies) {
      std::printf("  policy %.*s: ok\n",
                  static_cast<int>(policy->name().size()),
                  policy->name().data());
    }
  }
  std::printf("COMPLIANT: %s (%zu instructions, %zu policies)\n",
              binary_path.c_str(),
              ctx.insns != nullptr
                  ? ctx.insns->size()
                  : static_cast<size_t>(result->cached_instruction_count),
              policies.size());
  return 0;
}
