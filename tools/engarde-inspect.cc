// engarde-inspect: standalone offline inspector.
//
// Runs EnGarde's static inspection pipeline (ELF validation, code/data page
// separation, NaCl-clean disassembly, symbol hash table, policy modules)
// over an executable on disk — the same checks the in-enclave library
// applies, usable by a *client* to pre-check policy compliance before
// provisioning ("The client can also use EnGarde to independently verify
// policy compliance of the enclave code that it wants to provision",
// paper Section 3).
//
// Usage:
//   engarde-inspect BINARY [--stackprot] [--ifcc] [--liblink DBFILE]
//                   [--no-system-insns] [--threads N] [--verbose] [--dump]
//
// --dump prints the full disassembly listing (with function labels).
// --threads N shards disassembly, NaCl validation and policy scans over N
// worker threads; the verdict is identical to the serial run.
// Exit code: 0 compliant, 1 rejected, 2 usage/IO error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "core/library_db.h"
#include "core/policy_ifcc.h"
#include "core/policy_liblink.h"
#include "core/policy_stackprot.h"
#include "core/symbol_table.h"
#include "x86/decoder.h"
#include "x86/validator.h"

using namespace engarde;

namespace {

Result<Bytes> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open " + path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

class NoSystemInsnsPolicy : public core::PolicyModule {
 public:
  std::string_view name() const override { return "no-system-instructions"; }
  std::string Fingerprint() const override { return "no-system-instructions"; }
  Status Check(const core::PolicyContext& context) const override {
    for (const x86::Insn& insn : *context.insns) {
      switch (insn.mnemonic) {
        case x86::Mnemonic::kSyscall:
        case x86::Mnemonic::kInt:
        case x86::Mnemonic::kInt3:
        case x86::Mnemonic::kCpuid:
        case x86::Mnemonic::kRdtsc:
          return PolicyViolationError("forbidden instruction [" +
                                      insn.ToString() + "]");
        default:
          break;
      }
    }
    return Status::Ok();
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: engarde-inspect BINARY [--stackprot] [--ifcc] "
               "[--liblink DBFILE] [--no-system-insns] [--threads N] "
               "[--verbose] [--dump]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string binary_path = argv[1];
  core::PolicySet policies;
  bool verbose = false;
  bool dump = false;
  size_t threads = 1;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stackprot") {
      policies.push_back(std::make_unique<core::StackProtectionPolicy>());
    } else if (arg == "--ifcc") {
      policies.push_back(std::make_unique<core::IndirectCallPolicy>());
    } else if (arg == "--liblink") {
      if (++i >= argc) return Usage();
      auto db_bytes = ReadFile(argv[i]);
      if (!db_bytes.ok()) {
        std::fprintf(stderr, "error: %s\n", db_bytes.status().ToString().c_str());
        return 2;
      }
      auto db = core::LibraryHashDb::Deserialize(
          ByteView(db_bytes->data(), db_bytes->size()));
      if (!db.ok()) {
        std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
        return 2;
      }
      policies.push_back(std::make_unique<core::LibraryLinkingPolicy>(
          std::string(argv[i]), std::move(db).value()));
    } else if (arg == "--no-system-insns") {
      policies.push_back(std::make_unique<NoSystemInsnsPolicy>());
    } else if (arg == "--threads") {
      if (++i >= argc) return Usage();
      const long parsed = std::strtol(argv[i], nullptr, 10);
      if (parsed < 1) return Usage();
      threads = static_cast<size_t>(parsed);
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--dump") {
      dump = true;
    } else {
      return Usage();
    }
  }

  auto image = ReadFile(binary_path);
  if (!image.ok()) {
    std::fprintf(stderr, "error: %s\n", image.status().ToString().c_str());
    return 2;
  }

  // ---- The same front door the enclave applies --------------------------------
  auto elf = elf::ElfFile::Parse(ByteView(image->data(), image->size()));
  if (!elf.ok()) {
    std::printf("REJECTED (container): %s\n", elf.status().ToString().c_str());
    return 1;
  }
  if (const Status s = elf->ValidateForEnclave(); !s.ok()) {
    std::printf("REJECTED (container): %s\n", s.ToString().c_str());
    return 1;
  }

  // ---- Disassembly + NaCl validation -------------------------------------------
  std::unique_ptr<common::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<common::ThreadPool>(threads);

  x86::InsnBuffer insns;
  uint64_t text_start = UINT64_MAX, text_end = 0;
  for (const elf::Shdr* section : elf->TextSections()) {
    auto content = elf->SectionContent(*section);
    if (!content.ok()) {
      std::printf("REJECTED: %s\n", content.status().ToString().c_str());
      return 1;
    }
    if (const Status s = x86::DecodeSectionInto(*content, section->addr,
                                                pool.get(), insns);
        !s.ok()) {
      std::printf("REJECTED (disassembly): %s\n", s.ToString().c_str());
      return 1;
    }
    text_start = std::min(text_start, section->addr);
    text_end = std::max(text_end, section->addr + section->size);
  }
  const core::SymbolHashTable symbols = core::SymbolHashTable::Build(*elf);

  x86::ValidationInput validation;
  validation.text_start = text_start;
  validation.text_end = text_end;
  validation.roots.push_back(elf->header().entry);
  for (const auto& fn : symbols.functions()) validation.roots.push_back(fn.start);
  if (const Status s = x86::ValidateNaClConstraints(insns, validation,
                                                    pool.get());
      !s.ok()) {
    std::printf("REJECTED (NaCl constraints): %s\n", s.ToString().c_str());
    return 1;
  }

  if (verbose) {
    std::printf("%s: %zu bytes, %zu text sections, %zu instructions, "
                "%zu functions\n",
                binary_path.c_str(), image->size(),
                elf->TextSections().size(), insns.size(), symbols.size());
  }

  if (dump) {
    for (const x86::Insn& insn : insns) {
      if (const std::string* fn = symbols.NameAt(insn.addr); fn != nullptr) {
        std::printf("\n<%s>:\n", fn->c_str());
      }
      std::printf("  %s\n", insn.ToString().c_str());
    }
    std::printf("\n");
  }

  // ---- Policies ------------------------------------------------------------------
  core::PolicyContext context;
  context.insns = &insns;
  context.symbols = &symbols;
  context.elf = &*elf;
  // Modules run one after another here, so each may shard its own scan.
  context.pool = pool.get();
  for (const auto& policy : policies) {
    const Status s = policy->Check(context);
    if (!s.ok()) {
      std::printf("REJECTED (%.*s): %s\n",
                  static_cast<int>(policy->name().size()),
                  policy->name().data(), s.ToString().c_str());
      return 1;
    }
    if (verbose) {
      std::printf("  policy %.*s: ok\n",
                  static_cast<int>(policy->name().size()),
                  policy->name().data());
    }
  }

  std::printf("COMPLIANT: %s (%zu instructions, %zu policies)\n",
              binary_path.c_str(), insns.size(), policies.size());
  return 0;
}
