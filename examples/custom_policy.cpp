// Writing your own policy module (paper Section 3: "EnGarde's architecture
// supports plugging in policy modules").
//
// This example implements a NoSystemInstructionsPolicy: the cloud provider
// refuses enclave code containing syscall / int / cpuid / rdtsc / hlt.
// Rationale straight from the paper's background: "An enclave can only
// execute user-mode code and cannot invoke any OS services" — so such
// instructions in enclave code are at best dead weight and at worst probes
// (rdtsc-based side channels, #UD-based control transfers).
//
// The example also shows the measurement consequence: adding the policy
// changes the bootstrap image, hence MRENCLAVE, so a client always knows
// exactly which policy set a given EnGarde enclave enforces.
#include <cstdio>

#include "client/client.h"
#include "core/engarde.h"
#include "elf/builder.h"
#include "workload/program_builder.h"
#include "x86/encoder.h"

using namespace engarde;

namespace {

class NoSystemInstructionsPolicy : public core::PolicyModule {
 public:
  std::string_view name() const override { return "no-system-instructions"; }

  std::string Fingerprint() const override {
    return "no-system-instructions(v1: syscall,int,int3,cpuid,rdtsc,hlt)";
  }

  Status Check(const core::PolicyContext& context) const override {
    for (const x86::Insn& insn : *context.insns) {
      switch (insn.mnemonic) {
        case x86::Mnemonic::kSyscall:
        case x86::Mnemonic::kInt:
        case x86::Mnemonic::kInt3:
        case x86::Mnemonic::kCpuid:
        case x86::Mnemonic::kRdtsc:
          return PolicyViolationError("forbidden system instruction [" +
                                      insn.ToString() + "]");
        default:
          break;
      }
    }
    return Status::Ok();
  }
};

core::PolicySet JustTheCustomPolicy() {
  core::PolicySet policies;
  policies.push_back(std::make_unique<NoSystemInstructionsPolicy>());
  return policies;
}

Result<core::ProvisionOutcome> Provision(const Bytes& image,
                                         sgx::HostOs& host,
                                         const sgx::QuotingEnclave& quoting) {
  core::EngardeOptions options;
  options.rsa_bits = 1024;
  ASSIGN_OR_RETURN(auto enclave,
                   core::EngardeEnclave::Create(&host, quoting,
                                                JustTheCustomPolicy(),
                                                options));
  crypto::DuplexPipe pipe;
  RETURN_IF_ERROR(enclave.SendHello(pipe.EndA()));
  client::ClientOptions client_options;
  client_options.attestation_key = quoting.attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, image);
  RETURN_IF_ERROR(client.SendProgram(pipe.EndB()));
  return enclave.RunProvisioning(pipe.EndA());
}

}  // namespace

int main() {
  sgx::SgxDevice device{sgx::SgxDevice::Options{}};
  sgx::HostOs host(&device);
  auto quoting = sgx::QuotingEnclave::Provision(ToBytes("custom-dev"), 1024);
  if (!quoting.ok()) return 1;

  // The policy set is pinned by the measurement: compare against a stock
  // EnGarde with no policies.
  core::EngardeOptions options;
  options.rsa_bits = 1024;
  auto m_custom =
      core::EngardeEnclave::ExpectedMeasurement(JustTheCustomPolicy(), options);
  auto m_stock =
      core::EngardeEnclave::ExpectedMeasurement(core::PolicySet{}, options);
  if (m_custom.ok() && m_stock.ok()) {
    std::printf("MRENCLAVE with custom policy  != stock EnGarde: %s\n\n",
                (*m_custom != *m_stock) ? "yes (clients can tell)" : "NO");
  }

  // ---- A clean program passes ---------------------------------------------------
  workload::ProgramSpec clean;
  clean.name = "clean";
  clean.seed = 3;
  clean.target_instructions = 3000;
  auto clean_program = workload::BuildProgram(clean);
  if (!clean_program.ok()) return 1;
  auto accepted = Provision(clean_program->image, host, *quoting);
  if (!accepted.ok()) return 1;
  std::printf("clean program: %s\n",
              accepted->verdict.compliant ? "COMPLIANT" : "rejected?!");

  // ---- The same program with a syscall smuggled in -------------------------------
  // Craft it directly with the assembler: a tiny valid program whose body
  // contains one syscall.
  {
    x86::Assembler as(0x1000);
    as.MovRegImm32(x86::kRax, 60);  // exit(0), if this were Linux
    as.XorRegReg(x86::kRdi, x86::kRdi);
    as.Syscall();
    as.Ret();
    elf::ElfBuilder builder;
    const uint64_t tv = builder.AddTextSection(".text", as.bytes());
    builder.AddSymbol("_start", tv, as.bytes().size(), elf::kSttFunc);
    builder.SetEntry(tv);
    auto image = builder.Build();
    if (!image.ok()) return 1;

    auto rejected = Provision(*image, host, *quoting);
    if (!rejected.ok()) {
      std::printf("protocol error: %s\n",
                  rejected.status().ToString().c_str());
      return 1;
    }
    std::printf("program with a syscall: %s\n  reason: %s\n",
                rejected->verdict.compliant ? "accepted?!" : "REJECTED",
                rejected->verdict.reason.c_str());
  }
  return 0;
}
