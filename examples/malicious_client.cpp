// Malicious-client gallery: five ways a client can try to cheat the SLA, and
// how EnGarde (or the attested protocol around it) stops each one.
//
//   1. Linking a vulnerable library version (the HeartBleed scenario from
//      paper Section 5) — caught by the library-linking policy.
//   2. Shipping one function without stack protection in an otherwise
//      compliant binary — caught by the stack-protection policy.
//   3. Making an unguarded indirect call (control-flow hijack surface) —
//      caught by the IFCC policy.
//   4. Sending a stripped binary — auto-rejected (EnGarde needs symbols).
//   5. Trying to inject code after approval — stopped by W^X + enclave lock.
#include <cstdio>

#include "client/client.h"
#include "core/engarde.h"
#include "core/policy_ifcc.h"
#include "core/policy_liblink.h"
#include "core/policy_stackprot.h"
#include "elf/builder.h"
#include "workload/program_builder.h"

using namespace engarde;

namespace {

core::PolicySet AgreedPolicies(const workload::SynthLibcOptions& libc) {
  core::PolicySet policies;
  auto db = workload::BuildLibcHashDb(libc);
  if (db.ok()) {
    policies.push_back(std::make_unique<core::LibraryLinkingPolicy>(
        "synth-musl v" + libc.version, std::move(db).value()));
  }
  policies.push_back(std::make_unique<core::StackProtectionPolicy>());
  policies.push_back(std::make_unique<core::IndirectCallPolicy>());
  return policies;
}

// Runs the protocol for one attempt; prints the verdict. Returns the outcome
// for post-mortem checks.
struct AttemptResult {
  bool ran = false;
  core::ProvisionOutcome outcome;
  uint64_t enclave_id = 0;
};

AttemptResult Attempt(const char* title, const Bytes& image,
                      const workload::SynthLibcOptions& db_options,
                      sgx::HostOs& host,
                      const sgx::QuotingEnclave& quoting) {
  std::printf("\n=== %s ===\n", title);
  AttemptResult result;

  core::EngardeOptions options;
  options.rsa_bits = 1024;
  // Modest enclaves: five attempts must fit the 32,000-page EPC together.
  options.layout.heap_pages = 512;
  options.layout.load_pages = 256;
  auto enclave = core::EngardeEnclave::Create(&host, quoting,
                                              AgreedPolicies(db_options),
                                              options);
  if (!enclave.ok()) {
    std::printf("  setup failed: %s\n", enclave.status().ToString().c_str());
    return result;
  }

  crypto::DuplexPipe pipe;
  if (!enclave->SendHello(pipe.EndA()).ok()) return result;
  client::ClientOptions client_options;
  client_options.attestation_key = quoting.attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, image);
  if (const Status s = client.SendProgram(pipe.EndB()); !s.ok()) {
    std::printf("  client-side abort: %s\n", s.ToString().c_str());
    return result;
  }
  auto outcome = enclave->RunProvisioning(pipe.EndA());
  if (!outcome.ok()) {
    std::printf("  protocol error: %s\n", outcome.status().ToString().c_str());
    return result;
  }
  std::printf("  verdict: %s\n", outcome->verdict.compliant
                                     ? "COMPLIANT"
                                     : "REJECTED");
  if (!outcome->verdict.compliant) {
    std::printf("  reason (client-only): %s\n",
                outcome->verdict.reason.c_str());
    std::printf("  provider sees: compliant=0 and nothing else\n");
  }
  result.ran = true;
  result.outcome = std::move(outcome).value();
  result.enclave_id = enclave->enclave_id();
  return result;
}

}  // namespace

int main() {
  sgx::SgxDevice device{sgx::SgxDevice::Options{}};
  sgx::HostOs host(&device);
  auto quoting = sgx::QuotingEnclave::Provision(ToBytes("mal-device"), 1024);
  if (!quoting.ok()) return 1;

  // The honest baseline everyone negotiated: stack-protected, IFCC'd,
  // linked against synth-musl v1.0.5.
  workload::ProgramSpec honest;
  honest.name = "workload";
  honest.seed = 5;
  honest.target_instructions = 6000;
  honest.stack_protection = true;
  honest.ifcc = true;

  // ---- 1. Wrong library version ------------------------------------------------
  {
    workload::ProgramSpec spec = honest;
    spec.libc.version = "1.0.4";  // the "vulnerable" release
    auto program = workload::BuildProgram(spec);
    if (!program.ok()) return 1;
    workload::SynthLibcOptions agreed = program->libc_options;
    agreed.version = "1.0.5";  // the SLA pins the patched release
    Attempt("Attempt 1: link the vulnerable libc v1.0.4", program->image,
            agreed, host, *quoting);
  }

  // ---- 2. One unprotected function ---------------------------------------------
  {
    workload::ProgramSpec spec = honest;
    spec.sabotage_one_function = true;
    auto program = workload::BuildProgram(spec);
    if (!program.ok()) return 1;
    Attempt("Attempt 2: sneak in one function without a canary check",
            program->image, program->libc_options, host, *quoting);
  }

  // ---- 3. Unguarded indirect call ------------------------------------------------
  {
    workload::ProgramSpec spec = honest;
    spec.ifcc = false;
    spec.unguarded_indirect_call = true;
    auto program = workload::BuildProgram(spec);
    if (!program.ok()) return 1;
    Attempt("Attempt 3: indirect call without the IFCC guard",
            program->image, program->libc_options, host, *quoting);
  }

  // ---- 4. Stripped binary ----------------------------------------------------------
  {
    elf::ElfBuilder builder;
    Bytes text(64, 0x90);
    text[63] = 0xc3;
    builder.AddTextSection(".text", text);
    // No function symbols at all: EnGarde cannot resolve call targets.
    auto image = builder.Build();
    if (!image.ok()) return 1;
    workload::SynthLibcOptions agreed;
    Attempt("Attempt 4: ship a stripped binary", *image, agreed, host,
            *quoting);
  }

  // ---- 5. Post-approval code injection ---------------------------------------------
  {
    auto program = workload::BuildProgram(honest);
    if (!program.ok()) return 1;
    AttemptResult compliant =
        Attempt("Attempt 5: get approved, then inject code afterwards",
                program->image, program->libc_options, host, *quoting);
    if (compliant.ran && compliant.outcome.verdict.compliant) {
      const uint64_t code_page =
          compliant.outcome.provider_report.executable_pages[0];
      std::printf("  ...now the client (or a compromised host) attacks:\n");
      std::printf("  write shellcode over a code page -> %s\n",
                  device
                      .EnclaveWrite(compliant.enclave_id, code_page,
                                    ToBytes("\xcc\xcc\xcc\xcc"))
                      .ToString()
                      .c_str());
      std::printf("  grow the enclave with a fresh RWX page -> %s\n",
                  host.AugmentPages(compliant.enclave_id, 0x30000000, 1)
                      .ToString()
                      .c_str());
    }
  }

  std::printf("\nAll five attack attempts were stopped.\n");
  return 0;
}
