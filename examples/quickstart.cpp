// Quickstart: the smallest end-to-end EnGarde flow.
//
//   1. The cloud provider sets up an SGX machine and an EnGarde enclave that
//      enforces one mutually-agreed policy (stack protection).
//   2. The client builds a (synthetic) stack-protected executable, attests
//      the enclave, and ships the binary over the encrypted channel.
//   3. EnGarde inspects, approves, loads — and the program actually runs
//      inside the enclave.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "client/client.h"
#include "core/engarde.h"
#include "core/policy_stackprot.h"
#include "workload/program_builder.h"

using namespace engarde;

int main() {
  // ---- Cloud provider: SGX machine + quoting enclave -----------------------
  sgx::SgxDevice device{sgx::SgxDevice::Options{}};
  sgx::HostOs host(&device);
  auto quoting = sgx::QuotingEnclave::Provision(ToBytes("quickstart-device"),
                                                /*key_bits=*/1024);
  if (!quoting.ok()) return 1;

  // ---- Mutually agreed policy set -------------------------------------------
  core::PolicySet policies;
  policies.push_back(std::make_unique<core::StackProtectionPolicy>());

  core::EngardeOptions options;
  options.rsa_bits = 1024;

  // Both parties can compute the expected measurement independently.
  auto expected = core::EngardeEnclave::ExpectedMeasurement(policies, options);
  if (!expected.ok()) return 1;

  // ---- Provider creates the EnGarde enclave ---------------------------------
  auto enclave = core::EngardeEnclave::Create(&host, *quoting,
                                              std::move(policies), options);
  if (!enclave.ok()) {
    std::printf("enclave creation failed: %s\n",
                enclave.status().ToString().c_str());
    return 1;
  }
  std::printf("[provider] EnGarde enclave %llu created and attested\n",
              static_cast<unsigned long long>(enclave->enclave_id()));

  // ---- Client builds its confidential program --------------------------------
  workload::ProgramSpec spec;
  spec.name = "hello-enclave";
  spec.seed = 2026;
  spec.target_instructions = 4000;
  spec.stack_protection = true;  // complies with the agreed policy
  auto program = workload::BuildProgram(spec);
  if (!program.ok()) return 1;
  std::printf("[client]   built %s: %zu bytes, %zu instructions\n",
              program->name.c_str(), program->image.size(),
              program->emitted_insn_count);

  // ---- The protocol ------------------------------------------------------------
  crypto::DuplexPipe pipe;
  if (!enclave->SendHello(pipe.EndA()).ok()) return 1;

  client::ClientOptions client_options;
  client_options.attestation_key = quoting->attestation_public_key();
  client_options.expected_measurement = *expected;
  client::Client client(client_options, program->image);
  if (const Status s = client.SendProgram(pipe.EndB()); !s.ok()) {
    std::printf("[client]   aborted before sending anything: %s\n",
                s.ToString().c_str());
    return 1;
  }
  std::printf("[client]   quote verified; program sent encrypted\n");

  auto outcome = enclave->RunProvisioning(pipe.EndA());
  if (!outcome.ok()) return 1;
  auto verdict = client.AwaitVerdict();
  if (!verdict.ok()) return 1;

  std::printf("[engarde]  verdict: %s\n",
              verdict->compliant ? "COMPLIANT — loaded and locked"
                                 : verdict->reason.c_str());
  std::printf("[provider] learns only: compliant=%d, %zu executable pages\n",
              outcome->provider_report.compliant,
              outcome->provider_report.executable_pages.size());
  if (!verdict->compliant) return 1;

  // ---- Run the provisioned program inside the enclave -------------------------
  auto rax = enclave->ExecuteClientProgram();
  if (!rax.ok()) {
    std::printf("execution failed: %s\n", rax.status().ToString().c_str());
    return 1;
  }
  std::printf("[enclave]  client program ran to completion, rax = 0x%llx\n",
              static_cast<unsigned long long>(*rax));
  return 0;
}
