// Runtime policy enforcement — the extension the paper leaves as future work
// (Section 1: "One can also imagine an extension of EnGarde that instruments
// client code to enforce policies at runtime").
//
// Static inspection can prove the *code* carries stack protectors and IFCC
// guards, but some attacks only materialise at runtime: a return address
// overwritten through a dangling pointer, a function pointer corrupted to
// land mid-function. This example provisions a binary that passes every
// static check, demonstrates a successful return-address hijack without the
// monitor, then shows the shadow-stack runtime policy stopping it cold.
#include <cstdio>

#include "client/client.h"
#include "core/engarde.h"
#include "core/runtime_monitor.h"
#include "elf/builder.h"
#include "x86/encoder.h"

using namespace engarde;

namespace {

// A small position-independent program with a deliberate ret-hijack:
//   _start: call victim ; hlt
//   victim: lea gadget(%rip), %rax ; mov %rax,(%rsp) ; ret   <- overwrites RA
//   gadget: mov $0x1337, %eax ; ret                          <- "shellcode"
// Every *static* property is clean: separated code/data, symbols present,
// NaCl-valid, no unguarded indirect calls (there are none), so EnGarde's
// static pipeline accepts it.
Bytes BuildHijackDemo() {
  x86::Assembler as(0x1000);
  as.CallAbs(0x1020);
  as.Hlt();
  as.AlignTo(32);
  as.LeaRipRelTo(x86::kRax, 0x1040);
  as.MovStore(x86::kRsp, 0, x86::kRax);
  as.Ret();
  as.AlignTo(32);
  as.MovRegImm32(x86::kRax, 0x1337);
  as.Ret();

  elf::ElfBuilder builder;
  builder.AddTextSection(".text", as.bytes());
  builder.AddSymbol("_start", 0x1000, 6, elf::kSttFunc);
  builder.AddSymbol("victim", 0x1020, 12, elf::kSttFunc);
  builder.AddSymbol("gadget", 0x1040, 6, elf::kSttFunc);
  builder.SetEntry(0x1000);
  auto image = builder.Build();
  return image.ok() ? *image : Bytes{};
}

}  // namespace

int main() {
  sgx::SgxDevice device{sgx::SgxDevice::Options{}};
  sgx::HostOs host(&device);
  auto quoting = sgx::QuotingEnclave::Provision(ToBytes("rt-device"), 1024);
  if (!quoting.ok()) return 1;

  core::EngardeOptions options;
  options.rsa_bits = 1024;
  auto enclave = core::EngardeEnclave::Create(&host, *quoting,
                                              core::PolicySet{}, options);
  if (!enclave.ok()) return 1;

  const Bytes image = BuildHijackDemo();
  crypto::DuplexPipe pipe;
  if (!enclave->SendHello(pipe.EndA()).ok()) return 1;
  client::ClientOptions client_options;
  client_options.attestation_key = quoting->attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, image);
  if (!client.SendProgram(pipe.EndB()).ok()) return 1;
  auto outcome = enclave->RunProvisioning(pipe.EndA());
  if (!outcome.ok() || !outcome->verdict.compliant) {
    std::printf("unexpected: static pipeline rejected the demo binary\n");
    return 1;
  }
  std::printf(
      "static inspection: COMPLIANT (the hijack is invisible to static "
      "checks)\n\n");

  // ---- Without the runtime monitor ------------------------------------------
  auto rax = enclave->ExecuteClientProgram();
  if (rax.ok()) {
    std::printf("without runtime monitor: program returned 0x%llx\n",
                static_cast<unsigned long long>(*rax));
    std::printf("  -> 0x1337 means the return-address hijack reached the "
                "gadget undetected\n\n");
  }

  // ---- With the shadow stack ---------------------------------------------------
  core::RuntimeMonitor monitor;
  monitor.AddPolicy(std::make_unique<core::ShadowStackPolicy>());
  monitor.AddPolicy(std::make_unique<core::IndirectTargetPolicy>(
      core::IndirectTargetPolicy::FromSymbols(
          *enclave->loaded_symbols(), enclave->load_result()->load_base)));
  monitor.AddPolicy(std::make_unique<core::InstructionBudgetPolicy>(100000));
  monitor.BeginRun();
  auto guarded = enclave->ExecuteClientProgram(1u << 22, &monitor);
  if (guarded.ok()) {
    std::printf("runtime monitor FAILED to stop the hijack\n");
    return 1;
  }
  std::printf("with runtime monitor (%zu policies): execution aborted\n",
              monitor.policy_count());
  std::printf("  %s\n", monitor.violation().c_str());
  std::printf(
      "\nThe shadow stack caught the backward-edge hijack the moment the "
      "corrupted RET fired —\nwithout any instrumentation in the client "
      "binary itself.\n");
  return 0;
}
