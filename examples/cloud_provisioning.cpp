// The full Figure-1 scenario with all three policies from the paper's
// evaluation, narrated step by step: a cloud provider who wants SLA
// compliance, a client who wants confidentiality, and EnGarde in the middle
// trusted by both.
//
// Demonstrates, in order:
//   * policy negotiation reflected in MRENCLAVE,
//   * attestation with the enclave's RSA key bound into the quote,
//   * encrypted block transfer (the provider sees only ciphertext),
//   * the complete inspection pipeline,
//   * the information barrier (provider learns only the compliance bit and
//     the executable page list),
//   * W^X enforcement and the post-provisioning enclave lock,
//   * zero runtime overhead on the provisioned program.
#include <cstdio>

#include "client/client.h"
#include "core/engarde.h"
#include "core/negotiation.h"
#include "core/policy_ifcc.h"
#include "core/policy_liblink.h"
#include "core/policy_stackprot.h"
#include "workload/program_builder.h"

using namespace engarde;

namespace {

core::PolicySet AgreedPolicies(const workload::SynthLibcOptions& libc) {
  core::PolicySet policies;
  auto db = workload::BuildLibcHashDb(libc);
  if (db.ok()) {
    policies.push_back(std::make_unique<core::LibraryLinkingPolicy>(
        "synth-musl v" + libc.version, std::move(db).value()));
  }
  policies.push_back(std::make_unique<core::StackProtectionPolicy>());
  policies.push_back(std::make_unique<core::IndirectCallPolicy>());
  return policies;
}

}  // namespace

int main() {
  std::printf("=== EnGarde: mutually-trusted inspection of SGX enclaves ===\n\n");

  // ---- The client's confidential workload -----------------------------------
  workload::ProgramSpec spec;
  spec.name = "kv-store";  // a memcached-style service, say
  spec.seed = 11;
  spec.target_instructions = 20000;
  spec.stack_protection = true;
  spec.ifcc = true;
  spec.indirect_call_sites = 4;
  auto program = workload::BuildProgram(spec);
  if (!program.ok()) return 1;
  std::printf("[client]   workload '%s': %zu bytes, %zu instructions\n",
              program->name.c_str(), program->image.size(),
              program->emitted_insn_count);

  // ---- SLA negotiation -----------------------------------------------------
  std::printf("\n-- SLA negotiation --\n");
  // The provider advertises its policy menu; the client picks the subset it
  // requires, by fingerprint.
  const core::PolicyOffer offer =
      core::PolicyOffer::FromPolicies(AgreedPolicies(program->libc_options));
  std::printf("[provider] offers %zu policies\n", offer.fingerprints.size());
  auto selection = core::SelectFromOffer(
      offer, {"library-linking(", "stack-protection(", "indirect-call-check("});
  if (!selection.ok()) return 1;
  auto agreed = core::ApplySelection(AgreedPolicies(program->libc_options),
                                     *selection);
  if (!agreed.ok()) return 1;
  std::printf("[client]   selects all three (by fingerprint)\n");

  core::EngardeOptions options;
  options.rsa_bits = 1024;
  auto expected = core::EngardeEnclave::ExpectedMeasurement(*agreed, options);
  if (!expected.ok()) return 1;
  std::printf(
      "[both]     expected MRENCLAVE for EnGarde + agreed policies computed "
      "independently\n");

  // ---- Provider infrastructure ----------------------------------------------
  sgx::CycleAccountant accountant;
  sgx::SgxDevice device{sgx::SgxDevice::Options{}, &accountant};
  sgx::HostOs host(&device);
  auto quoting =
      sgx::QuotingEnclave::Provision(ToBytes("datacenter-rack-42"), 1024);
  if (!quoting.ok()) return 1;

  auto enclave = core::EngardeEnclave::Create(&host, *quoting,
                                              std::move(agreed).value(),
                                              options);
  if (!enclave.ok()) return 1;
  std::printf("[provider] enclave %llu built: %zu pages committed, MRENCLAVE "
              "finalized\n",
              static_cast<unsigned long long>(enclave->enclave_id()),
              device.PageCount(enclave->enclave_id()));

  // ---- Attestation + key exchange + transfer ----------------------------------
  crypto::DuplexPipe pipe;
  if (!enclave->SendHello(pipe.EndA()).ok()) return 1;

  client::ClientOptions client_options;
  client_options.attestation_key = quoting->attestation_public_key();
  client_options.expected_measurement = *expected;
  client::Client client(client_options, program->image);
  if (!client.SendProgram(pipe.EndB()).ok()) return 1;
  std::printf(
      "\n[client]   quote signature valid, MRENCLAVE matches, RSA key bound "
      "in quote\n[client]   AES-256 session key wrapped; %zu byte binary sent "
      "in encrypted 4K blocks\n",
      program->image.size());

  // What does the provider's network tap see? Ciphertext.
  std::printf(
      "[provider] (wire tap shows only AES-256-CTR ciphertext + HMAC tags)\n");

  // ---- Inspection ----------------------------------------------------------------
  auto outcome = enclave->RunProvisioning(pipe.EndA());
  if (!outcome.ok()) return 1;
  auto verdict = client.AwaitVerdict();
  if (!verdict.ok()) return 1;

  std::printf("\n-- EnGarde inspection --\n");
  std::printf("[engarde]  %zu blocks received and decrypted\n",
              outcome->stats.blocks_received);
  std::printf("[engarde]  %zu instructions disassembled into %zu buffer "
              "pages (%llu malloc trampolines)\n",
              outcome->stats.instruction_count,
              outcome->stats.insn_buffer_pages,
              static_cast<unsigned long long>(accountant.total_trampolines()));
  std::printf("[engarde]  3 policy modules: %s\n",
              verdict->compliant ? "ALL PASSED" : verdict->reason.c_str());
  if (!verdict->compliant) return 1;
  std::printf("[engarde]  loaded at enclave base, %zu relocations applied\n",
              outcome->stats.relocations_applied);

  // ---- The information barrier ---------------------------------------------------
  std::printf("\n-- what each party knows --\n");
  std::printf("[provider] compliance bit: %d\n",
              outcome->provider_report.compliant);
  std::printf("[provider] executable pages: %zu (addresses only — contents "
              "remain encrypted)\n",
              outcome->provider_report.executable_pages.size());
  std::printf("[client]   full verdict over the encrypted channel\n");

  // ---- W^X + lock ------------------------------------------------------------------
  std::printf("\n-- post-provisioning hardening --\n");
  const uint64_t code_page = outcome->provider_report.executable_pages[0];
  const Status write_attempt =
      device.EnclaveWrite(enclave->enclave_id(), code_page, ToBytes("evil"));
  std::printf("[provider] write to a code page: %s\n",
              write_attempt.ToString().c_str());
  const Status grow_attempt =
      host.AugmentPages(enclave->enclave_id(), 0x20000000, 1);
  std::printf("[provider] post-lock EAUG attempt: %s\n",
              grow_attempt.ToString().c_str());

  // ---- Execution ------------------------------------------------------------------
  accountant.Reset();
  auto rax = enclave->ExecuteClientProgram();
  if (!rax.ok()) {
    std::printf("execution failed: %s\n", rax.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\n[enclave]  workload executed: rax = 0x%llx; SGX instructions during "
      "the run: %llu\n(EENTER + EEXIT only — EnGarde adds zero runtime "
      "overhead, paper Section 3)\n",
      static_cast<unsigned long long>(*rax),
      static_cast<unsigned long long>(accountant.total_sgx_instructions()));
  return 0;
}
